file(REMOVE_RECURSE
  "../bench/bench_ablation_locks"
  "../bench/bench_ablation_locks.pdb"
  "CMakeFiles/bench_ablation_locks.dir/bench_ablation_locks.cpp.o"
  "CMakeFiles/bench_ablation_locks.dir/bench_ablation_locks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6a_atomics.
# This may be replaced when dependencies are built.

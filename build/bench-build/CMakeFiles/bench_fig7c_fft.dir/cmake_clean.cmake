file(REMOVE_RECURSE
  "../bench/bench_fig7c_fft"
  "../bench/bench_fig7c_fft.pdb"
  "CMakeFiles/bench_fig7c_fft.dir/bench_fig7c_fft.cpp.o"
  "CMakeFiles/bench_fig7c_fft.dir/bench_fig7c_fft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig7c_fft.
# This may be replaced when dependencies are built.

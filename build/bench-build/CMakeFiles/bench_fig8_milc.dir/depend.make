# Empty dependencies file for bench_fig8_milc.
# This may be replaced when dependencies are built.

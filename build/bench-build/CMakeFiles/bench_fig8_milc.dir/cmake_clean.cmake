file(REMOVE_RECURSE
  "../bench/bench_fig8_milc"
  "../bench/bench_fig8_milc.pdb"
  "CMakeFiles/bench_fig8_milc.dir/bench_fig8_milc.cpp.o"
  "CMakeFiles/bench_fig8_milc.dir/bench_fig8_milc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_milc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig7a_hashtable"
  "../bench/bench_fig7a_hashtable.pdb"
  "CMakeFiles/bench_fig7a_hashtable.dir/bench_fig7a_hashtable.cpp.o"
  "CMakeFiles/bench_fig7a_hashtable.dir/bench_fig7a_hashtable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_instr.
# This may be replaced when dependencies are built.

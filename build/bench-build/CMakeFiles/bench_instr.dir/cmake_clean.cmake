file(REMOVE_RECURSE
  "../bench/bench_instr"
  "../bench/bench_instr.pdb"
  "CMakeFiles/bench_instr.dir/bench_instr.cpp.o"
  "CMakeFiles/bench_instr.dir/bench_instr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig5_msgrate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig5_msgrate"
  "../bench/bench_fig5_msgrate.pdb"
  "CMakeFiles/bench_fig5_msgrate.dir/bench_fig5_msgrate.cpp.o"
  "CMakeFiles/bench_fig5_msgrate.dir/bench_fig5_msgrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_msgrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

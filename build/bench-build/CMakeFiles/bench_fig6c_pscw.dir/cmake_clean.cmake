file(REMOVE_RECURSE
  "../bench/bench_fig6c_pscw"
  "../bench/bench_fig6c_pscw.pdb"
  "CMakeFiles/bench_fig6c_pscw.dir/bench_fig6c_pscw.cpp.o"
  "CMakeFiles/bench_fig6c_pscw.dir/bench_fig6c_pscw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_pscw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

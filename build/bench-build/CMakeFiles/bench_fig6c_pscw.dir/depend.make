# Empty dependencies file for bench_fig6c_pscw.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig6b_fence.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig6b_fence"
  "../bench/bench_fig6b_fence.pdb"
  "CMakeFiles/bench_fig6b_fence.dir/bench_fig6b_fence.cpp.o"
  "CMakeFiles/bench_fig6b_fence.dir/bench_fig6b_fence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ablation_notify"
  "../bench/bench_ablation_notify.pdb"
  "CMakeFiles/bench_ablation_notify.dir/bench_ablation_notify.cpp.o"
  "CMakeFiles/bench_ablation_notify.dir/bench_ablation_notify.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

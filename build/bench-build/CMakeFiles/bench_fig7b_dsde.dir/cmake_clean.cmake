file(REMOVE_RECURSE
  "../bench/bench_fig7b_dsde"
  "../bench/bench_fig7b_dsde.pdb"
  "CMakeFiles/bench_fig7b_dsde.dir/bench_fig7b_dsde.cpp.o"
  "CMakeFiles/bench_fig7b_dsde.dir/bench_fig7b_dsde.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_dsde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

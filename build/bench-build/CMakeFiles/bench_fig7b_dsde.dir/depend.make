# Empty dependencies file for bench_fig7b_dsde.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for hashtable_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hashtable_demo.dir/hashtable_demo.cpp.o"
  "CMakeFiles/hashtable_demo.dir/hashtable_demo.cpp.o.d"
  "hashtable_demo"
  "hashtable_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtable_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dynamic_windows.dir/dynamic_windows.cpp.o"
  "CMakeFiles/dynamic_windows.dir/dynamic_windows.cpp.o.d"
  "dynamic_windows"
  "dynamic_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

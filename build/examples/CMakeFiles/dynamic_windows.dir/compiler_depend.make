# Empty compiler generated dependencies file for dynamic_windows.
# This may be replaced when dependencies are built.

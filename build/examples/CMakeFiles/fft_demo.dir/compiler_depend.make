# Empty compiler generated dependencies file for fft_demo.
# This may be replaced when dependencies are built.

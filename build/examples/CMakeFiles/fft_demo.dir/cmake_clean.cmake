file(REMOVE_RECURSE
  "CMakeFiles/fft_demo.dir/fft_demo.cpp.o"
  "CMakeFiles/fft_demo.dir/fft_demo.cpp.o.d"
  "fft_demo"
  "fft_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stencil_overlap.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dsde_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dsde_demo.dir/dsde_demo.cpp.o"
  "CMakeFiles/dsde_demo.dir/dsde_demo.cpp.o.d"
  "dsde_demo"
  "dsde_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsde_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

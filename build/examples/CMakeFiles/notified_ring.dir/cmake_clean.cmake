file(REMOVE_RECURSE
  "CMakeFiles/notified_ring.dir/notified_ring.cpp.o"
  "CMakeFiles/notified_ring.dir/notified_ring.cpp.o.d"
  "notified_ring"
  "notified_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notified_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for notified_ring.
# This may be replaced when dependencies are built.

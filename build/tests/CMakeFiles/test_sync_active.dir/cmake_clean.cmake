file(REMOVE_RECURSE
  "CMakeFiles/test_sync_active.dir/test_sync_active.cpp.o"
  "CMakeFiles/test_sync_active.dir/test_sync_active.cpp.o.d"
  "test_sync_active"
  "test_sync_active.pdb"
  "test_sync_active[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

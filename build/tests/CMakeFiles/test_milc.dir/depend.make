# Empty dependencies file for test_milc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_milc.dir/test_milc.cpp.o"
  "CMakeFiles/test_milc.dir/test_milc.cpp.o.d"
  "test_milc"
  "test_milc.pdb"
  "test_milc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

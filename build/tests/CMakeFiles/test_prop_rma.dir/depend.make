# Empty dependencies file for test_prop_rma.
# This may be replaced when dependencies are built.

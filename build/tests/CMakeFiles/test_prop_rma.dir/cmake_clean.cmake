file(REMOVE_RECURSE
  "CMakeFiles/test_prop_rma.dir/test_prop_rma.cpp.o"
  "CMakeFiles/test_prop_rma.dir/test_prop_rma.cpp.o.d"
  "test_prop_rma"
  "test_prop_rma.pdb"
  "test_prop_rma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prop_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_instr_bounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_instr_bounds.dir/test_instr_bounds.cpp.o"
  "CMakeFiles/test_instr_bounds.dir/test_instr_bounds.cpp.o.d"
  "test_instr_bounds"
  "test_instr_bounds.pdb"
  "test_instr_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mcs.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/test_comm.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/test_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fompi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/fompi_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/fompi_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/datatype/CMakeFiles/fompi_datatype.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

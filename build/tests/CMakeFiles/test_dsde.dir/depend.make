# Empty dependencies file for test_dsde.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dsde.dir/test_dsde.cpp.o"
  "CMakeFiles/test_dsde.dir/test_dsde.cpp.o.d"
  "test_dsde"
  "test_dsde.pdb"
  "test_dsde[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rdma[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_window[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_sync_active[1]_include.cmake")
include("/root/repo/build/tests/test_lock[1]_include.cmake")
include("/root/repo/build/tests/test_accumulate[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_mcs[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_simtime[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_hashtable[1]_include.cmake")
include("/root/repo/build/tests/test_dsde[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_milc[1]_include.cmake")
include("/root/repo/build/tests/test_prop_rma[1]_include.cmake")
include("/root/repo/build/tests/test_instr_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")

# Empty dependencies file for fompi_simtime.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simtime/sim_apps.cpp" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_apps.cpp.o" "gcc" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_apps.cpp.o.d"
  "/root/repo/src/simtime/sim_dsde.cpp" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_dsde.cpp.o" "gcc" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_dsde.cpp.o.d"
  "/root/repo/src/simtime/sim_sync.cpp" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_sync.cpp.o" "gcc" "src/simtime/CMakeFiles/fompi_simtime.dir/sim_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/fompi_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

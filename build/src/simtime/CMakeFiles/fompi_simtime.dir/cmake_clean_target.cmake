file(REMOVE_RECURSE
  "libfompi_simtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fompi_simtime.dir/sim_apps.cpp.o"
  "CMakeFiles/fompi_simtime.dir/sim_apps.cpp.o.d"
  "CMakeFiles/fompi_simtime.dir/sim_dsde.cpp.o"
  "CMakeFiles/fompi_simtime.dir/sim_dsde.cpp.o.d"
  "CMakeFiles/fompi_simtime.dir/sim_sync.cpp.o"
  "CMakeFiles/fompi_simtime.dir/sim_sync.cpp.o.d"
  "libfompi_simtime.a"
  "libfompi_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

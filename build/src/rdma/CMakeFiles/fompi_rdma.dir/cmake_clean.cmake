file(REMOVE_RECURSE
  "CMakeFiles/fompi_rdma.dir/amo.cpp.o"
  "CMakeFiles/fompi_rdma.dir/amo.cpp.o.d"
  "CMakeFiles/fompi_rdma.dir/nic.cpp.o"
  "CMakeFiles/fompi_rdma.dir/nic.cpp.o.d"
  "CMakeFiles/fompi_rdma.dir/region.cpp.o"
  "CMakeFiles/fompi_rdma.dir/region.cpp.o.d"
  "libfompi_rdma.a"
  "libfompi_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/amo.cpp" "src/rdma/CMakeFiles/fompi_rdma.dir/amo.cpp.o" "gcc" "src/rdma/CMakeFiles/fompi_rdma.dir/amo.cpp.o.d"
  "/root/repo/src/rdma/nic.cpp" "src/rdma/CMakeFiles/fompi_rdma.dir/nic.cpp.o" "gcc" "src/rdma/CMakeFiles/fompi_rdma.dir/nic.cpp.o.d"
  "/root/repo/src/rdma/region.cpp" "src/rdma/CMakeFiles/fompi_rdma.dir/region.cpp.o" "gcc" "src/rdma/CMakeFiles/fompi_rdma.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

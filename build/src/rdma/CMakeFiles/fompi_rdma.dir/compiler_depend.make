# Empty compiler generated dependencies file for fompi_rdma.
# This may be replaced when dependencies are built.

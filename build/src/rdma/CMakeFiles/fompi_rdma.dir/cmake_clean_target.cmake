file(REMOVE_RECURSE
  "libfompi_rdma.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fompi_perfmodel.dir/fit.cpp.o"
  "CMakeFiles/fompi_perfmodel.dir/fit.cpp.o.d"
  "libfompi_perfmodel.a"
  "libfompi_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fompi_perfmodel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfompi_perfmodel.a"
)

# Empty dependencies file for fompi_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfompi_baselines.a"
)

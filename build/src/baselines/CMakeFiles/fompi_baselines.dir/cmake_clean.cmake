file(REMOVE_RECURSE
  "CMakeFiles/fompi_baselines.dir/mpi22_rma.cpp.o"
  "CMakeFiles/fompi_baselines.dir/mpi22_rma.cpp.o.d"
  "CMakeFiles/fompi_baselines.dir/pgas.cpp.o"
  "CMakeFiles/fompi_baselines.dir/pgas.cpp.o.d"
  "libfompi_baselines.a"
  "libfompi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

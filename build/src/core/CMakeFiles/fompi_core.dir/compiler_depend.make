# Empty compiler generated dependencies file for fompi_core.
# This may be replaced when dependencies are built.

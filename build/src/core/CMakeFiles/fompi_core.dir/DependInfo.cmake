
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulate.cpp" "src/core/CMakeFiles/fompi_core.dir/accumulate.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/accumulate.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "src/core/CMakeFiles/fompi_core.dir/comm.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/comm.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/fompi_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/fence.cpp" "src/core/CMakeFiles/fompi_core.dir/fence.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/fence.cpp.o.d"
  "/root/repo/src/core/lock.cpp" "src/core/CMakeFiles/fompi_core.dir/lock.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/lock.cpp.o.d"
  "/root/repo/src/core/mcs_lock.cpp" "src/core/CMakeFiles/fompi_core.dir/mcs_lock.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/mcs_lock.cpp.o.d"
  "/root/repo/src/core/notify.cpp" "src/core/CMakeFiles/fompi_core.dir/notify.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/notify.cpp.o.d"
  "/root/repo/src/core/ops.cpp" "src/core/CMakeFiles/fompi_core.dir/ops.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/ops.cpp.o.d"
  "/root/repo/src/core/pscw.cpp" "src/core/CMakeFiles/fompi_core.dir/pscw.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/pscw.cpp.o.d"
  "/root/repo/src/core/sym_heap.cpp" "src/core/CMakeFiles/fompi_core.dir/sym_heap.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/sym_heap.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/core/CMakeFiles/fompi_core.dir/window.cpp.o" "gcc" "src/core/CMakeFiles/fompi_core.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/fompi_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/datatype/CMakeFiles/fompi_datatype.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/fompi_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fompi_core.dir/accumulate.cpp.o"
  "CMakeFiles/fompi_core.dir/accumulate.cpp.o.d"
  "CMakeFiles/fompi_core.dir/comm.cpp.o"
  "CMakeFiles/fompi_core.dir/comm.cpp.o.d"
  "CMakeFiles/fompi_core.dir/dynamic.cpp.o"
  "CMakeFiles/fompi_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/fompi_core.dir/fence.cpp.o"
  "CMakeFiles/fompi_core.dir/fence.cpp.o.d"
  "CMakeFiles/fompi_core.dir/lock.cpp.o"
  "CMakeFiles/fompi_core.dir/lock.cpp.o.d"
  "CMakeFiles/fompi_core.dir/mcs_lock.cpp.o"
  "CMakeFiles/fompi_core.dir/mcs_lock.cpp.o.d"
  "CMakeFiles/fompi_core.dir/notify.cpp.o"
  "CMakeFiles/fompi_core.dir/notify.cpp.o.d"
  "CMakeFiles/fompi_core.dir/ops.cpp.o"
  "CMakeFiles/fompi_core.dir/ops.cpp.o.d"
  "CMakeFiles/fompi_core.dir/pscw.cpp.o"
  "CMakeFiles/fompi_core.dir/pscw.cpp.o.d"
  "CMakeFiles/fompi_core.dir/sym_heap.cpp.o"
  "CMakeFiles/fompi_core.dir/sym_heap.cpp.o.d"
  "CMakeFiles/fompi_core.dir/window.cpp.o"
  "CMakeFiles/fompi_core.dir/window.cpp.o.d"
  "libfompi_core.a"
  "libfompi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfompi_core.a"
)

# Empty compiler generated dependencies file for fompi_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fompi_apps.dir/dsde.cpp.o"
  "CMakeFiles/fompi_apps.dir/dsde.cpp.o.d"
  "CMakeFiles/fompi_apps.dir/fft.cpp.o"
  "CMakeFiles/fompi_apps.dir/fft.cpp.o.d"
  "CMakeFiles/fompi_apps.dir/hashtable.cpp.o"
  "CMakeFiles/fompi_apps.dir/hashtable.cpp.o.d"
  "CMakeFiles/fompi_apps.dir/milc.cpp.o"
  "CMakeFiles/fompi_apps.dir/milc.cpp.o.d"
  "libfompi_apps.a"
  "libfompi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfompi_apps.a"
)

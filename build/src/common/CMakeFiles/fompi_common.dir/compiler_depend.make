# Empty compiler generated dependencies file for fompi_common.
# This may be replaced when dependencies are built.

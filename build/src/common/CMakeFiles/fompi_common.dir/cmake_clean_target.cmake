file(REMOVE_RECURSE
  "libfompi_common.a"
)

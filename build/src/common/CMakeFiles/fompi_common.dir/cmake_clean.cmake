file(REMOVE_RECURSE
  "CMakeFiles/fompi_common.dir/error.cpp.o"
  "CMakeFiles/fompi_common.dir/error.cpp.o.d"
  "CMakeFiles/fompi_common.dir/instr.cpp.o"
  "CMakeFiles/fompi_common.dir/instr.cpp.o.d"
  "CMakeFiles/fompi_common.dir/timing.cpp.o"
  "CMakeFiles/fompi_common.dir/timing.cpp.o.d"
  "libfompi_common.a"
  "libfompi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

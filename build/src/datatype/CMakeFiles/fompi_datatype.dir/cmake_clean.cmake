file(REMOVE_RECURSE
  "CMakeFiles/fompi_datatype.dir/datatype.cpp.o"
  "CMakeFiles/fompi_datatype.dir/datatype.cpp.o.d"
  "libfompi_datatype.a"
  "libfompi_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfompi_datatype.a"
)

# Empty dependencies file for fompi_datatype.
# This may be replaced when dependencies are built.

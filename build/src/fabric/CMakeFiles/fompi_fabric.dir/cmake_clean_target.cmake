file(REMOVE_RECURSE
  "libfompi_fabric.a"
)

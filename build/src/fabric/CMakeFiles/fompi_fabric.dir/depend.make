# Empty dependencies file for fompi_fabric.
# This may be replaced when dependencies are built.

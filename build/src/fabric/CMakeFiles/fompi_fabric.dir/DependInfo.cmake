
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/collectives.cpp" "src/fabric/CMakeFiles/fompi_fabric.dir/collectives.cpp.o" "gcc" "src/fabric/CMakeFiles/fompi_fabric.dir/collectives.cpp.o.d"
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/fompi_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/fompi_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/p2p.cpp" "src/fabric/CMakeFiles/fompi_fabric.dir/p2p.cpp.o" "gcc" "src/fabric/CMakeFiles/fompi_fabric.dir/p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/fompi_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fompi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fompi_fabric.dir/collectives.cpp.o"
  "CMakeFiles/fompi_fabric.dir/collectives.cpp.o.d"
  "CMakeFiles/fompi_fabric.dir/fabric.cpp.o"
  "CMakeFiles/fompi_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/fompi_fabric.dir/p2p.cpp.o"
  "CMakeFiles/fompi_fabric.dir/p2p.cpp.o.d"
  "libfompi_fabric.a"
  "libfompi_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fompi_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Property tests: randomized one-sided workloads with a deterministic
// expected outcome, executed under every delivery/transport mode.
//
// Each origin owns a disjoint stripe in every target's window, so any
// interleaving of the one-sided traffic must produce the same final
// window contents; the test replays the workload against a local model
// and compares after each epoch.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::Win;
using fabric::RankCtx;

namespace {

struct ModeCase {
  rdma::Delivery delivery;
  int ranks_per_node;
  bool shuffle;
};

fabric::FabricOptions opts_for(const ModeCase& m) {
  fabric::FabricOptions o;
  o.domain.delivery = m.delivery;
  o.domain.ranks_per_node = m.ranks_per_node;
  o.domain.shuffle_deferred = m.shuffle;
  return o;
}

}  // namespace

class RmaWorkload
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (seed, mode)

TEST_P(RmaWorkload, FenceEpochsMatchSequentialModel) {
  const int seed = std::get<0>(GetParam());
  const std::array<ModeCase, 3> modes{
      ModeCase{rdma::Delivery::immediate, 0, false},
      ModeCase{rdma::Delivery::deferred, 1, true},
      ModeCase{rdma::Delivery::deferred, 2, true},
  };
  const ModeCase mode = modes[static_cast<std::size_t>(std::get<1>(GetParam()))];

  constexpr int p = 4;
  constexpr std::size_t kStripe = 128;  // bytes per (origin, target) stripe
  constexpr int kEpochs = 6;
  constexpr int kOpsPerEpoch = 12;  // <= kStripe/8 distinct cells per epoch

  // Global model: model[target][byte] mirrors the expected window bytes.
  std::array<std::array<std::uint8_t, kStripe * p>, p> model{};

  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const int me = ctx.rank();
    Win win = Win::allocate(ctx, kStripe * p);
    Rng rng(static_cast<std::uint64_t>(seed) * 97 +
            static_cast<std::uint64_t>(me));
    // Local mirror of what this rank has written to each target.
    win.fence();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (int op = 0; op < kOpsPerEpoch; ++op) {
        const int target = static_cast<int>(rng.below(p));
        // One 8-byte cell per op index: MPI forbids overlapping puts to
        // the same location within an epoch, and the shuffled-delivery
        // mode enforces exactly that (same-epoch order is not preserved).
        const std::size_t off = static_cast<std::size_t>(op) * 8;
        const std::size_t len = 1 + rng.below(8);
        std::array<std::uint8_t, 8> data{};
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        const std::size_t disp = static_cast<std::size_t>(me) * kStripe + off;
        win.put(data.data(), len, target, disp);
        std::memcpy(&model[static_cast<std::size_t>(target)][disp], data.data(),
                    len);
      }
      win.fence();
      // After the fence, the local window must equal the model (the model
      // array is written identically on all ranks because each stripe has
      // a unique writer and the RNG streams are per-rank deterministic —
      // but each rank only fills its own stripes; check only those after
      // full replay below).
    }
    // Final check: read back every stripe I own remotely and compare with
    // what I recorded locally.
    std::array<std::uint8_t, kStripe> readback{};
    for (int target = 0; target < p; ++target) {
      win.get(readback.data(), kStripe, target,
              static_cast<std::size_t>(me) * kStripe);
      win.fence();
      EXPECT_EQ(std::memcmp(readback.data(),
                            &model[static_cast<std::size_t>(target)]
                                  [static_cast<std::size_t>(me) * kStripe],
                            kStripe),
                0)
          << "stripe mismatch: origin " << me << " target " << target;
    }
    win.free();
  }, opts_for(mode));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, RmaWorkload,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 3)));

// Concurrent accumulate linearizability: all ranks add into shared
// counters through different op mixes; the total must be exact.
class AccumulateStress : public ::testing::TestWithParam<int> {};

TEST_P(AccumulateStress, SumsAreExactUnderContention) {
  const int p = 4;
  const int kIters = 40;
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fabric::run_ranks(p, [&](fabric::RankCtx& ctx) {
    Win win = Win::allocate(ctx, 128);
    Rng rng(seed * 131 + static_cast<std::uint64_t>(ctx.rank()));
    win.lock_all();
    std::uint64_t my_sum_contrib = 0;
    for (int i = 0; i < kIters; ++i) {
      const int target = static_cast<int>(rng.below(p));
      const std::uint64_t v = 1 + rng.below(100);
      switch (rng.below(3)) {
        case 0:
          win.accumulate(&v, 1, Elem::u64, RedOp::sum, target, 0);
          break;
        case 1: {
          std::uint64_t old = 0;
          win.fetch_and_op(&v, &old, Elem::u64, RedOp::sum, target, 0);
          break;
        }
        default: {
          std::uint64_t old = 0;
          win.get_accumulate(&v, &old, 1, Elem::u64, RedOp::sum, target, 0);
          break;
        }
      }
      my_sum_contrib += v;
    }
    win.flush_all();
    win.unlock_all();
    ctx.barrier();
    // Total across all counters must equal the sum of contributions.
    std::uint64_t local_counter = 0;
    std::memcpy(&local_counter, win.base(), 8);
    std::uint64_t total_counter = 0, total_contrib = 0;
    ctx.allreduce(&local_counter, &total_counter, 1,
                  [](std::uint64_t a, std::uint64_t b) { return a + b; });
    ctx.allreduce(&my_sum_contrib, &total_contrib, 1,
                  [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total_counter, total_contrib);
    win.free();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccumulateStress, ::testing::Range(0, 6));

// Baseline comparators: the UPC/CAF-like PGAS layer and the MPI-2.2-style
// window wrapper.
#include <gtest/gtest.h>

#include <numeric>

#include "common/timing.hpp"
#include "baselines/mpi22_rma.hpp"
#include "baselines/pgas.hpp"

using namespace fompi;
using baselines::Mpi22Win;
using baselines::SharedArray;
using fabric::RankCtx;

TEST(Pgas, MemputMemgetRoundtrip) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    SharedArray arr(ctx, 256);
    std::vector<std::uint64_t> vals(8);
    std::iota(vals.begin(), vals.end(),
              static_cast<std::uint64_t>(ctx.rank()) * 100);
    arr.memput((ctx.rank() + 1) % 4, 0, vals.data(), 64);
    arr.barrier();
    const int left = (ctx.rank() + 3) % 4;
    auto* mine = static_cast<std::uint64_t*>(arr.local());
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>(left) * 100);
    std::uint64_t back = 0;
    arr.memget((ctx.rank() + 1) % 4, 8, &back, 8);
    arr.fence();
    EXPECT_EQ(back, static_cast<std::uint64_t>(ctx.rank()) * 100 + 1);
    arr.barrier();
    arr.destroy(ctx);
  });
}

TEST(Pgas, AtomicsMatchCrayExtensions) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    SharedArray arr(ctx, 64);
    for (int i = 0; i < 10; ++i) arr.amo_aadd(0, 0, 1);
    arr.barrier();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(arr.local());
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(10 * p));
    }
    // acswap: only one rank wins the swap from 0.
    const std::uint64_t old = arr.amo_acswap(
        0, 8, 0, static_cast<std::uint64_t>(ctx.rank()) + 1);
    arr.barrier();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(arr.local());
      EXPECT_NE(mine[1], 0u);
    }
    (void)old;
    arr.barrier();
    arr.destroy(ctx);
  });
}

TEST(Pgas, UpcConfigurationAddsOverheadUnderModel) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    SharedArray plain(ctx, 64);
    SharedArray upc(ctx, 64, baselines::make_upc_like());
    const std::uint64_t v = 1;
    Timer t0;
    for (int i = 0; i < 50; ++i) plain.memput(1 - ctx.rank(), 0, &v, 8);
    plain.fence();
    const double base = t0.elapsed_us();
    Timer t1;
    for (int i = 0; i < 50; ++i) upc.memput(1 - ctx.rank(), 0, &v, 8);
    upc.fence();
    const double with_overhead = t1.elapsed_us();
    EXPECT_GT(with_overhead, base + 40.0)
        << "UPC layer must add ~1.2us per op";
    plain.destroy(ctx);
    upc.destroy(ctx);
  }, opts);
}

TEST(Mpi22, FunctionallyEquivalentToCore) {
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Mpi22Win win = Mpi22Win::allocate(ctx, 128);
    win.fence();
    const std::uint64_t v = static_cast<std::uint64_t>(ctx.rank()) + 7;
    win.put(&v, 8, (ctx.rank() + 1) % 3, 0);
    win.fence();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>((ctx.rank() + 2) % 3) + 7);
    const std::uint64_t one = 1;
    win.accumulate(&one, 1, Elem::u64, RedOp::sum, 0, 8);
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[1], 3u);
    win.free();
  });
}

TEST(Mpi22, PscwAndLocksWork) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Mpi22Win win = Mpi22Win::allocate(ctx, 64);
    const int peer = 1 - ctx.rank();
    win.post(fabric::Group{peer});
    win.start(fabric::Group{peer});
    const std::uint64_t v = 11;
    win.put(&v, 8, peer, 0);
    win.complete();
    win.wait();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0], 11u);
    win.lock(core::LockType::exclusive, peer);
    const std::uint64_t w = 22;
    win.put(&w, 8, peer, 8);
    win.unlock(peer);
    ctx.barrier();
    EXPECT_EQ(mine[1], 22u);
    win.free();
  });
}

TEST(Mpi22, SlowerThanCoreUnderModel) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    core::Win fast = core::Win::allocate(ctx, 64);
    Mpi22Win slow = Mpi22Win::allocate(ctx, 64);
    const std::uint64_t v = 5;
    fast.fence();
    Timer t0;
    for (int i = 0; i < 20; ++i) fast.put(&v, 8, 1 - ctx.rank(), 0);
    fast.fence();
    const double fast_us = t0.elapsed_us();
    slow.fence();
    Timer t1;
    for (int i = 0; i < 20; ++i) slow.put(&v, 8, 1 - ctx.rank(), 0);
    slow.fence();
    const double slow_us = t1.elapsed_us();
    EXPECT_GT(slow_us, fast_us + 100.0)
        << "MPI-2.2 comparator must pay ~9us per op";
    slow.free();
    fast.free();
  }, opts);
}

// 3D FFT: 1D kernel against a naive DFT, parallel forward against a
// serial reference, round-trips, and backend equivalence.
#include <gtest/gtest.h>

#include <mutex>

#include "apps/fft.hpp"
#include "common/rng.hpp"

using namespace fompi;
using apps::cplx;
using apps::Fft3d;
using apps::FftBackend;
using fabric::RankCtx;

namespace {

std::vector<cplx> random_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
  return v;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double e = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e = std::max(e, std::abs(a[i] - b[i]));
  }
  return e;
}

}  // namespace

TEST(Fft1d, MatchesNaiveDft) {
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    auto in = random_field(n, n);
    std::vector<cplx> ref;
    apps::dft_reference(in, ref, false);
    auto fast = in;
    apps::fft1d(fast.data(), n, false);
    EXPECT_LT(max_err(fast, ref), 1e-9) << "n=" << n;
  }
}

TEST(Fft1d, RoundtripIsIdentity) {
  auto in = random_field(256, 5);
  auto v = in;
  apps::fft1d(v.data(), v.size(), false);
  apps::fft1d(v.data(), v.size(), true);
  EXPECT_LT(max_err(v, in), 1e-12);
}

TEST(Fft1d, ParsevalHolds) {
  auto in = random_field(64, 9);
  double time_energy = 0;
  for (const auto& x : in) time_energy += std::norm(x);
  auto f = in;
  apps::fft1d(f.data(), f.size(), false);
  double freq_energy = 0;
  for (const auto& x : f) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(in.size()), time_energy,
              1e-9);
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<cplx> v(6);
  EXPECT_THROW(apps::fft1d(v.data(), v.size(), false), Error);
}

class FftBackends : public ::testing::TestWithParam<FftBackend> {};

TEST_P(FftBackends, RoundtripAcrossRanks) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Fft3d fft(ctx, /*nx=*/8, /*ny=*/4, /*nz=*/8, GetParam());
    const auto in = random_field(
        fft.local_in_elems(), static_cast<std::uint64_t>(ctx.rank()) + 1);
    std::vector<cplx> freq(fft.local_out_elems());
    fft.forward(ctx, in.data(), freq.data());
    std::vector<cplx> back(fft.local_in_elems());
    fft.inverse(ctx, freq.data(), back.data());
    EXPECT_LT(max_err(back, in), 1e-10);
    fft.destroy(ctx);
  });
}

TEST_P(FftBackends, MatchesSerialTransform) {
  // Run the distributed FFT on 2 ranks and the same grid on 1 rank; the
  // spectra must agree (accounting for the slab layouts).
  constexpr int nx = 4, ny = 4, nz = 4;
  const std::size_t n3 = nx * ny * nz;
  // Global input, z-major layout: global[z][y][x].
  const auto global_in = random_field(n3, 77);
  std::vector<cplx> serial_freq;  // x-slab layout on 1 rank: [x][z][y]
  fabric::run_ranks(1, [&](RankCtx& ctx) {
    Fft3d fft(ctx, nx, ny, nz, GetParam());
    serial_freq.resize(fft.local_out_elems());
    fft.forward(ctx, global_in.data(), serial_freq.data());
    fft.destroy(ctx);
  });
  std::vector<cplx> par_freq(n3);
  std::mutex mu;
  const int p = 2;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Fft3d fft(ctx, nx, ny, nz, GetParam());
    const int lz = fft.lz(), lx = fft.lx();
    std::vector<cplx> in(fft.local_in_elems());
    for (int z = 0; z < lz; ++z) {
      const int gz = ctx.rank() * lz + z;
      std::copy(global_in.begin() + gz * ny * nx,
                global_in.begin() + (gz + 1) * ny * nx,
                in.begin() + static_cast<std::size_t>(z) * ny * nx);
    }
    std::vector<cplx> freq(fft.local_out_elems());
    fft.forward(ctx, in.data(), freq.data());
    {
      std::scoped_lock lock(mu);
      for (int xl = 0; xl < lx; ++xl) {
        const int gx = ctx.rank() * lx + xl;
        std::copy(freq.begin() + static_cast<std::size_t>(xl) * nz * ny,
                  freq.begin() + static_cast<std::size_t>(xl + 1) * nz * ny,
                  par_freq.begin() + static_cast<std::size_t>(gx) * nz * ny);
      }
    }
    fft.destroy(ctx);
  });
  EXPECT_LT(max_err(par_freq, serial_freq), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Backends, FftBackends,
                         ::testing::Values(FftBackend::p2p,
                                           FftBackend::rma_overlap,
                                           FftBackend::alltoallv));

TEST(Fft3d, BackendsProduceIdenticalSpectra) {
  constexpr int nx = 8, ny = 4, nz = 8;
  std::vector<std::vector<cplx>> spectra;
  std::mutex mu;
  for (auto backend : {FftBackend::p2p, FftBackend::rma_overlap,
                       FftBackend::alltoallv}) {
    auto& dst = spectra.emplace_back();
    fabric::run_ranks(2, [&](RankCtx& ctx) {
      Fft3d fft(ctx, nx, ny, nz, backend);
      const auto in = random_field(
          fft.local_in_elems(), static_cast<std::uint64_t>(ctx.rank()) + 31);
      std::vector<cplx> freq(fft.local_out_elems());
      fft.forward(ctx, in.data(), freq.data());
      {
        std::scoped_lock lock(mu);
        dst.resize(2 * fft.local_out_elems());
        std::copy(freq.begin(), freq.end(),
                  dst.begin() + static_cast<std::size_t>(ctx.rank()) *
                                    fft.local_out_elems());
      }
      fft.destroy(ctx);
    });
  }
  for (std::size_t i = 1; i < spectra.size(); ++i) {
    ASSERT_EQ(spectra[0].size(), spectra[i].size());
    EXPECT_LT(max_err(spectra[0], spectra[i]), 1e-12) << "backend " << i;
  }
}

TEST(Fft3d, PersistentPlanReusedAcrossTransforms) {
  // The alltoallv backend plans once in the constructor; repeated
  // forward/inverse round trips must all run over the same plan.
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    Fft3d fft(ctx, /*nx=*/8, /*ny=*/4, /*nz=*/8, FftBackend::alltoallv);
    for (int round = 0; round < 3; ++round) {
      const auto in = random_field(
          fft.local_in_elems(),
          static_cast<std::uint64_t>(ctx.rank() * 10 + round) + 1);
      std::vector<cplx> freq(fft.local_out_elems());
      fft.forward(ctx, in.data(), freq.data());
      std::vector<cplx> back(fft.local_in_elems());
      fft.inverse(ctx, freq.data(), back.data());
      EXPECT_LT(max_err(back, in), 1e-10) << "round " << round;
    }
    fft.destroy(ctx);
  });
}

TEST(Fft3d, InvalidDecompositionRejected) {
  EXPECT_THROW(fabric::run_ranks(3,
                                 [](RankCtx& ctx) {
                                   Fft3d fft(ctx, 8, 8, 8, FftBackend::p2p);
                                   fft.destroy(ctx);
                                 }),
               Error);
}

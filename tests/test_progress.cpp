// Progress engine coverage: the fiber scheduler (interleaving, awaits,
// epoch waits, spawn-during-run, modeled overlap), the put-with-notification
// plane (tag matching, per-source ordering, overflow-to-retry, typed
// peer_dead), and the app pipelines that ride them (DSDE nbx_fiber,
// hashtable rma_fiber, MILC notify-queue halos).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "apps/dsde.hpp"
#include "apps/hashtable.hpp"
#include "apps/milc.hpp"
#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "core/window.hpp"
#include "fabric/fabric.hpp"
#include "fabric/progress/progress.hpp"
#include "rdma/nic.hpp"

using namespace fompi;
using namespace fompi::rdma;
using core::Win;
using fabric::RankCtx;
namespace progress = fompi::fabric::progress;

namespace {

DomainConfig raw_domain(Injection inject) {
  DomainConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
  cfg.inject = inject;
  cfg.delivery = Delivery::immediate;
  return cfg;
}

/// Appends its letter to a shared log `n` times, yielding between appends.
class LogFiber final : public progress::Fiber {
 public:
  LogFiber(std::string& log, char letter, int n)
      : log_(log), letter_(letter), n_(n) {}

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < n_; ++i_) {
      log_.push_back(letter_);
      FOMPI_FIBER_YIELD(s);
    }
    FOMPI_FIBER_END();
  }

 private:
  std::string& log_;
  char letter_;
  int n_, i_ = 0;
};

/// Issues `ops` explicit-handle AMOs to rank 1, awaiting each completion.
class AmoPipeline final : public progress::Fiber {
 public:
  AmoPipeline(Nic& nic, const RegionDesc& d, int ops)
      : nic_(nic), d_(d), ops_(ops) {}
  OpStatus last_status = OpStatus::ok;

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < ops_; ++i_) {
      h_ = nic_.amo_nb(1, d_, (static_cast<std::size_t>(i_) % 8) * 8,
                       AmoOp::fetch_add, 1, 0, &fetched_);
      FOMPI_FIBER_AWAIT(s, h_);
      last_status = wake_status();
      if (last_status != OpStatus::ok) break;
    }
    FOMPI_FIBER_END();
  }

 private:
  Nic& nic_;
  const RegionDesc& d_;
  int ops_, i_ = 0;
  Handle h_ = kDoneHandle;
  alignas(8) std::uint64_t fetched_ = 0;
};

/// Issues `ops` implicit puts, then parks on the epoch (gsync) deadline.
class EpochFiber final : public progress::Fiber {
 public:
  EpochFiber(Nic& nic, const RegionDesc& d, int ops)
      : nic_(nic), d_(d), ops_(ops) {}
  OpStatus epoch_status = OpStatus::pending;

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < ops_; ++i_) {
      src_ = static_cast<std::uint64_t>(i_) + 1;
      nic_.put_nbi(1, d_, (static_cast<std::size_t>(i_) % 8) * 8, &src_, 8);
    }
    FOMPI_FIBER_AWAIT_EPOCH(s);
    epoch_status = wake_status();
    FOMPI_FIBER_END();
  }

 private:
  Nic& nic_;
  const RegionDesc& d_;
  int ops_, i_ = 0;
  alignas(8) std::uint64_t src_ = 0;
};

/// Spawns `children` LogFibers from inside a running fiber.
class SpawnerFiber final : public progress::Fiber {
 public:
  SpawnerFiber(std::string& log, int children) : log_(log), n_(children) {}

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < n_; ++i_) {
      s.spawn<LogFiber>(log_, static_cast<char>('a' + i_), 2);
      FOMPI_FIBER_YIELD(s);
    }
    FOMPI_FIBER_END();
  }

 private:
  std::string& log_;
  int n_, i_ = 0;
};

}  // namespace

// --- scheduler basics --------------------------------------------------------

TEST(Scheduler, IdleRunReturnsImmediately) {
  Domain dom(raw_domain(Injection::none));
  progress::Scheduler sched(dom.nic(0), [] {});
  sched.run();  // no fibers adopted: must be a no-op
  EXPECT_EQ(sched.switches(), 0u);
  EXPECT_EQ(sched.live(), 0u);
}

TEST(Scheduler, FibersInterleaveRoundRobin) {
  Domain dom(raw_domain(Injection::none));
  progress::Scheduler sched(dom.nic(0), [] {});
  std::string log;
  sched.spawn<LogFiber>(log, 'a', 3);
  sched.spawn<LogFiber>(log, 'b', 3);
  sched.run();
  EXPECT_EQ(log, "ababab");
  EXPECT_GE(sched.switches(), 6u);
  EXPECT_EQ(sched.live(), 0u);
}

TEST(Scheduler, SpawnDuringRunIsPickedUp) {
  Domain dom(raw_domain(Injection::none));
  progress::Scheduler sched(dom.nic(0), [] {});
  std::string log;
  sched.spawn<SpawnerFiber>(log, 3);
  sched.run();
  std::sort(log.begin(), log.end());
  EXPECT_EQ(log, "aabbcc");
}

TEST(Scheduler, AwaitWithoutInjectedTimeCompletesInline) {
  // Injection::none: every op is complete at issue, so awaits retire on
  // the spot — the pipeline still finishes and the counters tick.
  Domain dom(raw_domain(Injection::none));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(1 << 12);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 12);
  const OpCounters before = op_counters();
  progress::Scheduler sched(nic, [] {});
  auto& f = sched.spawn<AmoPipeline>(nic, d, 64);
  sched.run();
  EXPECT_EQ(f.last_status, OpStatus::ok);
  EXPECT_TRUE(f.done());
  EXPECT_EQ(nic.explicit_outstanding(), 0u);
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::fiber_spawn), 1u);
  EXPECT_GE(delta.get(Op::fiber_switch), 1u);
}

TEST(Scheduler, AwaitEpochDrainsImplicitOps) {
  for (const Injection inject : {Injection::none, Injection::model}) {
    Domain dom(raw_domain(inject));
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 12);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 12);
    progress::Scheduler sched(nic, [] {});
    auto& f = sched.spawn<EpochFiber>(nic, d, 32);
    sched.run();
    EXPECT_EQ(f.epoch_status, OpStatus::ok);
    EXPECT_EQ(nic.outstanding(), 0u);
  }
}

TEST(Scheduler, ModeledOverlapBeatsSerialIssue) {
  // 8 fibers of 32 AMOs vs 1 fiber of 256: same modeled work, but the
  // pipelines overlap up to 8 network latencies. A 100 us AMO latency
  // (vs the Gemini 2.4 us) makes modeled time dominate software issue
  // overhead even under sanitizer instrumentation, so the conservative
  // 1.67x bound holds in every build flavor.
  const int kTotal = 256;
  auto wall_us = [&](int fibers) {
    DomainConfig cfg = raw_domain(Injection::model);
    cfg.model.amo_base_ns = 100'000;
    Domain dom(cfg);
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 12);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 12);
    progress::Scheduler sched(nic, [] {});
    for (int f = 0; f < fibers; ++f) {
      sched.spawn<AmoPipeline>(nic, d, kTotal / fibers);
    }
    Timer t;
    sched.run();
    return t.elapsed_us();
  };
  const double serial = wall_us(1);
  const double overlapped = wall_us(8);
  EXPECT_LT(overlapped, 0.6 * serial)
      << "serial " << serial << " us, 8-fiber " << overlapped << " us";
}

// --- notify plane ------------------------------------------------------------

TEST(Notify, TagMatchingAndPerSourceOrdering) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 3;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 4096);
    win.lock_all();
    win.notify_enable(ctx, 64);
    if (ctx.rank() != 0) {
      // Each producer: three records under its own tag, payload slots
      // 0/1/2, posted in order.
      alignas(8) std::uint64_t v = 0;
      for (int i = 0; i < 3; ++i) {
        v = static_cast<std::uint64_t>(100 * ctx.rank() + i);
        const std::size_t tdisp = static_cast<std::size_t>(
            16 * ctx.rank() + 8 * (i % 2));
        EXPECT_EQ(win.put_notify(&v, 8, 0, tdisp,
                                 static_cast<std::uint64_t>(ctx.rank())),
                  OpStatus::ok);
      }
    } else {
      // Probe for a tag nobody sends: must miss without consuming.
      progress::NotifyRecord rec;
      EXPECT_FALSE(win.notify_probe(99, &rec));
      // Tag matching decouples consumption from arrival interleaving:
      // drain tag 2 first, then tag 1; per-source records arrive in
      // posted (seq) order.
      for (const std::uint64_t tag : {2ull, 1ull}) {
        std::uint64_t prev_seq = 0;
        bool first = true;
        for (int got = 0; got < 3;) {
          const std::size_t n = win.notify_waitsome(tag, &rec, 1);
          ASSERT_EQ(n, 1u);
          EXPECT_EQ(rec.tag, tag);
          EXPECT_EQ(rec.source, static_cast<int>(tag));
          EXPECT_EQ(rec.bytes, 8u);
          if (!first) {
            EXPECT_GT(rec.seq, prev_seq) << "per-source order";
          }
          prev_seq = rec.seq;
          first = false;
          ++got;
        }
      }
      EXPECT_FALSE(win.notify_probe(progress::kAnyNotifyTag, &rec))
          << "ring fully drained";
    }
    win.unlock_all();
    ctx.barrier();
    win.free();
  }, opts);
}

TEST(Notify, OverflowRetriesUntilConsumerFreesSlots) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  constexpr int kPosts = 16;
  std::atomic<std::uint64_t> producer_retries{0};
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.lock_all();
    win.notify_enable(ctx, /*capacity=*/4);
    progress::NotifyPlane& plane = *win.notify_plane();
    if (ctx.rank() == 1) {
      const OpCounters before = op_counters();
      alignas(8) std::uint64_t v = 7;
      for (int i = 0; i < kPosts; ++i) {
        EXPECT_EQ(win.put_notify(&v, 8, 0, 0, 5), OpStatus::ok);
      }
      producer_retries = op_counters().since(before).get(Op::notify_retry);
    } else {
      // Give the producer time to slam into the full ring: consume
      // nothing until the 5th reservation (which cannot fit in a 4-slot
      // ring with cursor still at 0) has landed.
      while (plane.reserved(0) < 5) ctx.yield_check();
      progress::NotifyRecord rec;
      for (int got = 0; got < kPosts;) {
        got += static_cast<int>(win.notify_waitsome(5, &rec, 1));
      }
      EXPECT_EQ(plane.reserved(0), static_cast<std::uint64_t>(kPosts));
      EXPECT_EQ(plane.consumed(0), static_cast<std::uint64_t>(kPosts));
    }
    win.unlock_all();
    ctx.barrier();
    win.free();
  }, opts);
  EXPECT_GE(producer_retries.load(), 1u)
      << "the 4-slot ring must have forced overflow-to-retry";
}

TEST(Notify, PutNotifyCarriesPayloadUnderDeferredDelivery) {
  // Deferred delivery is the weakest legal RDMA behaviour: remote memory
  // commits only at op completion. put_notify flushes the payload before
  // posting the record, so a consumed record always implies visible data.
  for (const Delivery delivery : {Delivery::immediate, Delivery::deferred}) {
    fabric::FabricOptions opts;
    opts.domain.nranks = 2;
    opts.domain.ranks_per_node = 1;
    opts.domain.delivery = delivery;
    fabric::run_ranks(2, [](RankCtx& ctx) {
      Win win = Win::allocate(ctx, 256);
      win.lock_all();
      win.notify_enable(ctx, 16);
      if (ctx.rank() == 1) {
        alignas(8) std::uint64_t v = 0xfeedfacecafe0001ull;
        EXPECT_EQ(win.put_notify(&v, 8, 0, 24, 3), OpStatus::ok);
      } else {
        progress::NotifyRecord rec;
        ASSERT_EQ(win.notify_waitsome(3, &rec, 1), 1u);
        EXPECT_EQ(rec.tag, 3u);
        EXPECT_EQ(rec.source, 1);
        EXPECT_EQ(rec.tdisp, 24u);
        EXPECT_EQ(rec.bytes, 8u);
        std::uint64_t got = 0;
        std::memcpy(&got, static_cast<const std::byte*>(win.base()) + rec.tdisp,
                    8);
        EXPECT_EQ(got, 0xfeedfacecafe0001ull);
      }
      win.unlock_all();
      ctx.barrier();
      win.free();
    }, opts);
  }
}

TEST(Notify, WaitsomeReturnsTypedPeerDead) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  // Window setup ends near op 16 and notify_enable's collective follows;
  // op 80 is safely inside the victim's put loop.
  opts.domain.fault.kill_at_op = 80;
  opts.errors_return = true;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    core::WinConfig wcfg;
    wcfg.err_mode = core::ErrMode::errors_return;
    Win win = Win::allocate(ctx, 256, wcfg);
    win.lock_all();
    win.notify_enable(ctx, 16);
    if (ctx.rank() == 1) {
      alignas(8) std::uint64_t v = 1;
      for (int i = 0; i < 1000; ++i) {
        win.put(&v, 8, 0, 0);
        win.flush(0);
      }
      FAIL() << "rank 1 must have been killed";
    }
    // Wait on a tag the producer never posts: the typed wait must return
    // 0 with peer_dead once the source dies, not hang.
    progress::NotifyRecord rec;
    OpStatus st = OpStatus::ok;
    const std::size_t n = win.notify_waitsome(42, &rec, 1, /*source=*/1, &st);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(st, OpStatus::peer_dead);
  }, opts);
}

// --- app pipelines on the engine ---------------------------------------------

TEST(AppFiber, DsdeNbxFiberMatchesAlltoall) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 4;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(4, [](RankCtx& ctx) {
    const auto sends =
        apps::dsde_random_workload(ctx.rank(), ctx.nranks(), 3, 17);
    auto fiber = apps::dsde_exchange(ctx, apps::DsdeProto::nbx_fiber, sends);
    ctx.barrier();
    auto dense = apps::dsde_exchange(ctx, apps::DsdeProto::alltoall, sends);
    auto key = [](const apps::DsdeMsg& a, const apps::DsdeMsg& b) {
      return a.peer != b.peer ? a.peer < b.peer : a.payload < b.payload;
    };
    std::sort(fiber.begin(), fiber.end(), key);
    std::sort(dense.begin(), dense.end(), key);
    EXPECT_EQ(fiber, dense);
  }, opts);
}

TEST(AppFiber, HashtableFiberBackendInsertsAndDedupes) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 4;
  opts.domain.ranks_per_node = 1;
  constexpr int kPerRank = 96;
  fabric::run_ranks(4, [](RankCtx& ctx) {
    // Small table forces collisions through the heap-chain CAS path.
    apps::DistHashtable table(ctx, apps::HtBackend::rma_fiber, 64, 1024);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < kPerRank; ++i) {
      keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 1000 +
                     static_cast<std::uint64_t>(i) + 1);
    }
    table.batch_insert(ctx, keys);
    EXPECT_EQ(table.global_count(ctx), 4u * kPerRank);
    for (const std::uint64_t k : keys) EXPECT_TRUE(table.contains(k));
    EXPECT_FALSE(table.contains(999999));
    // Re-insertion dedup contract (same as the blocking rma backend): the
    // top-slot CAS catches slot-resident keys; chained keys may store a
    // second node, never more.
    table.batch_insert(ctx, keys);
    EXPECT_GE(table.global_count(ctx), 4u * kPerRank);
    EXPECT_LE(table.global_count(ctx), 2u * 4u * kPerRank);
    table.destroy(ctx);
  }, opts);
}

TEST(AppFiber, MilcNotifyQueueHalosMatchFlagGetScheme) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 4;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(4, [](RankCtx& ctx) {
    apps::MilcConfig base;
    base.local = {4, 4, 4, 4};
    base.grid = apps::milc_default_grid(4);
    apps::MilcConfig flag_cfg = base;
    flag_cfg.backend = apps::MilcBackend::rma;
    apps::MilcConfig queue_cfg = base;
    queue_cfg.backend = apps::MilcBackend::rma_notify_queue;
    apps::MilcSolver flag(ctx, flag_cfg);
    apps::MilcSolver queue(ctx, queue_cfg);
    std::vector<double> in(flag.local_sites());
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<double>((ctx.rank() + 1) * 37 + i % 11) / 7.0;
    }
    std::vector<double> out_flag, out_queue;
    for (int iter = 0; iter < 3; ++iter) {  // exercise epoch reuse
      flag.apply_operator(ctx, in, out_flag);
      queue.apply_operator(ctx, in, out_queue);
      ASSERT_EQ(out_flag.size(), out_queue.size());
      for (std::size_t i = 0; i < out_flag.size(); ++i) {
        ASSERT_DOUBLE_EQ(out_flag[i], out_queue[i]) << "site " << i;
      }
    }
    queue.destroy(ctx);
    flag.destroy(ctx);
  }, opts);
}

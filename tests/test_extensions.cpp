// Extensions beyond the MPI-3.0 surface: notified access (NotifyWin),
// derived-datatype accumulates, and request-based accumulates.
#include <gtest/gtest.h>

#include <numeric>

#include "core/notify.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::NotifyWin;
using core::Win;
using dt::Datatype;
using fabric::RankCtx;

TEST(Notify, PutNotifyDeliversDataBeforeFlag) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    NotifyWin win(ctx, 256, /*num_ids=*/4);
    const int peer = 1 - ctx.rank();
    std::array<std::uint64_t, 4> payload;
    payload.fill(static_cast<std::uint64_t>(ctx.rank()) + 7);
    win.put_notify(payload.data(), 32, peer, 0, /*id=*/2);
    win.wait_notify(2);
    const auto* mine = static_cast<const std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>(peer) + 7);
    EXPECT_EQ(mine[3], static_cast<std::uint64_t>(peer) + 7);
    win.destroy(ctx);
  });
}

TEST(Notify, CountersAccumulateAndConsume) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    NotifyWin win(ctx, 64, 2);
    if (ctx.rank() == 0) {
      const std::uint64_t v = 1;
      for (int i = 0; i < 5; ++i) win.put_notify(&v, 8, 1, 0, 0);
      ctx.barrier();
      ctx.barrier();
    } else {
      ctx.barrier();
      EXPECT_EQ(win.test_notify(0), 5u);
      win.wait_notify(0, 3);
      EXPECT_EQ(win.test_notify(0), 2u);
      win.wait_notify(0, 2);
      EXPECT_EQ(win.test_notify(0), 0u);
      ctx.barrier();
    }
    win.destroy(ctx);
  });
}

TEST(Notify, IdsAreIndependent) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    NotifyWin win(ctx, 64, 3);
    if (ctx.rank() == 0) {
      const std::uint64_t a = 11, b = 22;
      win.put_notify(&a, 8, 1, 0, 0);
      win.put_notify(&b, 8, 1, 8, 2);
    } else {
      win.wait_notify(2);  // can wait out of order
      win.wait_notify(0);
      const auto* mine = static_cast<const std::uint64_t*>(win.base());
      EXPECT_EQ(mine[0], 11u);
      EXPECT_EQ(mine[1], 22u);
      EXPECT_EQ(win.test_notify(1), 0u);
    }
    win.destroy(ctx);
  });
}

TEST(Notify, PipelineLikeMilcScheme) {
  // The MILC pattern with notified access: the halo arrives with its flag.
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    NotifyWin win(ctx, 64, 1);
    for (int round = 1; round <= 5; ++round) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(round * 100 + ctx.rank());
      win.put_notify(&v, 8, (ctx.rank() + 1) % p, 0, 0);
      win.wait_notify(0);
      const auto* mine = static_cast<const std::uint64_t*>(win.base());
      const int left = (ctx.rank() + p - 1) % p;
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(round * 100 + left));
      ctx.barrier();  // buffer reuse across rounds
    }
    win.destroy(ctx);
  });
}

TEST(Notify, Validation) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    NotifyWin win(ctx, 64, 2);
    const std::uint64_t v = 0;
    EXPECT_THROW(win.put_notify(&v, 8, 1, 0, 5), Error);   // bad id
    EXPECT_THROW(win.put_notify(&v, 8, 1, 60, 0), Error);  // range
    EXPECT_THROW(win.wait_notify(-1), Error);
    EXPECT_THROW(win.test_notify(2), Error);
    ctx.barrier();
    win.destroy(ctx);
  });
}

TEST(DatatypeAccumulate, StridedSumAccelerated) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    for (int i = 0; i < 8; ++i) mine[i] = 100;
    win.fence();
    if (ctx.rank() == 0) {
      // Add {1,2,3,4} into every other word of the target.
      const std::array<std::uint64_t, 4> vals{1, 2, 3, 4};
      const Datatype contig = Datatype::contiguous(4, Datatype::u64());
      const Datatype strided = Datatype::vector(4, 1, 2, Datatype::u64());
      win.accumulate(vals.data(), 1, contig, Elem::u64, RedOp::sum, 1, 0, 1,
                     strided);
    }
    win.fence();
    if (ctx.rank() == 1) {
      EXPECT_EQ(mine[0], 101u);
      EXPECT_EQ(mine[1], 100u);
      EXPECT_EQ(mine[2], 102u);
      EXPECT_EQ(mine[4], 103u);
      EXPECT_EQ(mine[6], 104u);
    }
    win.free();
  });
}

TEST(DatatypeAccumulate, StridedMinFallback) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<double*>(win.base());
    for (int i = 0; i < 8; ++i) mine[i] = 50.0;
    win.fence();
    if (ctx.rank() == 0) {
      const std::array<double, 2> vals{10.0, 99.0};
      const Datatype contig = Datatype::contiguous(2, Datatype::f64());
      const Datatype strided = Datatype::vector(2, 1, 4, Datatype::f64());
      win.accumulate(vals.data(), 1, contig, Elem::f64, RedOp::min, 1, 0, 1,
                     strided);
    }
    win.fence();
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(mine[0], 10.0);
      EXPECT_DOUBLE_EQ(mine[4], 50.0);  // min(50, 99)
    }
    win.free();
  });
}

TEST(DatatypeAccumulate, MisalignedFragmentRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.fence();
    // 4-byte blocks cannot carry 8-byte elements.
    const std::array<std::uint64_t, 2> vals{1, 2};
    const Datatype o = Datatype::contiguous(4, Datatype::i32());
    const Datatype t = Datatype::vector(4, 1, 2, Datatype::i32());
    EXPECT_THROW(win.accumulate(vals.data(), 1, o, Elem::u64, RedOp::sum,
                                1 - ctx.rank(), 0, 1, t),
                 Error);
    win.fence();
    win.free();
  });
}

TEST(Raccumulate, ExplicitCompletion) {
  const int p = 3;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    std::array<std::uint64_t, 4> vals{1, 1, 1, 1};
    core::RmaRequest req =
        win.raccumulate(vals.data(), 4, Elem::u64, RedOp::sum, 0, 0);
    req.wait();
    win.flush(0);
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto* mine = static_cast<const std::uint64_t*>(win.base());
      win.sync();
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(mine[i], static_cast<std::uint64_t>(p));
      }
    }
    win.free();
  });
}

TEST(Raccumulate, FallbackOpsCompleteEagerly) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<double*>(win.base());
    mine[0] = 5.0;
    win.fence();
    if (ctx.rank() == 1) {
      const double v = 2.0;
      core::RmaRequest req =
          win.raccumulate(&v, 1, Elem::f64, RedOp::prod, 0, 0);
      EXPECT_TRUE(req.test());  // fallback: already done
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_DOUBLE_EQ(mine[0], 10.0);
    win.free();
  });
}

// Communication calls: contiguous fast path, datatype transfers,
// request-based operations, both transports and both delivery modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "core/window.hpp"

using namespace fompi;
using core::Win;
using dt::Datatype;
using fabric::RankCtx;

namespace {

struct ModeCase {
  rdma::Delivery delivery;
  int ranks_per_node;
  bool shuffle;
};

class CommModes : public ::testing::TestWithParam<ModeCase> {};

fabric::FabricOptions opts_for(const ModeCase& m) {
  fabric::FabricOptions o;
  o.domain.delivery = m.delivery;
  o.domain.ranks_per_node = m.ranks_per_node;
  o.domain.shuffle_deferred = m.shuffle;
  return o;
}

}  // namespace

TEST_P(CommModes, PutGetContiguousRing) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 1024);
    std::vector<std::uint64_t> out(16);
    std::iota(out.begin(), out.end(),
              static_cast<std::uint64_t>(ctx.rank()) * 1000);
    win.fence();
    win.put(out.data(), out.size() * 8, (ctx.rank() + 1) % 4, 0);
    win.fence();
    // Verify what landed locally (our left neighbor's data).
    const int left = (ctx.rank() + 3) % 4;
    auto* mine = static_cast<std::uint64_t*>(win.base());
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(mine[i], static_cast<std::uint64_t>(left) * 1000 + i);
    }
    // And read it back with a get from the right neighbor.
    std::vector<std::uint64_t> in(16, 0);
    win.get(in.data(), 128, (ctx.rank() + 1) % 4, 0);
    win.fence();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(in[i], static_cast<std::uint64_t>(ctx.rank()) * 1000 + i);
    }
    win.free();
  }, opts_for(GetParam()));
}

TEST_P(CommModes, LargeTransfersCrossProtocolThreshold) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    constexpr std::size_t kBytes = 1 << 16;  // beyond the BTE threshold
    Win win = Win::allocate(ctx, kBytes);
    std::vector<std::uint8_t> out(kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
      out[i] = static_cast<std::uint8_t>((i * 7 + ctx.rank()) & 0xff);
    }
    win.fence();
    win.put(out.data(), kBytes, 1 - ctx.rank(), 0);
    win.fence();
    auto* mine = static_cast<std::uint8_t*>(win.base());
    for (std::size_t i = 0; i < kBytes; i += 997) {
      ASSERT_EQ(mine[i],
                static_cast<std::uint8_t>((i * 7 + 1 - ctx.rank()) & 0xff));
    }
    win.free();
  }, opts_for(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CommModes,
    ::testing::Values(ModeCase{rdma::Delivery::immediate, 0, false},
                      ModeCase{rdma::Delivery::immediate, 1, false},
                      ModeCase{rdma::Delivery::deferred, 1, false},
                      ModeCase{rdma::Delivery::deferred, 1, true},
                      ModeCase{rdma::Delivery::deferred, 2, true}));

TEST(Comm, StridedPutWithDatatypes) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    // Put every other element of an 8-element vector into a contiguous
    // target region.
    Win win = Win::allocate(ctx, 256);
    const Datatype strided = Datatype::vector(4, 1, 2, Datatype::i64());
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    std::array<std::int64_t, 8> src{};
    for (int i = 0; i < 8; ++i) src[static_cast<std::size_t>(i)] = 10 * i;
    win.fence();
    if (ctx.rank() == 0) {
      win.put(src.data(), 1, strided, 1, 0, 1, contig);
    }
    win.fence();
    if (ctx.rank() == 1) {
      auto* mine = static_cast<std::int64_t*>(win.base());
      EXPECT_EQ(mine[0], 0);
      EXPECT_EQ(mine[1], 20);
      EXPECT_EQ(mine[2], 40);
      EXPECT_EQ(mine[3], 60);
    }
    win.free();
  });
}

TEST(Comm, ScatterIntoStridedTarget) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::int64_t*>(win.base());
    for (int i = 0; i < 16; ++i) mine[i] = -1;
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    const Datatype strided = Datatype::vector(4, 1, 3, Datatype::i64());
    std::array<std::int64_t, 4> src{7, 8, 9, 10};
    win.fence();
    if (ctx.rank() == 0) {
      win.put(src.data(), 1, contig, 1, 0, 1, strided);
    }
    win.fence();
    if (ctx.rank() == 1) {
      EXPECT_EQ(mine[0], 7);
      EXPECT_EQ(mine[3], 8);
      EXPECT_EQ(mine[6], 9);
      EXPECT_EQ(mine[9], 10);
      EXPECT_EQ(mine[1], -1);  // gaps untouched
      EXPECT_EQ(mine[2], -1);
    }
    win.free();
  });
}

TEST(Comm, GetWithStridedOrigin) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::int64_t*>(win.base());
    for (int i = 0; i < 8; ++i) mine[i] = 100 * ctx.rank() + i;
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    const Datatype strided = Datatype::vector(4, 1, 2, Datatype::i64());
    std::array<std::int64_t, 8> dst;
    dst.fill(-5);
    win.fence();
    win.get(dst.data(), 1, strided, 1 - ctx.rank(), 0, 1, contig);
    win.fence();
    const int peer = 1 - ctx.rank();
    EXPECT_EQ(dst[0], 100 * peer + 0);
    EXPECT_EQ(dst[2], 100 * peer + 1);
    EXPECT_EQ(dst[4], 100 * peer + 2);
    EXPECT_EQ(dst[6], 100 * peer + 3);
    EXPECT_EQ(dst[1], -5);
    win.free();
  });
}

TEST(Comm, DatatypePayloadMismatchRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.fence();
    std::array<std::int64_t, 8> buf{};
    EXPECT_THROW(win.put(buf.data(), 2, Datatype::i64(), 1 - ctx.rank(), 0, 3,
                         Datatype::i64()),
                 Error);
    win.fence();
    win.free();
  });
}

TEST(Comm, RputRgetExplicitCompletion) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.lock_all();
    if (ctx.rank() == 0) {
      std::array<std::uint64_t, 4> v{1, 2, 3, 4};
      core::RmaRequest req = win.rput(v.data(), 32, 1, 0);
      req.wait();
      win.flush(1);  // remote completion before signaling
      std::uint64_t flag = 1;
      win.accumulate(&flag, 1, Elem::u64, RedOp::replace, 1, 64);
      win.flush(1);
    } else {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      std::atomic_ref<std::uint64_t> flag(mine[8]);
      while (flag.load(std::memory_order_acquire) == 0) ctx.yield_check();
      win.sync();
      EXPECT_EQ(mine[0], 1u);
      EXPECT_EQ(mine[3], 4u);
      // rget it back.
      std::array<std::uint64_t, 4> back{};
      core::RmaRequest req = win.rget(back.data(), 32, 1, 0);
      EXPECT_NO_THROW(req.wait());
      EXPECT_EQ(back[1], 2u);
    }
    win.unlock_all();
    win.free();
  });
}

TEST(Comm, RequestTestEventuallyCompletes) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    std::uint64_t v = 99;
    core::RmaRequest req = win.rput(&v, 8, 1 - ctx.rank(), 0);
    int spins = 0;
    while (!req.test()) {
      ++spins;
      ctx.yield_check();
    }
    // Under the latency model a put takes ~1us, so test() must have
    // reported "incomplete" at least once.
    EXPECT_GE(spins, 0);
    win.unlock_all();
    win.free();
  }, opts);
}

TEST(Comm, SelfCommunicationWorks) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    const std::uint64_t v = 0xabc;
    win.put(&v, 8, ctx.rank(), 8);
    win.fence();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[1], 0xabcu);
    win.free();
  });
}

TEST(Comm, ZeroByteTransfersAreNoops) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    std::uint64_t v = 7;
    EXPECT_NO_THROW(win.put(&v, 0, 1 - ctx.rank(), 0));
    EXPECT_NO_THROW(win.get(&v, 0, 1 - ctx.rank(), 64));  // edge offset ok
    win.fence();
    win.free();
  });
}

// Communication calls: contiguous fast path, datatype transfers,
// request-based operations, both transports and both delivery modes.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <numeric>

#include "common/instr.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::Win;
using dt::Datatype;
using fabric::RankCtx;

namespace {

struct ModeCase {
  rdma::Delivery delivery;
  int ranks_per_node;
  bool shuffle;
};

class CommModes : public ::testing::TestWithParam<ModeCase> {};

fabric::FabricOptions opts_for(const ModeCase& m) {
  fabric::FabricOptions o;
  o.domain.delivery = m.delivery;
  o.domain.ranks_per_node = m.ranks_per_node;
  o.domain.shuffle_deferred = m.shuffle;
  return o;
}

}  // namespace

TEST_P(CommModes, PutGetContiguousRing) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 1024);
    std::vector<std::uint64_t> out(16);
    std::iota(out.begin(), out.end(),
              static_cast<std::uint64_t>(ctx.rank()) * 1000);
    win.fence();
    win.put(out.data(), out.size() * 8, (ctx.rank() + 1) % 4, 0);
    win.fence();
    // Verify what landed locally (our left neighbor's data).
    const int left = (ctx.rank() + 3) % 4;
    auto* mine = static_cast<std::uint64_t*>(win.base());
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(mine[i], static_cast<std::uint64_t>(left) * 1000 + i);
    }
    // And read it back with a get from the right neighbor.
    std::vector<std::uint64_t> in(16, 0);
    win.get(in.data(), 128, (ctx.rank() + 1) % 4, 0);
    win.fence();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(in[i], static_cast<std::uint64_t>(ctx.rank()) * 1000 + i);
    }
    win.free();
  }, opts_for(GetParam()));
}

TEST_P(CommModes, LargeTransfersCrossProtocolThreshold) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    constexpr std::size_t kBytes = 1 << 16;  // beyond the BTE threshold
    Win win = Win::allocate(ctx, kBytes);
    std::vector<std::uint8_t> out(kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
      out[i] = static_cast<std::uint8_t>((i * 7 + ctx.rank()) & 0xff);
    }
    win.fence();
    win.put(out.data(), kBytes, 1 - ctx.rank(), 0);
    win.fence();
    auto* mine = static_cast<std::uint8_t*>(win.base());
    for (std::size_t i = 0; i < kBytes; i += 997) {
      ASSERT_EQ(mine[i],
                static_cast<std::uint8_t>((i * 7 + 1 - ctx.rank()) & 0xff));
    }
    win.free();
  }, opts_for(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CommModes,
    ::testing::Values(ModeCase{rdma::Delivery::immediate, 0, false},
                      ModeCase{rdma::Delivery::immediate, 1, false},
                      ModeCase{rdma::Delivery::deferred, 1, false},
                      ModeCase{rdma::Delivery::deferred, 1, true},
                      ModeCase{rdma::Delivery::deferred, 2, true}));

TEST(Comm, StridedPutWithDatatypes) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    // Put every other element of an 8-element vector into a contiguous
    // target region.
    Win win = Win::allocate(ctx, 256);
    const Datatype strided = Datatype::vector(4, 1, 2, Datatype::i64());
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    std::array<std::int64_t, 8> src{};
    for (int i = 0; i < 8; ++i) src[static_cast<std::size_t>(i)] = 10 * i;
    win.fence();
    if (ctx.rank() == 0) {
      win.put(src.data(), 1, strided, 1, 0, 1, contig);
    }
    win.fence();
    if (ctx.rank() == 1) {
      auto* mine = static_cast<std::int64_t*>(win.base());
      EXPECT_EQ(mine[0], 0);
      EXPECT_EQ(mine[1], 20);
      EXPECT_EQ(mine[2], 40);
      EXPECT_EQ(mine[3], 60);
    }
    win.free();
  });
}

TEST(Comm, ScatterIntoStridedTarget) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::int64_t*>(win.base());
    for (int i = 0; i < 16; ++i) mine[i] = -1;
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    const Datatype strided = Datatype::vector(4, 1, 3, Datatype::i64());
    std::array<std::int64_t, 4> src{7, 8, 9, 10};
    win.fence();
    if (ctx.rank() == 0) {
      win.put(src.data(), 1, contig, 1, 0, 1, strided);
    }
    win.fence();
    if (ctx.rank() == 1) {
      EXPECT_EQ(mine[0], 7);
      EXPECT_EQ(mine[3], 8);
      EXPECT_EQ(mine[6], 9);
      EXPECT_EQ(mine[9], 10);
      EXPECT_EQ(mine[1], -1);  // gaps untouched
      EXPECT_EQ(mine[2], -1);
    }
    win.free();
  });
}

TEST(Comm, GetWithStridedOrigin) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::int64_t*>(win.base());
    for (int i = 0; i < 8; ++i) mine[i] = 100 * ctx.rank() + i;
    const Datatype contig = Datatype::contiguous(4, Datatype::i64());
    const Datatype strided = Datatype::vector(4, 1, 2, Datatype::i64());
    std::array<std::int64_t, 8> dst;
    dst.fill(-5);
    win.fence();
    win.get(dst.data(), 1, strided, 1 - ctx.rank(), 0, 1, contig);
    win.fence();
    const int peer = 1 - ctx.rank();
    EXPECT_EQ(dst[0], 100 * peer + 0);
    EXPECT_EQ(dst[2], 100 * peer + 1);
    EXPECT_EQ(dst[4], 100 * peer + 2);
    EXPECT_EQ(dst[6], 100 * peer + 3);
    EXPECT_EQ(dst[1], -5);
    win.free();
  });
}

TEST(Comm, DatatypePayloadMismatchRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.fence();
    std::array<std::int64_t, 8> buf{};
    EXPECT_THROW(win.put(buf.data(), 2, Datatype::i64(), 1 - ctx.rank(), 0, 3,
                         Datatype::i64()),
                 Error);
    win.fence();
    win.free();
  });
}

TEST(Comm, RputRgetExplicitCompletion) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    win.lock_all();
    if (ctx.rank() == 0) {
      std::array<std::uint64_t, 4> v{1, 2, 3, 4};
      core::RmaRequest req = win.rput(v.data(), 32, 1, 0);
      req.wait();
      win.flush(1);  // remote completion before signaling
      std::uint64_t flag = 1;
      win.accumulate(&flag, 1, Elem::u64, RedOp::replace, 1, 64);
      win.flush(1);
    } else {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      std::atomic_ref<std::uint64_t> flag(mine[8]);
      while (flag.load(std::memory_order_acquire) == 0) ctx.yield_check();
      win.sync();
      EXPECT_EQ(mine[0], 1u);
      EXPECT_EQ(mine[3], 4u);
      // rget it back.
      std::array<std::uint64_t, 4> back{};
      core::RmaRequest req = win.rget(back.data(), 32, 1, 0);
      EXPECT_NO_THROW(req.wait());
      EXPECT_EQ(back[1], 2u);
    }
    win.unlock_all();
    win.free();
  });
}

TEST(Comm, RequestTestEventuallyCompletes) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    std::uint64_t v = 99;
    core::RmaRequest req = win.rput(&v, 8, 1 - ctx.rank(), 0);
    int spins = 0;
    while (!req.test()) {
      ++spins;
      ctx.yield_check();
    }
    // Under the latency model a put takes ~1us, so test() must have
    // reported "incomplete" at least once.
    EXPECT_GE(spins, 0);
    win.unlock_all();
    win.free();
  }, opts);
}

TEST(Comm, SelfCommunicationWorks) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    const std::uint64_t v = 0xabc;
    win.put(&v, 8, ctx.rank(), 8);
    win.fence();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[1], 0xabcu);
    win.free();
  });
}

TEST(Comm, ZeroByteTransfersAreNoops) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    std::uint64_t v = 7;
    EXPECT_NO_THROW(win.put(&v, 0, 1 - ctx.rank(), 0));
    EXPECT_NO_THROW(win.get(&v, 0, 1 - ctx.rank(), 64));  // edge offset ok
    win.fence();
    win.free();
  });
}

// --- datatype-path strategies (pack vs vectored) -----------------------------

TEST(Comm, ManyTinyFragmentsPutTakesPackProtocol) {
  // 1024 single-int fragments into a contiguous target: the strategy model
  // must pick the pack protocol (one staged contiguous transfer), not 1024
  // chained descriptors — and certainly not 1024 separate ops.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    constexpr int kFrags = 1024;
    Win win = Win::allocate(ctx, kFrags * 4 + 64);
    const dt::Datatype strided =
        dt::Datatype::vector(kFrags, 1, 2, dt::Datatype::i32());
    const dt::Datatype contig =
        dt::Datatype::contiguous(kFrags, dt::Datatype::i32());
    std::vector<std::int32_t> src(kFrags * 2);
    std::iota(src.begin(), src.end(), 0);
    win.fence();
    if (ctx.rank() == 0) {
      const OpCounters before = op_counters();
      win.put(src.data(), 1, strided, 1, 32, 1, contig);
      const OpCounters delta = op_counters().since(before);
      EXPECT_EQ(delta.get(Op::packed_bytes), kFrags * 4u);
      EXPECT_EQ(delta.get(Op::transport_put), 1u);
      EXPECT_EQ(delta.get(Op::vectored_op), 0u);
    }
    win.fence();
    if (ctx.rank() == 1) {
      auto* mine = reinterpret_cast<std::int32_t*>(
          static_cast<std::byte*>(win.base()) + 32);
      for (int i = 0; i < kFrags; ++i) {
        ASSERT_EQ(mine[i], 2 * i) << "element " << i;
      }
    }
    win.free();
  });
}

TEST(Comm, FewLargeFragmentsPutTakesVectoredIssue) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    // 4 fragments of 2 KiB: chaining is cheaper than staging 8 KiB.
    Win win = Win::allocate(ctx, 1 << 15);
    const dt::Datatype strided =
        dt::Datatype::vector(4, 256, 512, dt::Datatype::i64());
    const dt::Datatype contig =
        dt::Datatype::contiguous(1024, dt::Datatype::i64());
    std::vector<std::int64_t> src(4 * 512);
    std::iota(src.begin(), src.end(), 0);
    win.fence();
    if (ctx.rank() == 0) {
      const OpCounters before = op_counters();
      win.put(src.data(), 1, strided, 1, 0, 1, contig);
      const OpCounters delta = op_counters().since(before);
      EXPECT_EQ(delta.get(Op::vectored_op), 1u);
      EXPECT_EQ(delta.get(Op::transport_put), 1u);
      EXPECT_EQ(delta.get(Op::packed_bytes), 0u);
    }
    win.fence();
    if (ctx.rank() == 1) {
      auto* mine = static_cast<std::int64_t*>(win.base());
      for (int b = 0; b < 4; ++b) {
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(mine[b * 256 + i], b * 512 + i);
        }
      }
    }
    win.free();
  });
}

TEST(Comm, ManyTinyFragmentsGetTakesUnpackProtocol) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    constexpr int kFrags = 1024;
    Win win = Win::allocate(ctx, kFrags * 4 + 64);
    auto* mine = static_cast<std::int32_t*>(win.base());
    for (int i = 0; i < kFrags; ++i) mine[i] = 100000 * ctx.rank() + i;
    const dt::Datatype strided =
        dt::Datatype::vector(kFrags, 1, 2, dt::Datatype::i32());
    const dt::Datatype contig =
        dt::Datatype::contiguous(kFrags, dt::Datatype::i32());
    std::vector<std::int32_t> dst(kFrags * 2, -1);
    win.fence();
    const int peer = 1 - ctx.rank();
    const OpCounters before = op_counters();
    win.get(dst.data(), 1, strided, peer, 0, 1, contig);
    const OpCounters delta = op_counters().since(before);
    EXPECT_EQ(delta.get(Op::packed_bytes), kFrags * 4u);
    EXPECT_EQ(delta.get(Op::transport_get), 1u);
    win.fence();
    for (int i = 0; i < kFrags; ++i) {
      ASSERT_EQ(dst[2 * i], 100000 * peer + i);
      ASSERT_EQ(dst[2 * i + 1], -1) << "gap clobbered";
    }
    win.free();
  });
}

TEST(Comm, StridedToStridedTakesOneVectoredOp) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    // Both sides non-contiguous, nonzero target displacement: the whole
    // transfer rides one chained op with fragment offsets relative to the
    // hoisted span base.
    Win win = Win::allocate(ctx, 1024);
    auto* mine = static_cast<std::int64_t*>(win.base());
    for (int i = 0; i < 128; ++i) mine[i] = -7;
    const dt::Datatype o = dt::Datatype::vector(8, 2, 4, dt::Datatype::i64());
    const dt::Datatype t = dt::Datatype::vector(4, 4, 8, dt::Datatype::i64());
    std::vector<std::int64_t> src(8 * 4, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<std::int64_t>(1000 + i);
    }
    win.fence();
    if (ctx.rank() == 0) {
      const OpCounters before = op_counters();
      win.put(src.data(), 1, o, 1, 64, 1, t);
      const OpCounters delta = op_counters().since(before);
      EXPECT_EQ(delta.get(Op::vectored_op), 1u);
      EXPECT_EQ(delta.get(Op::transport_put), 1u);
    }
    win.fence();
    if (ctx.rank() == 1) {
      // Origin payload order: elements {0,1, 4,5, 8,9, ...}; target slots:
      // 8 + {0..3, 8..11, 16..19, 24..27}.
      std::vector<std::int64_t> payload;
      for (int b = 0; b < 8; ++b) {
        payload.push_back(1000 + b * 4 + 0);
        payload.push_back(1000 + b * 4 + 1);
      }
      int p = 0;
      for (int b = 0; b < 4; ++b) {
        for (int i = 0; i < 4; ++i) {
          ASSERT_EQ(mine[8 + b * 8 + i], payload[static_cast<std::size_t>(p++)]);
        }
      }
      EXPECT_EQ(mine[8 + 4], -7) << "gap clobbered";
    }
    win.free();
  });
}

TEST(Comm, DatatypeSteadyStateIsAllocationFreeWithWarmCache) {
  // Acceptance: once scratch buffers and NIC pools are warm, the datatype
  // path issues with zero heap allocations and a 100% flatten-cache hit
  // rate (types are lowered from their cached block lists, never re-walked).
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 1 << 16);
    const dt::Datatype strided =
        dt::Datatype::vector(64, 2, 4, dt::Datatype::i64());
    const dt::Datatype tiny =
        dt::Datatype::vector(512, 1, 2, dt::Datatype::i32());
    const dt::Datatype contig_t =
        dt::Datatype::contiguous(128, dt::Datatype::i64());
    const dt::Datatype contig_s =
        dt::Datatype::contiguous(512, dt::Datatype::i32());
    std::vector<std::int64_t> a(64 * 4);
    std::vector<std::int32_t> b(512 * 2);
    const int peer = 1 - ctx.rank();
    auto cycle = [&] {
      win.put(a.data(), 1, strided, peer, 0, 1, contig_t);     // vectored
      win.put(b.data(), 1, tiny, peer, 4096, 1, contig_s);     // packed
      win.get(a.data(), 1, strided, peer, 0, 1, contig_t);     // vectored
      win.get(b.data(), 1, tiny, peer, 4096, 1, contig_s);     // unpack
      win.fence();
    };
    win.fence();
    for (int i = 0; i < 8; ++i) cycle();  // warm scratch + pools

    const OpCounters before = op_counters();
    for (int i = 0; i < 200; ++i) cycle();
    const OpCounters delta = op_counters().since(before);
    EXPECT_EQ(delta.get(Op::pool_grow), 0u) << "steady state allocated";
    EXPECT_EQ(delta.get(Op::flatten_cache_build), 0u);
    EXPECT_GE(delta.get(Op::flatten_cache_hit), 400u);
    EXPECT_EQ(delta.get(Op::rkey_cache_miss), 0u);
    win.free();
  });
}

TEST(Comm, DatatypeTransferOnDynamicWindowResolvesPerFragment) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx);
    std::vector<std::int64_t> mem(32, -3);
    win.attach(mem.data(), mem.size() * 8);
    std::array<std::uint64_t, 2> addrs{};
    const std::uint64_t mine = reinterpret_cast<std::uint64_t>(mem.data());
    ctx.allgather(&mine, 1, addrs.data());
    const dt::Datatype strided =
        dt::Datatype::vector(4, 1, 2, dt::Datatype::i64());
    const dt::Datatype contig =
        dt::Datatype::contiguous(4, dt::Datatype::i64());
    std::array<std::int64_t, 8> src{10, 0, 11, 0, 12, 0, 13, 0};
    win.lock_all();
    const int peer = 1 - ctx.rank();
    win.put(src.data(), 1, strided, peer,
            addrs[static_cast<std::size_t>(peer)], 1, contig);
    win.flush(peer);
    win.unlock_all();
    ctx.barrier();
    EXPECT_EQ(mem[0], 10);
    EXPECT_EQ(mem[1], 11);
    EXPECT_EQ(mem[2], 12);
    EXPECT_EQ(mem[3], 13);
    EXPECT_EQ(mem[4], -3);
    ctx.barrier();
    win.detach(mem.data());
    win.free();
  });
}

// --- rput/rget length handling ----------------------------------------------

TEST(Comm, RequestOpsRejectHugeLengthInsteadOfTruncating) {
  // Regression: rput/rget once routed the byte length through an int count,
  // so len = 2^32 + 8 silently wrapped to an 8-byte transfer. The length
  // must now reach the range check undamaged and raise.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 1024);
    win.lock_all();
    const std::size_t huge = (std::size_t{1} << 32) + 8;
    std::uint64_t v = 42;
    try {
      core::RmaRequest r = win.rput(&v, huge, 1 - ctx.rank(), 0);
      FAIL() << "oversized rput did not raise";
    } catch (const Error& e) {
      EXPECT_EQ(e.err_class(), ErrClass::rma_range);
    }
    try {
      core::RmaRequest r = win.rget(&v, huge, 1 - ctx.rank(), 0);
      FAIL() << "oversized rget did not raise";
    } catch (const Error& e) {
      EXPECT_EQ(e.err_class(), ErrClass::rma_range);
    }
    // Sanity: ordinary sizes still work end to end.
    core::RmaRequest ok = win.rput(&v, 8, 1 - ctx.rank(), 0);
    ok.wait();
    win.unlock_all();
    win.free();
  });
}

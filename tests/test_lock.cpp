// Passive target synchronization: the two-level lock protocol of Fig 3.
// Includes a property test asserting the reader/writer invariants under a
// randomized concurrent schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::LockType;
using core::Win;
using fabric::RankCtx;

TEST(Lock, SharedLockAllowsConcurrentReaders) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      mine[0] = 321;
      win.sync();
    }
    ctx.barrier();
    if (ctx.rank() != 0) {
      win.lock(LockType::shared, 0);
      std::uint64_t v = 0;
      win.get(&v, 8, 0, 0);
      win.flush(0);
      EXPECT_EQ(v, 321u);
      win.unlock(0);
    }
    ctx.barrier();
    win.free();
  });
}

TEST(Lock, ExclusiveLockSerializesIncrements) {
  // Classic mutual-exclusion check: non-atomic read-modify-write under an
  // exclusive lock must not lose updates.
  const int p = 4;
  const int kIters = 25;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    for (int i = 0; i < kIters; ++i) {
      win.lock(LockType::exclusive, 0);
      std::uint64_t v = 0;
      win.get(&v, 8, 0, 0);
      win.flush(0);
      ++v;
      win.put(&v, 8, 0, 0);
      win.unlock(0);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      win.sync();
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(p * kIters));
    }
    win.free();
  });
}

TEST(Lock, LockAllConcurrentWithReaders) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    mine[0] = static_cast<std::uint64_t>(ctx.rank() + 1);
    win.sync();
    ctx.barrier();
    win.lock_all();
    std::uint64_t sum = 0;
    for (int r = 0; r < 4; ++r) {
      std::uint64_t v = 0;
      win.get(&v, 8, r, 0);
      win.flush(r);
      sum += v;
    }
    EXPECT_EQ(sum, 1u + 2 + 3 + 4);
    win.unlock_all();
    win.free();
  });
}

TEST(Lock, ExclusiveExcludesLockAll) {
  // Interleave lock_all epochs with exclusive locks; exclusive writers
  // mutate a counter non-atomically, lock_all readers must always observe
  // a stable snapshot (writer never concurrent with global shared).
  const int p = 3;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 77);
    for (int i = 0; i < 20; ++i) {
      if (rng.below(2) == 0) {
        win.lock(LockType::exclusive, 0);
        // Write a torn-looking pair that must never be observed torn.
        std::uint64_t a = rng.next() & 0xffff;
        win.put(&a, 8, 0, 0);
        win.flush(0);
        win.put(&a, 8, 0, 8);
        win.unlock(0);
      } else {
        win.lock_all();
        std::uint64_t x = 0, y = 0;
        win.get(&x, 8, 0, 0);
        win.get(&y, 8, 0, 8);
        win.flush(0);
        EXPECT_EQ(x, y) << "lock_all observed a torn exclusive write";
        win.unlock_all();
      }
    }
    win.free();
  });
}

TEST(Lock, MultipleExclusiveLocksHeldTogether) {
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      win.lock(LockType::exclusive, 1);
      win.lock(LockType::exclusive, 2);  // second lock: global kept
      std::uint64_t v = 5;
      win.put(&v, 8, 1, 0);
      win.put(&v, 8, 2, 0);
      win.unlock(2);
      win.unlock(1);
    }
    ctx.barrier();
    win.free();
  });
}

TEST(Lock, MisuseDetected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    EXPECT_THROW(win.unlock(0), Error);
    EXPECT_THROW(win.unlock_all(), Error);
    EXPECT_THROW(win.flush(0), Error);  // no passive epoch
    win.lock(LockType::shared, 0);
    EXPECT_THROW(win.lock(LockType::shared, 0), Error);  // double lock
    EXPECT_THROW(win.lock_all(), Error);  // mixing per-target and lock_all
    win.unlock(0);
    win.lock_all();
    EXPECT_THROW(win.lock_all(), Error);
    win.unlock_all();
    win.free();
  });
}

TEST(Lock, UnlockMakesWritesVisible) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) {
      win.lock(LockType::exclusive, 1);
      const std::uint64_t v = 2024;
      win.put(&v, 8, 1, 0);
      win.unlock(1);  // must commit the put
      ctx.barrier();
    } else {
      ctx.barrier();
      win.sync();
      EXPECT_EQ(mine[0], 2024u);
    }
    win.free();
  });
}

// Property test: run a randomized mix of shared/exclusive/lock_all epochs
// on several ranks; instrumented critical sections assert the reader-writer
// invariants directly.
class LockSchedule : public ::testing::TestWithParam<int> {};

TEST_P(LockSchedule, InvariantsHoldUnderRandomSchedules) {
  const int p = 4;
  struct Shared {
    std::atomic<int> writers{0};
    std::atomic<int> readers{0};
    std::atomic<int> globals{0};
  };
  Shared state;
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    Rng rng(seed * 1000 + static_cast<std::uint64_t>(ctx.rank()));
    for (int i = 0; i < 15; ++i) {
      switch (rng.below(3)) {
        case 0: {  // exclusive on rank 0
          win.lock(LockType::exclusive, 0);
          EXPECT_EQ(state.writers.fetch_add(1), 0);
          EXPECT_EQ(state.readers.load(), 0);
          EXPECT_EQ(state.globals.load(), 0);
          std::this_thread::yield();
          state.writers.fetch_sub(1);
          win.unlock(0);
          break;
        }
        case 1: {  // shared on rank 0
          win.lock(LockType::shared, 0);
          state.readers.fetch_add(1);
          EXPECT_EQ(state.writers.load(), 0);
          std::this_thread::yield();
          state.readers.fetch_sub(1);
          win.unlock(0);
          break;
        }
        default: {  // lock_all
          win.lock_all();
          state.globals.fetch_add(1);
          EXPECT_EQ(state.writers.load(), 0);
          std::this_thread::yield();
          state.globals.fetch_sub(1);
          win.unlock_all();
          break;
        }
      }
    }
    win.free();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockSchedule, ::testing::Range(0, 8));

// Dynamic windows: attach/detach, absolute-address communication, the
// id-counter cache protocol and the optimized notify protocol.
#include <gtest/gtest.h>

#include <cstring>

#include "core/window.hpp"

using namespace fompi;
using core::DynMode;
using core::Win;
using core::WinConfig;
using fabric::RankCtx;

class DynBothModes : public ::testing::TestWithParam<DynMode> {
 protected:
  WinConfig cfg() const {
    WinConfig c;
    c.dyn_mode = GetParam();
    return c;
  }
};

TEST_P(DynBothModes, AttachCommunicateDetach) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx, cfg());
    std::vector<std::uint64_t> mem(8, static_cast<std::uint64_t>(ctx.rank()));
    win.attach(mem.data(), mem.size() * 8);
    // Exchange the absolute addresses (MPI programs do the same).
    std::array<std::uint64_t, 2> addrs{};
    const std::uint64_t mine = reinterpret_cast<std::uint64_t>(mem.data());
    ctx.allgather(&mine, 1, addrs.data());
    win.lock_all();
    const int peer = 1 - ctx.rank();
    std::uint64_t v = 0;
    win.get(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);
    win.flush(peer);
    EXPECT_EQ(v, static_cast<std::uint64_t>(peer));
    win.unlock_all();
    ctx.barrier();
    win.detach(mem.data());
    win.free();
  });
}

TEST_P(DynBothModes, CacheTracksReattach) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx, cfg());
    std::vector<std::uint64_t> a(4), b(4);
    std::array<std::uint64_t, 2> addrs{};
    if (ctx.rank() == 0) {
      a[0] = 111;
      win.attach(a.data(), 32);
    }
    const std::uint64_t mine = reinterpret_cast<std::uint64_t>(
        ctx.rank() == 0 ? a.data() : nullptr);
    ctx.allgather(&mine, 1, addrs.data());
    win.lock_all();
    if (ctx.rank() == 1) {
      std::uint64_t v = 0;
      win.get(&v, 8, 0, addrs[0]);  // warms the cache
      win.flush(0);
      EXPECT_EQ(v, 111u);
    }
    win.unlock_all();
    ctx.barrier();
    // Rank 0 detaches and attaches a different region.
    std::array<std::uint64_t, 2> addrs2{};
    if (ctx.rank() == 0) {
      win.detach(a.data());
      b[0] = 222;
      win.attach(b.data(), 32);
    }
    const std::uint64_t mine2 = reinterpret_cast<std::uint64_t>(
        ctx.rank() == 0 ? b.data() : nullptr);
    ctx.allgather(&mine2, 1, addrs2.data());
    win.lock_all();
    if (ctx.rank() == 1) {
      std::uint64_t v = 0;
      win.get(&v, 8, 0, addrs2[0]);  // must see the invalidation
      win.flush(0);
      EXPECT_EQ(v, 222u);
    }
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) win.detach(b.data());
    win.free();
  });
}

TEST_P(DynBothModes, AccessToDetachedRegionRaises) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx, cfg());
    std::vector<std::uint64_t> mem(4);
    std::array<std::uint64_t, 2> addrs{};
    if (ctx.rank() == 0) win.attach(mem.data(), 32);
    const std::uint64_t mine = reinterpret_cast<std::uint64_t>(
        ctx.rank() == 0 ? mem.data() : nullptr);
    ctx.allgather(&mine, 1, addrs.data());
    ctx.barrier();
    if (ctx.rank() == 0) {
      win.detach(mem.data());
      ctx.barrier();
    } else {
      ctx.barrier();
      win.lock_all();
      std::uint64_t v = 0;
      EXPECT_THROW(
          {
            win.get(&v, 8, 0, addrs[0]);
            win.flush(0);
          },
          Error);
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  });
}

TEST_P(DynBothModes, MultipleRegionsResolvedByAddress) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx, cfg());
    std::vector<std::uint64_t> r1(4), r2(4);
    if (ctx.rank() == 0) {
      r1[2] = 10;
      r2[1] = 20;
      win.attach(r1.data(), 32);
      win.attach(r2.data(), 32);
    }
    std::array<std::uint64_t, 2> a1{}, a2{};
    const std::uint64_t m1 =
        ctx.rank() == 0 ? reinterpret_cast<std::uint64_t>(r1.data()) : 0;
    const std::uint64_t m2 =
        ctx.rank() == 0 ? reinterpret_cast<std::uint64_t>(r2.data()) : 0;
    ctx.allgather(&m1, 1, a1.data());
    ctx.allgather(&m2, 1, a2.data());
    if (ctx.rank() == 1) {
      win.lock_all();
      std::uint64_t v1 = 0, v2 = 0;
      win.get(&v1, 8, 0, a1[0] + 16);
      win.get(&v2, 8, 0, a2[0] + 8);
      win.flush(0);
      EXPECT_EQ(v1, 10u);
      EXPECT_EQ(v2, 20u);
      win.unlock_all();
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      win.detach(r1.data());
      win.detach(r2.data());
    }
    win.free();
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, DynBothModes,
                         ::testing::Values(DynMode::id_counter,
                                           DynMode::notify));

TEST(Dynamic, AttachValidation) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::create_dynamic(ctx);
    std::vector<std::uint64_t> mem(8);
    EXPECT_THROW(win.attach(nullptr, 8), Error);
    EXPECT_THROW(win.attach(mem.data(), 0), Error);
    win.attach(mem.data(), 64);
    // Overlapping attach rejected.
    EXPECT_THROW(win.attach(mem.data() + 2, 16), Error);
    // Unknown detach rejected.
    std::uint64_t other = 0;
    EXPECT_THROW(win.detach(&other), Error);
    win.detach(mem.data());
    // Re-attach after detach is fine.
    win.attach(mem.data(), 64);
    win.detach(mem.data());
    win.free();
  });
}

TEST(Dynamic, AttachOnNonDynamicWindowRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    std::uint64_t mem = 0;
    EXPECT_THROW(win.attach(&mem, 8), Error);
    EXPECT_THROW(win.detach(&mem), Error);
    win.free();
  });
}

TEST(Dynamic, DirectoryExhaustionRaises) {
  fabric::run_ranks(1, [](RankCtx& ctx) {
    core::WinConfig cfg;
    cfg.max_dyn_regions = 2;
    Win win = Win::create_dynamic(ctx, cfg);
    std::vector<std::uint64_t> m1(2), m2(2), m3(2);
    win.attach(m1.data(), 16);
    win.attach(m2.data(), 16);
    EXPECT_THROW(win.attach(m3.data(), 16), Error);
    win.detach(m1.data());
    EXPECT_NO_THROW(win.attach(m3.data(), 16));  // slot reusable
    win.detach(m2.data());
    win.detach(m3.data());
    win.free();
  });
}

TEST(Dynamic, IdCounterModePaysRemoteReadEveryAccess) {
  // Instruction-count check of the documented protocol difference: the
  // id-counter mode issues a remote AMO per access, notify mode does not
  // (after the first).
  fabric::run_ranks(2, [](RankCtx& ctx) {
    for (DynMode mode : {DynMode::id_counter, DynMode::notify}) {
      WinConfig cfg;
      cfg.dyn_mode = mode;
      Win win = Win::create_dynamic(ctx, cfg);
      std::vector<std::uint64_t> mem(8);
      win.attach(mem.data(), 64);
      std::array<std::uint64_t, 2> addrs{};
      const std::uint64_t mine = reinterpret_cast<std::uint64_t>(mem.data());
      ctx.allgather(&mine, 1, addrs.data());
      win.lock_all();
      const int peer = 1 - ctx.rank();
      std::uint64_t v = 0;
      win.get(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);  // warm
      win.flush(peer);
      const auto before = op_counters();
      for (int i = 0; i < 10; ++i) {
        win.get(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);
      }
      win.flush(peer);
      const auto delta = op_counters().since(before);
      if (mode == DynMode::id_counter) {
        EXPECT_GE(delta.get(Op::transport_amo) + delta.get(Op::local_atomic),
                  10u);
      } else {
        EXPECT_EQ(delta.get(Op::transport_amo), 0u);
      }
      win.unlock_all();
      ctx.barrier();
      win.detach(mem.data());
      win.free();
    }
  });
}

TEST(Dynamic, AttachDetachStormDoesNotLeakRegistrations) {
  // Registration-churn leak check: a stress run of attach/put/detach cycles
  // plus window teardown must return the registry to its pre-window live
  // count (window control blocks included).
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& reg = ctx.fabric().domain().registry();
    ctx.barrier();
    const std::size_t base_live = reg.live_count();
    {
      Win win = Win::create_dynamic(ctx);
      for (int round = 0; round < 10; ++round) {
        std::vector<std::uint64_t> mem(8, 0);
        win.attach(mem.data(), 64);
        std::array<std::uint64_t, 2> addrs{};
        const std::uint64_t mine = reinterpret_cast<std::uint64_t>(mem.data());
        ctx.allgather(&mine, 1, addrs.data());
        win.lock_all();
        const int peer = 1 - ctx.rank();
        const std::uint64_t v = static_cast<std::uint64_t>(round);
        win.put(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);
        win.flush(peer);
        win.unlock_all();
        ctx.barrier();
        EXPECT_EQ(mem[0], static_cast<std::uint64_t>(round));
        win.detach(mem.data());
        ctx.barrier();  // mem must outlive every peer access
      }
      win.free();
    }
    ctx.barrier();
    EXPECT_EQ(reg.live_count(), base_live) << "registration leak";
  });
}

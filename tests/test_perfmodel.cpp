// Cost functions and the least-squares fitter.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "perfmodel/cost_functions.hpp"
#include "perfmodel/fit.hpp"

using namespace fompi;
using perf::Sample;

TEST(CostFunctions, PaperAnchors) {
  const perf::PaperModel m;
  EXPECT_NEAR(m.put.us(8), 1.0, 0.01);          // P_put small
  EXPECT_NEAR(m.put.us(100000), 17.0, 0.1);     // 0.16 ns/B slope
  EXPECT_NEAR(m.get.us(8), 1.9, 0.01);
  EXPECT_NEAR(m.acc_sum.us(8), 2.624, 0.01);    // 28 ns/B * 8 + 2.4
  EXPECT_NEAR(m.fence_us(2), 2.9, 0.01);
  EXPECT_NEAR(m.fence_us(8192), 2.9 * 13, 0.01);
  EXPECT_DOUBLE_EQ(m.fence_us(1), 0.0);
}

TEST(CostFunctions, FenceVsPscwDecisionRule) {
  const perf::PaperModel m;
  // For small k and large p PSCW wins; for huge k fence wins.
  EXPECT_TRUE(m.pscw_beats_fence(8192, 2));
  EXPECT_FALSE(m.pscw_beats_fence(4, 64));
  // The crossover grows with p: at p=256 the critical k is
  // k* = (2.9*8 - 0.7 - 1.8) / 0.7 ≈ 29.
  EXPECT_TRUE(m.pscw_beats_fence(256, 28));
  EXPECT_FALSE(m.pscw_beats_fence(256, 31));
}

TEST(Fit, RecoversExactAffine) {
  std::vector<Sample> s;
  for (double x : {8.0, 64.0, 512.0, 4096.0}) {
    s.push_back(Sample{x, 1.5 + 0.25 * x});
  }
  const auto r = perf::fit_affine(s);
  EXPECT_NEAR(r.intercept_us, 1.5, 1e-9);
  EXPECT_NEAR(r.slope_us_per_x, 0.25, 1e-12);
  EXPECT_NEAR(r.r2, 1.0, 1e-12);
}

TEST(Fit, RecoversLogModel) {
  std::vector<Sample> s;
  for (double p : {2.0, 8.0, 64.0, 1024.0}) {
    s.push_back(Sample{p, 2.9 * std::log2(p)});
  }
  const auto r = perf::fit_logarithmic(s);
  EXPECT_NEAR(r.slope_us_per_x, 2.9, 1e-9);
  EXPECT_NEAR(r.intercept_us, 0.0, 1e-9);
}

TEST(Fit, ToleratesNoise) {
  std::vector<Sample> s;
  Rng rng(3);
  for (int i = 1; i <= 50; ++i) {
    const double x = i * 10.0;
    s.push_back(Sample{x, 4.0 + 0.1 * x + (rng.uniform() - 0.5) * 0.01});
  }
  const auto r = perf::fit_affine(s);
  EXPECT_NEAR(r.intercept_us, 4.0, 0.05);
  EXPECT_NEAR(r.slope_us_per_x, 0.1, 0.001);
  EXPECT_GT(r.r2, 0.999);
}

TEST(Fit, DegenerateInputs) {
  EXPECT_THROW(perf::fit_affine({Sample{1, 1}}), Error);
  // All-equal x: no slope to estimate.
  const auto r = perf::fit_affine({Sample{5, 1}, Sample{5, 3}});
  EXPECT_DOUBLE_EQ(r.slope_us_per_x, 0);
  EXPECT_DOUBLE_EQ(r.intercept_us, 2);
  EXPECT_THROW(perf::fit_logarithmic({Sample{0, 1}, Sample{2, 2}}), Error);
}

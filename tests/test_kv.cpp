// KV service: sharded routing, versioned one-sided reads, epoch-stamped
// client caching, the Zipfian fleet generator, seqlock coherence under a
// concurrent writer, seeded chaos determinism, and shard-owner failover.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <vector>

#include "common/instr.hpp"
#include "common/rng.hpp"
#include "fabric/fabric.hpp"
#include "kv/kv.hpp"
#include "kv/zipf.hpp"
#include "rdma/network_model.hpp"

using namespace fompi;
using fabric::RankCtx;
using kv::KvConfig;
using kv::KvStore;
using rdma::OpStatus;

namespace {

/// First user key > `from` whose shard is owned by `owner` under `cfg`
/// with `p` ranks (pure function of the hash, computable without a store).
std::uint64_t key_owned_by(const KvStore& store, int owner,
                           std::uint64_t from = 1) {
  for (std::uint64_t k = from;; ++k) {
    if (store.owner_of(store.shard_of(k)) == owner) return k;
  }
}

}  // namespace

// --- basic service behaviour -------------------------------------------------

TEST(Kv, PutGetEraseAcrossRanks) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx);
    // Every rank writes a disjoint key range; any rank reads any key.
    for (int i = 0; i < 32; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1;
      EXPECT_EQ(store.put(k, k * 7), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 32; ++i) {
        const auto k = static_cast<std::uint64_t>(r) * 1000 + i + 1;
        std::uint64_t v = 0;
        bool found = false;
        EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
        EXPECT_TRUE(found) << "missing key " << k;
        EXPECT_EQ(v, k * 7);
      }
    }
    std::uint64_t v = 0;
    bool found = true;
    EXPECT_EQ(store.get(0xdeadbeef01, &v, &found), OpStatus::ok);
    EXPECT_FALSE(found);
    ctx.barrier();
    // Erase own keys; everyone observes the misses.
    for (int i = 0; i < 32; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1;
      EXPECT_EQ(store.erase(k), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < p; ++r) {
      const auto k = static_cast<std::uint64_t>(r) * 1000 + 1;
      EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
      EXPECT_FALSE(found) << "key " << k << " survived erase";
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(Kv, OverwriteAndTombstoneReclaim) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {
      EXPECT_EQ(store.put(42, 1), OpStatus::ok);
      EXPECT_EQ(store.put(42, 2), OpStatus::ok);  // in-place seqlock update
      std::uint64_t v = 0;
      bool found = false;
      EXPECT_EQ(store.get(42, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 2u);
      EXPECT_EQ(store.erase(42), OpStatus::ok);
      EXPECT_EQ(store.put(42, 3), OpStatus::ok);  // reclaims the tombstone
      EXPECT_EQ(store.get(42, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 3u);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, CollisionsSpillToOverflowChains) {
  KvConfig cfg;
  cfg.shards = 2;
  cfg.table_slots = 1;  // every key in a shard collides on slot 0
  cfg.heap_slots = 256;
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    for (int i = 0; i < 40; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 500 + i + 1;
      EXPECT_EQ(store.put(k, k + 9), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < 2; ++r) {
      for (int i = 0; i < 40; ++i) {
        const auto k = static_cast<std::uint64_t>(r) * 500 + i + 1;
        std::uint64_t v = 0;
        bool found = false;
        EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
        EXPECT_TRUE(found) << "chained key " << k << " lost";
        EXPECT_EQ(v, k + 9);
      }
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(Kv, RoutingTableFetchMatchesAuthoritativeMap) {
  // Every client's one-sided routing fetch must agree with the map rank 0
  // published: owner = shard % p, replica = (owner + 1) % p.
  const int p = 3;
  KvConfig cfg;
  cfg.shards = 8;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    for (int s = 0; s < cfg.shards; ++s) {
      EXPECT_EQ(store.owner_of(s), s % p);
      EXPECT_EQ(store.replica_of(s), (s % p + 1) % p);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, RejectsReservedKeys) {
  fabric::run_ranks(1, [](RankCtx& ctx) {
    KvStore store(ctx);
    std::uint64_t v = 0;
    bool found = false;
    EXPECT_THROW(store.put(0, 1), Error);
    EXPECT_THROW(store.get(kv::kTombstone, &v, &found), Error);
    EXPECT_THROW(store.erase(0), Error);
    store.destroy(ctx);
  });
}

// --- client cache -------------------------------------------------------------

TEST(Kv, CacheHitsAfterFirstReadAndInvalidatesOnWrite) {
  // Single active client: deterministic hit/miss accounting.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.put(77, 100), OpStatus::ok);
      std::uint64_t v = 0;
      bool found = false;
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // cold: miss
      EXPECT_EQ(store.stats().cache_misses, 1u);
      EXPECT_EQ(store.stats().cache_hits, 0u);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // warm: hit
      EXPECT_EQ(store.stats().cache_hits, 1u);
      EXPECT_EQ(v, 100u);
      // A write bumps the shard epoch: the next read must revalidate.
      ASSERT_EQ(store.put(77, 200), OpStatus::ok);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);
      EXPECT_EQ(v, 200u) << "cache served a stale value across an epoch";
      EXPECT_EQ(store.stats().cache_misses, 2u);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // warm again
      EXPECT_EQ(store.stats().cache_hits, 2u);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, RemoteWriterInvalidatesPeerCache) {
  // Rank 0 caches a key; rank 1 overwrites it; rank 0's next read must
  // observe the new value through the epoch check (no stale serve).
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    std::uint64_t v = 0;
    bool found = false;
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.put(31337, 1), OpStatus::ok);
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      EXPECT_GE(store.stats().cache_hits, 1u);
    }
    ctx.barrier();
    if (ctx.rank() == 1) {
      ASSERT_EQ(store.put(31337, 2), OpStatus::ok);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 2u) << "peer write not observed: stale cache";
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

// --- Zipfian generator --------------------------------------------------------

TEST(Zipf, SameSeedSameStream) {
  kv::Zipf a(1024, 0.9, 42);
  kv::Zipf b(1024, 0.9, 42);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "stream diverged at draw " << i;
  }
}

TEST(Zipf, DifferentSeedsDiffer) {
  kv::Zipf a(1024, 0.9, 1);
  kv::Zipf b(1024, 0.9, 2);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() != b.next()) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Zipf, SkewFavorsLowRanksAndStaysInRange) {
  kv::Zipf z(256, 0.9, 7);
  std::array<int, 256> freq{};
  for (int i = 0; i < 100000; ++i) {
    const auto k = z.next();
    ASSERT_LT(k, 256u);
    ++freq[static_cast<std::size_t>(k)];
  }
  EXPECT_GT(freq[0], freq[128] * 4) << "rank 0 should dominate mid-ranks";
  EXPECT_GT(freq[0], 10000);  // ~ 17% mass at s=0.9, n=256
}

TEST(Zipf, UniformDegenerateCase) {
  kv::Zipf z(64, 0.0, 9);
  std::array<int, 64> freq{};
  for (int i = 0; i < 64000; ++i) ++freq[static_cast<std::size_t>(z.next())];
  for (const int f : freq) {
    EXPECT_GT(f, 500);  // expectation 1000 each, loose 2-sided bound
    EXPECT_LT(f, 2000);
  }
}

TEST(Zipf, MassSumsToOne) {
  kv::Zipf z(128, 0.9, 1);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 128; ++r) sum += z.mass(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- seqlock coherence under a concurrent writer ------------------------------

namespace {

/// Reader loops versioned gets of key `k1` while the writer churns the
/// same single-slot shard: overwrites, erases, and inserts of a colliding
/// key `k2` that reclaims k1's tombstoned cells. Every successful get must
/// return a value tagged with k1 — never k2's, never torn.
void seqlock_round(std::uint64_t seed) {
  constexpr std::uint64_t kA = 5, kB = 9;
  KvConfig cfg;
  cfg.shards = 1;       // same shard...
  cfg.table_slots = 1;  // ...same top slot: maximum contention
  cfg.heap_slots = 512;
  cfg.client_cache = false;  // force the full versioned read every time
  cfg.replicate = false;
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    if (ctx.rank() == 1) {
      Rng rng(seed);
      std::uint64_t i = 0;
      for (int op = 0; op < 400; ++op) {
        const auto roll = rng.below(10);
        if (roll < 6) {
          ASSERT_EQ(store.put(kA, kA * 1000000 + i++), OpStatus::ok);
        } else if (roll < 8) {
          ASSERT_EQ(store.erase(kA), OpStatus::ok);
        } else {
          ASSERT_EQ(store.put(kB, kB * 1000000 + i++), OpStatus::ok);
        }
      }
    } else {
      for (int r = 0; r < 400; ++r) {
        std::uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(kA, &v, &found), OpStatus::ok);
        if (found) {
          EXPECT_EQ(v / 1000000, kA)
              << "read returned a foreign or torn value " << v;
        }
      }
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

}  // namespace

TEST(KvSeqlock, ReadsNeverTearUnderConcurrentWriter) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    seqlock_round(seed);
  }
}

// --- seeded chaos determinism -------------------------------------------------

namespace {

struct FaultCounters {
  std::uint64_t injected = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// One KV round under a survivable (transient-only) fault plan; returns
/// the summed fault counters. Workload correctness asserted inside.
FaultCounters kv_chaos_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  constexpr int kKeysPerRank = 24;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;  // inter-node ("DMAPP") path
  opts.domain.fault.seed = seed;
  opts.domain.fault.transient_faults_per_rank = 4;
  opts.domain.fault.horizon_ops = 64;
  opts.domain.fault.max_repeats = 3;
  opts.domain.fault.retry_budget = 4;
  std::array<FaultCounters, kRanks> per_rank{};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        const OpCounters before = op_counters();
        KvStore store(ctx);
        for (int i = 0; i < kKeysPerRank; ++i) {
          const auto k =
              static_cast<std::uint64_t>(ctx.rank()) * 4000 + i + 1;
          EXPECT_EQ(store.put(k, k * 3), OpStatus::ok)
              << "put failed under the survivable plan";
        }
        ctx.barrier();
        for (int r = 0; r < kRanks; ++r) {
          for (int i = 0; i < kKeysPerRank; ++i) {
            const auto k = static_cast<std::uint64_t>(r) * 4000 + i + 1;
            std::uint64_t v = 0;
            bool found = false;
            EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
            EXPECT_TRUE(found) << "key " << k
                               << " lost under the survivable plan";
            EXPECT_EQ(v, k * 3);
          }
        }
        ctx.barrier();
        store.destroy(ctx);
        const OpCounters d = op_counters().since(before);
        per_rank[static_cast<std::size_t>(ctx.rank())] = {
            d.get(Op::fault_injected), d.get(Op::op_retried),
            d.get(Op::op_failed)};
      },
      opts);
  FaultCounters total;
  for (const auto& fc : per_rank) {
    total.injected += fc.injected;
    total.retried += fc.retried;
    total.failed += fc.failed;
  }
  return total;
}

}  // namespace

TEST(KvChaos, DeterministicAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const FaultCounters a = kv_chaos_round(seed);
    const FaultCounters b = kv_chaos_round(seed);
    EXPECT_EQ(a, b) << "chaos counters diverged for seed " << seed;
    EXPECT_GT(a.injected, 0u) << "plan injected nothing at seed " << seed;
    EXPECT_EQ(a.failed, 0u)
        << "transient-only plan must not exhaust retry budgets";
  }
}

// --- shard-owner failover -----------------------------------------------------

TEST(KvFailover, OwnerKillDegradesToReplicaWithTypedConfinement) {
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;  // after the healthy seeding phase
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);  // window is errors_return by construction
        // Healthy phase: rank 0 seeds keys for every shard owner,
        // replicated write-through. Keep rank 1's own op budget low so it
        // dies in the traffic phase, not here.
        std::vector<std::uint64_t> dead_keys;  // owned by rank 1
        {
          std::uint64_t from = 1;
          for (int i = 0; i < 6; ++i) {
            dead_keys.push_back(key_owned_by(store, 1, from));
            from = dead_keys.back() + 1;
          }
        }
        if (ctx.rank() == 0) {
          for (const auto k : dead_keys) {
            ASSERT_EQ(store.put(k, k + 5000), OpStatus::ok);
          }
        }
        ctx.barrier();  // last collective: everything later is kill-safe

        if (ctx.rank() == 1) {
          // Dies at its 400th issued op; RankKilledError unwinds this
          // thread quietly (errors_return at fleet scope).
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(dead_keys[0], &v, &found);
            store.put(9990001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }

        // Survivors: watch the liveness table, then verify degraded mode.
        while (store.peer_alive(1)) ctx.yield_check();
        // Typed confinement: a probe at the dead primary retires as
        // peer_dead, it neither hangs nor aborts the fleet.
        const int dead_shard = store.shard_of(dead_keys[0]);
        EXPECT_EQ(store.probe_owner(dead_shard), OpStatus::peer_dead);
        // Reads of the dead owner's shards reroute to the replica and
        // still see the healthy-phase values.
        for (const auto k : dead_keys) {
          std::uint64_t v = 0;
          bool found = false;
          EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found) << "replica lost key " << k;
          EXPECT_EQ(v, k + 5000);
          EXPECT_TRUE(store.degraded(store.shard_of(k)));
        }
        EXPECT_GT(store.stats().failovers, 0u);
        // Degraded writes land on the replica and read back. Use a fresh
        // rank-1-owned key: other survivors are still verifying dead_keys.
        if (ctx.rank() == 2) {
          const auto fresh = key_owned_by(store, 1, dead_keys.back() + 1);
          ASSERT_EQ(store.put(fresh, 123456), OpStatus::ok);
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(fresh, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found);
          EXPECT_EQ(v, 123456u);
        }
        // Healthy shards keep serving untouched.
        const auto live_key = key_owned_by(store, 2);
        if (ctx.rank() == 0) {
          ASSERT_EQ(store.put(live_key, 42), OpStatus::ok);
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(live_key, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found);
          EXPECT_EQ(v, 42u);
        }
        survivors.fetch_add(1);
        // No collectives, no destroy: rank 1 cannot meet them.
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

// --- closed-loop fleet --------------------------------------------------------

TEST(KvFleet, RecordsLatenciesAndStaysCoherent) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx);
    // Seed the keyspace so reads mostly hit existing keys.
    for (int i = 0; i < 64; ++i) {
      const auto k = static_cast<std::uint64_t>(i % 256) + 1;
      if (ctx.rank() == 0) {
        ASSERT_EQ(store.put(k, k), OpStatus::ok);
      }
    }
    ctx.barrier();
    KvStore::FleetConfig fc;
    fc.ops_per_rank = 256;
    fc.fibers = 8;
    fc.read_ratio = 0.9;
    fc.keyspace = 256;
    fc.seed = 3;
    const auto res = store.run_fleet(ctx, fc);
    EXPECT_EQ(res.reads + res.writes,
              static_cast<std::uint64_t>(fc.ops_per_rank));
    EXPECT_EQ(res.read_hist.count(), res.reads);
    EXPECT_EQ(res.write_hist.count(), res.writes);
    EXPECT_GT(res.reads, res.writes);  // 0.9 read ratio
    EXPECT_GT(res.read_hist.max(), 0u);
    EXPECT_EQ(res.peer_dead, 0u);  // healthy fleet
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(KvFleet, OpStreamIsSeedDeterministic) {
  // Same seed: identical op mix (reads/writes split) across runs.
  std::array<std::uint64_t, 2> reads{}, writes{};
  for (int run = 0; run < 2; ++run) {
    fabric::run_ranks(2, [&](RankCtx& ctx) {
      KvStore store(ctx);
      KvStore::FleetConfig fc;
      fc.ops_per_rank = 128;
      fc.seed = 99;
      const auto res = store.run_fleet(ctx, fc);
      if (ctx.rank() == 0) {
        reads[static_cast<std::size_t>(run)] = res.reads;
        writes[static_cast<std::size_t>(run)] = res.writes;
      }
      ctx.barrier();
      store.destroy(ctx);
    });
  }
  EXPECT_EQ(reads[0], reads[1]);
  EXPECT_EQ(writes[0], writes[1]);
}

// KV service: sharded routing, versioned one-sided reads, epoch-stamped
// client caching, the Zipfian fleet generator, seqlock coherence under a
// concurrent writer, seeded chaos determinism, and shard-owner failover.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <vector>

#include "common/instr.hpp"
#include "common/rng.hpp"
#include "fabric/fabric.hpp"
#include "kv/kv.hpp"
#include "kv/zipf.hpp"
#include "rdma/network_model.hpp"

using namespace fompi;
using fabric::RankCtx;
using kv::KvConfig;
using kv::KvStore;
using rdma::OpStatus;

namespace {

/// First user key > `from` whose shard is owned by `owner` under `cfg`
/// with `p` ranks (pure function of the hash, computable without a store).
std::uint64_t key_owned_by(const KvStore& store, int owner,
                           std::uint64_t from = 1) {
  for (std::uint64_t k = from;; ++k) {
    if (store.owner_of(store.shard_of(k)) == owner) return k;
  }
}

}  // namespace

// --- basic service behaviour -------------------------------------------------

TEST(Kv, PutGetEraseAcrossRanks) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx);
    // Every rank writes a disjoint key range; any rank reads any key.
    for (int i = 0; i < 32; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1;
      EXPECT_EQ(store.put(k, k * 7), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 32; ++i) {
        const auto k = static_cast<std::uint64_t>(r) * 1000 + i + 1;
        std::uint64_t v = 0;
        bool found = false;
        EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
        EXPECT_TRUE(found) << "missing key " << k;
        EXPECT_EQ(v, k * 7);
      }
    }
    std::uint64_t v = 0;
    bool found = true;
    EXPECT_EQ(store.get(0xdeadbeef01, &v, &found), OpStatus::ok);
    EXPECT_FALSE(found);
    ctx.barrier();
    // Erase own keys; everyone observes the misses.
    for (int i = 0; i < 32; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1;
      EXPECT_EQ(store.erase(k), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < p; ++r) {
      const auto k = static_cast<std::uint64_t>(r) * 1000 + 1;
      EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
      EXPECT_FALSE(found) << "key " << k << " survived erase";
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(Kv, OverwriteAndTombstoneReclaim) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {
      EXPECT_EQ(store.put(42, 1), OpStatus::ok);
      EXPECT_EQ(store.put(42, 2), OpStatus::ok);  // in-place seqlock update
      std::uint64_t v = 0;
      bool found = false;
      EXPECT_EQ(store.get(42, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 2u);
      EXPECT_EQ(store.erase(42), OpStatus::ok);
      EXPECT_EQ(store.put(42, 3), OpStatus::ok);  // reclaims the tombstone
      EXPECT_EQ(store.get(42, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 3u);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, CollisionsSpillToOverflowChains) {
  KvConfig cfg;
  cfg.shards = 2;
  cfg.table_slots = 1;  // every key in a shard collides on slot 0
  cfg.heap_slots = 256;
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    for (int i = 0; i < 40; ++i) {
      const auto k = static_cast<std::uint64_t>(ctx.rank()) * 500 + i + 1;
      EXPECT_EQ(store.put(k, k + 9), OpStatus::ok);
    }
    ctx.barrier();
    for (int r = 0; r < 2; ++r) {
      for (int i = 0; i < 40; ++i) {
        const auto k = static_cast<std::uint64_t>(r) * 500 + i + 1;
        std::uint64_t v = 0;
        bool found = false;
        EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
        EXPECT_TRUE(found) << "chained key " << k << " lost";
        EXPECT_EQ(v, k + 9);
      }
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(Kv, RoutingTableFetchMatchesAuthoritativeMap) {
  // Every client's one-sided routing fetch must agree with the map rank 0
  // published: owner = shard % p, replica = (owner + 1) % p.
  const int p = 3;
  KvConfig cfg;
  cfg.shards = 8;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    for (int s = 0; s < cfg.shards; ++s) {
      EXPECT_EQ(store.owner_of(s), s % p);
      EXPECT_EQ(store.replica_of(s), (s % p + 1) % p);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, RejectsReservedKeys) {
  fabric::run_ranks(1, [](RankCtx& ctx) {
    KvStore store(ctx);
    std::uint64_t v = 0;
    bool found = false;
    EXPECT_THROW(store.put(0, 1), Error);
    EXPECT_THROW(store.get(kv::kTombstone, &v, &found), Error);
    EXPECT_THROW(store.erase(0), Error);
    store.destroy(ctx);
  });
}

// --- client cache -------------------------------------------------------------

TEST(Kv, CacheHitsAfterFirstReadAndInvalidatesOnWrite) {
  // Single active client: deterministic hit/miss accounting.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.put(77, 100), OpStatus::ok);
      std::uint64_t v = 0;
      bool found = false;
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // cold: miss
      EXPECT_EQ(store.stats().cache_misses, 1u);
      EXPECT_EQ(store.stats().cache_hits, 0u);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // warm: hit
      EXPECT_EQ(store.stats().cache_hits, 1u);
      EXPECT_EQ(v, 100u);
      // A write bumps the shard epoch: the next read must revalidate.
      ASSERT_EQ(store.put(77, 200), OpStatus::ok);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);
      EXPECT_EQ(v, 200u) << "cache served a stale value across an epoch";
      EXPECT_EQ(store.stats().cache_misses, 2u);
      ASSERT_EQ(store.get(77, &v, &found), OpStatus::ok);  // warm again
      EXPECT_EQ(store.stats().cache_hits, 2u);
    }
    store.destroy(ctx);
  });
}

TEST(Kv, RemoteWriterInvalidatesPeerCache) {
  // Rank 0 caches a key; rank 1 overwrites it; rank 0's next read must
  // observe the new value through the epoch check (no stale serve).
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    std::uint64_t v = 0;
    bool found = false;
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.put(31337, 1), OpStatus::ok);
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      EXPECT_GE(store.stats().cache_hits, 1u);
    }
    ctx.barrier();
    if (ctx.rank() == 1) {
      ASSERT_EQ(store.put(31337, 2), OpStatus::ok);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      ASSERT_EQ(store.get(31337, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 2u) << "peer write not observed: stale cache";
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

// --- Zipfian generator --------------------------------------------------------

TEST(Zipf, SameSeedSameStream) {
  kv::Zipf a(1024, 0.9, 42);
  kv::Zipf b(1024, 0.9, 42);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "stream diverged at draw " << i;
  }
}

TEST(Zipf, DifferentSeedsDiffer) {
  kv::Zipf a(1024, 0.9, 1);
  kv::Zipf b(1024, 0.9, 2);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() != b.next()) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Zipf, SkewFavorsLowRanksAndStaysInRange) {
  kv::Zipf z(256, 0.9, 7);
  std::array<int, 256> freq{};
  for (int i = 0; i < 100000; ++i) {
    const auto k = z.next();
    ASSERT_LT(k, 256u);
    ++freq[static_cast<std::size_t>(k)];
  }
  EXPECT_GT(freq[0], freq[128] * 4) << "rank 0 should dominate mid-ranks";
  EXPECT_GT(freq[0], 10000);  // ~ 17% mass at s=0.9, n=256
}

TEST(Zipf, UniformDegenerateCase) {
  kv::Zipf z(64, 0.0, 9);
  std::array<int, 64> freq{};
  for (int i = 0; i < 64000; ++i) ++freq[static_cast<std::size_t>(z.next())];
  for (const int f : freq) {
    EXPECT_GT(f, 500);  // expectation 1000 each, loose 2-sided bound
    EXPECT_LT(f, 2000);
  }
}

TEST(Zipf, MassSumsToOne) {
  kv::Zipf z(128, 0.9, 1);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < 128; ++r) sum += z.mass(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- seqlock coherence under a concurrent writer ------------------------------

namespace {

/// Reader loops versioned gets of key `k1` while the writer churns the
/// same single-slot shard: overwrites, erases, and inserts of a colliding
/// key `k2` that reclaims k1's tombstoned cells. Every successful get must
/// return a value tagged with k1 — never k2's, never torn.
void seqlock_round(std::uint64_t seed) {
  constexpr std::uint64_t kA = 5, kB = 9;
  KvConfig cfg;
  cfg.shards = 1;       // same shard...
  cfg.table_slots = 1;  // ...same top slot: maximum contention
  cfg.heap_slots = 512;
  cfg.client_cache = false;  // force the full versioned read every time
  cfg.replicate = false;
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    KvStore store(ctx, cfg);
    if (ctx.rank() == 1) {
      Rng rng(seed);
      std::uint64_t i = 0;
      for (int op = 0; op < 400; ++op) {
        const auto roll = rng.below(10);
        if (roll < 6) {
          ASSERT_EQ(store.put(kA, kA * 1000000 + i++), OpStatus::ok);
        } else if (roll < 8) {
          ASSERT_EQ(store.erase(kA), OpStatus::ok);
        } else {
          ASSERT_EQ(store.put(kB, kB * 1000000 + i++), OpStatus::ok);
        }
      }
    } else {
      for (int r = 0; r < 400; ++r) {
        std::uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(kA, &v, &found), OpStatus::ok);
        if (found) {
          EXPECT_EQ(v / 1000000, kA)
              << "read returned a foreign or torn value " << v;
        }
      }
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

}  // namespace

TEST(KvSeqlock, ReadsNeverTearUnderConcurrentWriter) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    seqlock_round(seed);
  }
}

// --- seeded chaos determinism -------------------------------------------------

namespace {

struct FaultCounters {
  std::uint64_t injected = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// One KV round under a survivable (transient-only) fault plan; returns
/// the summed fault counters. Workload correctness asserted inside.
FaultCounters kv_chaos_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  constexpr int kKeysPerRank = 24;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;  // inter-node ("DMAPP") path
  opts.domain.fault.seed = seed;
  opts.domain.fault.transient_faults_per_rank = 4;
  opts.domain.fault.horizon_ops = 64;
  opts.domain.fault.max_repeats = 3;
  opts.domain.fault.retry_budget = 4;
  std::array<FaultCounters, kRanks> per_rank{};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        const OpCounters before = op_counters();
        KvStore store(ctx);
        for (int i = 0; i < kKeysPerRank; ++i) {
          const auto k =
              static_cast<std::uint64_t>(ctx.rank()) * 4000 + i + 1;
          EXPECT_EQ(store.put(k, k * 3), OpStatus::ok)
              << "put failed under the survivable plan";
        }
        ctx.barrier();
        for (int r = 0; r < kRanks; ++r) {
          for (int i = 0; i < kKeysPerRank; ++i) {
            const auto k = static_cast<std::uint64_t>(r) * 4000 + i + 1;
            std::uint64_t v = 0;
            bool found = false;
            EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
            EXPECT_TRUE(found) << "key " << k
                               << " lost under the survivable plan";
            EXPECT_EQ(v, k * 3);
          }
        }
        ctx.barrier();
        store.destroy(ctx);
        const OpCounters d = op_counters().since(before);
        per_rank[static_cast<std::size_t>(ctx.rank())] = {
            d.get(Op::fault_injected), d.get(Op::op_retried),
            d.get(Op::op_failed)};
      },
      opts);
  FaultCounters total;
  for (const auto& fc : per_rank) {
    total.injected += fc.injected;
    total.retried += fc.retried;
    total.failed += fc.failed;
  }
  return total;
}

}  // namespace

TEST(KvChaos, DeterministicAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const FaultCounters a = kv_chaos_round(seed);
    const FaultCounters b = kv_chaos_round(seed);
    EXPECT_EQ(a, b) << "chaos counters diverged for seed " << seed;
    EXPECT_GT(a.injected, 0u) << "plan injected nothing at seed " << seed;
    EXPECT_EQ(a.failed, 0u)
        << "transient-only plan must not exhaust retry budgets";
  }
}

// --- shard-owner failover -----------------------------------------------------

TEST(KvFailover, OwnerKillDegradesToReplicaWithTypedConfinement) {
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;  // after the healthy seeding phase
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);  // window is errors_return by construction
        // Healthy phase: rank 0 seeds keys for every shard owner,
        // replicated write-through. Keep rank 1's own op budget low so it
        // dies in the traffic phase, not here.
        std::vector<std::uint64_t> dead_keys;  // owned by rank 1
        {
          std::uint64_t from = 1;
          for (int i = 0; i < 6; ++i) {
            dead_keys.push_back(key_owned_by(store, 1, from));
            from = dead_keys.back() + 1;
          }
        }
        if (ctx.rank() == 0) {
          for (const auto k : dead_keys) {
            ASSERT_EQ(store.put(k, k + 5000), OpStatus::ok);
          }
        }
        ctx.barrier();  // last collective: everything later is kill-safe

        if (ctx.rank() == 1) {
          // Dies at its 400th issued op; RankKilledError unwinds this
          // thread quietly (errors_return at fleet scope).
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(dead_keys[0], &v, &found);
            store.put(9990001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }

        // Survivors: watch the liveness table, then verify degraded mode.
        while (store.peer_alive(1)) ctx.yield_check();
        // Typed confinement: a probe at the dead primary retires as
        // peer_dead, it neither hangs nor aborts the fleet.
        const int dead_shard = store.shard_of(dead_keys[0]);
        EXPECT_EQ(store.probe_owner(dead_shard), OpStatus::peer_dead);
        // Reads of the dead owner's shards reroute to the replica and
        // still see the healthy-phase values.
        for (const auto k : dead_keys) {
          std::uint64_t v = 0;
          bool found = false;
          EXPECT_EQ(store.get(k, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found) << "replica lost key " << k;
          EXPECT_EQ(v, k + 5000);
          EXPECT_TRUE(store.degraded(store.shard_of(k)));
        }
        EXPECT_GT(store.stats().failovers, 0u);
        // Degraded writes land on the replica and read back. Use a fresh
        // rank-1-owned key: other survivors are still verifying dead_keys.
        if (ctx.rank() == 2) {
          const auto fresh = key_owned_by(store, 1, dead_keys.back() + 1);
          ASSERT_EQ(store.put(fresh, 123456), OpStatus::ok);
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(fresh, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found);
          EXPECT_EQ(v, 123456u);
        }
        // Healthy shards keep serving untouched.
        const auto live_key = key_owned_by(store, 2);
        if (ctx.rank() == 0) {
          ASSERT_EQ(store.put(live_key, 42), OpStatus::ok);
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(live_key, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found);
          EXPECT_EQ(v, 42u);
        }
        survivors.fetch_add(1);
        // No collectives, no destroy: rank 1 cannot meet them.
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

// --- closed-loop fleet --------------------------------------------------------

TEST(KvFleet, RecordsLatenciesAndStaysCoherent) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx);
    // Seed the keyspace so reads mostly hit existing keys.
    for (int i = 0; i < 64; ++i) {
      const auto k = static_cast<std::uint64_t>(i % 256) + 1;
      if (ctx.rank() == 0) {
        ASSERT_EQ(store.put(k, k), OpStatus::ok);
      }
    }
    ctx.barrier();
    KvStore::FleetConfig fc;
    fc.ops_per_rank = 256;
    fc.fibers = 8;
    fc.read_ratio = 0.9;
    fc.keyspace = 256;
    fc.seed = 3;
    const auto res = store.run_fleet(ctx, fc);
    EXPECT_EQ(res.reads + res.writes,
              static_cast<std::uint64_t>(fc.ops_per_rank));
    EXPECT_EQ(res.read_hist.count(), res.reads);
    EXPECT_EQ(res.write_hist.count(), res.writes);
    EXPECT_GT(res.reads, res.writes);  // 0.9 read ratio
    EXPECT_GT(res.read_hist.max(), 0u);
    EXPECT_EQ(res.peer_dead, 0u);  // healthy fleet
    ctx.barrier();
    store.destroy(ctx);
  });
}

// --- self-healing recovery (DESIGN.md §13) -----------------------------------

namespace {

/// True once every shard's copy pair is either fully alive (healed) or
/// fully dead (terminally lost) — the state heal() drives toward.
bool recovery_settled(const KvStore& store) {
  for (int s = 0; s < store.config().shards; ++s) {
    const bool pa = store.peer_alive(store.copy_of(s, false).rank);
    const bool ra = store.peer_alive(store.copy_of(s, true).rank);
    if (pa != ra) return false;
  }
  return true;
}

/// Survivor-side heal loop. One pass settles the deaths it observed; a
/// death landing after a pass returned belongs to the next call (heal()'s
/// documented contract), so survivors loop until the pair map stabilizes.
kv::RecoveryReport heal_until_settled(KvStore& store, RankCtx& ctx) {
  kv::RecoveryReport rep = store.heal();
  while (!recovery_settled(store)) {
    ctx.yield_check();
    const kv::RecoveryReport next = store.heal();
    if (next.acted) rep = next;  // keep the coordinator-side counters
  }
  return rep;
}

}  // namespace

TEST(KvRecovery, OwnerKillPromotesAndRestoresRedundancy) {
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        std::vector<std::uint64_t> dead_keys;
        {
          std::uint64_t from = 1;
          for (int i = 0; i < 6; ++i) {
            dead_keys.push_back(key_owned_by(store, 1, from));
            from = dead_keys.back() + 1;
          }
        }
        if (ctx.rank() == 0) {
          for (const auto k : dead_keys) {
            ASSERT_EQ(store.put(k, k + 7000), OpStatus::ok);
          }
        }
        ctx.barrier();  // last collective before the kill

        if (ctx.rank() == 1) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(dead_keys[0], &v, &found);
            store.put(9990001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }

        while (store.peer_alive(1)) ctx.yield_check();
        const auto rep = heal_until_settled(store, ctx);
        EXPECT_EQ(rep.status, OpStatus::ok);
        EXPECT_EQ(rep.coordinator, 0);
        EXPECT_EQ(rep.lost, 0);
        if (rep.acted) {
          EXPECT_EQ(ctx.rank(), 0) << "lowest alive rank must coordinate";
          // Rank 1 owned shards (promoted) and backed rank 0's shards as
          // replica (re-replicated without promotion).
          EXPECT_GE(rep.promoted, 1);
          EXPECT_GT(rep.rereplicated, rep.promoted);
          EXPECT_GT(rep.drained_bytes, 0u);
          EXPECT_GT(rep.scrub_cells, 0u);
        }
        // The published generation is even (stable) and advanced.
        const auto gen = store.generation();
        EXPECT_EQ(gen % 2, 0u);
        EXPECT_GE(gen, 2u);
        // Redundancy restored: every shard has two live copies on distinct
        // ranks, none on the dead rank, and nothing reads degraded.
        for (int s = 0; s < store.config().shards; ++s) {
          const kv::Copy prim = store.copy_of(s, false);
          const kv::Copy repl = store.copy_of(s, true);
          EXPECT_NE(prim.rank, 1);
          EXPECT_NE(repl.rank, 1);
          EXPECT_NE(prim.rank, repl.rank);
          EXPECT_TRUE(store.peer_alive(prim.rank));
          EXPECT_TRUE(store.peer_alive(repl.rank));
          EXPECT_FALSE(store.degraded(s)) << "shard " << s;
        }
        // Healthy-phase values survived the promotion + drain.
        for (const auto k : dead_keys) {
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(k, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found) << "key " << k << " lost in recovery";
          EXPECT_EQ(v, k + 7000);
        }
        // Cache leverage is back: reads of recovered shards revalidate
        // against the promoted primary's epoch and hit.
        {
          const auto hits_before = store.stats().cache_hits;
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(dead_keys[0], &v, &found), OpStatus::ok);
          ASSERT_EQ(store.get(dead_keys[0], &v, &found), OpStatus::ok);
          EXPECT_GT(store.stats().cache_hits, hits_before)
              << "recovered shard no longer caches";
        }
        // Writes replicate through to the fresh spare copy again.
        if (ctx.rank() == 2) {
          const auto fresh = key_owned_by(store, 2, 500000);
          const int s = store.shard_of(fresh);
          const auto repl_epoch = store.shard_epoch(s, /*replica=*/true);
          ASSERT_EQ(store.put(fresh, 424242), OpStatus::ok);
          EXPECT_GT(store.shard_epoch(s, /*replica=*/true), repl_epoch)
              << "write-through to the recovered replica bank broken";
        }
        survivors.fetch_add(1);
        // No collectives, no destroy: rank 1 cannot meet them.
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

TEST(KvRecovery, CoordinatorIsLowestAliveWithSeparateRoutingHome) {
  // Kill rank 0: the election must settle on rank 1 while the routing
  // home (rank 3) keeps publishing generations.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 0;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  KvConfig cfg;
  cfg.routing_rank = 3;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx, cfg);
        const auto probe = key_owned_by(store, 0);
        if (ctx.rank() == 1) {
          ASSERT_EQ(store.put(probe, 31), OpStatus::ok);
        }
        ctx.barrier();
        if (ctx.rank() == 0) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(probe, &v, &found);
            store.put(8880001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 0 must have been killed";
        }
        while (store.peer_alive(0)) ctx.yield_check();
        const auto rep = heal_until_settled(store, ctx);
        EXPECT_EQ(rep.status, OpStatus::ok);
        EXPECT_EQ(rep.coordinator, 1);
        if (rep.acted) {
          EXPECT_EQ(ctx.rank(), 1);
        }
        std::uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(probe, &v, &found), OpStatus::ok);
        EXPECT_TRUE(found);
        EXPECT_EQ(v, 31u);
        EXPECT_FALSE(store.degraded(store.shard_of(probe)));
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

TEST(KvRecovery, RereplicationSurvivesSecondOwnerKill) {
  // Kill the owner, heal, then kill the promoted owner: the shard must
  // still serve the original values — this is the drained spare copy
  // (re-replicated from the FIRST victim's frozen image) doing its job.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kills = {{1, 400}, {2, 3000}};
  opts.errors_return = true;
  std::atomic<int> final_survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        std::vector<std::uint64_t> dead_keys;
        {
          std::uint64_t from = 1;
          for (int i = 0; i < 4; ++i) {
            dead_keys.push_back(key_owned_by(store, 1, from));
            from = dead_keys.back() + 1;
          }
        }
        if (ctx.rank() == 0) {
          for (const auto k : dead_keys) {
            ASSERT_EQ(store.put(k, k + 11000), OpStatus::ok);
          }
        }
        ctx.barrier();
        if (ctx.rank() == 1) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(dead_keys[0], &v, &found);
            store.put(9990001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }
        while (store.peer_alive(1)) ctx.yield_check();
        heal_until_settled(store, ctx);
        if (ctx.rank() == 2) {
          // The promoted owner burns ops until its scheduled death; heal()
          // keeps it routing-current in the meantime.
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 300000; ++i) {
            store.get(dead_keys[0], &v, &found);
            store.heal();
          }
          FAIL() << "rank 2 must have been killed";
        }
        while (store.peer_alive(2)) ctx.yield_check();
        const auto rep = heal_until_settled(store, ctx);
        EXPECT_EQ(rep.status, OpStatus::ok);
        EXPECT_EQ(rep.lost, 0) << "second kill lost data the spare held";
        for (int s = 0; s < store.config().shards; ++s) {
          EXPECT_TRUE(store.peer_alive(store.copy_of(s, false).rank));
          EXPECT_TRUE(store.peer_alive(store.copy_of(s, true).rank));
          EXPECT_FALSE(store.degraded(s));
        }
        for (const auto k : dead_keys) {
          std::uint64_t v = 0;
          bool found = false;
          ASSERT_EQ(store.get(k, &v, &found), OpStatus::ok);
          EXPECT_TRUE(found) << "key " << k << " lost across two recoveries";
          EXPECT_EQ(v, k + 11000);
        }
        final_survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(final_survivors.load(), 2);
}

TEST(KvRecovery, DoubleKillIsTypedDataLossNeverStale) {
  // Owner AND replica of the same shards die before anyone heals: ops on
  // those shards retire typed data_loss (no hang, no frozen stale serve),
  // heal() reports the loss typed, and untouched shards keep serving.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kills = {{1, 400}, {2, 400}};
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        // Shards owned by rank 1 have their replica on rank 2: killing
        // both erases every copy.
        const auto lost_key = key_owned_by(store, 1);
        const auto live_key = key_owned_by(store, 3);
        if (ctx.rank() == 0) {
          ASSERT_EQ(store.put(lost_key, 1), OpStatus::ok);
          ASSERT_EQ(store.put(live_key, 2), OpStatus::ok);
        }
        ctx.barrier();
        if (ctx.rank() == 1 || ctx.rank() == 2) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(live_key, &v, &found);
            store.put(7770001 + static_cast<std::uint64_t>(ctx.rank()),
                      static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank " << ctx.rank() << " must have been killed";
        }
        while (store.peer_alive(1) || store.peer_alive(2)) ctx.yield_check();
        // The other survivor may already be healing: a generation bump
        // legally retires one retry_routing before the typed final status,
        // so absorb retries and assert the settled retirement.
        const auto settled_op = [&](auto&& op) {
          OpStatus st;
          do {
            st = op();
            ctx.yield_check();
          } while (st == OpStatus::retry_routing);
          return st;
        };
        // Typed confinement before recovery: no copy left to serve.
        std::uint64_t v = 0;
        bool found = false;
        EXPECT_EQ(settled_op([&] { return store.get(lost_key, &v, &found); }),
                  OpStatus::data_loss);
        EXPECT_EQ(settled_op([&] { return store.put(lost_key, 9); }),
                  OpStatus::data_loss);
        EXPECT_GE(store.stats().data_loss_ops, 2u);
        const auto rep = heal_until_settled(store, ctx);
        EXPECT_EQ(rep.status, OpStatus::data_loss);
        EXPECT_GE(rep.lost, 1);
        // Post-recovery: the lost shard still answers typed, everything
        // else healed to live pairs and serves.
        EXPECT_EQ(settled_op([&] { return store.get(lost_key, &v, &found); }),
                  OpStatus::data_loss);
        ASSERT_EQ(settled_op([&] { return store.get(live_key, &v, &found); }),
                  OpStatus::ok);
        EXPECT_TRUE(found);
        EXPECT_EQ(v, 2u);
        for (int s = 0; s < store.config().shards; ++s) {
          const bool pa = store.peer_alive(store.copy_of(s, false).rank);
          const bool ra = store.peer_alive(store.copy_of(s, true).rank);
          EXPECT_EQ(pa, ra) << "shard " << s << " left half-recovered";
          if (pa) {
            EXPECT_FALSE(store.degraded(s));
          }
        }
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 2);
}

TEST(KvRecovery, AbortOnDataLossUnwindsFleetTyped) {
  // With abort_on_data_loss the unrecoverable shard is a fleet-fatal,
  // post-mortem-traced event instead of a typed return.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kills = {{1, 300}, {2, 300}};
  opts.errors_return = true;
  KvConfig cfg;
  cfg.abort_on_data_loss = true;
  try {
    fabric::run_ranks(
        kRanks,
        [&](RankCtx& ctx) {
          KvStore store(ctx, cfg);
          const auto doomed = key_owned_by(store, 1);
          ctx.barrier();
          if (ctx.rank() == 1 || ctx.rank() == 2) {
            std::uint64_t v = 0;
            bool found = false;
            for (int i = 0; i < 100000; ++i) {
              store.get(doomed, &v, &found);
              store.put(6660001 + static_cast<std::uint64_t>(ctx.rank()),
                        static_cast<std::uint64_t>(i));
            }
            FAIL() << "rank " << ctx.rank() << " must have been killed";
          }
          while (store.peer_alive(1) || store.peer_alive(2)) {
            ctx.yield_check();
          }
          store.heal();  // raises ErrClass::data_loss on the coordinator
          while (true) ctx.yield_check();  // followers park until the abort
        },
        opts);
    FAIL() << "data loss must abort the fleet";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::data_loss) << e.what();
  }
}

TEST(KvRecovery, RoutingRefreshSeesConsistentGenerationTablePairs) {
  // Regression for fetch-once staleness: a client re-fetching WHILE the
  // coordinator reconfigures must only ever observe {generation, table}
  // pairs — the fully-old table or the fully-new one, never a torn mix of
  // published and unpublished entries.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        const auto doomed = key_owned_by(store, 1);
        ctx.barrier();
        if (ctx.rank() == 1) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(doomed, &v, &found);
            store.put(5550001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }
        while (store.peer_alive(1)) ctx.yield_check();
        if (ctx.rank() == 3) {
          // The probe rank never heals; it hammers refresh_routing()
          // against the in-flight reconfiguration.
          for (int i = 0; i < 200000; ++i) {
            ASSERT_EQ(store.refresh_routing(), OpStatus::ok);
            bool any_old = false, any_new = false;
            for (int s = 0; s < store.config().shards; ++s) {
              const kv::Copy prim = store.copy_of(s, false);
              const kv::Copy repl = store.copy_of(s, true);
              const bool touches_dead = prim.rank == 1 || repl.rank == 1;
              if (touches_dead) {
                any_old = true;
              } else {
                EXPECT_TRUE(store.peer_alive(prim.rank))
                    << "fetched entry points at a bogus primary";
              }
              if (prim.bank == 2 || repl.bank == 2) any_new = true;
            }
            ASSERT_FALSE(any_old && any_new)
                << "torn fetch: mixed pre- and post-recovery entries";
            if (!any_old) break;  // fully-new table observed: done
            ctx.yield_check();
          }
          EXPECT_EQ(store.generation() % 2, 0u);
          std::uint64_t v = 0;
          bool found = false;
          EXPECT_EQ(store.get(doomed, &v, &found), OpStatus::ok);
        } else {
          heal_until_settled(store, ctx);
        }
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

TEST(KvRecovery, StaleClientRetiresTypedRetryRoutingThenRecovers) {
  // A client that sat out the reconfiguration: its first op against the
  // bumped generation retires typed retry_routing (refetching the table
  // as a side effect), and the retry succeeds.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        const auto doomed = key_owned_by(store, 1);
        if (ctx.rank() == 0) {
          ASSERT_EQ(store.put(doomed, 77), OpStatus::ok);
        }
        ctx.barrier();
        if (ctx.rank() == 1) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(doomed, &v, &found);
            store.put(4440001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 1 must have been killed";
        }
        while (store.peer_alive(1)) ctx.yield_check();
        if (ctx.rank() == 3) {
          // Stale client: wait out the recovery without refreshing, then
          // issue an op against the advanced generation.
          while (store.generation() < 2) ctx.yield_check();
          std::uint64_t v = 0;
          bool found = false;
          auto st = store.get(doomed, &v, &found);
          while (st == OpStatus::retry_routing) {
            st = store.get(doomed, &v, &found);
          }
          EXPECT_EQ(st, OpStatus::ok);
          EXPECT_TRUE(found);
          EXPECT_EQ(v, 77u);
          EXPECT_GE(store.stats().retry_routing, 1u)
              << "stale generation must retire typed retry_routing";
        } else {
          heal_until_settled(store, ctx);
        }
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

// --- anti-entropy scrub -------------------------------------------------------

TEST(KvScrub, RepairsInjectedDivergenceToVersionWinnerAndIsIdempotent) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {
      const auto k1 = key_owned_by(store, 0);
      const auto k2 = key_owned_by(store, 0, k1 + 1);
      ASSERT_EQ(store.put(k1, 10), OpStatus::ok);
      ASSERT_EQ(store.put(k2, 20), OpStatus::ok);
      // Warm the cache so the repair's epoch bump is also exercised.
      std::uint64_t v = 0;
      bool found = false;
      ASSERT_EQ(store.get(k1, &v, &found), OpStatus::ok);
      // Diverge the pair both ways: k1's replica ahead (higher version),
      // k2's primary ahead.
      ASSERT_EQ(store.debug_write_copy(k1, /*replica=*/true, 111),
                OpStatus::ok);
      ASSERT_EQ(store.debug_write_copy(k2, /*replica=*/false, 222),
                OpStatus::ok);
      const int s1 = store.shard_of(k1);
      const int s2 = store.shard_of(k2);
      auto r1 = store.scrub(s1);
      EXPECT_EQ(r1.status, OpStatus::ok);
      EXPECT_GT(r1.cells, 0u);
      EXPECT_GE(r1.repairs, 1u) << "diverged cell not repaired";
      if (s2 != s1) {
        const auto r2 = store.scrub(s2);
        EXPECT_EQ(r2.status, OpStatus::ok);
        EXPECT_GE(r2.repairs, 1u);
      }
      // Version winners: k1's replica write (newer) must now be the
      // primary-visible value; k2's primary write stays authoritative.
      ASSERT_EQ(store.get(k1, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 111u) << "higher-version replica write lost";
      ASSERT_EQ(store.get(k2, &v, &found), OpStatus::ok);
      EXPECT_TRUE(found);
      EXPECT_EQ(v, 222u);
      // Converged pairs scrub clean: the pass is idempotent.
      const auto again = store.scrub(s1);
      EXPECT_EQ(again.status, OpStatus::ok);
      EXPECT_EQ(again.repairs, 0u) << "scrub is not idempotent";
    }
    ctx.barrier();
    store.destroy(ctx);
  });
}

TEST(KvScrub, DeadCopyScrubRetiresTypedPeerDead) {
  constexpr int kRanks = 3;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 2;
  opts.domain.fault.kill_at_op = 200;
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        const auto doomed = key_owned_by(store, 2);
        ctx.barrier();
        if (ctx.rank() == 2) {
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 100000; ++i) {
            store.get(doomed, &v, &found);
            store.put(3330001, static_cast<std::uint64_t>(i));
          }
          FAIL() << "rank 2 must have been killed";
        }
        while (store.peer_alive(2)) ctx.yield_check();
        const auto r = store.scrub(store.shard_of(doomed));
        EXPECT_EQ(r.status, OpStatus::peer_dead)
            << "scrub over a dead copy must refuse typed, not wedge";
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 2);
}

// --- recovery chaos -----------------------------------------------------------

namespace {

/// One closed-loop fleet round with a staggered double kill: rank 1 dies
/// mid-fleet and rank 2 dies later — during its own fleet tail, its heal
/// participation, or its post-heal traffic, depending on the seed-varied
/// kill sites. Survivors heal until the pair map settles and every op ever
/// issued must retire into exactly one typed bucket.
void recovery_chaos_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.seed = seed;
  opts.domain.fault.kills = {{1, 260 + (seed % 5) * 97},
                             {2, 900 + (seed % 7) * 61}};
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        KvStore store(ctx);
        if (ctx.rank() == 0) {
          for (std::uint64_t k = 1; k <= 64; ++k) {
            ASSERT_EQ(store.put(k, k * 3), OpStatus::ok);
          }
        }
        ctx.barrier();  // last collective: kills land in the fleet phase
        KvStore::FleetConfig fc;
        fc.ops_per_rank = 500;
        fc.fibers = 4;
        fc.read_ratio = 0.9;
        fc.keyspace = 64;
        fc.seed = seed;
        const auto res = store.run_fleet(ctx, fc);
        // Retirement identity: every issued op retired exactly once into
        // a typed bucket (the killed ranks never reach this assert).
        EXPECT_EQ(res.issued, static_cast<std::uint64_t>(fc.ops_per_rank));
        EXPECT_EQ(res.issued, res.ok_ops + res.peer_dead + res.retry_routing +
                                  res.data_loss + res.failed_other)
            << "an op leaked out of the retirement identity at seed " << seed;
        if (ctx.rank() == 2) {
          // Burn ops until the scheduled death: heal participation and
          // traffic, so the kill can land mid-drain or mid-scrub.
          std::uint64_t v = 0;
          bool found = false;
          for (int i = 0; i < 300000; ++i) {
            store.heal();
            store.get(1, &v, &found);
          }
          FAIL() << "rank 2 must have been killed at seed " << seed;
        }
        while (store.peer_alive(1) || store.peer_alive(2)) ctx.yield_check();
        const auto rep = heal_until_settled(store, ctx);
        EXPECT_NE(rep.status, OpStatus::pending);
        // Settled end state: every pair fully alive (and not degraded) or
        // terminally lost; every key answers typed, never hangs.
        for (int s = 0; s < store.config().shards; ++s) {
          const bool pa = store.peer_alive(store.copy_of(s, false).rank);
          const bool ra = store.peer_alive(store.copy_of(s, true).rank);
          EXPECT_EQ(pa, ra) << "half-recovered shard " << s << " at seed "
                            << seed;
          if (pa) {
            EXPECT_FALSE(store.degraded(s));
          }
        }
        for (std::uint64_t k = 1; k <= 64; ++k) {
          std::uint64_t v = 0;
          bool found = false;
          const auto st = store.get(k, &v, &found);
          EXPECT_TRUE(st == OpStatus::ok || st == OpStatus::data_loss)
              << "key " << k << " retired " << rdma::to_string(st)
              << " at seed " << seed;
        }
        // A post-recovery fleet round keeps the identity with the healed
        // (or typed-lost) routing.
        KvStore::FleetConfig post = fc;
        post.ops_per_rank = 200;
        post.seed = seed + 1;
        const auto after = store.run_fleet(ctx, post);
        EXPECT_EQ(after.issued, static_cast<std::uint64_t>(post.ops_per_rank));
        EXPECT_EQ(after.issued, after.ok_ops + after.peer_dead +
                                    after.retry_routing + after.data_loss +
                                    after.failed_other);
        EXPECT_EQ(after.peer_dead, 0u)
            << "post-recovery routing still points at dead ranks";
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 2);
}

}  // namespace

TEST(KvRecoveryChaos, SettlesWithTypedRetirementAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    recovery_chaos_round(seed);
  }
}

TEST(KvFleet, OpStreamIsSeedDeterministic) {
  // Same seed: identical op mix (reads/writes split) across runs.
  std::array<std::uint64_t, 2> reads{}, writes{};
  for (int run = 0; run < 2; ++run) {
    fabric::run_ranks(2, [&](RankCtx& ctx) {
      KvStore store(ctx);
      KvStore::FleetConfig fc;
      fc.ops_per_rank = 128;
      fc.seed = 99;
      const auto res = store.run_fleet(ctx, fc);
      if (ctx.rank() == 0) {
        reads[static_cast<std::size_t>(run)] = res.reads;
        writes[static_cast<std::size_t>(run)] = res.writes;
      }
      ctx.barrier();
      store.destroy(ctx);
    });
  }
  EXPECT_EQ(reads[0], reads[1]);
  EXPECT_EQ(writes[0], writes[1]);
}

// src/trace flight recorder: ring semantics, lifecycle instrumentation,
// histograms, Perfetto export, and the post-mortem dump on fleet abort.
//
// The concurrency-sensitive tests (all rank threads recording while the
// main thread reads sizes) run under TSan in scripts/ci.sh: the ring's
// release-publish / acquire-size protocol must be clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>

#include "common/error.hpp"
#include "common/instr.hpp"
#include "core/notify.hpp"
#include "core/window.hpp"
#include "trace/trace.hpp"

using namespace fompi;
using trace::EvClass;
using trace::EvPhase;
using trace::Ring;
using trace::TraceSession;

namespace {

/// RAII thread binding so a failing ASSERT cannot leak a bound ring into
/// later tests.
struct BindGuard {
  explicit BindGuard(Ring* r) { trace::bind_thread(r); }
  ~BindGuard() { trace::bind_thread(nullptr); }
};

trace::Event make_event(EvClass cls, std::uint64_t arg = 0) {
  trace::Event e;
  e.wall_ns = now_ns();
  e.arg = arg;
  e.cls = cls;
  e.phase = EvPhase::issue;
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exhaustive enum-name round trips: a new enum value without a name string
// must fail here instead of printing "unknown" in bench JSON.
// ---------------------------------------------------------------------------

TEST(TraceNames, OpToStringRoundTripsExhaustively) {
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Op::kCount); ++i) {
    const Op op = static_cast<Op>(i);
    const std::string name = to_string(op);
    EXPECT_NE(name, "unknown") << "Op value " << i << " has no name string";
    Op parsed{};
    ASSERT_TRUE(op_from_string(name.c_str(), &parsed))
        << "Op name '" << name << "' does not parse back";
    EXPECT_EQ(parsed, op) << "Op name '" << name
                          << "' is ambiguous (duplicate string)";
  }
  EXPECT_FALSE(op_from_string("unknown", nullptr));
  EXPECT_FALSE(op_from_string("no_such_op", nullptr));
}

TEST(TraceNames, EvClassAndPhaseNamesAreExhaustiveAndUnique) {
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(EvClass::kCount);
       ++i) {
    const std::string name = to_string(static_cast<EvClass>(i));
    EXPECT_NE(name, "unknown") << "EvClass value " << i << " unnamed";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate EvClass name " << name;
  }
  seen.clear();
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(EvPhase::kCount);
       ++i) {
    const std::string name = to_string(static_cast<EvPhase>(i));
    EXPECT_NE(name, "unknown") << "EvPhase value " << i << " unnamed";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate EvPhase name " << name;
  }
}

// ---------------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------------

TEST(TraceRing, RecordsInOrderUpToCapacityThenDropsWithCounter) {
  Ring ring(8);
  for (std::uint64_t i = 0; i < 12; ++i) ring.push(make_event(EvClass::put, i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.dropped(), 4u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].arg, i) << "oldest events must be kept, newest dropped";
  }
}

TEST(TraceRing, UnboundThreadEmitsNothing) {
  ASSERT_EQ(trace::bound_ring(), nullptr);
  trace::emit(EvClass::put, EvPhase::issue);
  { trace::Span sp(EvClass::fence); }
  // Nothing to observe without a ring: the assertion is that no crash
  // happened and a subsequently bound ring starts empty.
  Ring ring(4);
  BindGuard bind(&ring);
  EXPECT_EQ(ring.size(), 0u);
  trace::emit(EvClass::put, EvPhase::issue);
  trace::flush_thread();  // publish the thread-local staging buffer
  EXPECT_EQ(ring.size(), trace::kEnabled ? 1u : 0u);
}

TEST(TraceRing, StagedEventsPublishOnBatchFillAndUnbind) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  constexpr std::size_t kBatch = trace::detail::Stage::kStageEvents;
  Ring ring(4 * kBatch);
  {
    BindGuard bind(&ring);
    // One short of a full staging buffer: nothing published yet.
    for (std::size_t i = 0; i < kBatch - 1; ++i) {
      trace::emit(EvClass::put, EvPhase::issue, -1, i);
    }
    EXPECT_EQ(ring.size(), 0u) << "staged events published early";
    // The batch-filling event publishes all of them with one release store.
    trace::emit(EvClass::put, EvPhase::issue, -1, kBatch - 1);
    ASSERT_EQ(ring.size(), kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      EXPECT_EQ(ring[i].arg, i) << "batch publish must preserve order";
    }
    // A partial batch stays staged until flushed or unbound.
    trace::emit(EvClass::get, EvPhase::issue, -1, kBatch);
    EXPECT_EQ(ring.size(), kBatch);
  }
  // BindGuard unbind flushed the partial batch.
  ASSERT_EQ(ring.size(), kBatch + 1);
  EXPECT_EQ(ring[kBatch].cls, EvClass::get);
}

TEST(TraceRing, SpanArmsOnlyWhenBoundAtConstruction) {
  Ring ring(16);
  {
    BindGuard bind(&ring);
    trace::Span sp(EvClass::fence, 3, 7);
  }
  if (trace::kEnabled) {
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0].phase, EvPhase::begin);
    EXPECT_EQ(ring[0].cls, EvClass::fence);
    EXPECT_EQ(ring[0].target, 3);
    EXPECT_EQ(ring[0].arg, 7u);
    EXPECT_EQ(ring[1].phase, EvPhase::end);
    EXPECT_GE(ring[1].wall_ns, ring[0].wall_ns);
  }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(TraceHisto, BucketMappingIsMonotoneAndTight) {
  using H = trace::LatencyHisto;
  std::size_t prev = 0;
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                          123456ull, 1ull << 40, ~0ull}) {
    const std::size_t b = H::bucket_of(v);
    ASSERT_LT(b, H::kBuckets);
    EXPECT_GE(b, prev) << "bucket index must be monotone in the value";
    prev = b;
    // The bucket floor must not exceed the value and must be within the
    // sub-bucket resolution (~1/8 of the octave) below it.
    const std::uint64_t floor = H::bucket_floor(b);
    EXPECT_LE(floor, v);
    if (v > 0) {
      EXPECT_GE(floor, v - v / 8 - 1);
    }
  }
}

TEST(TraceHisto, QuantilesAndMergeBehaveSanely) {
  trace::LatencyHisto h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  const std::uint64_t p50 = h.quantile(0.50);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p50, 400u);
  EXPECT_LE(p50, 520u);
  EXPECT_GE(p99, 850u);
  EXPECT_LE(p99, 1000u);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max());

  trace::LatencyHisto other;
  other.add(1u << 20);
  other.merge(h);
  EXPECT_EQ(other.count(), 1001u);
  EXPECT_EQ(other.max(), 1u << 20);
  EXPECT_GE(other.quantile(1.0), 1000u);
  trace::LatencyHisto empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end recording through the real protocol stack
// ---------------------------------------------------------------------------

TEST(TraceSessionTest, AllRankThreadsRecordConcurrently) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  constexpr int kRanks = 4;
  TraceSession session(kRanks);
  fabric::run_ranks(kRanks, [](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 4096);
    win.fence();
    std::uint64_t v = 0xabcdefull + static_cast<std::uint64_t>(ctx.rank());
    for (int i = 0; i < 16; ++i) {
      win.put(&v, 8, (ctx.rank() + 1) % ctx.nranks(),
              static_cast<std::size_t>(i) * 8);
    }
    win.fence();
    win.lock_all();
    win.flush_all();
    win.unlock_all();
    win.free();
  });
  EXPECT_EQ(session.total_dropped(), 0u);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GT(session.ring(r).size(), 0u) << "rank " << r << " recorded nothing";
  }
  // Every rank issued 16 puts inside the fence epoch; fence + lock_all +
  // flush_all spans must have been recorded.
  const auto puts = session.summary(EvClass::put);
  EXPECT_GE(puts.count, 0u);  // puts carry no modeled latency w/o injection
  const auto fences = session.summary(EvClass::fence);
  EXPECT_GE(fences.count, 2u * kRanks);
  EXPECT_LE(fences.p50_ns, fences.p99_ns);
  EXPECT_LE(fences.p99_ns, fences.max_ns);
  std::uint64_t put_events = 0;
  for (int r = 0; r < kRanks; ++r) {
    const trace::Ring& ring = session.ring(r);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].cls == EvClass::put && ring[i].phase == EvPhase::issue) {
        ++put_events;
      }
    }
  }
  EXPECT_GE(put_events, 16u * kRanks);
}

TEST(TraceSessionTest, ModeledInjectionStampsSimTimeAndFillsHistogram) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  TraceSession session(2);
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;  // inter-node: modeled Gemini latency
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 4096);
    win.fence();
    if (ctx.rank() == 0) {
      std::uint64_t v = 42;
      for (int i = 0; i < 8; ++i) win.put(&v, 8, 1, 0);
    }
    win.fence();
    win.free();
  }, opts);
  const auto puts = session.summary(EvClass::put);
  EXPECT_GE(puts.count, 8u);
  // An 8-byte inter-node put is modeled at ~1 us end-to-end.
  EXPECT_GT(puts.p50_ns, 500u);
  EXPECT_LE(puts.p50_ns, puts.max_ns);
  bool saw_sim_stamp = false;
  const trace::Ring& ring = session.ring(0);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i].cls == EvClass::put && ring[i].sim_ns != 0) {
      EXPECT_LE(ring[i].dur_ns, ring[i].sim_ns)
          << "modeled latency cannot exceed the absolute completion stamp";
      saw_sim_stamp = true;
    }
  }
  EXPECT_TRUE(saw_sim_stamp) << "no put carried a modeled completion stamp";
}

TEST(TraceSessionTest, OverflowDropsAreCountedNotBlocking) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  TraceSession::Config cfg;
  cfg.ring_capacity = 32;  // deliberately tiny
  cfg.postmortem_path.clear();
  TraceSession session(2, cfg);
  fabric::run_ranks(2, [](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 4096);
    win.lock_all();
    std::uint64_t v = 7;
    for (int i = 0; i < 256; ++i) {
      win.put(&v, 8, (ctx.rank() + 1) % 2, 0);
    }
    win.unlock_all();
    win.free();
  });
  EXPECT_EQ(session.ring(0).size(), 32u);
  EXPECT_GT(session.total_dropped(), 0u);
}

TEST(TraceSessionTest, OnlyOneActiveSessionAtATime) {
  TraceSession session(1);
  EXPECT_EQ(TraceSession::active(), &session);
  EXPECT_THROW(TraceSession(1), Error);
}

// ---------------------------------------------------------------------------
// Consumers: Perfetto JSON and the post-mortem dump
// ---------------------------------------------------------------------------

TEST(TraceExport, ChromeJsonHasPerRankTracksAndBalancedStructure) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  TraceSession session(2);
  fabric::run_ranks(2, [](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 1024);
    win.fence();
    win.fence();
    win.free();
  });
  const std::string json = session.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"fence\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  // Crude structural balance check (no string literals with braces are
  // emitted, so counting is meaningful).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, PostMortemDumpOnKilledPeer) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  const std::string path = "test_trace_postmortem.trace.json";
  std::remove(path.c_str());
  TraceSession::Config cfg;
  cfg.postmortem_path = path;
  TraceSession session(2, cfg);
  EXPECT_THROW(
      fabric::run_ranks(2,
                        [](fabric::RankCtx& ctx) {
                          core::Win win = core::Win::allocate(ctx, 256);
                          win.fence();
                          if (ctx.rank() == 1) {
                            throw std::runtime_error("injected rank death");
                          }
                          // Rank 0 parks in a collective; the abort
                          // propagates through yield_check and unwinds it.
                          ctx.barrier();
                          win.fence();
                          win.free();
                        }),
      std::exception);
  // The post-mortem trace must exist and contain evidence from rank 0 (the
  // survivor) — at least its fence epoch.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "post-mortem dump not written";
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"fence\""), std::string::npos);
  EXPECT_NE(content.find("\"rank 0\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, WriteChromeJsonRoundTripsToDisk) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  TraceSession session(1);
  {
    BindGuard bind(&session.ring(0));
    trace::Span sp(EvClass::barrier);
  }
  const std::string path = "test_trace_roundtrip.trace.json";
  ASSERT_TRUE(session.write_chrome_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Notified access records its wait span
// ---------------------------------------------------------------------------

TEST(TraceSessionTest, NotifyWaitSpansRecorded) {
  if (!trace::kEnabled) GTEST_SKIP() << "built with FOMPI_TRACE=OFF";
  TraceSession session(2);
  fabric::run_ranks(2, [](fabric::RankCtx& ctx) {
    core::NotifyWin nw(ctx, 256, 4);
    if (ctx.rank() == 0) {
      const std::uint64_t v = 99;
      nw.put_notify(&v, 8, 1, 0, 2);
    } else {
      nw.wait_notify(2, 1);
    }
    nw.destroy(ctx);
  });
  const auto waits = session.summary(EvClass::notify_wait);
  EXPECT_EQ(waits.count, 1u);
}

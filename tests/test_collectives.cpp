// Collectives over the RDMA substrate: barrier, ibarrier and the data
// collectives, across rank counts and transport configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "fabric/fabric.hpp"

using namespace fompi;
using fabric::RankCtx;

class CollParam : public ::testing::TestWithParam<int> {};

TEST_P(CollParam, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    arrived.fetch_add(1);
    ctx.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), p);
  });
}

TEST_P(CollParam, RepeatedBarriersStayConsistent) {
  const int p = GetParam();
  std::atomic<std::uint64_t> counter{0};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      ctx.barrier();
      EXPECT_EQ(counter.load() % static_cast<unsigned>(p), 0u);
      ctx.barrier();
    }
  });
}

TEST_P(CollParam, Bcast) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<std::uint64_t> data(17, 0);
    if (ctx.rank() == 0) std::iota(data.begin(), data.end(), 5);
    ctx.bcast(0, data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], 5 + i);
  });
}

TEST_P(CollParam, BcastFromNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    int v = ctx.rank() == 1 ? 77 : -1;
    ctx.fabric().coll().bcast(ctx.rank(), 1, &v, 1);
    EXPECT_EQ(v, 77);
  });
}

TEST_P(CollParam, Allgather) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const std::array<int, 3> mine{ctx.rank(), ctx.rank() * 10, 7};
    std::vector<int> all(static_cast<std::size_t>(3 * p));
    ctx.allgather(mine.data(), 3, all.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[3 * r + 0], r);
      EXPECT_EQ(all[3 * r + 1], r * 10);
      EXPECT_EQ(all[3 * r + 2], 7);
    }
  });
}

TEST_P(CollParam, AllreduceSumAndMin) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const std::uint64_t mine = static_cast<std::uint64_t>(ctx.rank()) + 1;
    std::uint64_t sum = 0;
    ctx.allreduce(&mine, &sum, 1,
                  [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, static_cast<std::uint64_t>(p) * (p + 1) / 2);
    std::uint64_t mn = 0;
    ctx.allreduce(&mine, &mn, 1, [](std::uint64_t a, std::uint64_t b) {
      return std::min(a, b);
    });
    EXPECT_EQ(mn, 1u);
  });
}

TEST_P(CollParam, ReduceScatterBlock) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    // src[j] = rank + j; column j sums to p*j + p(p-1)/2.
    std::vector<std::uint64_t> src(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      src[static_cast<std::size_t>(j)] =
          static_cast<std::uint64_t>(ctx.rank() + j);
    }
    std::uint64_t out = 0;
    ctx.fabric().coll().reduce_scatter_block(
        ctx.rank(), src.data(), &out, 1,
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const std::uint64_t expect =
        static_cast<std::uint64_t>(p) * ctx.rank() +
        static_cast<std::uint64_t>(p) * (p - 1) / 2;
    EXPECT_EQ(out, expect);
  });
}

TEST_P(CollParam, Alltoall) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<int> src(static_cast<std::size_t>(2 * p));
    for (int j = 0; j < p; ++j) {
      src[static_cast<std::size_t>(2 * j)] = ctx.rank() * 100 + j;
      src[static_cast<std::size_t>(2 * j + 1)] = -j;
    }
    std::vector<int> dst(static_cast<std::size_t>(2 * p), 0);
    ctx.fabric().coll().alltoall(ctx.rank(), src.data(), std::size_t{2},
                                 dst.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(dst[static_cast<std::size_t>(2 * r)], r * 100 + ctx.rank());
      EXPECT_EQ(dst[static_cast<std::size_t>(2 * r + 1)], -ctx.rank());
    }
  });
}

TEST_P(CollParam, IbarrierCompletesEverywhere) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    auto& coll = ctx.fabric().coll();
    for (int round = 0; round < 5; ++round) {
      coll.ibarrier_begin(ctx.rank());
      int polls = 0;
      while (!coll.ibarrier_test(ctx.rank())) {
        ++polls;
        ctx.yield_check();
      }
      (void)polls;
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollParam,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, IbarrierDoubleBeginRejected) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    auto& coll = ctx.fabric().coll();
    if (ctx.rank() == 0) {
      coll.ibarrier_begin(0);
      EXPECT_THROW(coll.ibarrier_begin(0), Error);
      while (!coll.ibarrier_test(0)) ctx.yield_check();
    } else {
      coll.ibarrier_begin(1);
      while (!coll.ibarrier_test(1)) ctx.yield_check();
    }
  });
}

TEST(Collectives, BarrierWorksOverInterNodeModel) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    for (int i = 0; i < 3; ++i) ctx.barrier();
  }, opts);
}

TEST(Collectives, AbortPropagatesOutOfBarrier) {
  EXPECT_THROW(
      fabric::run_ranks(2,
                        [&](RankCtx& ctx) {
                          if (ctx.rank() == 0) {
                            raise(ErrClass::arg, "rank 0 fails");
                          }
                          ctx.barrier();  // rank 1 must not hang
                        }),
      Error);
}

// Collectives over the RDMA substrate: barrier, ibarrier and the data
// collectives, across rank counts and transport configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <utility>

#include "common/instr.hpp"
#include "fabric/fabric.hpp"

using namespace fompi;
using fabric::RankCtx;

class CollParam : public ::testing::TestWithParam<int> {};

TEST_P(CollParam, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    arrived.fetch_add(1);
    ctx.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), p);
  });
}

TEST_P(CollParam, RepeatedBarriersStayConsistent) {
  const int p = GetParam();
  std::atomic<std::uint64_t> counter{0};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      ctx.barrier();
      EXPECT_EQ(counter.load() % static_cast<unsigned>(p), 0u);
      ctx.barrier();
    }
  });
}

TEST_P(CollParam, Bcast) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<std::uint64_t> data(17, 0);
    if (ctx.rank() == 0) std::iota(data.begin(), data.end(), 5);
    ctx.bcast(0, data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], 5 + i);
  });
}

TEST_P(CollParam, BcastFromNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    int v = ctx.rank() == 1 ? 77 : -1;
    ctx.fabric().coll().bcast(ctx.rank(), 1, &v, 1);
    EXPECT_EQ(v, 77);
  });
}

TEST_P(CollParam, Allgather) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const std::array<int, 3> mine{ctx.rank(), ctx.rank() * 10, 7};
    std::vector<int> all(static_cast<std::size_t>(3 * p));
    ctx.allgather(mine.data(), 3, all.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[3 * r + 0], r);
      EXPECT_EQ(all[3 * r + 1], r * 10);
      EXPECT_EQ(all[3 * r + 2], 7);
    }
  });
}

TEST_P(CollParam, AllreduceSumAndMin) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const std::uint64_t mine = static_cast<std::uint64_t>(ctx.rank()) + 1;
    std::uint64_t sum = 0;
    ctx.allreduce(&mine, &sum, 1,
                  [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, static_cast<std::uint64_t>(p) * (p + 1) / 2);
    std::uint64_t mn = 0;
    ctx.allreduce(&mine, &mn, 1, [](std::uint64_t a, std::uint64_t b) {
      return std::min(a, b);
    });
    EXPECT_EQ(mn, 1u);
  });
}

TEST_P(CollParam, ReduceScatterBlock) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    // src[j] = rank + j; column j sums to p*j + p(p-1)/2.
    std::vector<std::uint64_t> src(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      src[static_cast<std::size_t>(j)] =
          static_cast<std::uint64_t>(ctx.rank() + j);
    }
    std::uint64_t out = 0;
    ctx.fabric().coll().reduce_scatter_block(
        ctx.rank(), src.data(), &out, 1,
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const std::uint64_t expect =
        static_cast<std::uint64_t>(p) * ctx.rank() +
        static_cast<std::uint64_t>(p) * (p - 1) / 2;
    EXPECT_EQ(out, expect);
  });
}

TEST_P(CollParam, Alltoall) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<int> src(static_cast<std::size_t>(2 * p));
    for (int j = 0; j < p; ++j) {
      src[static_cast<std::size_t>(2 * j)] = ctx.rank() * 100 + j;
      src[static_cast<std::size_t>(2 * j + 1)] = -j;
    }
    std::vector<int> dst(static_cast<std::size_t>(2 * p), 0);
    ctx.fabric().coll().alltoall(ctx.rank(), src.data(), std::size_t{2},
                                 dst.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(dst[static_cast<std::size_t>(2 * r)], r * 100 + ctx.rank());
      EXPECT_EQ(dst[static_cast<std::size_t>(2 * r + 1)], -ctx.rank());
    }
  });
}

TEST_P(CollParam, IbarrierCompletesEverywhere) {
  const int p = GetParam();
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    auto& coll = ctx.fabric().coll();
    for (int round = 0; round < 5; ++round) {
      coll.ibarrier_begin(ctx.rank());
      int polls = 0;
      while (!coll.ibarrier_test(ctx.rank())) {
        ++polls;
        ctx.yield_check();
      }
      (void)polls;
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollParam,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(Collectives, IbarrierDoubleBeginRejected) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    auto& coll = ctx.fabric().coll();
    if (ctx.rank() == 0) {
      coll.ibarrier_begin(0);
      EXPECT_THROW(coll.ibarrier_begin(0), Error);
      while (!coll.ibarrier_test(0)) ctx.yield_check();
    } else {
      coll.ibarrier_begin(1);
      while (!coll.ibarrier_test(1)) ctx.yield_check();
    }
  });
}

TEST(Collectives, BarrierWorksOverInterNodeModel) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    for (int i = 0; i < 3; ++i) ctx.barrier();
  }, opts);
}

// --- forced tree path (PR 7) -------------------------------------------------
// flat_cutoff = 0 disables the single-node pointer-publication fallback,
// so every collective takes the RMA put/notify trees even on tiny
// payloads; ranks_per_node = 1 makes every rank its own node.

namespace {

fabric::FabricOptions tree_opts() {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.coll.flat_cutoff = 0;
  return opts;
}

/// Drives every data collective once and checks the results; shared by
/// the forced-tree, hierarchical and deferred-delivery suites.
void exercise_all_collectives(RankCtx& ctx) {
  auto& coll = ctx.fabric().coll();
  const int p = ctx.nranks();
  const int r = ctx.rank();

  // bcast, small and large (large crosses the landing-grow path), from
  // rank 0 and from the last rank.
  for (const int root : {0, p - 1}) {
    std::vector<std::uint64_t> data(1200, 0);
    if (r == root) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = 900 + i;
      }
    }
    coll.bcast(r, root, data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(data[i], 900 + i) << "root " << root;
    }
  }

  // allgather.
  std::vector<std::uint64_t> mine(5);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    mine[i] = static_cast<std::uint64_t>(r) * 100 + i;
  }
  std::vector<std::uint64_t> all(static_cast<std::size_t>(p) * 5);
  coll.allgather(r, mine.data(), mine.size(), all.data());
  for (int j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_EQ(all[static_cast<std::size_t>(j) * 5 + i],
                static_cast<std::uint64_t>(j) * 100 + i);
    }
  }

  // allreduce: sum of doubles (order-sensitive enough to catch fold
  // mistakes bit-wise across ranks) and min of u64.
  {
    std::vector<double> src(7), dst(7);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<double>(r + 1) * (static_cast<double>(i) + 0.5);
    }
    coll.allreduce(r, src.data(), dst.data(), src.size(),
                   [](double a, double b) { return a + b; });
    const double ranksum = static_cast<double>(p) * (p + 1) / 2;
    for (std::size_t i = 0; i < dst.size(); ++i) {
      ASSERT_NEAR(dst[i], ranksum * (static_cast<double>(i) + 0.5), 1e-9);
    }
  }

  // reduce to a non-zero root (commutative op).
  {
    const std::uint64_t v = static_cast<std::uint64_t>(r) + 1;
    std::uint64_t out = 0;
    const int root = p / 2;
    coll.reduce(r, root, &v, &out, 1,
                [](std::uint64_t a, std::uint64_t b) { return a + b; });
    if (r == root) {
      ASSERT_EQ(out, static_cast<std::uint64_t>(p) * (p + 1) / 2);
    }
  }

  // reduce_scatter_block.
  {
    std::vector<std::uint64_t> src(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      src[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(r + j);
    }
    std::uint64_t out = 0;
    coll.reduce_scatter_block(
        r, src.data(), &out, 1,
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    ASSERT_EQ(out, static_cast<std::uint64_t>(p) * r +
                       static_cast<std::uint64_t>(p) * (p - 1) / 2);
  }

  // alltoall, small (Bruck) and large (direct put + arrival counter).
  for (const std::size_t n : {std::size_t{2}, std::size_t{300}}) {
    std::vector<std::uint64_t> src(static_cast<std::size_t>(p) * n);
    for (int j = 0; j < p; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        src[static_cast<std::size_t>(j) * n + i] =
            static_cast<std::uint64_t>(r) * 1000000 +
            static_cast<std::uint64_t>(j) * 1000 + i;
      }
    }
    std::vector<std::uint64_t> dst(static_cast<std::size_t>(p) * n, 0);
    coll.alltoall(r, src.data(), n, dst.data());
    for (int j = 0; j < p; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[static_cast<std::size_t>(j) * n + i],
                  static_cast<std::uint64_t>(j) * 1000000 +
                      static_cast<std::uint64_t>(r) * 1000 + i)
            << "n=" << n;
      }
    }
  }

  // alltoallv with skewed counts including zeros: rank r sends (r + j) % 3
  // elements to rank j.
  {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p));
    std::uint64_t tot = 0;
    for (int j = 0; j < p; ++j) {
      counts[static_cast<std::size_t>(j)] =
          static_cast<std::uint64_t>((r + j) % 3);
      sdispls[static_cast<std::size_t>(j)] = tot;
      tot += counts[static_cast<std::size_t>(j)];
    }
    std::vector<std::uint64_t> src(std::max<std::uint64_t>(tot, 1));
    for (int j = 0; j < p; ++j) {
      for (std::uint64_t i = 0; i < counts[static_cast<std::size_t>(j)];
           ++i) {
        src[sdispls[static_cast<std::size_t>(j)] + i] =
            static_cast<std::uint64_t>(r) * 1000 +
            static_cast<std::uint64_t>(j) * 10 + i;
      }
    }
    std::vector<std::uint64_t> dst, recvcounts, rdispls;
    coll.alltoallv(r, src.data(), counts.data(), sdispls.data(), dst,
                   recvcounts, rdispls);
    for (int j = 0; j < p; ++j) {
      ASSERT_EQ(recvcounts[static_cast<std::size_t>(j)],
                static_cast<std::uint64_t>((j + r) % 3));
      for (std::uint64_t i = 0; i < recvcounts[static_cast<std::size_t>(j)];
           ++i) {
        ASSERT_EQ(dst[rdispls[static_cast<std::size_t>(j)] + i],
                  static_cast<std::uint64_t>(j) * 1000 +
                      static_cast<std::uint64_t>(r) * 10 + i);
      }
    }
  }
}

}  // namespace

class TreeColl : public ::testing::TestWithParam<int> {};

TEST_P(TreeColl, AllDataCollectivesOverForcedTrees) {
  fabric::run_ranks(GetParam(),
                    [](RankCtx& ctx) { exercise_all_collectives(ctx); },
                    tree_opts());
}

TEST_P(TreeColl, AllDataCollectivesWithForcedBruckAlltoall) {
  // bruck_min_ranks = 2 routes the small alltoall blocks through the
  // Bruck store-and-forward algorithm at every rank count here (the
  // default keeps these counts on the direct path).
  auto opts = tree_opts();
  opts.coll.bruck_min_ranks = 2;
  fabric::run_ranks(GetParam(),
                    [](RankCtx& ctx) { exercise_all_collectives(ctx); },
                    opts);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TreeColl,
                         ::testing::Values(2, 3, 5, 7, 12, 16));

TEST(TreeColl, WorksUnderGeminiModel) {
  auto opts = tree_opts();
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(4, [](RankCtx& ctx) { exercise_all_collectives(ctx); },
                    opts);
}

TEST(TreeColl, WorksUnderShuffledDeferredDelivery) {
  // Deferred + shuffled delivery is the adversarial ordering model: data
  // may land out of order, so the gsync-then-flag protocol is load-bearing.
  auto opts = tree_opts();
  opts.domain.delivery = rdma::Delivery::deferred;
  opts.domain.shuffle_deferred = true;
  fabric::run_ranks(5, [](RankCtx& ctx) { exercise_all_collectives(ctx); },
                    opts);
}

// --- two-tier hierarchy (PR 7) ----------------------------------------------

class HierColl : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HierColl, AllDataCollectivesOverTwoTierTrees) {
  const auto [p, rpn] = GetParam();
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = rpn;
  opts.coll.flat_cutoff = 0;
  fabric::run_ranks(p,
                    [&](RankCtx& ctx) {
                      EXPECT_TRUE(ctx.fabric().coll().hierarchical());
                      exercise_all_collectives(ctx);
                    },
                    opts);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierColl,
                         ::testing::Values(std::make_pair(8, 2),
                                           std::make_pair(12, 4),
                                           std::make_pair(16, 4)));

// --- persistent collectives (PR 7) -------------------------------------------

TEST(PersistentColl, AlltoallvPlanMatchesAdHocAndIsReusable) {
  const int p = 4;
  fabric::run_ranks(
      p,
      [&](RankCtx& ctx) {
        auto& coll = ctx.fabric().coll();
        const int r = ctx.rank();
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
        std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p));
        std::uint64_t tot = 0;
        for (int j = 0; j < p; ++j) {
          counts[static_cast<std::size_t>(j)] =
              static_cast<std::uint64_t>((r + j) % 3 + 1);
          sdispls[static_cast<std::size_t>(j)] = tot;
          tot += counts[static_cast<std::size_t>(j)];
        }
        auto plan = coll.plan_alltoallv(r, counts.data(), sdispls.data(),
                                        sizeof(std::uint64_t));
        for (int round = 0; round < 4; ++round) {
          std::vector<std::uint64_t> src(tot);
          for (std::uint64_t i = 0; i < tot; ++i) {
            src[i] = static_cast<std::uint64_t>(r) * 10000 +
                     static_cast<std::uint64_t>(round) * 100 + i;
          }
          // Reference via the ad-hoc path.
          std::vector<std::uint64_t> want, recvcounts, rdispls;
          coll.alltoallv(r, src.data(), counts.data(), sdispls.data(), want,
                         recvcounts, rdispls);
          std::vector<std::uint64_t> got(want.size(), 0);
          coll.run_alltoallv(r, *plan, src.data(), got.data());
          EXPECT_EQ(got, want) << "round " << round;
        }
        ctx.barrier();
      },
      tree_opts());
}

TEST(PersistentColl, AllreducePlanMatchesAdHocAndIsReusable) {
  const int p = 6;
  fabric::run_ranks(
      p,
      [&](RankCtx& ctx) {
        auto& coll = ctx.fabric().coll();
        const int r = ctx.rank();
        constexpr std::size_t n = 9;
        auto plan = coll.plan_allreduce(r, n, sizeof(double));
        for (int round = 0; round < 4; ++round) {
          std::vector<double> src(n), want(n), got(n);
          for (std::size_t i = 0; i < n; ++i) {
            src[i] = static_cast<double>(r + 1) *
                     (static_cast<double>(i) + 0.25 * (round + 1));
          }
          coll.allreduce(r, src.data(), want.data(), n,
                         [](double a, double b) { return a + b; });
          coll.run_allreduce(r, *plan, src.data(), got.data(),
                             [](double a, double b) { return a + b; });
          EXPECT_EQ(got, want) << "round " << round;  // bit-identical fold
        }
        ctx.barrier();
      },
      tree_opts());
}

TEST(PersistentColl, SteadyStateRunsAreAllocationFree) {
  // After a warm-up run, repeated run_alltoallv/run_allreduce must not
  // grow any NIC pool or register new regions: the plan owns all state.
  const int p = 4;
  fabric::run_ranks(
      p,
      [&](RankCtx& ctx) {
        auto& coll = ctx.fabric().coll();
        auto& reg = ctx.fabric().domain().registry();
        const int r = ctx.rank();
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 3);
        std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
          sdispls[static_cast<std::size_t>(j)] =
              static_cast<std::uint64_t>(j) * 3;
        }
        auto a2av = coll.plan_alltoallv(r, counts.data(), sdispls.data(),
                                        sizeof(std::uint64_t));
        auto ar = coll.plan_allreduce(r, 4, sizeof(std::uint64_t));
        std::vector<std::uint64_t> src(static_cast<std::size_t>(p) * 3, 1);
        std::vector<std::uint64_t> dst(static_cast<std::size_t>(p) * 3, 0);
        std::uint64_t rs[4] = {1, 2, 3, 4}, rd[4];
        coll.run_alltoallv(r, *a2av, src.data(), dst.data());
        coll.run_allreduce(r, *ar, rs, rd,
                           [](std::uint64_t a, std::uint64_t b) {
                             return a + b;
                           });
        ctx.barrier();
        const std::size_t live_before = reg.live_count();
        const OpCounters before = op_counters();
        for (int round = 0; round < 8; ++round) {
          coll.run_alltoallv(r, *a2av, src.data(), dst.data());
          coll.run_allreduce(r, *ar, rs, rd,
                             [](std::uint64_t a, std::uint64_t b) {
                               return a + b;
                             });
        }
        const OpCounters delta = op_counters().since(before);
        EXPECT_EQ(delta.get(Op::pool_grow), 0u)
            << "steady-state persistent runs must not allocate";
        ctx.barrier();
        EXPECT_EQ(reg.live_count(), live_before)
            << "steady-state persistent runs must not register regions";
      },
      tree_opts());
}

TEST(Collectives, AbortPropagatesOutOfBarrier) {
  EXPECT_THROW(
      fabric::run_ranks(2,
                        [&](RankCtx& ctx) {
                          if (ctx.rank() == 0) {
                            raise(ErrClass::arg, "rank 0 fails");
                          }
                          ctx.barrier();  // rank 1 must not hang
                        }),
      Error);
}

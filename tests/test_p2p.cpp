// Two-sided messaging baseline: eager/rendezvous protocols, matching,
// wildcards, nonblocking ops, probe, truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "fabric/fabric.hpp"

using namespace fompi;
using fabric::RankCtx;
using fabric::Status;

namespace {
fabric::FabricOptions small_eager() {
  fabric::FabricOptions o;
  o.eager_threshold = 64;  // force rendezvous early
  return o;
}
}  // namespace

TEST(P2P, BlockingPingPongEager) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    std::array<int, 4> buf{};
    if (ctx.rank() == 0) {
      buf = {1, 2, 3, 4};
      ctx.send(1, 7, buf.data(), sizeof(buf));
      ctx.recv(1, 8, buf.data(), sizeof(buf));
      EXPECT_EQ(buf[0], 10);
    } else {
      ctx.recv(0, 7, buf.data(), sizeof(buf));
      EXPECT_EQ(buf[3], 4);
      buf = {10, 20, 30, 40};
      ctx.send(0, 8, buf.data(), sizeof(buf));
    }
  });
}

TEST(P2P, RendezvousLargeMessage) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    std::vector<std::uint8_t> buf(4096);
    if (ctx.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
      ctx.send(1, 0, buf.data(), buf.size());
    } else {
      ctx.recv(0, 0, buf.data(), buf.size());
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i));
      }
    }
  }, small_eager());
}

TEST(P2P, UnexpectedThenRecv) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int v = 42;
      ctx.send(1, 3, &v, sizeof(v));
      ctx.barrier();
    } else {
      ctx.barrier();  // guarantee the message is already queued
      int v = 0;
      ctx.recv(0, 3, &v, sizeof(v));
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(P2P, TagMatchingPicksRightMessage) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    if (ctx.rank() == 0) {
      const int a = 1, b = 2;
      p2p.send(0, 1, /*tag=*/10, &a, sizeof(a));
      p2p.send(0, 1, /*tag=*/20, &b, sizeof(b));
    } else {
      int v = 0;
      Status st;
      p2p.recv(1, 0, /*tag=*/20, &v, sizeof(v), &st);
      EXPECT_EQ(v, 2);
      EXPECT_EQ(st.tag, 20);
      p2p.recv(1, 0, /*tag=*/10, &v, sizeof(v), &st);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2P, PairwiseOrderingPreserved) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    constexpr int kN = 100;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kN; ++i) p2p.send(0, 1, 5, &i, sizeof(i));
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        p2p.recv(1, 0, 5, &v, sizeof(v));
        ASSERT_EQ(v, i) << "messages reordered";
      }
    }
  });
}

TEST(P2P, WildcardSourceAndTag) {
  fabric::run_ranks(3, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    if (ctx.rank() != 0) {
      const int v = ctx.rank() * 11;
      p2p.send(ctx.rank(), 0, ctx.rank(), &v, sizeof(v));
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        Status st;
        p2p.recv(0, fabric::kAnySource, fabric::kAnyTag, &v, sizeof(v), &st);
        EXPECT_EQ(v, st.source * 11);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 11 + 22);
    }
  });
}

TEST(P2P, IsendIrecvWaitall) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    constexpr int kN = 8;
    std::array<std::uint64_t, kN> sbuf{}, rbuf{};
    for (int i = 0; i < kN; ++i) {
      sbuf[static_cast<std::size_t>(i)] =
          static_cast<std::uint64_t>(ctx.rank() * 100 + i);
    }
    const int peer = 1 - ctx.rank();
    std::vector<fabric::P2PRequest> reqs;
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(p2p.irecv(ctx.rank(), peer, i,
                               &rbuf[static_cast<std::size_t>(i)], 8));
    }
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(p2p.isend(ctx.rank(), peer, i,
                               &sbuf[static_cast<std::size_t>(i)], 8));
    }
    p2p.waitall(reqs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rbuf[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(peer * 100 + i));
    }
  });
}

TEST(P2P, SsendCompletesOnlyWhenMatched) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    if (ctx.rank() == 0) {
      const int v = 5;
      auto req = p2p.issend(0, 1, 0, &v, sizeof(v));
      // Receiver won't post until it sees our flag via the barrier below;
      // the synchronous send must still be incomplete.
      EXPECT_FALSE(p2p.test(req));
      ctx.barrier();
      p2p.wait(req);
    } else {
      ctx.barrier();
      int v = 0;
      p2p.recv(1, 0, 0, &v, sizeof(v));
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(P2P, SendrecvRingExchange) {
  const int p = 5;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    const int right = (ctx.rank() + 1) % p;
    const int left = (ctx.rank() + p - 1) % p;
    const int v = ctx.rank();
    int got = -1;
    p2p.sendrecv(ctx.rank(), right, 0, &v, sizeof(v), left, 0, &got,
                 sizeof(got));
    EXPECT_EQ(got, left);
  });
}

TEST(P2P, IprobeSeesOnlyQueuedMessages) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    if (ctx.rank() == 0) {
      EXPECT_FALSE(p2p.iprobe(0, fabric::kAnySource, fabric::kAnyTag));
      ctx.barrier();  // rank 1 sends
      ctx.barrier();
      Status st;
      while (!p2p.iprobe(0, 1, 9, &st)) ctx.yield_check();
      EXPECT_EQ(st.len, 8u);
      std::uint64_t v = 0;
      p2p.recv(0, 1, 9, &v, sizeof(v));
      EXPECT_EQ(v, 123u);
    } else {
      ctx.barrier();
      const std::uint64_t v = 123;
      p2p.send(1, 0, 9, &v, sizeof(v));
      ctx.barrier();
    }
  });
}

TEST(P2P, TruncationRaises) {
  EXPECT_THROW(fabric::run_ranks(2,
                                 [](RankCtx& ctx) {
                                   if (ctx.rank() == 0) {
                                     std::array<int, 4> big{1, 2, 3, 4};
                                     ctx.send(1, 0, big.data(), sizeof(big));
                                     ctx.barrier();
                                   } else {
                                     ctx.barrier();
                                     int small = 0;
                                     ctx.recv(0, 0, &small, sizeof(small));
                                   }
                                 }),
               Error);
}

TEST(P2P, ManyToOneFanIn) {
  const int p = 8;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    auto& p2p = ctx.fabric().p2p();
    if (ctx.rank() == 0) {
      std::uint64_t sum = 0;
      for (int i = 1; i < p; ++i) {
        std::uint64_t v = 0;
        p2p.recv(0, fabric::kAnySource, 0, &v, sizeof(v));
        sum += v;
      }
      EXPECT_EQ(sum, static_cast<std::uint64_t>((p - 1) * p / 2));
    } else {
      const std::uint64_t v = static_cast<std::uint64_t>(ctx.rank());
      p2p.send(ctx.rank(), 0, 0, &v, sizeof(v));
    }
  });
}

TEST(P2P, WorksUnderInjectionModel) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = rdma::Injection::model;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    std::uint64_t v = 9;
    if (ctx.rank() == 0) {
      ctx.send(1, 0, &v, sizeof(v));
    } else {
      v = 0;
      ctx.recv(0, 0, &v, sizeof(v));
      EXPECT_EQ(v, 9u);
    }
  }, opts);
}

// Active target synchronization: fence epochs and the PSCW matching
// protocol (Fig 2), including epoch-misuse detection.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/timing.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::Win;
using fabric::Group;
using fabric::RankCtx;

TEST(Fence, OrdersPutsAcrossEpochs) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    for (int round = 0; round < 10; ++round) {
      win.fence();
      const std::uint64_t v =
          static_cast<std::uint64_t>(round * 100 + ctx.rank());
      win.put(&v, 8, (ctx.rank() + 1) % 4, 0);
      win.fence();
      const int left = (ctx.rank() + 3) % 4;
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(round * 100 + left));
    }
    win.free();
  });
}

TEST(Fence, WorksUnderDeferredShuffledDelivery) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.delivery = rdma::Delivery::deferred;
  opts.domain.shuffle_deferred = true;
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    win.fence();
    // Several puts to several targets, committed in shuffled order.
    for (int t = 0; t < 3; ++t) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(ctx.rank() * 100 + i);
        win.put(&v, 8, t, 8 * (static_cast<std::size_t>(ctx.rank()) * 4 +
                               static_cast<std::size_t>(i)));
      }
    }
    win.fence();
    for (int r = 0; r < 3; ++r) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(mine[r * 4 + i], static_cast<std::uint64_t>(r * 100 + i));
      }
    }
    win.free();
  }, opts);
}

TEST(Pscw, PairExchange) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    const int peer = 1 - ctx.rank();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    mine[0] = 0;
    ctx.barrier();
    win.post(Group{peer});
    win.start(Group{peer});
    const std::uint64_t v = static_cast<std::uint64_t>(ctx.rank()) + 40;
    win.put(&v, 8, peer, 0);
    win.complete();
    win.wait();
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>(peer) + 40);
    win.free();
  });
}

TEST(Pscw, RingNeighborsMatchPaperScenario) {
  // The Fig 6c benchmark topology: each rank exposes to its two ring
  // neighbors and accesses both.
  const int p = 6;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 8 * static_cast<std::size_t>(p));
    const int left = (ctx.rank() + p - 1) % p;
    const int right = (ctx.rank() + 1) % p;
    auto* mine = static_cast<std::uint64_t*>(win.base());
    for (int round = 0; round < 5; ++round) {
      win.post(Group{left, right});
      win.start(Group{left, right});
      const std::uint64_t v =
          static_cast<std::uint64_t>(round * 1000 + ctx.rank());
      win.put(&v, 8, left, 8 * static_cast<std::size_t>(ctx.rank()));
      win.put(&v, 8, right, 8 * static_cast<std::size_t>(ctx.rank()));
      win.complete();
      win.wait();
      EXPECT_EQ(mine[left], static_cast<std::uint64_t>(round * 1000 + left));
      EXPECT_EQ(mine[right],
                static_cast<std::uint64_t>(round * 1000 + right));
    }
    win.free();
  });
}

TEST(Pscw, TwoDistinctMatchesLikeFig2) {
  // The paper's Fig 2a program: process 0 accesses {1,2} in one epoch and
  // {3} in the next; the posts must match the right starts.
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) {
      win.start(Group{1, 2});
      const std::uint64_t a = 11;
      win.put(&a, 8, 1, 0);
      win.put(&a, 8, 2, 0);
      win.complete();
      win.start(Group{3});
      const std::uint64_t b = 22;
      win.put(&b, 8, 3, 0);
      win.complete();
    } else {
      win.post(Group{0});
      win.wait();
      if (ctx.rank() == 3) {
        EXPECT_EQ(mine[0], 22u);
      } else {
        EXPECT_EQ(mine[0], 11u);
      }
    }
    win.free();
  });
}

TEST(Pscw, StartBlocksUntilPost) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      // Delay the post; rank 1's start must wait for it, so the flag is
      // always set by the time start returns.
      std::atomic_ref<std::uint64_t> flag(
          *static_cast<std::uint64_t*>(win.base()));
      spin_for_ns(5'000'000);
      flag.store(77, std::memory_order_release);
      win.post(Group{1});
      win.wait();
    } else {
      win.start(Group{0});
      std::uint64_t v = 0;
      win.get(&v, 8, 0, 0);
      win.complete();
      EXPECT_EQ(v, 77u);
    }
    win.free();
  });
}

TEST(Pscw, WaitBlocksUntilComplete) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      win.post(Group{1});
      win.wait();  // returns only after rank 1 completed
      auto* mine = static_cast<std::uint64_t*>(win.base());
      EXPECT_EQ(mine[0], 123u);
    } else {
      win.start(Group{0});
      const std::uint64_t v = 123;
      win.put(&v, 8, 0, 0);
      spin_for_ns(2'000'000);  // widen the race window
      win.complete();
    }
    win.free();
  });
}

TEST(Pscw, TestVariantPolls) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      win.post(Group{1});
      int polls = 0;
      while (!win.test()) {
        ++polls;
        ctx.yield_check();
      }
      (void)polls;
    } else {
      win.start(Group{0});
      const std::uint64_t v = 1;
      win.put(&v, 8, 0, 0);
      win.complete();
    }
    win.free();
  });
}

TEST(Pscw, AccessAndExposureEpochsCoexist) {
  // A rank can simultaneously expose to one peer and access another.
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    const int next = (ctx.rank() + 1) % 3;
    const int prev = (ctx.rank() + 2) % 3;
    win.post(Group{prev});   // prev will write to me
    win.start(Group{next});  // I write to next
    const std::uint64_t v = static_cast<std::uint64_t>(ctx.rank()) * 7 + 1;
    win.put(&v, 8, next, 0);
    win.complete();
    win.wait();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>(prev) * 7 + 1);
    win.free();
  });
}

TEST(Pscw, MisuseDetected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    EXPECT_THROW(win.complete(), Error);  // no start
    EXPECT_THROW(win.wait(), Error);      // no post
    EXPECT_THROW(win.test(), Error);
    if (ctx.rank() == 0) {
      win.post(Group{1});
      EXPECT_THROW(win.post(Group{1}), Error);  // nested exposure epoch
    } else {
      win.start(Group{0});
      const std::uint64_t v = 9;
      win.put(&v, 8, 0, 0);
      EXPECT_THROW(win.start(Group{0}), Error);  // nested access epoch
      win.complete();
    }
    if (ctx.rank() == 0) win.wait();
    win.free();
  });
}

TEST(Pscw, RepeatedPostsFromSameTargetQueue) {
  // Two exposure epochs posted back-to-back must match two successive
  // starts in order.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) {
      win.post(Group{1});
      win.wait();
      const std::uint64_t first = mine[0];
      win.post(Group{1});
      win.wait();
      EXPECT_EQ(first, 1u);
      EXPECT_EQ(mine[0], 2u);
    } else {
      for (std::uint64_t round = 1; round <= 2; ++round) {
        win.start(Group{0});
        win.put(&round, 8, 0, 0);
        win.complete();
      }
    }
    win.free();
  });
}

TEST(Pscw, WorksUnderDeferredDelivery) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.delivery = rdma::Delivery::deferred;
  opts.domain.shuffle_deferred = true;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    const int peer = 1 - ctx.rank();
    win.post(Group{peer});
    win.start(Group{peer});
    std::array<std::uint64_t, 4> v;
    v.fill(static_cast<std::uint64_t>(ctx.rank()) + 5);
    win.put(v.data(), 32, peer, 0);
    win.complete();
    win.wait();
    auto* mine = static_cast<std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0], static_cast<std::uint64_t>(peer) + 5);
    EXPECT_EQ(mine[3], static_cast<std::uint64_t>(peer) + 5);
    win.free();
  }, opts);
}

// MCS queue lock extension: mutual exclusion, queue handoff, bounded
// remote traffic per acquisition.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/timing.hpp"
#include "core/mcs_lock.hpp"

using namespace fompi;
using core::McsLock;
using core::Win;
using fabric::RankCtx;

TEST(Mcs, MutualExclusionCounter) {
  const int p = 4;
  const int kIters = 25;
  std::atomic<int> inside{0};
  std::atomic<std::uint64_t> counter{0};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    McsLock lock(win, /*master=*/0, /*disp=*/0);
    for (int i = 0; i < kIters; ++i) {
      lock.acquire();
      EXPECT_EQ(inside.fetch_add(1), 0) << "two ranks inside the CS";
      const std::uint64_t v = counter.load(std::memory_order_relaxed);
      std::this_thread::yield();
      counter.store(v + 1, std::memory_order_relaxed);
      inside.fetch_sub(1);
      lock.release();
    }
    win.unlock_all();
    win.free();
  });
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(p * kIters));
}

TEST(Mcs, UncontendedAcquireIsCheap) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    if (ctx.rank() == 0) {
      McsLock lock(win, 0);
      lock.acquire();
      EXPECT_EQ(lock.last_acquire_remote_ops(), 1);  // just the tail swap
      lock.release();
    }
    ctx.barrier();
    win.unlock_all();
    win.free();
  });
}

TEST(Mcs, ContendedAcquireBoundedRemoteOps) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    McsLock lock(win, 0);
    for (int i = 0; i < 10; ++i) {
      lock.acquire();
      // MCS guarantee: at most 2 remote ops per acquire, no matter the
      // contention (versus unbounded retries for the two-level lock).
      EXPECT_LE(lock.last_acquire_remote_ops(), 2);
      lock.release();
    }
    win.unlock_all();
    win.free();
  });
}

TEST(Mcs, HandoffOrderIsFifo) {
  // Ranks enqueue in a controlled order; the lock must be granted in the
  // same order.
  const int p = 3;
  std::atomic<int> next_expected{1};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    McsLock lock(win, 0);
    if (ctx.rank() == 0) {
      lock.acquire();          // hold while the others queue up
      ctx.barrier();           // rank 1 then rank 2 enqueue (ordered below)
      spin_for_ns(10'000'000); // let both enter the queue
      lock.release();
      ctx.barrier();
    } else {
      ctx.barrier();
      if (ctx.rank() == 2) spin_for_ns(5'000'000);  // rank 1 queues first
      lock.acquire();
      EXPECT_EQ(next_expected.fetch_add(1), ctx.rank());
      lock.release();
      ctx.barrier();
    }
    win.unlock_all();
    win.free();
  });
}

// MILC-like lattice solver: operator correctness against a serial
// reference, backend equivalence, CG convergence, grid factorization.
#include <gtest/gtest.h>

#include <mutex>

#include "apps/milc.hpp"
#include "common/rng.hpp"

using namespace fompi;
using apps::MilcBackend;
using apps::MilcConfig;
using apps::MilcSolver;
using fabric::RankCtx;

namespace {

std::vector<double> random_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform() - 0.5;
  return v;
}

}  // namespace

TEST(MilcGrid, DefaultGridFactorsCorrectly) {
  for (int p : {1, 2, 4, 8, 16, 32, 64, 6}) {
    const auto g = apps::milc_default_grid(p);
    EXPECT_EQ(g[0] * g[1] * g[2] * g[3], p) << "p=" << p;
  }
  const auto g8 = apps::milc_default_grid(8);
  EXPECT_EQ(g8, (std::array<int, 4>{1, 2, 2, 2}));
}

class MilcBackends : public ::testing::TestWithParam<MilcBackend> {};

TEST_P(MilcBackends, OperatorMatchesSerialReference) {
  // Apply the operator on 4 ranks and on 1 rank over the same global
  // lattice; fields must match.
  MilcConfig serial_cfg;
  serial_cfg.local = {4, 4, 2, 4};
  serial_cfg.grid = {1, 1, 1, 1};
  serial_cfg.backend = GetParam();
  const std::size_t global_sites = 4 * 4 * 2 * 4;
  const auto global_in = random_field(global_sites, 3);
  std::vector<double> serial_out;
  fabric::run_ranks(1, [&](RankCtx& ctx) {
    MilcSolver solver(ctx, serial_cfg);
    solver.apply_operator(ctx, global_in, serial_out);
    solver.destroy(ctx);
  });

  // Parallel: split t (last dim) over 4 ranks: local t extent 1.
  MilcConfig par_cfg;
  par_cfg.local = {4, 4, 2, 1};
  par_cfg.grid = {1, 1, 1, 4};
  par_cfg.backend = GetParam();
  std::vector<double> par_out(global_sites);
  std::mutex mu;
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    MilcSolver solver(ctx, par_cfg);
    // Site order is (x, y, z, t) nested loops; serial t range [1..4],
    // rank r owns global t index r.
    std::vector<double> in(solver.local_sites());
    std::size_t n = 0;
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        for (int z = 0; z < 2; ++z) {
          in[n++] = global_in[static_cast<std::size_t>(
              ((x * 4 + y) * 2 + z) * 4 + ctx.rank())];
        }
      }
    }
    std::vector<double> out;
    solver.apply_operator(ctx, in, out);
    {
      std::scoped_lock lock(mu);
      n = 0;
      for (int x = 0; x < 4; ++x) {
        for (int y = 0; y < 4; ++y) {
          for (int z = 0; z < 2; ++z) {
            par_out[static_cast<std::size_t>(((x * 4 + y) * 2 + z) * 4 +
                                             ctx.rank())] = out[n++];
          }
        }
      }
    }
    solver.destroy(ctx);
  });
  for (std::size_t i = 0; i < global_sites; ++i) {
    EXPECT_NEAR(par_out[i], serial_out[i], 1e-12) << "site " << i;
  }
}

TEST_P(MilcBackends, CgSolvesTheSystem) {
  MilcConfig cfg;
  cfg.local = {2, 2, 2, 4};
  cfg.grid = apps::milc_default_grid(2);
  cfg.backend = GetParam();
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    MilcSolver solver(ctx, cfg);
    const auto b = random_field(solver.local_sites(),
                                static_cast<std::uint64_t>(ctx.rank()) + 7);
    std::vector<double> x;
    std::vector<double> history;
    const int iters = solver.solve_cg(ctx, b, x, 1e-10, 200, &history);
    EXPECT_GT(iters, 0);
    EXPECT_LT(iters, 200) << "CG failed to converge";
    // Residual history decreases overall.
    ASSERT_FALSE(history.empty());
    EXPECT_LT(history.back(), 1e-9);
    // Verify: A x == b.
    std::vector<double> ax;
    solver.apply_operator(ctx, x, ax);
    double err = 0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      err = std::max(err, std::abs(ax[i] - b[i]));
    }
    EXPECT_LT(err, 1e-8);
    solver.destroy(ctx);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, MilcBackends,
                         ::testing::Values(MilcBackend::p2p,
                                           MilcBackend::rma,
                                           MilcBackend::rma_notified));

TEST(Milc, BackendsProduceIdenticalIterates) {
  std::array<std::vector<double>, 2> solutions;
  std::array<int, 2> iters{};
  int idx = 0;
  std::mutex mu;
  for (MilcBackend b : {MilcBackend::p2p, MilcBackend::rma}) {
    MilcConfig cfg;
    cfg.local = {2, 2, 4, 2};
    cfg.grid = {1, 1, 2, 2};
    cfg.backend = b;
    fabric::run_ranks(4, [&](RankCtx& ctx) {
      MilcSolver solver(ctx, cfg);
      const auto rhs = random_field(
          solver.local_sites(), static_cast<std::uint64_t>(ctx.rank()) + 99);
      std::vector<double> x;
      const int it = solver.solve_cg(ctx, rhs, x, 1e-9, 150);
      {
        std::scoped_lock lock(mu);
        if (ctx.rank() == 0) {
          solutions[static_cast<std::size_t>(idx)] = x;
          iters[static_cast<std::size_t>(idx)] = it;
        }
      }
      solver.destroy(ctx);
    });
    ++idx;
  }
  EXPECT_EQ(iters[0], iters[1]);
  ASSERT_EQ(solutions[0].size(), solutions[1].size());
  for (std::size_t i = 0; i < solutions[0].size(); ++i) {
    EXPECT_NEAR(solutions[0][i], solutions[1][i], 1e-10);
  }
}

TEST(Milc, FourDimensionalDecomposition) {
  // Full 4D process grid 2x2x2x2 = 16 ranks: halos in all 8 directions.
  MilcConfig cfg;
  cfg.local = {2, 2, 2, 2};
  cfg.grid = {2, 2, 2, 2};
  fabric::run_ranks(16, [&](RankCtx& ctx) {
    MilcSolver solver(ctx, cfg);
    std::vector<double> in(solver.local_sites(), 1.0);
    std::vector<double> out;
    solver.apply_operator(ctx, in, out);
    // For a constant field, L f = 0: A f = f.
    for (const double v : out) EXPECT_NEAR(v, 1.0, 1e-13);
    solver.destroy(ctx);
  });
}

TEST(Milc, MisconfiguredGridRejected) {
  EXPECT_THROW(fabric::run_ranks(3,
                                 [](RankCtx& ctx) {
                                   MilcConfig cfg;
                                   cfg.grid = {1, 1, 1, 2};
                                   MilcSolver solver(ctx, cfg);
                                   solver.destroy(ctx);
                                 }),
               Error);
}

TEST(Milc, NeighborTopologyIsPeriodic) {
  MilcConfig cfg;
  cfg.local = {2, 2, 2, 2};
  cfg.grid = {1, 1, 2, 2};
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    MilcSolver solver(ctx, cfg);
    // grid (z,t) 2x2: rank = cz*2 + ct.
    for (int d : {0, 1}) {
      EXPECT_EQ(solver.neighbor(d, +1), ctx.rank()) << "self in unit dims";
    }
    const int ct = ctx.rank() % 2;
    const int cz = ctx.rank() / 2;
    EXPECT_EQ(solver.neighbor(3, +1), cz * 2 + (ct + 1) % 2);
    EXPECT_EQ(solver.neighbor(2, +1), ((cz + 1) % 2) * 2 + ct);
    EXPECT_EQ(solver.neighbor(2, -1), solver.neighbor(2, +1))
        << "wraparound in a 2-wide dim";
    solver.destroy(ctx);
  });
}

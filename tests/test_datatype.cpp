// Datatype engine: layout math, flattening minimality, pack/unpack
// round-trips, block pairing.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <thread>

#include "common/instr.hpp"
#include "common/rng.hpp"
#include "datatype/datatype.hpp"

using namespace fompi;
using dt::Block;
using dt::Datatype;

TEST(Datatype, BasicProperties) {
  const Datatype d = Datatype::f64();
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.extent(), 8u);
  EXPECT_TRUE(d.is_contiguous());
  EXPECT_EQ(d.lb(), 0);
}

TEST(Datatype, EmptyDatatypeRejected) {
  Datatype d;
  EXPECT_FALSE(d.valid());
  EXPECT_THROW(d.size(), Error);
  EXPECT_THROW(Datatype::basic(0), Error);
}

TEST(Datatype, ContiguousCollapsesToOneBlock) {
  const Datatype d = Datatype::contiguous(10, Datatype::i32());
  EXPECT_EQ(d.size(), 40u);
  EXPECT_EQ(d.extent(), 40u);
  EXPECT_TRUE(d.is_contiguous());
  std::vector<Block> blocks;
  d.flatten(16, 3, blocks);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (Block{16, 120}));
}

TEST(Datatype, VectorLayout) {
  // 3 blocks of 2 ints, stride 4 ints: |xx..|xx..|xx|
  const Datatype d = Datatype::vector(3, 2, 4, Datatype::i32());
  EXPECT_EQ(d.size(), 24u);
  EXPECT_EQ(d.extent(), 40u);  // 2*4*4 + 2*4
  EXPECT_FALSE(d.is_contiguous());
  std::vector<Block> blocks;
  d.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (Block{0, 8}));
  EXPECT_EQ(blocks[1], (Block{16, 8}));
  EXPECT_EQ(blocks[2], (Block{32, 8}));
}

TEST(Datatype, VectorWithUnitStrideIsContiguous) {
  const Datatype d = Datatype::vector(4, 1, 1, Datatype::f64());
  EXPECT_TRUE(d.is_contiguous());
  std::vector<Block> blocks;
  d.flatten(0, 2, blocks);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].len, 64u);
}

TEST(Datatype, AdjacentBlocksMerge) {
  // Indexed blocks that happen to be adjacent must merge into one.
  const Datatype d =
      Datatype::indexed({2, 2}, {0, 2}, Datatype::i64());
  std::vector<Block> blocks;
  d.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (Block{0, 32}));
  EXPECT_TRUE(d.is_contiguous());
}

TEST(Datatype, IndexedLayout) {
  const Datatype d = Datatype::indexed({1, 3}, {5, 0}, Datatype::i32());
  EXPECT_EQ(d.size(), 16u);
  std::vector<Block> blocks;
  d.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 2u);
  // Flatten order follows declaration order (displ 20 then displ 0).
  EXPECT_EQ(blocks[0], (Block{20, 4}));
  EXPECT_EQ(blocks[1], (Block{0, 12}));
}

TEST(Datatype, StructHeterogeneous) {
  // struct { char c; double d; int i[2]; } with explicit displacements.
  const Datatype d = Datatype::struct_type(
      {1, 1, 2}, {0, 8, 16}, {Datatype::u8(), Datatype::f64(),
                              Datatype::i32()});
  EXPECT_EQ(d.size(), 1u + 8u + 8u);
  EXPECT_EQ(d.extent(), 24u);
  std::vector<Block> blocks;
  d.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 2u);  // char alone, then double+ints merge
  EXPECT_EQ(blocks[0], (Block{0, 1}));
  EXPECT_EQ(blocks[1], (Block{8, 16}));
}

TEST(Datatype, ResizedChangesExtentOnly) {
  const Datatype base = Datatype::contiguous(2, Datatype::i32());
  const Datatype d = Datatype::resized(base, 0, 32);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.extent(), 32u);
  EXPECT_FALSE(d.is_contiguous());
  std::vector<Block> blocks;
  d.flatten(0, 2, blocks);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (Block{0, 8}));
  EXPECT_EQ(blocks[1], (Block{32, 8}));
}

TEST(Datatype, NestedVectorOfVector) {
  // A 2D sub-array: 2 rows of (2 blocks of 1 double, stride 2) = corners of
  // a 2x4 tile inside a 4x4 matrix of doubles.
  const Datatype row = Datatype::vector(2, 1, 2, Datatype::f64());
  const Datatype tile = Datatype::hvector(2, 1, 4 * 8, row);
  EXPECT_EQ(tile.size(), 4 * 8u);
  std::vector<Block> blocks;
  tile.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0], (Block{0, 8}));
  EXPECT_EQ(blocks[1], (Block{16, 8}));
  EXPECT_EQ(blocks[2], (Block{32, 8}));
  EXPECT_EQ(blocks[3], (Block{48, 8}));
}

TEST(Datatype, PackUnpackVectorRoundtrip) {
  const Datatype d = Datatype::vector(4, 2, 3, Datatype::i32());
  std::vector<std::int32_t> src(48);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::int32_t> packed(d.size() / 4 * 2);
  const std::size_t n = d.pack(src.data(), 2, packed.data());
  EXPECT_EQ(n, d.size() * 2);
  std::vector<std::int32_t> dst(48, -1);
  d.unpack(packed.data(), 2, dst.data());
  // Every position covered by the type must round-trip; gaps stay -1.
  std::vector<Block> blocks;
  d.flatten(0, 2, blocks);
  std::vector<bool> covered(48 * 4, false);
  for (const auto& b : blocks) {
    for (std::size_t i = 0; i < b.len; ++i) covered[b.offset + i] = true;
  }
  for (std::size_t i = 0; i < 48; ++i) {
    if (covered[i * 4]) {
      EXPECT_EQ(dst[i], src[i]) << "element " << i;
    } else {
      EXPECT_EQ(dst[i], -1) << "gap clobbered at " << i;
    }
  }
}

TEST(Datatype, Subarray2dBlock) {
  // 2x3 block at (1,1) of a 4x5 int array, row-major.
  const Datatype d =
      Datatype::subarray({4, 5}, {2, 3}, {1, 1}, Datatype::i32());
  EXPECT_EQ(d.size(), 2u * 3 * 4);
  EXPECT_EQ(d.extent(), 4u * 5 * 4);  // full array span
  std::vector<Block> blocks;
  d.flatten(0, 1, blocks);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (Block{(1 * 5 + 1) * 4, 12}));
  EXPECT_EQ(blocks[1], (Block{(2 * 5 + 1) * 4, 12}));
}

TEST(Datatype, SubarrayFullArrayIsContiguous) {
  const Datatype d =
      Datatype::subarray({3, 4}, {3, 4}, {0, 0}, Datatype::f64());
  EXPECT_TRUE(d.is_contiguous());
  EXPECT_EQ(d.size(), 3u * 4 * 8);
}

TEST(Datatype, Subarray3dPackRoundtrip) {
  // Interior 2x2x2 of a 4x4x4 array: the halo-exchange pattern.
  const Datatype d =
      Datatype::subarray({4, 4, 4}, {2, 2, 2}, {1, 1, 1}, Datatype::i32());
  EXPECT_EQ(d.size(), 8u * 4);
  std::vector<std::int32_t> src(64);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::int32_t> packed(8);
  d.pack(src.data(), 1, packed.data());
  // Element (x,y,z) of the interior = src[(x+1)*16 + (y+1)*4 + (z+1)].
  int i = 0;
  for (int x = 1; x <= 2; ++x) {
    for (int y = 1; y <= 2; ++y) {
      for (int z = 1; z <= 2; ++z) {
        EXPECT_EQ(packed[static_cast<std::size_t>(i++)],
                  x * 16 + y * 4 + z);
      }
    }
  }
}

TEST(Datatype, SubarrayCountWalksConsecutiveArrays) {
  const Datatype d =
      Datatype::subarray({2, 2}, {1, 1}, {0, 0}, Datatype::i64());
  std::vector<Block> blocks;
  d.flatten(0, 2, blocks);  // two consecutive 2x2 arrays
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (Block{0, 8}));
  EXPECT_EQ(blocks[1], (Block{32, 8}));  // next array starts 4 elems later
}

TEST(Datatype, SubarrayValidation) {
  EXPECT_THROW(
      Datatype::subarray({4}, {2, 2}, {0}, Datatype::i32()), Error);
  EXPECT_THROW(
      Datatype::subarray({4, 4}, {3, 2}, {2, 0}, Datatype::i32()), Error);
  EXPECT_THROW(
      Datatype::subarray({4}, {0}, {0}, Datatype::i32()), Error);
  EXPECT_THROW(
      Datatype::subarray({4}, {2}, {-1}, Datatype::i32()), Error);
}

TEST(Datatype, PairBlocksSplitsFragments) {
  const std::vector<Block> origin{{0, 10}, {20, 6}};
  const std::vector<Block> target{{100, 4}, {200, 12}};
  std::vector<std::array<std::size_t, 3>> frags;
  dt::pair_blocks(origin, target, [&](std::size_t o, std::size_t t,
                                      std::size_t l) {
    frags.push_back({o, t, l});
  });
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0], (std::array<std::size_t, 3>{0, 100, 4}));
  EXPECT_EQ(frags[1], (std::array<std::size_t, 3>{4, 200, 6}));
  EXPECT_EQ(frags[2], (std::array<std::size_t, 3>{20, 206, 6}));
}

TEST(Datatype, PairBlocksRejectsSizeMismatch) {
  const std::vector<Block> origin{{0, 8}};
  const std::vector<Block> target{{0, 12}};
  EXPECT_THROW(dt::pair_blocks(origin, target,
                               [](std::size_t, std::size_t, std::size_t) {}),
               Error);
}

TEST(Datatype, ZeroCountFlattensToNothing) {
  const Datatype d = Datatype::vector(3, 2, 4, Datatype::i32());
  std::vector<Block> blocks;
  d.flatten(0, 0, blocks);
  EXPECT_TRUE(blocks.empty());
  const Datatype empty = Datatype::contiguous(0, Datatype::i32());
  EXPECT_EQ(empty.size(), 0u);
}

// --- flatten cache ----------------------------------------------------------

TEST(Datatype, FlattenCacheBuildsOnceAndServesEveryLowering) {
  const fompi::OpCounters before_build = fompi::op_counters();
  const Datatype d = Datatype::vector(3, 2, 4, Datatype::i32());
  const fompi::OpCounters built = fompi::op_counters().since(before_build);
  EXPECT_GE(built.get(fompi::Op::flatten_cache_build), 1u);

  // Every lowering after construction is a cache hit; the tree is never
  // walked again.
  const fompi::OpCounters before = fompi::op_counters();
  std::vector<Block> blocks;
  d.flatten(0, 4, blocks);
  std::vector<std::byte> src(d.extent() * 4), packed(d.size() * 4);
  d.pack(src.data(), 4, packed.data());
  d.unpack(packed.data(), 4, src.data());
  const fompi::OpCounters delta = fompi::op_counters().since(before);
  EXPECT_EQ(delta.get(fompi::Op::flatten_cache_hit), 3u);
  EXPECT_EQ(delta.get(fompi::Op::flatten_cache_build), 0u);
}

TEST(Datatype, BlockCountAndSpanEnd) {
  const Datatype v = Datatype::vector(3, 2, 4, Datatype::i32());
  EXPECT_EQ(v.block_count(), 3u);
  EXPECT_EQ(v.span_end(), 40u);  // last block at 32, 8 bytes long
  const Datatype c = Datatype::contiguous(4, Datatype::f64());
  EXPECT_EQ(c.block_count(), 1u);
  EXPECT_EQ(c.span_end(), 32u);
  // The documented span formula bounds every byte of a multi-element
  // flatten.
  std::vector<Block> blocks;
  v.flatten(0, 3, blocks);
  std::size_t hi = 0;
  for (const auto& b : blocks) hi = std::max(hi, b.offset + b.len);
  EXPECT_EQ(hi, 2 * v.extent() + v.span_end());
}

TEST(Datatype, ConcurrentSharedTypeLowering) {
  // The cached block list is computed at construction on an immutable node,
  // so one Datatype value can serve many threads with no locking. Run under
  // -DFOMPI_SANITIZE=thread to prove it.
  const Datatype d = Datatype::vector(8, 3, 5, Datatype::i32());
  std::vector<std::int32_t> src(8 * 5 * 2);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::byte> reference(d.size() * 2);
  d.pack(src.data(), 2, reference.data());
  std::vector<Block> ref_blocks;
  d.flatten(16, 2, ref_blocks);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        std::vector<Block> blocks;
        d.flatten(16, 2, blocks);
        ASSERT_EQ(blocks, ref_blocks);
        std::vector<std::byte> packed(d.size() * 2);
        d.pack(src.data(), 2, packed.data());
        ASSERT_EQ(std::memcmp(packed.data(), reference.data(), packed.size()),
                  0);
      }
    });
  }
  for (auto& w : workers) w.join();
}

// --- pair_layouts -----------------------------------------------------------

namespace {

using FragList = std::vector<std::array<std::size_t, 3>>;

FragList frags_via_pair_blocks(const Datatype& o, int ocount,
                               const Datatype& t, int tcount,
                               std::size_t tdisp) {
  std::vector<Block> ob, tb;
  o.flatten(0, ocount, ob);
  t.flatten(tdisp, tcount, tb);
  FragList out;
  dt::pair_blocks(ob, tb, [&](std::size_t oo, std::size_t to, std::size_t l) {
    out.push_back({oo, to, l});
  });
  return out;
}

FragList frags_via_pair_layouts(const Datatype& o, int ocount,
                                const Datatype& t, int tcount,
                                std::size_t tdisp) {
  FragList out;
  dt::pair_layouts(o, ocount, t, tcount, tdisp,
                   [&](std::size_t oo, std::size_t to, std::size_t l) {
                     out.push_back({oo, to, l});
                   });
  return out;
}

}  // namespace

TEST(Datatype, PairLayoutsMatchesFlattenPairBlocks) {
  // Hand-picked edge cases: nonzero lower bound, trailing gap, struct
  // heterogeneity, subarray, zero count, nonzero target displacement.
  const Datatype strided = Datatype::vector(4, 1, 2, Datatype::i64());
  const Datatype contig = Datatype::contiguous(4, Datatype::i64());
  const Datatype resized =
      Datatype::resized(Datatype::contiguous(2, Datatype::i32()), 0, 32);
  const Datatype shifted =
      Datatype::resized(Datatype::indexed({2}, {1}, Datatype::i32()), 4, 24);
  const Datatype strct = Datatype::struct_type(
      {1, 1, 2}, {0, 8, 16},
      {Datatype::u8(), Datatype::f64(), Datatype::i32()});
  const Datatype sub =
      Datatype::subarray({4, 5}, {2, 3}, {1, 1}, Datatype::i32());
  const Datatype sub_pay = Datatype::contiguous(6, Datatype::i32());
  const Datatype strct_pay = Datatype::contiguous(17, Datatype::u8());
  const Datatype pay16 = Datatype::contiguous(2, Datatype::i64());

  const struct {
    const Datatype* o;
    int oc;
    const Datatype* t;
    int tc;
    std::size_t tdisp;
  } cases[] = {
      {&strided, 1, &contig, 1, 0},    {&contig, 1, &strided, 1, 64},
      {&strided, 3, &strided, 3, 8},   {&resized, 2, &pay16, 1, 0},
      {&shifted, 2, &resized, 2, 16},  {&strct, 2, &strct_pay, 2, 0},
      {&sub, 1, &sub_pay, 1, 32},      {&sub_pay, 1, &sub, 1, 0},
      {&strided, 0, &contig, 0, 0},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(frags_via_pair_layouts(*c.o, c.oc, *c.t, c.tc, c.tdisp),
              frags_via_pair_blocks(*c.o, c.oc, *c.t, c.tc, c.tdisp))
        << c.o->describe() << " -> " << c.t->describe();
  }
}

TEST(Datatype, PairLayoutsRejectsPayloadMismatch) {
  EXPECT_THROW(dt::pair_layouts(Datatype::i64(), 2, Datatype::i64(), 3, 0,
                                [](std::size_t, std::size_t, std::size_t) {}),
               Error);
}

// Property test: pack -> unpack into a fresh buffer reproduces exactly the
// covered bytes, for randomly generated nested datatypes.
class DatatypeProperty : public ::testing::TestWithParam<int> {};

namespace {

Datatype random_type(Rng& rng, int depth) {
  if (depth == 0) {
    switch (rng.below(3)) {
      case 0: return Datatype::u8();
      case 1: return Datatype::i32();
      default: return Datatype::f64();
    }
  }
  const Datatype child = random_type(rng, depth - 1);
  switch (rng.below(3)) {
    case 0:
      return Datatype::contiguous(1 + static_cast<int>(rng.below(4)), child);
    case 1:
      return Datatype::vector(1 + static_cast<int>(rng.below(3)),
                              1 + static_cast<int>(rng.below(3)),
                              2 + static_cast<int>(rng.below(4)), child);
    default: {
      const int b1 = 1 + static_cast<int>(rng.below(2));
      const int b2 = 1 + static_cast<int>(rng.below(2));
      const int gap = b1 + 1 + static_cast<int>(rng.below(3));
      return Datatype::indexed({b1, b2}, {0, gap}, child);
    }
  }
}

}  // namespace

TEST_P(DatatypeProperty, PackUnpackRoundtrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const Datatype d = random_type(rng, 1 + static_cast<int>(rng.below(3)));
  const int count = 1 + static_cast<int>(rng.below(4));
  std::vector<Block> blocks;
  d.flatten(0, count, blocks);
  std::size_t span = 0;
  std::size_t payload = 0;
  for (const auto& b : blocks) {
    span = std::max(span, b.offset + b.len);
    payload += b.len;
  }
  EXPECT_EQ(payload, d.size() * static_cast<std::size_t>(count));
  // Blocks are minimal: no two adjacent blocks touch.
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_NE(blocks[i - 1].offset + blocks[i - 1].len, blocks[i].offset);
  }

  std::vector<std::uint8_t> src(span + 8);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());
  std::vector<std::uint8_t> packed(payload);
  EXPECT_EQ(d.pack(src.data(), count, packed.data()), payload);
  std::vector<std::uint8_t> dst(span + 8, 0xEE);
  d.unpack(packed.data(), count, dst.data());
  std::vector<bool> covered(span + 8, false);
  for (const auto& b : blocks) {
    for (std::size_t i = 0; i < b.len; ++i) covered[b.offset + i] = true;
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (covered[i]) {
      ASSERT_EQ(dst[i], src[i]) << "byte " << i;
    } else {
      ASSERT_EQ(dst[i], 0xEE) << "gap clobbered at byte " << i;
    }
  }
}

TEST_P(DatatypeProperty, PairLayoutsParity) {
  // pair_layouts() must yield exactly the fragments of the materialized
  // flatten + pair_blocks path, for random nested types against a
  // byte-contiguous peer of equal payload and a copy of themselves.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const Datatype d = random_type(rng, 1 + static_cast<int>(rng.below(3)));
  const int count = 1 + static_cast<int>(rng.below(4));
  const std::size_t payload = d.size() * static_cast<std::size_t>(count);
  if (payload == 0) return;
  const Datatype flat =
      Datatype::contiguous(static_cast<int>(payload), Datatype::u8());
  const std::size_t tdisp = rng.below(4) * 8;
  EXPECT_EQ(frags_via_pair_layouts(d, count, flat, 1, tdisp),
            frags_via_pair_blocks(d, count, flat, 1, tdisp));
  EXPECT_EQ(frags_via_pair_layouts(flat, 1, d, count, tdisp),
            frags_via_pair_blocks(flat, 1, d, count, tdisp));
  EXPECT_EQ(frags_via_pair_layouts(d, count, d, count, tdisp),
            frags_via_pair_blocks(d, count, d, count, tdisp));
}

INSTANTIATE_TEST_SUITE_P(RandomTypes, DatatypeProperty,
                         ::testing::Range(0, 25));

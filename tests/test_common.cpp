// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/backoff.hpp"
#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/instr.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

using namespace fompi;

TEST(Error, CarriesClassAndMessage) {
  try {
    raise(ErrClass::rma_range, "out of bounds");
    FAIL() << "raise did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::rma_range);
    EXPECT_NE(std::string(e.what()).find("out of bounds"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FOMPI_ERR_RMA_RANGE"),
              std::string::npos);
  }
}

TEST(Error, RequireMacroPassesAndFails) {
  EXPECT_NO_THROW(FOMPI_REQUIRE(1 + 1 == 2, ErrClass::arg, "fine"));
  EXPECT_THROW(FOMPI_REQUIRE(false, ErrClass::arg, "bad"), Error);
}

TEST(Error, AllClassesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrClass::no_mem); ++i) {
    EXPECT_NE(std::string(to_string(static_cast<ErrClass>(i))),
              "FOMPI_ERR_UNKNOWN");
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Rng r(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Timing, SpinForApproximatelyRightDuration) {
  Timer t;
  spin_for_ns(2'000'000);  // 2 ms
  EXPECT_GE(t.elapsed_ns(), 2'000'000u);
}

TEST(Timing, SummarizeStats) {
  std::vector<double> v{5, 1, 3, 2, 4};
  const Stats s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  std::vector<double> even{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(summarize(even).median, 2.5);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(summarize(empty).mean, 0);
}

TEST(Instr, CountersAccumulateAndDiff) {
  op_counters().reset();
  count(Op::transport_put);
  count(Op::transport_put);
  count(Op::bytes_copied, 64);
  const OpCounters snap = op_counters();
  count(Op::transport_get);
  const OpCounters d = op_counters().since(snap);
  EXPECT_EQ(d.get(Op::transport_get), 1u);
  EXPECT_EQ(d.get(Op::transport_put), 0u);
  EXPECT_EQ(op_counters().get(Op::transport_put), 2u);
  EXPECT_EQ(op_counters().get(Op::bytes_copied), 64u);
}

TEST(Instr, TotalOpsExcludesBytes) {
  op_counters().reset();
  count(Op::local_atomic, 3);
  count(Op::bytes_copied, 4096);
  EXPECT_EQ(op_counters().total_ops(), 3u);
}

TEST(Instr, CountersAreThreadLocal) {
  op_counters().reset();
  count(Op::retry, 5);
  std::thread t([] {
    op_counters().reset();
    count(Op::retry, 1);
    EXPECT_EQ(op_counters().get(Op::retry), 1u);
  });
  t.join();
  EXPECT_EQ(op_counters().get(Op::retry), 5u);
}

TEST(Buffer, AlignedAndZeroed) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLine, 0u);
  EXPECT_EQ(buf.size(), 100u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(std::to_integer<int>(buf.data()[i]), 0);
  }
}

TEST(Buffer, EmptyBufferIsSafe) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(Backoff, GrowsAndResets) {
  Backoff b(16);
  op_counters().reset();
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_EQ(op_counters().get(Op::retry), 10u);
  b.reset();
  b.pause();
  EXPECT_EQ(op_counters().get(Op::retry), 11u);
}

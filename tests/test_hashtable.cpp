// Distributed hashtable: all three backends agree, chains survive
// collisions, concurrency keeps counts exact.
#include <gtest/gtest.h>

#include <set>

#include "apps/hashtable.hpp"
#include "common/rng.hpp"

using namespace fompi;
using apps::DistHashtable;
using apps::HtBackend;
using fabric::RankCtx;

class HtBackends : public ::testing::TestWithParam<HtBackend> {};

TEST_P(HtBackends, BatchInsertCountsExactly) {
  const int p = 4;
  const int per_rank = 64;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    DistHashtable ht(ctx, GetParam(), 128, 512);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < per_rank; ++i) {
      keys.push_back(
          static_cast<std::uint64_t>(ctx.rank()) * 100000 + i + 1);
    }
    ht.batch_insert(ctx, keys);
    EXPECT_EQ(ht.global_count(ctx), static_cast<std::uint64_t>(p * per_rank));
    ht.destroy(ctx);
  });
}

TEST_P(HtBackends, DuplicatesNotDoubleCounted) {
  fabric::run_ranks(2, [&](RankCtx& ctx) {
    DistHashtable ht(ctx, GetParam(), 64, 128);
    // Both ranks insert the same keys.
    std::vector<std::uint64_t> keys{11, 22, 33};
    ht.batch_insert(ctx, keys);
    // Each key stored at most twice (one table slot + possibly one
    // duplicate in a chain is avoided by the CAS-on-same-key check).
    EXPECT_LE(ht.global_count(ctx), 6u);
    EXPECT_GE(ht.global_count(ctx), 3u);
    ht.destroy(ctx);
  });
}

TEST_P(HtBackends, CollisionsSpillToOverflowChain) {
  // A single-slot table forces every insert through the overflow path.
  const int p = 3;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    DistHashtable ht(ctx, GetParam(), 1, 256);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 20; ++i) {
      keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1);
    }
    ht.batch_insert(ctx, keys);
    EXPECT_EQ(ht.global_count(ctx), static_cast<std::uint64_t>(20 * p));
    ht.destroy(ctx);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, HtBackends,
                         ::testing::Values(HtBackend::rma, HtBackend::pgas,
                                           HtBackend::p2p,
                                           HtBackend::rma_fiber));

TEST(Hashtable, ContainsFindsAllInsertedKeys) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    DistHashtable ht(ctx, HtBackend::rma, 32, 512);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 50; ++i) {
      keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 777 + i + 1);
    }
    ht.batch_insert(ctx, keys);
    for (const auto k : keys) {
      EXPECT_TRUE(ht.contains(k)) << "missing key " << k;
    }
    EXPECT_FALSE(ht.contains(0xdead0001));
    ctx.barrier();
    ht.destroy(ctx);
  });
}

TEST(Hashtable, RandomKeysAcrossOwners) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    DistHashtable ht(ctx, HtBackend::rma, 256, 2048);
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 1);
    std::set<std::uint64_t> mine;
    while (mine.size() < 100) mine.insert(rng.next() | 1);
    std::vector<std::uint64_t> keys(mine.begin(), mine.end());
    ht.batch_insert(ctx, keys);
    // Collisions across ranks are possible in principle but the 64-bit
    // space makes duplicates vanishingly unlikely: counts must add up.
    EXPECT_EQ(ht.global_count(ctx), static_cast<std::uint64_t>(100 * p));
    for (const auto k : keys) EXPECT_TRUE(ht.contains(k));
    ctx.barrier();
    ht.destroy(ctx);
  });
}

TEST(Hashtable, HeapExhaustionRaises) {
  EXPECT_THROW(
      fabric::run_ranks(2,
                        [](RankCtx& ctx) {
                          DistHashtable ht(ctx, HtBackend::rma, 1, 2);
                          std::vector<std::uint64_t> keys;
                          for (int i = 0; i < 32; ++i) {
                            keys.push_back(
                                static_cast<std::uint64_t>(ctx.rank()) * 100 +
                                i + 1);
                          }
                          ht.batch_insert(ctx, keys);
                          ht.destroy(ctx);
                        }),
      Error);
}

TEST(Hashtable, ZeroKeyRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    DistHashtable ht(ctx, HtBackend::rma, 8, 8);
    if (ctx.rank() == 0) {
      std::vector<std::uint64_t> keys{0};
      EXPECT_THROW(ht.batch_insert(ctx, keys), Error);
    }
    // Note: rank 1 skips the collective too (the throw is pre-comm).
    ht.destroy(ctx);
  });
}

TEST(Hashtable, FiberBackendAnswersOneSidedLookups) {
  // rma_fiber contains()/batch_contains(): remote lookups answered fully
  // one-sided, pipelined through LookupFiber.
  fabric::run_ranks(4, [](RankCtx& ctx) {
    DistHashtable ht(ctx, HtBackend::rma_fiber, 8, 1024);  // force chains
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 60; ++i) {
      keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 777 + i + 1);
    }
    ht.batch_insert(ctx, keys);
    std::vector<std::uint64_t> probes = keys;
    probes.push_back(0xdead0001);  // one certain miss
    const auto hits = ht.batch_contains(probes);
    ASSERT_EQ(hits.size(), probes.size());
    for (std::size_t i = 0; i + 1 < probes.size(); ++i) {
      EXPECT_TRUE(hits[i]) << "missing key " << probes[i];
      EXPECT_TRUE(ht.contains(probes[i]));
    }
    EXPECT_FALSE(hits.back());
    ctx.barrier();
    ht.destroy(ctx);
  });
}

TEST(Hashtable, LookupParityAcrossBackends) {
  // The same key set through every remote-capable backend: contains() and
  // batch_contains() agree on hits AND misses everywhere.
  const int p = 3;
  std::vector<std::uint64_t> probes;
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i < 24; ++i) {
      probes.push_back(static_cast<std::uint64_t>(r) * 555 + i + 1);
    }
  }
  for (int i = 0; i < 8; ++i) probes.push_back(0x5eed0000ull + i);  // misses
  std::vector<std::vector<bool>> answers;
  for (HtBackend b :
       {HtBackend::rma, HtBackend::pgas, HtBackend::rma_fiber}) {
    std::vector<bool> ans;
    fabric::run_ranks(p, [&](RankCtx& ctx) {
      DistHashtable ht(ctx, b, 16, 512);
      std::vector<std::uint64_t> keys;
      for (int i = 0; i < 24; ++i) {
        keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 555 + i + 1);
      }
      ht.batch_insert(ctx, keys);
      if (ctx.rank() == 0) ans = ht.batch_contains(probes);
      ctx.barrier();
      ht.destroy(ctx);
    });
    answers.push_back(std::move(ans));
  }
  ASSERT_EQ(answers.size(), 3u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const bool expect_hit = i < static_cast<std::size_t>(p) * 24;
    for (std::size_t b = 0; b < answers.size(); ++b) {
      ASSERT_EQ(answers[b].size(), probes.size());
      EXPECT_EQ(answers[b][i], expect_hit)
          << "backend " << b << " disagrees on probe " << probes[i];
    }
  }
}

TEST(Hashtable, BackendsProduceIdenticalMembership) {
  // Same keys through rma and pgas: identical global counts.
  const int p = 3;
  std::array<std::uint64_t, 2> counts{};
  int idx = 0;
  for (HtBackend b : {HtBackend::rma, HtBackend::pgas}) {
    fabric::run_ranks(p, [&](RankCtx& ctx) {
      DistHashtable ht(ctx, b, 16, 256);
      std::vector<std::uint64_t> keys;
      for (int i = 0; i < 40; ++i) {
        keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 55 + i + 1);
      }
      ht.batch_insert(ctx, keys);
      if (ctx.rank() == 0) counts[static_cast<std::size_t>(idx)] =
          ht.global_count(ctx);
      else ht.global_count(ctx);
      ht.destroy(ctx);
    });
    ++idx;
  }
  EXPECT_EQ(counts[0], counts[1]);
}

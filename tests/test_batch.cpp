// Throughput-mode coverage: doorbell coalescing (explicit scopes and
// auto-batch), implicit batch flushes at every sync point, fault isolation
// inside a batch, multi-channel striping, and the adaptive protocol tuner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "core/window.hpp"
#include "fabric/fabric.hpp"
#include "rdma/network_model.hpp"
#include "rdma/nic.hpp"

using namespace fompi;
using namespace fompi::rdma;
using core::Win;
using core::WinConfig;
using fabric::RankCtx;

namespace {

DomainConfig internode(int nranks, Injection inject = Injection::none,
                       NicConfig nic = {}) {
  DomainConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
  cfg.inject = inject;
  cfg.nic = nic;
  return cfg;
}

}  // namespace

// --- explicit batch scopes -----------------------------------------------------

TEST(Batch, ExplicitScopeCoalescesOntoOneDoorbell) {
  Domain dom(internode(2, Injection::model));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  alignas(8) std::uint64_t src = 0xfeedu;

  const OpCounters before = op_counters();
  nic.batch_begin();
  EXPECT_TRUE(nic.batch_active());
  std::vector<Handle> hs;
  for (int i = 0; i < 8; ++i) {
    src = 100u + static_cast<std::uint64_t>(i);
    hs.push_back(nic.put_nb(1, d, static_cast<std::size_t>(i) * 8u, &src, 8));
  }
  EXPECT_EQ(nic.batch_depth(), 8u);
  EXPECT_EQ(nic.doorbells_rung(), 0u);
  nic.batch_flush();
  EXPECT_FALSE(nic.batch_active());
  EXPECT_EQ(nic.doorbells_rung(), 1u);
  for (Handle h : hs) EXPECT_EQ(nic.wait_status(h), OpStatus::ok);

  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::doorbell_ring), 1u);
  EXPECT_EQ(delta.get(Op::batched_op), 8u);
  for (int i = 0; i < 8; ++i) {
    std::uint64_t got = 0;
    std::memcpy(&got, mem.data() + i * 8, 8);
    EXPECT_EQ(got, 100u + static_cast<std::uint64_t>(i));
  }
}

TEST(Batch, WaitOnBatchPendingHandleFlushesTheBatch) {
  Domain dom(internode(2, Injection::model));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);
  alignas(8) std::uint64_t src = 7;

  nic.batch_begin();
  const Handle h = nic.put_nb(1, d, 0, &src, 8);
  EXPECT_TRUE(nic.batch_active());
  // No explicit flush: completing the handle must ring the doorbell first.
  EXPECT_EQ(nic.wait_status(h), OpStatus::ok);
  EXPECT_FALSE(nic.batch_active());
  EXPECT_EQ(nic.doorbells_rung(), 1u);
}

TEST(Batch, BteSizedOpsBypassTheBatch) {
  Domain dom(internode(2, Injection::model));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(1 << 16);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
  std::vector<std::byte> big(8192);  // >= bte_threshold: owns its doorbell

  const OpCounters before = op_counters();
  nic.batch_begin();
  const Handle h = nic.put_nb(1, d, 0, big.data(), big.size());
  EXPECT_EQ(nic.batch_depth(), 0u) << "BTE transfer must not join the batch";
  EXPECT_EQ(nic.wait_status(h), OpStatus::ok);
  nic.batch_flush();  // empty scope: no doorbell to ring
  EXPECT_EQ(nic.doorbells_rung(), 0u);
  EXPECT_EQ(op_counters().since(before).get(Op::batched_op), 0u);
}

TEST(Batch, CapacityReachedFlushesImplicitly) {
  NicConfig nc;
  nc.auto_batch = true;
  nc.batch_capacity = 4;
  Domain dom(internode(2, Injection::model, nc));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  alignas(8) std::uint64_t src = 9;

  for (int i = 0; i < 10; ++i) {
    nic.put_nbi(1, d, static_cast<std::size_t>(i) * 8u, &src, 8);
  }
  EXPECT_EQ(nic.doorbells_rung(), 2u);  // two full batches of 4
  EXPECT_EQ(nic.batch_depth(), 2u);     // remainder still open
  nic.gsync();
  EXPECT_EQ(nic.doorbells_rung(), 3u);
  EXPECT_EQ(nic.implicit_outstanding(), 0u);
}

// --- sync points flush open batches --------------------------------------------

TEST(Batch, GsyncFlushesOpenAutoBatch) {
  NicConfig nc;
  nc.auto_batch = true;
  Domain dom(internode(2, Injection::model, nc));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  alignas(8) std::uint64_t src = 0xabcdu;

  for (int i = 0; i < 8; ++i) {
    nic.put_nbi(1, d, static_cast<std::size_t>(i) * 8u, &src, 8);
  }
  EXPECT_TRUE(nic.batch_active());
  EXPECT_EQ(nic.gsync_status(), OpStatus::ok);
  EXPECT_FALSE(nic.batch_active());
  EXPECT_EQ(nic.doorbells_rung(), 1u);
  EXPECT_EQ(nic.implicit_outstanding(), 0u);
}

TEST(Batch, WindowSyncPointsFlushOpenBatches) {
  // flush / fence / unlock all route through gsync; each must close an
  // auto-batch scope so MPI RMA completion semantics hold under batching.
  fabric::FabricOptions opts;
  opts.domain = internode(2, Injection::none);
  opts.domain.nic.auto_batch = true;
  fabric::run_ranks(
      2,
      [&](RankCtx& ctx) {
        Win win = Win::allocate(ctx, 4096);
        std::uint64_t v = static_cast<std::uint64_t>(ctx.rank()) + 1;

        // Passive target + flush.
        win.lock_all();
        win.put(&v, 8, (ctx.rank() + 1) % 2, 0);
        EXPECT_TRUE(ctx.nic().batch_active());
        win.flush((ctx.rank() + 1) % 2);
        EXPECT_FALSE(ctx.nic().batch_active());
        const std::uint64_t db_after_flush = ctx.nic().doorbells_rung();
        EXPECT_GE(db_after_flush, 1u);

        // Unlock. The internal gsync must ring the pending batch; trailing
        // protocol ops (lock-word releases) issued after it may legitimately
        // re-open the auto-batch scope, so assert on doorbell progress, not
        // on batch_active() being false afterwards.
        win.put(&v, 8, (ctx.rank() + 1) % 2, 8);
        EXPECT_TRUE(ctx.nic().batch_active());
        win.unlock_all();
        const std::uint64_t db_after_unlock = ctx.nic().doorbells_rung();
        EXPECT_GT(db_after_unlock, db_after_flush);

        // Active target: fence closes the epoch (and rings the batch);
        // same caveat about trailing fence-counter protocol ops.
        win.fence();
        win.put(&v, 8, (ctx.rank() + 1) % 2, 16);
        EXPECT_TRUE(ctx.nic().batch_active());
        win.fence();
        EXPECT_GT(ctx.nic().doorbells_rung(), db_after_unlock);

        win.free();
      },
      opts);
}

// --- fault isolation inside a batch --------------------------------------------

TEST(Batch, DeadPeerOpRetiresAloneBatchmatesComplete) {
  DomainConfig cfg = internode(3, Injection::none);
  cfg.fault.kill_rank = 2;
  cfg.fault.kill_at_op = 0;
  Domain dom(cfg);
  Nic& killer = dom.nic(2);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem0(256), mem1(256), mem2(256);
  const RegionDesc d0 = dom.registry().register_region(0, mem0.data(), 256);
  const RegionDesc d1 = dom.registry().register_region(1, mem1.data(), 256);
  const RegionDesc d2 = dom.registry().register_region(2, mem2.data(), 256);
  alignas(8) std::uint64_t src = 0x51u;

  // Rank 2 dies at its first issued op (fail-stop).
  EXPECT_THROW(killer.put(0, d0, 0, &src, 8), Error);
  ASSERT_FALSE(dom.alive(2));

  const OpCounters before = op_counters();
  nic.batch_begin();
  const Handle ok1 = nic.put_nb(1, d1, 0, &src, 8);
  EXPECT_EQ(nic.batch_depth(), 1u);
  const Handle dead = nic.put_nb(2, d2, 0, &src, 8);
  EXPECT_EQ(nic.batch_depth(), 1u)
      << "a pre-issue-failed op must never join the batch";
  const Handle ok2 = nic.put_nb(1, d1, 8, &src, 8);
  nic.batch_flush();

  EXPECT_EQ(nic.wait_status(ok1), OpStatus::ok);
  EXPECT_EQ(nic.wait_status(dead), OpStatus::peer_dead);
  EXPECT_EQ(nic.wait_status(ok2), OpStatus::ok);
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::batched_op), 2u);
  EXPECT_EQ(delta.get(Op::op_failed), 1u);
}

TEST(Batch, ScheduledFaultInsideBatchFailsOnlyThatOp) {
  DomainConfig cfg = internode(2, Injection::none);
  cfg.fault.seed = 2024;
  cfg.fault.transient_faults_per_rank = 3;
  cfg.fault.horizon_ops = 16;
  cfg.fault.max_repeats = 1;
  cfg.fault.retry_budget = 0;  // every non-spike site is a permanent failure
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  alignas(8) std::uint64_t src = 3;

  // Replay the NIC's deterministic consumption rule over the introspected
  // schedule: per op index, sites fire in schedule order; shadowed sites
  // (at_op already passed) are consumed silently; a spike only stretches
  // latency; the first timeout/cq/doorbell site fails the op.
  const auto& sched = nic.fault_schedule();
  ASSERT_EQ(sched.size(), 3u);
  std::vector<OpStatus> expected(16, OpStatus::ok);
  std::size_t next = 0;
  for (std::uint64_t op = 0; op < 16; ++op) {
    while (next < sched.size() && sched[next].at_op <= op) {
      const auto site = sched[next++];
      if (site.at_op != op) continue;
      if (site.kind == FaultKind::latency_spike) continue;
      expected[op] = site.kind == FaultKind::cq_error ? OpStatus::cq_error
                                                      : OpStatus::timeout;
      break;
    }
  }
  const std::size_t nfail = static_cast<std::size_t>(
      std::count_if(expected.begin(), expected.end(),
                    [](OpStatus s) { return s != OpStatus::ok; }));
  ASSERT_GE(nfail, 1u) << "seed must schedule at least one permanent failure";

  nic.batch_begin();
  std::vector<Handle> hs;
  for (int i = 0; i < 16; ++i) {
    hs.push_back(nic.put_nb(1, d, static_cast<std::size_t>(i) * 8u, &src, 8));
  }
  nic.batch_flush();
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(nic.wait_status(hs[i]), expected[i]) << "op " << i;
  }
  EXPECT_EQ(nic.doorbells_rung(), 1u);
}

TEST(Batch, BatchedFleetAbortsOnDeadPeerNotHangs) {
  // Batched completion spins route through the domain progress hook
  // (Fabric::yield_check): a survivor flushing batched puts at a dead rank
  // observes typed peer_dead instead of hanging the fleet.
  fabric::FabricOptions opts;
  opts.domain = internode(2, Injection::model);
  opts.domain.nic.auto_batch = true;
  opts.domain.fault.kill_rank = 1;
  // Late enough that both ranks finish the lock_all protocol (~10 ops) before
  // the death; rank 1 then dies inside its put/flush loop.
  opts.domain.fault.kill_at_op = 30;
  opts.errors_return = true;
  fabric::run_ranks(
      2,
      [&](RankCtx& ctx) {
        WinConfig wcfg;
        wcfg.err_mode = core::ErrMode::errors_return;
        Win win = Win::allocate(ctx, 256, wcfg);
        win.lock_all();
        std::uint64_t v = 1;
        if (ctx.rank() == 1) {
          for (int i = 0; i < 100; ++i) {
            win.put(&v, 8, 0, 0);
            win.flush(0);
          }
          FAIL() << "rank 1 must have been killed";
        }
        while (win.peer_alive(1)) ctx.yield_check();
        OpStatus st = OpStatus::ok;
        for (int i = 0; i < 8 && st == OpStatus::ok; ++i) {
          win.put(&v, 8, 1, 0);  // auto-batched
          st = win.flush_checked(1);
        }
        EXPECT_EQ(st, OpStatus::peer_dead);
      },
      opts);
}

// --- channel striping ------------------------------------------------------------

TEST(Batch, StripedModelLatencyDecreasesWithChannels) {
  NetworkModel m;
  const std::size_t big = std::size_t{1} << 20;
  const double t1 = m.put_striped_latency_ns(big, 1);
  const double t2 = m.put_striped_latency_ns(big, 2);
  const double t4 = m.put_striped_latency_ns(big, 4);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
  EXPECT_DOUBLE_EQ(t1, m.put_latency_ns(big));  // 1 channel == legacy model
  // FMA-sized transfers never stripe (ordering).
  EXPECT_DOUBLE_EQ(m.put_striped_latency_ns(512, 4), m.put_latency_ns(512));
}

TEST(Batch, StripingReducesModeledWallTime) {
  const std::size_t big = std::size_t{1} << 20;
  auto timed_put = [&](int channels) {
    NicConfig nc;
    nc.channels = channels;
    Domain dom(internode(2, Injection::model, nc));
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(2 * big);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 2 * big);
    std::vector<std::byte> payload(big);
    const OpCounters before = op_counters();
    Timer t;
    nic.put(1, d, 0, payload.data(), big);  // blocking: spins modeled time
    const double ns = static_cast<double>(t.elapsed_ns());
    const std::uint64_t stripes = op_counters().since(before).get(
        Op::channel_stripe);
    EXPECT_EQ(stripes, channels > 1 ? 1u : 0u);
    return ns;
  };
  const double t1 = timed_put(1);
  const double t4 = timed_put(4);
  // Modeled: ~153 us at 1 channel vs ~40 us at 4; generous noise margin.
  // Under TSan the shadow cost of the 1 MiB copy (which does not shrink
  // with channels) swamps the modeled wait, so only the stripe counters
  // above are meaningful there — the ratio is asserted unsanitized.
#if defined(__SANITIZE_THREAD__)
#define FOMPI_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FOMPI_TEST_TSAN 1
#endif
#endif
#ifndef FOMPI_TEST_TSAN
  EXPECT_LT(t4, 0.6 * t1);
#else
  EXPECT_LT(t4, t1 + 1e6);  // sanity only: within 1 ms of the 1-channel run
#endif
}

// --- adaptive thresholds ---------------------------------------------------------

TEST(Batch, AdaptiveTunerLowersThresholdForMediumTraffic) {
  NicConfig nc;
  nc.adaptive = true;
  nc.adapt_period = 64;
  Domain dom(internode(2, Injection::none, nc));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  std::vector<std::byte> buf(2048);

  EXPECT_EQ(nic.model().bte_threshold, 4096u);
  const OpCounters before = op_counters();
  // 2 KiB puts: BTE (1100 + 0.145*2048 ~ 1397 ns) beats FMA
  // (1000 + 10*32 + 0.16*2048 ~ 1648 ns), so the tuner should drop the
  // switch point below 2 KiB.
  for (int i = 0; i < 256; ++i) nic.put(1, d, 0, buf.data(), buf.size());
  EXPECT_LE(nic.model().bte_threshold, 2048u);
  EXPECT_GE(nic.retunes(), 1u);
  EXPECT_GE(op_counters().since(before).get(Op::adapt_retune), 1u);
  // The tuner mutates only this NIC's private copy.
  EXPECT_EQ(dom.config().model.bte_threshold, 4096u);
  EXPECT_EQ(dom.nic(1).model().bte_threshold, 4096u);
}

TEST(Batch, AdaptiveTunerHoldsDefaultUnderSmallOpTraffic) {
  NicConfig nc;
  nc.adaptive = true;
  nc.adapt_period = 64;
  Domain dom(internode(2, Injection::none, nc));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  alignas(8) std::uint64_t src = 5;

  // Pure 8-byte traffic: every candidate threshold classifies it as FMA,
  // so hysteresis must keep the calibrated default in place.
  for (int i = 0; i < 512; ++i) nic.put(1, d, 0, &src, 8);
  EXPECT_EQ(nic.model().bte_threshold, 4096u);
  EXPECT_EQ(nic.retunes(), 0u);
}

// --- idle-config invariants ------------------------------------------------------

TEST(Batch, IdleThroughputConfigLeavesSemanticsUnchanged) {
  NicConfig nc;
  nc.channels = 4;
  nc.adaptive = true;
  nc.auto_batch = false;  // throughput machinery armed but never engaged
  Domain dom(internode(2, Injection::none, nc));
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);

  const OpCounters before = op_counters();
  for (std::uint64_t i = 0; i < 64; ++i) {
    nic.put(1, d, (i % 8) * 8u, &i, 8);
  }
  nic.gsync();
  EXPECT_EQ(nic.doorbells_rung(), 0u);
  EXPECT_FALSE(nic.batch_active());
  EXPECT_EQ(op_counters().since(before).get(Op::batched_op), 0u);
  std::uint64_t got = 0;
  std::memcpy(&got, mem.data() + 7 * 8, 8);
  EXPECT_EQ(got, 63u);
}

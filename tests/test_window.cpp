// Window creation flavors, the symmetric heap protocol, shared windows,
// and teardown hygiene.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/window.hpp"

using namespace fompi;
using core::Win;
using fabric::RankCtx;

TEST(Window, CreateExposesUserMemory) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    std::vector<std::uint64_t> mem(16, static_cast<std::uint64_t>(ctx.rank()));
    Win win = Win::create(ctx, mem.data(), mem.size() * 8);
    EXPECT_EQ(win.rank(), ctx.rank());
    EXPECT_EQ(win.nranks(), 4);
    EXPECT_EQ(win.base(), mem.data());
    EXPECT_EQ(win.size(), 128u);

    win.lock_all();
    const int peer = (ctx.rank() + 1) % 4;
    std::uint64_t v = 0;
    win.get(&v, 8, peer, 0);
    win.flush_all();
    EXPECT_EQ(v, static_cast<std::uint64_t>(peer));
    win.unlock_all();
    win.free();
  });
}

TEST(Window, CreateWithDifferentSizesPerRank) {
  fabric::run_ranks(3, [](RankCtx& ctx) {
    // Rank r exposes (r+1)*64 bytes; rank 0 may expose nothing at all.
    const std::size_t bytes = static_cast<std::size_t>(ctx.rank()) * 64;
    std::vector<std::byte> mem(bytes == 0 ? 1 : bytes);
    Win win = Win::create(ctx, bytes == 0 ? nullptr : mem.data(), bytes);
    EXPECT_EQ(win.size(0), 0u);
    EXPECT_EQ(win.size(1), 64u);
    EXPECT_EQ(win.size(2), 128u);
    win.free();
  });
}

TEST(Window, AllocateGivesSymmetricUsableMemory) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    ASSERT_NE(win.base(), nullptr);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    mine[0] = static_cast<std::uint64_t>(100 + ctx.rank());
    win.fence();
    std::uint64_t v = 0;
    win.get(&v, 8, (ctx.rank() + 1) % 4, 0);
    win.fence();
    EXPECT_EQ(v, static_cast<std::uint64_t>(100 + (ctx.rank() + 1) % 4));
    win.free();
  });
}

TEST(Window, AllocateManyWindowsCoexist) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    std::vector<Win> wins;
    for (int i = 0; i < 8; ++i) {
      wins.push_back(Win::allocate(ctx, 512));
      auto* p = static_cast<std::uint64_t*>(wins.back().base());
      p[0] = static_cast<std::uint64_t>(i * 10 + ctx.rank());
    }
    for (int i = 0; i < 8; ++i) {
      wins[static_cast<std::size_t>(i)].fence();
      std::uint64_t v = 0;
      wins[static_cast<std::size_t>(i)].get(&v, 8, 1 - ctx.rank(), 0);
      wins[static_cast<std::size_t>(i)].fence();
      EXPECT_EQ(v, static_cast<std::uint64_t>(i * 10 + 1 - ctx.rank()));
    }
    for (auto& w : wins) w.free();
  });
}

TEST(Window, AllocateReportsRetryAttempts) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    // Fill a small heap so the random-propose protocol has to retry.
    core::WinConfig cfg;
    cfg.symheap_bytes = 4096;
    std::vector<Win> wins;
    for (int i = 0; i < 4; ++i) wins.push_back(Win::allocate(ctx, 512, cfg));
    for (auto& w : wins) {
      EXPECT_GE(w.alloc_attempts(), 1);
      EXPECT_LT(w.alloc_attempts(), 1000);
    }
    for (auto& w : wins) w.free();
  });
}

TEST(Window, AllocateExhaustionRaisesNoMem) {
  EXPECT_THROW(fabric::run_ranks(2,
                                 [](RankCtx& ctx) {
                                   core::WinConfig cfg;
                                   cfg.symheap_bytes = 1024;
                                   Win w = Win::allocate(ctx, 4096, cfg);
                                   w.free();
                                 }),
               Error);
}

TEST(Window, HeapBlockReusableAfterFree) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    core::WinConfig cfg;
    cfg.symheap_bytes = 2048;
    for (int round = 0; round < 12; ++round) {
      Win w = Win::allocate(ctx, 1024, cfg);
      w.free();  // without the release, the heap would exhaust
    }
  });
}

TEST(Window, SharedQueryDirectStores) {
  fabric::run_ranks(4, [](RankCtx& ctx) {
    Win win = Win::allocate_shared(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    mine[0] = static_cast<std::uint64_t>(ctx.rank() + 1);
    win.sync();
    ctx.barrier();
    const int peer = (ctx.rank() + 1) % 4;
    auto* theirs = static_cast<std::uint64_t*>(win.shared_query(peer));
    win.sync();
    EXPECT_EQ(theirs[0], static_cast<std::uint64_t>(peer + 1));
    ctx.barrier();
    win.free();
  });
}

TEST(Window, SharedQueryRejectsOffNodeTarget) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  EXPECT_THROW(fabric::run_ranks(2,
                                 [](RankCtx& ctx) {
                                   Win win = Win::allocate_shared(ctx, 64);
                                   win.shared_query(1 - ctx.rank());
                                   win.free();
                                 },
                                 opts),
               Error);
}

TEST(Window, SizeQueriesValidateRank) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    EXPECT_THROW(win.size(5), Error);
    EXPECT_THROW(win.size(-1), Error);
    win.free();
  });
}

TEST(Window, UseAfterFreeRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.free();
    EXPECT_THROW(win.fence(), Error);
  });
}

TEST(Window, EmptyHandleRejected) {
  Win win;
  EXPECT_THROW(win.rank(), Error);
  EXPECT_THROW(win.fence(), Error);
}

TEST(Window, RegistrationsReleasedOnFree) {
  fabric::FabricOptions opts;
  fabric::Fabric fabric([&] {
    auto o = opts;
    o.domain.nranks = 2;
    return o;
  }());
  std::vector<std::thread> threads;
  const std::size_t before = fabric.domain().registry().live_count();
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&fabric, r] {
      RankCtx ctx(fabric, r);
      std::vector<std::byte> mem(64);
      Win w = Win::create(ctx, mem.data(), mem.size());
      w.free();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(fabric.first_error(), nullptr);
  EXPECT_EQ(fabric.domain().registry().live_count(), before);
}

TEST(Window, CommunicationOutsideEpochRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    std::uint64_t v = 1;
    EXPECT_THROW(win.put(&v, 8, 1 - ctx.rank(), 0), Error);
    win.free();
  });
}

TEST(Window, OutOfRangeAccessRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    std::uint64_t v = 1;
    EXPECT_THROW(win.put(&v, 8, 1 - ctx.rank(), 60), Error);
    EXPECT_THROW(win.put(&v, 8, 7, 0), Error);
    win.unlock_all();
    win.free();
  });
}

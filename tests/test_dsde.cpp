// Dynamic sparse data exchange: all four protocols deliver exactly the
// sent multiset of messages, including degenerate workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <tuple>

#include "apps/dsde.hpp"

using namespace fompi;
using apps::DsdeMsg;
using apps::DsdeProto;
using fabric::RankCtx;

namespace {

/// Collects (sender, receiver, payload) triples globally for validation.
struct GlobalLedger {
  std::mutex mu;
  std::multiset<std::tuple<int, int, std::uint64_t>> sent, received;
  void add_sent(int from, const std::vector<DsdeMsg>& ms) {
    std::scoped_lock l(mu);
    for (const auto& m : ms) sent.insert({from, m.peer, m.payload});
  }
  void add_received(int to, const std::vector<DsdeMsg>& ms) {
    std::scoped_lock l(mu);
    for (const auto& m : ms) received.insert({m.peer, to, m.payload});
  }
};

}  // namespace

class DsdeProtocols : public ::testing::TestWithParam<DsdeProto> {};

TEST_P(DsdeProtocols, RandomWorkloadDeliversExactly) {
  const int p = 6;
  const int k = 4;
  GlobalLedger ledger;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const auto sends =
        apps::dsde_random_workload(ctx.rank(), p, k, /*seed=*/7);
    ledger.add_sent(ctx.rank(), sends);
    const auto recvd = apps::dsde_exchange(ctx, GetParam(), sends);
    ledger.add_received(ctx.rank(), recvd);
  });
  EXPECT_EQ(ledger.sent, ledger.received)
      << "protocol " << to_string(GetParam());
  EXPECT_EQ(ledger.sent.size(), static_cast<std::size_t>(p * k));
}

TEST_P(DsdeProtocols, EmptyWorkload) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    const auto recvd = apps::dsde_exchange(ctx, GetParam(), {});
    EXPECT_TRUE(recvd.empty());
  });
}

TEST_P(DsdeProtocols, AsymmetricAllToOne) {
  // Everyone sends to rank 0 only — the degenerate hotspot case.
  const int p = 5;
  GlobalLedger ledger;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<DsdeMsg> sends;
    if (ctx.rank() != 0) {
      sends.push_back(
          DsdeMsg{0, static_cast<std::uint64_t>(ctx.rank()) * 3 + 1});
    }
    ledger.add_sent(ctx.rank(), sends);
    const auto recvd = apps::dsde_exchange(ctx, GetParam(), sends);
    ledger.add_received(ctx.rank(), recvd);
    if (ctx.rank() == 0) {
      EXPECT_EQ(recvd.size(), static_cast<std::size_t>(p - 1));
    } else {
      EXPECT_TRUE(recvd.empty());
    }
  });
  EXPECT_EQ(ledger.sent, ledger.received);
}

TEST_P(DsdeProtocols, MultipleMessagesToSameTarget) {
  const int p = 3;
  GlobalLedger ledger;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    std::vector<DsdeMsg> sends;
    const int target = (ctx.rank() + 1) % p;
    for (int i = 0; i < 5; ++i) {
      sends.push_back(DsdeMsg{
          target, static_cast<std::uint64_t>(ctx.rank() * 100 + i + 1)});
    }
    ledger.add_sent(ctx.rank(), sends);
    const auto recvd = apps::dsde_exchange(ctx, GetParam(), sends);
    ledger.add_received(ctx.rank(), recvd);
    EXPECT_EQ(recvd.size(), 5u);
  });
  EXPECT_EQ(ledger.sent, ledger.received);
}

TEST_P(DsdeProtocols, RepeatedExchangesStayConsistent) {
  const int p = 4;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    for (int round = 0; round < 4; ++round) {
      const auto sends = apps::dsde_random_workload(
          ctx.rank(), p, 3, static_cast<std::uint64_t>(round) + 11);
      std::uint64_t got = 0;
      const auto recvd = apps::dsde_exchange(ctx, GetParam(), sends);
      got = recvd.size();
      std::uint64_t total = 0;
      ctx.allreduce(&got, &total, 1,
                    [](std::uint64_t a, std::uint64_t b) { return a + b; });
      EXPECT_EQ(total, static_cast<std::uint64_t>(3 * p))
          << "round " << round;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Protocols, DsdeProtocols,
                         ::testing::Values(DsdeProto::alltoall,
                                           DsdeProto::alltoall_p2p,
                                           DsdeProto::reduce_scatter,
                                           DsdeProto::nbx, DsdeProto::rma));

TEST(Dsde, WorkloadGeneratorProperties) {
  const auto w = apps::dsde_random_workload(2, 8, 6, 42);
  EXPECT_EQ(w.size(), 6u);
  for (const auto& m : w) {
    EXPECT_NE(m.peer, 2) << "no self-messages";
    EXPECT_GE(m.peer, 0);
    EXPECT_LT(m.peer, 8);
    EXPECT_NE(m.payload, 0u);
  }
  EXPECT_EQ(w, apps::dsde_random_workload(2, 8, 6, 42)) << "deterministic";
  EXPECT_NE(w, apps::dsde_random_workload(3, 8, 6, 42));
  // Single-rank world: targets must be self (no other choice) — the
  // generator keeps them local.
  const auto solo = apps::dsde_random_workload(0, 1, 2, 1);
  for (const auto& m : solo) EXPECT_EQ(m.peer, 0);
}

TEST(Dsde, TargetOutOfRangeRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(
          apps::dsde_exchange(ctx, DsdeProto::nbx, {DsdeMsg{7, 1}}), Error);
    }
  });
}

// Coverage for the remaining corners: process groups, fabric extension
// slots, abort propagation through every blocking primitive, multi-window
// interactions, and cross-module integration under failure-injection modes.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/dsde.hpp"
#include "apps/hashtable.hpp"
#include "core/window.hpp"
#include "fabric/group.hpp"

using namespace fompi;
using core::Win;
using fabric::Group;
using fabric::RankCtx;

// --- groups -------------------------------------------------------------------

TEST(Group, BasicProperties) {
  const Group g{3, 1, 4};
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.at(0), 3);
  EXPECT_TRUE(g.contains(4));
  EXPECT_FALSE(g.contains(2));
  int count = 0;
  for (int r : g) {
    (void)r;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(Group, WorldGroup) {
  const Group w = Group::world(5);
  EXPECT_EQ(w.size(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(w.contains(i));
}

TEST(Group, ValidationRejectsBadInput) {
  EXPECT_THROW(Group({1, 1}), Error);    // duplicate
  EXPECT_THROW(Group({0, -1}), Error);   // negative
  EXPECT_NO_THROW(Group{});              // empty group is legal
  EXPECT_EQ(Group{}.size(), 0);
}

TEST(Group, EmptyGroupPscwIsNoop) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.post(Group{});
    win.start(Group{});
    win.complete();
    win.wait();
    win.free();
  });
}

// --- fabric extension slots ---------------------------------------------------

TEST(Fabric, ExtSlotFirstWriterWins) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 1;
  fabric::Fabric fabric(opts);
  EXPECT_EQ(fabric.ext_get("k"), nullptr);
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  auto stored = fabric.ext_put_once("k", a);
  EXPECT_EQ(std::static_pointer_cast<int>(stored), a);
  stored = fabric.ext_put_once("k", b);
  EXPECT_EQ(*std::static_pointer_cast<int>(stored), 1) << "first wins";
  EXPECT_EQ(std::static_pointer_cast<int>(fabric.ext_get("k")), a);
}

// --- abort propagation ---------------------------------------------------------

TEST(Abort, PropagatesOutOfPscwStart) {
  EXPECT_THROW(fabric::run_ranks(2,
                                 [](RankCtx& ctx) {
                                   Win win = Win::allocate(ctx, 64);
                                   if (ctx.rank() == 0) {
                                     raise(ErrClass::arg, "boom");
                                   }
                                   win.start(Group{0});  // would block
                                   win.complete();
                                   win.free();
                                 }),
               Error);
}

TEST(Abort, PropagatesOutOfP2PRecv) {
  EXPECT_THROW(fabric::run_ranks(2,
                                 [](RankCtx& ctx) {
                                   if (ctx.rank() == 0) {
                                     raise(ErrClass::arg, "boom");
                                   }
                                   int v = 0;
                                   ctx.recv(0, 0, &v, sizeof(v));
                                 }),
               Error);
}

TEST(Abort, PropagatesOutOfLockWait) {
  EXPECT_THROW(
      fabric::run_ranks(2,
                        [](RankCtx& ctx) {
                          Win win = Win::allocate(ctx, 64);
                          if (ctx.rank() == 0) {
                            win.lock(core::LockType::exclusive, 0);
                            raise(ErrClass::arg, "boom while holding");
                          }
                          // Rank 1 spins on the CAS until the abort lands.
                          win.lock(core::LockType::exclusive, 0);
                          win.unlock(0);
                          win.free();
                        }),
      Error);
}

// --- multi-window interactions ---------------------------------------------------

TEST(MultiWindow, IndependentEpochsAndLocks) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win a = Win::allocate(ctx, 64);
    Win b = Win::allocate(ctx, 64);
    // Different epochs on different windows coexist on one rank.
    a.lock_all();
    b.fence();
    const std::uint64_t va = 1, vb = 2;
    a.put(&va, 8, 1 - ctx.rank(), 0);
    b.put(&vb, 8, 1 - ctx.rank(), 8);
    a.flush_all();
    b.fence();
    a.unlock_all();
    ctx.barrier();
    EXPECT_EQ(static_cast<std::uint64_t*>(a.base())[0], 1u);
    EXPECT_EQ(static_cast<std::uint64_t*>(b.base())[1], 2u);
    a.free();
    b.free();
  });
}

TEST(MultiWindow, LocksOnDifferentWindowsDoNotInterfere) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win a = Win::allocate(ctx, 64);
    Win b = Win::allocate(ctx, 64);
    // Exclusive on window a must not block exclusive on window b.
    a.lock(core::LockType::exclusive, 0);
    b.lock(core::LockType::exclusive, 0);
    b.unlock(0);
    a.unlock(0);
    ctx.barrier();
    a.free();
    b.free();
  });
}

// --- integration under failure injection ----------------------------------------

TEST(Integration, HashtableUnderDeferredShuffledDelivery) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.delivery = rdma::Delivery::deferred;
  opts.domain.shuffle_deferred = true;
  fabric::run_ranks(3, [&](RankCtx& ctx) {
    apps::DistHashtable ht(ctx, apps::HtBackend::rma, 64, 256);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 30; ++i) {
      keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 1000 + i + 1);
    }
    ht.batch_insert(ctx, keys);
    EXPECT_EQ(ht.global_count(ctx), 90u);
    for (const auto k : keys) EXPECT_TRUE(ht.contains(k));
    ctx.barrier();
    ht.destroy(ctx);
  }, opts);
}

TEST(Integration, DsdeUnderDeferredDelivery) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  opts.domain.delivery = rdma::Delivery::deferred;
  opts.domain.shuffle_deferred = true;
  fabric::run_ranks(4, [&](RankCtx& ctx) {
    const auto sends = apps::dsde_random_workload(ctx.rank(), 4, 3, 21);
    for (auto proto : {apps::DsdeProto::rma, apps::DsdeProto::nbx}) {
      std::uint64_t got = apps::dsde_exchange(ctx, proto, sends).size();
      std::uint64_t total = 0;
      ctx.allreduce(&got, &total, 1,
                    [](std::uint64_t a, std::uint64_t b) { return a + b; });
      EXPECT_EQ(total, 12u);
    }
  }, opts);
}

TEST(Integration, ManyFabricsSequentially) {
  // Fabric construction/teardown must be leak-free and repeatable.
  for (int i = 0; i < 10; ++i) {
    fabric::run_ranks(3, [](RankCtx& ctx) {
      Win win = Win::allocate(ctx, 128);
      win.fence();
      const std::uint64_t v = 9;
      win.put(&v, 8, (ctx.rank() + 1) % 3, 0);
      win.fence();
      win.free();
    });
  }
}

TEST(Integration, LargeRankCountSmoke) {
  // 24 rank threads on one core: scheduling stress for every spin loop.
  fabric::run_ranks(24, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    const std::uint64_t v = static_cast<std::uint64_t>(ctx.rank());
    win.put(&v, 8, (ctx.rank() + 1) % 24, 0);
    win.fence();
    const auto* mine = static_cast<const std::uint64_t*>(win.base());
    EXPECT_EQ(mine[0],
              static_cast<std::uint64_t>((ctx.rank() + 23) % 24));
    win.free();
  });
}

// The accumulate family: accelerated AMO path, fallback protocol,
// fetch_and_op, compare_and_swap, and elementwise atomicity under
// concurrency (linearizability property tests).
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "common/instr.hpp"
#include "core/window.hpp"

using namespace fompi;
using core::LockType;
using core::Win;
using fabric::RankCtx;

TEST(Accumulate, AcceleratedSumsFromAllRanks) {
  const int p = 4;
  const int kIters = 50;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    const std::uint64_t one = 1;
    for (int i = 0; i < kIters; ++i) {
      win.accumulate(&one, 1, Elem::u64, RedOp::sum, 0, 0);
    }
    win.flush(0);
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      win.sync();
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(p * kIters));
    }
    win.free();
  });
}

TEST(Accumulate, MultiElementAccelerated) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.fence();
    const std::array<std::uint64_t, 4> vals{1, 2, 3, 4};
    win.accumulate(vals.data(), 4, Elem::u64, RedOp::sum, 0, 0);
    win.fence();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<std::uint64_t*>(win.base());
      EXPECT_EQ(mine[0], 2u);
      EXPECT_EQ(mine[1], 4u);
      EXPECT_EQ(mine[2], 6u);
      EXPECT_EQ(mine[3], 8u);
    }
    win.free();
  });
}

TEST(Accumulate, BitwiseAcceleratedOps) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) mine[0] = 0b1111;
    win.fence();
    if (ctx.rank() == 1) {
      const std::uint64_t m = 0b1010;
      win.accumulate(&m, 1, Elem::u64, RedOp::band, 0, 0);
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[0], 0b1010u);
    win.free();
  });
}

TEST(Accumulate, FallbackMinMaxProd) {
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<double*>(win.base());
    mine[0] = 100.0;
    mine[1] = -5.0;
    win.fence();
    const double v = static_cast<double>(ctx.rank() * 10 + 1);  // 1, 11, 21
    win.accumulate(&v, 1, Elem::f64, RedOp::min, 0, 0);
    win.accumulate(&v, 1, Elem::f64, RedOp::max, 0, 8);
    win.fence();
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(mine[0], 1.0);
      EXPECT_DOUBLE_EQ(mine[1], 21.0);
    }
    win.free();
  });
}

TEST(Accumulate, FallbackF64SumIsAtomicPerElement) {
  // f64 sum is not hardware-accelerated; concurrent fallback accumulates
  // must still not lose updates (the lock serializes them).
  const int p = 4;
  const int kIters = 20;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    const double one = 1.0;
    for (int i = 0; i < kIters; ++i) {
      win.accumulate(&one, 1, Elem::f64, RedOp::sum, 0, 0);
    }
    win.flush(0);
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) {
      auto* mine = static_cast<double*>(win.base());
      win.sync();
      EXPECT_DOUBLE_EQ(mine[0], static_cast<double>(p * kIters));
    }
    win.free();
  });
}

TEST(Accumulate, GetAccumulateReturnsPreviousValue) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) mine[0] = 7;
    win.fence();
    if (ctx.rank() == 1) {
      std::uint64_t add = 3, old = 0;
      win.get_accumulate(&add, &old, 1, Elem::u64, RedOp::sum, 0, 0);
      EXPECT_EQ(old, 7u);
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[0], 10u);
    win.free();
  });
}

TEST(Accumulate, GetAccumulateNoOpIsAtomicRead) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) {
      mine[0] = 555;
      mine[1] = 666;
    }
    win.fence();
    if (ctx.rank() == 1) {
      std::array<std::uint64_t, 2> out{};
      win.get_accumulate(nullptr, out.data(), 2, Elem::u64, RedOp::no_op, 0,
                         0);
      EXPECT_EQ(out[0], 555u);
      EXPECT_EQ(out[1], 666u);
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[0], 555u);  // unchanged
    win.free();
  });
}

TEST(Accumulate, FetchAndOpChainsAtomically) {
  // Every rank fetch-adds; the set of fetched values must be a permutation
  // of {0, step, 2*step, ...} — the linearizability witness.
  const int p = 4;
  const int kIters = 30;
  std::array<std::atomic<int>, static_cast<std::size_t>(p * kIters) + 1>
      seen{};
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    const std::uint64_t one = 1;
    for (int i = 0; i < kIters; ++i) {
      std::uint64_t old = ~0ull;
      win.fetch_and_op(&one, &old, Elem::u64, RedOp::sum, 0, 0);
      ASSERT_LT(old, static_cast<std::uint64_t>(p * kIters));
      seen[old].fetch_add(1);
    }
    win.unlock_all();
    win.free();
  });
  for (int i = 0; i < p * kIters; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
        << "fetched value " << i << " seen wrong number of times";
  }
}

TEST(Accumulate, CompareAndSwap64) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::uint64_t*>(win.base());
    if (ctx.rank() == 0) mine[0] = 10;
    win.fence();
    if (ctx.rank() == 1) {
      std::uint64_t desired = 20, expected = 10, old = 0;
      win.compare_and_swap(&desired, &expected, &old, Elem::u64, 0, 0);
      EXPECT_EQ(old, 10u);
      // Second CAS with a stale expected value must fail.
      desired = 30;
      win.compare_and_swap(&desired, &expected, &old, Elem::u64, 0, 0);
      EXPECT_EQ(old, 20u);
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[0], 20u);
    win.free();
  });
}

TEST(Accumulate, CompareAndSwap32ViaFallback) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    auto* mine = static_cast<std::int32_t*>(win.base());
    if (ctx.rank() == 0) mine[0] = 5;
    win.fence();
    if (ctx.rank() == 1) {
      std::int32_t desired = 6, expected = 5, old = 0;
      win.compare_and_swap(&desired, &expected, &old, Elem::i32, 0, 0);
      EXPECT_EQ(old, 5);
    }
    win.fence();
    if (ctx.rank() == 0) EXPECT_EQ(mine[0], 6);
    win.free();
  });
}

TEST(Accumulate, CasOnFloatRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    double d = 1, c = 1, r = 0;
    EXPECT_THROW(win.compare_and_swap(&d, &c, &r, Elem::f64, 0, 0), Error);
    win.unlock_all();
    win.free();
  });
}

TEST(Accumulate, AccumulateNoOpRejected) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    std::uint64_t v = 1;
    EXPECT_THROW(win.accumulate(&v, 1, Elem::u64, RedOp::no_op, 0, 0), Error);
    win.unlock_all();
    win.free();
  });
}

TEST(Accumulate, MixedAcceleratedAndFallbackTargetsDistinctWords) {
  const int p = 3;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    win.lock_all();
    const std::uint64_t one = 1;
    const double half = 0.5;
    for (int i = 0; i < 10; ++i) {
      win.accumulate(&one, 1, Elem::u64, RedOp::sum, 0, 0);
      win.accumulate(&half, 1, Elem::f64, RedOp::sum, 0, 8);
    }
    win.flush(0);
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) {
      win.sync();
      auto* u = static_cast<std::uint64_t*>(win.base());
      auto* d = reinterpret_cast<double*>(u + 1);
      EXPECT_EQ(u[0], static_cast<std::uint64_t>(10 * p));
      EXPECT_DOUBLE_EQ(d[0], 5.0 * p);
    }
    win.free();
  });
}

TEST(Accumulate, DatatypeFallbackStridedSum) {
  // Non-contiguous f64 accumulate rides the fallback protocol's vectored
  // gather/combine/scatter: values land elementwise, gaps stay untouched.
  const int p = 3;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 512);
    if (ctx.rank() == 0) {
      auto* d = static_cast<double*>(win.base());
      for (int i = 0; i < 16; ++i) d[i] = (i % 2 == 0) ? 1.0 : -9.0;
    }
    ctx.barrier();
    const dt::Datatype strided =
        dt::Datatype::vector(8, 1, 2, dt::Datatype::f64());
    const dt::Datatype contig =
        dt::Datatype::contiguous(8, dt::Datatype::f64());
    std::array<double, 8> vals{};
    vals.fill(0.25);
    win.lock_all();
    win.accumulate(vals.data(), 1, contig, Elem::f64, RedOp::sum,
                   0, 0, 1, strided);
    win.flush(0);
    win.unlock_all();
    ctx.barrier();
    if (ctx.rank() == 0) {
      win.sync();
      auto* d = static_cast<double*>(win.base());
      for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(d[2 * i], 1.0 + 0.25 * p) << "element " << i;
        EXPECT_DOUBLE_EQ(d[2 * i + 1], -9.0) << "gap " << i;
      }
    }
    win.free();
  });
}

TEST(Accumulate, FallbackSteadyStateIsAllocationFree) {
  // The fallback's combine buffer and the datatype path's fragment list are
  // per-window scratch: after warmup, repeated accumulates allocate nothing.
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 4096);
    const dt::Datatype strided =
        dt::Datatype::vector(16, 1, 2, dt::Datatype::f64());
    const dt::Datatype contig =
        dt::Datatype::contiguous(16, dt::Datatype::f64());
    std::array<double, 16> vals{};
    vals.fill(1.0);
    double fetched[16] = {0};
    win.lock_all();
    auto cycle = [&] {
      win.accumulate(vals.data(), 16, Elem::f64, RedOp::sum, 0,
                     0);
      win.accumulate(vals.data(), 1, contig, Elem::f64,
                     RedOp::min, 0, 512, 1, strided);
      win.get_accumulate(vals.data(), fetched, 16, Elem::f64,
                         RedOp::sum, 0, 1024);
    };
    for (int i = 0; i < 8; ++i) cycle();  // warm scratch buffers

    const OpCounters before = op_counters();
    for (int i = 0; i < 500; ++i) cycle();
    const OpCounters delta = op_counters().since(before);
    EXPECT_EQ(delta.get(Op::pool_grow), 0u) << "steady state allocated";
    EXPECT_EQ(delta.get(Op::flatten_cache_build), 0u);
    win.unlock_all();
    win.free();
  });
}

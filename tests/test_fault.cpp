// Fault-injection, retry and graceful-degradation coverage: the seeded
// deterministic FaultPlan, the NIC's bounded retransmission with typed
// OpStatus retirement, the window error-handler modes, rank kill/hang
// confinement, dead-lock-holder revocation, and seeded chaos runs of the
// paper's application workloads (hashtable, DSDE).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <vector>

#include "apps/dsde.hpp"
#include "apps/hashtable.hpp"
#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "core/mcs_lock.hpp"
#include "core/window.hpp"
#include "fabric/fabric.hpp"
#include "fabric/progress/progress.hpp"
#include "rdma/network_model.hpp"
#include "rdma/nic.hpp"

using namespace fompi;
using namespace fompi::rdma;
using core::LockType;
using core::Win;
using core::WinConfig;
using fabric::RankCtx;

namespace {

DomainConfig faulty_config(int nranks, std::uint64_t seed, int transients,
                           std::uint64_t horizon, int max_repeats,
                           int budget) {
  DomainConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
  cfg.fault.seed = seed;
  cfg.fault.transient_faults_per_rank = transients;
  cfg.fault.horizon_ops = horizon;
  cfg.fault.max_repeats = max_repeats;
  cfg.fault.retry_budget = budget;
  return cfg;
}

/// Per-rank fault counters harvested from inside a run_ranks body (the
/// counters are thread-local, so each rank snapshots its own).
struct FaultCounters {
  std::uint64_t injected = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

FaultCounters harvest(const OpCounters& before) {
  const OpCounters d = op_counters().since(before);
  return {d.get(Op::fault_injected), d.get(Op::op_retried),
          d.get(Op::op_failed)};
}

}  // namespace

// --- schedule determinism ----------------------------------------------------

TEST(FaultPlan, ScheduleIsDeterministicAndSeedSensitive) {
  const DomainConfig cfg = faulty_config(3, 7, 5, 256, 3, 4);
  Domain a(cfg);
  Domain b(cfg);
  for (int r = 0; r < 3; ++r) {
    const auto& sa = a.nic(r).fault_schedule();
    const auto& sb = b.nic(r).fault_schedule();
    ASSERT_EQ(sa.size(), sb.size());
    ASSERT_EQ(sa.size(), 5u);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].at_op, sb[i].at_op);
      EXPECT_EQ(sa[i].kind, sb[i].kind);
      EXPECT_EQ(sa[i].repeats, sb[i].repeats);
      EXPECT_LT(sa[i].at_op, 256u);
      EXPECT_GE(sa[i].repeats, 1);
      EXPECT_LE(sa[i].repeats, 3);
    }
    // Sorted by op index (the issue path consumes it in order).
    for (std::size_t i = 1; i < sa.size(); ++i) {
      EXPECT_LE(sa[i - 1].at_op, sa[i].at_op);
    }
  }
  // A different seed yields a different schedule, and ranks differ from
  // each other (rank-salted streams).
  DomainConfig other = cfg;
  other.fault.seed = 8;
  Domain c(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i) {
    if (a.nic(0).fault_schedule()[i].at_op !=
        c.nic(0).fault_schedule()[i].at_op) {
      any_diff = true;
    }
    if (a.nic(0).fault_schedule()[i].at_op !=
        a.nic(1).fault_schedule()[i].at_op) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, DisabledPlanSchedulesNothing) {
  DomainConfig cfg;
  cfg.nranks = 2;
  Domain dom(cfg);
  EXPECT_TRUE(dom.nic(0).fault_schedule().empty());
  EXPECT_FALSE(cfg.fault.enabled());
}

// --- bounded retransmission --------------------------------------------------

TEST(FaultRetry, SurvivablePlanRetriesAndDataIsCorrect) {
  // Every site's repeats <= retry_budget: all ops must survive.
  const DomainConfig cfg = faulty_config(2, 11, 4, 32, /*max_repeats=*/3,
                                         /*budget=*/4);
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(1024);
  std::memset(mem.data(), 0, 1024);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1024);

  const OpCounters before = op_counters();
  for (std::uint64_t i = 0; i < 64; ++i) {
    nic.put(1, d, i * 8, &i, 8);
  }
  const FaultCounters fc = harvest(before);

  // The plan's exact arithmetic: per site, injections = min(repeats, b+1),
  // retries = min(repeats, b), failed iff repeats > b. All sites fired
  // (64 ops >= horizon 32).
  std::uint64_t want_inj = 0, want_ret = 0;
  for (const auto& site : nic.fault_schedule()) {
    if (site.kind == FaultKind::latency_spike) {
      want_inj += 1;
      continue;
    }
    want_inj += static_cast<std::uint64_t>(
        std::min(site.repeats, cfg.fault.retry_budget + 1));
    want_ret += static_cast<std::uint64_t>(
        std::min(site.repeats, cfg.fault.retry_budget));
  }
  EXPECT_EQ(fc.injected, want_inj);
  EXPECT_EQ(fc.retried, want_ret);
  EXPECT_EQ(fc.failed, 0u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::uint64_t got = 0;
    std::memcpy(&got, mem.data() + i * 8, 8);
    EXPECT_EQ(got, i) << "put " << i << " lost despite surviving the plan";
  }
}

TEST(FaultRetry, ExhaustedBudgetRetiresTypedStatus) {
  // repeats drawn from [1, 8] with budget 1: some sites must exceed it.
  const DomainConfig cfg = faulty_config(2, 13, 6, 64, /*max_repeats=*/8,
                                         /*budget=*/1);
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(1024);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1024);

  int transient_over_budget = 0;
  for (const auto& site : nic.fault_schedule()) {
    if (site.kind != FaultKind::latency_spike &&
        site.repeats > cfg.fault.retry_budget) {
      ++transient_over_budget;
    }
  }
  ASSERT_GT(transient_over_budget, 0) << "seed produced no exhausting site";

  std::uint64_t v = 1;
  int failed = 0;
  for (int i = 0; i < 128; ++i) {
    const Handle h = nic.put_nb(1, d, 0, &v, 8);
    const OpStatus st = nic.wait_status(h);
    if (st != OpStatus::ok) {
      ++failed;
      EXPECT_TRUE(st == OpStatus::timeout || st == OpStatus::cq_error)
          << "unexpected status " << to_string(st);
    }
  }
  // Sites can shadow each other when a permanent failure consumes several
  // schedule entries at one index, so failures are bounded by — not always
  // equal to — the over-budget site count.
  EXPECT_GT(failed, 0);
  EXPECT_LE(failed, transient_over_budget);
  EXPECT_EQ(nic.explicit_outstanding(), 0u) << "failed slots leaked";
}

TEST(FaultRetry, WaitTwiceOnFailedHandleReturnsRetired) {
  // Satellite (a): waiting twice on a failed handle must yield a typed
  // status both times — first the failure, then `retired` via the ABA tag —
  // never a crash or a hang.
  const DomainConfig cfg = faulty_config(2, 13, 6, 8, /*max_repeats=*/8,
                                         /*budget=*/0);
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);

  std::uint64_t v = 1;
  Handle failed = kDoneHandle;
  for (int i = 0; i < 16 && failed == kDoneHandle; ++i) {
    const Handle h = nic.put_nb(1, d, 0, &v, 8);
    OpStatus st = OpStatus::ok;
    EXPECT_TRUE(nic.test_status(h, &st));
    if (st == OpStatus::timeout || st == OpStatus::cq_error) failed = h;
  }
  ASSERT_NE(failed, kDoneHandle) << "budget 0 must fail the first fault";

  // First wait on the (already retired) handle: the slot is gone, and the
  // ABA tag turns the stale handle into `retired` instead of aliasing a
  // recycled slot.
  EXPECT_EQ(nic.wait_status(failed), OpStatus::retired);
  EXPECT_EQ(nic.wait_status(failed), OpStatus::retired);
  OpStatus st = OpStatus::ok;
  EXPECT_TRUE(nic.test_status(failed, &st));
  EXPECT_EQ(st, OpStatus::retired);
}

TEST(FaultRetry, LegacyWaitThrowsTypedErrorOnFailure) {
  const DomainConfig cfg = faulty_config(2, 13, 6, 8, /*max_repeats=*/8,
                                         /*budget=*/0);
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);

  std::uint64_t v = 1;
  bool threw = false;
  for (int i = 0; i < 16 && !threw; ++i) {
    const Handle h = nic.put_nb(1, d, 0, &v, 8);
    try {
      nic.wait(h);
    } catch (const Error& e) {
      threw = true;
      EXPECT_TRUE(e.err_class() == ErrClass::timeout ||
                  e.err_class() == ErrClass::cq);
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(nic.explicit_outstanding(), 0u);
}

TEST(FaultRetry, GsyncStatusAggregatesImplicitFailures) {
  const DomainConfig cfg = faulty_config(2, 13, 6, 16, /*max_repeats=*/8,
                                         /*budget=*/0);
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);

  std::uint64_t v = 1;
  for (int i = 0; i < 32; ++i) nic.put_nbi(1, d, 0, &v, 8);
  const OpStatus st = nic.gsync_status();
  EXPECT_TRUE(st == OpStatus::timeout || st == OpStatus::cq_error)
      << "status " << to_string(st);
  // The failure was consumed: the next epoch starts clean.
  nic.put_nbi(1, d, 0, &v, 8);
  EXPECT_EQ(nic.gsync_status(), OpStatus::ok);
}

// --- window error-handler modes ----------------------------------------------

TEST(WinErrMode, ErrorsReturnRecordsAndFatalThrowsOnDeadPeer) {
  // One run, two windows with opposite error-handler modes. A kill plan
  // (not a transient one) keeps the failure deterministic: once rank 1 is
  // dead, every write toward it retires peer_dead.
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 40;
  opts.errors_return = true;
  fabric::run_ranks(
      2,
      [](RankCtx& ctx) {
        WinConfig ret_cfg;
        ret_cfg.err_mode = core::ErrMode::errors_return;
        Win ret_win = Win::allocate(ctx, 256, ret_cfg);
        Win fatal_win = Win::allocate(ctx, 256);  // default errors_are_fatal
        ret_win.lock_all();
        fatal_win.lock_all();
        std::uint64_t v = 1;
        if (ctx.rank() == 1) {
          for (int i = 0; i < 1000; ++i) {
            ret_win.put(&v, 8, 0, 0);
            ret_win.flush(0);
          }
          FAIL() << "rank 1 must have been killed";
        }
        while (ret_win.peer_alive(1)) ctx.yield_check();

        // errors_return: the plain calls record instead of throwing.
        ret_win.put(&v, 8, 1, 0);
        ret_win.flush(1);
        EXPECT_EQ(ret_win.last_error(), OpStatus::peer_dead);
        ret_win.clear_last_error();
        EXPECT_EQ(ret_win.last_error(), OpStatus::ok);
        // The checked variants return the status under any mode.
        ret_win.put(&v, 8, 1, 0);
        EXPECT_EQ(ret_win.flush_checked(1), OpStatus::peer_dead);
        EXPECT_EQ(ret_win.flush_all_checked(), OpStatus::ok)
            << "failure already consumed";

        // errors_are_fatal: the same situation raises a typed Error.
        fatal_win.put(&v, 8, 1, 0);
        try {
          fatal_win.flush(1);
          ADD_FAILURE() << "errors_are_fatal flush must throw";
        } catch (const Error& e) {
          EXPECT_EQ(e.err_class(), ErrClass::peer_dead);
        }
        // No unlock_all()/free(): collective with a dead rank.
      },
      opts);
}

// --- rank kill / hang confinement ---------------------------------------------

TEST(FaultKill, KilledRankConfinedUnderErrorsReturn) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 4;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 30;
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      4,
      [&](RankCtx& ctx) {
        WinConfig wcfg;
        wcfg.err_mode = core::ErrMode::errors_return;
        Win win = Win::allocate(ctx, 256, wcfg);
        win.lock_all();
        std::uint64_t v = static_cast<std::uint64_t>(ctx.rank());
        if (ctx.rank() == 1) {
          // Dies mid-loop at its 30th issued op; RankKilledError unwinds
          // this thread quietly (errors_return at fleet scope).
          for (int i = 0; i < 1000; ++i) {
            win.put(&v, 8, 0, 0);
            win.flush(0);
          }
          FAIL() << "rank 1 must have been killed";
        }
        // Survivors: watch the liveness table, then keep operating on the
        // live part of the fleet and observe typed peer_dead on the dead
        // target. No collectives past this point (rank 1 is gone).
        while (win.peer_alive(1)) ctx.yield_check();
        int live_peer = (ctx.rank() + 1) % 4;
        if (live_peer == 1) live_peer = 2;
        std::uint64_t ok_val = 7;
        win.put(&ok_val, 8, live_peer, 0);
        EXPECT_EQ(win.flush_checked(live_peer), OpStatus::ok);
        win.put(&ok_val, 8, 1, 0);  // dead target
        EXPECT_EQ(win.flush_checked(1), OpStatus::peer_dead);
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 3);
}

TEST(FaultKill, KillsVectorFoldsEarliestSitePerRank) {
  // Pure plan arithmetic: kill_at() folds the legacy kill_rank pair and
  // the kills list to each rank's earliest scheduled death.
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.kills = {{1, 30}, {2, 50}, {1, 80}};
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.kill_at(1), 30u);
  EXPECT_EQ(plan.kill_at(2), 50u);
  EXPECT_EQ(plan.kill_at(0), ~std::uint64_t{0});
  plan.kill_rank = 2;
  plan.kill_at_op = 10;
  EXPECT_EQ(plan.kill_at(2), 10u) << "earliest site must win";
}

TEST(FaultKill, KillsVectorConfinesStaggeredDoubleDeath) {
  // Two scheduled deaths at different op counts: each rank dies at its own
  // site, survivors observe both typed, and the lowest-alive election
  // view shifts monotonically as the deaths land.
  fabric::FabricOptions opts;
  opts.domain.nranks = 4;
  opts.domain.ranks_per_node = 1;
  // Sites sit well past the collective window setup (rank 0 roots the
  // allocation exchange, so its op budget runs ahead of the others).
  opts.domain.fault.kills = {{0, 400}, {2, 460}};
  opts.errors_return = true;
  std::atomic<int> survivors{0};
  fabric::run_ranks(
      4,
      [&](RankCtx& ctx) {
        WinConfig wcfg;
        wcfg.err_mode = core::ErrMode::errors_return;
        Win win = Win::allocate(ctx, 256, wcfg);
        win.lock_all();
        EXPECT_EQ(ctx.fabric().lowest_alive(), 0);
        ctx.barrier();  // everyone holds the window before anyone can die
        std::uint64_t v = static_cast<std::uint64_t>(ctx.rank());
        if (ctx.rank() == 0 || ctx.rank() == 2) {
          const int target = ctx.rank() == 0 ? 1 : 3;
          for (int i = 0; i < 1000; ++i) {
            win.put(&v, 8, target, 0);
            win.flush(target);
          }
          FAIL() << "rank " << ctx.rank() << " must have been killed";
        }
        while (win.peer_alive(0) || win.peer_alive(2)) ctx.yield_check();
        EXPECT_EQ(ctx.fabric().lowest_alive(), 1)
            << "election view must track the fail-stop liveness table";
        // Both dead targets answer typed; the surviving pair keeps serving.
        std::uint64_t ok_val = 7;
        for (const int dead : {0, 2}) {
          win.put(&ok_val, 8, dead, 0);
          EXPECT_EQ(win.flush_checked(dead), OpStatus::peer_dead);
        }
        const int live_peer = ctx.rank() == 1 ? 3 : 1;
        win.put(&ok_val, 8, live_peer, 0);
        EXPECT_EQ(win.flush_checked(live_peer), OpStatus::ok);
        survivors.fetch_add(1);
      },
      opts);
  EXPECT_EQ(survivors.load(), 2);
}

TEST(FaultKill, KilledRankAbortsFleetUnderErrorsAreFatal) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 5;
  // errors_return stays false: the death must abort everyone.
  try {
    fabric::run_ranks(
        2,
        [](RankCtx& ctx) {
          Win win = Win::allocate(ctx, 256);
          win.lock_all();
          std::uint64_t v = 1;
          if (ctx.rank() == 1) {
            for (int i = 0; i < 1000; ++i) {
              win.put(&v, 8, 0, 0);
              win.flush(0);
            }
          }
          ctx.barrier();  // rank 0 parks here until the abort arrives
        },
        opts);
    FAIL() << "fleet must abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::peer_dead);
  }
}

TEST(FaultKill, HangWatchdogUnwindsSilentHang) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 5;
  opts.domain.fault.hang_instead_of_kill = true;
  opts.hang_timeout_ns = 50'000'000;  // 50 ms
  try {
    fabric::run_ranks(
        2,
        [](RankCtx& ctx) {
          Win win = Win::allocate(ctx, 256);
          win.lock_all();
          std::uint64_t v = 1;
          if (ctx.rank() == 1) {
            for (int i = 0; i < 1000; ++i) {
              win.put(&v, 8, 0, 0);
              win.flush(0);
            }
          }
          ctx.barrier();  // never satisfied: rank 1 is silently parked
        },
        opts);
    FAIL() << "watchdog must abort the hung fleet";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::timeout);
  }
}

// --- dead-lock-holder recovery -------------------------------------------------

TEST(FaultRecovery, KilledExclusiveLockHolderIsRevoked) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 3;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  // Window setup ends at ~op 16 and the exclusive lock (4 protocol AMOs +
  // the owner-word swap) at op 20; op 40 is safely inside the put loop, so
  // the rank dies holding a fully-recorded lock.
  opts.domain.fault.kill_at_op = 40;
  opts.errors_return = true;
  std::atomic<bool> recovered{false};
  fabric::run_ranks(
      3,
      [&](RankCtx& ctx) {
        WinConfig wcfg;
        wcfg.err_mode = core::ErrMode::errors_return;
        Win win = Win::allocate(ctx, 256, wcfg);
        if (ctx.rank() == 1) {
          // Take the exclusive lock on rank 2, then die holding it.
          win.lock(LockType::exclusive, 2);
          std::uint64_t v = 1;
          for (int i = 0; i < 1000; ++i) {
            win.put(&v, 8, 2, 0);
            win.flush(2);
          }
          FAIL() << "rank 1 must have been killed";
        }
        if (ctx.rank() == 0) {
          // Wait for the death, then acquire the very lock the dead rank
          // holds: the spinner must revoke it via the owner word instead of
          // spinning forever.
          while (win.peer_alive(1)) ctx.yield_check();
          EXPECT_EQ(win.lock_checked(LockType::exclusive, 2), OpStatus::ok);
          std::uint64_t v = 42;
          win.put(&v, 8, 2, 0);
          EXPECT_EQ(win.flush_checked(2), OpStatus::ok);
          EXPECT_EQ(win.unlock_checked(2), OpStatus::ok);
          recovered.store(true);
          int done = 1;
          ctx.send(2, /*tag=*/9, &done, sizeof done);
        }
        if (ctx.rank() == 2) {
          int done = 0;
          ctx.recv(0, /*tag=*/9, &done, sizeof done);
          EXPECT_EQ(done, 1);
        }
        // No win.free(): it is collective and rank 1 is dead.
      },
      opts);
  EXPECT_TRUE(recovered.load());
}

TEST(FaultRecovery, KilledMcsHolderLockIsStolen) {
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 25;  // after acquire()'s tail SWAP
  opts.errors_return = true;
  std::atomic<bool> stolen{false};
  fabric::run_ranks(
      2,
      [&](RankCtx& ctx) {
        WinConfig wcfg;
        wcfg.err_mode = core::ErrMode::errors_return;
        Win win = Win::allocate(ctx, 64, wcfg);
        win.lock_all();
        core::McsLock lock(win, /*master=*/0);
        if (ctx.rank() == 1) {
          ctx.barrier();
          lock.acquire();
          ctx.barrier();  // rank 0 won't contend before we hold it
          std::uint64_t v = 1;
          for (int i = 0; i < 1000; ++i) {
            win.put(&v, 8, 0, 32);
            win.flush(0);
          }
          FAIL() << "rank 1 must have been killed";
        }
        ctx.barrier();
        ctx.barrier();
        while (win.peer_alive(1)) ctx.yield_check();
        // The dead holder's frozen flag word reads 0 ("held the lock"), so
        // the queued waiter steals it instead of waiting forever.
        lock.acquire();
        stolen.store(true);
        lock.release();
        // No unlock_all()/free(): collective with a dead rank.
      },
      opts);
  EXPECT_TRUE(stolen.load());
}

// --- seeded chaos: application workloads ---------------------------------------

namespace {

/// One hashtable round under a survivable fault plan; returns the summed
/// fault counters over all ranks. Workload correctness is asserted inside.
FaultCounters chaos_hashtable_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  constexpr int kKeysPerRank = 48;
  fabric::FabricOptions opts;
  opts.domain = faulty_config(kRanks, seed, /*transients=*/4,
                              /*horizon=*/64, /*max_repeats=*/3,
                              /*budget=*/4);
  std::array<FaultCounters, kRanks> per_rank{};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        const OpCounters before = op_counters();
        apps::DistHashtable ht(ctx, apps::HtBackend::rma, /*table_slots=*/64,
                               /*heap_slots=*/256);
        std::vector<std::uint64_t> keys;
        for (int i = 0; i < kKeysPerRank; ++i) {
          keys.push_back(
              static_cast<std::uint64_t>(ctx.rank()) * 1000 + 1 + i);
        }
        ht.batch_insert(ctx, keys);
        EXPECT_EQ(ht.global_count(ctx),
                  static_cast<std::uint64_t>(kRanks * kKeysPerRank))
            << "inserts lost under the survivable fault plan";
        for (std::uint64_t k : keys) EXPECT_TRUE(ht.contains(k));
        ht.destroy(ctx);
        per_rank[static_cast<std::size_t>(ctx.rank())] = harvest(before);
      },
      opts);
  FaultCounters total;
  for (const auto& fc : per_rank) {
    total.injected += fc.injected;
    total.retried += fc.retried;
    total.failed += fc.failed;
  }
  return total;
}

/// One DSDE round (RMA protocol) under a survivable fault plan.
FaultCounters chaos_dsde_round(std::uint64_t seed) {
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain = faulty_config(kRanks, seed, /*transients=*/4,
                              /*horizon=*/32, /*max_repeats=*/3,
                              /*budget=*/4);
  std::array<FaultCounters, kRanks> per_rank{};
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        const OpCounters before = op_counters();
        for (int round = 0; round < 3; ++round) {
          const auto sends = apps::dsde_random_workload(
              ctx.rank(), kRanks, /*k=*/2, /*seed=*/seed + round);
          const auto recvd =
              apps::dsde_exchange(ctx, apps::DsdeProto::rma, sends);
          const auto want =
              apps::dsde_exchange(ctx, apps::DsdeProto::alltoall, sends);
          EXPECT_EQ(recvd.size(), want.size())
              << "DSDE dropped messages under the survivable plan";
        }
        per_rank[static_cast<std::size_t>(ctx.rank())] = harvest(before);
      },
      opts);
  FaultCounters total;
  for (const auto& fc : per_rank) {
    total.injected += fc.injected;
    total.retried += fc.retried;
    total.failed += fc.failed;
  }
  return total;
}

}  // namespace

TEST(Chaos, HashtableDeterministicAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const FaultCounters a = chaos_hashtable_round(seed);
    const FaultCounters b = chaos_hashtable_round(seed);
    EXPECT_EQ(a, b) << "seed " << seed
                    << ": fault counters must be a pure function of the seed";
    EXPECT_GT(a.injected, 0u) << "seed " << seed << " injected nothing";
    EXPECT_EQ(a.failed, 0u) << "survivable plan must not fail ops";
  }
}

TEST(Chaos, DsdeDeterministicAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const FaultCounters a = chaos_dsde_round(seed);
    const FaultCounters b = chaos_dsde_round(seed);
    EXPECT_EQ(a, b) << "seed " << seed
                    << ": fault counters must be a pure function of the seed";
    EXPECT_GT(a.injected, 0u) << "seed " << seed << " injected nothing";
    EXPECT_EQ(a.failed, 0u) << "survivable plan must not fail ops";
  }
}

TEST(Chaos, HashtableUnderDeferredDeliveryWithFaults) {
  // Satellite (c): the weakest legal delivery mode composed with transient
  // faults — the TSan CI pass runs this to hunt ordering races on the
  // retry/backoff paths.
  constexpr int kRanks = 4;
  fabric::FabricOptions opts;
  opts.domain = faulty_config(kRanks, 33, /*transients=*/4, /*horizon=*/64,
                              /*max_repeats=*/3, /*budget=*/4);
  opts.domain.delivery = Delivery::deferred;
  fabric::run_ranks(
      kRanks,
      [&](RankCtx& ctx) {
        apps::DistHashtable ht(ctx, apps::HtBackend::rma, /*table_slots=*/64,
                               /*heap_slots=*/256);
        std::vector<std::uint64_t> keys;
        for (int i = 0; i < 32; ++i) {
          keys.push_back(static_cast<std::uint64_t>(ctx.rank()) * 500 + 1 + i);
        }
        ht.batch_insert(ctx, keys);
        EXPECT_EQ(ht.global_count(ctx), static_cast<std::uint64_t>(kRanks) * 32);
        ht.destroy(ctx);
      },
      opts);
}

// --- dead peers inside collectives (PR 7) -------------------------------------

namespace {

/// Loops tree-path collectives until the seeded kill fires. The killed
/// rank unwinds with RankKilledError (swallowed by errors_return at fleet
/// scope). A survivor that waits directly on the dead rank detects the
/// death and raises a typed peer_dead Error; letting it escape the body
/// aborts the fleet, which rescues ranks blocked on live-but-aborted
/// writers (they retire with ErrClass::internal from yield_check). The
/// whole run must terminate with the typed peer_dead as the first error.
template <class Body>
void collective_kill_run(int nranks, int kill_rank, std::uint64_t kill_at,
                         Body&& body) {
  fabric::FabricOptions opts;
  opts.domain.nranks = nranks;
  opts.domain.ranks_per_node = 1;
  opts.domain.fault.kill_rank = kill_rank;
  opts.domain.fault.kill_at_op = kill_at;
  opts.coll.flat_cutoff = 0;  // force the put/notify trees
  opts.errors_return = true;
  std::atomic<int> typed_peer_dead{0};
  std::atomic<bool> completed{false};
  try {
    fabric::run_ranks(
        nranks,
        [&](RankCtx& ctx) {
          try {
            for (int round = 0; round < 1000; ++round) body(ctx, round);
            completed.store(true);
          } catch (const RankKilledError&) {
            throw;  // the killed rank's quiet unwind
          } catch (const Error& e) {
            if (e.err_class() == ErrClass::peer_dead) {
              typed_peer_dead.fetch_add(1);
            } else {
              EXPECT_EQ(e.err_class(), ErrClass::internal)
                  << "rank " << ctx.rank() << ": " << e.what();
            }
            throw;  // escape so the fleet aborts instead of hanging peers
          }
        },
        opts);
    FAIL() << "run_ranks must rethrow the collective abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::peer_dead) << e.what();
  }
  EXPECT_FALSE(completed.load())
      << "no rank may finish all rounds despite the kill plan";
  EXPECT_GE(typed_peer_dead.load(), 1)
      << "at least one survivor must observe the typed peer_dead status";
}

}  // namespace

TEST(CollectiveFault, DeadRootAbortsBcastWithTypedError) {
  collective_kill_run(4, /*kill_rank=*/0, /*kill_at=*/37,
                      [](RankCtx& ctx, int round) {
                        std::uint64_t v[64] = {};
                        if (ctx.rank() == 0) v[0] = 1 + round;
                        ctx.fabric().coll().bcast(ctx.rank(), 0, v, 64);
                      });
}

TEST(CollectiveFault, DeadInteriorRankOrphansItsSubtree) {
  // p = 8, kill rank 4: in the binomial fan-out from root 0, rank 4
  // forwards to 5, 6 — its subtree is orphaned and the parent side (rank
  // 0's flag wait in later rounds) also observes the death. Everyone
  // alive must retire with peer_dead, not hang.
  collective_kill_run(8, /*kill_rank=*/4, /*kill_at=*/53,
                      [](RankCtx& ctx, int round) {
                        std::uint64_t v[64] = {};
                        if (ctx.rank() == 0) v[0] = 1 + round;
                        ctx.fabric().coll().bcast(ctx.rank(), 0, v, 64);
                      });
}

TEST(CollectiveFault, DeadPeerAbortsAlltoallvWithTypedError) {
  collective_kill_run(
      4, /*kill_rank=*/2, /*kill_at=*/61, [](RankCtx& ctx, int round) {
        const int p = ctx.nranks();
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 2);
        std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
          sdispls[static_cast<std::size_t>(j)] =
              static_cast<std::uint64_t>(j) * 2;
        }
        std::vector<std::uint64_t> src(static_cast<std::size_t>(p) * 2,
                                       static_cast<std::uint64_t>(round));
        std::vector<std::uint64_t> dst, recvcounts, rdispls;
        ctx.fabric().coll().alltoallv(ctx.rank(), src.data(), counts.data(),
                                      sdispls.data(), dst, recvcounts,
                                      rdispls);
      });
}

// --- progress-engine chaos: peer death under a suspended fiber fleet ----------

namespace {

/// Loops request-based fetch-and-ops at rank 1, parking on each handle,
/// until one retires with a typed failure.
class ChaosAmoFiber final : public fabric::progress::Fiber {
 public:
  ChaosAmoFiber(Win& win, int idx) : win_(win), idx_(idx) {}
  OpStatus final_status = OpStatus::ok;
  int completed = 0;

 protected:
  void step(fabric::progress::Scheduler& s) override {
    static constexpr std::uint64_t kOne = 1;
    FOMPI_FIBER_BEGIN();
    for (;;) {
      req_ = win_.rfetch_and_op(&kOne, &fetched_, Elem::u64, RedOp::sum, 1,
                                static_cast<std::size_t>(idx_ % 8) * 8);
      if (req_.handles().empty()) {
        // Eager retirement (issue path observed the death first).
        req_.dismiss();
        final_status = win_.last_error();
        break;
      }
      FOMPI_FIBER_AWAIT(s, req_.handles()[0]);
      req_.dismiss();
      final_status = wake_status();
      if (final_status != OpStatus::ok) break;
      ++completed;
    }
    FOMPI_FIBER_END();
  }

 private:
  Win& win_;
  int idx_;
  core::RmaRequest req_;
  alignas(8) std::uint64_t fetched_ = 0;
};

/// Parks on a notify tag that is never posted; only the typed death of
/// the awaited source can wake it.
class ChaosNotifyFiber final : public fabric::progress::Fiber {
 public:
  ChaosNotifyFiber(fabric::progress::NotifyPlane& plane, std::uint64_t tag)
      : plane_(plane), tag_(tag) {}
  OpStatus final_status = OpStatus::ok;

 protected:
  void step(fabric::progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    FOMPI_FIBER_AWAIT_NOTIFY(s, plane_, tag_, /*source=*/1);
    final_status = wake_status();
    FOMPI_FIBER_END();
  }

 private:
  fabric::progress::NotifyPlane& plane_;
  std::uint64_t tag_;
};

}  // namespace

TEST(FaultChaos, SuspendedFiberFleetUnwindsTypedOnPeerDeath) {
  // >= 32 fibers suspended mid-pipeline when the peer dies: 16 parked on
  // in-flight AMO completions, 16 on notify tags that will never arrive.
  // All of them must resume with the typed peer_dead (no hang), run()
  // must return, and no completion slot may leak.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    fabric::FabricOptions opts;
    opts.domain.nranks = 2;
    opts.domain.ranks_per_node = 1;
    opts.domain.inject = Injection::model;  // real in-flight windows
    opts.domain.fault.seed = seed;
    opts.domain.fault.kill_rank = 1;
    // Past window setup + notify_enable; varies the death point per seed.
    opts.domain.fault.kill_at_op = 120 + 7 * seed;
    opts.errors_return = true;
    std::atomic<int> typed{0};
    std::atomic<std::size_t> leaked{1};
    fabric::run_ranks(
        2,
        [&](RankCtx& ctx) {
          WinConfig wcfg;
          wcfg.err_mode = core::ErrMode::errors_return;
          Win win = Win::allocate(ctx, 4096, wcfg);
          win.lock_all();
          win.notify_enable(ctx, 64);
          if (ctx.rank() == 1) {
            alignas(8) std::uint64_t v = 1;
            (void)win.put_notify(&v, 8, 0, 0, /*tag=*/5);
            for (int i = 0; i < 100000; ++i) {
              win.put(&v, 8, 0, 0);
              win.flush(0);
            }
            FAIL() << "rank 1 must have been killed";
          }
          fabric::progress::Scheduler sched(ctx.fabric(), ctx.rank());
          std::vector<ChaosAmoFiber*> amos;
          std::vector<ChaosNotifyFiber*> waits;
          for (int i = 0; i < 16; ++i) {
            amos.push_back(&sched.spawn<ChaosAmoFiber>(win, i));
          }
          for (int i = 0; i < 16; ++i) {
            waits.push_back(&sched.spawn<ChaosNotifyFiber>(
                *win.notify_plane(), 1000u + static_cast<std::uint64_t>(i)));
          }
          sched.run();  // returning at all means nothing hung
          for (const auto* f : amos) {
            if (f->final_status == OpStatus::peer_dead) ++typed;
          }
          for (const auto* f : waits) {
            if (f->final_status == OpStatus::peer_dead) ++typed;
          }
          leaked = sched.nic().explicit_outstanding();
          // No unlock_all()/free(): collective with a dead rank.
        },
        opts);
    EXPECT_EQ(typed.load(), 32) << "seed " << seed;
    EXPECT_EQ(leaked.load(), 0u) << "seed " << seed;
  }
}

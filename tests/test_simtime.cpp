// Discrete-event engine and the scaling simulations: determinism, event
// ordering, and the shape properties the paper's figures rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "simtime/des.hpp"
#include "simtime/sim_apps.hpp"
#include "simtime/sim_coll.hpp"
#include "simtime/sim_dsde.hpp"
#include "simtime/sim_kv.hpp"
#include "simtime/sim_overlap.hpp"
#include "simtime/sim_sync.hpp"

using namespace fompi;
using namespace fompi::sim;

TEST(Des, EventsRunInTimeOrder) {
  Sim sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] {
    order.push_back(2);
    sim.after(0.5, [&] { order.push_back(25); });
  });
  const double end = sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 25, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
  EXPECT_EQ(sim.events_processed(), 4u);
}

TEST(Des, FifoTieBreakAtEqualTimes) {
  Sim sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Des, SchedulingIntoThePastRejected) {
  Sim sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), Error);
}

TEST(Des, NoiseSamplesAreNonNegativeAndSparse) {
  Noise n{0.1, 20.0};
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = n.sample(rng);
    EXPECT_GE(v, 0.0);
    if (v > 0) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.1, 0.02);
  Noise off{};
  EXPECT_DOUBLE_EQ(off.sample(rng), 0.0);
}

TEST(SimBarrier, MatchesLogPScaling) {
  SyncParams sp;
  sp.msg_latency_us = 2.484;  // round cost = 2.9us with the 416ns overhead
  sp.per_msg_overhead_us = 0.416;
  double prev = 0;
  for (int p : {2, 8, 64, 1024, 8192}) {
    const double t = simulate_dissemination_barrier(p, sp);
    const double rounds = std::ceil(std::log2(p));
    EXPECT_NEAR(t, 2.9 * rounds, 0.5) << "p=" << p;
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(simulate_dissemination_barrier(1, sp), 0.0);
}

TEST(SimBarrier, Deterministic) {
  SyncParams sp;
  sp.seed = 17;
  sp.noise = Noise{0.05, 30.0};
  const double a = simulate_dissemination_barrier(512, sp);
  const double b = simulate_dissemination_barrier(512, sp);
  EXPECT_DOUBLE_EQ(a, b);
  sp.seed = 18;
  EXPECT_NE(a, simulate_dissemination_barrier(512, sp));
}

TEST(SimPscw, NearlyConstantInP) {
  // Fig 6c: an ideal PSCW ring is O(1) in the process count.
  SyncParams sp;
  const double t64 = simulate_pscw_ring(64, sp);
  const double t64k = simulate_pscw_ring(65536, sp);
  EXPECT_GT(t64, 0.0);
  EXPECT_LT(t64k, t64 * 1.5) << "PSCW ring must not grow with p";
}

TEST(SimPscw, CrayComparatorGrowsWithP) {
  const auto s1 = simulate_pscw_all(64, 42);
  const auto s2 = simulate_pscw_all(65536, 42);
  EXPECT_LT(s1.fompi_us, s1.craympi_us);
  EXPECT_GT(s2.craympi_us / s2.fompi_us, 10.0)
      << "the gap must widen with p (Fig 6c)";
}

TEST(SimFence, OrderingOfTransportsMatchesFig6b) {
  for (int p : {64, 1024, 8192}) {
    const auto s = simulate_fence_all(p, 42);
    EXPECT_LT(s.upc_us, s.fompi_us * 1.2) << "UPC barrier is fastest/close";
    EXPECT_GT(s.caf_us, s.fompi_us) << "CAF sync_all is slowest (Fig 6b)";
    EXPECT_GT(s.craympi_us, s.fompi_us);
  }
}

TEST(SimDsde, RmaWinsAndAlltoallLosesAtScale) {
  const auto s = simulate_dsde(8192);
  EXPECT_LT(s.fompi_rma_us, s.nbx_us * 1.1)
      << "RMA must be competitive with NBX (Fig 7b)";
  EXPECT_LT(s.nbx_us, s.reduce_scatter_us);
  EXPECT_LT(s.reduce_scatter_us, s.alltoall_us);
  EXPECT_LT(s.fompi_rma_us, s.mpi22_rma_us);
  // The improvement over dense protocols spans orders of magnitude.
  EXPECT_GT(s.alltoall_us / s.fompi_rma_us, 50.0);
}

TEST(SimDsde, SmallScaleStillOrdersRmaFirst) {
  const auto s = simulate_dsde(8);
  EXPECT_LT(s.fompi_rma_us, s.mpi22_rma_us);
  EXPECT_GT(s.alltoall_us, 0.0);
}

TEST(SimHashtable, ShapesMatchFig7a) {
  // Intra-node: everything is fast and close together.
  const auto intra = simulate_hashtable(2);
  EXPECT_GT(intra.fompi_ginserts, intra.mpi1_ginserts * 0.5);
  // At scale: foMPI ~ UPC, both orders of magnitude above MPI-1.
  const auto large = simulate_hashtable(32768);
  EXPECT_NEAR(large.upc_ginserts / large.fompi_ginserts, 1.0, 0.2);
  EXPECT_GT(large.fompi_ginserts / large.mpi1_ginserts, 20.0);
  // The paper's headline: MPI-1 at 32k cores stays below the single-node
  // insert rate of the RMA version.
  const auto node = simulate_hashtable(32);
  EXPECT_LT(large.mpi1_ginserts, node.fompi_ginserts * 2.0);
  // RMA throughput grows with p.
  EXPECT_GT(large.fompi_ginserts, intra.fompi_ginserts * 100);
}

TEST(SimFft, OverlapGivesFoMpiTheLead) {
  for (int p : {1024, 4096, 16384, 65536}) {
    const auto s = simulate_fft(p);
    EXPECT_GT(s.fompi_gflops, s.mpi1_gflops) << "p=" << p;
    EXPECT_GE(s.fompi_gflops, s.upc_gflops) << "p=" << p;
  }
  // The gap widens as communication dominates (Fig 7c annotations grow
  // from ~18% at 1k to ~100% at 64k).
  const auto s1 = simulate_fft(1024);
  const auto s64 = simulate_fft(65536);
  const double gain1 = s1.fompi_gflops / s1.mpi1_gflops;
  const double gain64 = s64.fompi_gflops / s64.mpi1_gflops;
  EXPECT_GT(gain64, gain1);
  EXPECT_GT(gain64, 1.5);  // ~2x at 64k in the paper
  EXPECT_LT(gain1, 1.6);
}

TEST(SimMilc, WeakScalingImprovementInPaperBand) {
  // Fig 8: foMPI/UPC improve the full application by roughly 5-15%,
  // growing with scale; UPC and foMPI are nearly identical.
  for (int p : {4096, 65536, 524288}) {
    const auto s = simulate_milc(p);
    const double gain = (s.mpi1_s - s.fompi_s) / s.mpi1_s;
    EXPECT_GT(gain, 0.04) << "p=" << p;
    EXPECT_LT(gain, 0.25) << "p=" << p;
    EXPECT_NEAR(s.upc_s / s.fompi_s, 1.0, 0.05);
  }
  const auto small = simulate_milc(4096);
  const auto large = simulate_milc(524288);
  EXPECT_GT(large.mpi1_s, small.mpi1_s);  // noise + allreduce grow
}

TEST(SimMsgRate, UnbatchedMatchesFig5bPlateau) {
  // Fig 5b: 8-byte put message rate plateaus around 2.4 Mmsgs/s, set by
  // the per-op processor->NIC overhead.
  MsgRateParams p;
  p.batch = 1;
  const double mops = simulate_msgrate_mops(p);
  EXPECT_GT(mops, 1.8);
  EXPECT_LT(mops, 3.0);
}

TEST(SimMsgRate, DoorbellBatchingAmortizesOverheadAtLeast2x) {
  MsgRateParams unbatched;
  unbatched.batch = 1;
  MsgRateParams batched;  // default batch = 64
  const double u = simulate_msgrate_mops(unbatched);
  const double b = simulate_msgrate_mops(batched);
  EXPECT_GE(b, 2.0 * u) << "batched " << b << " vs unbatched " << u;
  // The batch can never beat the pure software issue rate (1/sw_issue_ns).
  EXPECT_LT(b, 1e3 / batched.sw_issue_ns);
}

TEST(SimMsgRate, ChannelsMonotonicallyRaiseTheBatchedRate) {
  double prev = 0.0;
  for (int ch : {1, 2, 4}) {
    MsgRateParams p;
    p.channels = ch;
    const double mops = simulate_msgrate_mops(p);
    EXPECT_GT(mops, prev) << "channels=" << ch;
    prev = mops;
  }
  // Diminishing returns: the chain walk is only part of the batch cost,
  // so infinite channels cap out at overhead + sw*batch.
  MsgRateParams wide;
  wide.channels = 1 << 20;
  const double cap =
      wide.batch / (wide.doorbell_overhead_ns +
                    wide.sw_issue_ns * wide.batch) * 1e3;
  EXPECT_LE(simulate_msgrate_mops(wide), cap * 1.001);
}

// --- collectives at scale (PR 7) --------------------------------------------

TEST(SimColl, BcastScalesAsLogPUpTo512k) {
  // Doubling p adds exactly one binomial round: the latency series over
  // p = 2^k must be affine in k, all the way to 512k processes.
  CollParams c;
  c.nbytes = 64;
  const double step = simulate_coll_us(CollOp::bcast, 4, c) -
                      simulate_coll_us(CollOp::bcast, 2, c);
  ASSERT_GT(step, 0.0);
  for (int k = 2; (1 << k) <= (1 << 19); ++k) {
    const double got = simulate_coll_us(CollOp::bcast, 1 << k, c);
    const double prev = simulate_coll_us(CollOp::bcast, 1 << (k - 1), c);
    EXPECT_NEAR(got - prev, step, 1e-9) << "p=" << (1 << k);
  }
  // O(log p), not O(p): 512k ranks costs less than 24x the 4-rank latency.
  EXPECT_LT(simulate_coll_us(CollOp::bcast, 512 * 1024, c),
            24.0 * simulate_coll_us(CollOp::bcast, 4, c));
}

TEST(SimColl, AlltoallvSteadyStateIsLogPUpTo512k) {
  // The persistent run path pays the leading barrier (log p) plus a fixed
  // neighbor fan-out — the dense count exchange is plan-time-amortized.
  CollParams c;
  c.neighbors = 8;
  c.nbytes = 256;
  const double t8 = simulate_coll_us(CollOp::alltoallv, 8, c);
  const double t512k = simulate_coll_us(CollOp::alltoallv, 512 * 1024, c);
  ASSERT_GT(t8, 0.0);
  // 8 -> 512k multiplies p by 64k (16 doublings) but latency only by the
  // barrier's extra rounds: well under 8x, nowhere near the 65536x a flat
  // O(p) exchange would cost.
  EXPECT_LT(t512k, 8.0 * t8);
  // And it is strictly round-limited: each doubling adds one barrier round.
  const double step = simulate_coll_us(CollOp::alltoallv, 32, c) -
                      simulate_coll_us(CollOp::alltoallv, 16, c);
  EXPECT_NEAR(simulate_coll_us(CollOp::alltoallv, 64, c) -
                  simulate_coll_us(CollOp::alltoallv, 32, c),
              step, 1e-9);
}

TEST(SimColl, BarrierFormCrossChecksAgainstDes) {
  // The closed-form barrier must agree with the event-driven dissemination
  // barrier (sim_sync) when fed the same per-round constants.
  CollParams c;
  SyncParams sp;
  sp.msg_latency_us = c.put_base_us;
  sp.per_msg_overhead_us = c.overhead_us;
  sp.noise = Noise{};  // deterministic
  for (int p : {8, 64, 1024, 32768}) {
    const double closed = simulate_coll_us(CollOp::barrier, p, c);
    const double des = simulate_dissemination_barrier(p, sp);
    EXPECT_NEAR(closed, des, 0.20 * des) << "p=" << p;
  }
}

TEST(SimColl, HierarchyBeatsFlatTreesAtScale) {
  // With 32 ranks/node the inter-node tree is log(p/32) deep instead of
  // log(p): the hierarchical forms must win for every data collective at
  // Blue Waters scale.
  CollParams flat;
  flat.nbytes = 1024;
  CollParams hier = flat;
  hier.ranks_per_node = 32;
  const int p = 512 * 1024;
  for (CollOp op : {CollOp::bcast, CollOp::allreduce, CollOp::allgather}) {
    EXPECT_LT(simulate_coll_us(op, p, hier), simulate_coll_us(op, p, flat))
        << static_cast<int>(op);
  }
}

// --- fiber overlap model (PR 8) ----------------------------------------------

TEST(SimOverlap, RateMonotoneUpToSaturationThenFlat) {
  const OverlapModel m = overlap_model_amo8();
  double prev = 0.0;
  for (int f : {1, 2, 4, 8, 16, 32, 64}) {
    const double rate = m.rate_mops(f);
    EXPECT_GE(rate, prev) << "fibers=" << f;
    prev = rate;
  }
  // Past saturation the issue path is the bottleneck: 512 fibers buy
  // nothing over 64 (F* = (o+s+L)/(o+s) is well below 64 for every op).
  EXPECT_LT(m.saturation_fibers(), 64.0);
  EXPECT_DOUBLE_EQ(m.rate_mops(512), m.rate_mops(64));
  // The saturated rate is exactly the pure issue rate.
  EXPECT_NEAR(m.rate_mops(512), 1e3 / (m.overhead_ns + m.software_ns), 1e-9);
}

TEST(SimOverlap, AmoPipelineClearsTheBenchGate) {
  // bench_overlap's acceptance gate: >= 4x modeled message rate at 64
  // fibers vs 1 for the amo workload. The closed form must predict it
  // with margin, or the measured gate is hanging on noise.
  const OverlapModel m = overlap_model_amo8();
  EXPECT_GE(m.speedup(64), 4.0 * 1.2);
}

TEST(SimOverlap, SpeedupOrderedByLatency) {
  // Overlap hides latency, so the op with more latency to hide gains
  // more: put8 (~1 us) < get8 (~1.9 us) < amo (2.4 us round trip).
  const double put = overlap_model_put8().speedup(64);
  const double get = overlap_model_get8().speedup(64);
  const double amo = overlap_model_amo8().speedup(64);
  EXPECT_LT(put, get);
  EXPECT_LT(get, amo);
  // One fiber is the blocking baseline by construction.
  EXPECT_DOUBLE_EQ(overlap_model_put8().speedup(1), 1.0);
}

TEST(SimOverlap, LatencyBoundRegionScalesLinearly) {
  // Below saturation, doubling the fiber count halves ns/op exactly.
  const OverlapModel m = overlap_model_amo8();
  EXPECT_NEAR(m.ns_per_op(2), m.ns_per_op(1) / 2.0, 1e-9);
  EXPECT_NEAR(m.ns_per_op(4), m.ns_per_op(1) / 4.0, 1e-9);
  // And the factories charge the runtime's injected constants.
  EXPECT_DOUBLE_EQ(m.latency_ns, 2400.0);
  EXPECT_DOUBLE_EQ(m.overhead_ns, 416.0);
}

TEST(SimColl, AllgatherBytesStillLinearAtLargeBlocks) {
  // Bruck rounds are logarithmic but the wire total is (p-1)*nbytes:
  // at large blocks the byte term must dominate (sanity against an
  // over-optimistic all-log model).
  CollParams c;
  c.nbytes = 1 << 20;
  const double t256 = simulate_coll_us(CollOp::allgather, 256, c);
  const double t512 = simulate_coll_us(CollOp::allgather, 512, c);
  EXPECT_GT(t512, 1.8 * t256);
}

// --- KV service SLO models (DESIGN.md §12) ------------------------------------

TEST(SimKv, CacheLeverageAtLeast2x) {
  // The bench_kv gate: an epoch-validated cache hit (1 AMO) must model at
  // least 2x cheaper than the full versioned read (6 AMOs) — the exact
  // ratio is uncached_amos/cached_amos = 6.
  KvParams p;
  p.hit_rate = 1.0;
  const double cached = kv_read_us(p);
  p.hit_rate = 0.0;
  const double uncached = kv_read_us(p);
  EXPECT_GE(uncached, 2.0 * cached);
  EXPECT_NEAR(uncached / cached, 6.0, 1e-9);
}

TEST(SimKv, MeanReadMonotoneInHitRate) {
  KvParams p;
  double prev = 1e30;
  for (double h = 0.0; h <= 1.0; h += 0.1) {
    p.hit_rate = h;
    const double t = kv_read_us(p);
    EXPECT_LT(t, prev) << "mean read must fall as the cache warms, h=" << h;
    prev = t;
  }
}

TEST(SimKv, DegradedTailNoBetterThanHealthy) {
  // Failover SLO shape: degraded mode bypasses the cache, so both the
  // mean and the p99 must degrade (mean strictly, given any hit mass).
  KvParams p;
  EXPECT_GT(kv_read_us(p, /*degraded=*/true), kv_read_us(p, false));
  EXPECT_GE(kv_read_p99_us(p, true), kv_read_p99_us(p, false));
  // The p99 is the uncached read in both modes for any realistic cache.
  EXPECT_NEAR(kv_read_p99_us(p, false), p.uncached_amos * p.amo_us, 1e-9);
  // Degraded puts write one region instead of two: cheaper per op, which
  // is the one silver lining the SLO table shows.
  EXPECT_LT(kv_put_us(p, true), kv_put_us(p, false));
}

TEST(SimKv, ThroughputMonotoneAndSaturating) {
  KvParams p;
  double prev = 0.0;
  for (int c = 1; c <= 4096; c *= 2) {
    const double t = simulate_kv_throughput_mops(c, p);
    EXPECT_GE(t, prev) << "throughput must be nondecreasing, clients=" << c;
    prev = t;
  }
  // Saturation: far past the knee the hottest shard pins the rate.
  EXPECT_NEAR(simulate_kv_throughput_mops(2048, p),
              simulate_kv_throughput_mops(4096, p), 1e-9);
  // And the plateau is the hot-shard service bound, not the offered load.
  EXPECT_LT(simulate_kv_throughput_mops(4096, p),
            4096.0 * p.fibers / kv_read_us(p));
}

TEST(SimKv, ReplicationRaisesTheSaturationPlateau) {
  // Hot-key replica reads split the hottest shard's read load across two
  // serving ranks: the saturated throughput must rise with replication.
  KvParams repl;
  repl.replicate = true;
  KvParams solo = repl;
  solo.replicate = false;
  EXPECT_GT(simulate_kv_throughput_mops(4096, repl),
            simulate_kv_throughput_mops(4096, solo));
}

TEST(SimKv, HotShardMassMatchesZipfFold) {
  // phi = rank-1 mass of Zipf(s) over the shards: 1/H at s=0 (uniform),
  // growing with skew, and always a legal probability.
  KvParams p;
  p.zipf_s = 0.0;
  EXPECT_NEAR(kv_hot_shard_mass(p), 1.0 / p.shards, 1e-9);
  p.zipf_s = 0.9;
  const double skewed = kv_hot_shard_mass(p);
  EXPECT_GT(skewed, 1.0 / p.shards);
  EXPECT_LT(skewed, 1.0);
}

// --- self-healing recovery models (DESIGN.md §13) -----------------------------

TEST(SimKvRecovery, MonotoneInShardBytesAndCells) {
  KvParams p;
  double prev = 0.0;
  for (std::uint64_t kb = 4; kb <= 4096; kb *= 2) {
    const double t = kv_recovery_us(p, kb * 1024, 320);
    EXPECT_GT(t, prev) << "recovery time must grow with the image, kb="
                       << kb;
    prev = t;
  }
  prev = 0.0;
  for (std::uint64_t cells = 64; cells <= 4096; cells *= 2) {
    const double t = kv_recovery_us(p, 64 * 1024, cells);
    EXPECT_GT(t, prev) << "recovery time must grow with the scrub, cells="
                       << cells;
    prev = t;
  }
}

TEST(SimKvRecovery, DrainIsBteStreamDominatedAtScale) {
  // At large shard images the per-byte BTE stream dominates both the
  // channel setups and the fixed scrub/generation cost: doubling the
  // image must roughly double the recovery time (ratio -> 2 from below).
  KvParams p;
  const std::uint64_t cells = 320;
  const double t1 = kv_recovery_us(p, 64ull << 20, cells);
  const double t2 = kv_recovery_us(p, 128ull << 20, cells);
  EXPECT_GT(t2 / t1, 1.8);
  EXPECT_LT(t2 / t1, 2.05);
}

TEST(SimKvRecovery, PostRecoveryTailEqualsHealthyAndBeatsDegraded) {
  // The whole point of healing: the post-recovery p99 is the HEALTHY p99
  // (the generation check overlaps the epoch check, costing no serialized
  // round trip), strictly better than the degraded cache-bypassed tail
  // would stay without recovery — and the restored cache leverage is the
  // uncached/cached ratio again (>= 2x, the bench_kv gate).
  KvParams p;
  EXPECT_NEAR(kv_post_recovery_p99_us(p), kv_read_p99_us(p, false), 1e-9);
  EXPECT_LE(kv_post_recovery_p99_us(p), kv_read_p99_us(p, true));
  EXPECT_LT(kv_read_us(p, false), kv_read_us(p, true));
  p.hit_rate = 1.0;
  const double cached = kv_read_us(p);
  p.hit_rate = 0.0;
  EXPECT_GE(kv_read_us(p), 2.0 * cached);
}

TEST(SimKvRecovery, ChunkingOnlyAddsSetupOverhead) {
  // Finer drain chunks pay more BTE channel setups for the same bytes:
  // recovery time is nonincreasing in chunk size, with equal stream cost.
  KvParams p;
  const std::uint64_t bytes = 1ull << 20;
  double prev = 1e30;
  for (std::uint64_t chunk = 512; chunk <= 16384; chunk *= 2) {
    const double t = kv_recovery_us(p, bytes, 320, chunk);
    EXPECT_LT(t, prev) << "bigger chunks must not slow the drain, chunk="
                       << chunk;
    prev = t;
  }
}

// The "thin veneer" claims (Sec 2.4/6): the MPI window layer must add only
// a small constant number of critical-path events on top of the raw
// transport. These bounds are the op-count analog of the paper's
// instruction counts (flush 78, put/get fast path 173 x86 instructions):
// regressions that add per-op work on the fast path fail here.
#include <gtest/gtest.h>

#include "core/window.hpp"

using namespace fompi;
using core::Win;
using fabric::RankCtx;

namespace {

OpCounters delta_of(const std::function<void()>& fn) {
  const OpCounters before = op_counters();
  fn();
  return op_counters().since(before);
}

}  // namespace

TEST(InstrBounds, PutFastPathIsOneTransportOp) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    std::array<std::uint64_t, 4> buf{};
    if (ctx.rank() == 0) {
      win.lock_all();
      win.put(buf.data(), 8, 1, 0);  // warm
      const auto d = delta_of([&] { win.put(buf.data(), 8, 1, 0); });
      EXPECT_EQ(d.get(Op::transport_put), 1u);
      EXPECT_EQ(d.get(Op::transport_get), 0u);
      EXPECT_EQ(d.get(Op::transport_amo), 0u);
      EXPECT_LE(d.total_ops(), 6u) << "put fast path grew";
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  });
}

TEST(InstrBounds, GetFastPathIsOneTransportOp) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    std::array<std::uint64_t, 4> buf{};
    if (ctx.rank() == 0) {
      win.lock_all();
      win.get(buf.data(), 8, 1, 0);
      const auto d = delta_of([&] { win.get(buf.data(), 8, 1, 0); });
      EXPECT_EQ(d.get(Op::transport_get), 1u);
      EXPECT_LE(d.total_ops(), 6u) << "get fast path grew";
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  });
}

TEST(InstrBounds, FlushIsOneBulkSyncPlusFence) {
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    if (ctx.rank() == 0) {
      win.lock_all();
      win.flush_all();
      const auto d = delta_of([&] { win.flush_all(); });
      EXPECT_EQ(d.get(Op::bulk_sync), 1u);
      EXPECT_GE(d.get(Op::memory_fence), 1u);
      EXPECT_LE(d.total_ops(), 5u) << "flush path grew";
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  });
}

TEST(InstrBounds, AcceleratedAccumulateIsOneAmoPerElement) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    std::array<std::uint64_t, 8> vals{};
    if (ctx.rank() == 0) {
      win.lock_all();
      win.accumulate(vals.data(), 1, Elem::u64, RedOp::sum, 1, 0);
      const auto d = delta_of(
          [&] { win.accumulate(vals.data(), 8, Elem::u64, RedOp::sum, 1, 0); });
      EXPECT_EQ(d.get(Op::transport_amo), 8u);
      EXPECT_EQ(d.get(Op::transport_put), 0u);
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  }, opts);
}

TEST(InstrBounds, FallbackAccumulatePaysLockGetPut) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 256);
    std::array<std::uint64_t, 4> vals{};
    if (ctx.rank() == 0) {
      win.lock_all();
      const auto d = delta_of(
          [&] { win.accumulate(vals.data(), 4, Elem::u64, RedOp::min, 1, 0); });
      // lock (>=1 AMO) + get + put + unlock (1 AMO).
      EXPECT_GE(d.get(Op::transport_amo), 2u);
      EXPECT_EQ(d.get(Op::transport_get), 1u);
      EXPECT_EQ(d.get(Op::transport_put), 1u);
      win.unlock_all();
    }
    ctx.barrier();
    win.free();
  }, opts);
}

TEST(InstrBounds, UncontendedLocksCostConstantAmos) {
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(2, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    // The global lock lives at the master (rank 0); AMOs to self count as
    // local atomics, so sum both counters.
    auto amos = [](const OpCounters& d) {
      return d.get(Op::transport_amo) + d.get(Op::local_atomic);
    };
    if (ctx.rank() == 0) {
      // Shared lock: one AMO to take, one to release.
      auto d = delta_of([&] {
        win.lock(core::LockType::shared, 1);
        win.unlock(1);
      });
      EXPECT_EQ(amos(d), 2u);
      // First exclusive lock: two AMOs to take (global + local CAS),
      // two to release.
      d = delta_of([&] {
        win.lock(core::LockType::exclusive, 1);
        win.unlock(1);
      });
      EXPECT_EQ(amos(d), 4u);
      // lock_all: one AMO each way (the global word only).
      d = delta_of([&] {
        win.lock_all();
        win.unlock_all();
      });
      EXPECT_EQ(amos(d), 2u);
    }
    ctx.barrier();
    win.free();
  }, opts);
}

TEST(InstrBounds, PscwMessageCountsMatchPaper) {
  // post/complete issue O(k) messages; start/wait issue none (Sec 2.3).
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(3, [](RankCtx& ctx) {
    Win win = Win::allocate(ctx, 64);
    const int p = 3;
    const fabric::Group nb{(ctx.rank() + 1) % p, (ctx.rank() + 2) % p};
    const auto d_post = delta_of([&] { win.post(nb); });
    EXPECT_GE(d_post.get(Op::transport_amo), 2u);  // k CAS insertions
    const auto d_start = delta_of([&] { win.start(nb); });
    EXPECT_EQ(d_start.get(Op::transport_amo), 0u);
    EXPECT_EQ(d_start.get(Op::transport_put), 0u);
    const auto d_complete = delta_of([&] { win.complete(); });
    EXPECT_EQ(d_complete.get(Op::transport_amo), 2u);  // k counter bumps
    const auto d_wait = delta_of([&] { win.wait(); });
    EXPECT_EQ(d_wait.get(Op::transport_amo), 0u);
    EXPECT_EQ(d_wait.get(Op::transport_put), 0u);
    win.free();
  }, opts);
}

// Unit tests for the RDMA substrate: registration, AMOs, the simulated NIC
// in all delivery/injection modes, the network model, and the issue fast
// path (rkey cache epochs, pooled completion handles, zero-alloc steady
// state).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>

#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "fabric/fabric.hpp"
#include "rdma/network_model.hpp"
#include "rdma/nic.hpp"

using namespace fompi;
using namespace fompi::rdma;

namespace {

DomainConfig two_rank_internode() {
  DomainConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;  // force the "DMAPP" path
  return cfg;
}

}  // namespace

// --- registration ------------------------------------------------------------

TEST(Region, RegisterResolveDeregister) {
  RegionRegistry reg;
  AlignedBuffer mem(256);
  const RegionDesc d = reg.register_region(3, mem.data(), 256);
  EXPECT_EQ(d.owner, 3);
  EXPECT_EQ(d.size, 256u);
  EXPECT_NE(d.rkey, 0u);
  EXPECT_EQ(reg.resolve(d.rkey, 3, 0, 256), mem.data());
  EXPECT_EQ(reg.resolve(d.rkey, 3, 16, 8), mem.data() + 16);
  reg.deregister(d.rkey);
  EXPECT_EQ(reg.live_count(), 0u);
  EXPECT_THROW(reg.resolve(d.rkey, 3, 0, 8), Error);
}

TEST(Region, RejectsOutOfRangeAccess) {
  RegionRegistry reg;
  AlignedBuffer mem(64);
  const RegionDesc d = reg.register_region(0, mem.data(), 64);
  EXPECT_THROW(reg.resolve(d.rkey, 0, 60, 8), Error);
  EXPECT_THROW(reg.resolve(d.rkey, 0, 65, 0), Error);
  EXPECT_NO_THROW(reg.resolve(d.rkey, 0, 56, 8));
  EXPECT_NO_THROW(reg.resolve(d.rkey, 0, 64, 0));
}

TEST(Region, RejectsWrongOwner) {
  RegionRegistry reg;
  AlignedBuffer mem(64);
  const RegionDesc d = reg.register_region(1, mem.data(), 64);
  EXPECT_THROW(reg.resolve(d.rkey, 2, 0, 8), Error);
}

TEST(Region, RejectsDoubleDeregister) {
  RegionRegistry reg;
  AlignedBuffer mem(64);
  const RegionDesc d = reg.register_region(0, mem.data(), 64);
  reg.deregister(d.rkey);
  EXPECT_THROW(reg.deregister(d.rkey), Error);
}

// --- AMO ALU --------------------------------------------------------------------

TEST(Amo, FetchAddReturnsOld) {
  alignas(8) std::uint64_t word = 10;
  EXPECT_EQ(apply_amo(&word, AmoOp::fetch_add, 5, 0), 10u);
  EXPECT_EQ(word, 15u);
}

TEST(Amo, BitwiseOps) {
  alignas(8) std::uint64_t word = 0b1100;
  EXPECT_EQ(apply_amo(&word, AmoOp::fetch_and, 0b1010, 0), 0b1100u);
  EXPECT_EQ(word, 0b1000u);
  apply_amo(&word, AmoOp::fetch_or, 0b0011, 0);
  EXPECT_EQ(word, 0b1011u);
  apply_amo(&word, AmoOp::fetch_xor, 0b1111, 0);
  EXPECT_EQ(word, 0b0100u);
}

TEST(Amo, SwapAndRead) {
  alignas(8) std::uint64_t word = 42;
  EXPECT_EQ(apply_amo(&word, AmoOp::swap, 7, 0), 42u);
  EXPECT_EQ(apply_amo(&word, AmoOp::read, 0, 0), 7u);
  EXPECT_EQ(word, 7u);
}

TEST(Amo, CasSucceedsAndFails) {
  alignas(8) std::uint64_t word = 5;
  EXPECT_EQ(apply_amo(&word, AmoOp::cas, 9, 5), 5u);  // matched: swapped
  EXPECT_EQ(word, 9u);
  EXPECT_EQ(apply_amo(&word, AmoOp::cas, 1, 5), 9u);  // mismatched: untouched
  EXPECT_EQ(word, 9u);
}

TEST(Amo, RejectsMisalignedTarget) {
  alignas(8) std::uint64_t words[2] = {0, 0};
  auto* misaligned = reinterpret_cast<std::byte*>(words) + 4;
  EXPECT_THROW(apply_amo(misaligned, AmoOp::fetch_add, 1, 0), Error);
}

// --- network model ----------------------------------------------------------------

TEST(NetworkModel, LatencyIsMonotoneInSize) {
  NetworkModel m;
  double prev = 0;
  for (std::size_t s = 8; s <= (1u << 20); s *= 2) {
    const double t = m.put_latency_ns(s);
    EXPECT_GT(t, 0.0);
    if (s > static_cast<std::size_t>(m.bte_threshold) * 2) {
      EXPECT_GT(t, prev);
    }
    prev = t;
  }
}

TEST(NetworkModel, MatchesPaperConstantsAtAnchors) {
  NetworkModel m;
  // P_put ≈ 1us small, P_get ≈ 1.9us small (Sec 3.1).
  EXPECT_NEAR(m.put_latency_ns(8), 1000.0, 150.0);
  EXPECT_NEAR(m.get_latency_ns(8), 1900.0, 150.0);
  EXPECT_NEAR(m.amo_latency_ns(), 2400.0, 1.0);
  // Large-message bandwidth close to the 0.145-0.17 ns/B regime.
  const double per_byte =
      (m.put_latency_ns(1 << 22) - m.put_latency_ns(1 << 21)) / (1 << 21);
  EXPECT_NEAR(per_byte, 0.145, 0.03);
}

TEST(NetworkModel, ProtocolChangeVisible) {
  NetworkModel m;
  // The FMA->BTE switch is a kink in the curve (the Fig 4a annotation):
  // extrapolating the FMA line past the threshold must disagree with the
  // actual BTE cost, and the per-byte slope must change across it.
  const std::size_t th = m.bte_threshold;
  const double fma_slope =
      (m.put_latency_ns(th - 64) - m.put_latency_ns(th - 128)) / 64.0;
  const double bte_slope =
      (m.put_latency_ns(2 * th) - m.put_latency_ns(2 * th - 64)) / 64.0;
  EXPECT_GT(std::abs(fma_slope - bte_slope), 1e-3);
  const double fma_extrapolated =
      m.put_latency_ns(th - 64) + fma_slope * 64.0;
  EXPECT_NE(fma_extrapolated, m.put_latency_ns(th));
  // BTE amortizes its setup: by 4x the threshold it must win over the
  // extrapolated FMA cost.
  const double fma_far = m.put_latency_ns(th - 64) +
                         fma_slope * static_cast<double>(3 * th + 64);
  EXPECT_LT(m.put_latency_ns(4 * th), fma_far);
}

// --- NIC data movement ---------------------------------------------------------------

class NicModes : public ::testing::TestWithParam<std::tuple<Delivery, bool>> {
};

TEST_P(NicModes, PutGetRoundtrip) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = std::get<0>(GetParam());
  cfg.shuffle_deferred = std::get<1>(GetParam());
  Domain dom(cfg);
  AlignedBuffer mem(256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);

  std::vector<std::uint8_t> src(64);
  std::iota(src.begin(), src.end(), 1);
  Nic& nic = dom.nic(0);
  nic.put(1, d, 32, src.data(), src.size());
  std::vector<std::uint8_t> back(64, 0);
  nic.get(1, d, 32, back.data(), back.size());
  EXPECT_EQ(back, src);
}

TEST_P(NicModes, ImplicitOpsCompleteAtGsync) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = std::get<0>(GetParam());
  cfg.shuffle_deferred = std::get<1>(GetParam());
  Domain dom(cfg);
  AlignedBuffer mem(1024);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1024);
  Nic& nic = dom.nic(0);
  std::vector<std::uint64_t> vals(16);
  std::iota(vals.begin(), vals.end(), 100);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    nic.put_nbi(1, d, i * 8, &vals[i], 8);
  }
  EXPECT_GT(nic.outstanding(), 0u);
  nic.gsync();
  EXPECT_EQ(nic.outstanding(), 0u);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    std::uint64_t v = 0;
    std::memcpy(&v, mem.data() + i * 8, 8);
    EXPECT_EQ(v, vals[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, NicModes,
    ::testing::Values(std::make_tuple(Delivery::immediate, false),
                      std::make_tuple(Delivery::deferred, false),
                      std::make_tuple(Delivery::deferred, true)));

TEST(Nic, DeferredPutInvisibleUntilCompletion) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 0xdeadbeef;
  const Handle h = nic.put_nb(1, d, 0, &v, 8);
  std::uint64_t seen = 0;
  std::memcpy(&seen, mem.data(), 8);
  EXPECT_EQ(seen, 0u) << "deferred put leaked before completion";
  nic.wait(h);
  std::memcpy(&seen, mem.data(), 8);
  EXPECT_EQ(seen, v);
}

TEST(Nic, DeferredSourceBufferReusableAfterIssue) {
  // The NIC stages the payload at issue, so mutating the source afterwards
  // must not change what lands at the target.
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  std::uint64_t v = 111;
  const Handle h = nic.put_nb(1, d, 0, &v, 8);
  v = 222;
  nic.wait(h);
  std::uint64_t seen = 0;
  std::memcpy(&seen, mem.data(), 8);
  EXPECT_EQ(seen, 111u);
}

TEST(Nic, ExplicitHandleSurvivesGsync) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 7;
  const Handle h = nic.put_nb(1, d, 0, &v, 8);
  nic.gsync();  // must not invalidate h
  EXPECT_NO_THROW(nic.wait(h));
}

TEST(Nic, BlockingAmoAppliesImmediatelyEvenDeferred) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  EXPECT_EQ(nic.amo(1, d, 0, AmoOp::fetch_add, 3), 0u);
  EXPECT_EQ(nic.amo(1, d, 0, AmoOp::fetch_add, 4), 3u);
  std::uint64_t seen = 0;
  std::memcpy(&seen, mem.data(), 8);
  EXPECT_EQ(seen, 7u);
}

TEST(Nic, AmoFetchThroughExplicitHandle) {
  Domain dom(two_rank_internode());
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  nic.amo(1, d, 8, AmoOp::fetch_add, 41);
  std::uint64_t fetched = 0;
  const Handle h = nic.amo_nb(1, d, 8, AmoOp::fetch_add, 1, 0, &fetched);
  nic.wait(h);
  EXPECT_EQ(fetched, 41u);
}

TEST(Nic, UnknownHandleRaises) {
  Domain dom(two_rank_internode());
  Nic& nic = dom.nic(0);
  EXPECT_THROW(nic.wait(12345), Error);
  EXPECT_THROW(nic.test(12345), Error);
  EXPECT_NO_THROW(nic.wait(kDoneHandle));
  EXPECT_TRUE(nic.test(kDoneHandle));
}

TEST(Nic, GsyncIdempotentWhenIdle) {
  Domain dom(two_rank_internode());
  Nic& nic = dom.nic(0);
  EXPECT_EQ(nic.outstanding(), 0u);
  nic.gsync();
  nic.gsync();
  EXPECT_EQ(nic.outstanding(), 0u);
}

TEST(Nic, DeferredGetReadsAtCompletionTime) {
  // A deferred get must observe the target memory as of its completion,
  // not its issue — the weakest legal RDMA read behaviour.
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  std::uint64_t out = 0;
  const Handle h = nic.get_nb(1, d, 0, &out, 8);
  // Target memory changes after issue but before completion.
  std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(mem.data()))
      .store(99, std::memory_order_release);
  nic.wait(h);
  EXPECT_EQ(out, 99u);
}

TEST(Domain, NodeMappingVariants) {
  DomainConfig cfg;
  cfg.nranks = 6;
  cfg.ranks_per_node = 0;
  EXPECT_TRUE(Domain(cfg).same_node(0, 5));
  cfg.ranks_per_node = 2;
  Domain dom(cfg);
  EXPECT_EQ(dom.node_of(0), 0);
  EXPECT_EQ(dom.node_of(1), 0);
  EXPECT_EQ(dom.node_of(2), 1);
  EXPECT_EQ(dom.node_of(5), 2);
  EXPECT_THROW(dom.nic(6), Error);
  EXPECT_THROW(dom.nic(-1), Error);
}

TEST(Nic, RangeViolationRaises) {
  Domain dom(two_rank_internode());
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  std::uint64_t v = 0;
  EXPECT_THROW(dom.nic(0).put(1, d, 60, &v, 8), Error);
  EXPECT_THROW(dom.nic(0).put(0, d, 0, &v, 8), Error);  // wrong owner
}

TEST(Nic, InjectionModelAddsLatency) {
  DomainConfig cfg = two_rank_internode();
  cfg.inject = Injection::model;
  cfg.time_scale = 1.0;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 1;
  Timer t;
  for (int i = 0; i < 100; ++i) nic.put(1, d, 0, &v, 8);
  const double per_op_us = t.elapsed_us() / 100.0;
  // Modeled small-put latency is ~1us end to end.
  EXPECT_GT(per_op_us, 0.8);
}

TEST(Nic, IntraNodeFasterThanInterNodeUnderModel) {
  DomainConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;  // ranks 0,1 on node 0; 2,3 on node 1
  cfg.inject = Injection::model;
  Domain dom(cfg);
  EXPECT_TRUE(dom.same_node(0, 1));
  EXPECT_FALSE(dom.same_node(1, 2));
  AlignedBuffer mem1(64), mem2(64);
  const RegionDesc d1 = dom.registry().register_region(1, mem1.data(), 64);
  const RegionDesc d2 = dom.registry().register_region(2, mem2.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 1;
  // Untimed warmup of BOTH paths: first touches pay rkey-cache resolves,
  // shadow/page faults and (under TSan) runtime lazy-init, which would
  // otherwise bias the first timed loop.
  for (int i = 0; i < 10; ++i) {
    nic.put(1, d1, 0, &v, 8);
    nic.put(2, d2, 0, &v, 8);
  }
  // 200 reps so the modeled gap (~430 ns intra vs ~1.4 us inter per put,
  // ~200 us over the loop) dwarfs per-put software cost; best-of-3 because
  // a single sample on the one-core host (worse under TSan) can still be a
  // scheduler-noise outlier.
  double intra = 1e300, inter = 0;
  for (int attempt = 0; attempt < 3 && !(intra < inter); ++attempt) {
    Timer ti;
    for (int i = 0; i < 200; ++i) nic.put(1, d1, 0, &v, 8);
    intra = ti.elapsed_us();
    Timer te;
    for (int i = 0; i < 200; ++i) nic.put(2, d2, 0, &v, 8);
    inter = te.elapsed_us();
  }
  EXPECT_LT(intra, inter);
}

// --- issue fast path: rkey cache, handle pool, zero-alloc steady state -------

TEST(Region, GenerationAdvancesOnChurn) {
  RegionRegistry reg;
  AlignedBuffer mem(64);
  const std::uint64_t g0 = reg.generation();
  const RegionDesc d = reg.register_region(0, mem.data(), 64);
  EXPECT_GT(reg.generation(), g0);
  const std::uint64_t g1 = reg.generation();
  reg.deregister(d.rkey);
  EXPECT_GT(reg.generation(), g1);

  RegionSnapshot snap;
  EXPECT_FALSE(reg.snapshot(d.rkey, &snap));
  const RegionDesc d2 = reg.register_region(1, mem.data(), 64);
  ASSERT_TRUE(reg.snapshot(d2.rkey, &snap));
  EXPECT_EQ(snap.owner, 1);
  EXPECT_EQ(snap.base, mem.data());
  EXPECT_EQ(snap.size, 64u);
}

TEST(Nic, RkeyCacheHitsDominate) {
  // Acceptance check for the fast path: after one warming miss, a stable
  // working set resolves entirely from the per-NIC cache — the registry's
  // shared lock is taken once per (rkey, generation), not per op.
  Domain dom(two_rank_internode());
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 1;
  nic.put(1, d, 0, &v, 8);  // warm: exactly one locked resolve

  const OpCounters before = op_counters();
  for (int i = 0; i < 1000; ++i) nic.put(1, d, 0, &v, 8);
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::rkey_cache_hit), 1000u);
  EXPECT_EQ(delta.get(Op::rkey_cache_miss), 0u);
}

TEST(Nic, StaleCacheRaisesAfterDeregister) {
  // A cached rkey must never outlive its registration: deregistering bumps
  // the registry generation, so the next access revalidates, misses, and
  // raises FOMPI_ERR_RMA_RANGE instead of touching freed memory.
  Domain dom(two_rank_internode());
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 5;
  nic.put(1, d, 0, &v, 8);  // cache now holds d.rkey
  dom.registry().deregister(d.rkey);
  try {
    nic.put(1, d, 0, &v, 8);
    FAIL() << "stale rkey access did not raise";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::rma_range);
  }
  // Re-registration issues a fresh descriptor that works immediately.
  const RegionDesc d2 = dom.registry().register_region(1, mem.data(), 64);
  EXPECT_NO_THROW(nic.put(1, d2, 0, &v, 8));
  EXPECT_THROW(nic.put(1, d, 0, &v, 8), Error);  // old key stays dead
}

TEST(Nic, HandleTagDetectsRecycledSlot) {
  // Completion slots are pooled; a retired handle must not alias the next
  // operation that recycles its slot (ABA protection via the tag bits).
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 3;
  const Handle h1 = nic.put_nb(1, d, 0, &v, 8);
  nic.wait(h1);
  const Handle h2 = nic.put_nb(1, d, 8, &v, 8);
  EXPECT_EQ(h1 & 0xffffffffu, h2 & 0xffffffffu) << "slot was not recycled";
  EXPECT_NE(h1, h2) << "recycled slot reissued an identical handle";
  EXPECT_THROW(nic.wait(h1), Error);
  EXPECT_THROW(nic.test(h1), Error);
  EXPECT_NO_THROW(nic.wait(h2));
}

TEST(Nic, ExplicitAndImplicitAccountingDistinct) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::uint64_t v = 9;

  nic.put_nbi(1, d, 0, &v, 8);
  EXPECT_EQ(nic.implicit_outstanding(), 1u);
  EXPECT_EQ(nic.explicit_outstanding(), 0u);
  EXPECT_EQ(nic.outstanding(), 1u);

  const Handle h = nic.put_nb(1, d, 8, &v, 8);
  EXPECT_EQ(nic.explicit_outstanding(), 1u);
  EXPECT_EQ(nic.outstanding(), 2u);

  nic.gsync();  // completes implicit ops; the explicit handle stays live
  EXPECT_EQ(nic.implicit_outstanding(), 0u);
  EXPECT_EQ(nic.explicit_outstanding(), 1u);
  EXPECT_EQ(nic.outstanding(), 1u);

  nic.wait(h);
  EXPECT_EQ(nic.outstanding(), 0u);
}

TEST(Nic, SteadyStateIssuesAreAllocationFree) {
  // Acceptance check: once pools are warm, issuing mixed operations —
  // including spill-sized deferred puts — performs zero heap allocations.
  // Every pool or spill growth is counted as Op::pool_grow.
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  Nic& nic = dom.nic(0);
  std::uint64_t v = 7, fetched = 0;
  std::array<std::byte, 256> big{};  // above PendingOp::kInlineStage

  auto cycle = [&](int i) {
    nic.wait(nic.put_nb(1, d, (i % 8) * 8, &v, 8));
    nic.wait(nic.get_nb(1, d, 0, &v, 8));
    nic.wait(nic.amo_nb(1, d, 0, AmoOp::fetch_add, 1, 0, &fetched));
    nic.put_nbi(1, d, 1024, big.data(), big.size());    // implicit spill
    nic.wait(nic.put_nb(1, d, 2048, big.data(), big.size()));  // explicit spill
    if (i % 16 == 15) nic.gsync();
  };
  for (int i = 0; i < 64; ++i) cycle(i);  // warm every pool and spill buffer
  nic.gsync();

  const OpCounters before = op_counters();
  for (int i = 0; i < 10000; ++i) cycle(i);
  nic.gsync();
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::pool_grow), 0u) << "steady state allocated";
  EXPECT_EQ(delta.get(Op::rkey_cache_miss), 0u);
  EXPECT_GE(delta.get(Op::rkey_cache_hit), 50000u);
}

TEST(Nic, RegistryChurnStormInvalidatesCaches) {
  // Concurrent register/deregister storms from every rank: live accesses
  // must land, stale descriptors must raise on every rank (never touching
  // freed memory), and no registration may leak.
  constexpr int kRanks = 4;
  constexpr int kRounds = 20;
  fabric::FabricOptions opts;
  opts.domain.nranks = kRanks;
  opts.domain.ranks_per_node = 1;
  fabric::run_ranks(
      kRanks,
      [&](fabric::RankCtx& ctx) {
        auto& reg = ctx.fabric().domain().registry();
        const int p = ctx.nranks();
        const int me = ctx.rank();
        const int succ = (me + 1) % p;
        const int pred = (me + p - 1) % p;
        ctx.barrier();
        const std::size_t base_live = reg.live_count();
        ctx.barrier();  // nobody registers until every rank read the baseline
        for (int r = 0; r < kRounds; ++r) {
          AlignedBuffer mem(128);
          const RegionDesc mine = reg.register_region(me, mem.data(), 128);
          std::vector<RegionDesc> descs(static_cast<std::size_t>(p));
          ctx.allgather(&mine, 1, descs.data());
          const std::uint64_t v = static_cast<std::uint64_t>(r) * 1000 + me;
          ctx.nic().put(succ, descs[static_cast<std::size_t>(succ)],
                        static_cast<std::size_t>(me) * 8, &v, 8);
          ctx.barrier();  // all puts of this round landed
          std::uint64_t got = 0;
          std::memcpy(&got, mem.data() + pred * 8, 8);
          EXPECT_EQ(got, static_cast<std::uint64_t>(r) * 1000 + pred);
          ctx.barrier();  // all verifies done before anyone deregisters
          reg.deregister(mine.rkey);
          ctx.barrier();  // every region of this round is gone
          bool caught = false;
          try {
            ctx.nic().put(succ, descs[static_cast<std::size_t>(succ)], 0, &v,
                          8);
          } catch (const Error& e) {
            caught = e.err_class() == ErrClass::rma_range;
          }
          EXPECT_TRUE(caught) << "stale descriptor did not raise";
          ctx.barrier();  // buffers stay alive until the round fully ends
        }
        EXPECT_EQ(reg.live_count(), base_live) << "registration leak";
      },
      opts);
}

TEST(Nic, KilledPeerAbortsWaitSpin) {
  // Regression for the CLAUDE.md spin-loop rule: a rank parked in wait() on
  // a modeled completion must notice a peer failure through the progress
  // hook and abort, instead of sleeping out the full modeled latency.
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = Injection::model;
  opts.domain.model.inter_overhead_ns = 0.0;  // keep the issue path instant
  // Inflate the *get* latency only: the runtime's dissemination barrier is
  // built on modeled puts, which must stay fast for setup to finish.
  opts.domain.model.get_base_ns = 30e9;  // 30 s modeled completion
  std::vector<AlignedBuffer> bufs;  // outlives the fleet
  bufs.emplace_back(64);
  bufs.emplace_back(64);
  Timer t;
  EXPECT_ANY_THROW(fabric::run_ranks(
      2,
      [&](fabric::RankCtx& ctx) {
        auto& reg = ctx.fabric().domain().registry();
        const RegionDesc mine = reg.register_region(
            ctx.rank(), bufs[static_cast<std::size_t>(ctx.rank())].data(), 64);
        std::vector<RegionDesc> descs(2);
        ctx.allgather(&mine, 1, descs.data());
        if (ctx.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          throw std::runtime_error("injected peer failure");
        }
        std::uint64_t v = 0;
        const Handle h = ctx.nic().get_nb(1, descs[1], 0, &v, 8);
        ctx.nic().wait(h);  // must abort via the progress hook
      },
      opts));
  EXPECT_LT(t.elapsed_us(), 10e6) << "wait spin outlived the dead peer";
}

// --- vectored (chained-descriptor) operations --------------------------------

TEST(NetworkModel, VectoredLatencyBeatsPerFragmentIssue) {
  NetworkModel m;
  // One chained op pays the base latency once; n separate ops pay it n
  // times. The chain must also degenerate to the contiguous cost at n = 1.
  EXPECT_DOUBLE_EQ(m.put_vec_latency_ns(1, 512), m.put_latency_ns(512));
  EXPECT_DOUBLE_EQ(m.get_vec_latency_ns(1, 512), m.get_latency_ns(512));
  const std::size_t n = 64, frag = 8;
  EXPECT_LT(m.put_vec_latency_ns(n, n * frag),
            static_cast<double>(n) * m.put_latency_ns(frag));
  EXPECT_GT(m.put_vec_latency_ns(n, n * frag), m.put_latency_ns(n * frag));
}

TEST(Nic, VectoredPutScattersAndGetGathers) {
  Domain dom(two_rank_internode());
  AlignedBuffer mem(256);
  std::memset(mem.data(), 0, 256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);
  Nic& nic = dom.nic(0);

  std::array<std::uint8_t, 24> src{};
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i + 1);
  }
  // Three fragments scattered over [16, 16+96): gaps must stay zero.
  const std::array<Frag, 3> frags{{{0, 0, 8}, {8, 32, 8}, {16, 88, 8}}};

  const OpCounters before = op_counters();
  nic.wait(nic.put_nbv(1, d, 16, 96, src.data(), frags.data(), frags.size()));
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::transport_put), 1u) << "one doorbell per vector";
  EXPECT_EQ(delta.get(Op::vectored_op), 1u);
  EXPECT_EQ(delta.get(Op::bytes_copied), 24u);

  auto* t = reinterpret_cast<const std::uint8_t*>(mem.data());
  for (const Frag& f : frags) {
    for (std::size_t i = 0; i < f.len; ++i) {
      ASSERT_EQ(t[16 + f.remote_off + i], src[f.local_off + i]);
    }
  }
  EXPECT_EQ(t[16 + 8], 0u) << "gap written";
  EXPECT_EQ(t[16 + 87], 0u) << "gap written";

  std::array<std::uint8_t, 24> back{};
  nic.wait(nic.get_nbv(1, d, 16, 96, back.data(), frags.data(), frags.size()));
  EXPECT_EQ(back, src);
}

TEST(Nic, VectoredDeferredAppliesAtCompletion) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(256);
  std::memset(mem.data(), 0, 256);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 256);
  Nic& nic = dom.nic(0);

  std::array<std::uint8_t, 16> src{};
  src.fill(0xAB);
  const std::array<Frag, 2> frags{{{0, 0, 8}, {8, 64, 8}}};

  // Explicit handle: nothing lands until wait(); the origin buffer is
  // reusable immediately (payload staged at issue).
  const Handle h =
      nic.put_nbv(1, d, 0, 128, src.data(), frags.data(), frags.size());
  src.fill(0xFF);  // must not affect the staged payload
  auto* t = reinterpret_cast<const std::uint8_t*>(mem.data());
  EXPECT_EQ(t[0], 0u);
  nic.wait(h);
  EXPECT_EQ(t[0], 0xABu);
  EXPECT_EQ(t[64 + 7], 0xABu);

  // Implicit vector: lands at gsync.
  std::array<std::uint8_t, 16> src2{};
  src2.fill(0x5C);
  nic.put_nbiv(1, d, 0, 128, src2.data(), frags.data(), frags.size());
  EXPECT_EQ(t[64], 0xABu);
  nic.gsync();
  EXPECT_EQ(t[64], 0x5Cu);

  // Deferred vectored get: fragments land in local memory at wait().
  std::array<std::uint8_t, 16> back{};
  const Handle hg =
      nic.get_nbv(1, d, 0, 128, back.data(), frags.data(), frags.size());
  nic.wait(hg);
  for (std::size_t i = 0; i < back.size(); ++i) ASSERT_EQ(back[i], 0x5Cu);
}

TEST(Nic, VectoredHandleTestSemantics) {
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  const std::array<Frag, 2> frags{{{0, 0, 4}, {4, 16, 4}}};
  std::array<std::uint8_t, 8> src{};

  // Zero fragments complete at issue.
  EXPECT_EQ(nic.put_nbv(1, d, 0, 32, src.data(), frags.data(), 0),
            kDoneHandle);

  const Handle h =
      nic.put_nbv(1, d, 0, 32, src.data(), frags.data(), frags.size());
  EXPECT_NE(h, kDoneHandle);
  EXPECT_EQ(nic.explicit_outstanding(), 1u);
  EXPECT_TRUE(nic.test(h));  // no model time: completes and retires
  EXPECT_EQ(nic.explicit_outstanding(), 0u);
  EXPECT_THROW(nic.wait(h), Error);  // retired handle stays dead
}

TEST(Nic, VectoredSpanIsBoundsChecked) {
  Domain dom(two_rank_internode());
  AlignedBuffer mem(64);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 64);
  Nic& nic = dom.nic(0);
  std::array<std::uint8_t, 8> src{};
  const std::array<Frag, 1> frags{{{0, 0, 8}}};
  // The single up-front check covers the whole span: a vector whose span
  // leaves the region raises before any fragment moves.
  try {
    nic.put_nbv(1, d, 32, 40, src.data(), frags.data(), frags.size());
    FAIL() << "out-of-span vector did not raise";
  } catch (const Error& e) {
    EXPECT_EQ(e.err_class(), ErrClass::rma_range);
  }
  EXPECT_NO_THROW(nic.wait(
      nic.put_nbv(1, d, 32, 32, src.data(), frags.data(), frags.size())));
}

TEST(Nic, VectoredSteadyStateIssuesAreAllocationFree) {
  // The vectored path reuses the same pooled records and staging buffers as
  // the contiguous fast path: once warm, no per-op heap allocation.
  DomainConfig cfg = two_rank_internode();
  cfg.delivery = Delivery::deferred;
  Domain dom(cfg);
  AlignedBuffer mem(4096);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 4096);
  Nic& nic = dom.nic(0);

  std::array<std::uint8_t, 512> buf{};  // above PendingOp::kInlineStage
  std::vector<Frag> frags;
  for (std::size_t i = 0; i < 32; ++i) {
    frags.push_back({i * 16, i * 64, 16});
  }
  auto cycle = [&] {
    nic.wait(nic.put_nbv(1, d, 0, 2048, buf.data(), frags.data(),
                         frags.size()));
    nic.put_nbiv(1, d, 2048, 2048, buf.data(), frags.data(), frags.size());
    nic.wait(nic.get_nbv(1, d, 0, 2048, buf.data(), frags.data(),
                         frags.size()));
    nic.gsync();
  };
  for (int i = 0; i < 32; ++i) cycle();  // warm pools, spill and frag lists

  const OpCounters before = op_counters();
  for (int i = 0; i < 2000; ++i) cycle();
  const OpCounters delta = op_counters().since(before);
  EXPECT_EQ(delta.get(Op::pool_grow), 0u) << "steady state allocated";
  EXPECT_EQ(delta.get(Op::rkey_cache_miss), 0u);
  EXPECT_EQ(delta.get(Op::vectored_op), 6000u);
}

TEST(Nic, VectoredKilledPeerAbortsWaitSpin) {
  // Same spin-loop rule as the contiguous path: waiting on a vectored get
  // whose modeled completion is far out must abort when the peer dies.
  fabric::FabricOptions opts;
  opts.domain.nranks = 2;
  opts.domain.ranks_per_node = 1;
  opts.domain.inject = Injection::model;
  opts.domain.model.inter_overhead_ns = 0.0;
  opts.domain.model.get_base_ns = 30e9;  // 30 s modeled completion
  std::vector<AlignedBuffer> bufs;
  bufs.emplace_back(64);
  bufs.emplace_back(64);
  Timer t;
  EXPECT_ANY_THROW(fabric::run_ranks(
      2,
      [&](fabric::RankCtx& ctx) {
        auto& reg = ctx.fabric().domain().registry();
        const RegionDesc mine = reg.register_region(
            ctx.rank(), bufs[static_cast<std::size_t>(ctx.rank())].data(), 64);
        std::vector<RegionDesc> descs(2);
        ctx.allgather(&mine, 1, descs.data());
        if (ctx.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          throw std::runtime_error("injected peer failure");
        }
        std::array<std::uint8_t, 16> back{};
        const std::array<Frag, 2> frags{{{0, 0, 8}, {8, 32, 8}}};
        const Handle h = ctx.nic().get_nbv(1, descs[1], 0, 48, back.data(),
                                           frags.data(), frags.size());
        ctx.nic().wait(h);  // must abort via the progress hook
      },
      opts));
  EXPECT_LT(t.elapsed_us(), 10e6) << "wait spin outlived the dead peer";
}

// Quickstart: the foMPI-R one-sided API in one page.
//
// Spawns four simulated MPI ranks, allocates a symmetric window, and shows
// the three synchronization styles of MPI-3.0 RMA:
//   1. fence (bulk-synchronous active target),
//   2. passive target with lock_all + flush,
//   3. general active target (post/start/complete/wait).
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "core/window.hpp"

using namespace fompi;

int main() {
  constexpr int kRanks = 4;
  fabric::run_ranks(kRanks, [](fabric::RankCtx& ctx) {
    const int me = ctx.rank();
    const int right = (me + 1) % kRanks;
    const int left = (me + kRanks - 1) % kRanks;

    // A window of 8 uint64 slots per rank, allocated on the symmetric heap
    // (O(1) remote-access metadata; see Sec 2.2 of the paper).
    core::Win win = core::Win::allocate(ctx, 8 * sizeof(std::uint64_t));
    auto* mine = static_cast<std::uint64_t*>(win.base());

    // --- 1. fence epochs ---------------------------------------------------
    win.fence();
    const std::uint64_t hello = 100 + static_cast<std::uint64_t>(me);
    win.put(&hello, sizeof(hello), right, 0);  // nonblocking one-sided put
    win.fence();                               // completes it everywhere
    std::printf("[rank %d] slot0 = %llu (from left neighbor %d)\n", me,
                static_cast<unsigned long long>(mine[0]), left);

    // --- 2. passive target: lock_all + accumulate + flush ------------------
    win.lock_all();
    const std::uint64_t one = 1;
    for (int r = 0; r < kRanks; ++r) {
      win.accumulate(&one, 1, Elem::u64, RedOp::sum, r, 8);  // slot 1
    }
    win.flush_all();
    win.unlock_all();
    ctx.barrier();
    std::printf("[rank %d] everyone incremented me: slot1 = %llu\n", me,
                static_cast<unsigned long long>(mine[1]));

    // --- 3. general active target (PSCW) ------------------------------------
    win.post(fabric::Group{left});    // expose my memory to my left peer
    win.start(fabric::Group{right});  // access my right peer
    const std::uint64_t token = 1000 + static_cast<std::uint64_t>(me);
    win.put(&token, sizeof(token), right, 16);  // slot 2
    win.complete();
    win.wait();
    std::printf("[rank %d] PSCW token = %llu\n", me,
                static_cast<unsigned long long>(mine[2]));

    win.free();
  });
  std::puts("quickstart: done");
  return 0;
}

// Dynamic windows demo: runtime attach/detach with one-sided descriptor
// caching (Sec 2.2), in both coherence modes.
//
// Rank 0 grows a "remote log" by attaching new segments at runtime; rank 1
// appends entries by absolute remote address without rank 0 ever receiving.
//
// Usage: ./examples/dynamic_windows
#include <cstdio>
#include <vector>

#include "core/window.hpp"

using namespace fompi;

int main() {
  for (const auto mode : {core::DynMode::id_counter, core::DynMode::notify}) {
    const char* name = mode == core::DynMode::id_counter
                           ? "id-counter protocol"
                           : "notify protocol    ";
    fabric::run_ranks(2, [&](fabric::RankCtx& ctx) {
      core::WinConfig cfg;
      cfg.dyn_mode = mode;
      core::Win win = core::Win::create_dynamic(ctx, cfg);

      std::vector<std::uint64_t> segment_a(16, 0), segment_b(16, 0);
      std::array<std::uint64_t, 2> addr_a{}, addr_b{};
      if (ctx.rank() == 0) win.attach(segment_a.data(), 16 * 8);
      const std::uint64_t a =
          ctx.rank() == 0
              ? reinterpret_cast<std::uint64_t>(segment_a.data())
              : 0;
      ctx.allgather(&a, 1, addr_a.data());

      win.lock_all();
      if (ctx.rank() == 1) {
        for (std::uint64_t i = 0; i < 4; ++i) {
          const std::uint64_t entry = 0xA0 + i;
          win.put(&entry, 8, 0, addr_a[0] + i * 8);
        }
        win.flush(0);
      }
      win.unlock_all();
      ctx.barrier();

      // Rank 0 grows the log with a second segment; rank 1's descriptor
      // cache notices (id poll or invalidation) and keeps writing.
      if (ctx.rank() == 0) win.attach(segment_b.data(), 16 * 8);
      const std::uint64_t bb =
          ctx.rank() == 0
              ? reinterpret_cast<std::uint64_t>(segment_b.data())
              : 0;
      ctx.allgather(&bb, 1, addr_b.data());
      win.lock_all();
      if (ctx.rank() == 1) {
        const std::uint64_t entry = 0xB0;
        win.put(&entry, 8, 0, addr_b[0]);
        win.flush(0);
      }
      win.unlock_all();
      ctx.barrier();

      if (ctx.rank() == 0) {
        std::printf("%s  log: %llx %llx %llx %llx | %llx\n", name,
                    (unsigned long long)segment_a[0],
                    (unsigned long long)segment_a[1],
                    (unsigned long long)segment_a[2],
                    (unsigned long long)segment_a[3],
                    (unsigned long long)segment_b[0]);
        win.detach(segment_a.data());
        win.detach(segment_b.data());
      }
      win.free();
    });
  }
  return 0;
}

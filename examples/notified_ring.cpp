// Notified access extension demo: a ring pipeline where each stage pushes
// its result to the next rank with put_notify — data and readiness flag
// travel in one operation, no epochs, no receiver-side gets.
//
// Usage: ./examples/notified_ring [rounds]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/notify.hpp"

using namespace fompi;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 6;
  constexpr int kRanks = 4;
  fabric::run_ranks(kRanks, [&](fabric::RankCtx& ctx) {
    core::NotifyWin win(ctx, 64, /*num_ids=*/1);
    const int next = (ctx.rank() + 1) % kRanks;

    // Rank 0 seeds the token; every stage increments and forwards it.
    if (ctx.rank() == 0) {
      const std::uint64_t seed = 1000;
      win.put_notify(&seed, sizeof(seed), next, 0, 0);
    }
    for (int r = 0; r < rounds; ++r) {
      win.wait_notify(0);
      std::uint64_t token = 0;
      std::memcpy(&token, win.base(), sizeof(token));
      if (ctx.rank() == 0) {
        std::printf("round %d: token came home as %llu\n", r,
                    static_cast<unsigned long long>(token));
      }
      ++token;
      // The token visits rank 0 last in every lap; after the final lap it
      // stops there (a further put would never be consumed).
      const bool last = r == rounds - 1 && ctx.rank() == 0;
      if (!last) win.put_notify(&token, sizeof(token), next, 0, 0);
    }
    ctx.barrier();
    win.destroy(ctx);
  });
  std::puts("notified_ring: done");
  return 0;
}

// Dynamic sparse data exchange demo (the Sec 4.2 motif).
//
// Each of 8 ranks has 8-byte messages for 6 random peers; nobody knows in
// advance how many messages it will receive. Runs the exchange with all
// four protocols of Hoefler et al. [15] and verifies they deliver the same
// multiset of messages.
//
// Usage: ./examples/dsde_demo [k_neighbors]
#include <cstdio>
#include <cstdlib>

#include "apps/dsde.hpp"
#include "common/timing.hpp"

using namespace fompi;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 6;
  constexpr int kRanks = 8;

  for (const auto proto :
       {apps::DsdeProto::alltoall, apps::DsdeProto::alltoall_p2p,
        apps::DsdeProto::reduce_scatter, apps::DsdeProto::nbx,
        apps::DsdeProto::rma}) {
    double us = 0;
    std::uint64_t delivered = 0, checksum = 0;
    fabric::run_ranks(kRanks, [&](fabric::RankCtx& ctx) {
      const auto sends =
          apps::dsde_random_workload(ctx.rank(), kRanks, k, /*seed=*/2024);
      ctx.barrier();
      Timer t;
      const auto received = apps::dsde_exchange(ctx, proto, sends);
      const double mine_us = t.elapsed_us();
      std::uint64_t local_n = received.size(), local_sum = 0;
      for (const auto& m : received) local_sum += m.payload;
      std::uint64_t n = 0, sum = 0;
      ctx.allreduce(&local_n, &n, 1,
                    [](std::uint64_t a, std::uint64_t b) { return a + b; });
      ctx.allreduce(&local_sum, &sum, 1,
                    [](std::uint64_t a, std::uint64_t b) { return a + b; });
      if (ctx.rank() == 0) {
        us = mine_us;
        delivered = n;
        checksum = sum;
      }
    });
    std::printf("%-16s delivered %4llu msgs in %8.1f us (payload checksum %016llx)\n",
                apps::to_string(proto),
                static_cast<unsigned long long>(delivered), us,
                static_cast<unsigned long long>(checksum));
  }
  return 0;
}

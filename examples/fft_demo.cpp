// 3D FFT demo (the Sec 4.3 study).
//
// Transforms a 32x16x32 complex grid distributed over 4 ranks, once with
// the nonblocking-MPI transpose and once with the RMA slab-overlap
// schedule, verifies the round trip, and reports timings.
//
// Usage: ./examples/fft_demo
#include <cstdio>

#include "apps/fft.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

using namespace fompi;
using apps::cplx;

int main() {
  constexpr int kRanks = 4;
  constexpr int nx = 32, ny = 16, nz = 32;

  for (const auto backend :
       {apps::FftBackend::p2p, apps::FftBackend::rma_overlap,
        apps::FftBackend::alltoallv}) {
    const char* name = backend == apps::FftBackend::p2p ? "nonblocking MPI"
                       : backend == apps::FftBackend::rma_overlap
                           ? "RMA overlap"
                           : "RMA alltoallv";
    double us = 0, err = 0;
    fabric::run_ranks(kRanks, [&](fabric::RankCtx& ctx) {
      apps::Fft3d fft(ctx, nx, ny, nz, backend);
      Rng rng(10 + static_cast<std::uint64_t>(ctx.rank()));
      std::vector<cplx> in(fft.local_in_elems());
      for (auto& v : in) v = cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
      std::vector<cplx> freq(fft.local_out_elems());
      std::vector<cplx> back(fft.local_in_elems());
      ctx.barrier();
      Timer t;
      fft.forward(ctx, in.data(), freq.data());
      fft.inverse(ctx, freq.data(), back.data());
      const double mine_us = t.elapsed_us();
      double local_err = 0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        local_err = std::max(local_err, std::abs(back[i] - in[i]));
      }
      double max_e = 0;
      ctx.allreduce(&local_err, &max_e, 1,
                    [](double a, double b) { return std::max(a, b); });
      if (ctx.rank() == 0) {
        us = mine_us;
        err = max_e;
      }
      fft.destroy(ctx);
    });
    std::printf("%-16s %dx%dx%d on %d ranks: roundtrip %8.0f us, max err %.2e\n",
                name, nx, ny, nz, kRanks, us, err);
  }
  return 0;
}

// MILC-like lattice CG demo (the Sec 4.4 study).
//
// Solves (I + kappa*L) x = b on a 4D lattice decomposed over 4 ranks,
// once with MPI-1 sendrecv halos and once with the paper's RMA scheme
// (pack -> flush -> atomic flag -> neighbor gets). Both must converge in
// the same number of iterations to the same solution.
//
// Usage: ./examples/stencil_overlap
#include <cstdio>

#include "apps/milc.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

using namespace fompi;

int main() {
  constexpr int kRanks = 4;
  for (const auto backend : {apps::MilcBackend::p2p, apps::MilcBackend::rma}) {
    const char* name =
        backend == apps::MilcBackend::p2p ? "MPI-1 sendrecv" : "MPI-3 RMA";
    apps::MilcConfig cfg;
    cfg.local = {4, 4, 4, 4};
    cfg.grid = apps::milc_default_grid(kRanks);
    cfg.backend = backend;
    double us = 0, final_res = 0;
    int iters = 0;
    fabric::run_ranks(kRanks, [&](fabric::RankCtx& ctx) {
      apps::MilcSolver solver(ctx, cfg);
      Rng rng(5 + static_cast<std::uint64_t>(ctx.rank()));
      std::vector<double> b(solver.local_sites());
      for (auto& v : b) v = rng.uniform() - 0.5;
      std::vector<double> x, history;
      ctx.barrier();
      Timer t;
      const int it = solver.solve_cg(ctx, b, x, 1e-10, 500, &history);
      const double mine_us = t.elapsed_us();
      if (ctx.rank() == 0) {
        us = mine_us;
        iters = it;
        final_res = history.empty() ? 0.0 : history.back();
      }
      solver.destroy(ctx);
    });
    std::printf("%-16s grid %dx%dx%dx%d: CG converged in %3d iters, "
                "residual %.2e, %8.0f us\n",
                name, cfg.grid[0], cfg.grid[1], cfg.grid[2], cfg.grid[3],
                iters, final_res, us);
  }
  return 0;
}

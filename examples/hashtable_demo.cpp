// Distributed hashtable demo (the Sec 4.1 motif).
//
// Eight ranks insert random 64-bit keys into a hashtable whose buckets are
// spread across all ranks; inserts are one-sided CAS/fetch-add operations,
// so no rank ever actively receives. Compares the RMA, UPC-like and MPI-1
// active-message backends on the same workload.
//
// Usage: ./examples/hashtable_demo [keys_per_rank]
#include <cstdio>
#include <cstdlib>

#include "apps/hashtable.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

using namespace fompi;

int main(int argc, char** argv) {
  const int per_rank = argc > 1 ? std::atoi(argv[1]) : 2000;
  constexpr int kRanks = 8;

  for (const auto backend :
       {apps::HtBackend::rma, apps::HtBackend::pgas, apps::HtBackend::p2p}) {
    const char* name = backend == apps::HtBackend::rma   ? "MPI-3 RMA"
                       : backend == apps::HtBackend::pgas ? "UPC-like"
                                                          : "MPI-1 p2p";
    double elapsed_us = 0;
    std::uint64_t stored = 0;
    fabric::run_ranks(kRanks, [&](fabric::RankCtx& ctx) {
      apps::DistHashtable table(ctx, backend, /*table_slots=*/4096,
                                /*heap_slots=*/4 * 4096);
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(ctx.rank()));
      std::vector<std::uint64_t> keys;
      keys.reserve(static_cast<std::size_t>(per_rank));
      for (int i = 0; i < per_rank; ++i) keys.push_back(rng.next() | 1);

      ctx.barrier();
      Timer t;
      table.batch_insert(ctx, keys);
      const double us = t.elapsed_us();

      // Spot-check membership through one-sided lookups.
      if (backend != apps::HtBackend::p2p) {
        for (int i = 0; i < 10; ++i) {
          if (!table.contains(keys[static_cast<std::size_t>(i)])) {
            std::fprintf(stderr, "lost key!\n");
            std::abort();
          }
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        elapsed_us = us;
        stored = table.global_count(ctx);
      } else {
        table.global_count(ctx);
      }
      table.destroy(ctx);
    });
    const double total = static_cast<double>(per_rank) * kRanks;
    std::printf("%-10s  %8.0f inserts  %8.0f us  %7.2f M inserts/s  (%llu stored)\n",
                name, total, elapsed_us, total / elapsed_us,
                static_cast<unsigned long long>(stored));
  }
  return 0;
}

// Figure 4: put/get latency, inter-node (a, b) and intra-node (c), for
// foMPI MPI-3.0, the UPC- and CAF-like PGAS layers, the MPI-2.2-style
// one-sided comparator, and MPI-1 ping-pong.
//
// All series run the real protocol code over the simulated NIC with the
// Gemini cost model injected; remote completion is guaranteed per
// measurement (lock + flush for RMA, upc_fence for PGAS), matching the
// paper's methodology.
#include "baselines/mpi22_rma.hpp"
#include "baselines/pgas.hpp"
#include "bench_util.hpp"
#include "core/window.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

const std::vector<std::size_t> kSizes{8, 64, 512, 4096, 32768, 262144};
constexpr int kIters = 20;
constexpr int kReps = 5;

double fompi_put_us(fabric::RankCtx& ctx, std::size_t size, bool get) {
  static thread_local std::vector<std::byte> buf;
  buf.resize(size);
  core::Win win = core::Win::allocate(ctx, 262144);
  double us = 0;
  if (ctx.rank() == 0) {
    win.lock(core::LockType::exclusive, 1);
    Timer t;
    for (int i = 0; i < kIters; ++i) {
      if (get) {
        win.get(buf.data(), size, 1, 0);
      } else {
        win.put(buf.data(), size, 1, 0);
      }
      win.flush(1);
    }
    us = t.elapsed_us() / kIters;
    win.unlock(1);
  }
  ctx.barrier();
  win.free();
  return us;
}

double mpi22_put_us(fabric::RankCtx& ctx, std::size_t size) {
  static thread_local std::vector<std::byte> buf;
  buf.resize(size);
  baselines::Mpi22Win win = baselines::Mpi22Win::allocate(ctx, 262144);
  double us = 0;
  if (ctx.rank() == 0) {
    win.lock(core::LockType::exclusive, 1);
    Timer t;
    for (int i = 0; i < kIters; ++i) {
      win.put(buf.data(), size, 1, 0);
      win.flush(1);
    }
    us = t.elapsed_us() / kIters;
    win.unlock(1);
  }
  ctx.barrier();
  win.free();
  return us;
}

double pgas_put_us(fabric::RankCtx& ctx, std::size_t size,
                   const baselines::PgasConfig& cfg) {
  static thread_local std::vector<std::byte> buf;
  buf.resize(size);
  baselines::SharedArray arr(ctx, 262144, cfg);
  double us = 0;
  if (ctx.rank() == 0) {
    Timer t;
    for (int i = 0; i < kIters; ++i) {
      arr.memput(1, 0, buf.data(), size);
      arr.fence();
    }
    us = t.elapsed_us() / kIters;
  }
  ctx.barrier();
  arr.destroy(ctx);
  return us;
}

double mpi1_pingpong_us(fabric::RankCtx& ctx, std::size_t size) {
  static thread_local std::vector<std::byte> buf;
  buf.resize(size);
  auto& p2p = ctx.fabric().p2p();
  Timer t;
  for (int i = 0; i < kIters; ++i) {
    if (ctx.rank() == 0) {
      p2p.send(0, 1, 0, buf.data(), size);
      p2p.recv(0, 1, 1, buf.data(), size);
    } else {
      p2p.recv(1, 0, 0, buf.data(), size);
      p2p.send(1, 0, 1, buf.data(), size);
    }
  }
  return t.elapsed_us() / (2.0 * kIters);  // half round trip
}

void panel(const char* title, const fabric::FabricOptions& opts) {
  header(title);
  std::printf("%-24s", "size [B]");
  for (auto s : kSizes) std::printf("%12zu", s);
  std::printf("\n");

  auto series = [&](const char* name,
                    const std::function<double(fabric::RankCtx&, std::size_t)>&
                        fn) {
    std::vector<double> vals;
    for (auto s : kSizes) {
      vals.push_back(
          measure(2, opts, kReps, [&](fabric::RankCtx& ctx) {
            return fn(ctx, s);
          }).median_us);
    }
    row(name, vals);
  };
  series("FOMPI MPI-3.0 Put", [](fabric::RankCtx& c, std::size_t s) {
    return fompi_put_us(c, s, false);
  });
  series("FOMPI MPI-3.0 Get", [](fabric::RankCtx& c, std::size_t s) {
    return fompi_put_us(c, s, true);
  });
  series("Cray-UPC-like", [](fabric::RankCtx& c, std::size_t s) {
    return pgas_put_us(c, s, baselines::make_upc_like());
  });
  series("Cray-CAF-like", [](fabric::RankCtx& c, std::size_t s) {
    return pgas_put_us(c, s, baselines::make_caf_like());
  });
  series("Cray MPI-2.2-like", [](fabric::RankCtx& c, std::size_t s) {
    return mpi22_put_us(c, s);
  });
  series("MPI-1 Send/Recv", [](fabric::RankCtx& c, std::size_t s) {
    return mpi1_pingpong_us(c, s);
  });
}

}  // namespace

int main() {
  std::printf("Figure 4: remote put/get latency [us] (medians of %d reps)\n",
              kReps);
  panel("Fig 4a/4b: inter-node (DMAPP model)", internode_model());
  panel("Fig 4c: intra-node (XPMEM path)", intranode_model());
  std::printf("\nExpected shape: foMPI lowest for small sizes (~1us put, "
              "~1.9us get inter-node);\nPGAS layers ~1-2us above; MPI-2.2 "
              "~10x; all transports converge at large sizes.\n");
  return 0;
}

// Ablation: notified access vs the paper's flag+get scheme.
//
// The paper's MILC communication needs three network operations per
// neighbor (flag AMO by the producer, then a get and its flush by the
// consumer). The notified-access extension (NotifyWin) delivers data and
// notification in one producer-side call. This bench measures a halo-like
// ring exchange with both schemes and with MPI-1 messages.
#include "apps/milc.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

double exchange_us(int p, apps::MilcBackend backend) {
  return measure(p, internode_model(), 3, [&](fabric::RankCtx& ctx) {
           apps::MilcConfig cfg;
           cfg.local = {4, 4, 4, 4};
           cfg.grid = apps::milc_default_grid(p);
           cfg.backend = backend;
           apps::MilcSolver solver(ctx, cfg);
           std::vector<double> field(solver.local_sites(), 1.0);
           std::vector<double> out;
           solver.apply_operator(ctx, field, out);  // warm-up
           ctx.barrier();
           Timer t;
           for (int i = 0; i < 5; ++i) {
             solver.apply_operator(ctx, field, out);
           }
           const double us = t.elapsed_us() / 5;
           solver.destroy(ctx);
           return us;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Ablation: halo-exchange schemes (one operator application, "
              "4^4 local lattice) [us]\n\n");
  std::printf("%-8s%18s%18s%18s%18s\n", "p", "MPI-1 sendrecv",
              "flag+get (paper)", "notified access", "put-with-notify");
  for (int p : {2, 4, 8}) {
    std::printf("%-8d%18.0f%18.0f%18.0f%18.0f\n", p,
                exchange_us(p, apps::MilcBackend::p2p),
                exchange_us(p, apps::MilcBackend::rma),
                exchange_us(p, apps::MilcBackend::rma_notified),
                exchange_us(p, apps::MilcBackend::rma_notify_queue));
  }
  std::printf("\nExpected: notified access saves the consumer-side get+flush "
              "round trips of the\npaper's scheme (producer pushes data and "
              "flag together) — the foMPI-NA follow-up.\nput-with-notify "
              "routes the same exchange through the first-class notification"
              "\nring (sequenced records, tag matching) instead of "
              "per-direction flag words.\n");
  return 0;
}

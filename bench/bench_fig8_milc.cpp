// Figure 8: MILC full-application completion time, weak scaling with a
// 4^3 x 8 local lattice — MPI-1 vs foMPI RMA vs UPC-like.
//
// Real runs: the lattice CG proxy on 4/8 thread ranks with both halo
// backends under the Gemini model. Scaling tail: the weak-scaling
// completion-time model at the paper's 4k..512k process counts, printing
// the improvement annotations of Fig 8.
#include "apps/milc.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "simtime/sim_apps.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

double run_cg_us(int p, apps::MilcBackend backend) {
  return measure(p, internode_model(), 3, [&](fabric::RankCtx& ctx) {
           apps::MilcConfig cfg;
           cfg.local = {4, 4, 4, 8};
           cfg.grid = apps::milc_default_grid(p);
           cfg.backend = backend;
           apps::MilcSolver solver(ctx, cfg);
           Rng rng(1 + static_cast<std::uint64_t>(ctx.rank()));
           std::vector<double> b(solver.local_sites());
           for (auto& v : b) v = rng.uniform() - 0.5;
           std::vector<double> x;
           ctx.barrier();
           Timer t;
           (void)solver.solve_cg(ctx, b, x, 1e-6, 25);
           const double us = t.elapsed_us();
           solver.destroy(ctx);
           return us;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Figure 8: MILC weak scaling, local lattice 4^3 x 8\n\n");

  header("thread-rank execution: CG solve (<=25 iters) [us]");
  std::printf("%-8s%18s%18s%14s\n", "p", "MPI-1 halos", "FOMPI RMA halos",
              "improvement");
  for (int p : {4, 8}) {
    const double mpi1 = run_cg_us(p, apps::MilcBackend::p2p);
    const double rma = run_cg_us(p, apps::MilcBackend::rma);
    std::printf("%-8d%18.0f%18.0f%13.1f%%\n", p, mpi1, rma,
                100.0 * (mpi1 - rma) / mpi1);
  }

  header("weak-scaling model to 512k processes [s]");
  std::printf("%-10s%12s%12s%12s%16s\n", "p", "MPI-1", "UPC-like", "FOMPI",
              "gain vs MPI-1");
  for (int p = 4096; p <= 524288; p *= 2) {
    const auto s = sim::simulate_milc(p);
    std::printf("%-10d%12.1f%12.1f%12.1f%15.1f%%\n", p, s.mpi1_s, s.upc_s,
                s.fompi_s, 100.0 * (s.mpi1_s - s.fompi_s) / s.mpi1_s);
  }
  std::printf("\nExpected shape: foMPI and UPC nearly identical; full-app "
              "improvement of\nroughly 5-15%% over MPI-1, growing with "
              "scale (the paper reports 13.8%% at 512k).\n");
  return 0;
}

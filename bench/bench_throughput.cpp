// Throughput mode: doorbell batching and multi-channel striping under the
// injected Gemini cost model (Injection::model — these are MODELED numbers,
// not host timings; see CLAUDE.md).
//
// Two questions, each with a built-in acceptance gate (exit 1 on violation):
//
//   1. Small-op injection rate: 8-byte implicit puts, unbatched vs
//      auto-batched at 1/2/4 channels. Doorbell coalescing must deliver
//      >= 2x the unbatched rate (the Fig 5b plateau is overhead-limited;
//      one doorbell per batch amortizes it away).
//   2. Large-transfer striping: one 1 MiB blocking put with the payload
//      striped round-robin across 1/2/4 BTE channels. Modeled wall time
//      must decrease monotonically with the channel count.
//
// Output: one JSON object on stdout (consumed by scripts/bench_smoke.sh as
// BENCH_throughput.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "rdma/nic.hpp"

using namespace fompi;
using namespace fompi::rdma;

namespace {

constexpr int kReps = 5;
constexpr int kSmallOps = 4096;     // 8-byte puts per timed rep
constexpr std::size_t kBigBytes = std::size_t{1} << 20;  // striped transfer

DomainConfig internode_model(const NicConfig& nic) {
  DomainConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
  cfg.inject = Injection::model;
  cfg.delivery = Delivery::immediate;
  cfg.nic = nic;
  return cfg;
}

/// Median wall time of kReps runs of `body` (one warmup rep first).
template <typename Body>
double median_ns(Body&& body) {
  body();  // warmup
  std::vector<double> ns;
  ns.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    body();
    ns.push_back(static_cast<double>(t.elapsed_ns()));
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

struct RateResult {
  std::string name;
  int channels = 1;
  bool batched = false;
  double mops_per_s = 0;
  std::uint64_t doorbells = 0;   ///< doorbells rung per timed rep
  std::uint64_t batched_ops = 0; ///< ops that rode a coalesced doorbell
};

/// 8-byte implicit-put injection rate (gsync-completed), Mops/s.
RateResult small_op_rate(const std::string& name, const NicConfig& nic) {
  Domain dom(internode_model(nic));
  Nic& n = dom.nic(0);
  AlignedBuffer mem(1 << 16);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
  alignas(8) std::uint64_t src = 0x0123456789abcdefull;

  const std::uint64_t db_before = n.doorbells_rung();
  const OpCounters before = op_counters();
  const double ns = median_ns([&] {
    for (int i = 0; i < kSmallOps; ++i) n.put_nbi(1, d, (i % 64) * 8u, &src, 8);
    n.gsync();
  });
  const OpCounters delta = op_counters().since(before);

  RateResult r;
  r.name = name;
  r.channels = nic.channels;
  r.batched = nic.auto_batch;
  r.mops_per_s = kSmallOps / ns * 1e3;
  r.doorbells = (n.doorbells_rung() - db_before) / (kReps + 1);
  r.batched_ops = delta.get(Op::batched_op) / (kReps + 1);
  return r;
}

struct StripeResult {
  int channels = 1;
  double us_per_put = 0;  ///< modeled wall time of one 1 MiB blocking put
};

StripeResult stripe_time(int channels) {
  NicConfig nic;
  nic.channels = channels;
  Domain dom(internode_model(nic));
  Nic& n = dom.nic(0);
  AlignedBuffer mem(2 * kBigBytes);
  const RegionDesc d =
      dom.registry().register_region(1, mem.data(), 2 * kBigBytes);
  AlignedBuffer payload(kBigBytes);

  StripeResult r;
  r.channels = channels;
  r.us_per_put =
      median_ns([&] { n.put(1, d, 0, payload.data(), kBigBytes); }) / 1e3;
  return r;
}

}  // namespace

int main() {
  std::vector<RateResult> rates;
  {
    NicConfig unbatched;  // defaults: no batching, one channel
    rates.push_back(small_op_rate("put8_nbi_unbatched", unbatched));
    for (int ch : {1, 2, 4}) {
      NicConfig nic;
      nic.auto_batch = true;
      nic.channels = ch;
      rates.push_back(
          small_op_rate("put8_nbi_batched_ch" + std::to_string(ch), nic));
    }
  }
  std::vector<StripeResult> stripes;
  for (int ch : {1, 2, 4}) stripes.push_back(stripe_time(ch));

  std::printf("{\n  \"bench\": \"throughput\",\n  \"injection\": \"model\",\n");
  std::printf("  \"small_op_bytes\": 8,\n  \"ops_per_rep\": %d,\n", kSmallOps);
  std::printf("  \"cases\": [\n");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RateResult& r = rates[i];
    std::printf("    {\"name\": \"%s\", \"channels\": %d, \"batched\": %s, "
                "\"mops_per_s\": %.2f, \"doorbells_per_rep\": %llu, "
                "\"batched_ops_per_rep\": %llu}%s\n",
                r.name.c_str(), r.channels, r.batched ? "true" : "false",
                r.mops_per_s, static_cast<unsigned long long>(r.doorbells),
                static_cast<unsigned long long>(r.batched_ops),
                i + 1 == rates.size() ? "" : ",");
  }
  std::printf("  ],\n  \"stripe_1mib_put\": [\n");
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    std::printf("    {\"channels\": %d, \"us_per_put\": %.1f}%s\n",
                stripes[i].channels, stripes[i].us_per_put,
                i + 1 == stripes.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");

  // --- acceptance gates ----------------------------------------------------
  int rc = 0;
  const double unbatched = rates[0].mops_per_s;
  const double batched1 = rates[1].mops_per_s;
  if (batched1 < 2.0 * unbatched) {
    std::fprintf(stderr,
                 "FAIL: batched rate %.2f Mops/s < 2x unbatched %.2f Mops/s\n",
                 batched1, unbatched);
    rc = 1;
  }
  if (rates[1].doorbells == 0 || rates[1].batched_ops == 0) {
    std::fprintf(stderr, "FAIL: batched case rang no coalesced doorbells\n");
    rc = 1;
  }
  for (std::size_t i = 1; i < stripes.size(); ++i) {
    if (stripes[i].us_per_put >= stripes[i - 1].us_per_put) {
      std::fprintf(stderr,
                   "FAIL: striping not monotone: ch%d %.1f us >= ch%d %.1f us\n",
                   stripes[i].channels, stripes[i].us_per_put,
                   stripes[i - 1].channels, stripes[i - 1].us_per_put);
      rc = 1;
    }
  }
  return rc;
}

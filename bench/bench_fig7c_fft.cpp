// Figure 7c: 3D FFT performance — "nonblocking MPI" vs the RMA/UPC slab
// overlap schedule.
//
// Real runs: a 32x16x32 transform on 4 thread ranks with the Gemini model,
// both transpose engines. Scaling tail: the strong-scaling model for the
// paper's class D problem (2048x1024x1024) at 1k..64k processes, with the
// per-transport overlap efficiencies measured in Fig 5a.
#include "apps/fft.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "simtime/sim_apps.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

double run_fft_us(int p, apps::FftBackend backend) {
  constexpr int nx = 32, ny = 16, nz = 32;
  return measure(p, internode_model(), 7, [&](fabric::RankCtx& ctx) {
           apps::Fft3d fft(ctx, nx, ny, nz, backend);
           Rng rng(3 + static_cast<std::uint64_t>(ctx.rank()));
           std::vector<apps::cplx> in(fft.local_in_elems());
           for (auto& v : in) {
             v = apps::cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
           }
           std::vector<apps::cplx> out(fft.local_out_elems());
           ctx.barrier();
           Timer t;
           fft.forward(ctx, in.data(), out.data());
           const double us = t.elapsed_us();
           fft.destroy(ctx);
           return us;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Figure 7c: 3D FFT performance\n\n");

  header("thread-rank execution: 32x16x32 forward on 4 ranks [us]");
  const double p2p_us = run_fft_us(4, apps::FftBackend::p2p);
  const double rma_us = run_fft_us(4, apps::FftBackend::rma_overlap);
  const double a2av_us = run_fft_us(4, apps::FftBackend::alltoallv);
  std::printf("%-24s%12.0f\n", "nonblocking MPI", p2p_us);
  std::printf("%-24s%12.0f\n", "FOMPI slab overlap", rma_us);
  std::printf("%-24s%12.0f\n", "FOMPI alltoallv", a2av_us);
  std::printf("%-24s%11.1f%%  (overlap vs MPI)\n", "improvement",
              100.0 * (p2p_us - rma_us) / p2p_us);
  std::printf("%-24s%11.1f%%  (alltoallv vs MPI)\n", "improvement",
              100.0 * (p2p_us - a2av_us) / p2p_us);
  std::printf("%-24s%11.1f%%  (alltoallv vs overlap: old RMA -> new RMA)\n",
              "improvement", 100.0 * (rma_us - a2av_us) / rma_us);

  header("strong-scaling model, class D (2048x1024x1024) [GFlop/s]");
  std::printf("%-10s%14s%14s%14s%14s\n", "p", "MPI-1", "UPC-like",
              "FOMPI", "gain vs MPI-1");
  for (int p = 1024; p <= 65536; p *= 2) {
    const auto s = sim::simulate_fft(p);
    std::printf("%-10d%14.0f%14.0f%14.0f%13.1f%%\n", p, s.mpi1_gflops,
                s.upc_gflops, s.fompi_gflops,
                100.0 * (s.fompi_gflops - s.mpi1_gflops) / s.mpi1_gflops);
  }
  std::printf("\nExpected shape: modest gains at 1k processes growing to "
              "~2x at 64k, foMPI\nslightly above UPC (lower static "
              "overhead, cf. Fig 5a) — the Fig 7c annotations.\n");
  return 0;
}

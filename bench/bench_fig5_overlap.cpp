// Figure 5a: communication/computation overlap for Put, inter-node.
//
// The paper's method: calibrate a compute loop to take slightly longer
// than the communication latency, issue the put, run the computation,
// synchronize, and compute the overlappable fraction
//   overlap = (T_comm + T_comp - T_combined) / T_comm.
// XPMEM transports cannot overlap (the copy runs on the origin CPU), so
// only the inter-node panel is meaningful — as in the paper.
#include "baselines/mpi22_rma.hpp"
#include "baselines/pgas.hpp"
#include "bench_util.hpp"
#include "core/window.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

const std::vector<std::size_t> kSizes{8, 512, 4096, 32768, 262144, 2097152};
constexpr int kIters = 10;

/// Spin compute kernel of a given duration (returns measured time).
double compute_for_us(double us) {
  Timer t;
  spin_for_ns(static_cast<std::uint64_t>(us * 1e3));
  return t.elapsed_us();
}

struct OverlapResult {
  double overlap_pct;
};

template <class PutFn, class SyncFn>
OverlapResult run_overlap(PutFn&& put, SyncFn&& sync) {
  // T_comm: put + completion.
  Timer tc;
  for (int i = 0; i < kIters; ++i) {
    put();
    sync();
  }
  const double comm = tc.elapsed_us() / kIters;
  const double comp_target = comm * 1.1;
  // T_comp alone.
  Timer tp;
  for (int i = 0; i < kIters; ++i) compute_for_us(comp_target);
  const double comp = tp.elapsed_us() / kIters;
  // Combined: put, compute, complete.
  Timer tb;
  for (int i = 0; i < kIters; ++i) {
    put();
    compute_for_us(comp_target);
    sync();
  }
  const double combined = tb.elapsed_us() / kIters;
  const double overlap =
      std::clamp((comm + comp - combined) / comm, 0.0, 1.0);
  return OverlapResult{100.0 * overlap};
}

}  // namespace

int main() {
  std::printf("Figure 5a: overlappable fraction of Put communication "
              "[%%], inter-node\n");
  std::printf("%-24s", "size [B]");
  for (auto s : kSizes) std::printf("%12zu", s);
  std::printf("\n");

  const auto opts = internode_model();

  // foMPI MPI-3.0.
  {
    std::vector<double> vals;
    for (auto s : kSizes) {
      vals.push_back(measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
                       static thread_local std::vector<std::byte> buf;
                       buf.resize(s);
                       core::Win win = core::Win::allocate(ctx, kSizes.back());
                       double r = 0;
                       if (ctx.rank() == 0) {
                         win.lock(core::LockType::exclusive, 1);
                         r = run_overlap(
                                 [&] { win.put(buf.data(), s, 1, 0); },
                                 [&] { win.flush(1); })
                                 .overlap_pct;
                         win.unlock(1);
                       }
                       ctx.barrier();
                       win.free();
                       return r;
                     }).median_us);
    }
    row("FOMPI MPI-3.0", vals, "%12.0f");
  }
  // UPC-like.
  {
    std::vector<double> vals;
    for (auto s : kSizes) {
      vals.push_back(measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
                       static thread_local std::vector<std::byte> buf;
                       buf.resize(s);
                       baselines::SharedArray arr(ctx, kSizes.back(),
                                                  baselines::make_upc_like());
                       double r = 0;
                       if (ctx.rank() == 0) {
                         r = run_overlap(
                                 [&] { arr.memput(1, 0, buf.data(), s); },
                                 [&] { arr.fence(); })
                                 .overlap_pct;
                       }
                       ctx.barrier();
                       arr.destroy(ctx);
                       return r;
                     }).median_us);
    }
    row("Cray-UPC-like", vals, "%12.0f");
  }
  // MPI-2.2-like: the large per-op software charge happens at issue and
  // cannot be hidden, but the network part still overlaps — with its much
  // higher latency the overlappable share is larger (cf. the paper's note
  // under Fig 5).
  {
    std::vector<double> vals;
    for (auto s : kSizes) {
      vals.push_back(measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
                       static thread_local std::vector<std::byte> buf;
                       buf.resize(s);
                       baselines::Mpi22Win win =
                           baselines::Mpi22Win::allocate(ctx, kSizes.back());
                       double r = 0;
                       if (ctx.rank() == 0) {
                         win.lock(core::LockType::exclusive, 1);
                         r = run_overlap(
                                 [&] { win.put(buf.data(), s, 1, 0); },
                                 [&] { win.flush(1); })
                                 .overlap_pct;
                         win.unlock(1);
                       }
                       ctx.barrier();
                       win.free();
                       return r;
                     }).median_us);
    }
    row("Cray MPI-2.2-like", vals, "%12.0f");
  }
  std::printf("\nExpected shape: high overlap for small/medium puts on the "
              "RMA transports,\ndipping near the BTE protocol change and "
              "recovering for bulk sizes (Fig 5a).\n");
  return 0;
}

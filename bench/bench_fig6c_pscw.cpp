// Figure 6c: general active target (PSCW) latency on a ring (k = 2
// neighbors) vs process count, foMPI against the Cray-MPI-like comparator.
//
// An ideal implementation is O(1) in p; the paper shows foMPI flat (with
// system noise beyond ~1k processes) while Cray MPI grows systematically.
#include "bench_util.hpp"
#include "core/window.hpp"
#include "simtime/sim_sync.hpp"

using namespace fompi;
using namespace fompi::bench;

int main() {
  std::printf("Figure 6c: PSCW ring synchronization latency [us]\n\n");

  header("thread-rank execution (real matching-list protocol)");
  std::printf("%-12s%14s\n", "p", "foMPI PSCW");
  for (int p : {2, 4, 8, 12}) {
    const double us =
        measure(p, internode_model(), 3, [&](fabric::RankCtx& ctx) {
          core::Win win = core::Win::allocate(ctx, 64);
          const int left = (ctx.rank() + p - 1) % p;
          const int right = (ctx.rank() + 1) % p;
          fabric::Group nb =
              p == 2 ? fabric::Group{1 - ctx.rank()} : fabric::Group{left,
                                                                     right};
          // Warm-up round, then timed rounds.
          win.post(nb);
          win.start(nb);
          win.complete();
          win.wait();
          Timer t;
          for (int i = 0; i < 5; ++i) {
            win.post(nb);
            win.start(nb);
            win.complete();
            win.wait();
          }
          const double v = t.elapsed_us() / 5;
          win.free();
          return v;
        }).median_us;
    std::printf("%-12d%14.2f\n", p, us);
  }

  header("discrete-event simulation to 128k processes");
  std::printf("%-12s%14s%14s\n", "p", "FOMPI", "Cray-MPI-like");
  for (int p = 2; p <= 131072; p *= 4) {
    const auto s = sim::simulate_pscw_all(p, /*seed=*/11);
    std::printf("%-12d%14.1f%14.1f\n", p, s.fompi_us, s.craympi_us);
  }
  std::printf("\nExpected shape: foMPI nearly constant (noise-jittered past "
              "1k);\nthe comparator grows linearly with p (Fig 6c).\n");
  return 0;
}

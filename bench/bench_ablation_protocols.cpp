// Ablation: transport protocol switch points.
//
// (a) The two-sided baseline's eager/rendezvous threshold: sweeps the
//     threshold against message size — the structural overhead argument of
//     the paper's motivation section (eager pays a copy, rendezvous pays a
//     handshake).
// (b) PSCW vs fence crossover (Sec 6's decision rule): for which neighbor
//     counts k is general active target cheaper than a fence?
// (c) DES noise injection on the PSCW ring (the paper observes system
//     noise beyond 1k processes; refs [14,30]).
#include "bench_util.hpp"
#include "perfmodel/cost_functions.hpp"
#include "simtime/sim_sync.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

double pingpong_us(std::size_t size, std::size_t eager_threshold) {
  fabric::FabricOptions opts = internode_model();
  opts.eager_threshold = eager_threshold;
  return measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
           static thread_local std::vector<std::byte> buf;
           buf.resize(size);
           auto& p2p = ctx.fabric().p2p();
           Timer t;
           for (int i = 0; i < 10; ++i) {
             if (ctx.rank() == 0) {
               p2p.send(0, 1, 0, buf.data(), size);
               p2p.recv(0, 1, 1, buf.data(), size);
             } else {
               p2p.recv(1, 0, 0, buf.data(), size);
               p2p.send(1, 0, 1, buf.data(), size);
             }
           }
           return t.elapsed_us() / 20;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Ablation: protocol switch points\n");

  header("(a) eager vs rendezvous latency [us] by message size");
  const std::vector<std::size_t> sizes{512, 4096, 32768, 262144};
  std::printf("%-24s", "size [B]");
  for (auto s : sizes) std::printf("%12zu", s);
  std::printf("\n");
  {
    std::vector<double> eager, rndv;
    for (auto s : sizes) {
      eager.push_back(pingpong_us(s, /*threshold=*/1 << 20));  // all eager
      rndv.push_back(pingpong_us(s, /*threshold=*/0));         // all rndv
    }
    row("all-eager", eager);
    row("all-rendezvous", rndv);
    std::size_t crossover = sizes.back();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (rndv[i] < eager[i]) {
        crossover = sizes[i];
        break;
      }
    }
    std::printf("rendezvous wins from ~%zu bytes: the copy cost overtakes "
                "the handshake.\n", crossover);
  }

  header("(b) fence vs PSCW crossover (Sec 6 decision rule)");
  const perf::PaperModel pm;
  std::printf("%-10s%18s\n", "p", "critical k*");
  for (int p : {16, 256, 4096, 65536}) {
    int k = 1;
    while (pm.pscw_beats_fence(p, k) && k < 10000) ++k;
    std::printf("%-10d%18d\n", p, k - 1);
  }
  std::printf("PSCW pays off below k*; the fence's 2.9us*log2(p) wins "
              "above it.\n");

  header("(c) system noise on the PSCW ring (DES, p sweep)");
  std::printf("%-10s%16s%16s\n", "p", "quiet [us]", "noisy [us]");
  for (int p : {1024, 8192, 65536}) {
    sim::SyncParams quiet;
    sim::SyncParams noisy;
    noisy.noise = sim::Noise{0.02, 25.0};
    std::printf("%-10d%16.1f%16.1f\n", p,
                sim::simulate_pscw_ring(p, quiet),
                sim::simulate_pscw_ring(p, noisy));
  }
  std::printf("quiet rings are O(1) in p; injected OS noise produces the "
              "jitter the paper\nobserves on runs beyond ~1000 processes "
              "(Fig 6c).\n");
  return 0;
}

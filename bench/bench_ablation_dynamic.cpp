// Ablation: dynamic-window cache protocols (Sec 2.2) — the base id-counter
// poll vs the optimized invalidation-notify variant, across access and
// detach frequencies. Quantifies the paper's stated trade-off: notify
// wins on access latency, id-counter wins when detaches are frequent.
#include "bench_util.hpp"
#include "core/window.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {
constexpr int kAccesses = 50;

double access_us(core::DynMode mode, int detach_every) {
  fabric::FabricOptions opts = internode_model();
  return measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
           core::WinConfig cfg;
           cfg.dyn_mode = mode;
           core::Win win = core::Win::create_dynamic(ctx, cfg);
           static thread_local std::vector<std::uint64_t> mem;
           mem.assign(64, 0);
           win.attach(mem.data(), mem.size() * 8);
           std::array<std::uint64_t, 2> addrs{};
           const std::uint64_t mine =
               reinterpret_cast<std::uint64_t>(mem.data());
           ctx.allgather(&mine, 1, addrs.data());
           double us = 0;
           win.lock_all();
           const int peer = 1 - ctx.rank();
           std::uint64_t v = 0;
           win.get(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);
           win.flush(peer);  // warm the descriptor cache
           ctx.barrier();
           Timer t;
           for (int i = 1; i <= kAccesses; ++i) {
             win.get(&v, 8, peer, addrs[static_cast<std::size_t>(peer)]);
             win.flush(peer);
             if (detach_every > 0 && i % detach_every == 0) {
               // Forced churn: detach + re-attach invalidates remotely.
               win.unlock_all();
               ctx.barrier();
               win.detach(mem.data());
               win.attach(mem.data(), mem.size() * 8);
               ctx.barrier();
               win.lock_all();
             }
           }
           us = t.elapsed_us() / kAccesses;
           win.unlock_all();
           ctx.barrier();
           win.detach(mem.data());
           win.free();
           return us;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Ablation: dynamic-window descriptor-cache protocols "
              "[us/access]\n\n");
  std::printf("%-26s%16s%16s\n", "workload", "id-counter", "notify");
  struct Case {
    const char* name;
    int detach_every;
  };
  for (const Case c : {Case{"read-only (no detach)", 0},
                       Case{"detach every 25 accesses", 25},
                       Case{"detach every 5 accesses", 5}}) {
    std::printf("%-26s%16.2f%16.2f\n", c.name,
                access_us(core::DynMode::id_counter, c.detach_every),
                access_us(core::DynMode::notify, c.detach_every));
  }
  std::printf("\nExpected: notify ~one remote AMO cheaper per access in "
              "the stable case\n(the id poll costs a remote read every "
              "access); the gap narrows as detach\nfrequency rises and the "
              "notify variant keeps re-registering and refetching.\n");
  return 0;
}

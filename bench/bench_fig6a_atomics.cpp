// Figure 6a: atomic operation performance — DMAPP-accelerated SUM,
// non-accelerated MIN (fallback protocol), and CAS, for growing element
// counts of 8-byte values.
//
// Shows the trade-off the paper measures: the accelerated path has low
// small-count latency but pays one AMO per element; the lock-based
// fallback has a ~3x higher base cost but moves the whole span with two
// bulk transfers (higher asymptotic bandwidth).
#include "bench_util.hpp"
#include "core/window.hpp"
#include "perfmodel/fit.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {
const std::vector<std::size_t> kCounts{1, 4, 16, 64, 256, 1024, 4096};
constexpr int kIters = 5;
}  // namespace

int main() {
  std::printf("Figure 6a: atomics latency [us] vs number of 8-byte "
              "elements, inter-node\n");
  std::printf("%-24s", "elements");
  for (auto c : kCounts) std::printf("%12zu", c);
  std::printf("\n");

  const auto opts = internode_model();
  auto series = [&](const char* name, RedOp op) {
    std::vector<double> vals;
    for (auto c : kCounts) {
      vals.push_back(
          measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
            core::Win win = core::Win::allocate(ctx, kCounts.back() * 8);
            std::vector<std::uint64_t> operand(c, 1);
            double us = 0;
            if (ctx.rank() == 0) {
              win.lock(core::LockType::exclusive, 1);
              Timer t;
              for (int i = 0; i < kIters; ++i) {
                win.accumulate(operand.data(), c, Elem::u64, op, 1, 0);
                win.flush(1);
              }
              us = t.elapsed_us() / kIters;
              win.unlock(1);
            }
            ctx.barrier();
            win.free();
            return us;
          }).median_us);
    }
    row(name, vals);
    return vals;
  };

  const auto sum = series("FOMPI SUM (AMO)", RedOp::sum);
  const auto mn = series("FOMPI MIN (fallback)", RedOp::min);

  // CAS: single-element by definition.
  {
    std::vector<double> vals;
    vals.push_back(measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
                     core::Win win = core::Win::allocate(ctx, 64);
                     double us = 0;
                     if (ctx.rank() == 0) {
                       win.lock(core::LockType::exclusive, 1);
                       std::uint64_t d = 1, c0 = 0, old = 0;
                       Timer t;
                       for (int i = 0; i < 20; ++i) {
                         win.compare_and_swap(&d, &c0, &old, Elem::u64, 1, 0);
                       }
                       us = t.elapsed_us() / 20;
                       win.unlock(1);
                     }
                     ctx.barrier();
                     win.free();
                     return us;
                   }).median_us);
    row("FOMPI CAS (1 elem)", vals);
  }

  // Crossover check mirroring the figure: SUM wins for few elements, the
  // fallback's bulk transfer wins for many.
  std::printf("\ncrossover: SUM faster up to ");
  std::size_t cross = kCounts.back();
  for (std::size_t i = 0; i < kCounts.size(); ++i) {
    if (sum[i] > mn[i]) {
      cross = kCounts[i];
      break;
    }
  }
  std::printf("%zu elements (paper: accelerated path wins for small "
              "messages, locked path has higher bandwidth)\n", cross);
  return 0;
}

// Section 3 "table": the parametrized performance models.
//
// Measures every critical function of this implementation under the Gemini
// cost model, fits the paper's functional forms with least squares, and
// prints the fitted coefficients next to the paper's Blue Waters values:
//   P_put, P_get, P_acc_sum, P_acc_min, P_CAS, P_fence, P_post/complete/
//   start/wait, P_lock_excl, P_lock_shrd, P_lock_all, P_unlock, P_flush.
#include "bench_util.hpp"
#include "core/window.hpp"
#include "perfmodel/cost_functions.hpp"
#include "perfmodel/fit.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

constexpr int kIters = 20;

/// Measures one (size -> us) sweep with rank 0 driving rank 1.
std::vector<perf::Sample> sweep(
    const std::vector<std::size_t>& xs,
    const std::function<double(fabric::RankCtx&, std::size_t)>& fn) {
  std::vector<perf::Sample> out;
  for (auto x : xs) {
    const double us =
        measure(2, internode_model(), 3, [&](fabric::RankCtx& ctx) {
          return fn(ctx, x);
        }).median_us;
    out.push_back(perf::Sample{static_cast<double>(x), us});
  }
  return out;
}

void print_affine(const char* name, const perf::FitResult& fit,
                  double paper_base_us, double paper_slope_ns) {
  std::printf("%-14s = %7.3f ns/B * s + %6.2f us   (paper: %5.2f ns/B * s "
              "+ %5.2f us, R2=%.3f)\n",
              name, fit.slope_us_per_x * 1e3, fit.intercept_us,
              paper_slope_ns, paper_base_us, fit.r2);
}

void print_const(const char* name, double us, double paper_us) {
  std::printf("%-14s = %6.2f us                      (paper: %5.2f us)\n",
              name, us, paper_us);
}

}  // namespace

int main() {
  std::printf("Section 3 performance-model coefficients, fitted from "
              "measurements of this implementation\n\n");
  const perf::PaperModel pm;
  const std::vector<std::size_t> sizes{8, 64, 512, 2048, 3584};
  // (sizes stay below the BTE protocol switch, like the paper's fits)

  // P_put / P_get.
  auto put_fit = perf::fit_affine(
      sweep(sizes, [](fabric::RankCtx& ctx, std::size_t s) {
        static thread_local std::vector<std::byte> buf;
        buf.resize(s);
        core::Win win = core::Win::allocate(ctx, 4096);
        double us = 0;
        if (ctx.rank() == 0) {
          win.lock(core::LockType::exclusive, 1);
          Timer t;
          for (int i = 0; i < kIters; ++i) {
            win.put(buf.data(), s, 1, 0);
            win.flush(1);
          }
          us = t.elapsed_us() / kIters;
          win.unlock(1);
        }
        ctx.barrier();
        win.free();
        return us;
      }));
  print_affine("P_put", put_fit, pm.put.base_us, pm.put.per_byte_ns);

  auto get_fit = perf::fit_affine(
      sweep(sizes, [](fabric::RankCtx& ctx, std::size_t s) {
        static thread_local std::vector<std::byte> buf;
        buf.resize(s);
        core::Win win = core::Win::allocate(ctx, 4096);
        double us = 0;
        if (ctx.rank() == 0) {
          win.lock(core::LockType::exclusive, 1);
          Timer t;
          for (int i = 0; i < kIters; ++i) {
            win.get(buf.data(), s, 1, 0);
            win.flush(1);
          }
          us = t.elapsed_us() / kIters;
          win.unlock(1);
        }
        ctx.barrier();
        win.free();
        return us;
      }));
  print_affine("P_get", get_fit, pm.get.base_us, pm.get.per_byte_ns);

  // P_acc (sum, accelerated) and P_acc (min, fallback) over byte counts.
  const std::vector<std::size_t> acc_sizes{8, 32, 128, 512, 2048};
  auto acc_fit = perf::fit_affine(
      sweep(acc_sizes, [](fabric::RankCtx& ctx, std::size_t s) {
        core::Win win = core::Win::allocate(ctx, 4096);
        std::vector<std::uint64_t> vals(s / 8, 1);
        double us = 0;
        if (ctx.rank() == 0) {
          win.lock(core::LockType::exclusive, 1);
          Timer t;
          for (int i = 0; i < kIters; ++i) {
            win.accumulate(vals.data(), vals.size(), Elem::u64, RedOp::sum,
                           1, 0);
            win.flush(1);
          }
          us = t.elapsed_us() / kIters;
          win.unlock(1);
        }
        ctx.barrier();
        win.free();
        return us;
      }));
  print_affine("P_acc,sum", acc_fit, pm.acc_sum.base_us,
               pm.acc_sum.per_byte_ns);

  // The fallback path is latency-bound until the get+put bandwidth term
  // shows; fit it over larger spans, like the paper's Fig 6a tail.
  const std::vector<std::size_t> min_sizes{4096, 16384, 65536, 262144};
  auto min_fit = perf::fit_affine(
      sweep(min_sizes, [](fabric::RankCtx& ctx, std::size_t s) {
        core::Win win = core::Win::allocate(ctx, 262144);
        std::vector<std::uint64_t> vals(s / 8, 1);
        double us = 0;
        if (ctx.rank() == 0) {
          win.lock(core::LockType::exclusive, 1);
          Timer t;
          for (int i = 0; i < kIters; ++i) {
            win.accumulate(vals.data(), vals.size(), Elem::u64, RedOp::min,
                           1, 0);
            win.flush(1);
          }
          us = t.elapsed_us() / kIters;
          win.unlock(1);
        }
        ctx.barrier();
        win.free();
        return us;
      }));
  print_affine("P_acc,min", min_fit, pm.acc_min.base_us,
               pm.acc_min.per_byte_ns);

  // Constant-cost calls.
  auto const_cost = [&](const std::function<double(fabric::RankCtx&)>& fn) {
    return measure(2, internode_model(), 5, fn).median_us;
  };
  print_const("P_CAS", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                double us = 0;
                if (ctx.rank() == 0) {
                  win.lock(core::LockType::exclusive, 1);
                  std::uint64_t d = 1, c = 0, o = 0;
                  Timer t;
                  for (int i = 0; i < kIters; ++i) {
                    win.compare_and_swap(&d, &c, &o, Elem::u64, 1, 0);
                  }
                  us = t.elapsed_us() / kIters;
                  win.unlock(1);
                }
                ctx.barrier();
                win.free();
                return us;
              }),
              pm.cas_us);
  print_const("P_lock,excl", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                double us = 0;
                if (ctx.rank() == 0) {
                  Timer t;
                  for (int i = 0; i < kIters; ++i) {
                    win.lock(core::LockType::exclusive, 1);
                    win.unlock(1);
                  }
                  us = t.elapsed_us() / kIters;
                }
                ctx.barrier();
                win.free();
                return us;
              }),
              pm.lock_excl_us + pm.unlock_us);
  print_const("P_lock,shrd", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                double us = 0;
                if (ctx.rank() == 0) {
                  Timer t;
                  for (int i = 0; i < kIters; ++i) {
                    win.lock(core::LockType::shared, 1);
                    win.unlock(1);
                  }
                  us = t.elapsed_us() / kIters;
                }
                ctx.barrier();
                win.free();
                return us;
              }),
              pm.lock_shrd_us + pm.unlock_us);
  print_const("P_lock_all", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                Timer t;
                for (int i = 0; i < kIters; ++i) {
                  win.lock_all();
                  win.unlock_all();
                }
                const double us = t.elapsed_us() / kIters;
                win.free();
                return us;
              }),
              pm.lock_all_us + pm.unlock_us);
  print_const("P_flush(empty)", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                win.lock_all();
                Timer t;
                for (int i = 0; i < 200; ++i) win.flush_all();
                const double us = t.elapsed_us() / 200;
                win.unlock_all();
                win.free();
                return us;
              }),
              pm.flush_us);
  print_const("P_sync", const_cost([](fabric::RankCtx& ctx) {
                core::Win win = core::Win::allocate(ctx, 64);
                Timer t;
                for (int i = 0; i < 500; ++i) win.sync();
                const double us = t.elapsed_us() / 500;
                win.free();
                return us;
              }),
              pm.sync_us);

  // PSCW constants at k = 2 (ring, as in Sec 3.2).
  const double pscw_round =
      measure(4, internode_model(), 3, [&](fabric::RankCtx& ctx) {
        core::Win win = core::Win::allocate(ctx, 64);
        const int p = ctx.nranks();
        const fabric::Group nb{(ctx.rank() + p - 1) % p,
                               (ctx.rank() + 1) % p};
        win.post(nb);
        win.start(nb);
        win.complete();
        win.wait();
        Timer t;
        for (int i = 0; i < 5; ++i) {
          win.post(nb);
          win.start(nb);
          win.complete();
          win.wait();
        }
        const double us = t.elapsed_us() / 5;
        win.free();
        return us;
      }).median_us;
  std::printf("%-14s = %6.2f us (full round, k=2)  (paper: %5.2f us = "
              "2*0.35k + 0.7 + 1.8)\n",
              "P_pscw(k=2)", pscw_round, pm.pscw_round_us(2));
  return 0;
}

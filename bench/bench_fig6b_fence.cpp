// Figure 6b: global synchronization latency vs process count — foMPI
// fence, UPC barrier, CAF sync_all, Cray MPI fence.
//
// Two regimes, as documented in DESIGN.md: small process counts run the
// real dissemination-barrier code on thread ranks with the latency model;
// the scaling tail (to 8k processes) runs the same protocol event-driven
// in the calibrated discrete-event simulator, including the noise injection
// the paper observed beyond ~1k processes.
#include "bench_util.hpp"
#include "core/window.hpp"
#include "perfmodel/fit.hpp"
#include "simtime/sim_sync.hpp"
#include "trace/trace.hpp"

using namespace fompi;
using namespace fompi::bench;

int main() {
  std::printf("Figure 6b: global synchronization latency [us]\n\n");

  // Flight-record the whole thread-rank section: every fence epoch and
  // barrier across all ranks lands in the per-rank rings, exported below as
  // a Perfetto timeline plus latency percentiles.
  trace::TraceSession::Config tcfg;
  tcfg.postmortem_path = "BENCH_fig6b_fence.postmortem.trace.json";
  trace::TraceSession session(8, tcfg);

  // --- real execution, small p -------------------------------------------------
  header("thread-rank execution (real protocol code, Gemini model)");
  std::printf("%-12s%14s\n", "p", "foMPI fence");
  std::vector<perf::Sample> fence_samples;
  for (int p : {2, 4, 8}) {
    const double us =
        measure(p, internode_model(), 3, [&](fabric::RankCtx& ctx) {
          core::Win win = core::Win::allocate(ctx, 64);
          win.fence();
          Timer t;
          for (int i = 0; i < 5; ++i) win.fence();
          const double v = t.elapsed_us() / 5;
          win.free();
          return v;
        }).median_us;
    std::printf("%-12d%14.2f\n", p, us);
    fence_samples.push_back(perf::Sample{static_cast<double>(p), us});
  }
  const auto fit = perf::fit_logarithmic(fence_samples);
  std::printf("fitted: P_fence = %.2f us * log2(p) + %.2f us  (paper: 2.9 "
              "us * log2 p)\n", fit.slope_us_per_x, fit.intercept_us);

  // --- flight-recorder consumers ----------------------------------------------
  const char* trace_path = "BENCH_fig6b_fence.trace.json";
  if (session.write_chrome_json(trace_path)) {
    std::printf("\ntrace: %s (%llu events, %llu dropped) — load in "
                "ui.perfetto.dev\n", trace_path,
                static_cast<unsigned long long>(session.total_events()),
                static_cast<unsigned long long>(session.total_dropped()));
  }
  header("flight-recorder latency percentiles (wall clock, all ranks)");
  std::printf("%-14s%10s%12s%12s%12s\n", "class", "count", "p50 [ns]",
              "p99 [ns]", "max [ns]");
  for (const trace::EvClass cls :
       {trace::EvClass::fence, trace::EvClass::barrier, trace::EvClass::put}) {
    const trace::HistoSummary s = session.summary(cls);
    std::printf("%-14s%10llu%12llu%12llu%12llu\n", trace::to_string(cls),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.p50_ns),
                static_cast<unsigned long long>(s.p99_ns),
                static_cast<unsigned long long>(s.max_ns));
  }

  // --- DES scaling tail -----------------------------------------------------------
  header("discrete-event simulation to 8k processes");
  std::printf("%-12s%14s%14s%14s%14s\n", "p", "FOMPI fence", "UPC barrier",
              "CAF sync_all", "CrayMPI fence");
  for (int p = 2; p <= 8192; p *= 4) {
    const auto s = sim::simulate_fence_all(p, /*seed=*/7);
    std::printf("%-12d%14.1f%14.1f%14.1f%14.1f\n", p, s.fompi_us, s.upc_us,
                s.caf_us, s.craympi_us);
  }
  std::printf("\nExpected shape: all transports O(log p); UPC barrier "
              "fastest/comparable to foMPI,\nCAF sync_all ~3x slower, Cray "
              "MPI fence ~2x slower (Fig 6b).\n");
  return 0;
}

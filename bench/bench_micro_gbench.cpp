// Google-benchmark microbenchmarks of the software fast paths.
//
// These measure the *library overhead* without the injected network model
// (Injection::none): the cost of argument validation, epoch checks,
// descriptor resolution, datatype lowering, and NIC bookkeeping — the
// layer the paper quantifies with instruction counts. Latency-model
// figures live in the bench_fig* binaries.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/window.hpp"
#include "datatype/datatype.hpp"
#include "fabric/fabric.hpp"

using namespace fompi;

namespace {

/// Single-rank fabric fixture: rank 0 drives itself (intra-node path), so
/// the measured cost is pure software path.
struct SoloWin {
  fabric::Fabric fabric;
  fabric::RankCtx ctx;
  core::Win win;
  std::array<std::uint64_t, 512> buf{};

  SoloWin()
      : fabric([] {
          fabric::FabricOptions o;
          o.domain.nranks = 1;
          return o;
        }()),
        ctx(fabric, 0),
        win(core::Win::allocate(ctx, 8192)) {
    win.lock_all();
  }
  ~SoloWin() {
    win.unlock_all();
    win.free();
  }
};

void BM_PutFastPath(benchmark::State& state) {
  SoloWin s;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    s.win.put(s.buf.data(), size, 0, 0);
  }
  s.win.flush_all();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_PutFastPath)->Arg(8)->Arg(512)->Arg(4096);

void BM_GetFastPath(benchmark::State& state) {
  SoloWin s;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    s.win.get(s.buf.data(), size, 0, 0);
  }
  s.win.flush_all();
}
BENCHMARK(BM_GetFastPath)->Arg(8)->Arg(512);

void BM_PutDatatypePath(benchmark::State& state) {
  SoloWin s;
  const auto strided = dt::Datatype::vector(
      static_cast<int>(state.range(0)), 1, 2, dt::Datatype::i64());
  const auto contig = dt::Datatype::contiguous(
      static_cast<int>(state.range(0)), dt::Datatype::i64());
  for (auto _ : state) {
    s.win.put(s.buf.data(), 1, strided, 0, 0, 1, contig);
  }
  s.win.flush_all();
}
BENCHMARK(BM_PutDatatypePath)->Arg(4)->Arg(32);

void BM_Flush(benchmark::State& state) {
  SoloWin s;
  for (auto _ : state) s.win.flush_all();
}
BENCHMARK(BM_Flush);

void BM_WinSync(benchmark::State& state) {
  SoloWin s;
  for (auto _ : state) s.win.sync();
}
BENCHMARK(BM_WinSync);

void BM_AccumulateAmo(benchmark::State& state) {
  SoloWin s;
  const std::uint64_t one = 1;
  for (auto _ : state) {
    s.win.accumulate(&one, 1, Elem::u64, RedOp::sum, 0, 0);
  }
  s.win.flush_all();
}
BENCHMARK(BM_AccumulateAmo);

void BM_FetchAndOp(benchmark::State& state) {
  SoloWin s;
  const std::uint64_t one = 1;
  std::uint64_t old = 0;
  for (auto _ : state) {
    s.win.fetch_and_op(&one, &old, Elem::u64, RedOp::sum, 0, 0);
    benchmark::DoNotOptimize(old);
  }
}
BENCHMARK(BM_FetchAndOp);

void BM_LockUnlockShared(benchmark::State& state) {
  fabric::Fabric fabric([] {
    fabric::FabricOptions o;
    o.domain.nranks = 1;
    return o;
  }());
  fabric::RankCtx ctx(fabric, 0);
  core::Win win = core::Win::allocate(ctx, 64);
  for (auto _ : state) {
    win.lock(core::LockType::shared, 0);
    win.unlock(0);
  }
  win.free();
}
BENCHMARK(BM_LockUnlockShared);

void BM_DatatypeFlatten(benchmark::State& state) {
  const auto t = dt::Datatype::vector(static_cast<int>(state.range(0)), 2, 5,
                                      dt::Datatype::f64());
  for (auto _ : state) {
    std::vector<dt::Block> blocks;
    t.flatten(0, 4, blocks);
    benchmark::DoNotOptimize(blocks.data());
  }
}
BENCHMARK(BM_DatatypeFlatten)->Arg(4)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

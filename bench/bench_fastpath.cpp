// Software-overhead microbenchmark for the RMA issue fast path.
//
// Measures pure per-operation software cost (ns/op) of the simulated NIC
// with Injection::none — no model latency is charged, so the numbers are
// our bookkeeping only, NOT comparable with the figure benches (which run
// Injection::model to reproduce hardware latencies). This is the regression
// harness for the paper's central claim (Sec 2.4/6): the issue path must
// add only a thin constant veneer over the transport, with no locks and no
// heap allocation in steady state.
//
// Matrix: {put, get, amo} x {blocking, explicit-nb, implicit-nb}
//         x {immediate, deferred} delivery, plus a >64 B spill put.
// Output: one JSON object on stdout (consumed by scripts/bench_smoke.sh).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "fabric/progress/progress.hpp"
#include "rdma/nic.hpp"
#include "trace/trace.hpp"

using namespace fompi;
using namespace fompi::rdma;

namespace {

constexpr int kWarmup = 2048;
constexpr int kIters = 100000;
constexpr int kGsyncBatch = 256;  // implicit ops completed in batches

struct CaseResult {
  std::string name;
  double ns_per_op = 0;
  OpCounters delta;  // counters over the measured (post-warmup) loop
};

/// Runs `op(i)` kWarmup times, then kIters timed times; `drain` completes
/// any outstanding work and is excluded from per-op attribution by running
/// inside the timed region only at batch boundaries (it is part of the
/// amortized cost, as on real hardware).
CaseResult run_case(const std::string& name, const std::function<void(int)>& op,
                    const std::function<void()>& drain) {
  for (int i = 0; i < kWarmup; ++i) {
    op(i);
    if ((i + 1) % kGsyncBatch == 0) drain();
  }
  drain();
  const OpCounters before = op_counters();
  Timer t;
  for (int i = 0; i < kIters; ++i) {
    op(i);
    if ((i + 1) % kGsyncBatch == 0) drain();
  }
  drain();
  const double ns = static_cast<double>(t.elapsed_ns());
  CaseResult r;
  r.name = name;
  r.ns_per_op = ns / kIters;
  r.delta = op_counters().since(before);
  return r;
}

/// Traced vs untraced put8 fast path. The untraced run executes with a
/// TraceSession active but the thread UNBOUND — the exact production
/// off-path (one thread-local load + branch per emit site) — and must
/// record zero events. The traced run binds the thread and pays for real
/// ring appends; the delta is the record-path cost.
struct TraceOverhead {
  double untraced_ns_per_op = 0;
  double traced_ns_per_op = 0;
  std::uint64_t traced_events = 0;
  std::uint64_t traced_dropped = 0;
  bool untraced_clean = false;  ///< unbound run recorded nothing
};

void emit_json(const std::vector<CaseResult>& results,
               const TraceOverhead& trace_ovh) {
  std::printf("{\n  \"bench\": \"fastpath\",\n  \"injection\": \"none\",\n");
  std::printf("  \"iters\": %d,\n  \"cases\": [\n", kIters);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::printf("    {\"name\": \"%s\", \"ns_per_op\": %.1f", r.name.c_str(),
                r.ns_per_op);
    for (std::uint32_t o = 0; o < static_cast<std::uint32_t>(Op::kCount);
         ++o) {
      const std::uint64_t v = r.delta.get(static_cast<Op>(o));
      if (v != 0) {
        std::printf(", \"%s\": %llu", to_string(static_cast<Op>(o)),
                    static_cast<unsigned long long>(v));
      }
    }
    std::printf("}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::printf("  ],\n");
  std::printf("  \"trace_overhead\": {\"case\": \"put8_blocking_immediate\", "
              "\"untraced_ns_per_op\": %.1f, \"traced_ns_per_op\": %.1f, "
              "\"delta_ns_per_op\": %.1f, \"traced_events\": %llu, "
              "\"traced_dropped\": %llu, \"untraced_clean\": %s}\n",
              trace_ovh.untraced_ns_per_op, trace_ovh.traced_ns_per_op,
              trace_ovh.traced_ns_per_op - trace_ovh.untraced_ns_per_op,
              static_cast<unsigned long long>(trace_ovh.traced_events),
              static_cast<unsigned long long>(trace_ovh.traced_dropped),
              trace_ovh.untraced_clean ? "true" : "false");
  std::printf("}\n");
}

/// Runs the put8 blocking case twice under an active TraceSession: first
/// with the thread unbound (production off-path), then bound to a ring.
TraceOverhead measure_trace_overhead() {
  trace::TraceSession::Config tcfg;
  tcfg.ring_capacity = std::size_t{1} << 18;  // warmup + kIters events fit
  tcfg.postmortem_path.clear();
  trace::TraceSession session(1, tcfg);

  DomainConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  cfg.inject = Injection::none;
  cfg.delivery = Delivery::immediate;
  Domain dom(cfg);
  Nic& nic = dom.nic(0);
  AlignedBuffer mem(1 << 16);
  const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
  alignas(8) std::uint64_t src = 0x0123456789abcdefull;

  TraceOverhead r;
  const auto put8 = [&](int i) { nic.put(1, d, (i % 64) * 8u, &src, 8); };
  r.untraced_ns_per_op = run_case("put8_untraced", put8, [] {}).ns_per_op;
  r.untraced_clean = session.total_events() == 0;

  trace::bind_thread(&session.ring(0));
  r.traced_ns_per_op = run_case("put8_traced", put8, [] {}).ns_per_op;
  trace::bind_thread(nullptr);
  r.traced_events = session.total_events();
  r.traced_dropped = session.total_dropped();
  return r;
}

}  // namespace

int main() {
  std::vector<CaseResult> results;

  for (const Delivery delivery : {Delivery::immediate, Delivery::deferred}) {
    DomainConfig cfg;
    cfg.nranks = 2;
    cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
    cfg.inject = Injection::none;
    cfg.delivery = delivery;
    Domain dom(cfg);
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 16);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
    const std::string tag =
        delivery == Delivery::immediate ? "_immediate" : "_deferred";

    alignas(8) std::uint64_t src = 0x0123456789abcdefull;
    alignas(8) std::uint64_t dst = 0;
    alignas(64) std::byte big[256] = {};
    std::uint64_t fetched = 0;

    // --- blocking ---------------------------------------------------------
    results.push_back(run_case(
        "put8_blocking" + tag,
        [&](int i) { nic.put(1, d, (i % 64) * 8u, &src, 8); }, [] {}));
    results.push_back(run_case(
        "get8_blocking" + tag,
        [&](int i) { nic.get(1, d, (i % 64) * 8u, &dst, 8); }, [] {}));
    results.push_back(run_case(
        "amo8_blocking" + tag,
        [&](int i) {
          nic.amo(1, d, (i % 64) * 8u, AmoOp::fetch_add, 1);
        },
        [] {}));

    // --- explicit nonblocking (handle completed at once) ------------------
    results.push_back(run_case(
        "put8_nb_explicit" + tag,
        [&](int i) { nic.wait(nic.put_nb(1, d, (i % 64) * 8u, &src, 8)); },
        [] {}));
    results.push_back(run_case(
        "get8_nb_explicit" + tag,
        [&](int i) { nic.wait(nic.get_nb(1, d, (i % 64) * 8u, &dst, 8)); },
        [] {}));
    results.push_back(run_case(
        "amo8_nb_explicit" + tag,
        [&](int i) {
          nic.wait(nic.amo_nb(1, d, (i % 64) * 8u, AmoOp::fetch_add, 1, 0,
                              &fetched));
        },
        [] {}));

    // --- implicit nonblocking (bulk-completed by gsync) -------------------
    results.push_back(run_case(
        "put8_nbi_implicit" + tag,
        [&](int i) { nic.put_nbi(1, d, (i % 64) * 8u, &src, 8); },
        [&] { nic.gsync(); }));
    results.push_back(run_case(
        "get8_nbi_implicit" + tag,
        [&](int i) { nic.get_nbi(1, d, (i % 64) * 8u, &dst, 8); },
        [&] { nic.gsync(); }));
    results.push_back(run_case(
        "amo8_nbi_implicit" + tag,
        [&](int i) {
          nic.amo_nbi(1, d, (i % 64) * 8u, AmoOp::fetch_add, 1);
        },
        [&] { nic.gsync(); }));

    // --- spill-size put (payload larger than any inline stage buffer) -----
    results.push_back(run_case(
        "put256_nb_explicit" + tag,
        [&](int i) {
          nic.wait(nic.put_nb(1, d, (i % 16) * 256u, big, sizeof big));
        },
        [] {}));
  }

  // --- fault plan armed but quiescent -----------------------------------
  // Every scheduled site lands inside the warmup (horizon_ops < kWarmup),
  // so the timed loop pays only the armed-plan branch on the issue path.
  // The guard: this must match put8_blocking_immediate — arming a fault
  // plan may not tax the fault-free fast path (the measured-loop counter
  // delta proves no fault fired: fault_injected is absent from its JSON).
  {
    DomainConfig cfg;
    cfg.nranks = 2;
    cfg.ranks_per_node = 1;
    cfg.inject = Injection::none;
    cfg.delivery = Delivery::immediate;
    cfg.fault.seed = 42;
    cfg.fault.transient_faults_per_rank = 2;
    cfg.fault.horizon_ops = 100;  // all sites fire during warmup
    cfg.fault.max_repeats = 2;
    cfg.fault.retry_budget = 4;   // survivable: no failed handles linger
    Domain dom(cfg);
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 16);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
    alignas(8) std::uint64_t src = 1;
    results.push_back(run_case(
        "put8_blocking_fault_armed_idle",
        [&](int i) { nic.put(1, d, (i % 64) * 8u, &src, 8); }, [] {}));
  }

  // --- throughput mode compiled in but idle ------------------------------
  // Channels configured and the adaptive tuner armed, but no batch scope
  // ever opened (auto_batch off): blocking puts must stay on the plain
  // fast path. scripts/ci.sh gates this case against put8_blocking_immediate
  // (<= 1.25x) so throughput mode can never tax the latency path it is
  // supposed to leave alone.
  {
    DomainConfig cfg;
    cfg.nranks = 2;
    cfg.ranks_per_node = 1;
    cfg.inject = Injection::none;
    cfg.delivery = Delivery::immediate;
    cfg.nic.channels = 4;
    cfg.nic.adaptive = true;
    cfg.nic.auto_batch = false;
    Domain dom(cfg);
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 16);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
    alignas(8) std::uint64_t src = 1;
    results.push_back(run_case(
        "put8_blocking_batch_idle",
        [&](int i) { nic.put(1, d, (i % 64) * 8u, &src, 8); }, [] {}));
  }

  // --- fiber scheduler linked but idle -----------------------------------
  // A Scheduler is constructed against the NIC (the progress engine is
  // linked in and armed) but no fiber is ever spawned: blocking puts must
  // stay on the plain fast path. scripts/ci.sh gates this case against
  // put8_blocking_immediate (<= 1.25x), mirroring the idle-batch gate, so
  // the overlap engine can never tax the latency path it sits beside.
  {
    DomainConfig cfg;
    cfg.nranks = 2;
    cfg.ranks_per_node = 1;
    cfg.inject = Injection::none;
    cfg.delivery = Delivery::immediate;
    Domain dom(cfg);
    Nic& nic = dom.nic(0);
    AlignedBuffer mem(1 << 16);
    const RegionDesc d = dom.registry().register_region(1, mem.data(), 1 << 16);
    alignas(8) std::uint64_t src = 1;
    fompi::fabric::progress::Scheduler sched(nic, [] {});
    results.push_back(run_case(
        "put8_blocking_sched_idle",
        [&](int i) { nic.put(1, d, (i % 64) * 8u, &src, 8); }, [] {}));
    sched.run();  // no fibers: must return immediately
  }

  const TraceOverhead trace_ovh = measure_trace_overhead();
  emit_json(results, trace_ovh);
  if (!trace_ovh.untraced_clean) {
    std::fprintf(stderr, "FAIL: unbound (untraced) run recorded trace "
                         "events — the off path is not off\n");
    return 1;
  }
  if (trace::kEnabled && trace_ovh.traced_events == 0) {
    std::fprintf(stderr, "FAIL: bound (traced) run recorded no events\n");
    return 1;
  }
  return 0;
}

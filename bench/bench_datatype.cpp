// Datatype-path microbenchmark: fragment-loop baseline vs the flatten-cached
// vectored / pack-unpack issue paths for non-contiguous RMA.
//
// Two sections:
//   * software  (Injection::none)  — pure per-element software overhead of
//     lowering + issue, no modeled network time.  This is the acceptance
//     harness for the datatype-engine rework: the one-call datatype path
//     must beat a loop of per-fragment contiguous puts by >=2x ns/element
//     at 1024 fragments.
//   * modeled   (Injection::model) — the same shapes under the injected
//     Gemini cost model, where the vectored chain discount and the
//     single-transfer pack protocol show up as end-to-end latency.
//
// Counter deltas over the measured loop are emitted per case so the JSON
// also documents which strategy ran (vectored_op vs packed_bytes), the
// flatten-cache hit rate, and that steady state allocates nothing
// (pool_grow == 0).  Output: one JSON object on stdout (consumed by
// scripts/bench_smoke.sh into BENCH_datatype.json).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "core/window.hpp"
#include "datatype/datatype.hpp"
#include "trace/trace.hpp"

using namespace fompi;
using fompi::dt::Datatype;

namespace {

struct CaseResult {
  std::string name;
  double ns_per_elem = 0;
  std::size_t elems = 0;   // elements moved per iteration
  OpCounters delta;        // counters over the measured loop
};

/// One timed configuration on rank 0: `op()` moves `elems` elements and is
/// remotely completed by flush inside the timed region (part of the
/// amortized cost, as in the figure benches).
CaseResult time_case(const std::string& name, std::size_t elems, int warm,
                     int iters, core::Win& win,
                     const std::function<void()>& op) {
  for (int i = 0; i < warm; ++i) op();
  win.flush(1);
  const OpCounters before = op_counters();
  Timer t;
  for (int i = 0; i < iters; ++i) {
    op();
    win.flush(1);
  }
  const double ns = static_cast<double>(t.elapsed_ns());
  CaseResult r;
  r.name = name;
  r.elems = elems;
  r.ns_per_elem = ns / (static_cast<double>(iters) * static_cast<double>(elems));
  r.delta = op_counters().since(before);
  return r;
}

/// Runs the full shape matrix on a 2-rank fabric and appends results.
/// Only rank 0 measures (the target rank sits in the barrier), so the
/// numbers are single-issuer software/model cost, not contention.
void section(rdma::Injection inject, int iters,
             std::vector<CaseResult>& out) {
  fabric::FabricOptions o;
  o.domain.ranks_per_node = 1;  // inter-node ("DMAPP") path
  o.domain.inject = inject;
  fabric::run_ranks(2, [&](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 1 << 17);
    if (ctx.rank() == 0) {
      win.lock(core::LockType::exclusive, 1);
      const Datatype i32 = Datatype::i32();
      const Datatype i64 = Datatype::i64();

      // Small fragments, strided origin -> contiguous target: n blocks of
      // one i32, stride 2 elements.  The remote side is contiguous, so the
      // cost model picks the pack (put) / unpack (get) protocol here.
      for (const int n : {16, 128, 1024}) {
        const Datatype vec = Datatype::vector(n, 1, 2, i32);
        std::vector<std::uint32_t> src(2 * static_cast<std::size_t>(n), 7u);
        std::vector<std::uint32_t> dst(2 * static_cast<std::size_t>(n), 0u);
        const std::size_t elems = static_cast<std::size_t>(n);

        out.push_back(time_case(
            "put_frag_loop_" + std::to_string(n), elems, 8, iters, win,
            [&] {
              for (int i = 0; i < n; ++i) {
                win.put(src.data() + 2 * i, 4, 1,
                        64 + 4 * static_cast<std::size_t>(i));
              }
            }));
        out.push_back(time_case(
            "put_pack_" + std::to_string(n), elems, 8, iters, win, [&] {
              win.put(src.data(), 1, vec, 1, 64, n, i32);
            }));
        out.push_back(time_case(
            "get_frag_loop_" + std::to_string(n), elems, 8, iters, win,
            [&] {
              for (int i = 0; i < n; ++i) {
                win.get(dst.data() + 2 * i, 4, 1,
                        64 + 4 * static_cast<std::size_t>(i));
              }
            }));
        out.push_back(time_case(
            "get_unpack_" + std::to_string(n), elems, 8, iters, win, [&] {
              win.get(dst.data(), 1, vec, 1, 64, n, i32);
            }));
      }

      // Strided on both sides: a one-put scatter is impossible, so this is
      // the vectored NIC path (one doorbell, chained fragments).
      {
        const Datatype vec = Datatype::vector(1024, 1, 2, i32);
        std::vector<std::uint32_t> src(2048, 7u);
        out.push_back(time_case("put_vectored_1024", 1024, 8, iters, win,
                                [&] {
                                  win.put(src.data(), 1, vec, 1, 64, 1, vec);
                                }));
      }

      // Large fragments: 4 blocks of 2 KiB.  The cost model keeps these on
      // the vectored path even with a contiguous remote side (packing would
      // copy 8 KiB per call).
      {
        const Datatype big = Datatype::vector(4, 256, 512, i64);
        std::vector<std::uint64_t> src(2048, 7u);
        out.push_back(time_case("put_vectored_4x2048B", 1024, 8, iters, win,
                                [&] {
                                  win.put(src.data(), 1, big, 1, 0, 1024, i64);
                                }));
      }

      win.unlock(1);
    }
    ctx.barrier();
    win.free();
  }, o);
}

/// Traced vs untraced rerun of the 1024-fragment vectored case. run_ranks
/// auto-binds rank threads while a TraceSession is active, so the untraced
/// control explicitly unbinds first — that run exercises the production
/// off-path (thread-local load + branch per emit site) and must record
/// nothing; the bound rerun pays for real ring appends.
struct TraceOverhead {
  double untraced_ns_per_elem = 0;
  double traced_ns_per_elem = 0;
  std::uint64_t traced_events = 0;
  bool untraced_clean = false;
};

TraceOverhead measure_trace_overhead(int iters) {
  trace::TraceSession::Config tcfg;
  tcfg.postmortem_path.clear();
  trace::TraceSession session(2, tcfg);
  TraceOverhead r;

  fabric::FabricOptions o;
  o.domain.ranks_per_node = 1;
  o.domain.inject = rdma::Injection::none;
  fabric::run_ranks(2, [&](fabric::RankCtx& ctx) {
    trace::bind_thread(nullptr);  // untraced control phase
    core::Win win = core::Win::allocate(ctx, 1 << 17);
    if (ctx.rank() == 0) {
      win.lock(core::LockType::exclusive, 1);
      const Datatype i32 = Datatype::i32();
      const Datatype vec = Datatype::vector(1024, 1, 2, i32);
      std::vector<std::uint32_t> src(2048, 7u);
      const auto op = [&] { win.put(src.data(), 1, vec, 1, 64, 1, vec); };

      r.untraced_ns_per_elem =
          time_case("vectored_untraced", 1024, 8, iters, win, op).ns_per_elem;
      r.untraced_clean = session.total_events() == 0;

      trace::bind_thread(&session.ring(0));
      r.traced_ns_per_elem =
          time_case("vectored_traced", 1024, 8, iters, win, op).ns_per_elem;
      win.unlock(1);
    }
    ctx.barrier();
    win.free();
    trace::bind_thread(nullptr);
  }, o);
  r.traced_events = session.total_events();
  return r;
}

void emit_json(const std::vector<CaseResult>& sw,
               const std::vector<CaseResult>& model, int sw_iters,
               int model_iters, const TraceOverhead& trace_ovh) {
  std::printf("{\n  \"bench\": \"datatype\",\n");
  auto emit = [](const char* name, const std::vector<CaseResult>& results,
                 int iters, bool last) {
    std::printf("  \"%s\": {\"iters\": %d, \"cases\": [\n", name, iters);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::printf("    {\"name\": \"%s\", \"elems\": %zu, \"ns_per_elem\": %.2f",
                  r.name.c_str(), r.elems, r.ns_per_elem);
      for (std::uint32_t o = 0; o < static_cast<std::uint32_t>(Op::kCount);
           ++o) {
        const std::uint64_t v = r.delta.get(static_cast<Op>(o));
        if (v != 0) {
          std::printf(", \"%s\": %llu", to_string(static_cast<Op>(o)),
                      static_cast<unsigned long long>(v));
        }
      }
      std::printf("}%s\n", i + 1 == results.size() ? "" : ",");
    }
    std::printf("  ]}%s\n", last ? "" : ",");
  };
  emit("software", sw, sw_iters, false);
  emit("modeled", model, model_iters, false);
  std::printf("  \"trace_overhead\": {\"case\": \"put_vectored_1024\", "
              "\"untraced_ns_per_elem\": %.2f, \"traced_ns_per_elem\": %.2f, "
              "\"delta_ns_per_elem\": %.2f, \"traced_events\": %llu, "
              "\"untraced_clean\": %s}\n",
              trace_ovh.untraced_ns_per_elem, trace_ovh.traced_ns_per_elem,
              trace_ovh.traced_ns_per_elem - trace_ovh.untraced_ns_per_elem,
              static_cast<unsigned long long>(trace_ovh.traced_events),
              trace_ovh.untraced_clean ? "true" : "false");
  std::printf("}\n");
}

}  // namespace

int main() {
  constexpr int kSwIters = 400;
  constexpr int kModelIters = 20;
  std::vector<CaseResult> sw;
  std::vector<CaseResult> model;
  section(rdma::Injection::none, kSwIters, sw);
  section(rdma::Injection::model, kModelIters, model);
  const TraceOverhead trace_ovh = measure_trace_overhead(kSwIters);
  emit_json(sw, model, kSwIters, kModelIters, trace_ovh);
  if (!trace_ovh.untraced_clean) {
    std::fprintf(stderr, "FAIL: unbound (untraced) run recorded trace "
                         "events — the off path is not off\n");
    return 1;
  }
  if (trace::kEnabled && trace_ovh.traced_events == 0) {
    std::fprintf(stderr, "FAIL: bound (traced) rerun recorded no events\n");
    return 1;
  }
  return 0;
}

// Shared helpers for the figure-reproduction benchmarks.
//
// Methodology mirrors the paper (Sec 3): each configuration measures the
// operation many times, takes the maximum across ranks per repetition, and
// reports the median over repetitions. Real-time benches run the actual
// protocol code with the Gemini latency model injected; the scaling tails
// of the figures come from the calibrated discrete-event simulator.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "fabric/fabric.hpp"

namespace fompi::bench {

/// Fabric options for "inter-node" measurements: every rank on its own
/// node, Gemini model injected.
inline fabric::FabricOptions internode_model() {
  fabric::FabricOptions o;
  o.domain.ranks_per_node = 1;
  o.domain.inject = rdma::Injection::model;
  return o;
}

/// Fabric options for "intra-node" (XPMEM-like) measurements.
inline fabric::FabricOptions intranode_model() {
  fabric::FabricOptions o;
  o.domain.ranks_per_node = 0;
  o.domain.inject = rdma::Injection::model;
  return o;
}

struct RepeatResult {
  double median_us = 0;
  double min_us = 0;
  double max_us = 0;
};

/// Runs `body(ctx)` (one timed repetition, returning its own microseconds)
/// `reps` times on `p` ranks; reduces each repetition with max-over-ranks
/// and reports the median across repetitions — the paper's bucket scheme.
inline RepeatResult measure(int p, const fabric::FabricOptions& opts,
                            int reps,
                            const std::function<double(fabric::RankCtx&)>& body) {
  std::vector<double> buckets(static_cast<std::size_t>(reps), 0.0);
  std::mutex mu;
  fabric::run_ranks(p, [&](fabric::RankCtx& ctx) {
    for (int r = 0; r < reps; ++r) {
      ctx.barrier();
      const double us = body(ctx);
      std::scoped_lock lock(mu);
      buckets[static_cast<std::size_t>(r)] =
          std::max(buckets[static_cast<std::size_t>(r)], us);
    }
  }, opts);
  Stats st = summarize(buckets);
  return RepeatResult{st.median, st.min, st.max};
}

/// Prints one table row: label then values.
inline void row(const std::string& label,
                const std::vector<double>& values, const char* fmt = "%12.2f") {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace fompi::bench

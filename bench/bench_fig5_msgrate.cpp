// Figures 5b/5c: message rate (million messages per second) for put
// communication, inter-node and intra-node.
//
// The paper's method: start 1000 transactions back to back without
// synchronization, bulk-complete once; the per-message cost is the
// injection overhead (416 ns inter-node, 80 ns intra-node for foMPI).
#include <string_view>

#include "baselines/mpi22_rma.hpp"
#include "baselines/pgas.hpp"
#include "bench_util.hpp"
#include "core/window.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

const std::vector<std::size_t> kSizes{8, 64, 512, 4096, 32768};
constexpr int kBurst = 500;

template <class IssueFn, class CompleteFn>
double rate_mmps(IssueFn&& issue, CompleteFn&& complete) {
  Timer t;
  for (int i = 0; i < kBurst; ++i) issue();
  complete();
  const double us = t.elapsed_us();
  return kBurst / us;  // messages per microsecond == M msgs/s
}

void panel(const char* title, const fabric::FabricOptions& opts,
           bool batched) {
  header(title);
  std::printf("%-24s", "size [B]");
  for (auto s : kSizes) std::printf("%12zu", s);
  std::printf("\n");

  auto run_fompi = [&](std::size_t s, const fabric::FabricOptions& o) {
    return measure(2, o, 3, [&](fabric::RankCtx& ctx) {
             static thread_local std::vector<std::byte> buf;
             buf.resize(s);
             core::Win win = core::Win::allocate(
                 ctx, kSizes.back() * 2);
             double r = 0;
             if (ctx.rank() == 0) {
               win.lock(core::LockType::exclusive, 1);
               r = rate_mmps([&] { win.put(buf.data(), s, 1, 0); },
                             [&] { win.flush(1); });
               win.unlock(1);
             }
             ctx.barrier();
             win.free();
             return r;
           }).median_us;
  };
  auto run_pgas = [&](std::size_t s, baselines::PgasConfig cfg) {
    return measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
             static thread_local std::vector<std::byte> buf;
             buf.resize(s);
             baselines::SharedArray arr(ctx, kSizes.back() * 2, cfg);
             double r = 0;
             if (ctx.rank() == 0) {
               r = rate_mmps([&] { arr.memput(1, 0, buf.data(), s); },
                             [&] { arr.fence(); });
             }
             ctx.barrier();
             arr.destroy(ctx);
             return r;
           }).median_us;
  };
  auto run_mpi1 = [&](std::size_t s) {
    return measure(2, opts, 3, [&](fabric::RankCtx& ctx) {
             static thread_local std::vector<std::byte> buf;
             buf.resize(s);
             auto& p2p = ctx.fabric().p2p();
             double r = 0;
             if (ctx.rank() == 0) {
               std::vector<fabric::P2PRequest> reqs;
               reqs.reserve(kBurst);
               Timer t;
               for (int i = 0; i < kBurst; ++i) {
                 reqs.push_back(p2p.isend(0, 1, 5, buf.data(), s));
               }
               p2p.waitall(reqs);
               r = kBurst / t.elapsed_us();
               const int go = 1;
               p2p.send(0, 1, 6, &go, sizeof(go));
             } else {
               // Drain the burst (posted lazily: models a busy receiver).
               for (int i = 0; i < kBurst; ++i) {
                 p2p.recv(1, 0, 5, buf.data(), s);
               }
               int go = 0;
               p2p.recv(1, 0, 6, &go, sizeof(go));
             }
             ctx.barrier();
             return r;
           }).median_us;
  };

  std::vector<double> fompi, upc, caf, mpi22, mpi1;
  for (auto s : kSizes) {
    fompi.push_back(run_fompi(s, opts));
    upc.push_back(run_pgas(s, baselines::make_upc_like()));
    caf.push_back(run_pgas(s, baselines::make_caf_like()));
    mpi1.push_back(run_mpi1(s));
  }
  row("FOMPI MPI-3.0", fompi, "%12.3f");
  row("Cray-UPC-like", upc, "%12.3f");
  row("Cray-CAF-like", caf, "%12.3f");
  row("MPI-1 isend", mpi1, "%12.3f");
  if (batched) {
    // Throughput mode: the same put burst with doorbell coalescing on
    // (flush rings one doorbell per batch instead of one per put).
    fabric::FabricOptions bopts = opts;
    bopts.domain.nic.auto_batch = true;
    std::vector<double> fompi_b;
    for (auto s : kSizes) fompi_b.push_back(run_fompi(s, bopts));
    row("FOMPI batched", fompi_b, "%12.3f");
  }
  // Same rates in absolute ops/s (1 M msgs/s == 1e6 ops/s).
  std::vector<double> ops;
  for (double r : fompi) ops.push_back(r * 1e6);
  row("FOMPI [ops/s]", ops, "%12.3g");
}

}  // namespace

int main(int argc, char** argv) {
  bool batched = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--batched") batched = true;
  }
  std::printf("Figures 5b/5c: message rate [million messages/s]%s\n",
              batched ? " (+ throughput-mode batched row)" : "");
  panel("Fig 5b: inter-node", internode_model(), batched);
  panel("Fig 5c: intra-node", intranode_model(), batched);
  std::printf("\nExpected shape: foMPI ~2.4 M msgs/s inter-node (416 ns "
              "injection) and ~12 M intra-node (80 ns),\nPGAS layers below, "
              "rates falling once the per-byte term dominates.\n");
  return 0;
}

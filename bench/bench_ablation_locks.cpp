// Ablation: the two-level lock protocol vs MCS queue locks under
// contention (Sec 2.3: "the number of remote requests while waiting can be
// bound by using MCS locks").
//
// Measures lock+unlock throughput and the retry traffic of the two-level
// protocol as contention grows, against the MCS lock's O(1) remote ops.
#include "bench_util.hpp"
#include "core/mcs_lock.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {
constexpr int kIters = 30;
}

int main() {
  std::printf("Ablation: two-level lock vs MCS lock under contention\n\n");
  std::printf("%-10s%20s%20s%18s\n", "ranks", "two-level [us/acq]",
              "MCS [us/acq]", "two-level retries");
  for (int p : {1, 2, 4, 8}) {
    double twolevel_us = 0, mcs_us = 0, retries = 0;
    // Two-level protocol: everyone hammers an exclusive lock on rank 0.
    {
      std::mutex mu;
      double total_us = 0;
      std::uint64_t total_retries = 0;
      fabric::run_ranks(p, [&](fabric::RankCtx& ctx) {
        core::Win win = core::Win::allocate(ctx, 64);
        ctx.barrier();
        const OpCounters before = op_counters();
        Timer t;
        for (int i = 0; i < kIters; ++i) {
          win.lock(core::LockType::exclusive, 0);
          win.unlock(0);
        }
        const double us = t.elapsed_us() / kIters;
        const auto d = op_counters().since(before);
        {
          std::scoped_lock lock(mu);
          total_us += us;
          total_retries += d.get(Op::retry);
        }
        win.free();
      });
      twolevel_us = total_us / p;
      retries = static_cast<double>(total_retries) / (p * kIters);
    }
    // MCS lock, same workload.
    {
      std::mutex mu;
      double total_us = 0;
      fabric::run_ranks(p, [&](fabric::RankCtx& ctx) {
        core::Win win = core::Win::allocate(ctx, 64);
        win.lock_all();
        core::McsLock lock(win, 0);
        ctx.barrier();
        Timer t;
        for (int i = 0; i < kIters; ++i) {
          lock.acquire();
          lock.release();
        }
        const double us = t.elapsed_us() / kIters;
        {
          std::scoped_lock g(mu);
          total_us += us;
        }
        win.unlock_all();
        win.free();
      });
      mcs_us = total_us / p;
    }
    std::printf("%-10d%20.2f%20.2f%18.2f\n", p, twolevel_us, mcs_us,
                retries);
  }
  std::printf("\nExpected: comparable uncontended cost; the two-level "
              "protocol's retry count\ngrows with contention while MCS "
              "spins only on local memory.\n");
  return 0;
}

// Figure 7b: dynamic sparse data exchange, time for one complete exchange
// with k = 6 random neighbors — foMPI RMA, Cray-MPI-2.2-style RMA, NBX
// (LibNBC), reduce_scatter, alltoall.
#include "apps/dsde.hpp"
#include "bench_util.hpp"
#include "simtime/sim_dsde.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {
constexpr int kNeighbors = 6;

double run_proto(int p, apps::DsdeProto proto) {
  return measure(p, internode_model(), 7, [&](fabric::RankCtx& ctx) {
           const auto sends = apps::dsde_random_workload(
               ctx.rank(), p, std::min(kNeighbors, p - 1), 5);
           if (proto == apps::DsdeProto::rma) {
             // The application holds its window; creation is setup cost.
             apps::DsdeRmaExchanger ex(
                 ctx, static_cast<std::size_t>(p) * 8 + 64);
             ctx.barrier();
             Timer t;
             (void)ex.exchange(ctx, sends);
             const double us = t.elapsed_us();
             ex.destroy(ctx);
             return us;
           }
           ctx.barrier();
           Timer t;
           (void)apps::dsde_exchange(ctx, proto, sends);
           return t.elapsed_us();
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Figure 7b: DSDE exchange time [us], k = %d random "
              "neighbors\n\n", kNeighbors);

  header("thread-rank execution (real protocols)");
  std::printf("%-8s%16s%16s%16s%16s%16s%16s\n", "p", "FOMPI RMA", "NBX",
              "NBX-fiber", "Reduce_scatter", "A2A (p2p old)",
              "A2A (RMA new)");
  for (int p : {4, 8, 16}) {
    const double a2a_p2p = run_proto(p, apps::DsdeProto::alltoall_p2p);
    const double a2a_rma = run_proto(p, apps::DsdeProto::alltoall);
    const double nbx = run_proto(p, apps::DsdeProto::nbx);
    const double nbx_fiber = run_proto(p, apps::DsdeProto::nbx_fiber);
    std::printf("%-8d%16.1f%16.1f%16.1f%16.1f%16.1f%16.1f\n", p,
                run_proto(p, apps::DsdeProto::rma), nbx, nbx_fiber,
                run_proto(p, apps::DsdeProto::reduce_scatter), a2a_p2p,
                a2a_rma);
    std::printf("%-8s alltoall old->new improvement: %.1f%%\n", "",
                100.0 * (a2a_p2p - a2a_rma) / a2a_p2p);
    std::printf("%-8s nbx spin-loop(old)->fiber(new) improvement: %.1f%%\n",
                "", 100.0 * (nbx - nbx_fiber) / nbx);
  }

  header("discrete-event simulation to 32k processes");
  std::printf("%-8s%14s%14s%14s%14s%14s\n", "p", "FOMPI RMA", "CrayMPI RMA",
              "NBX", "Red_scatter", "Alltoall");
  for (int p = 8; p <= 32768; p *= 4) {
    const auto s = sim::simulate_dsde(p);
    std::printf("%-8d%14.1f%14.1f%14.1f%14.1f%14.1f\n", p, s.fompi_rma_us,
                s.mpi22_rma_us, s.nbx_us, s.reduce_scatter_us,
                s.alltoall_us);
  }
  std::printf("\nExpected shape: RMA competitive with NBX (which is "
              "optimal), both O(log p);\ndense protocols grow linearly and "
              "lose by 1-2 orders of magnitude at 32k (Fig 7b).\n");
  return 0;
}

// RMA-native collectives: modeled cost of the dissemination barrier and
// the persistent alltoallv run path (Injection::model — MODELED numbers,
// wall time ~= modeled time; see CLAUDE.md).
//
// Thread-rank executions cover p = 2..8 (above that, host scheduling
// noise dominates); the 8..256-rank tail comes from the simtime closed
// forms (simulate_coll_us), which tests/test_simtime.cpp shape-asserts
// out to 512k ranks. Both sections report microseconds per operation.
//
// Output: one JSON object on stdout (consumed by scripts/bench_smoke.sh
// as BENCH_collectives.json). Acceptance gates run on the DES section
// only (thread-rank numbers are scheduler-noise-dominated on this
// one-core host): barrier and alltoallv at 256 ranks must stay within 8x
// of their 8-rank cost — log-p round counts, not linear.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "simtime/sim_coll.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

constexpr int kReps = 5;
constexpr int kOpsPerRep = 64;
constexpr std::uint64_t kA2avElems = 8;  // u64 elements per (src,dst) pair

fabric::FabricOptions tree_model() {
  fabric::FabricOptions o = internode_model();
  o.coll.flat_cutoff = 0;  // always the RMA put/notify trees
  return o;
}

// Two-tier topology: p/rpn "nodes" of rpn ranks, trees forced.
fabric::FabricOptions hier_model(int rpn) {
  fabric::FabricOptions o = internode_model();
  o.domain.ranks_per_node = rpn;
  o.coll.flat_cutoff = 0;
  return o;
}

double bcast_us_per_op(int p, const fabric::FabricOptions& o) {
  return measure(p, o, kReps, [&](fabric::RankCtx& ctx) {
           std::uint64_t v = ctx.rank() == 0 ? 42 : 0;
           ctx.barrier();
           Timer t;
           for (int i = 0; i < kOpsPerRep; ++i) {
             ctx.fabric().coll().bcast(ctx.rank(), 0, &v, 1);
           }
           return t.elapsed_us() / kOpsPerRep;
         }).median_us;
}

double barrier_us_per_op(int p) {
  return measure(p, tree_model(), kReps, [&](fabric::RankCtx& ctx) {
           Timer t;
           for (int i = 0; i < kOpsPerRep; ++i) ctx.barrier();
           return t.elapsed_us() / kOpsPerRep;
         }).median_us;
}

double alltoallv_us_per_op(int p) {
  return measure(p, tree_model(), kReps, [&](fabric::RankCtx& ctx) {
           auto& coll = ctx.fabric().coll();
           const int r = ctx.rank();
           std::vector<std::uint64_t> counts(static_cast<std::size_t>(p),
                                             kA2avElems);
           std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p));
           for (int j = 0; j < p; ++j) {
             sdispls[static_cast<std::size_t>(j)] =
                 static_cast<std::uint64_t>(j) * kA2avElems;
           }
           auto plan = coll.plan_alltoallv(r, counts.data(), sdispls.data(),
                                           sizeof(std::uint64_t));
           const std::size_t n = static_cast<std::size_t>(p) * kA2avElems;
           std::vector<std::uint64_t> src(n, 7), dst(n, 0);
           coll.run_alltoallv(r, *plan, src.data(), dst.data());  // warmup
           ctx.barrier();
           Timer t;
           for (int i = 0; i < kOpsPerRep; ++i) {
             coll.run_alltoallv(r, *plan, src.data(), dst.data());
           }
           const double us = t.elapsed_us() / kOpsPerRep;
           ctx.barrier();  // all runs retired before the plan is dropped
           return us;
         }).median_us;
}

struct Case {
  std::string name;
  int p;
  const char* kind;  // "measured" | "des"
  double us_per_op;
};

}  // namespace

int main() {
  std::vector<Case> cases;
  for (int p : {2, 4, 8}) {
    cases.push_back({"barrier_p" + std::to_string(p), p, "measured",
                     barrier_us_per_op(p)});
  }
  for (int p : {2, 4, 8}) {
    cases.push_back({"alltoallv_p" + std::to_string(p), p, "measured",
                     alltoallv_us_per_op(p)});
  }
  sim::CollParams cp;
  cp.nbytes = kA2avElems * 8;
  for (int p : {8, 64, 256}) {
    cases.push_back({"des_barrier_p" + std::to_string(p), p, "des",
                     sim::simulate_coll_us(sim::CollOp::barrier, p, cp)});
  }
  for (int p : {8, 64, 256}) {
    cases.push_back({"des_alltoallv_p" + std::to_string(p), p, "des",
                     sim::simulate_coll_us(sim::CollOp::alltoallv, p, cp)});
  }

  // Flat vs tree vs hierarchical (8-byte bcast). Flat is the single-node
  // publish+copy fallback (intranode, default flat_cutoff); tree and
  // two-tier run the RMA put/notify paths under the Gemini model.
  cases.push_back(
      {"bcast8_flat_p8", 8, "measured", bcast_us_per_op(8, intranode_model())});
  cases.push_back(
      {"bcast8_tree_p8", 8, "measured", bcast_us_per_op(8, tree_model())});
  cases.push_back(
      {"bcast8_tree_p16", 16, "measured", bcast_us_per_op(16, tree_model())});
  cases.push_back({"bcast8_hier_p16_rpn4", 16, "measured",
                   bcast_us_per_op(16, hier_model(4))});
  for (int rpn : {1, 4}) {
    sim::CollParams hp = cp;
    hp.ranks_per_node = rpn;
    for (int p : {64, 256}) {
      cases.push_back({"des_bcast_p" + std::to_string(p) + "_rpn" +
                           std::to_string(rpn),
                       p, "des",
                       sim::simulate_coll_us(sim::CollOp::bcast, p, hp)});
    }
  }

  std::printf("{\n  \"bench\": \"collectives\",\n  \"injection\": \"model\",\n");
  std::printf("  \"alltoallv_bytes_per_pair\": %llu,\n",
              static_cast<unsigned long long>(kA2avElems * 8));
  std::printf("  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::printf("    {\"name\": \"%s\", \"p\": %d, \"kind\": \"%s\", "
                "\"us_per_op\": %.2f}%s\n",
                c.name.c_str(), c.p, c.kind, c.us_per_op,
                i + 1 == cases.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");

  // --- acceptance gates (DES only; see header comment) ---------------------
  const auto val = [&](const char* name) {
    for (const Case& c : cases) {
      if (c.name == name) return c.us_per_op;
    }
    std::fprintf(stderr, "FAIL: missing case %s\n", name);
    std::exit(2);
  };
  int rc = 0;
  const double db8 = val("des_barrier_p8"), db256 = val("des_barrier_p256");
  if (db256 >= 8.0 * db8) {
    std::fprintf(stderr,
                 "FAIL: DES barrier not log-shaped: p256 %.2f us >= 8x "
                 "p8 %.2f us\n",
                 db256, db8);
    rc = 1;
  }
  const double d8 = val("des_alltoallv_p8"), d256 = val("des_alltoallv_p256");
  if (d256 >= 8.0 * d8) {
    std::fprintf(stderr,
                 "FAIL: DES alltoallv not log-shaped: p256 %.2f us >= 8x "
                 "p8 %.2f us\n",
                 d256, d8);
    rc = 1;
  }
  const double hflat = val("des_bcast_p256_rpn1");
  const double htier = val("des_bcast_p256_rpn4");
  if (htier >= hflat) {
    std::fprintf(stderr,
                 "FAIL: two-tier bcast not cheaper in DES: rpn4 %.2f us >= "
                 "rpn1 %.2f us at p=256\n",
                 htier, hflat);
    rc = 1;
  }
  return rc;
}

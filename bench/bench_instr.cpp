// Critical-path operation counts (the paper's Sec 2.3/6 instruction-count
// claims: flush adds 78 x86 instructions, the put/get fast path 173, an
// intra-node message ~190).
//
// We cannot count retired instructions portably; instead the library
// counts architectural events on the critical path (transport ops, CPU
// atomics, fences, protocol branches, validation checks — see
// common/instr.hpp). The table shows that the MPI window layering adds
// only a constant, single-digit number of events per call on top of the
// raw transport — the paper's point, in this implementation's units.
#include "bench_util.hpp"
#include "core/window.hpp"
#include "datatype/datatype.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {

struct CountRow {
  std::string name;
  OpCounters delta;
};

std::vector<CountRow> rows;

void record(const std::string& name, const std::function<void()>& once) {
  const OpCounters before = op_counters();
  once();
  rows.push_back(CountRow{name, op_counters().since(before)});
}

}  // namespace

int main() {
  std::printf("Critical-path event counts per call (proxy for the paper's "
              "instruction counts)\n\n");
  fabric::FabricOptions opts;
  opts.domain.ranks_per_node = 1;  // count the inter-node ("DMAPP") path
  fabric::run_ranks(2, [&](fabric::RankCtx& ctx) {
    core::Win win = core::Win::allocate(ctx, 4096);
    std::array<std::uint64_t, 64> buf{};
    if (ctx.rank() == 0) {
      win.lock_all();
      win.put(buf.data(), 8, 1, 0);  // warm caches
      win.flush_all();

      record("put 8B fast path", [&] { win.put(buf.data(), 8, 1, 0); });
      record("get 8B fast path", [&] { win.get(buf.data(), 8, 1, 0); });
      record("put 512B fast path",
             [&] { win.put(buf.data(), 512, 1, 0); });
      const auto strided = dt::Datatype::vector(4, 1, 2, dt::Datatype::i64());
      const auto contig = dt::Datatype::contiguous(4, dt::Datatype::i64());
      record("put 4x8B strided dtype", [&] {
        win.put(buf.data(), 1, strided, 1, 0, 1, contig);
      });
      record("flush", [&] { win.flush(1); });
      record("accumulate sum 1x8B", [&] {
        const std::uint64_t one = 1;
        win.accumulate(&one, 1, Elem::u64, RedOp::sum, 1, 0);
      });
      record("accumulate min 1x8B", [&] {
        const std::uint64_t one = 1;
        win.accumulate(&one, 1, Elem::u64, RedOp::min, 1, 0);
      });
      record("CAS 8B", [&] {
        std::uint64_t d = 1, c = 0, o = 0;
        win.compare_and_swap(&d, &c, &o, Elem::u64, 1, 0);
      });
      record("sync (mfence)", [&] { win.sync(); });
      win.unlock_all();
      record("lock_excl + unlock", [&] {
        win.lock(core::LockType::exclusive, 1);
        win.unlock(1);
      });
      record("lock_shrd + unlock", [&] {
        win.lock(core::LockType::shared, 1);
        win.unlock(1);
      });
    }
    ctx.barrier();
    win.free();
  }, opts);

  std::printf("%-26s %5s %5s %5s %5s %5s %5s %5s %6s %6s\n", "call", "put",
              "get", "amo", "latm", "fence", "gsync", "brnch", "check",
              "total");
  for (const auto& r : rows) {
    std::printf("%-26s %5llu %5llu %5llu %5llu %5llu %5llu %5llu %6llu %6llu\n",
                r.name.c_str(),
                (unsigned long long)r.delta.get(Op::transport_put),
                (unsigned long long)r.delta.get(Op::transport_get),
                (unsigned long long)r.delta.get(Op::transport_amo),
                (unsigned long long)r.delta.get(Op::local_atomic),
                (unsigned long long)r.delta.get(Op::memory_fence),
                (unsigned long long)r.delta.get(Op::bulk_sync),
                (unsigned long long)r.delta.get(Op::protocol_branch),
                (unsigned long long)r.delta.get(Op::validation_check),
                (unsigned long long)r.delta.total_ops());
  }
  std::printf("\npaper reference: flush = 78 instructions; put/get fast "
              "path = 173; one intra-node\nmessage ~190. The shape to check:"
              " fast-path calls stay at a handful of events,\nfallback "
              "accumulate pays the lock-get-combine-put-unlock protocol.\n");
  return 0;
}

// Ablation: window-creation strategies (Sec 2.2).
//
// Compares the four window flavors on creation cost and per-access
// metadata, and exercises the symmetric heap's propose/try/allreduce retry
// loop under fragmentation — the design choice that makes allocated
// windows O(1)-metadata instead of the traditional windows' Ω(p) table.
#include "bench_util.hpp"
#include "core/window.hpp"

using namespace fompi;
using namespace fompi::bench;

int main() {
  std::printf("Ablation: window creation strategies\n\n");

  header("creation + free cost [us] (4 ranks, Gemini model)");
  auto timed = [&](const char* name,
                   const std::function<void(fabric::RankCtx&)>& body) {
    const double us =
        measure(4, internode_model(), 3, [&](fabric::RankCtx& ctx) {
          Timer t;
          body(ctx);
          return t.elapsed_us();
        }).median_us;
    std::printf("%-28s%12.1f\n", name, us);
  };
  timed("create (user memory)", [](fabric::RankCtx& ctx) {
    std::vector<std::byte> mem(4096);
    core::Win w = core::Win::create(ctx, mem.data(), mem.size());
    w.free();
  });
  timed("allocate (symmetric heap)", [](fabric::RankCtx& ctx) {
    core::Win w = core::Win::allocate(ctx, 4096);
    w.free();
  });
  timed("create_dynamic + attach", [](fabric::RankCtx& ctx) {
    std::vector<std::byte> mem(4096);
    core::Win w = core::Win::create_dynamic(ctx);
    w.attach(mem.data(), mem.size());
    w.detach(mem.data());
    w.free();
  });
  timed("allocate_shared", [](fabric::RankCtx& ctx) {
    core::Win w = core::Win::allocate_shared(ctx, 4096);
    w.free();
  });

  header("symmetric-heap retry behaviour under fragmentation");
  std::printf("%-28s%12s\n", "heap occupancy", "attempts (median)");
  for (double fill : {0.0, 0.25, 0.5}) {
    const double attempts =
        measure(2, fabric::FabricOptions{}, 5, [&](fabric::RankCtx& ctx) {
          core::WinConfig cfg;
          cfg.symheap_bytes = 64 * 1024;
          // Pre-fragment the heap with randomly placed blocks.
          std::vector<core::Win> filler;
          const int blocks = static_cast<int>(fill * 16);
          for (int i = 0; i < blocks; ++i) {
            filler.push_back(core::Win::allocate(ctx, 4096 - 64, cfg));
          }
          core::Win probe = core::Win::allocate(ctx, 2048, cfg);
          const int a = probe.alloc_attempts();
          probe.free();
          for (auto& w : filler) w.free();
          return static_cast<double>(a);
        }).median_us;
    std::printf("%-28.2f%12.1f\n", fill, attempts);
  }
  std::printf("\nExpected: attempts grow with occupancy — the documented "
              "cost of the paper's\nrandom-propose mmap protocol; creation "
              "cost of allocated windows stays within\na small factor of "
              "traditional ones while eliminating the Ω(p) descriptor "
              "table.\n");
  return 0;
}

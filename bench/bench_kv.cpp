// KV service SLO harness: closed-loop Zipfian fleets against the sharded
// store (src/kv) under the injected Gemini cost model.
//
// Three sections, two with built-in acceptance gates (exit 1):
//
//   1. SLO table (informational): p in {2, 4} client ranks x read_ratio in
//      {0.95, 0.5}; each rank runs a closed-loop fleet (8 fibers, Zipf 0.9
//      keys) and the per-op-class latency histograms are merged across
//      ranks. Under Injection::model wall time tracks the charged Gemini
//      costs, so the p50/p99 columns are MODELED latencies (see CLAUDE.md);
//      the sim_kv closed forms are printed beside them.
//   2. Cache leverage (gated): the epoch-validated cache hit is one remote
//      AMO against the versioned read's six, so the warm-cache modeled get
//      rate must be >= 2x the uncached rate. Three attempts: thread-rank
//      wall smear can spoil one, three misses mean the cache really does
//      not short-circuit.
//   3. Failover SLO degradation (gated): phase A reads rank-1-owned keys
//      healthy (warm cache), then the seeded fault plan kills rank 1 and
//      phase B re-reads the same keys degraded (replica serving, cache
//      bypassed). Gates: the run completes (no hang), the dead owner
//      probes as typed peer_dead, both phase p99s are finite, and
//      p99(degraded) >= p99(healthy) — the SLO monotonically degrades.
//
// Output: one JSON object on stdout (consumed by scripts/bench_smoke.sh
// as BENCH_kv.json).
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "kv/kv.hpp"
#include "simtime/sim_kv.hpp"
#include "trace/trace.hpp"

using namespace fompi;
using namespace fompi::bench;
using fabric::RankCtx;
using kv::KvConfig;
using kv::KvStore;
using rdma::OpStatus;

namespace {

constexpr int kFleetOpsPerRank = 384;
constexpr std::uint64_t kKeyspace = 256;

struct SloRow {
  int ranks = 0;
  double read_ratio = 0;
  bool degraded = false;
  double read_p50_us = 0, read_p99_us = 0;
  double write_p50_us = 0, write_p99_us = 0;
  std::uint64_t reads = 0, writes = 0, cache_hits = 0;
};

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// One fleet configuration: every rank seeds its share, then runs the
/// closed loop; histograms merged over ranks.
SloRow fleet_row(int p, double read_ratio) {
  SloRow rowv;
  rowv.ranks = p;
  rowv.read_ratio = read_ratio;
  trace::LatencyHisto reads, writes;
  std::mutex mu;
  fabric::run_ranks(p, [&](RankCtx& ctx) {
    KvStore store(ctx);
    if (ctx.rank() == 0) {  // seed so reads mostly hit
      for (std::uint64_t k = 1; k <= kKeyspace; ++k) store.put(k, k * 3);
    }
    ctx.barrier();
    KvStore::FleetConfig fc;
    fc.ops_per_rank = kFleetOpsPerRank;
    fc.read_ratio = read_ratio;
    fc.keyspace = kKeyspace;
    fc.seed = 7;
    const auto res = store.run_fleet(ctx, fc);
    {
      std::scoped_lock lock(mu);
      reads.merge(res.read_hist);
      writes.merge(res.write_hist);
      rowv.reads += res.reads;
      rowv.writes += res.writes;
      rowv.cache_hits += res.cache_hits;
    }
    ctx.barrier();
    store.destroy(ctx);
  }, internode_model());
  rowv.read_p50_us = us(reads.quantile(0.5));
  rowv.read_p99_us = us(reads.quantile(0.99));
  rowv.write_p50_us = us(writes.quantile(0.5));
  rowv.write_p99_us = us(writes.quantile(0.99));
  return rowv;
}

struct CacheResult {
  double cached_mops = 0;
  double uncached_mops = 0;
};

/// Modeled get rate of one client hammering one hot key, with and without
/// the epoch-stamped cache (single active rank: nobody bumps the epoch).
CacheResult cache_rates() {
  CacheResult res;
  for (const bool cached : {true, false}) {
    KvConfig cfg;
    cfg.client_cache = cached;
    double rate = 0;
    fabric::run_ranks(2, [&](RankCtx& ctx) {
      KvStore store(ctx, cfg);
      if (ctx.rank() == 0) {
        store.put(99, 1);
        std::uint64_t v = 0;
        bool found = false;
        store.get(99, &v, &found);  // warm the cache (cold miss)
        constexpr int kGets = 256;
        Timer t;
        for (int i = 0; i < kGets; ++i) store.get(99, &v, &found);
        rate = static_cast<double>(kGets) / t.elapsed_us();
      }
      ctx.barrier();
      store.destroy(ctx);
    }, internode_model());
    (cached ? res.cached_mops : res.uncached_mops) = rate;
  }
  return res;
}

struct FailoverResult {
  double healthy_p50_us = 0, healthy_p99_us = 0;
  double degraded_p50_us = 0, degraded_p99_us = 0;
  bool typed_peer_dead = false;
  std::uint64_t failovers = 0;
};

/// Phase A: healthy warm-cache reads of rank-1-owned keys. Kill rank 1.
/// Phase B: the same reads served degraded by the replica.
FailoverResult failover_slo() {
  constexpr int kRanks = 4;
  constexpr int kReadsPerKey = 32;
  fabric::FabricOptions opts = internode_model();
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  FailoverResult res;
  fabric::run_ranks(kRanks, [&](RankCtx& ctx) {
    KvStore store(ctx);
    // Keys owned by the doomed rank (pure hash function, same on all
    // ranks).
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; keys.size() < 6; ++k) {
      if (store.owner_of(store.shard_of(k)) == 1) keys.push_back(k);
    }
    if (ctx.rank() == 0) {
      for (const auto k : keys) store.put(k, k + 1);
    }
    ctx.barrier();

    if (ctx.rank() == 0) {
      trace::LatencyHisto healthy;
      std::uint64_t v = 0;
      bool found = false;
      for (const auto k : keys) store.get(k, &v, &found);  // warm cache
      for (int r = 0; r < kReadsPerKey; ++r) {
        for (const auto k : keys) {
          Timer t;
          store.get(k, &v, &found);
          healthy.add(t.elapsed_ns());
        }
      }
      res.healthy_p50_us = us(healthy.quantile(0.5));
      res.healthy_p99_us = us(healthy.quantile(0.99));
      int done = 1;
      ctx.send(1, /*tag=*/3, &done, sizeof done);  // release the doomed rank
    }
    if (ctx.rank() == 1) {
      int done = 0;
      ctx.recv(0, /*tag=*/3, &done, sizeof done);
      // Dies at its kill_at_op-th issued op; RankKilledError unwinds this
      // thread quietly under the fleet-scope errors_return.
      for (int i = 0; i < 100000; ++i) store.put(8880001, 1);
      std::fprintf(stderr, "FAIL: rank 1 survived its kill plan\n");
    }
    if (ctx.rank() != 1) {
      while (store.peer_alive(1)) ctx.yield_check();
    }
    if (ctx.rank() == 0) {
      res.typed_peer_dead =
          store.probe_owner(store.shard_of(keys[0])) == OpStatus::peer_dead;
      trace::LatencyHisto degraded;
      std::uint64_t v = 0;
      bool found = false;
      for (int r = 0; r < kReadsPerKey; ++r) {
        for (const auto k : keys) {
          Timer t;
          store.get(k, &v, &found);
          degraded.add(t.elapsed_ns());
        }
      }
      res.degraded_p50_us = us(degraded.quantile(0.5));
      res.degraded_p99_us = us(degraded.quantile(0.99));
      res.failovers = store.stats().failovers;
    }
    // No barrier/destroy: collective with a dead rank.
  }, opts);
  return res;
}

struct RecoveryRow {
  double healthy_p50_us = 0, healthy_p99_us = 0;
  double degraded_p50_us = 0, degraded_p99_us = 0;
  double post_p50_us = 0, post_p99_us = 0;
  double recovery_drain_us = 0;  ///< modeled wall time of the heal() pass
  std::uint64_t drained_bytes = 0, scrub_cells = 0, scrub_repairs = 0;
  std::uint64_t generation = 0;
  int promoted = 0, rereplicated = 0;
  bool healed_ok = false;
  bool degraded_cleared = false;
};

/// Self-healing SLO: healthy reads -> owner kill -> degraded reads ->
/// heal() (replica promotion + frozen-image drain + scrub, timed) -> the
/// same reads against the healed routing. The gates assert the full
/// restoration story: recovery typed-completes, degraded() clears
/// everywhere, the post-recovery tail returns to within 1.5x of healthy
/// (the generation check rides the epoch check), and cache leverage is
/// back (>= 2x over the degraded uncached reads).
RecoveryRow recovery_slo() {
  constexpr int kRanks = 4;
  constexpr int kReadsPerKey = 32;
  fabric::FabricOptions opts = internode_model();
  opts.domain.fault.kill_rank = 1;
  opts.domain.fault.kill_at_op = 400;
  opts.errors_return = true;
  RecoveryRow row;
  fabric::run_ranks(kRanks, [&](RankCtx& ctx) {
    KvStore store(ctx);
    std::vector<std::uint64_t> keys;  // owned by the doomed rank
    for (std::uint64_t k = 1; keys.size() < 6; ++k) {
      if (store.owner_of(store.shard_of(k)) == 1) keys.push_back(k);
    }
    if (ctx.rank() == 0) {
      for (const auto k : keys) store.put(k, k + 1);
    }
    ctx.barrier();  // last collective before the kill

    if (ctx.rank() == 0) {
      trace::LatencyHisto healthy;
      std::uint64_t v = 0;
      bool found = false;
      for (const auto k : keys) store.get(k, &v, &found);  // warm cache
      for (int r = 0; r < kReadsPerKey; ++r) {
        for (const auto k : keys) {
          Timer t;
          store.get(k, &v, &found);
          healthy.add(t.elapsed_ns());
        }
      }
      row.healthy_p50_us = us(healthy.quantile(0.5));
      row.healthy_p99_us = us(healthy.quantile(0.99));
      int done = 1;
      ctx.send(1, /*tag=*/3, &done, sizeof done);  // release the doomed rank
    }
    if (ctx.rank() == 1) {
      int done = 0;
      ctx.recv(0, /*tag=*/3, &done, sizeof done);
      for (int i = 0; i < 100000; ++i) store.put(8880001, 1);
      std::fprintf(stderr, "FAIL: rank 1 survived its kill plan\n");
      return;
    }
    while (store.peer_alive(1)) ctx.yield_check();

    if (ctx.rank() != 0) {
      // Followers: participate in recovery (wait for the coordinator's
      // generation release, then install the new table) and stay resident
      // so the drain can land in their spare banks.
      store.heal();
      return;
    }

    // Degraded phase: replica serving, cache bypassed.
    trace::LatencyHisto degraded;
    std::uint64_t v = 0;
    bool found = false;
    for (int r = 0; r < kReadsPerKey; ++r) {
      for (const auto k : keys) {
        Timer t;
        store.get(k, &v, &found);
        degraded.add(t.elapsed_ns());
      }
    }
    row.degraded_p50_us = us(degraded.quantile(0.5));
    row.degraded_p99_us = us(degraded.quantile(0.99));

    // Heal: rank 0 is the lowest alive rank, so this pass coordinates —
    // promotion, frozen-image drain, scrub, generation release — and the
    // timer captures the modeled recovery time.
    Timer heal_t;
    const kv::RecoveryReport rep = store.heal();
    row.recovery_drain_us = heal_t.elapsed_us();
    row.healed_ok = rep.status == OpStatus::ok && rep.acted &&
                    rep.promoted >= 1 && rep.rereplicated >= 1 &&
                    rep.lost == 0;
    row.drained_bytes = rep.drained_bytes;
    row.scrub_cells = rep.scrub_cells;
    row.scrub_repairs = rep.scrub_repairs;
    row.generation = rep.generation;
    row.promoted = rep.promoted;
    row.rereplicated = rep.rereplicated;
    row.degraded_cleared = true;
    for (int s = 0; s < store.config().shards; ++s) {
      if (store.degraded(s)) row.degraded_cleared = false;
    }

    // Post-recovery phase: same keys against the healed routing. One
    // warm-up pass repopulates the cache under the new generation.
    trace::LatencyHisto post;
    for (const auto k : keys) {
      auto st = store.get(k, &v, &found);
      while (st == OpStatus::retry_routing) st = store.get(k, &v, &found);
    }
    for (int r = 0; r < kReadsPerKey; ++r) {
      for (const auto k : keys) {
        Timer t;
        store.get(k, &v, &found);
        post.add(t.elapsed_ns());
      }
    }
    row.post_p50_us = us(post.quantile(0.5));
    row.post_p99_us = us(post.quantile(0.99));
    // No barrier/destroy: collective with a dead rank.
  }, opts);
  return row;
}

}  // namespace

int main() {
  // --- SLO table -----------------------------------------------------------
  std::vector<SloRow> slo;
  for (const int p : {2, 4}) {
    for (const double rr : {0.95, 0.5}) slo.push_back(fleet_row(p, rr));
  }

  // --- cache leverage gate -------------------------------------------------
  CacheResult cache;
  bool cache_ok = false;
  for (int attempt = 0; attempt < 3 && !cache_ok; ++attempt) {
    cache = cache_rates();
    cache_ok = cache.cached_mops >= 2.0 * cache.uncached_mops;
  }

  // --- failover SLO degradation gate ---------------------------------------
  FailoverResult fo;
  bool fo_ok = false;
  for (int attempt = 0; attempt < 3 && !fo_ok; ++attempt) {
    fo = failover_slo();
    fo_ok = fo.typed_peer_dead && fo.failovers > 0 &&
            fo.healthy_p99_us > 0 && fo.degraded_p99_us > 0 &&
            fo.degraded_p99_us >= fo.healthy_p99_us;
  }

  // --- self-healing recovery gate ------------------------------------------
  RecoveryRow rec;
  bool rec_ok = false;
  for (int attempt = 0; attempt < 3 && !rec_ok; ++attempt) {
    rec = recovery_slo();
    const bool tail_restored =
        rec.post_p99_us > 0 && rec.healthy_p99_us > 0 &&
        rec.post_p99_us <= 1.5 * rec.healthy_p99_us;
    const bool leverage_restored =
        rec.post_p50_us > 0 && rec.degraded_p50_us >= 2.0 * rec.post_p50_us;
    rec_ok = rec.healed_ok && rec.degraded_cleared &&
             rec.drained_bytes > 0 && rec.recovery_drain_us > 0 &&
             tail_restored && leverage_restored;
  }

  const sim::KvParams model;
  // Modeled recovery time for the default-config shard the harness heals:
  // 16B epoch header + (64 top + 256 heap) 32B cells, 320 cell pairs.
  const double model_recovery_us =
      sim::kv_recovery_us(model, 16 + (64 + 256) * 32, 64 + 256);
  std::printf("{\n  \"bench\": \"kv\",\n  \"injection\": \"model\",\n");
  std::printf("  \"slo\": [\n");
  for (std::size_t i = 0; i < slo.size(); ++i) {
    const SloRow& r = slo[i];
    std::printf(
        "    {\"name\": \"fleet_p%d_r%.0f\", \"ranks\": %d, "
        "\"read_ratio\": %.2f, \"read_p50_us\": %.2f, \"read_p99_us\": %.2f, "
        "\"write_p50_us\": %.2f, \"write_p99_us\": %.2f, \"reads\": %llu, "
        "\"writes\": %llu, \"cache_hits\": %llu}%s\n",
        r.ranks, r.read_ratio * 100, r.ranks, r.read_ratio, r.read_p50_us,
        r.read_p99_us, r.write_p50_us, r.write_p99_us,
        static_cast<unsigned long long>(r.reads),
        static_cast<unsigned long long>(r.writes),
        static_cast<unsigned long long>(r.cache_hits),
        i + 1 == slo.size() ? "" : ",");
  }
  std::printf("  ],\n");
  std::printf(
      "  \"model\": {\"read_us\": %.2f, \"read_p99_us\": %.2f, "
      "\"put_us\": %.2f, \"degraded_read_us\": %.2f, "
      "\"degraded_read_p99_us\": %.2f},\n",
      sim::kv_read_us(model), sim::kv_read_p99_us(model),
      sim::kv_put_us(model), sim::kv_read_us(model, true),
      sim::kv_read_p99_us(model, true));
  std::printf(
      "  \"cache\": {\"cached_mops_per_s\": %.3f, "
      "\"uncached_mops_per_s\": %.3f, \"leverage\": %.2f},\n",
      cache.cached_mops, cache.uncached_mops,
      cache.uncached_mops > 0 ? cache.cached_mops / cache.uncached_mops : 0.0);
  std::printf(
      "  \"failover\": {\"name\": \"owner_kill_slo\", "
      "\"healthy_p50_us\": %.2f, \"healthy_p99_us\": %.2f, "
      "\"degraded_p50_us\": %.2f, \"degraded_p99_us\": %.2f, "
      "\"typed_peer_dead\": %s, \"failovers\": %llu}\n",
      fo.healthy_p50_us, fo.healthy_p99_us, fo.degraded_p50_us,
      fo.degraded_p99_us, fo.typed_peer_dead ? "true" : "false",
      static_cast<unsigned long long>(fo.failovers));
  std::printf(",\n");
  std::printf(
      "  \"recovery\": {\"name\": \"self_healing_slo\", "
      "\"recovery_drain_us\": %.2f, \"post_recovery_p50_us\": %.2f, "
      "\"post_recovery_p99_us\": %.2f, \"healthy_p99_us\": %.2f, "
      "\"degraded_p50_us\": %.2f, \"drained_bytes\": %llu, "
      "\"scrub_cells\": %llu, \"scrub_repairs\": %llu, "
      "\"generation\": %llu, \"promoted\": %d, \"rereplicated\": %d, "
      "\"degraded_cleared\": %s, \"model_recovery_us\": %.2f, "
      "\"model_post_recovery_p99_us\": %.2f}\n",
      rec.recovery_drain_us, rec.post_p50_us, rec.post_p99_us,
      rec.healthy_p99_us, rec.degraded_p50_us,
      static_cast<unsigned long long>(rec.drained_bytes),
      static_cast<unsigned long long>(rec.scrub_cells),
      static_cast<unsigned long long>(rec.scrub_repairs),
      static_cast<unsigned long long>(rec.generation), rec.promoted,
      rec.rereplicated, rec.degraded_cleared ? "true" : "false",
      model_recovery_us, sim::kv_post_recovery_p99_us(model));
  std::printf("}\n");

  if (!cache_ok) {
    std::fprintf(stderr,
                 "FAIL: cached get rate %.3f Mops/s < 2x uncached %.3f\n",
                 cache.cached_mops, cache.uncached_mops);
    return 1;
  }
  if (!fo_ok) {
    std::fprintf(stderr,
                 "FAIL: failover SLO gate (typed_peer_dead=%d failovers=%llu "
                 "healthy_p99=%.2f degraded_p99=%.2f)\n",
                 fo.typed_peer_dead,
                 static_cast<unsigned long long>(fo.failovers),
                 fo.healthy_p99_us, fo.degraded_p99_us);
    return 1;
  }
  if (!rec_ok) {
    std::fprintf(stderr,
                 "FAIL: self-healing gate (healed_ok=%d degraded_cleared=%d "
                 "drained=%llu drain_us=%.2f healthy_p99=%.2f post_p99=%.2f "
                 "degraded_p50=%.2f post_p50=%.2f)\n",
                 rec.healed_ok, rec.degraded_cleared,
                 static_cast<unsigned long long>(rec.drained_bytes),
                 rec.recovery_drain_us, rec.healthy_p99_us, rec.post_p99_us,
                 rec.degraded_p50_us, rec.post_p50_us);
    return 1;
  }
  return 0;
}

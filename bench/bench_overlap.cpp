// Suspend-on-wait overlap: modeled message rate and issue overhead vs
// fiber count (the src/fabric/progress engine).
//
// Two questions, the first with a built-in acceptance gate (exit 1):
//
//   1. Modeled throughput (Injection::model — MODELED numbers, wall time
//      tracks the charged Gemini costs; see CLAUDE.md): one rank runs
//      F in {1, 8, 64, 512} fibers, each pipelining 8-byte AMOs (the
//      gated workload), gets, or puts to a passive peer. One fiber is
//      the blocking baseline (o + s + L per op); F fibers overlap up to
//      F network latencies while the origin serializes only the issue
//      path. Gate: >= 4x the 1-fiber rate at 64 fibers for the amo
//      pipeline, monotone (with tolerance) up to 64. The closed-form
//      model (simtime/sim_overlap.hpp) is printed beside every measured
//      rate.
//   2. Issue overhead (Injection::none — software-only, same caveat as
//      bench_fastpath): the identical pipelines with no modeled time
//      charged, i.e. the host-side cost of issue + fiber switch +
//      completion bookkeeping per op, vs fiber count.
//
// An informational third section drives the put-with-notification
// producer pipeline (reserve/record/stamp, 3 awaits per post) against a
// live consumer on the fabric.
//
// Output: one JSON object on stdout (consumed by scripts/bench_smoke.sh
// as BENCH_overlap.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/buffer.hpp"
#include "common/timing.hpp"
#include "core/window.hpp"
#include "fabric/progress/progress.hpp"
#include "rdma/nic.hpp"
#include "simtime/sim_overlap.hpp"

using namespace fompi;
using namespace fompi::bench;
namespace progress = fompi::fabric::progress;

namespace {

constexpr int kReps = 3;
constexpr int kTotalOps = 4096;   // per timed rep, split across fibers
constexpr int kNotifyPosts = 512;
const int kFiberCounts[] = {1, 8, 64, 512};

enum class Kind { put, get, amo };

const char* to_string(Kind k) {
  switch (k) {
    case Kind::put: return "put8";
    case Kind::get: return "get8";
    case Kind::amo: return "amo8";
  }
  return "?";
}

sim::OverlapModel model_for(Kind k) {
  switch (k) {
    case Kind::put: return sim::overlap_model_put8();
    case Kind::get: return sim::overlap_model_get8();
    case Kind::amo: return sim::overlap_model_amo8();
  }
  return {};
}

/// One sliding-window pipeline: issues `ops` operations of one kind to
/// rank 1, suspending on each completion. F of these per rank keep F ops
/// in flight.
class OpPipeline final : public progress::Fiber {
 public:
  OpPipeline(rdma::Nic& nic, const rdma::RegionDesc& d, Kind kind, int ops)
      : nic_(nic), d_(d), kind_(kind), ops_(ops) {}

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < ops_; ++i_) {
      issue();
      FOMPI_FIBER_AWAIT(s, h_);
    }
    FOMPI_FIBER_END();
  }

 private:
  void issue() {
    const std::size_t off = (static_cast<std::size_t>(i_) % 64) * 8;
    switch (kind_) {
      case Kind::put: h_ = nic_.put_nb(1, d_, off, &src_, 8); break;
      case Kind::get: h_ = nic_.get_nb(1, d_, off, &dst_, 8); break;
      case Kind::amo:
        h_ = nic_.amo_nb(1, d_, off, rdma::AmoOp::fetch_add, 1, 0, &fetched_);
        break;
    }
  }

  rdma::Nic& nic_;
  const rdma::RegionDesc& d_;
  Kind kind_;
  int ops_ = 0;
  int i_ = 0;
  rdma::Handle h_ = rdma::kDoneHandle;
  alignas(8) std::uint64_t src_ = 1;
  alignas(8) std::uint64_t dst_ = 0;
  alignas(8) std::uint64_t fetched_ = 0;
};

/// Median wall ns/op of kTotalOps ops split over `fibers` pipelines.
double pipeline_ns_per_op(Kind kind, int fibers, rdma::Injection inject) {
  rdma::DomainConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;  // inter-node ("DMAPP") path
  cfg.inject = inject;
  cfg.delivery = rdma::Delivery::immediate;
  rdma::Domain dom(cfg);
  rdma::Nic& nic = dom.nic(0);
  AlignedBuffer mem(1 << 16);
  const rdma::RegionDesc d =
      dom.registry().register_region(1, mem.data(), 1 << 16);

  const int per_fiber = std::max(1, kTotalOps / fibers);
  const int total = per_fiber * fibers;
  std::vector<double> ns;
  for (int r = 0; r < kReps + 1; ++r) {  // first rep is warmup
    progress::Scheduler sched(nic, [] {});
    for (int f = 0; f < fibers; ++f) {
      sched.spawn<OpPipeline>(nic, d, kind, per_fiber);
    }
    Timer t;
    sched.run();
    if (r > 0) ns.push_back(static_cast<double>(t.elapsed_ns()) / total);
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// Put-with-notification producer pipeline: reserve -> record -> stamp,
/// one await per step (the decomposition Win::put_notify's blocking post
/// takes in one call).
class NotifyPostFiber final : public progress::Fiber {
 public:
  NotifyPostFiber(progress::NotifyPlane& plane, int me, int target, int posts)
      : plane_(plane), me_(me), target_(target), posts_(posts) {}

 protected:
  void step(progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    for (i_ = 0; i_ < posts_; ++i_) {
      h_ = plane_.reserve_nb(me_, target_, &seq_);
      FOMPI_FIBER_AWAIT(s, h_);
      while (!plane_.fits(seq_, cursor_)) {
        h_ = plane_.cursor_nb(me_, target_, &cursor_);
        FOMPI_FIBER_AWAIT(s, h_);
      }
      h_ = plane_.record_nb(me_, target_, seq_, /*tag=*/7, /*tdisp=*/0,
                            /*bytes=*/8);
      FOMPI_FIBER_AWAIT(s, h_);
      h_ = plane_.stamp_nb(me_, target_, seq_);
      FOMPI_FIBER_AWAIT(s, h_);
    }
    FOMPI_FIBER_END();
  }

 private:
  progress::NotifyPlane& plane_;
  int me_, target_, posts_;
  int i_ = 0;
  std::uint64_t seq_ = 0, cursor_ = 0;
  rdma::Handle h_ = rdma::kDoneHandle;
};

/// Modeled notify-post rate at `fibers` producer pipelines against a live
/// consumer (2 thread-ranks; the consumer competes for the host core, so
/// this row is informational, not gated).
double notify_rate_mops(int fibers) {
  const int per_fiber = std::max(1, kNotifyPosts / fibers);
  const int total = per_fiber * fibers;
  const double us =
      measure(2, internode_model(), kReps, [&](fabric::RankCtx& ctx) {
        core::Win win = core::Win::allocate(ctx, 64);
        win.lock_all();
        win.notify_enable(ctx, /*capacity=*/1024);
        progress::NotifyPlane& plane = *win.notify_plane();
        double us = 0;
        if (ctx.rank() == 0) {
          progress::Scheduler sched(ctx.fabric(), ctx.rank());
          for (int f = 0; f < fibers; ++f) {
            sched.spawn<NotifyPostFiber>(plane, 0, 1, per_fiber);
          }
          Timer t;
          sched.run();
          us = t.elapsed_us();
        } else {
          progress::NotifyRecord rec;
          int got = 0;
          while (got < total) {
            got += static_cast<int>(
                plane.waitsome(1, progress::kAnyNotifyTag, &rec, 1));
          }
        }
        ctx.barrier();  // producer's ring writes all consumed before free
        win.unlock_all();
        win.free();
        return us;
      }).median_us;
  return static_cast<double>(total) / us;
}

struct RateCase {
  Kind kind;
  int fibers = 1;
  double mops = 0;        ///< measured under Injection::model
  double model_mops = 0;  ///< closed form at the same fiber count
};

struct OverheadCase {
  Kind kind;
  int fibers = 1;
  double ns_per_op = 0;  ///< software-only (Injection::none)
};

}  // namespace

int main() {
  // --- modeled throughput, gated on the amo pipeline -----------------------
  // The gate retries: thread-rank wall time on the shared host can smear
  // one attempt, but three consecutive failures mean the engine really
  // does not overlap.
  std::vector<RateCase> rates;
  bool gate_ok = false;
  std::string gate_msg;
  for (int attempt = 0; attempt < 3 && !gate_ok; ++attempt) {
    rates.clear();
    for (Kind kind : {Kind::amo, Kind::get, Kind::put}) {
      const sim::OverlapModel m = model_for(kind);
      for (int f : kFiberCounts) {
        RateCase c;
        c.kind = kind;
        c.fibers = f;
        c.mops = 1e3 / pipeline_ns_per_op(kind, f, rdma::Injection::model);
        c.model_mops = m.rate_mops(f);
        rates.push_back(c);
      }
    }
    // rates[0..3] is the amo sweep in kFiberCounts order.
    const double r1 = rates[0].mops, r8 = rates[1].mops, r64 = rates[2].mops;
    gate_ok = true;
    gate_msg.clear();
    char buf[160];
    if (r64 < 4.0 * r1) {
      std::snprintf(buf, sizeof buf,
                    "amo rate at 64 fibers %.2f Mops/s < 4x 1-fiber %.2f",
                    r64, r1);
      gate_msg = buf;
      gate_ok = false;
    } else if (r8 < 0.90 * r1 || r64 < 0.90 * r8) {
      // Monotone up to 64 fibers, with slack for host-timing smear (the
      // pipeline saturates near F* ~ 6, so 8 and 64 sit on the plateau).
      std::snprintf(buf, sizeof buf,
                    "amo rate not monotone: f1 %.2f f8 %.2f f64 %.2f", r1, r8,
                    r64);
      gate_msg = buf;
      gate_ok = false;
    }
  }

  // --- software-only issue overhead ----------------------------------------
  std::vector<OverheadCase> overheads;
  for (Kind kind : {Kind::amo, Kind::get, Kind::put}) {
    for (int f : kFiberCounts) {
      OverheadCase c;
      c.kind = kind;
      c.fibers = f;
      c.ns_per_op = pipeline_ns_per_op(kind, f, rdma::Injection::none);
      overheads.push_back(c);
    }
  }

  // --- notified-access producer pipeline (informational) -------------------
  std::vector<std::pair<int, double>> notify;
  for (int f : {1, 8, 64}) notify.emplace_back(f, notify_rate_mops(f));

  std::printf("{\n  \"bench\": \"overlap\",\n  \"injection\": \"model\",\n");
  std::printf("  \"ops_per_rep\": %d,\n  \"cases\": [\n", kTotalOps);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RateCase& c = rates[i];
    std::printf("    {\"name\": \"%s_pipeline_f%d\", \"fibers\": %d, "
                "\"mops_per_s\": %.2f, \"model_mops_per_s\": %.2f}%s\n",
                to_string(c.kind), c.fibers, c.fibers, c.mops, c.model_mops,
                i + 1 == rates.size() ? "" : ",");
  }
  std::printf("  ],\n  \"issue_overhead_ns\": [\n");
  for (std::size_t i = 0; i < overheads.size(); ++i) {
    const OverheadCase& c = overheads[i];
    std::printf("    {\"name\": \"%s_issue_f%d\", \"fibers\": %d, "
                "\"ns_per_op\": %.1f}%s\n",
                to_string(c.kind), c.fibers, c.fibers, c.ns_per_op,
                i + 1 == overheads.size() ? "" : ",");
  }
  std::printf("  ],\n  \"notify_post_pipeline\": [\n");
  for (std::size_t i = 0; i < notify.size(); ++i) {
    std::printf("    {\"name\": \"notify_post_f%d\", \"fibers\": %d, "
                "\"mops_per_s\": %.3f}%s\n",
                notify[i].first, notify[i].first, notify[i].second,
                i + 1 == notify.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");

  if (!gate_ok) {
    std::fprintf(stderr, "FAIL: %s\n", gate_msg.c_str());
    return 1;
  }
  return 0;
}

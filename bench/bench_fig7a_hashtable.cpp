// Figure 7a: distributed hashtable inserts per second vs process count,
// for foMPI RMA, the UPC-like layer, and MPI-1 active messages.
//
// Small process counts run the real hashtable (16k-scaled-down batches of
// random-key inserts including synchronization, as in the paper); the
// scaling tail uses the calibrated throughput model (see
// simtime/sim_apps.hpp for the calibration notes).
#include "apps/hashtable.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "simtime/sim_apps.hpp"

using namespace fompi;
using namespace fompi::bench;

namespace {
constexpr int kPerRank = 512;

double run_backend(int p, apps::HtBackend backend,
                   const fabric::FabricOptions& opts) {
  return measure(p, opts, 3, [&](fabric::RankCtx& ctx) {
           apps::DistHashtable table(ctx, backend, 4096, 8192);
           Rng rng(99 + static_cast<std::uint64_t>(ctx.rank()));
           std::vector<std::uint64_t> keys;
           for (int i = 0; i < kPerRank; ++i) keys.push_back(rng.next() | 1);
           ctx.barrier();
           Timer t;
           table.batch_insert(ctx, keys);
           const double us = t.elapsed_us();
           table.destroy(ctx);
           return us;
         }).median_us;
}

}  // namespace

int main() {
  std::printf("Figure 7a: hashtable inserts per second (%d inserts/rank "
              "incl. synchronization)\n\n", kPerRank);

  header("thread-rank execution [million inserts/s]");
  std::printf("%-12s%16s%16s%16s%16s\n", "p", "FOMPI MPI-3.0",
              "FOMPI-fiber", "UPC-like", "MPI-1 AM");
  for (int p : {2, 4, 8}) {
    const auto opts = intranode_model();  // a single "node", like the
                                          // paper's leftmost points
    const double total = static_cast<double>(p) * kPerRank;
    const double rma_us = run_backend(p, apps::HtBackend::rma, opts);
    const double fiber_us =
        run_backend(p, apps::HtBackend::rma_fiber, opts);
    const double rma = total / rma_us;
    const double fiber = total / fiber_us;
    const double pgas = total / run_backend(p, apps::HtBackend::pgas, opts);
    const double p2p = total / run_backend(p, apps::HtBackend::p2p, opts);
    std::printf("%-12d%16.2f%16.2f%16.2f%16.2f\n", p, rma, fiber, pgas, p2p);
    std::printf("%-12s blocking(old)->fiber(new) improvement: %.1f%%\n", "",
                100.0 * (rma_us - fiber_us) / rma_us);
  }

  header("throughput model to 32k processes [billion inserts/s]");
  std::printf("%-12s%16s%16s%16s\n", "p", "FOMPI MPI-3.0", "UPC-like",
              "MPI-1 AM");
  for (int p = 2; p <= 32768; p *= 4) {
    const auto s = sim::simulate_hashtable(p);
    std::printf("%-12d%16.3f%16.3f%16.3f\n", p, s.fompi_ginserts,
                s.upc_ginserts, s.mpi1_ginserts);
  }
  std::printf("\nExpected shape: foMPI and UPC close together and scaling "
              "linearly;\nMPI-1 competitive intra-node, then capped by "
              "handler service + O(p) termination\n(the paper: a single "
              "node's insert rate is unreachable for MPI-1 even at 32k "
              "cores).\n");
  return 0;
}

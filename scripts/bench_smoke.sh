#!/usr/bin/env sh
# Smoke-check the benchmark pipeline.
#
#   scripts/bench_smoke.sh          build Release, run bench_fastpath,
#                                   bench_datatype, bench_throughput,
#                                   bench_collectives, bench_overlap,
#                                   bench_kv and two figure benches; the
#                                   JSON outputs land in
#                                   BENCH_fastpath.json / BENCH_datatype.json /
#                                   BENCH_throughput.json /
#                                   BENCH_collectives.json /
#                                   BENCH_overlap.json / BENCH_kv.json
#                                   at the repo root, bench_fig6b_fence emits
#                                   a Perfetto timeline
#                                   (BENCH_fig6b_fence.trace.json), and
#                                   scripts/bench_summary.py aggregates
#                                   everything into BENCH_summary.json
#   scripts/bench_smoke.sh --tsan   additionally build with
#                                   -DFOMPI_SANITIZE=thread and run the
#                                   concurrency-heavy tests (test_rdma,
#                                   test_lock, test_datatype, test_comm,
#                                   test_accumulate, test_trace, test_batch,
#                                   test_collectives, test_progress,
#                                   test_kv) under ThreadSanitizer
#
# bench_fastpath measures software-only issue overhead (Injection::none);
# its numbers are NOT comparable to the figure benches, which run under the
# injected Gemini cost model (see CLAUDE.md).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

./build/bench/bench_fastpath | tee BENCH_fastpath.json
./build/bench/bench_datatype | tee BENCH_datatype.json
./build/bench/bench_throughput | tee BENCH_throughput.json
./build/bench/bench_collectives | tee BENCH_collectives.json
./build/bench/bench_overlap | tee BENCH_overlap.json
./build/bench/bench_kv | tee BENCH_kv.json
./build/bench/bench_fig4_latency
./build/bench/bench_fig6b_fence

python3 scripts/bench_summary.py .

if [ "${1:-}" = "--tsan" ]; then
  cmake -B build-tsan -G Ninja -DFOMPI_SANITIZE=thread
  cmake --build build-tsan --target \
    test_rdma test_lock test_datatype test_comm test_accumulate test_trace \
    test_batch test_collectives test_progress test_kv
  ./build-tsan/tests/test_rdma
  ./build-tsan/tests/test_lock
  ./build-tsan/tests/test_datatype
  ./build-tsan/tests/test_comm
  ./build-tsan/tests/test_accumulate
  ./build-tsan/tests/test_trace
  ./build-tsan/tests/test_batch
  ./build-tsan/tests/test_collectives
  ./build-tsan/tests/test_progress
  ./build-tsan/tests/test_kv
fi

echo "bench smoke OK"

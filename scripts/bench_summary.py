#!/usr/bin/env python3
"""Aggregate BENCH_*.json artifacts into one BENCH_summary.json.

Walks every BENCH_*.json in the given directory (default: repo root),
flattens each bench's "cases" arrays — including nested sections like
bench_datatype's "software"/"modeled" — into a single map of

    "<bench>/<section>/<case>" -> headline metric (ns_per_op, ns_per_elem,
    or — for rate benches like bench_throughput — mops_per_s, or — for
    bench_collectives — us_per_op)

and writes BENCH_summary.json next to the inputs. Fault-injection counters
(fault_injected / op_retried / op_failed) that a case reports are exported
alongside its headline metric as "<case>/<counter>", so a chaos or
armed-plan bench run leaves its retry traffic in the summary. Latency
quantiles (any "*_p50_us" / "*_p99_us" key, e.g. bench_kv's SLO,
failover and self-healing recovery rows) are exported the same way — a named row carrying only
quantiles still lands in the summary. Perfetto
trace artifacts (*.trace.json) and a stale summary itself are skipped.
Exits non-zero if no bench artifacts were found or one fails to parse, so
CI catches a silently broken emission pipeline.
"""
import json
import pathlib
import sys

HEADLINE_KEYS = ("ns_per_op", "ns_per_elem", "mops_per_s", "us_per_op",
                 "us_per_put", "recovery_drain_us")
FAULT_KEYS = ("fault_injected", "op_retried", "op_failed")
QUANTILE_SUFFIXES = ("_p50_us", "_p99_us")
# Name-less case rows (e.g. bench_throughput's stripe table) are identified
# by their sweep parameter instead; synthesize "ch4"-style names from it.
ID_KEYS = (("channels", "ch"), ("fibers", "f"), ("p", "p"))


def case_name(node):
    if "name" in node:
        return node["name"]
    for key, abbrev in ID_KEYS:
        if key in node:
            return f"{abbrev}{node[key]}"
    return None


def flatten(prefix, node, out):
    """Collects name -> headline metric from any nesting of dicts/lists."""
    if isinstance(node, dict):
        name = case_name(node)
        quantiles = sorted(
            k for k in node if k.endswith(QUANTILE_SUFFIXES)
        )
        if name is not None and (
            any(k in node for k in HEADLINE_KEYS) or quantiles
        ):
            for key in HEADLINE_KEYS:
                if key in node:
                    out[f"{prefix}/{name}"] = node[key]
                    break
            for key in quantiles:
                out[f"{prefix}/{name}/{key}"] = node[key]
            for key in FAULT_KEYS:
                if key in node:
                    out[f"{prefix}/{name}/{key}"] = node[key]
            return
        for key, child in node.items():
            if key == "cases":
                flatten(prefix, child, out)  # don't spell out "cases"
            elif isinstance(child, (dict, list)):
                flatten(f"{prefix}/{key}", child, out)
    elif isinstance(node, list):
        for child in node:
            flatten(prefix, child, out)


def main(argv):
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    summary = {}
    inputs = []
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json" or path.name.endswith(
            ".trace.json"
        ):
            continue
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
            return 1
        bench = doc.get("bench", path.stem.removeprefix("BENCH_"))
        flatten(bench, doc, summary)
        if "trace_overhead" in doc:
            ovh = doc["trace_overhead"]
            for key in ("untraced_ns_per_op", "traced_ns_per_op",
                        "untraced_ns_per_elem", "traced_ns_per_elem"):
                if key in ovh:
                    summary[f"{bench}/trace_overhead/{key}"] = ovh[key]
        inputs.append(path.name)
    if not inputs:
        print(f"error: no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    out = root / "BENCH_summary.json"
    out.write_text(
        json.dumps({"inputs": inputs, "headline_ns": summary}, indent=2,
                   sort_keys=True) + "\n"
    )
    print(f"{out}: {len(summary)} headline metrics from {len(inputs)} benches")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

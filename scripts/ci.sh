#!/usr/bin/env sh
# Tier-1 CI gate: everything a change must pass before merging.
#
#   1. Release build + full ctest suite (the tier-1 gate from ROADMAP.md)
#   2. Seeded chaos gate: the fault-injection suite (hashtable + DSDE +
#      KV-service workloads under a survivable fault plan, seeds 11/22/33
#      baked into tests/test_fault.cpp and tests/test_kv.cpp) repeated to
#      confirm the counters are a pure function of the seed, plus the
#      recovery-chaos suite (staggered double kills + heal-until-settled
#      under the same seeds) repeated to confirm the self-healing
#      invariants hold across thread schedules
#   3. ThreadSanitizer build + the concurrency-heavy tests (datatype
#      flatten-cache sharing, RDMA issue paths, locks, comm, accumulate,
#      flight-recorder tracing, doorbell batching/striping, fault
#      injection/recovery incl. Delivery::deferred under a fault plan,
#      the suspended-fiber-fleet chaos kill, and the kills-vector
#      staggered double-death path, RMA-native collectives incl.
#      forced trees and persistent plans, the fiber progress engine +
#      notify plane, and the KV service's seqlock reads under a
#      concurrent writer plus its kill/failover path and the full
#      self-healing recovery/scrub/reconfiguration suite)
#   4. Benchmark smoke run (bench_fastpath + bench_datatype +
#      bench_throughput + bench_collectives + bench_overlap + bench_kv JSON
#      emission and two figure benches; the throughput bench self-gates
#      >=2x batched speedup and monotone striping, the collectives bench
#      self-gates log-p DES shapes, the overlap bench self-gates >=4x
#      64-fiber AMO pipelining, the kv bench self-gates >=2x cache leverage,
#      a monotone failover SLO with typed peer_dead, and a full healing
#      pass — promotion + re-replication with post-recovery p99 within
#      1.5x of healthy — exiting non-zero on violation)
#   5. Trace-artifact gate: the Perfetto timeline bench_fig6b_fence emitted
#      must be valid JSON and must have dropped zero events
#   6. Fault fast-path gate: arming an (idle) fault plan must not tax the
#      measured put8 issue path, and no fault may fire in its timed loop
#   7. Batch fast-path gate: an enabled-but-idle throughput config
#      (channels + adaptive thresholds, no open batch) must not tax the
#      blocking put8 issue path and must ring no coalesced doorbells
#   8. Scheduler fast-path gate: a constructed-but-idle fiber scheduler
#      must not tax the blocking put8 issue path (mirror of gate 7)
#
# Runs from any directory; everything lands in build/ and build-tsan/.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

# Chaos determinism: each Chaos test runs its workload twice per seed and
# asserts identical injected/retried/failed counters; repeating the whole
# suite catches any schedule-order dependence the single run misses.
./build/tests/test_fault --gtest_filter='Chaos.*' --gtest_repeat=3 \
  --gtest_brief=1
./build/tests/test_kv --gtest_filter='KvChaos.*' --gtest_repeat=3 \
  --gtest_brief=1

# Recovery chaos: staggered double kills under seeds 11/22/33 with a
# closed-loop fleet running throughout; every run must settle (replica
# promotion + re-replication or typed data_loss) with the op-retirement
# identity intact. Repeated because the kill/heal interleaving is
# thread-schedule dependent — the invariants must hold under all of them.
./build/tests/test_kv --gtest_filter='KvRecoveryChaos.*' --gtest_repeat=3 \
  --gtest_brief=1

cmake -B build-tsan -G Ninja -DFOMPI_SANITIZE=thread
cmake --build build-tsan --target \
  test_rdma test_lock test_datatype test_comm test_accumulate test_trace \
  test_batch test_fault test_collectives test_progress test_kv
./build-tsan/tests/test_rdma
./build-tsan/tests/test_lock
./build-tsan/tests/test_datatype
./build-tsan/tests/test_comm
./build-tsan/tests/test_accumulate
./build-tsan/tests/test_trace
./build-tsan/tests/test_batch
./build-tsan/tests/test_fault
./build-tsan/tests/test_collectives
./build-tsan/tests/test_progress
./build-tsan/tests/test_kv

scripts/bench_smoke.sh

# The smoke run must have produced a loadable Perfetto timeline with a ring
# large enough for the run: structural validity via json.tool, zero drops
# via the exporter's otherData.dropped field.
python3 -m json.tool BENCH_fig6b_fence.trace.json > /dev/null
python3 - <<'EOF'
import json, sys
dropped = json.load(open("BENCH_fig6b_fence.trace.json"))["otherData"]["dropped"]
if dropped > 0:
    sys.exit(f"BENCH_fig6b_fence.trace.json: {dropped} events dropped "
             "(flight-recorder ring too small for the smoke run)")
EOF

# Fault fast-path gate. The armed-idle case runs with a fault plan whose
# every scheduled site lands inside the warmup, so its timed loop must (a)
# record zero fault counters and (b) cost about the same as the plain
# blocking put8 (generous 1.5x bound: both numbers are ~17-19 ns and share
# the scheduler noise of the one-core host).
python3 - <<'EOF'
import json, sys
cases = {c["name"]: c for c in json.load(open("BENCH_fastpath.json"))["cases"]}
base = cases["put8_blocking_immediate"]["ns_per_op"]
armed = cases["put8_blocking_fault_armed_idle"]
for counter in ("fault_injected", "op_retried", "op_failed"):
    if armed.get(counter, 0) != 0:
        sys.exit(f"armed-idle bench: {counter}={armed[counter]} in the "
                 "timed loop (fault sites leaked past the warmup)")
if armed["ns_per_op"] > 1.5 * base:
    sys.exit(f"armed-idle put8 {armed['ns_per_op']:.1f} ns/op vs baseline "
             f"{base:.1f} ns/op: arming a fault plan taxes the fast path")
EOF

# Batch fast-path gate. Enabling throughput mode (4 channels + adaptive
# thresholds) with no open batch must leave the blocking put8 issue path
# within 1.25x of the plain baseline and ring zero coalesced doorbells.
# Both samples are ~17 ns on this one-core host and single runs can be
# scheduler-noise outliers of 3x or more, so on a miss we regenerate the
# whole JSON and re-check (up to 3 attempts) before failing.
batch_gate() {
  python3 - <<'EOF'
import json, sys
cases = {c["name"]: c for c in json.load(open("BENCH_fastpath.json"))["cases"]}
base = cases["put8_blocking_immediate"]["ns_per_op"]
idle = cases["put8_blocking_batch_idle"]
for counter in ("doorbell_ring", "batched_op"):
    if idle.get(counter, 0) != 0:
        sys.exit(f"batch-idle bench: {counter}={idle[counter]} in the timed "
                 "loop (throughput mode batched a blocking fast-path put)")
if idle["ns_per_op"] > 1.25 * base:
    sys.exit(f"batch-idle put8 {idle['ns_per_op']:.1f} ns/op vs baseline "
             f"{base:.1f} ns/op: idle throughput mode taxes the fast path")
EOF
}
attempt=1
until batch_gate; do
  if [ "$attempt" -ge 3 ]; then
    echo "batch fast-path gate failed on $attempt attempts" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "batch fast-path gate: rerunning bench_fastpath (attempt $attempt)" >&2
  ./build/bench/bench_fastpath > BENCH_fastpath.json
done

# Scheduler fast-path gate. A constructed-but-idle fiber Scheduler (no
# fibers adopted) must leave the blocking put8 issue path within 1.25x of
# the plain baseline. Same noise handling as the batch gate: regenerate
# and re-check up to 3 attempts before failing.
sched_gate() {
  python3 - <<'EOF'
import json, sys
cases = {c["name"]: c for c in json.load(open("BENCH_fastpath.json"))["cases"]}
base = cases["put8_blocking_immediate"]["ns_per_op"]
idle = cases["put8_blocking_sched_idle"]
if idle["ns_per_op"] > 1.25 * base:
    sys.exit(f"sched-idle put8 {idle['ns_per_op']:.1f} ns/op vs baseline "
             f"{base:.1f} ns/op: an idle fiber scheduler taxes the fast path")
EOF
}
attempt=1
until sched_gate; do
  if [ "$attempt" -ge 3 ]; then
    echo "scheduler fast-path gate failed on $attempt attempts" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
  echo "scheduler fast-path gate: rerunning bench_fastpath (attempt $attempt)" >&2
  ./build/bench/bench_fastpath > BENCH_fastpath.json
done

echo "ci OK"

#!/usr/bin/env sh
# Tier-1 CI gate: everything a change must pass before merging.
#
#   1. Release build + full ctest suite (the tier-1 gate from ROADMAP.md)
#   2. ThreadSanitizer build + the concurrency-heavy tests (datatype
#      flatten-cache sharing, RDMA issue paths, locks, comm, accumulate)
#   3. Benchmark smoke run (bench_fastpath + bench_datatype JSON emission
#      and one figure bench)
#
# Runs from any directory; everything lands in build/ and build-tsan/.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

cmake -B build-tsan -G Ninja -DFOMPI_SANITIZE=thread
cmake --build build-tsan --target \
  test_rdma test_lock test_datatype test_comm test_accumulate
./build-tsan/tests/test_rdma
./build-tsan/tests/test_lock
./build-tsan/tests/test_datatype
./build-tsan/tests/test_comm
./build-tsan/tests/test_accumulate

scripts/bench_smoke.sh

echo "ci OK"

#!/usr/bin/env sh
# Tier-1 CI gate: everything a change must pass before merging.
#
#   1. Release build + full ctest suite (the tier-1 gate from ROADMAP.md)
#   2. ThreadSanitizer build + the concurrency-heavy tests (datatype
#      flatten-cache sharing, RDMA issue paths, locks, comm, accumulate,
#      flight-recorder tracing)
#   3. Benchmark smoke run (bench_fastpath + bench_datatype JSON emission
#      and two figure benches)
#   4. Trace-artifact gate: the Perfetto timeline bench_fig6b_fence emitted
#      must be valid JSON and must have dropped zero events
#
# Runs from any directory; everything lands in build/ and build-tsan/.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

cmake -B build-tsan -G Ninja -DFOMPI_SANITIZE=thread
cmake --build build-tsan --target \
  test_rdma test_lock test_datatype test_comm test_accumulate test_trace
./build-tsan/tests/test_rdma
./build-tsan/tests/test_lock
./build-tsan/tests/test_datatype
./build-tsan/tests/test_comm
./build-tsan/tests/test_accumulate
./build-tsan/tests/test_trace

scripts/bench_smoke.sh

# The smoke run must have produced a loadable Perfetto timeline with a ring
# large enough for the run: structural validity via json.tool, zero drops
# via the exporter's otherData.dropped field.
python3 -m json.tool BENCH_fig6b_fence.trace.json > /dev/null
python3 - <<'EOF'
import json, sys
dropped = json.load(open("BENCH_fig6b_fence.trace.json"))["otherData"]["dropped"]
if dropped > 0:
    sys.exit(f"BENCH_fig6b_fence.trace.json: {dropped} events dropped "
             "(flight-recorder ring too small for the smoke run)")
EOF

echo "ci OK"

#include "fabric/collectives.hpp"

#include <atomic>
#include <bit>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "trace/trace.hpp"

namespace fompi::fabric {

namespace {
constexpr std::size_t kFlagBytes = 8;
}

Collectives::Collectives(rdma::Domain& domain,
                         std::function<void()> yield_check)
    : domain_(domain),
      yield_check_(std::move(yield_check)),
      state_(static_cast<std::size_t>(domain.nranks())),
      published_(static_cast<std::size_t>(domain.nranks())) {
  const int p = domain_.nranks();
  log2p_ = std::bit_width(static_cast<unsigned>(p - 1));  // ceil(log2 p)
  FOMPI_REQUIRE(log2p_ <= kMaxRounds, ErrClass::arg, "too many ranks");
  flag_mem_.reserve(static_cast<std::size_t>(p));
  flag_desc_.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    flag_mem_.emplace_back(2 * kMaxRounds * kFlagBytes);
    flag_desc_.push_back(domain_.registry().register_region(
        r, flag_mem_.back().data(), flag_mem_.back().size()));
  }
}

int Collectives::rounds_() const noexcept { return log2p_; }

std::uint64_t Collectives::load_flag(int rank, bool ib, int round) const {
  const std::size_t off =
      (static_cast<std::size_t>(ib ? kMaxRounds : 0) +
       static_cast<std::size_t>(round)) *
      kFlagBytes;
  const auto* word = reinterpret_cast<const std::uint64_t*>(
      flag_mem_[static_cast<std::size_t>(rank)].data() + off);
  return std::atomic_ref<const std::uint64_t>(*word).load(
      std::memory_order_acquire);
}

void Collectives::barrier(int rank) {
  const int p = nranks();
  if (p == 1) return;
  const trace::Span tsp(trace::EvClass::barrier);
  RankState& st = state_[static_cast<std::size_t>(rank)];
  const std::uint64_t gen = ++st.barrier_gen;
  rdma::Nic& nic = domain_.nic(rank);
  for (int r = 0; r < rounds_(); ++r) {
    const int partner = static_cast<int>(
        (static_cast<std::uint64_t>(rank) + (1ull << r)) %
        static_cast<std::uint64_t>(p));
    const std::size_t off = static_cast<std::size_t>(r) * kFlagBytes;
    nic.put(partner, flag_desc_[static_cast<std::size_t>(partner)], off, &gen,
            kFlagBytes);
    // Round r's flag is written by rank - 2^r (mod p). If that writer died
    // (fault-plan kill under errors_return) its flag never arrives; raise a
    // typed peer_dead instead of spinning forever. death_epoch() keeps the
    // common no-deaths case to one load. The flag must be re-checked AFTER
    // observing the death: on a one-core host the writer can deliver its
    // flag, run ahead, and die all inside our yield window, and its flag
    // stores precede the death mark — so only a flag still missing from a
    // dead writer can never arrive.
    const int writer = static_cast<int>(
        (static_cast<std::uint64_t>(rank) + static_cast<std::uint64_t>(p) -
         ((1ull << r) % static_cast<std::uint64_t>(p))) %
        static_cast<std::uint64_t>(p));
    Backoff backoff;
    while (load_flag(rank, /*ib=*/false, r) < gen) {
      yield_check_();
      if (domain_.death_epoch() != 0 && !domain_.alive(writer) &&
          load_flag(rank, /*ib=*/false, r) < gen) {
        raise(ErrClass::peer_dead, "barrier: peer rank died");
      }
      backoff.pause();
    }
  }
}

void Collectives::ibarrier_begin(int rank) {
  RankState& st = state_[static_cast<std::size_t>(rank)];
  FOMPI_REQUIRE(!st.ib_active, ErrClass::rma_sync,
                "only one ibarrier may be in flight per rank");
  st.ib_active = true;
  ++st.ib_gen;
  st.ib_round = 0;
  st.ib_notified = false;
}

bool Collectives::ibarrier_test(int rank) {
  const int p = nranks();
  RankState& st = state_[static_cast<std::size_t>(rank)];
  FOMPI_REQUIRE(st.ib_active, ErrClass::rma_sync,
                "ibarrier_test without ibarrier_begin");
  rdma::Nic& nic = domain_.nic(rank);
  while (st.ib_round < rounds_() && p > 1) {
    const int r = st.ib_round;
    if (!st.ib_notified) {
      const int partner = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + (1ull << r)) %
          static_cast<std::uint64_t>(p));
      const std::size_t off =
          (static_cast<std::size_t>(kMaxRounds) + static_cast<std::size_t>(r)) *
          kFlagBytes;
      nic.put(partner, flag_desc_[static_cast<std::size_t>(partner)], off,
              &st.ib_gen, kFlagBytes);
      st.ib_notified = true;
    }
    if (load_flag(rank, /*ib=*/true, r) < st.ib_gen) return false;
    ++st.ib_round;
    st.ib_notified = false;
  }
  st.ib_active = false;
  return true;
}

void Collectives::publish(int rank, const void* p) {
  published_[static_cast<std::size_t>(rank)].store(p,
                                                   std::memory_order_release);
}

const void* Collectives::peer_ptr(int r) const {
  return published_[static_cast<std::size_t>(r)].load(
      std::memory_order_acquire);
}

}  // namespace fompi::fabric

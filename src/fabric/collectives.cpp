#include "fabric/collectives.hpp"

#include <atomic>
#include <bit>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "trace/trace.hpp"

namespace fompi::fabric {

namespace {
/// floor(log2 n) for n >= 1.
int floor_log2(int n) noexcept {
  return std::bit_width(static_cast<unsigned>(n)) - 1;
}
}  // namespace

Collectives::Collectives(rdma::Domain& domain,
                         std::function<void()> yield_check, CollConfig cfg)
    : domain_(domain),
      yield_check_(std::move(yield_check)),
      cfg_(cfg),
      state_(static_cast<std::size_t>(domain.nranks())),
      published_(static_cast<std::size_t>(domain.nranks())) {
  const int p = domain_.nranks();
  log2p_ = std::bit_width(static_cast<unsigned>(p - 1));  // ceil(log2 p)
  FOMPI_REQUIRE(log2p_ <= kMaxRounds, ErrClass::arg, "too many ranks");

  const int rpn_cfg = domain_.config().ranks_per_node;
  single_node_ = rpn_cfg <= 0 || p <= rpn_cfg;
  nnodes_ = p;
  if (!single_node_ && rpn_cfg >= 2 && rpn_cfg <= kMaxIntra &&
      p % rpn_cfg == 0 && p / rpn_cfg >= 2) {
    hier_ = true;
    rpn_ = rpn_cfg;
    nnodes_ = p / rpn_cfg;
  }

  flag_mem_.reserve(static_cast<std::size_t>(p));
  flag_desc_.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    flag_mem_.emplace_back((2 * kMaxRounds + kDataSlots + 1) * kFlagBytes);
    flag_desc_.push_back(domain_.registry().register_region(
        r, flag_mem_.back().data(), flag_mem_.back().size()));
  }
  // Landing regions are registered eagerly (at their minimum size) so the
  // registry's live-region count is stable from construction onward; growth
  // in ensure_landing swaps the registration, never adds one.
  land_mem_.resize(static_cast<std::size_t>(p));
  land_desc_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) ensure_landing(r, 1);
  scratch_.resize(static_cast<std::size_t>(p));
  frag_scratch_.resize(static_cast<std::size_t>(p));
  for (auto& f : frag_scratch_) f.reserve(static_cast<std::size_t>(p));
  put_displ_.resize(static_cast<std::size_t>(p));
  cx_mem_.reserve(static_cast<std::size_t>(p));
  cx_desc_.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    cx_mem_.emplace_back((4 * static_cast<std::size_t>(p) + 2) * kFlagBytes);
    cx_desc_.push_back(domain_.registry().register_region(
        r, cx_mem_.back().data(), cx_mem_.back().size()));
  }
}

Collectives::~Collectives() {
  for (const auto& d : cx_desc_) {
    if (d.rkey != 0) domain_.registry().deregister(d.rkey);
  }
  for (const auto& d : land_desc_) {
    if (d.rkey != 0) domain_.registry().deregister(d.rkey);
  }
  for (const auto& d : flag_desc_) {
    if (d.rkey != 0) domain_.registry().deregister(d.rkey);
  }
}

int Collectives::rounds_() const noexcept { return log2p_; }

std::uint64_t Collectives::load_flag(int rank, bool ib, int round) const {
  return load_word(rank, (ib ? kMaxRounds : 0) + round);
}

std::uint64_t Collectives::load_word(int rank, int word) const {
  const std::size_t off = static_cast<std::size_t>(word) * kFlagBytes;
  const auto* w = reinterpret_cast<const std::uint64_t*>(
      flag_mem_[static_cast<std::size_t>(rank)].data() + off);
  return std::atomic_ref<const std::uint64_t>(*w).load(
      std::memory_order_acquire);
}

const std::uint64_t* Collectives::ctr_word_ptr(int rank) const {
  return reinterpret_cast<const std::uint64_t*>(
      flag_mem_[static_cast<std::size_t>(rank)].data() +
      static_cast<std::size_t>(kCtrWord) * kFlagBytes);
}

void Collectives::barrier(int rank) {
  const int p = nranks();
  if (p == 1) return;
  const trace::Span tsp(trace::EvClass::barrier);
  RankState& st = state_[static_cast<std::size_t>(rank)];
  const std::uint64_t gen = ++st.barrier_gen;
  rdma::Nic& nic = domain_.nic(rank);
  for (int r = 0; r < rounds_(); ++r) {
    const int partner = static_cast<int>(
        (static_cast<std::uint64_t>(rank) + (1ull << r)) %
        static_cast<std::uint64_t>(p));
    const std::size_t off = static_cast<std::size_t>(r) * kFlagBytes;
    nic.put(partner, flag_desc_[static_cast<std::size_t>(partner)], off, &gen,
            kFlagBytes);
    // Round r's flag is written by rank - 2^r (mod p). If that writer died
    // (fault-plan kill under errors_return) its flag never arrives; raise a
    // typed peer_dead instead of spinning forever. death_epoch() keeps the
    // common no-deaths case to one load. The flag must be re-checked AFTER
    // observing the death: on a one-core host the writer can deliver its
    // flag, run ahead, and die all inside our yield window, and its flag
    // stores precede the death mark — so only a flag still missing from a
    // dead writer can never arrive.
    const int writer = static_cast<int>(
        (static_cast<std::uint64_t>(rank) + static_cast<std::uint64_t>(p) -
         ((1ull << r) % static_cast<std::uint64_t>(p))) %
        static_cast<std::uint64_t>(p));
    Backoff backoff;
    while (load_flag(rank, /*ib=*/false, r) < gen) {
      yield_check_();
      if (domain_.death_epoch() != 0 && !domain_.alive(writer) &&
          load_flag(rank, /*ib=*/false, r) < gen) {
        raise(ErrClass::peer_dead, "barrier: peer rank died");
      }
      backoff.pause();
    }
  }
}

void Collectives::ibarrier_begin(int rank) {
  RankState& st = state_[static_cast<std::size_t>(rank)];
  FOMPI_REQUIRE(!st.ib_active, ErrClass::rma_sync,
                "only one ibarrier may be in flight per rank");
  st.ib_active = true;
  ++st.ib_gen;
  st.ib_round = 0;
  st.ib_notified = false;
}

bool Collectives::ibarrier_test(int rank) {
  const int p = nranks();
  RankState& st = state_[static_cast<std::size_t>(rank)];
  FOMPI_REQUIRE(st.ib_active, ErrClass::rma_sync,
                "ibarrier_test without ibarrier_begin");
  rdma::Nic& nic = domain_.nic(rank);
  while (st.ib_round < rounds_() && p > 1) {
    const int r = st.ib_round;
    if (!st.ib_notified) {
      const int partner = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + (1ull << r)) %
          static_cast<std::uint64_t>(p));
      const std::size_t off =
          (static_cast<std::size_t>(kMaxRounds) + static_cast<std::size_t>(r)) *
          kFlagBytes;
      nic.put(partner, flag_desc_[static_cast<std::size_t>(partner)], off,
              &st.ib_gen, kFlagBytes);
      st.ib_notified = true;
    }
    if (load_flag(rank, /*ib=*/true, r) < st.ib_gen) return false;
    ++st.ib_round;
    st.ib_notified = false;
  }
  st.ib_active = false;
  return true;
}

void Collectives::publish(int rank, const void* p) {
  published_[static_cast<std::size_t>(rank)].store(p,
                                                   std::memory_order_release);
}

const void* Collectives::peer_ptr(int r) const {
  return published_[static_cast<std::size_t>(r)].load(
      std::memory_order_acquire);
}

// --- data-plane plumbing ----------------------------------------------------

void Collectives::put_slot(int rank, int target, int slot, std::uint64_t seq) {
  const std::size_t off =
      static_cast<std::size_t>(2 * kMaxRounds + slot) * kFlagBytes;
  domain_.nic(rank).put(target, flag_desc_[static_cast<std::size_t>(target)],
                        off, &seq, kFlagBytes);
}

void Collectives::wait_slot(int rank, int slot, std::uint64_t seq,
                            int writer) {
  const int word = 2 * kMaxRounds + slot;
  Backoff backoff;
  while (load_word(rank, word) < seq) {
    yield_check_();
    // Same dead-writer protocol as the barrier: re-check the slot AFTER
    // observing the death so a flag delivered just before the kill is
    // never mistaken for a lost one.
    if (domain_.death_epoch() != 0 && !domain_.alive(writer) &&
        load_word(rank, word) < seq) {
      raise(ErrClass::peer_dead, "collective: peer rank died");
    }
    backoff.pause();
  }
}

void Collectives::wait_counter(int rank, const std::uint64_t* word,
                               std::uint64_t target) {
  (void)rank;
  std::atomic_ref<const std::uint64_t> w(*word);
  Backoff backoff;
  while (w.load(std::memory_order_acquire) < target) {
    yield_check_();
    // Arrival counters aggregate all senders, so a missing increment
    // cannot be attributed to a specific peer. Every rank participates in
    // a collective, so ANY death means it cannot be completed reliably —
    // abort with a typed peer_dead (MPI semantics: a collective over a
    // communicator with a dead member fails).
    if (domain_.death_epoch() != 0 &&
        w.load(std::memory_order_acquire) < target) {
      raise(ErrClass::peer_dead, "collective: peer rank died");
    }
    backoff.pause();
  }
}

void Collectives::ensure_landing(int rank, std::size_t bytes) {
  auto& mem = land_mem_[static_cast<std::size_t>(rank)];
  if (mem.size() >= bytes) return;
  std::size_t ns = std::max<std::size_t>(mem.size() * 2, 4096);
  if (ns < bytes) ns = bytes;
  auto& desc = land_desc_[static_cast<std::size_t>(rank)];
  if (desc.rkey != 0) domain_.registry().deregister(desc.rkey);
  mem = AlignedBuffer(ns);
  desc = domain_.registry().register_region(rank, mem.data(), ns);
}

std::byte* Collectives::scratch_bytes(int rank, std::size_t bytes) {
  auto& mem = scratch_[static_cast<std::size_t>(rank)];
  if (mem.size() < bytes) {
    std::size_t ns = std::max<std::size_t>(mem.size() * 2, 4096);
    if (ns < bytes) ns = bytes;
    mem = AlignedBuffer(ns);
  }
  return mem.data();
}

std::uint64_t Collectives::enter_data(int rank, std::size_t landing_bytes) {
  ensure_landing(rank, std::max<std::size_t>(landing_bytes, kFlagBytes));
  const std::uint64_t seq = ++state_[static_cast<std::size_t>(rank)].data_seq;
  // The leading barrier does double duty: it publishes freshly grown
  // landing descriptors, and it orders every rank's exit from the previous
  // collective before any rank's new traffic (see the header's protocol
  // note) — no trailing barrier needed.
  barrier(rank);
  return seq;
}

bool Collectives::flat_path(std::size_t bytes) const noexcept {
  return single_node_ && cfg_.flat_cutoff > 0 && bytes <= cfg_.flat_cutoff;
}

void Collectives::charge_copies(int rank, std::size_t bytes,
                                std::size_t nblocks) {
  if (bytes == 0 || nblocks == 0) return;
  rdma::Nic& nic = domain_.nic(rank);
  const rdma::NetworkModel& m = nic.model();
  nic.charge_model_ns(static_cast<double>(nblocks) *
                      (m.intra_overhead_ns + m.intra_latency_ns(bytes)));
}

std::size_t Collectives::allreduce_cap(std::size_t nbytes) const noexcept {
  if (hier_) {
    return (static_cast<std::size_t>(rpn_) +
            static_cast<std::size_t>(floor_log2(nnodes_)) + 2) *
           nbytes;
  }
  return (static_cast<std::size_t>(floor_log2(nranks())) + 2) * nbytes;
}

// --- bcast ------------------------------------------------------------------

void Collectives::bcast_bytes(int rank, int root, void* data,
                              std::size_t nbytes) {
  const int p = nranks();
  FOMPI_REQUIRE(root >= 0 && root < p, ErrClass::rank,
                "bcast: root out of range");
  if (nbytes == 0 || p == 1) return;
  if (flat_path(nbytes)) {
    if (rank == root) publish(rank, data);
    barrier(rank);
    if (rank != root) {
      std::memcpy(data, peer_ptr(root), nbytes);
      charge_copies(rank, nbytes, 1);
    }
    barrier(rank);
    return;
  }
  const std::uint64_t seq = enter_data(rank, nbytes);
  if (hier_) {
    bcast_hier(rank, root, data, nbytes, seq);
  } else {
    bcast_tree(rank, root, data, nbytes, seq);
  }
}

void Collectives::bcast_tree(int rank, int root, void* data,
                             std::size_t nbytes, std::uint64_t seq) {
  const int p = nranks();
  const int rel = (rank - root + p) % p;
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  // MPICH binomial: receive from rel with the lowest set bit cleared, then
  // fan out to rel + m for every mask m below the received bit.
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int parent = ((rel & ~mask) + root) % p;
      wait_slot(rank, std::countr_zero(static_cast<unsigned>(mask)), seq,
                parent);
      std::memcpy(data, land, nbytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  // Fan-out as two doorbell-batched groups: all data puts, gsync (global
  // visibility — mandatory under deferred delivery), then all notify flags.
  nic.batch_begin();
  for (int m = mask; m > 0; m >>= 1) {
    if (rel + m >= p) continue;
    const int child = (rel + m + root) % p;
    nic.put_nbi(child, land_desc_[static_cast<std::size_t>(child)], 0, data,
                nbytes);
  }
  nic.gsync();
  nic.batch_begin();
  for (int m = mask; m > 0; m >>= 1) {
    if (rel + m >= p) continue;
    const int child = (rel + m + root) % p;
    const std::size_t off =
        static_cast<std::size_t>(
            2 * kMaxRounds + std::countr_zero(static_cast<unsigned>(m))) *
        kFlagBytes;
    nic.put_nbi(child, flag_desc_[static_cast<std::size_t>(child)], off, &seq,
                kFlagBytes);
  }
  nic.gsync();
}

void Collectives::bcast_hier(int rank, int root, void* data,
                             std::size_t nbytes, std::uint64_t seq) {
  const int node = rank / rpn_;
  const int root_node = root / rpn_;
  // The root represents its own node; every other node is represented by
  // its first rank.
  const int rep = node == root_node ? root : node * rpn_;
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();

  if (rank != rep) {
    wait_slot(rank, kSlotIntraRel, seq, rep);
    std::memcpy(data, land, nbytes);
    return;
  }
  const int vnode = (node - root_node + nnodes_) % nnodes_;
  int mask = 1;
  while (mask < nnodes_) {
    if (vnode & mask) {
      const int pnode = ((vnode & ~mask) + root_node) % nnodes_;
      const int parent = pnode == root_node ? root : pnode * rpn_;
      wait_slot(rank, std::countr_zero(static_cast<unsigned>(mask)), seq,
                parent);
      std::memcpy(data, land, nbytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  // Inter-node children and intra-node members share the two batched
  // doorbell groups (data, gsync, flags, gsync).
  nic.batch_begin();
  for (int m = mask; m > 0; m >>= 1) {
    if (vnode + m >= nnodes_) continue;
    // vnode + m != 0 (mod nnodes), so the child is never the root's node
    // and its representative is its first rank.
    const int child = ((vnode + m + root_node) % nnodes_) * rpn_;
    nic.put_nbi(child, land_desc_[static_cast<std::size_t>(child)], 0, data,
                nbytes);
  }
  for (int j = node * rpn_; j < (node + 1) * rpn_; ++j) {
    if (j == rank) continue;
    nic.put_nbi(j, land_desc_[static_cast<std::size_t>(j)], 0, data, nbytes);
  }
  nic.gsync();
  nic.batch_begin();
  for (int m = mask; m > 0; m >>= 1) {
    if (vnode + m >= nnodes_) continue;
    const int child = ((vnode + m + root_node) % nnodes_) * rpn_;
    const std::size_t off =
        static_cast<std::size_t>(
            2 * kMaxRounds + std::countr_zero(static_cast<unsigned>(m))) *
        kFlagBytes;
    nic.put_nbi(child, flag_desc_[static_cast<std::size_t>(child)], off, &seq,
                kFlagBytes);
  }
  const std::size_t rel_off =
      static_cast<std::size_t>(2 * kMaxRounds + kSlotIntraRel) * kFlagBytes;
  for (int j = node * rpn_; j < (node + 1) * rpn_; ++j) {
    if (j == rank) continue;
    nic.put_nbi(j, flag_desc_[static_cast<std::size_t>(j)], rel_off, &seq,
                kFlagBytes);
  }
  nic.gsync();
}

// --- reduce -----------------------------------------------------------------

void Collectives::reduce_bytes(int rank, int root, const void* src, void* dst,
                               std::size_t nelems, std::size_t esize,
                               Combiner cb) {
  const int p = nranks();
  FOMPI_REQUIRE(root >= 0 && root < p, ErrClass::rank,
                "reduce: root out of range");
  const std::size_t nbytes = nelems * esize;
  if (nbytes == 0) return;
  if (p == 1) {
    if (rank == root) std::memcpy(dst, src, nbytes);
    return;
  }
  if (flat_path(nbytes)) {
    publish(rank, src);
    barrier(rank);
    if (rank == root) {
      std::memcpy(dst, peer_ptr(0), nbytes);
      for (int r = 1; r < p; ++r) {
        cb.fn(cb.ctx, dst, peer_ptr(r), nelems, /*acc_left=*/true);
      }
      charge_copies(rank, nbytes, static_cast<std::size_t>(p));
    }
    barrier(rank);
    return;
  }
  const std::uint64_t seq =
      enter_data(rank, static_cast<std::size_t>(rounds_()) * nbytes);
  reduce_tree(rank, root, src, dst, nelems, esize, cb, seq);
}

void Collectives::reduce_tree(int rank, int root, const void* src, void* dst,
                              std::size_t nelems, std::size_t esize,
                              Combiner cb, std::uint64_t seq) {
  const int p = nranks();
  const std::size_t nbytes = nelems * esize;
  const int rel = (rank - root + p) % p;
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  std::byte* acc = rank == root ? static_cast<std::byte*>(dst)
                                : scratch_bytes(rank, nbytes);
  std::memcpy(acc, src, nbytes);
  // Binomial gather-fold: round r either absorbs the child rel + 2^r (its
  // acc covers [rel + 2^r, rel + 2^(r+1)), so acc stays the left operand)
  // or ships acc to the parent and is done. Per-round landing offsets keep
  // concurrent child payloads apart.
  int round = 0;
  for (int m = 1; m < p; m <<= 1, ++round) {
    if (rel & m) {
      const int parent = ((rel & ~m) + root) % p;
      nic.put(parent, land_desc_[static_cast<std::size_t>(parent)],
              static_cast<std::size_t>(round) * nbytes, acc, nbytes);
      put_slot(rank, parent, round, seq);
      break;
    }
    if (rel + m < p) {
      const int child = (rel + m + root) % p;
      wait_slot(rank, round, seq, child);
      cb.fn(cb.ctx, acc, land + static_cast<std::size_t>(round) * nbytes,
            nelems, /*acc_left=*/true);
    }
  }
}

// --- allgather --------------------------------------------------------------

void Collectives::allgather_bytes(int rank, const void* src,
                                  std::size_t block_bytes, void* dst) {
  const int p = nranks();
  if (block_bytes == 0) return;
  if (p == 1) {
    std::memcpy(dst, src, block_bytes);
    return;
  }
  if (flat_path(block_bytes)) {
    publish(rank, src);
    barrier(rank);
    std::byte* d = static_cast<std::byte*>(dst);
    for (int r = 0; r < p; ++r) {
      std::memcpy(d + static_cast<std::size_t>(r) * block_bytes, peer_ptr(r),
                  block_bytes);
    }
    charge_copies(rank, block_bytes, static_cast<std::size_t>(p - 1));
    barrier(rank);
    return;
  }
  const std::size_t cap =
      hier_ ? static_cast<std::size_t>(rpn_ + p) * block_bytes
            : static_cast<std::size_t>(p) * block_bytes;
  const std::uint64_t seq = enter_data(rank, cap);
  if (hier_) {
    allgather_hier(rank, src, block_bytes, dst, seq);
  } else {
    allgather_bruck(rank, src, block_bytes, dst, seq);
  }
}

void Collectives::allgather_bruck(int rank, const void* src, std::size_t block,
                                  void* dst, std::uint64_t seq) {
  const int p = nranks();
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  // Bruck: the landing doubles as the working buffer. After the round with
  // count c, land[k] holds the block of rank (rank + k) % p for k < 2c.
  // The blocking put reads land[0, send) while the peer writes my
  // land[c*block, ...) — disjoint ranges, so in-place is race-free.
  std::memcpy(land, src, block);
  int round = 0;
  for (int cnt = 1; cnt < p; cnt <<= 1, ++round) {
    const std::size_t send =
        static_cast<std::size_t>(std::min(cnt, p - cnt)) * block;
    const int to = (rank - cnt + p) % p;
    const int from = (rank + cnt) % p;
    nic.put(to, land_desc_[static_cast<std::size_t>(to)],
            static_cast<std::size_t>(cnt) * block, land, send);
    put_slot(rank, to, round, seq);
    wait_slot(rank, round, seq, from);
  }
  std::byte* d = static_cast<std::byte*>(dst);
  for (int k = 0; k < p; ++k) {
    std::memcpy(d + static_cast<std::size_t>((rank + k) % p) * block,
                land + static_cast<std::size_t>(k) * block, block);
  }
}

void Collectives::allgather_hier(int rank, const void* src, std::size_t block,
                                 void* dst, std::uint64_t seq) {
  const int p = nranks();
  const int node = rank / rpn_;
  const int idx = rank % rpn_;
  const int leader = node * rpn_;
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  std::byte* d = static_cast<std::byte*>(dst);

  if (idx != 0) {
    nic.put(leader, land_desc_[static_cast<std::size_t>(leader)],
            static_cast<std::size_t>(idx) * block, src, block);
    put_slot(rank, leader, kSlotIntraGather + idx, seq);
    wait_slot(rank, kSlotIntraRel, seq, leader);
    std::memcpy(dst, land, static_cast<std::size_t>(p) * block);
    return;
  }
  // Leader: assemble the node block [0, rpn*block), Bruck it across node
  // leaders in [rpn*block, (rpn+p)*block), then release the full result.
  std::memcpy(land, src, block);
  for (int j = 1; j < rpn_; ++j) {
    wait_slot(rank, kSlotIntraGather + j, seq, rank + j);
  }
  const std::size_t nblk = static_cast<std::size_t>(rpn_) * block;
  std::byte* land2 = land + nblk;
  std::memcpy(land2, land, nblk);
  int round = 0;
  for (int cnt = 1; cnt < nnodes_; cnt <<= 1, ++round) {
    const std::size_t send =
        static_cast<std::size_t>(std::min(cnt, nnodes_ - cnt)) * nblk;
    const int to = ((node - cnt + nnodes_) % nnodes_) * rpn_;
    const int from = ((node + cnt) % nnodes_) * rpn_;
    nic.put(to, land_desc_[static_cast<std::size_t>(to)],
            nblk + static_cast<std::size_t>(cnt) * nblk, land2, send);
    put_slot(rank, to, round, seq);
    wait_slot(rank, round, seq, from);
  }
  for (int k = 0; k < nnodes_; ++k) {
    const int n2 = (node + k) % nnodes_;
    std::memcpy(d + static_cast<std::size_t>(n2) * nblk,
                land2 + static_cast<std::size_t>(k) * nblk, nblk);
  }
  nic.batch_begin();
  for (int j = 1; j < rpn_; ++j) {
    nic.put_nbi(rank + j, land_desc_[static_cast<std::size_t>(rank + j)], 0,
                dst, static_cast<std::size_t>(p) * block);
  }
  nic.gsync();
  const std::size_t rel_off =
      static_cast<std::size_t>(2 * kMaxRounds + kSlotIntraRel) * kFlagBytes;
  nic.batch_begin();
  for (int j = 1; j < rpn_; ++j) {
    nic.put_nbi(rank + j, flag_desc_[static_cast<std::size_t>(rank + j)],
                rel_off, &seq, kFlagBytes);
  }
  nic.gsync();
}

// --- allreduce --------------------------------------------------------------

void Collectives::allreduce_bytes(int rank, const void* src, void* dst,
                                  std::size_t nelems, std::size_t esize,
                                  Combiner cb) {
  const int p = nranks();
  const std::size_t nbytes = nelems * esize;
  if (nbytes == 0) return;
  if (p == 1) {
    std::memcpy(dst, src, nbytes);
    return;
  }
  if (flat_path(nbytes)) {
    publish(rank, src);
    barrier(rank);
    std::memcpy(dst, peer_ptr(0), nbytes);
    for (int r = 1; r < p; ++r) {
      cb.fn(cb.ctx, dst, peer_ptr(r), nelems, /*acc_left=*/true);
    }
    charge_copies(rank, nbytes, static_cast<std::size_t>(p));
    barrier(rank);
    return;
  }
  const std::uint64_t seq = enter_data(rank, allreduce_cap(nbytes));
  allreduce_core(rank, src, dst, nelems, esize, cb, land_desc_.data(),
                 land_mem_[static_cast<std::size_t>(rank)].data(), 0, seq);
}

void Collectives::allreduce_core(int rank, const void* src, void* dst,
                                 std::size_t nelems, std::size_t esize,
                                 Combiner cb, const rdma::RegionDesc* descs,
                                 std::byte* my_base, std::size_t base_off,
                                 std::uint64_t seq) {
  const int p = nranks();
  const std::size_t nbytes = nelems * esize;
  std::byte* acc = static_cast<std::byte*>(dst);
  std::memcpy(acc, src, nbytes);
  if (p == 1) return;
  rdma::Nic& nic = domain_.nic(rank);
  if (!hier_) {
    rd_allreduce(rank, rank, p, 1, acc, nelems, esize, cb, descs, my_base,
                 base_off, seq);
    return;
  }
  const int node = rank / rpn_;
  const int idx = rank % rpn_;
  const int leader = node * rpn_;
  if (idx != 0) {
    nic.put(leader, descs[leader], base_off + static_cast<std::size_t>(idx) * nbytes,
            acc, nbytes);
    put_slot(rank, leader, kSlotIntraGather + idx, seq);
    wait_slot(rank, kSlotIntraRel, seq, leader);
    std::memcpy(acc, my_base, nbytes);
    return;
  }
  // Leader: fold members in ascending rank order (keeps every rank's result
  // bit-identical), recursive-double across node leaders, release.
  for (int j = 1; j < rpn_; ++j) {
    wait_slot(rank, kSlotIntraGather + j, seq, rank + j);
    cb.fn(cb.ctx, acc, my_base + static_cast<std::size_t>(j) * nbytes, nelems,
          /*acc_left=*/true);
  }
  rd_allreduce(rank, node, nnodes_, rpn_, acc, nelems, esize, cb, descs,
               my_base + static_cast<std::size_t>(rpn_) * nbytes,
               base_off + static_cast<std::size_t>(rpn_) * nbytes, seq);
  nic.batch_begin();
  for (int j = 1; j < rpn_; ++j) {
    nic.put_nbi(rank + j, descs[rank + j], base_off, acc, nbytes);
  }
  nic.gsync();
  const std::size_t rel_off =
      static_cast<std::size_t>(2 * kMaxRounds + kSlotIntraRel) * kFlagBytes;
  nic.batch_begin();
  for (int j = 1; j < rpn_; ++j) {
    nic.put_nbi(rank + j, flag_desc_[static_cast<std::size_t>(rank + j)],
                rel_off, &seq, kFlagBytes);
  }
  nic.gsync();
}

void Collectives::rd_allreduce(int rank, int idx, int nmemb, int stride,
                               std::byte* acc, std::size_t nelems,
                               std::size_t esize, Combiner cb,
                               const rdma::RegionDesc* descs, std::byte* land,
                               std::size_t land_off, std::uint64_t seq) {
  const std::size_t nbytes = nelems * esize;
  rdma::Nic& nic = domain_.nic(rank);
  const int pow2 = static_cast<int>(std::bit_floor(static_cast<unsigned>(nmemb)));
  const int nr = floor_log2(pow2);
  const int rem = nmemb - pow2;
  // MPICH non-power-of-two fold: the first 2*rem participants pair up; odd
  // members ship their vector to the even partner (landing slot nr) and sit
  // out, collecting the result afterwards (slot nr + 1).
  int newidx;
  if (idx < 2 * rem) {
    if (idx % 2 != 0) {
      const int peer = (idx - 1) * stride;
      nic.put(peer, descs[peer], land_off + static_cast<std::size_t>(nr) * nbytes,
              acc, nbytes);
      put_slot(rank, peer, kSlotFoldPre, seq);
      wait_slot(rank, kSlotFoldPost, seq, peer);
      std::memcpy(acc, land + static_cast<std::size_t>(nr + 1) * nbytes, nbytes);
      return;
    }
    wait_slot(rank, kSlotFoldPre, seq, (idx + 1) * stride);
    cb.fn(cb.ctx, acc, land + static_cast<std::size_t>(nr) * nbytes, nelems,
          /*acc_left=*/true);
    newidx = idx / 2;
  } else {
    newidx = idx - rem;
  }
  // Recursive doubling over the pow2 survivors. acc always covers a
  // contiguous block of participants, so acc is the left operand exactly
  // when newidx is below the partner.
  int round = 0;
  for (int mask = 1; mask < pow2; mask <<= 1, ++round) {
    const int npart = newidx ^ mask;
    const int pidx = npart < rem ? npart * 2 : npart + rem;
    const int peer = pidx * stride;
    nic.put(peer, descs[peer],
            land_off + static_cast<std::size_t>(round) * nbytes, acc, nbytes);
    put_slot(rank, peer, round, seq);
    wait_slot(rank, round, seq, peer);
    cb.fn(cb.ctx, acc, land + static_cast<std::size_t>(round) * nbytes, nelems,
          /*acc_left=*/newidx < npart);
  }
  if (idx < 2 * rem) {
    const int peer = (idx + 1) * stride;
    nic.put(peer, descs[peer],
            land_off + static_cast<std::size_t>(nr + 1) * nbytes, acc, nbytes);
    put_slot(rank, peer, kSlotFoldPost, seq);
  }
}

// --- reduce_scatter ---------------------------------------------------------

void Collectives::reduce_scatter_block_bytes(int rank, const void* src,
                                             void* dst, std::size_t nelems,
                                             std::size_t esize, Combiner cb) {
  const int p = nranks();
  const std::size_t block = nelems * esize;
  if (block == 0) return;
  if (p == 1) {
    std::memcpy(dst, src, block);
    return;
  }
  if (flat_path(block)) {
    publish(rank, src);
    barrier(rank);
    const std::size_t off = static_cast<std::size_t>(rank) * block;
    std::memcpy(dst, static_cast<const std::byte*>(peer_ptr(0)) + off, block);
    for (int r = 1; r < p; ++r) {
      cb.fn(cb.ctx, dst, static_cast<const std::byte*>(peer_ptr(r)) + off,
            nelems, /*acc_left=*/true);
    }
    charge_copies(rank, block, static_cast<std::size_t>(p));
    barrier(rank);
    return;
  }
  // Allreduce the whole vector and keep own block: O(log p) rounds and the
  // scratch stays local (no collective here uses scratch_ on its tree path).
  std::byte* tmp = scratch_bytes(rank, static_cast<std::size_t>(p) * block);
  allreduce_bytes(rank, src, tmp, static_cast<std::size_t>(p) * nelems, esize,
                  cb);
  std::memcpy(dst, tmp + static_cast<std::size_t>(rank) * block, block);
}

// --- alltoall ---------------------------------------------------------------

void Collectives::alltoall_bytes(int rank, const void* src,
                                 std::size_t block_bytes, void* dst) {
  const int p = nranks();
  if (block_bytes == 0) return;
  if (p == 1) {
    std::memcpy(dst, src, block_bytes);
    return;
  }
  if (flat_path(block_bytes)) {
    publish(rank, src);
    barrier(rank);
    std::byte* d = static_cast<std::byte*>(dst);
    for (int r = 0; r < p; ++r) {
      std::memcpy(d + static_cast<std::size_t>(r) * block_bytes,
                  static_cast<const std::byte*>(peer_ptr(r)) +
                      static_cast<std::size_t>(rank) * block_bytes,
                  block_bytes);
    }
    charge_copies(rank, block_bytes, static_cast<std::size_t>(p - 1));
    barrier(rank);
    return;
  }
  if (block_bytes <= cfg_.bruck_cutoff && p >= cfg_.bruck_min_ranks) {
    const std::uint64_t seq = enter_data(
        rank, static_cast<std::size_t>(rounds_() * p) * block_bytes);
    alltoall_bruck(rank, src, block_bytes, dst, seq);
  } else {
    enter_data(rank, static_cast<std::size_t>(p) * block_bytes);
    alltoall_direct(rank, src, block_bytes, dst);
  }
}

void Collectives::alltoall_bruck(int rank, const void* src, std::size_t block,
                                 void* dst, std::uint64_t seq) {
  const int p = nranks();
  rdma::Nic& nic = domain_.nic(rank);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  std::byte* tmp = scratch_bytes(rank, static_cast<std::size_t>(p) * block);
  const std::byte* s = static_cast<const std::byte*>(src);
  // Bruck alltoall: rotate, then in round r ship every block whose index
  // has bit r set to rank + 2^r as ONE vectored put (chained descriptors,
  // single doorbell) into that round's private landing region, and rotate
  // back at the end. log p rounds of p/2 blocks instead of p - 1 puts.
  for (int k = 0; k < p; ++k) {
    std::memcpy(tmp + static_cast<std::size_t>(k) * block,
                s + static_cast<std::size_t>((rank + k) % p) * block, block);
  }
  auto& frags = frag_scratch_[static_cast<std::size_t>(rank)];
  int round = 0;
  for (int cnt = 1; cnt < p; cnt <<= 1, ++round) {
    frags.clear();
    for (int k = 0; k < p; ++k) {
      if ((k & cnt) == 0) continue;
      const std::size_t off = static_cast<std::size_t>(k) * block;
      frags.push_back({off, off, block});
    }
    const std::size_t rbase =
        static_cast<std::size_t>(round * p) * block;
    const int to = (rank + cnt) % p;
    const int from = (rank - cnt + p) % p;
    nic.put_nbiv(to, land_desc_[static_cast<std::size_t>(to)], rbase,
                 static_cast<std::size_t>(p) * block, tmp, frags.data(),
                 frags.size());
    nic.gsync();
    put_slot(rank, to, round, seq);
    wait_slot(rank, round, seq, from);
    for (int k = 0; k < p; ++k) {
      if ((k & cnt) == 0) continue;
      std::memcpy(tmp + static_cast<std::size_t>(k) * block,
                  land + rbase + static_cast<std::size_t>(k) * block, block);
    }
  }
  std::byte* d = static_cast<std::byte*>(dst);
  for (int k = 0; k < p; ++k) {
    std::memcpy(d + static_cast<std::size_t>((rank - k + p) % p) * block,
                tmp + static_cast<std::size_t>(k) * block, block);
  }
}

void Collectives::alltoall_direct(int rank, const void* src, std::size_t block,
                                  void* dst) {
  const int p = nranks();
  rdma::Nic& nic = domain_.nic(rank);
  const std::byte* s = static_cast<const std::byte*>(src);
  std::byte* d = static_cast<std::byte*>(dst);
  std::byte* land = land_mem_[static_cast<std::size_t>(rank)].data();
  RankState& st = state_[static_cast<std::size_t>(rank)];
  // Direct exchange: everyone puts block i straight into peer i's landing
  // at rank*block (two batched doorbell groups: payloads, then one
  // fetch_add per peer on the arrival counter). Peer order is rotated by
  // rank so the fleet doesn't converge on one target at a time.
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int peer = (rank + i) % p;
    nic.put_nbi(peer, land_desc_[static_cast<std::size_t>(peer)],
                static_cast<std::size_t>(rank) * block,
                s + static_cast<std::size_t>(peer) * block, block);
  }
  nic.gsync();
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int peer = (rank + i) % p;
    nic.amo_nbi(peer, flag_desc_[static_cast<std::size_t>(peer)],
                static_cast<std::size_t>(kCtrWord) * kFlagBytes,
                rdma::AmoOp::fetch_add, 1);
  }
  nic.gsync();
  std::memcpy(d + static_cast<std::size_t>(rank) * block,
              s + static_cast<std::size_t>(rank) * block, block);
  st.ctr_expected += static_cast<std::uint64_t>(p - 1);
  wait_counter(rank, ctr_word_ptr(rank), st.ctr_expected);
  for (int j = 0; j < p; ++j) {
    if (j == rank) continue;
    std::memcpy(d + static_cast<std::size_t>(j) * block,
                land + static_cast<std::size_t>(j) * block, block);
  }
}

// --- alltoallv --------------------------------------------------------------

std::uint64_t Collectives::alltoallv_counts(int rank,
                                            const std::uint64_t* sendcounts,
                                            std::uint64_t* recvcounts,
                                            std::uint64_t* rdispls,
                                            std::size_t esize) {
  const int p = nranks();
  auto& pd = put_displ_[static_cast<std::size_t>(rank)];
  if (p == 1) {
    recvcounts[0] = sendcounts[0];
    rdispls[0] = 0;
    pd.assign(1, 0);
    return sendcounts[0];
  }
  // Both 8-byte exchanges run barrier-free over the dedicated
  // count-exchange plane (cx_mem_, registered once at construction). Slot
  // reuse is safe with just two parity banks: completing generation g
  // requires one arrival from every peer for g (the cumulative counter
  // target is (g+1)*(p-1) and no peer can be past g+1 until everyone
  // reaches g — induction on the first rank to complete each generation),
  // and a peer only issues its g+1 puts after reading its own g slots, so
  // nobody can be writing bank g%2 for generation g+2 while any rank still
  // reads it for g. Each peer's data put is globally visible before its
  // counter AMO (separate batched gsyncs), so a counter at target implies
  // every generation-g slot has landed. The counters are cumulative and
  // need no parity.
  RankState& st = state_[static_cast<std::size_t>(rank)];
  const std::size_t P = static_cast<std::size_t>(p);
  const std::size_t par = static_cast<std::size_t>(st.cx_seq++ & 1);
  const auto* cx = reinterpret_cast<const std::uint64_t*>(
      cx_mem_[static_cast<std::size_t>(rank)].data());
  rdma::Nic& nic = domain_.nic(rank);

  // Round 1: per-peer send counts.
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    nic.put_nbi(j, cx_desc_[static_cast<std::size_t>(j)],
                (par * P + static_cast<std::size_t>(rank)) * kFlagBytes,
                &sendcounts[j], kFlagBytes);
  }
  nic.gsync();
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    nic.amo_nbi(j, cx_desc_[static_cast<std::size_t>(j)], 4 * P * kFlagBytes,
                rdma::AmoOp::fetch_add, 1);
  }
  nic.gsync();
  st.cx_counts_expected += static_cast<std::uint64_t>(p - 1);
  wait_counter(rank, cx + 4 * P, st.cx_counts_expected);
  std::uint64_t total = 0;
  for (int j = 0; j < p; ++j) {
    recvcounts[j] = (j == rank) ? sendcounts[rank]
                                : cx[par * P + static_cast<std::size_t>(j)];
    rdispls[j] = total;
    total += recvcounts[j];
  }

  // Between the rounds is the one window with provably no put in flight
  // toward this rank's landing (call-N payload puts need our round-2
  // arrival; the previous call's were all counter-acknowledged before we
  // returned from it), so a requested landing regrow is safe here without
  // any barrier — and it licenses the paired alltoallv_put to skip its
  // leading barrier too.
  if (esize != 0) {
    const std::size_t need = std::max<std::size_t>(
        static_cast<std::size_t>(total) * esize, kFlagBytes);
    ensure_landing(rank, need);
    st.cx_presized = need;
  }

  // Round 2: receive displacements back to the senders — after it,
  // pd[j] = rdispls_of_j[rank]. Disjoint slots and counter, same protocol.
  pd.resize(P);
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    nic.put_nbi(j, cx_desc_[static_cast<std::size_t>(j)],
                ((2 + par) * P + static_cast<std::size_t>(rank)) * kFlagBytes,
                &rdispls[j], kFlagBytes);
  }
  nic.gsync();
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    nic.amo_nbi(j, cx_desc_[static_cast<std::size_t>(j)],
                (4 * P + 1) * kFlagBytes, rdma::AmoOp::fetch_add, 1);
  }
  nic.gsync();
  st.cx_displs_expected += static_cast<std::uint64_t>(p - 1);
  wait_counter(rank, cx + 4 * P + 1, st.cx_displs_expected);
  for (int j = 0; j < p; ++j) {
    pd[static_cast<std::size_t>(j)] =
        (j == rank) ? rdispls[rank]
                    : cx[(2 + par) * P + static_cast<std::size_t>(j)];
  }
  return total;
}

void Collectives::alltoallv_put(int rank, const void* src,
                                const std::uint64_t* sendcounts,
                                const std::uint64_t* sdispls,
                                std::size_t esize, void* dst,
                                const std::uint64_t* recvcounts,
                                const std::uint64_t* rdispls) {
  const int p = nranks();
  if (p == 1) {
    std::memcpy(dst,
                static_cast<const std::byte*>(src) + sdispls[0] * esize,
                static_cast<std::size_t>(sendcounts[0]) * esize);
    return;
  }
  const std::uint64_t total = rdispls[p - 1] + recvcounts[p - 1];
  const std::size_t need = std::max<std::size_t>(
      static_cast<std::size_t>(total) * esize, kFlagBytes);
  RankState& st = state_[static_cast<std::size_t>(rank)];
  if (st.cx_presized >= need) {
    // The paired alltoallv_counts already grew the landing and its two
    // handshakes order generations (no peer can issue this call's payload
    // puts before our round-2 arrival, which followed the previous call's
    // copy-out): no leading barrier needed. Rank-invariant — every rank
    // passed the same esize to the counts phase.
    st.cx_presized = 0;
  } else {
    enter_data(rank, need);
  }
  alltoallv_put_core(
      rank, src, sendcounts, sdispls, esize, dst, recvcounts, rdispls,
      put_displ_[static_cast<std::size_t>(rank)].data(), land_desc_.data(),
      land_mem_[static_cast<std::size_t>(rank)].data(), 0, flag_desc_.data(),
      static_cast<std::size_t>(kCtrWord) * kFlagBytes, ctr_word_ptr(rank),
      &state_[static_cast<std::size_t>(rank)].ctr_expected);
}

void Collectives::alltoallv_put_core(
    int rank, const void* src, const std::uint64_t* sendcounts,
    const std::uint64_t* sdispls, std::size_t esize, void* dst,
    const std::uint64_t* recvcounts, const std::uint64_t* rdispls,
    const std::uint64_t* put_displ, const rdma::RegionDesc* descs,
    std::byte* my_data, std::size_t base_off,
    const rdma::RegionDesc* ctr_descs, std::size_t ctr_off,
    const std::uint64_t* ctr_word, std::uint64_t* ctr_expected) {
  const int p = nranks();
  rdma::Nic& nic = domain_.nic(rank);
  const std::byte* s = static_cast<const std::byte*>(src);
  std::byte* d = static_cast<std::byte*>(dst);
  // Payload group: one put per nonzero destination, landing directly at the
  // receiver-assigned displacement (so the landing mirrors the receiver's
  // dst layout). Then one fetch_add per peer — senders with nothing to send
  // still bump the counter, so the expected total is always p - 1.
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    if (sendcounts[j] == 0) continue;
    nic.put_nbi(j, descs[j],
                base_off + static_cast<std::size_t>(put_displ[j]) * esize,
                s + static_cast<std::size_t>(sdispls[j]) * esize,
                static_cast<std::size_t>(sendcounts[j]) * esize);
  }
  nic.gsync();
  nic.batch_begin();
  for (int i = 1; i < p; ++i) {
    const int j = (rank + i) % p;
    nic.amo_nbi(j, ctr_descs[j], ctr_off, rdma::AmoOp::fetch_add, 1);
  }
  nic.gsync();
  if (sendcounts[rank] != 0) {
    std::memcpy(d + static_cast<std::size_t>(rdispls[rank]) * esize,
                s + static_cast<std::size_t>(sdispls[rank]) * esize,
                static_cast<std::size_t>(sendcounts[rank]) * esize);
  }
  *ctr_expected += static_cast<std::uint64_t>(p - 1);
  wait_counter(rank, ctr_word, *ctr_expected);
  for (int j = 0; j < p; ++j) {
    if (j == rank || recvcounts[j] == 0) continue;
    std::memcpy(d + static_cast<std::size_t>(rdispls[j]) * esize,
                my_data + static_cast<std::size_t>(rdispls[j]) * esize,
                static_cast<std::size_t>(recvcounts[j]) * esize);
  }
}

// --- persistent plans -------------------------------------------------------

AlltoallvPlan::~AlltoallvPlan() {
  if (domain_ == nullptr) return;
  for (const auto& d : desc_) {
    if (d.rkey != 0) domain_->registry().deregister(d.rkey);
  }
}

AllreducePlan::~AllreducePlan() {
  if (domain_ == nullptr) return;
  for (const auto& d : desc_) {
    if (d.rkey != 0) domain_->registry().deregister(d.rkey);
  }
}

std::shared_ptr<AlltoallvPlan> Collectives::plan_alltoallv(
    int rank, const std::uint64_t* sendcounts, const std::uint64_t* sdispls,
    std::size_t esize) {
  const int p = nranks();
  // Rank 0 stages the shared plan object; the surrounding barriers order
  // the staging store before any reader and the readers before the reset.
  barrier(rank);
  if (rank == 0) {
    auto staged = std::make_shared<AlltoallvPlan>();
    staged->domain_ = &domain_;
    staged->esize_ = esize;
    staged->pr_.resize(static_cast<std::size_t>(p));
    staged->desc_.resize(static_cast<std::size_t>(p));
    plan_stage_ = staged;
  }
  barrier(rank);
  auto plan = std::static_pointer_cast<AlltoallvPlan>(plan_stage_);
  auto& mine = plan->pr_[static_cast<std::size_t>(rank)];
  mine.sendcounts.assign(sendcounts, sendcounts + p);
  mine.sdispls.assign(sdispls, sdispls + p);
  mine.recvcounts.resize(static_cast<std::size_t>(p));
  mine.rdispls.resize(static_cast<std::size_t>(p));
  mine.total_recv = alltoallv_counts(rank, sendcounts, mine.recvcounts.data(),
                                     mine.rdispls.data());
  mine.put_displ = put_displ_[static_cast<std::size_t>(rank)];
  // The landing holds two parity banks so runs can alternate without a
  // barrier. The bank stride must be uniform (senders address any
  // receiver's bank), so take the max landing size over all ranks.
  std::uint64_t bank =
      (std::max<std::uint64_t>(mine.total_recv * esize, kFlagBytes) +
       kCacheLine - 1) /
      kCacheLine * kCacheLine;
  std::uint64_t bank_max = 0;
  auto max_op = [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; };
  allreduce_bytes(rank, &bank, &bank_max, 1, sizeof(std::uint64_t),
                  make_combiner<std::uint64_t>(max_op));
  mine.bank_bytes = static_cast<std::size_t>(bank_max);
  const std::size_t bytes = AlltoallvPlan::kDataOff + 2 * mine.bank_bytes;
  mine.landing = AlignedBuffer(bytes);
  plan->desc_[static_cast<std::size_t>(rank)] =
      domain_.registry().register_region(rank, mine.landing.data(), bytes);
  barrier(rank);  // all landings registered before anyone may run the plan
  if (rank == 0) plan_stage_.reset();
  return plan;
}

void Collectives::run_alltoallv(int rank, AlltoallvPlan& plan, const void* src,
                                void* dst) {
  const int p = nranks();
  auto& mine = plan.pr_[static_cast<std::size_t>(rank)];
  if (p == 1) {
    std::memcpy(dst,
                static_cast<const std::byte*>(src) +
                    static_cast<std::size_t>(mine.sdispls[0]) * plan.esize_,
                static_cast<std::size_t>(mine.sendcounts[0]) * plan.esize_);
    return;
  }
  // No barrier: runs alternate between the two parity banks, and the
  // cumulative counter orders generations. Completing run N requires one
  // (data-then-AMO gsync'd) arrival from every peer for run N, and a peer
  // only issues its run N+1 puts after copying run N out of its own
  // landing — so by induction on the first rank to complete each run,
  // nobody can be writing bank N%2 for run N+2 while any rank still reads
  // it for run N.
  const std::size_t off = AlltoallvPlan::kDataOff +
                          static_cast<std::size_t>(mine.run_seq++ & 1) *
                              mine.bank_bytes;
  alltoallv_put_core(
      rank, src, mine.sendcounts.data(), mine.sdispls.data(), plan.esize_, dst,
      mine.recvcounts.data(), mine.rdispls.data(), mine.put_displ.data(),
      plan.desc_.data(), mine.landing.data() + off, off, plan.desc_.data(), 0,
      reinterpret_cast<const std::uint64_t*>(mine.landing.data()),
      &mine.ctr_expected);
}

std::shared_ptr<AllreducePlan> Collectives::plan_allreduce(int rank,
                                                           std::size_t nelems,
                                                           std::size_t esize) {
  const int p = nranks();
  barrier(rank);
  if (rank == 0) {
    auto staged = std::make_shared<AllreducePlan>();
    staged->domain_ = &domain_;
    staged->nelems_ = nelems;
    staged->esize_ = esize;
    staged->pr_.resize(static_cast<std::size_t>(p));
    staged->desc_.resize(static_cast<std::size_t>(p));
    plan_stage_ = staged;
  }
  barrier(rank);
  auto plan = std::static_pointer_cast<AllreducePlan>(plan_stage_);
  const std::size_t bytes =
      std::max<std::size_t>(allreduce_cap(nelems * esize), kFlagBytes);
  auto& mine = plan->pr_[static_cast<std::size_t>(rank)];
  mine.landing = AlignedBuffer(bytes);
  plan->desc_[static_cast<std::size_t>(rank)] =
      domain_.registry().register_region(rank, mine.landing.data(), bytes);
  barrier(rank);
  if (rank == 0) plan_stage_.reset();
  return plan;
}

void Collectives::run_allreduce(int rank, AllreducePlan& plan, const void* src,
                                void* dst, Combiner cb) {
  const std::size_t nbytes = plan.nelems_ * plan.esize_;
  if (nbytes == 0) return;
  if (nranks() == 1) {
    std::memcpy(dst, src, nbytes);
    return;
  }
  // Same prologue as enter_data, minus landing growth (plan-time fixed):
  // lockstep sequence bump, then the leading barrier.
  const std::uint64_t seq =
      ++state_[static_cast<std::size_t>(rank)].data_seq;
  barrier(rank);
  allreduce_core(rank, src, dst, plan.nelems_, plan.esize_, cb,
                 plan.desc_.data(),
                 plan.pr_[static_cast<std::size_t>(rank)].landing.data(), 0,
                 seq);
}

}  // namespace fompi::fabric

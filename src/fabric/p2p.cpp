#include "fabric/p2p.hpp"

#include <cstring>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"

namespace fompi::fabric {

P2P::P2P(rdma::Domain& domain, std::function<void()> yield_check,
         std::size_t eager_threshold)
    : domain_(domain),
      yield_check_(std::move(yield_check)),
      eager_threshold_(eager_threshold) {
  mail_.reserve(static_cast<std::size_t>(domain.nranks()));
  for (int r = 0; r < domain.nranks(); ++r) {
    mail_.push_back(std::make_unique<Mailbox>());
    (void)r;
  }
}

std::uint64_t P2P::model_now() const noexcept { return now_ns(); }

double P2P::eager_latency_ns(int me, int dst, std::size_t len) const {
  const auto& cfg = domain_.config();
  if (cfg.inject != rdma::Injection::model) return 0.0;
  const auto& m = cfg.model;
  if (domain_.same_node(me, dst)) {
    // Shared-memory eager: one staging copy plus the delivery copy.
    return (m.intra_latency_ns(len) + m.intra_byte_ns * double(len)) *
           cfg.time_scale;
  }
  // Network put plus the receiver-side eager copy out of the system buffer.
  return (m.put_latency_ns(len) + m.intra_byte_ns * double(len)) *
         cfg.time_scale;
}

double P2P::rndv_latency_ns(int me, int dst, std::size_t len) const {
  const auto& cfg = domain_.config();
  if (cfg.inject != rdma::Injection::model) return 0.0;
  const auto& m = cfg.model;
  if (domain_.same_node(me, dst)) {
    return (2.0 * m.intra_base_ns + m.intra_latency_ns(len)) * cfg.time_scale;
  }
  // RTS/CTS handshake (two small control messages) plus the bulk transfer.
  return (2.0 * m.put_latency_ns(8) + m.put_latency_ns(len)) * cfg.time_scale;
}

void P2P::complete_now(const std::shared_ptr<detail::ReqState>& st, int src,
                       int tag, std::size_t len, std::uint64_t ready_at,
                       bool truncated) {
  st->status = Status{src, tag, len};
  st->ready_at.store(ready_at, std::memory_order_relaxed);
  st->truncated.store(truncated, std::memory_order_relaxed);
  st->done.store(true, std::memory_order_release);
}

void P2P::spin_until_done(detail::ReqState& st, int peer) {
  Backoff backoff;
  while (!st.done.load(std::memory_order_acquire)) {
    yield_check_();
    // Re-check done after observing the death: the peer may have completed
    // this request and died afterwards inside our yield window (its
    // completion store precedes the death mark).
    if (peer >= 0 && domain_.death_epoch() != 0 && !domain_.alive(peer) &&
        !st.done.load(std::memory_order_acquire)) {
      raise(ErrClass::peer_dead, "p2p: peer rank died");
    }
    backoff.pause();
  }
  const std::uint64_t ready = st.ready_at.load(std::memory_order_relaxed);
  const std::uint64_t t = now_ns();
  if (ready > t) spin_for_ns(ready - t);
}

void P2P::deposit(int me, int dst, int tag, const void* buf, std::size_t len,
                  bool synchronous,
                  const std::shared_ptr<detail::ReqState>& sreq) {
  FOMPI_REQUIRE(dst >= 0 && dst < domain_.nranks(), ErrClass::rank,
                "send: destination rank out of range");
  const auto& cfg = domain_.config();
  if (cfg.inject == rdma::Injection::model) {
    const double o = domain_.same_node(me, dst) ? cfg.model.intra_overhead_ns
                                                : cfg.model.inter_overhead_ns;
    spin_for_ns(static_cast<std::uint64_t>(o * cfg.time_scale));
  }
  count(Op::transport_put);
  count(Op::bytes_copied, len);

  const bool eager = !synchronous && len <= eager_threshold_;
  Mailbox& box = *mail_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(box.mu);

  // Tag matching against posted receives (in post order).
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    if (!matches(*it, me, tag)) continue;
    Posted posted = *it;
    box.posted.erase(it);
    lock.unlock();
    const double lat =
        eager ? eager_latency_ns(me, dst, len) : rndv_latency_ns(me, dst, len);
    const std::uint64_t arrival =
        model_now() + static_cast<std::uint64_t>(lat);
    const bool trunc = len > posted.cap;
    if (!trunc && len > 0) std::memcpy(posted.buf, buf, len);
    complete_now(posted.state, me, tag, len, arrival, trunc);
    // Synchronous/rendezvous senders complete at the same modeled time;
    // eager senders completed locally already.
    complete_now(sreq, me, tag, len, (eager ? model_now() : arrival), false);
    return;
  }

  // No posted receive: enqueue as unexpected.
  Unexpected u;
  u.src = me;
  u.tag = tag;
  u.len = len;
  if (eager) {
    u.arrive_at =
        model_now() + static_cast<std::uint64_t>(eager_latency_ns(me, dst, len));
    u.payload.assign(static_cast<const std::byte*>(buf),
                     static_cast<const std::byte*>(buf) + len);
    complete_now(sreq, me, tag, len, model_now(), false);
  } else {
    // Rendezvous: only the ready-to-send envelope travels now.
    u.arrive_at = model_now() + static_cast<std::uint64_t>(
                                    cfg.inject == rdma::Injection::model
                                        ? cfg.model.put_latency_ns(8) *
                                              cfg.time_scale
                                        : 0.0);
    u.sender_buf = buf;
    u.sender = sreq;  // completed by the receiver at match time
  }
  box.unexpected.push_back(std::move(u));
}

void P2P::send(int me, int dst, int tag, const void* buf, std::size_t len) {
  auto sreq = std::make_shared<detail::ReqState>();
  deposit(me, dst, tag, buf, len, /*synchronous=*/false, sreq);
  spin_until_done(*sreq, dst);
}

void P2P::ssend(int me, int dst, int tag, const void* buf, std::size_t len) {
  auto sreq = std::make_shared<detail::ReqState>();
  deposit(me, dst, tag, buf, len, /*synchronous=*/true, sreq);
  spin_until_done(*sreq, dst);
}

P2PRequest P2P::isend(int me, int dst, int tag, const void* buf,
                      std::size_t len) {
  P2PRequest req;
  req.state_ = std::make_shared<detail::ReqState>();
  deposit(me, dst, tag, buf, len, /*synchronous=*/false, req.state_);
  return req;
}

P2PRequest P2P::issend(int me, int dst, int tag, const void* buf,
                       std::size_t len) {
  P2PRequest req;
  req.state_ = std::make_shared<detail::ReqState>();
  deposit(me, dst, tag, buf, len, /*synchronous=*/true, req.state_);
  return req;
}

P2PRequest P2P::irecv(int me, int src, int tag, void* buf, std::size_t cap) {
  FOMPI_REQUIRE(src == kAnySource || (src >= 0 && src < domain_.nranks()),
                ErrClass::rank, "irecv: source rank out of range");
  P2PRequest req;
  req.state_ = std::make_shared<detail::ReqState>();
  Mailbox& box = *mail_[static_cast<std::size_t>(me)];
  std::unique_lock lock(box.mu);
  // Match the unexpected queue in arrival order (ignoring modeled arrival
  // time: a queued message is logically in flight, so the receive must
  // consume it; the model time is paid by waiting below).
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if ((src != kAnySource && it->src != src) ||
        (tag != kAnyTag && it->tag != tag)) {
      continue;
    }
    Unexpected u = std::move(*it);
    box.unexpected.erase(it);
    lock.unlock();
    const bool trunc = u.len > cap;
    std::uint64_t arrival = u.arrive_at;
    if (u.sender != nullptr) {
      // Rendezvous: copy straight out of the sender buffer, then release
      // the sender at the modeled completion of the bulk transfer.
      const std::uint64_t t_done =
          model_now() +
          static_cast<std::uint64_t>(rndv_latency_ns(u.src, me, u.len));
      if (!trunc && u.len > 0) std::memcpy(buf, u.sender_buf, u.len);
      complete_now(u.sender, u.src, u.tag, u.len, t_done, false);
      arrival = t_done;
    } else if (!trunc && u.len > 0) {
      std::memcpy(buf, u.payload.data(), u.len);
    }
    complete_now(req.state_, u.src, u.tag, u.len, arrival, trunc);
    return req;
  }
  box.posted.push_back(Posted{src, tag, buf, cap, req.state_});
  return req;
}

void P2P::recv(int me, int src, int tag, void* buf, std::size_t cap,
               Status* st) {
  P2PRequest req = irecv(me, src, tag, buf, cap);
  wait(req, st);
}

void P2P::sendrecv(int me, int dst, int stag, const void* sbuf,
                   std::size_t slen, int src, int rtag, void* rbuf,
                   std::size_t rcap, Status* st) {
  P2PRequest sreq = isend(me, dst, stag, sbuf, slen);
  recv(me, src, rtag, rbuf, rcap, st);
  wait(sreq);
}

bool P2P::test(P2PRequest& req, Status* st) {
  FOMPI_REQUIRE(req.valid(), ErrClass::arg, "test on an invalid request");
  detail::ReqState& s = *req.state_;
  if (!s.done.load(std::memory_order_acquire)) return false;
  if (s.ready_at.load(std::memory_order_relaxed) > now_ns()) return false;
  FOMPI_REQUIRE(!s.truncated.load(std::memory_order_relaxed),
                ErrClass::truncate, "message longer than receive buffer");
  if (st != nullptr) *st = s.status;
  req.state_.reset();
  return true;
}

void P2P::wait(P2PRequest& req, Status* st) {
  FOMPI_REQUIRE(req.valid(), ErrClass::arg, "wait on an invalid request");
  spin_until_done(*req.state_);
  FOMPI_REQUIRE(!req.state_->truncated.load(std::memory_order_relaxed),
                ErrClass::truncate, "message longer than receive buffer");
  if (st != nullptr) *st = req.state_->status;
  req.state_.reset();
}

void P2P::waitall(std::vector<P2PRequest>& reqs) {
  for (auto& r : reqs) {
    if (r.valid()) wait(r);
  }
}

bool P2P::iprobe(int me, int src, int tag, Status* st) {
  Mailbox& box = *mail_[static_cast<std::size_t>(me)];
  const std::uint64_t t = model_now();
  std::scoped_lock lock(box.mu);
  for (const auto& u : box.unexpected) {
    if (!matches(u, src, tag, t)) continue;
    if (st != nullptr) *st = Status{u.src, u.tag, u.len};
    return true;
  }
  return false;
}

}  // namespace fompi::fabric

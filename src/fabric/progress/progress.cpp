#include "fabric/progress/progress.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/buffer.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "fabric/fabric.hpp"
#include "trace/trace.hpp"

namespace fompi::fabric::progress {

// --- NotifyPlane ------------------------------------------------------------
//
// Ring wire format (per rank, all words 8-byte aligned):
//   word 0              reserve counter — producers fetch_add a sequence no.
//   word 1              read cursor — consumer republishes its drain head;
//                       producers read it remotely on the overflow path
//   slot i (32 bytes)   [tag][source<<32|bytes][tdisp][stamp]; the stamp is
//                       written last and holds seq+1, so a slot is ready
//                       exactly when stamp == head+1 (seq is absolute:
//                       wraparound reuse can never alias an old stamp)

namespace {
constexpr std::size_t kReserveOff = 0;
constexpr std::size_t kCursorOff = 8;
constexpr std::size_t kSlotBytes = 32;
constexpr std::size_t kTagOff = 0;
constexpr std::size_t kSrcBytesOff = 8;
constexpr std::size_t kTdispOff = 16;
constexpr std::size_t kStampOff = 24;

std::uint64_t load_word(const std::byte* p, std::memory_order mo) {
  return std::atomic_ref<const std::uint64_t>(
             *reinterpret_cast<const std::uint64_t*>(p))
      .load(mo);
}
}  // namespace

struct NotifyPlane::RankRing {
  AlignedBuffer mem;
  rdma::RegionDesc desc{};
  std::uint64_t head = 0;            ///< next seq the consumer drains
  std::deque<NotifyRecord> pending;  ///< drained, not yet tag-matched
};

NotifyPlane::NotifyPlane(Fabric& fabric, std::size_t capacity)
    : fabric_(fabric), cap_(capacity), nranks_(fabric.nranks()) {
  FOMPI_REQUIRE(cap_ >= 2, ErrClass::arg,
                "notify plane needs a capacity of at least 2 records");
  rings_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    rings_.push_back(std::make_unique<RankRing>());
  }
  cursor_cache_.assign(
      static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(nranks_),
      0);
}

NotifyPlane::~NotifyPlane() {
  auto& reg = fabric_.domain().registry();
  for (auto& ring : rings_) {
    if (ring->desc.rkey != 0) reg.deregister(ring->desc.rkey);
  }
}

void NotifyPlane::attach(int rank) {
  RankRing& ring = *rings_[static_cast<std::size_t>(rank)];
  FOMPI_REQUIRE(ring.desc.rkey == 0, ErrClass::arg,
                "notify plane: rank attached twice");
  ring.mem = AlignedBuffer(16 + kSlotBytes * cap_);
  ring.desc =
      fabric_.domain().registry().register_region(rank, ring.mem.data(),
                                                  ring.mem.size());
}

rdma::Nic& NotifyPlane::nic(int me) { return fabric_.domain().nic(me); }

rdma::Handle NotifyPlane::reserve_nb(int me, int target,
                                     std::uint64_t* seq_out) {
  return nic(me).amo_nb(target, rings_[static_cast<std::size_t>(target)]->desc,
                        kReserveOff, rdma::AmoOp::fetch_add, 1, 0, seq_out);
}

rdma::Handle NotifyPlane::cursor_nb(int me, int target,
                                    std::uint64_t* cursor_out) {
  return nic(me).get_nb(target, rings_[static_cast<std::size_t>(target)]->desc,
                        kCursorOff, cursor_out, 8);
}

rdma::Handle NotifyPlane::record_nb(int me, int target, std::uint64_t seq,
                                    std::uint64_t tag, std::uint64_t tdisp,
                                    std::uint32_t bytes) {
  const std::size_t slot = 16 + kSlotBytes * (seq % cap_);
  std::uint64_t body[3];
  body[0] = tag;
  body[1] = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(me)) << 32) |
            bytes;
  body[2] = tdisp;
  return nic(me).put_nb(target, rings_[static_cast<std::size_t>(target)]->desc,
                        slot + kTagOff, body, sizeof body);
}

rdma::Handle NotifyPlane::stamp_nb(int me, int target, std::uint64_t seq) {
  const std::size_t slot = 16 + kSlotBytes * (seq % cap_);
  // Stamp staged by value at issue: seq+1 commits the record. The NIC's
  // 8-byte put is a word-atomic store, so the consumer's acquire load of
  // the stamp is race-free.
  const std::uint64_t stamp = seq + 1;
  return nic(me).put_nb(target, rings_[static_cast<std::size_t>(target)]->desc,
                        slot + kStampOff, &stamp, 8);
}

rdma::OpStatus NotifyPlane::post(int me, int target, std::uint64_t tag,
                                 std::uint64_t tdisp, std::uint32_t bytes) {
  trace::emit(trace::EvClass::notify_post, trace::EvPhase::issue, target,
              static_cast<std::uint64_t>(tag));
  rdma::Nic& n = nic(me);
  std::uint64_t seq = 0;
  rdma::OpStatus st = n.wait_status(reserve_nb(me, target, &seq));
  if (st != rdma::OpStatus::ok) return st;

  // Overflow-to-retry: wait until the consumer's published read cursor
  // frees the slot. The cached cursor makes the non-full post free of the
  // extra round trip; only misses re-read it remotely.
  std::uint64_t& cached =
      cursor_cache_[static_cast<std::size_t>(me) *
                        static_cast<std::size_t>(nranks_) +
                    static_cast<std::size_t>(target)];
  if (!fits(seq, cached)) {
    Backoff backoff;
    while (true) {
      std::uint64_t cursor = 0;
      st = n.wait_status(cursor_nb(me, target, &cursor));
      if (st != rdma::OpStatus::ok) return st;
      // Order our upcoming slot reuse after the consumer's reads of the
      // previous record in this slot (pairs with its cursor release store).
      std::atomic_thread_fence(std::memory_order_acquire);
      if (cursor > cached) cached = cursor;
      if (fits(seq, cached)) break;
      // A dead consumer's cursor is frozen: type the failure instead of
      // retrying forever. (Reads of dead memory still succeed, so the
      // cursor get above does not catch this.)
      if (!fabric_.domain().alive(target)) return rdma::OpStatus::peer_dead;
      count(Op::notify_retry);
      trace::emit(trace::EvClass::notify_post, trace::EvPhase::retry, target,
                  seq);
      fabric_.yield_check();
      backoff.pause();
    }
  }

  st = n.wait_status(record_nb(me, target, seq, tag, tdisp, bytes));
  if (st != rdma::OpStatus::ok) return st;
  st = n.wait_status(stamp_nb(me, target, seq));
  if (st != rdma::OpStatus::ok) return st;
  count(Op::notify_posted);
  return rdma::OpStatus::ok;
}

bool NotifyPlane::drain(int me) {
  RankRing& ring = *rings_[static_cast<std::size_t>(me)];
  std::byte* base = ring.mem.data();
  bool progressed = false;
  while (true) {
    const std::byte* slot = base + 16 + kSlotBytes * (ring.head % cap_);
    if (load_word(slot + kStampOff, std::memory_order_acquire) !=
        ring.head + 1) {
      break;
    }
    // The stamp's acquire pairs with the producer-side release fence that
    // followed the body put, so these plain reads are ordered.
    NotifyRecord rec;
    rec.seq = ring.head;
    std::memcpy(&rec.tag, slot + kTagOff, 8);
    std::uint64_t src_bytes = 0;
    std::memcpy(&src_bytes, slot + kSrcBytesOff, 8);
    rec.source = static_cast<int>(src_bytes >> 32);
    rec.bytes = static_cast<std::uint32_t>(src_bytes);
    std::memcpy(&rec.tdisp, slot + kTdispOff, 8);
    ring.pending.push_back(rec);
    ++ring.head;
    count(Op::notify_consumed);
    progressed = true;
  }
  if (progressed) {
    // Republish the read cursor: frees the drained slots for producers
    // (their overflow path acquires against this release).
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(base + kCursorOff))
        .store(ring.head, std::memory_order_release);
  }
  return progressed;
}

std::size_t NotifyPlane::match(int me, std::uint64_t tag, NotifyRecord* out,
                               std::size_t max) {
  RankRing& ring = *rings_[static_cast<std::size_t>(me)];
  std::size_t n = 0;
  for (auto it = ring.pending.begin(); it != ring.pending.end() && n < max;) {
    if (tag == kAnyNotifyTag || it->tag == tag) {
      out[n++] = *it;
      it = ring.pending.erase(it);
    } else {
      ++it;
    }
  }
  return n;
}

bool NotifyPlane::probe(int me, std::uint64_t tag, NotifyRecord* out) {
  drain(me);
  return match(me, tag, out, 1) == 1;
}

bool NotifyPlane::source_dead(int rank) const {
  const auto& d = fabric_.domain();
  return d.death_epoch() != 0 && !d.alive(rank);
}

std::size_t NotifyPlane::waitsome(int me, std::uint64_t tag,
                                  NotifyRecord* out, std::size_t max,
                                  int source, rdma::OpStatus* status) {
  const trace::Span sp(trace::EvClass::notify_wait, source, tag);
  Backoff backoff;
  while (true) {
    const bool progressed = drain(me);
    const std::size_t n = match(me, tag, out, max);
    if (n > 0) {
      if (status != nullptr) *status = rdma::OpStatus::ok;
      return n;
    }
    if (source >= 0 && source_dead(source)) {
      // The producer may have stamped records right before dying; drain
      // raced above, so nothing matched — the wait can never be satisfied.
      if (status != nullptr) {
        *status = rdma::OpStatus::peer_dead;
        return 0;
      }
      raise(ErrClass::peer_dead, "notify wait: producing rank died");
    }
    fabric_.yield_check();
    if (progressed) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

std::uint64_t NotifyPlane::reserved(int me) const {
  return load_word(rings_[static_cast<std::size_t>(me)]->mem.data() +
                       kReserveOff,
                   std::memory_order_acquire);
}

std::uint64_t NotifyPlane::consumed(int me) const {
  return rings_[static_cast<std::size_t>(me)]->head;
}

// --- Scheduler --------------------------------------------------------------

Scheduler::Scheduler(Fabric& fabric, int rank)
    : nic_(fabric.domain().nic(rank)),
      yield_check_([&fabric] { fabric.yield_check(); }) {}

Scheduler::Scheduler(rdma::Nic& nic, std::function<void()> yield_check)
    : nic_(nic), yield_check_(std::move(yield_check)) {}

Fiber& Scheduler::adopt(std::unique_ptr<Fiber> fiber) {
  Fiber& f = *fiber;
  f.id_ = next_id_++;
  fibers_.push_back(std::move(fiber));
  runnable_.push_back(&f);
  ++live_;
  count(Op::fiber_spawn);
  return f;
}

void Scheduler::make_runnable(Fiber* f, rdma::OpStatus st) {
  f->wake_status_ = st;
  runnable_.push_back(f);
}

void Scheduler::heap_push(HandleWait w) {
  heap_.push_back(w);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HandleWait& a, const HandleWait& b) {
                   return a.deadline > b.deadline;
                 });
}

Scheduler::HandleWait Scheduler::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HandleWait& a, const HandleWait& b) {
                  return a.deadline > b.deadline;
                });
  const HandleWait w = heap_.back();
  heap_.pop_back();
  return w;
}

void Scheduler::await_handle(Fiber& f, rdma::Handle h) {
  const std::uint64_t deadline = nic_.completion_deadline(h);
  // now_cache_ (refreshed by poll_once) instead of a fresh clock read: a
  // ~35 ns read per await is the difference between the saturated pipeline
  // rate and the closed-form model. A stale cache only parks a due fiber
  // on the heap, where the next poll retires it.
  if (deadline == 0 || deadline <= now_cache_) {
    // Ready now (completed, failed at issue, or running without injected
    // time): retire on the spot. An await is still a yield point — the
    // fiber goes to the back of the runnable queue, keeping interleaving
    // fair even when every op completes at issue.
    make_runnable(&f, nic_.wait_status(h));
    return;
  }
  heap_push(HandleWait{deadline, &f, h, /*epoch=*/false});
}

void Scheduler::await_epoch(Fiber& f) {
  nic_.batch_flush();  // batched ops get their completion time at the flush
  const std::uint64_t deadline = nic_.quiesce_deadline();
  if (deadline == 0 || deadline <= now_cache_) {
    make_runnable(&f, nic_.gsync_status());
    return;
  }
  heap_push(HandleWait{deadline, &f, rdma::kDoneHandle, /*epoch=*/true});
}

void Scheduler::await_notify(Fiber& f, NotifyPlane& plane, std::uint64_t tag,
                             int source) {
  if (plane.probe(rank(), tag, &f.wake_record_)) {
    make_runnable(&f, rdma::OpStatus::ok);
    return;
  }
  if (source >= 0 && plane.source_dead(source)) {
    make_runnable(&f, rdma::OpStatus::peer_dead);
    return;
  }
  notify_waits_.push_back(NotifyWait{&f, &plane, tag, source});
}

void Scheduler::await_ready(Fiber& f) { ready_waits_.push_back(&f); }

void Scheduler::await_backoff(Fiber& f, std::uint64_t delay_ns) {
  // Fresh clock read, not now_cache_: a backoff is a wall-time contract and
  // the cache can be arbitrarily stale on a quiet scheduler.
  const std::uint64_t deadline = now_ns() + delay_ns;
  heap_push(HandleWait{deadline, &f, rdma::kDoneHandle, /*epoch=*/false,
                       /*sleep=*/true});
}

void Scheduler::await_yield(Fiber& f) { runnable_.push_back(&f); }

bool Scheduler::poll_once() {
  bool progressed = false;
  // Due handle/epoch deadlines: the NIC retire path runs here and carries
  // its typed status into the fiber. One clock read covers the whole
  // drain (and refreshes the cache await_handle compares against);
  // anything becoming due during it is caught by the next poll.
  if (!heap_.empty()) now_cache_ = now_ns();
  while (!heap_.empty() && heap_.front().deadline <= now_cache_) {
    const HandleWait w = heap_pop();
    if (w.sleep) {
      make_runnable(w.fiber, rdma::OpStatus::ok);
      progressed = true;
      continue;
    }
    if (w.epoch) {
      // More ops may have been issued while this fiber was parked: re-arm
      // on the grown quiesce deadline instead of spinning inside gsync.
      const std::uint64_t deadline = nic_.quiesce_deadline();
      if (deadline > now_cache_) {
        heap_push(HandleWait{deadline, w.fiber, rdma::kDoneHandle, true});
        continue;
      }
      make_runnable(w.fiber, nic_.gsync_status());
    } else {
      make_runnable(w.fiber, nic_.wait_status(w.handle));
    }
    progressed = true;
  }
  for (auto it = notify_waits_.begin(); it != notify_waits_.end();) {
    if (it->plane->probe(rank(), it->tag, &it->fiber->wake_record_)) {
      make_runnable(it->fiber, rdma::OpStatus::ok);
      it = notify_waits_.erase(it);
      progressed = true;
    } else if (it->source >= 0 && it->plane->source_dead(it->source)) {
      make_runnable(it->fiber, rdma::OpStatus::peer_dead);
      it = notify_waits_.erase(it);
      progressed = true;
    } else {
      ++it;
    }
  }
  for (auto it = ready_waits_.begin(); it != ready_waits_.end();) {
    if ((*it)->poll_ready()) {
      make_runnable(*it, rdma::OpStatus::ok);
      it = ready_waits_.erase(it);
      progressed = true;
    } else {
      ++it;
    }
  }
  return progressed;
}

void Scheduler::run() {
  Backoff backoff;
  while (live_ > 0) {
    if (!runnable_.empty()) {
      Fiber* f = runnable_.front();
      runnable_.pop_front();
      ++switches_;
      // A chain of always-runnable fibers never reaches the idle path below;
      // a periodic check keeps even that loop abortable on peer death
      // without taxing every switch.
      if ((switches_ & 63u) == 0) yield_check_();
      count(Op::fiber_switch);
      trace::emit(trace::EvClass::fiber, trace::EvPhase::begin, -1, f->id_);
      f->step(*this);
      if (f->done()) {
        --live_;
        trace::emit(trace::EvClass::fiber, trace::EvPhase::complete, -1,
                    f->id_);
      }
      backoff.reset();
      continue;
    }
    // Every fiber is parked. This is the engine's single suspension point:
    // yield_check keeps fault-kill semantics (a fleet abort unwinds out of
    // run()), and the backoff resets whenever a wakeup fired.
    yield_check_();
    if (poll_once()) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

}  // namespace fompi::fabric::progress

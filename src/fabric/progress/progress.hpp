// Progress engine: put-with-notification + per-rank fiber scheduler.
//
// Two pieces, both below the core (MPI window) layer so windows, apps and
// benches can all sit on them (see DESIGN.md §11):
//
//   * NotifyPlane — put-with-notification as a first-class op. Each rank
//     registers a ring of sequenced notification records; a producer
//     reserves a slot with one remote fetch-add, writes the record body
//     with a put, then commits it with an 8-byte stamp put. Consumers
//     drain ready records into a local queue and match them by tag, so
//     tag matching is decoupled from arrival order and ring slots free up
//     immediately. The ring generalizes the collectives' fixed 64-slot
//     data_seq plane: any capacity, overflow-to-retry against a published
//     read cursor, and typed OpStatus (peer_dead) instead of a hang when
//     the far side died.
//
//   * Scheduler + Fiber — suspend-on-wait overlap (the R2/ROLEX idiom,
//     with explicit continuation frames instead of stackful coroutines:
//     every fiber runs on its rank's own thread, so the engine is
//     TSan-clean and a context switch costs nanoseconds, not a sigmask
//     save). `await(handle)` parks the fiber on the op's modeled
//     completion deadline, `await_notify(tag)` on the notify plane,
//     `await_epoch()` on the NIC's quiesce deadline; the scheduler's
//     retire path makes them runnable again. A rank with N fibers keeps N
//     ops in flight while burning issue overhead only — no spin between
//     issue and completion. The single idle loop goes through the
//     fabric's yield_check, so fault kills unwind parked fleets with
//     typed statuses instead of hanging them.
//
// Continuation frames: a fiber's `step()` is re-entered at the last
// suspension point via a Duff's-device switch on `pc_`. All state that
// must survive a suspension lives in fiber members; at most one
// FOMPI_FIBER_* suspension per source line.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "rdma/nic.hpp"

namespace fompi::fabric {

class Fabric;

namespace progress {

class Scheduler;

/// Matches every tag in notify_probe / notify waits.
inline constexpr std::uint64_t kAnyNotifyTag = ~std::uint64_t{0};

/// One consumed notification: what the producer's put_notify carried.
struct NotifyRecord {
  std::uint64_t tag = 0;    ///< user tag the consumer matches on
  std::uint64_t seq = 0;    ///< position in the consumer's arrival order
  std::uint64_t tdisp = 0;  ///< displacement the producer wrote payload to
  std::uint32_t bytes = 0;  ///< payload length in bytes
  int source = -1;          ///< producing rank
};

/// Per-rank registered notification ring (wire format in DESIGN.md §11).
/// Construction is split: one thread creates the plane, every rank calls
/// attach() for its own ring, and the caller barriers before first use.
class NotifyPlane {
 public:
  NotifyPlane(Fabric& fabric, std::size_t capacity);
  ~NotifyPlane();
  NotifyPlane(const NotifyPlane&) = delete;
  NotifyPlane& operator=(const NotifyPlane&) = delete;

  /// Registers the calling rank's ring. Each rank calls once; barrier
  /// with the other ranks before posting or probing.
  void attach(int rank);

  std::size_t capacity() const noexcept { return cap_; }

  /// Blocking post of one record into `target`'s ring: reserve slot,
  /// wait for ring space (overflow-to-retry against the consumer's
  /// published read cursor), write body, stamp. Returns a typed status —
  /// peer_dead when the consumer died — instead of raising.
  rdma::OpStatus post(int me, int target, std::uint64_t tag,
                      std::uint64_t tdisp, std::uint32_t bytes);

  // --- producer steps decomposed for the fiber engine ----------------------
  // A fiber pipelines post() as: await(reserve_nb) -> [fits? else
  // await(cursor_nb) and retry] -> await(record_nb) -> await(stamp_nb).
  rdma::Handle reserve_nb(int me, int target, std::uint64_t* seq_out);
  rdma::Handle cursor_nb(int me, int target, std::uint64_t* cursor_out);
  /// True when `seq` fits the ring given the last observed read cursor.
  bool fits(std::uint64_t seq, std::uint64_t cursor) const noexcept {
    return seq - cursor < cap_;
  }
  rdma::Handle record_nb(int me, int target, std::uint64_t seq,
                         std::uint64_t tag, std::uint64_t tdisp,
                         std::uint32_t bytes);
  rdma::Handle stamp_nb(int me, int target, std::uint64_t seq);

  // --- consumer side (purely local) ----------------------------------------
  /// Drains ready ring slots, then consumes one record matching `tag`
  /// (kAnyNotifyTag matches all). Nonblocking.
  bool probe(int me, std::uint64_t tag, NotifyRecord* out);
  /// Blocks until >= 1 matching records arrived; consumes up to `max` of
  /// them. With `source >= 0` the wait is typed: if that rank dies the
  /// call returns 0 with *status = peer_dead (or raises when `status` is
  /// null) instead of hanging. Suspension goes through yield_check.
  std::size_t waitsome(int me, std::uint64_t tag, NotifyRecord* out,
                       std::size_t max, int source = -1,
                       rdma::OpStatus* status = nullptr);

  /// True once `rank` was killed by the fault plan (death-epoch gated).
  bool source_dead(int rank) const;

  // --- diagnostics (tests) -------------------------------------------------
  /// Records reserved in my ring by producers so far (local read).
  std::uint64_t reserved(int me) const;
  /// Records this rank drained out of its ring so far.
  std::uint64_t consumed(int me) const;

 private:
  friend class Scheduler;
  struct RankRing;

  bool drain(int me);  // ring -> pending deque; true if any record moved
  std::size_t match(int me, std::uint64_t tag, NotifyRecord* out,
                    std::size_t max);
  rdma::Nic& nic(int me);

  Fabric& fabric_;
  std::size_t cap_ = 0;
  int nranks_ = 0;
  std::vector<std::unique_ptr<RankRing>> rings_;
  // Producer-side cache of each target's read cursor, indexed
  // me * nranks + target; only thread `me` touches its row, so the common
  // non-full post skips the remote cursor read entirely.
  std::vector<std::uint64_t> cursor_cache_;
};

/// Base class for continuation-frame fibers. Subclasses implement step()
/// with the FOMPI_FIBER_* macros and keep suspension-surviving state in
/// members. wake_status()/wake_record() hold the result of the await the
/// fiber just resumed from.
class Fiber {
 public:
  virtual ~Fiber() = default;
  bool done() const noexcept { return done_; }
  /// Status of the op/notify the fiber last awaited (ok, or typed —
  /// peer_dead etc. — when it failed).
  rdma::OpStatus wake_status() const noexcept { return wake_status_; }
  /// Record delivered by the await_notify the fiber last resumed from.
  const NotifyRecord& wake_record() const noexcept { return wake_record_; }

 protected:
  /// One quantum: runs until the next FOMPI_FIBER_* suspension or the end.
  virtual void step(Scheduler& s) = 0;
  /// Polled while parked by FOMPI_FIBER_AWAIT_READY; return true to wake.
  /// Must be cheap and callable repeatedly from the scheduler idle loop.
  virtual bool poll_ready() { return true; }
  void finish() noexcept { done_ = true; }
  int pc_ = 0;  ///< continuation frame resume point (macro-managed)

 private:
  friend class Scheduler;
  rdma::OpStatus wake_status_ = rdma::OpStatus::ok;
  NotifyRecord wake_record_{};
  std::uint32_t id_ = 0;
  bool done_ = false;
};

/// Per-rank cooperative scheduler. Owns its fibers; run() executes until
/// every fiber finished. Completion is pull-based (the simulated NIC has
/// no background thread), so parked handle-waiters sit on a min-heap
/// keyed by the op's modeled completion deadline and the idle loop
/// retires the due ones — O(log n) per wakeup, no per-op spin.
class Scheduler {
 public:
  /// Fabric-integrated: suspension points run ctx-equivalent yield_check,
  /// so a fleet abort unwinds out of run().
  Scheduler(Fabric& fabric, int rank);
  /// Raw-domain form (benches without a fabric): `yield_check` is invoked
  /// on every idle iteration and must provide equivalent abort semantics.
  Scheduler(rdma::Nic& nic, std::function<void()> yield_check);

  /// Constructs and adopts a fiber; runnable immediately. Valid to call
  /// from inside a running fiber. The reference stays valid until the
  /// scheduler is destroyed.
  template <class F, class... Args>
  F& spawn(Args&&... args) {
    auto f = std::make_unique<F>(std::forward<Args>(args)...);
    F& ref = *f;
    adopt(std::move(f));
    return ref;
  }
  Fiber& adopt(std::unique_ptr<Fiber> fiber);

  /// Runs until every adopted fiber is done. The only blocking point is
  /// the internal idle loop (yield_check + deadline/notify/ready polling
  /// with reset-on-progress backoff).
  void run();

  std::size_t switches() const noexcept { return switches_; }
  std::size_t live() const noexcept { return live_; }
  rdma::Nic& nic() noexcept { return nic_; }
  int rank() const noexcept { return nic_.rank(); }

  // --- suspension hooks (called by the FOMPI_FIBER_* macros) ---------------
  void await_handle(Fiber& f, rdma::Handle h);
  void await_epoch(Fiber& f);
  void await_notify(Fiber& f, NotifyPlane& plane, std::uint64_t tag,
                    int source);
  void await_ready(Fiber& f);
  void await_yield(Fiber& f);
  /// Parks the fiber for `delay_ns` wall nanoseconds on the deadline heap —
  /// a fiber-native backoff for retry loops (scrub re-reads, routing
  /// re-fetches), so a waiting fiber never raw-spins: the scheduler's idle
  /// loop (and its yield_check) stays the engine's single suspension point.
  void await_backoff(Fiber& f, std::uint64_t delay_ns);

 private:
  struct HandleWait {
    std::uint64_t deadline;
    Fiber* fiber;
    rdma::Handle handle;  // kDoneHandle marks an epoch (gsync) wait
    bool epoch;
    bool sleep = false;  // pure timed backoff: wake with ok at deadline
  };
  struct NotifyWait {
    Fiber* fiber;
    NotifyPlane* plane;
    std::uint64_t tag;
    int source;
  };

  void make_runnable(Fiber* f, rdma::OpStatus st);
  bool poll_once();
  void heap_push(HandleWait w);
  HandleWait heap_pop();

  rdma::Nic& nic_;
  std::function<void()> yield_check_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::deque<Fiber*> runnable_;
  std::vector<HandleWait> heap_;  // min-heap by deadline
  std::vector<NotifyWait> notify_waits_;
  std::vector<Fiber*> ready_waits_;
  std::size_t live_ = 0;
  std::size_t switches_ = 0;
  std::uint32_t next_id_ = 0;
  std::uint64_t now_cache_ = 0;  ///< last poll_once clock read (see .cpp)
};

}  // namespace progress
}  // namespace fompi::fabric

// --- continuation-frame macros ----------------------------------------------
// Usage:
//   void step(Scheduler& s) override {
//     FOMPI_FIBER_BEGIN();
//     ... h_ = nic.put_nb(...);
//     FOMPI_FIBER_AWAIT(s, h_);          // suspends; resumes here
//     if (wake_status() != rdma::OpStatus::ok) { ... }
//     FOMPI_FIBER_END();
//   }
// Rules: one FOMPI_FIBER_* suspension per source line; no locals alive
// across a suspension (keep them as members); code before
// FOMPI_FIBER_BEGIN() runs on every re-entry.
#define FOMPI_FIBER_BEGIN() \
  switch (this->pc_) {      \
    case 0:

#define FOMPI_FIBER_SUSPEND_(call) \
  do {                             \
    this->pc_ = __LINE__;          \
    call;                          \
    return;                        \
    case __LINE__:;                \
  } while (0)

/// Parks the fiber until explicit handle `h` retires; wake_status() holds
/// the typed result.
#define FOMPI_FIBER_AWAIT(s, h) \
  FOMPI_FIBER_SUSPEND_((s).await_handle(*this, (h)))
/// Parks until every op this rank issued so far completed (gsync).
#define FOMPI_FIBER_AWAIT_EPOCH(s) \
  FOMPI_FIBER_SUSPEND_((s).await_epoch(*this))
/// Parks until a record matching `tag` arrives on `plane` (wake_record()),
/// or `source` (>= 0) dies (wake_status() == peer_dead).
#define FOMPI_FIBER_AWAIT_NOTIFY(s, plane, tag, source) \
  FOMPI_FIBER_SUSPEND_((s).await_notify(*this, (plane), (tag), (source)))
/// Parks until this->poll_ready() returns true.
#define FOMPI_FIBER_AWAIT_READY(s) \
  FOMPI_FIBER_SUSPEND_((s).await_ready(*this))
/// Parks for `ns` wall nanoseconds (fiber-native backoff; no raw spin).
#define FOMPI_FIBER_BACKOFF(s, ns) \
  FOMPI_FIBER_SUSPEND_((s).await_backoff(*this, (ns)))
/// Cooperative reschedule: goes to the back of the runnable queue.
#define FOMPI_FIBER_YIELD(s) \
  FOMPI_FIBER_SUSPEND_((s).await_yield(*this))

#define FOMPI_FIBER_END() \
  }                       \
  this->finish();

// The thread-per-rank runtime.
//
// A Fabric plays the role of the machine: it owns the RDMA domain (NICs +
// registration), the collectives context and the two-sided messaging state.
// run_ranks() spawns one OS thread per simulated MPI process and hands each
// a RankCtx. If any rank throws, the fabric aborts: every spinning peer
// notices and unwinds, the first exception is rethrown to the caller —
// so a failing test reports an error instead of deadlocking the suite.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fabric/collectives.hpp"
#include "fabric/p2p.hpp"
#include "rdma/nic.hpp"

namespace fompi::fabric {

struct FabricOptions {
  rdma::DomainConfig domain{};
  std::size_t eager_threshold = 8192;
  /// MPI_ERRORS_RETURN analogue at fleet scope: a rank killed by the fault
  /// plan exits its thread quietly (liveness table updated) instead of
  /// aborting the fleet; surviving ranks observe the death as typed
  /// peer_dead failures. Default (false) keeps errors-are-fatal: any rank
  /// death aborts everyone.
  bool errors_return = false;
  /// Hang watchdog: if nonzero, any spin that reaches check_abort() after
  /// this many wall nanoseconds since fabric construction aborts the fleet
  /// with ErrClass::timeout. Catches silently hung ranks (e.g.
  /// FaultPlan::hang_instead_of_kill) that never throw. 0 = disabled.
  std::uint64_t hang_timeout_ns = 0;
  /// Collective-layer tuning (flat-fallback cutoff, alltoall protocol
  /// switch); the default keeps tiny single-node payloads on the
  /// shared-memory path and everything else on the put/notify trees.
  CollConfig coll{};
};

class Fabric {
 public:
  explicit Fabric(FabricOptions opts);

  int nranks() const noexcept { return domain_.nranks(); }
  rdma::Domain& domain() noexcept { return domain_; }
  Collectives& coll() noexcept { return *coll_; }
  P2P& p2p() noexcept { return *p2p_; }
  const FabricOptions& options() const noexcept { return opts_; }

  /// Records the first failure and wakes all spinners. Const because the
  /// hang watchdog fires from check_abort() on any spinning rank.
  void abort(std::exception_ptr e) const noexcept;
  /// Throws if a peer rank has failed.
  void check_abort() const;
  /// One spin iteration: yield, then propagate peer failure if any.
  void yield_check() const;
  /// The first recorded failure (null if none). Safe to call after all
  /// rank threads joined.
  std::exception_ptr first_error() const;

  /// Recovery-coordinator election over the fail-stop liveness table: the
  /// lowest rank still alive (-1 when the whole fleet is dead). Deaths only
  /// remove ranks, so the result is monotone nondecreasing over time — a
  /// rank that observes itself elected while a reconfiguration is in flight
  /// knows the previous coordinator (a strictly lower rank) must be dead.
  int lowest_alive() const noexcept;

  /// Named extension slot with fabric lifetime (e.g. the symmetric heap of
  /// the RMA layer). Returns a reference guarded by an internal mutex; use
  /// ext_get/ext_put for thread-safe access.
  std::shared_ptr<void> ext_get(const std::string& key) const;
  /// Stores `value` under `key` unless the key is already set; returns the
  /// value now stored (first writer wins).
  std::shared_ptr<void> ext_put_once(const std::string& key,
                                     std::shared_ptr<void> value);

 private:
  FabricOptions opts_;
  rdma::Domain domain_;
  std::unique_ptr<Collectives> coll_;
  std::unique_ptr<P2P> p2p_;
  mutable std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  mutable std::exception_ptr first_error_;
  std::uint64_t watchdog_deadline_ns_ = 0;  // 0 = watchdog off
  mutable std::mutex ext_mu_;
  std::unordered_map<std::string, std::shared_ptr<void>> ext_;
};

/// Per-rank execution context handed to the rank body. Thin convenience
/// facade over the fabric's services.
class RankCtx {
 public:
  RankCtx(Fabric& fabric, int rank)
      : fabric_(fabric), rank_(rank), nic_(fabric.domain().nic(rank)) {}

  int rank() const noexcept { return rank_; }
  int nranks() const noexcept { return fabric_.nranks(); }
  Fabric& fabric() noexcept { return fabric_; }
  rdma::Nic& nic() noexcept { return nic_; }

  // Collectives.
  void barrier() { fabric_.coll().barrier(rank_); }
  template <class T>
  void bcast(int root, T* data, std::size_t n) {
    fabric_.coll().bcast(rank_, root, data, n);
  }
  template <class T>
  void allgather(const T* src, std::size_t n, T* dst) {
    fabric_.coll().allgather(rank_, src, n, dst);
  }
  template <class T, class BinOp>
  void allreduce(const T* src, T* dst, std::size_t n, BinOp op) {
    fabric_.coll().allreduce(rank_, src, dst, n, op);
  }

  // Two-sided messaging.
  void send(int dst, int tag, const void* buf, std::size_t len) {
    fabric_.p2p().send(rank_, dst, tag, buf, len);
  }
  void recv(int src, int tag, void* buf, std::size_t cap,
            Status* st = nullptr) {
    fabric_.p2p().recv(rank_, src, tag, buf, cap, st);
  }

  /// One polite spin iteration (yields; throws on peer failure).
  void yield_check() const { fabric_.yield_check(); }

 private:
  Fabric& fabric_;
  int rank_;
  rdma::Nic& nic_;
};

/// Runs `body` on `nranks` concurrent rank threads over a fresh fabric.
/// Rethrows the first rank failure after all threads joined.
void run_ranks(int nranks, const std::function<void(RankCtx&)>& body,
               FabricOptions opts = {});

}  // namespace fompi::fabric

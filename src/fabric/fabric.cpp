#include "fabric/fabric.hpp"

#include <cstdio>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timing.hpp"
#include "trace/trace.hpp"

namespace fompi::fabric {

Fabric::Fabric(FabricOptions opts) : opts_(opts), domain_(opts.domain) {
  if (opts_.hang_timeout_ns != 0) {
    watchdog_deadline_ns_ = now_ns() + opts_.hang_timeout_ns;
  }
  coll_ = std::make_unique<Collectives>(domain_, [this] { yield_check(); },
                                        opts_.coll);
  p2p_ = std::make_unique<P2P>(domain_, [this] { yield_check(); },
                               opts_.eager_threshold);
  // NIC model-time completion spins (wait/gsync) poll this hook so a peer
  // failure aborts the spin instead of hanging the fleet (CLAUDE.md rule).
  domain_.set_progress_hook(
      [](void* self) { static_cast<const Fabric*>(self)->check_abort(); },
      this);
}

std::exception_ptr Fabric::first_error() const {
  std::scoped_lock lock(abort_mu_);
  return first_error_;
}

int Fabric::lowest_alive() const noexcept {
  for (int r = 0; r < domain_.nranks(); ++r) {
    if (domain_.alive(r)) return r;
  }
  return -1;
}

std::shared_ptr<void> Fabric::ext_get(const std::string& key) const {
  std::scoped_lock lock(ext_mu_);
  const auto it = ext_.find(key);
  return it == ext_.end() ? nullptr : it->second;
}

std::shared_ptr<void> Fabric::ext_put_once(const std::string& key,
                                           std::shared_ptr<void> value) {
  std::scoped_lock lock(ext_mu_);
  auto [it, inserted] = ext_.try_emplace(key, std::move(value));
  return it->second;
}

void Fabric::abort(std::exception_ptr e) const noexcept {
  {
    std::scoped_lock lock(abort_mu_);
    if (first_error_ == nullptr) first_error_ = e;
  }
  aborted_.store(true, std::memory_order_release);
}

void Fabric::check_abort() const {
  // Hang watchdog: every spinning rank funnels through here (yield_check
  // and the NIC progress hook), so a silently hung peer — one that never
  // throws — still gets the fleet unwound with a typed timeout.
  if (watchdog_deadline_ns_ != 0 &&
      !aborted_.load(std::memory_order_relaxed) &&
      now_ns() > watchdog_deadline_ns_) {
    abort(std::make_exception_ptr(
        Error(ErrClass::timeout, "fabric hang watchdog expired")));
  }
  if (aborted_.load(std::memory_order_acquire)) {
    raise(ErrClass::internal, "aborted: a peer rank failed");
  }
}

void Fabric::yield_check() const {
  std::this_thread::yield();
  check_abort();
}

void run_ranks(int nranks, const std::function<void(RankCtx&)>& body,
               FabricOptions opts) {
  FOMPI_REQUIRE(nranks >= 1, ErrClass::arg, "run_ranks needs >= 1 rank");
  opts.domain.nranks = nranks;
  Fabric fabric(opts);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&fabric, &body, r] {
      // Flight recorder: while a TraceSession is active, each rank thread
      // records into its own ring (unbound threads pay a single branch).
      trace::TraceSession* ts = trace::TraceSession::active();
      if (ts != nullptr && r < ts->nranks()) trace::bind_thread(&ts->ring(r));
      RankCtx ctx(fabric, r);
      try {
        body(ctx);
      } catch (const RankKilledError&) {
        // A fault-plan kill is a *modeled* failure, not a bug: the NIC
        // already marked the rank dead in the liveness table. Under
        // errors_return the survivors keep running and observe the death
        // as typed peer_dead statuses; otherwise it aborts the fleet like
        // any other failure.
        if (!fabric.options().errors_return) {
          fabric.abort(std::current_exception());
        }
      } catch (...) {
        fabric.abort(std::current_exception());
      }
      trace::bind_thread(nullptr);
    });
  }
  for (auto& t : threads) t.join();

  if (std::exception_ptr e = fabric.first_error()) {
    // A rank failed (or a killed peer aborted the fleet through
    // yield_check): dump the flight-recorder rings post-mortem so the hang
    // leaves evidence of what every rank was doing.
    if (trace::TraceSession* ts = trace::TraceSession::active()) {
      const std::string path = ts->write_postmortem();
      if (!path.empty()) {
        std::fprintf(stderr,
                     "[fompi] fleet abort: flight-recorder trace dumped to "
                     "%s (%llu events, %llu dropped)\n",
                     path.c_str(),
                     static_cast<unsigned long long>(ts->total_events()),
                     static_cast<unsigned long long>(ts->total_dropped()));
      }
    }
    std::rethrow_exception(e);
  }
}

}  // namespace fompi::fabric

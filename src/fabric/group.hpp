// Process groups: ordered sets of world ranks, used by the general active
// target synchronization (PSCW) calls and by communicator-like contexts.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "common/error.hpp"

namespace fompi::fabric {

class Group {
 public:
  Group() = default;
  Group(std::initializer_list<int> ranks) : ranks_(ranks) { validate(); }
  explicit Group(std::vector<int> ranks) : ranks_(std::move(ranks)) {
    validate();
  }

  /// Group {0, 1, ..., n-1}.
  static Group world(int n) {
    std::vector<int> r(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) r[static_cast<std::size_t>(i)] = i;
    return Group(std::move(r));
  }

  int size() const noexcept { return static_cast<int>(ranks_.size()); }
  int at(int i) const { return ranks_.at(static_cast<std::size_t>(i)); }
  bool contains(int rank) const noexcept {
    return std::find(ranks_.begin(), ranks_.end(), rank) != ranks_.end();
  }
  const std::vector<int>& ranks() const noexcept { return ranks_; }

  auto begin() const noexcept { return ranks_.begin(); }
  auto end() const noexcept { return ranks_.end(); }

 private:
  void validate() const {
    for (int r : ranks_) {
      FOMPI_REQUIRE(r >= 0, ErrClass::rank, "group rank must be nonnegative");
    }
    auto sorted = ranks_;
    std::sort(sorted.begin(), sorted.end());
    FOMPI_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  ErrClass::arg, "group contains a duplicate rank");
  }

  std::vector<int> ranks_;
};

}  // namespace fompi::fabric

// Two-sided message passing over the RDMA substrate: the "MPI-1" baseline.
//
// The paper's motivation section explains why message passing over RDMA
// costs more than native RMA: tag matching, the eager protocol's extra copy
// for small messages, and the rendezvous protocol's synchronization for
// large ones. This module implements exactly those mechanisms so the
// baseline exhibits the structural overheads the paper measures:
//   * eager (len <= eager_threshold): the payload is copied into the
//     receiver's unexpected queue (or directly into a matching posted
//     receive); the sender completes locally.
//   * rendezvous (len > threshold, and all synchronous sends): the payload
//     stays at the sender until the receiver matches, then moves in one
//     copy; the sender blocks until matched (RTS/CTS handshake).
// Matching follows MPI ordering: per (source, tag) pairs are matched in
// program order; wildcards kAnySource / kAnyTag are supported.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "rdma/nic.hpp"

namespace fompi::fabric {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t len = 0;
};

namespace detail {
struct ReqState {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> ready_at{0};  // modeled arrival time (ns)
  std::atomic<bool> truncated{false};
  Status status{};
};
}  // namespace detail

/// Completion handle for nonblocking sends/receives.
class P2PRequest {
 public:
  P2PRequest() = default;
  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class P2P;
  std::shared_ptr<detail::ReqState> state_;
};

class P2P {
 public:
  P2P(rdma::Domain& domain, std::function<void()> yield_check,
      std::size_t eager_threshold);

  std::size_t eager_threshold() const noexcept { return eager_threshold_; }

  // --- blocking --------------------------------------------------------------
  void send(int me, int dst, int tag, const void* buf, std::size_t len);
  /// Synchronous send: completes only once the receiver matched it.
  void ssend(int me, int dst, int tag, const void* buf, std::size_t len);
  void recv(int me, int src, int tag, void* buf, std::size_t cap,
            Status* st = nullptr);
  /// Combined send+recv (deadlock-free pairwise exchange).
  void sendrecv(int me, int dst, int stag, const void* sbuf, std::size_t slen,
                int src, int rtag, void* rbuf, std::size_t rcap,
                Status* st = nullptr);

  // --- nonblocking -------------------------------------------------------------
  P2PRequest isend(int me, int dst, int tag, const void* buf, std::size_t len);
  P2PRequest issend(int me, int dst, int tag, const void* buf,
                    std::size_t len);
  P2PRequest irecv(int me, int src, int tag, void* buf, std::size_t cap);
  bool test(P2PRequest& req, Status* st = nullptr);
  void wait(P2PRequest& req, Status* st = nullptr);
  void waitall(std::vector<P2PRequest>& reqs);

  /// Nonblocking probe of the unexpected queue.
  bool iprobe(int me, int src, int tag, Status* st = nullptr);

 private:
  struct Unexpected {
    int src;
    int tag;
    std::size_t len;
    std::uint64_t arrive_at;                  // not matchable before this
    std::vector<std::byte> payload;           // eager payload
    const void* sender_buf = nullptr;         // rendezvous source
    std::shared_ptr<detail::ReqState> sender; // rendezvous completion
  };

  struct Posted {
    int src;
    int tag;
    void* buf;
    std::size_t cap;
    std::shared_ptr<detail::ReqState> state;
  };

  struct alignas(64) Mailbox {
    std::mutex mu;
    std::deque<Unexpected> unexpected;
    std::deque<Posted> posted;
  };

  bool matches(const Posted& p, int src, int tag) const noexcept {
    return (p.src == kAnySource || p.src == src) &&
           (p.tag == kAnyTag || p.tag == tag);
  }
  bool matches(const Unexpected& u, int src, int tag,
               std::uint64_t now) const noexcept {
    return (src == kAnySource || u.src == src) &&
           (tag == kAnyTag || u.tag == tag) && u.arrive_at <= now;
  }

  std::uint64_t model_now() const noexcept;
  double eager_latency_ns(int me, int dst, std::size_t len) const;
  double rndv_latency_ns(int me, int dst, std::size_t len) const;

  void deposit(int me, int dst, int tag, const void* buf, std::size_t len,
               bool synchronous, const std::shared_ptr<detail::ReqState>& sreq);
  void complete_now(const std::shared_ptr<detail::ReqState>& st, int src,
                    int tag, std::size_t len, std::uint64_t ready_at,
                    bool truncated);
  /// Spins until the request completes, with exponential backoff. When
  /// `peer` is a valid rank, a fault-plan death of that peer raises a typed
  /// peer_dead error instead of spinning forever (-1 = unknown peer, e.g. a
  /// wildcard receive).
  void spin_until_done(detail::ReqState& st, int peer = -1);

  rdma::Domain& domain_;
  std::function<void()> yield_check_;
  std::size_t eager_threshold_;
  std::vector<std::unique_ptr<Mailbox>> mail_;
};

}  // namespace fompi::fabric

// Collective operations over the RDMA substrate.
//
// Window creation (Sec 2.2) needs Allgather/Allreduce/Bcast; the DSDE
// baselines (Sec 4.2) need Alltoall(v), Reduce_scatter and a nonblocking
// barrier; the FFT/MILC exchange loops (Sec 4.3/4.4) need a cheap
// re-drivable alltoallv/allreduce. foMPI layers on the host MPI's
// collectives; here they are built from scratch:
//   * synchronization (barrier / ibarrier) is a dissemination algorithm
//     whose O(log p) notification rounds are real 8-byte NIC puts, so the
//     modeled network time gives realistic collective latencies;
//   * the data plane is RMA-native: binomial-tree bcast/reduce,
//     recursive-doubling allreduce, Bruck allgather/alltoall, and a direct
//     put+arrival-counter alltoall(v) — all issued as real put/AMO NIC ops
//     (data put, gsync, then an 8-byte notify flag), charged under the
//     Gemini model, riding doorbell batching for the fan-out rounds;
//   * a two-tier hierarchy (DomainConfig::ranks_per_node) elects the first
//     rank of each node leader: members gather over the intra-node
//     transport, leaders run the inter-node tree, so round counts scale
//     with log(nodes), not log(ranks);
//   * on a single-node domain, tiny payloads keep the pointer-publication
//     fallback (the moral equivalent of XPMEM attach): peers copy directly
//     from the published source, charging a modeled intra-node copy cost;
//   * persistent plans (plan_alltoallv / plan_allreduce) front-load the
//     count/displacement exchange and landing registration once; run_*
//     re-drives only the data movement, allocation-free in steady state.
//
// Completion/overwrite protocol of the tree data plane: every data
// collective starts with a leading barrier. At the moment a rank exits a
// collective, every remote write TO that rank has been waited on (notify
// flag or arrival counter), and the leading barrier of the NEXT collective
// orders every rank's exit before any rank's new traffic — so landing
// regions and notify slots can be reused with no trailing barrier. Notify
// slots carry a per-rank monotonic sequence number (data_seq) that all
// ranks advance in lockstep, which disambiguates a slot's generations.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "rdma/nic.hpp"

namespace fompi::fabric {

/// Type-erased element-wise reduction: fn(ctx, acc, in, nelems, acc_left)
/// folds `in` into `acc` over `nelems` elements. `acc_left` tells the
/// combiner which operand is logically on the left (acc op in vs in op
/// acc), which is what keeps recursive-doubling results bit-identical on
/// every rank for non-commutative reductions.
struct Combiner {
  void (*fn)(void* ctx, void* acc, const void* in, std::size_t nelems,
             bool acc_left);
  void* ctx;
};

struct CollConfig {
  /// Per-block byte cutoff for the shared-memory flat fallback: on a
  /// single-node domain, data collectives at or below this size copy
  /// through published pointers (charging a modeled intra-node copy cost)
  /// instead of running the put/notify trees. 0 disables the fallback —
  /// every collective takes the RMA tree path (what forced-tree tests use).
  std::size_t flat_cutoff = 64;
  /// Alltoall protocol switch: blocks at or below this take the Bruck
  /// log-p algorithm (each block forwarded up to log p times); larger
  /// blocks go direct (p-1 puts + an AMO arrival counter).
  std::size_t bruck_cutoff = 1024;
  /// Bruck additionally requires at least this many ranks: below it, the
  /// direct path's single batched round (doorbell-chained puts at ~45 ns
  /// apiece) is cheaper than Bruck's log-p *sequential* put+notify rounds,
  /// both under the Gemini model and in host sync overhead. Lower it to 2
  /// to force Bruck (what the forced-Bruck tests do).
  int bruck_min_ranks = 64;
};

class Collectives;

/// Persistent alltoallv handle: counts, displacements, peer landing
/// offsets and the arrival-counter slot are captured once at plan time
/// (Collectives::plan_alltoallv, collective); run_alltoallv re-drives only
/// the puts + counter, allocation-free in steady state. All ranks share
/// one plan object (each holds a shared_ptr copy); drop the last reference
/// only at a point where no rank can still be inside run_alltoallv.
class AlltoallvPlan {
 public:
  AlltoallvPlan() = default;
  ~AlltoallvPlan();
  AlltoallvPlan(const AlltoallvPlan&) = delete;
  AlltoallvPlan& operator=(const AlltoallvPlan&) = delete;

  std::size_t esize() const noexcept { return esize_; }
  /// Elements this rank receives in total / from each source / at which
  /// element displacement (fixed at plan time).
  std::uint64_t total_recv(int rank) const {
    return pr_[static_cast<std::size_t>(rank)].total_recv;
  }
  const std::vector<std::uint64_t>& recvcounts(int rank) const {
    return pr_[static_cast<std::size_t>(rank)].recvcounts;
  }
  const std::vector<std::uint64_t>& rdispls(int rank) const {
    return pr_[static_cast<std::size_t>(rank)].rdispls;
  }

 private:
  friend class Collectives;
  /// Landing layout: the 8-byte arrival counter lives at offset 0; payload
  /// data starts at kDataOff (own cache line, no false sharing with the
  /// counter word peers AMO on).
  static constexpr std::size_t kDataOff = kCacheLine;

  struct PerRank {
    AlignedBuffer landing;
    std::vector<std::uint64_t> sendcounts, sdispls, put_displ;
    std::vector<std::uint64_t> recvcounts, rdispls;
    std::uint64_t total_recv = 0;
    std::uint64_t ctr_expected = 0;
    /// Byte stride of one parity bank (uniform across ranks — max-reduced
    /// at plan time so senders can address any receiver's bank) and the
    /// run generation whose low bit selects the bank.
    std::size_t bank_bytes = 0;
    std::uint64_t run_seq = 0;
  };
  rdma::Domain* domain_ = nullptr;
  std::size_t esize_ = 0;
  std::vector<PerRank> pr_;
  std::vector<rdma::RegionDesc> desc_;
};

/// Persistent allreduce handle: per-rank landing regions for the
/// recursive-doubling rounds are sized and registered once at plan time;
/// run_allreduce re-drives the exchange allocation-free. The element-wise
/// op is supplied per run (the plan captures only geometry).
class AllreducePlan {
 public:
  AllreducePlan() = default;
  ~AllreducePlan();
  AllreducePlan(const AllreducePlan&) = delete;
  AllreducePlan& operator=(const AllreducePlan&) = delete;

  std::size_t nelems() const noexcept { return nelems_; }
  std::size_t esize() const noexcept { return esize_; }

 private:
  friend class Collectives;
  struct PerRank {
    AlignedBuffer landing;
  };
  rdma::Domain* domain_ = nullptr;
  std::size_t nelems_ = 0, esize_ = 0;
  std::vector<PerRank> pr_;
  std::vector<rdma::RegionDesc> desc_;
};

class Collectives {
 public:
  /// `yield_check` is invoked on every spin iteration; it must yield and
  /// may throw to abort a collective when a peer has failed.
  Collectives(rdma::Domain& domain, std::function<void()> yield_check,
              CollConfig cfg = {});
  ~Collectives();

  int nranks() const noexcept { return domain_.nranks(); }
  const CollConfig& config() const noexcept { return cfg_; }
  /// True when the two-tier (intra-node gather + inter-node tree) path is
  /// active for bcast/allreduce/allgather.
  bool hierarchical() const noexcept { return hier_; }

  /// Dissemination barrier: O(log p) rounds of remote 8-byte puts.
  void barrier(int rank);

  /// Nonblocking barrier (MPI_Ibarrier equivalent): at most one in flight
  /// per rank. Used by the NBX dynamic sparse data exchange protocol.
  void ibarrier_begin(int rank);
  bool ibarrier_test(int rank);

  // --- low-level data plane -------------------------------------------------
  /// Publishes this rank's source pointer for the current data collective.
  void publish(int rank, const void* p);
  /// Reads rank `r`'s published pointer (valid between the two barriers of
  /// a flat data collective).
  const void* peer_ptr(int r) const;

  // --- typed data collectives ----------------------------------------------
  template <class T>
  void bcast(int rank, int root, T* data, std::size_t n) {
    bcast_bytes(rank, root, data, n * sizeof(T));
  }

  /// Gathers n elements from every rank; dst must hold n * nranks().
  template <class T>
  void allgather(int rank, const T* src, std::size_t n, T* dst) {
    allgather_bytes(rank, src, n * sizeof(T), dst);
  }

  /// Element-wise reduction over all ranks; every rank computes the same
  /// (bit-identical) result. src and dst may not alias.
  template <class T, class BinOp>
  void allreduce(int rank, const T* src, T* dst, std::size_t n, BinOp op) {
    allreduce_bytes(rank, src, dst, n, sizeof(T), make_combiner<T>(op));
  }

  /// Rooted reduction: `root` receives the element-wise fold over all
  /// ranks in rank order; dst is only written at the root.
  template <class T, class BinOp>
  void reduce(int rank, int root, const T* src, T* dst, std::size_t n,
              BinOp op) {
    reduce_bytes(rank, root, src, dst, n, sizeof(T), make_combiner<T>(op));
  }

  /// Reduce-scatter with equal blocks: src holds nranks()*n elements; rank
  /// r receives the element-wise reduction of everyone's block r into dst
  /// (n elements).
  template <class T, class BinOp>
  void reduce_scatter_block(int rank, const T* src, T* dst, std::size_t n,
                            BinOp op) {
    reduce_scatter_block_bytes(rank, src, dst, n, sizeof(T),
                               make_combiner<T>(op));
  }

  /// Personalized all-to-all: src holds nranks()*n elements, block j going
  /// to rank j; dst receives block `rank` of every peer, in rank order.
  template <class T>
  void alltoall(int rank, const T* src, std::size_t n, T* dst) {
    alltoall_bytes(rank, src, n * sizeof(T), dst);
  }

  /// Vector all-to-all: rank j receives sendcounts[j] elements read from
  /// src + sdispls[j]. Resizes dst to the received total; recvcounts[j] /
  /// rdispls[j] describe where source j's elements landed in dst.
  template <class T>
  void alltoallv(int rank, const T* src, const std::uint64_t* sendcounts,
                 const std::uint64_t* sdispls, std::vector<T>& dst,
                 std::vector<std::uint64_t>& recvcounts,
                 std::vector<std::uint64_t>& rdispls) {
    const std::size_t p = static_cast<std::size_t>(nranks());
    recvcounts.resize(p);
    rdispls.resize(p);
    const std::uint64_t total = alltoallv_counts(
        rank, sendcounts, recvcounts.data(), rdispls.data(), sizeof(T));
    dst.resize(total);
    alltoallv_put(rank, src, sendcounts, sdispls, sizeof(T), dst.data(),
                  recvcounts.data(), rdispls.data());
  }

  // --- byte-level engine ----------------------------------------------------
  // The typed templates above are thin wrappers over these. Block/element
  // sizes must agree across ranks (branch selection is size-derived).
  void bcast_bytes(int rank, int root, void* data, std::size_t nbytes);
  void reduce_bytes(int rank, int root, const void* src, void* dst,
                    std::size_t nelems, std::size_t esize, Combiner cb);
  void allreduce_bytes(int rank, const void* src, void* dst,
                       std::size_t nelems, std::size_t esize, Combiner cb);
  void reduce_scatter_block_bytes(int rank, const void* src, void* dst,
                                  std::size_t nelems, std::size_t esize,
                                  Combiner cb);
  void allgather_bytes(int rank, const void* src, std::size_t block_bytes,
                       void* dst);
  void alltoall_bytes(int rank, const void* src, std::size_t block_bytes,
                      void* dst);
  /// Phase 1 of alltoallv: exchanges per-peer element counts and assigns
  /// receive displacements (prefix sums, rank order); returns the total
  /// element count this rank will receive. Must be paired with the
  /// alltoallv_put that follows (it also exchanges where each peer wants
  /// this rank's data put). A nonzero `esize` additionally grows this
  /// rank's landing to the received total between the two handshake rounds
  /// — the only window with provably no put in flight toward it — which
  /// lets the paired alltoallv_put skip its leading barrier entirely.
  std::uint64_t alltoallv_counts(int rank, const std::uint64_t* sendcounts,
                                 std::uint64_t* recvcounts,
                                 std::uint64_t* rdispls,
                                 std::size_t esize = 0);
  /// Phase 2 of alltoallv: moves the payload with one put per nonzero
  /// destination plus an AMO arrival counter; dst must hold the total
  /// returned by the paired alltoallv_counts.
  void alltoallv_put(int rank, const void* src,
                     const std::uint64_t* sendcounts,
                     const std::uint64_t* sdispls, std::size_t esize,
                     void* dst, const std::uint64_t* recvcounts,
                     const std::uint64_t* rdispls);

  // --- persistent collectives ----------------------------------------------
  /// Collective. Captures counts/displacements, exchanges landing offsets,
  /// and registers a dedicated landing region per rank. Every rank must
  /// pass the same esize; counts may differ per rank.
  std::shared_ptr<AlltoallvPlan> plan_alltoallv(
      int rank, const std::uint64_t* sendcounts, const std::uint64_t* sdispls,
      std::size_t esize);
  /// Re-drives the planned exchange with no barrier at all: the landing
  /// has two parity banks (runs alternate) and a cumulative arrival
  /// counter, so a run is just batched puts + AMOs + one counter wait.
  /// Zero allocations in steady state.
  void run_alltoallv(int rank, AlltoallvPlan& plan, const void* src,
                     void* dst);

  /// Collective. Sizes and registers per-rank landing regions for an
  /// allreduce of nelems * esize bytes.
  std::shared_ptr<AllreducePlan> plan_allreduce(int rank, std::size_t nelems,
                                                std::size_t esize);
  void run_allreduce(int rank, AllreducePlan& plan, const void* src, void* dst,
                     Combiner cb);
  template <class T, class BinOp>
  void run_allreduce(int rank, AllreducePlan& plan, const T* src, T* dst,
                     BinOp op) {
    run_allreduce(rank, plan, static_cast<const void*>(src),
                  static_cast<void*>(dst), make_combiner<T>(op));
  }

  /// Builds a Combiner from a binary functor; `op` must outlive the call
  /// the Combiner is passed to (the typed wrappers keep it on the stack).
  template <class T, class BinOp>
  static Combiner make_combiner(BinOp& op) noexcept {
    return Combiner{&combine_thunk<T, BinOp>, &op};
  }

 private:
  static constexpr int kMaxRounds = 32;
  static constexpr std::size_t kFlagBytes = 8;
  /// Data-plane notify slots (8-byte words after the 2*kMaxRounds
  /// barrier/ibarrier words): tree/recursive-doubling rounds use slots
  /// [0, kMaxRounds); the non-power-of-two fold and the hierarchy phases
  /// get dedicated slots so no slot is written twice per collective.
  static constexpr int kDataSlots = 64;
  static constexpr int kSlotFoldPre = kMaxRounds;       // odd -> even fold
  static constexpr int kSlotFoldPost = kMaxRounds + 1;  // result back to odd
  static constexpr int kMaxIntra = 16;  // hierarchy cap on ranks per node
  static constexpr int kSlotIntraGather = kMaxRounds + 2;  // +member index
  static constexpr int kSlotIntraRel = kSlotIntraGather + kMaxIntra;
  /// 8-byte AMO arrival counter for the direct alltoall(v) path
  /// (cumulative, never reset; each rank tracks its expected total).
  static constexpr int kCtrWord = 2 * kMaxRounds + kDataSlots;

  struct alignas(kCacheLine) RankState {
    std::uint64_t barrier_gen = 0;
    std::uint64_t ib_gen = 0;
    int ib_round = 0;
    bool ib_notified = false;
    bool ib_active = false;
    /// Data-collective sequence number, advanced in lockstep on all ranks
    /// by every tree-path collective; stamps every notify-slot write.
    std::uint64_t data_seq = 0;
    /// Expected cumulative value of this rank's arrival counter.
    std::uint64_t ctr_expected = 0;
    /// Count-exchange plane generation (low bit selects the parity bank)
    /// and the expected cumulative totals of its two arrival counters.
    std::uint64_t cx_seq = 0;
    std::uint64_t cx_counts_expected = 0;
    std::uint64_t cx_displs_expected = 0;
    /// Landing bytes pre-sized by the last alltoallv_counts(esize != 0);
    /// consumed (and cleared) by the paired alltoallv_put, which then
    /// skips its leading barrier.
    std::size_t cx_presized = 0;
  };

  template <class T, class BinOp>
  static void combine_thunk(void* ctx, void* acc, const void* in,
                            std::size_t nelems, bool acc_left) {
    BinOp& op = *static_cast<BinOp*>(ctx);
    T* a = static_cast<T*>(acc);
    const T* b = static_cast<const T*>(in);
    if (acc_left) {
      for (std::size_t i = 0; i < nelems; ++i) a[i] = op(a[i], b[i]);
    } else {
      for (std::size_t i = 0; i < nelems; ++i) a[i] = op(b[i], a[i]);
    }
  }

  int rounds_() const noexcept;
  std::uint64_t load_flag(int rank, bool ib, int round) const;
  std::uint64_t load_word(int rank, int word) const;
  const std::uint64_t* ctr_word_ptr(int rank) const;

  /// Blocking 8-byte put of `seq` into `target`'s data notify slot.
  void put_slot(int rank, int target, int slot, std::uint64_t seq);
  /// Spins until this rank's data slot reaches `seq`; raises peer_dead if
  /// `writer` died with the flag still missing.
  void wait_slot(int rank, int slot, std::uint64_t seq, int writer);
  /// Spins until this rank's arrival counter reaches `target`. Counters
  /// aggregate all senders, so a missing increment cannot be attributed:
  /// any rank death aborts the collective (all ranks are participants).
  void wait_counter(int rank, const std::uint64_t* word,
                    std::uint64_t target);

  /// Grows (and re-registers) this rank's landing region. Only called
  /// before the leading barrier, so peers never see a stale descriptor.
  void ensure_landing(int rank, std::size_t bytes);
  std::byte* scratch_bytes(int rank, std::size_t bytes);
  /// Tree-collective prologue: landing growth, lockstep sequence bump,
  /// leading barrier.
  std::uint64_t enter_data(int rank, std::size_t landing_bytes);
  bool flat_path(std::size_t bytes) const noexcept;
  /// Models `nblocks` intra-node copies of `bytes` each (the flat
  /// fallback's data phase is never free under Injection::model).
  void charge_copies(int rank, std::size_t bytes, std::size_t nblocks);
  std::size_t allreduce_cap(std::size_t nbytes) const noexcept;

  // Tree/hierarchy cores (landing = this rank's land_mem_ unless stated).
  void bcast_tree(int rank, int root, void* data, std::size_t nbytes,
                  std::uint64_t seq);
  void bcast_hier(int rank, int root, void* data, std::size_t nbytes,
                  std::uint64_t seq);
  void reduce_tree(int rank, int root, const void* src, void* dst,
                   std::size_t nelems, std::size_t esize, Combiner cb,
                   std::uint64_t seq);
  void allgather_bruck(int rank, const void* src, std::size_t block,
                       void* dst, std::uint64_t seq);
  void allgather_hier(int rank, const void* src, std::size_t block, void* dst,
                      std::uint64_t seq);
  void alltoall_bruck(int rank, const void* src, std::size_t block, void* dst,
                      std::uint64_t seq);
  void alltoall_direct(int rank, const void* src, std::size_t block,
                       void* dst);
  /// Shared by the ad-hoc path and run_allreduce: flat recursive doubling
  /// or the two-tier gather/inter-RD/release, over the landing regions
  /// described by `descs` (my data area at `my_base`, remote offset
  /// `base_off`).
  void allreduce_core(int rank, const void* src, void* dst,
                      std::size_t nelems, std::size_t esize, Combiner cb,
                      const rdma::RegionDesc* descs, std::byte* my_base,
                      std::size_t base_off, std::uint64_t seq);
  /// Recursive doubling with the MPICH non-power-of-two fold over `nmemb`
  /// participants (participant i = rank i * stride); `land`/`land_off`
  /// locate the RD round area of this rank's landing.
  void rd_allreduce(int rank, int idx, int nmemb, int stride, std::byte* acc,
                    std::size_t nelems, std::size_t esize, Combiner cb,
                    const rdma::RegionDesc* descs, std::byte* land,
                    std::size_t land_off, std::uint64_t seq);
  /// Shared by the ad-hoc path and run_alltoallv: batched puts, gsync,
  /// batched counter AMOs, gsync, counter wait, landing -> dst copies.
  void alltoallv_put_core(int rank, const void* src,
                          const std::uint64_t* sendcounts,
                          const std::uint64_t* sdispls, std::size_t esize,
                          void* dst, const std::uint64_t* recvcounts,
                          const std::uint64_t* rdispls,
                          const std::uint64_t* put_displ,
                          const rdma::RegionDesc* descs, std::byte* my_data,
                          std::size_t base_off,
                          const rdma::RegionDesc* ctr_descs,
                          std::size_t ctr_off, const std::uint64_t* ctr_word,
                          std::uint64_t* ctr_expected);

  rdma::Domain& domain_;
  std::function<void()> yield_check_;
  CollConfig cfg_;
  int log2p_;
  // Topology (fixed at construction from DomainConfig::ranks_per_node).
  bool single_node_ = true;
  bool hier_ = false;
  int rpn_ = 1;     // ranks per node when hier_, else 1
  int nnodes_ = 1;  // nodes when hier_, else nranks
  /// Per-rank flag block: kMaxRounds barrier slots + kMaxRounds ibarrier
  /// slots + kDataSlots data notify slots + the arrival counter, each an
  /// 8-byte word, registered for remote puts/AMOs.
  std::vector<AlignedBuffer> flag_mem_;
  std::vector<rdma::RegionDesc> flag_desc_;
  /// Per-rank growable landing region for the tree data plane (grown only
  /// in enter_data, before the leading barrier).
  std::vector<AlignedBuffer> land_mem_;
  std::vector<rdma::RegionDesc> land_desc_;
  /// Per-rank local scratch (reduce accumulator, Bruck working buffer).
  std::vector<AlignedBuffer> scratch_;
  std::vector<std::vector<rdma::Frag>> frag_scratch_;
  /// Per-rank map peer -> element displacement where that peer wants this
  /// rank's alltoallv data (filled by alltoallv_counts).
  std::vector<std::vector<std::uint64_t>> put_displ_;
  /// Per-rank count-exchange plane: 4p slot words (counts and displs, each
  /// with two parity banks) plus two cumulative arrival counters, sized and
  /// registered once at construction (never regrown). Lets
  /// alltoallv_counts run both 8-byte exchanges with no barrier at all —
  /// see the protocol argument in its definition.
  std::vector<AlignedBuffer> cx_mem_;
  std::vector<rdma::RegionDesc> cx_desc_;
  std::vector<RankState> state_;
  std::vector<std::atomic<const void*>> published_;
  /// Rank 0's staging slot for collective plan creation (guarded by the
  /// surrounding barriers, not a lock).
  std::shared_ptr<void> plan_stage_;
};

}  // namespace fompi::fabric

// Collective operations over the RDMA substrate.
//
// Window creation (Sec 2.2) needs Allgather/Allreduce/Bcast; the DSDE
// baselines (Sec 4.2) need Alltoall, Reduce_scatter and a nonblocking
// barrier. foMPI layers on the host MPI's collectives; here they are built
// from scratch:
//   * synchronization (barrier / ibarrier) is a dissemination algorithm
//     whose O(log p) notification rounds are real 8-byte NIC puts, so the
//     modeled network time gives realistic collective latencies;
//   * the data plane uses pointer publication: since all simulated ranks
//     share one address space, each rank publishes its source buffer and
//     peers copy directly (the moral equivalent of XPMEM attach).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/buffer.hpp"
#include "rdma/nic.hpp"

namespace fompi::fabric {

class Collectives {
 public:
  /// `yield_check` is invoked on every spin iteration; it must yield and
  /// may throw to abort a collective when a peer has failed.
  Collectives(rdma::Domain& domain, std::function<void()> yield_check);

  int nranks() const noexcept { return domain_.nranks(); }

  /// Dissemination barrier: O(log p) rounds of remote 8-byte puts.
  void barrier(int rank);

  /// Nonblocking barrier (MPI_Ibarrier equivalent): at most one in flight
  /// per rank. Used by the NBX dynamic sparse data exchange protocol.
  void ibarrier_begin(int rank);
  bool ibarrier_test(int rank);

  // --- low-level data plane -------------------------------------------------
  /// Publishes this rank's source pointer for the current data collective.
  void publish(int rank, const void* p);
  /// Reads rank `r`'s published pointer (valid between the two barriers of
  /// a data collective).
  const void* peer_ptr(int r) const;

  // --- typed data collectives ----------------------------------------------
  template <class T>
  void bcast(int rank, int root, T* data, std::size_t n) {
    publish(rank, data);
    barrier(rank);
    if (rank != root) {
      const T* src = static_cast<const T*>(peer_ptr(root));
      std::copy(src, src + n, data);
    }
    barrier(rank);
  }

  /// Gathers n elements from every rank; dst must hold n * nranks().
  template <class T>
  void allgather(int rank, const T* src, std::size_t n, T* dst) {
    publish(rank, src);
    barrier(rank);
    for (int r = 0; r < nranks(); ++r) {
      const T* peer = static_cast<const T*>(peer_ptr(r));
      std::copy(peer, peer + n, dst + static_cast<std::size_t>(r) * n);
    }
    barrier(rank);
  }

  /// Element-wise reduction over all ranks; every rank computes the same
  /// result (deterministic rank-order reduction). src and dst may not alias.
  template <class T, class BinOp>
  void allreduce(int rank, const T* src, T* dst, std::size_t n, BinOp op) {
    publish(rank, src);
    barrier(rank);
    const T* first = static_cast<const T*>(peer_ptr(0));
    std::copy(first, first + n, dst);
    for (int r = 1; r < nranks(); ++r) {
      const T* peer = static_cast<const T*>(peer_ptr(r));
      for (std::size_t i = 0; i < n; ++i) dst[i] = op(dst[i], peer[i]);
    }
    barrier(rank);
  }

  /// Reduce-scatter with equal blocks: src holds nranks()*n elements; rank
  /// r receives the element-wise reduction of everyone's block r into dst
  /// (n elements).
  template <class T, class BinOp>
  void reduce_scatter_block(int rank, const T* src, T* dst, std::size_t n,
                            BinOp op) {
    publish(rank, src);
    barrier(rank);
    const std::size_t base = static_cast<std::size_t>(rank) * n;
    const T* first = static_cast<const T*>(peer_ptr(0));
    std::copy(first + base, first + base + n, dst);
    for (int r = 1; r < nranks(); ++r) {
      const T* peer = static_cast<const T*>(peer_ptr(r));
      for (std::size_t i = 0; i < n; ++i) dst[i] = op(dst[i], peer[base + i]);
    }
    barrier(rank);
  }

  /// Personalized all-to-all: src holds nranks()*n elements, block j going
  /// to rank j; dst receives block `rank` of every peer, in rank order.
  template <class T>
  void alltoall(int rank, const T* src, std::size_t n, T* dst) {
    publish(rank, src);
    barrier(rank);
    const std::size_t mine = static_cast<std::size_t>(rank) * n;
    for (int r = 0; r < nranks(); ++r) {
      const T* peer = static_cast<const T*>(peer_ptr(r));
      std::copy(peer + mine, peer + mine + n,
                dst + static_cast<std::size_t>(r) * n);
    }
    barrier(rank);
  }

 private:
  static constexpr int kMaxRounds = 32;

  struct alignas(kCacheLine) RankState {
    std::uint64_t barrier_gen = 0;
    std::uint64_t ib_gen = 0;
    int ib_round = 0;
    bool ib_notified = false;
    bool ib_active = false;
  };

  int rounds_() const noexcept;
  std::uint64_t load_flag(int rank, bool ib, int round) const;

  rdma::Domain& domain_;
  std::function<void()> yield_check_;
  int log2p_;
  /// Per-rank flag block: kMaxRounds barrier slots + kMaxRounds ibarrier
  /// slots, each an 8-byte generation word, registered for remote puts.
  std::vector<AlignedBuffer> flag_mem_;
  std::vector<rdma::RegionDesc> flag_desc_;
  std::vector<RankState> state_;
  std::vector<std::atomic<const void*>> published_;
};

}  // namespace fompi::fabric

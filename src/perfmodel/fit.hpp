// Least-squares fitting of the affine cost models from measured sweeps.
// bench_models uses this to print the Sec 3 coefficient table for this
// implementation next to the paper's values.
#pragma once

#include <cstddef>
#include <vector>

#include "perfmodel/cost_functions.hpp"

namespace fompi::perf {

struct Sample {
  double x;  ///< size in bytes (or process count, ...)
  double y;  ///< measured time in microseconds
};

struct FitResult {
  double intercept_us = 0;
  double slope_us_per_x = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Ordinary least squares y = a + b x.
FitResult fit_affine(const std::vector<Sample>& samples);

/// Fit y = a + b log2(x); returns slope in us per doubling.
FitResult fit_logarithmic(const std::vector<Sample>& samples);

}  // namespace fompi::perf

#include "perfmodel/fit.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fompi::perf {

namespace {

FitResult ols(const std::vector<Sample>& s) {
  FOMPI_REQUIRE(s.size() >= 2, ErrClass::arg, "fit needs >= 2 samples");
  const double n = static_cast<double>(s.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& p : s) {
    sx += p.x;
    sy += p.y;
    sxx += p.x * p.x;
    sxy += p.x * p.y;
  }
  const double denom = n * sxx - sx * sx;
  FitResult r;
  if (std::abs(denom) < 1e-12) {
    r.intercept_us = sy / n;
    r.slope_us_per_x = 0;
  } else {
    r.slope_us_per_x = (n * sxy - sx * sy) / denom;
    r.intercept_us = (sy - r.slope_us_per_x * sx) / n;
  }
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / n;
  for (const auto& p : s) {
    const double pred = r.intercept_us + r.slope_us_per_x * p.x;
    ss_res += (p.y - pred) * (p.y - pred);
    ss_tot += (p.y - mean_y) * (p.y - mean_y);
  }
  r.r2 = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return r;
}

}  // namespace

FitResult fit_affine(const std::vector<Sample>& samples) {
  return ols(samples);
}

FitResult fit_logarithmic(const std::vector<Sample>& samples) {
  std::vector<Sample> logged;
  logged.reserve(samples.size());
  for (const auto& s : samples) {
    FOMPI_REQUIRE(s.x > 0, ErrClass::arg, "log fit needs positive x");
    logged.push_back(Sample{std::log2(s.x), s.y});
  }
  return ols(logged);
}

}  // namespace fompi::perf

// The paper's parametrized performance models (Sec 3).
//
// Every critical foMPI function has a closed-form cost; the paper reports
// the fitted coefficients on Blue Waters:
//   P_put        = 0.16 ns/B * s + 1.0 us
//   P_get        = 0.17 ns/B * s + 1.9 us
//   P_acc,sum    = 28 ns/B  * s + 2.4 us
//   P_acc,min    = 0.8 ns/B * s + 7.3 us   (fallback protocol)
//   P_CAS        = 2.4 us
//   P_fence      = 2.9 us * log2(p)
//   P_post = P_complete = 350 ns * k ;  P_start = 0.7 us ; P_wait = 1.8 us
//   P_lock,excl  = 5.4 us ; P_lock,shrd = P_lock_all = 2.7 us
//   P_unlock     = P_unlock_all = 0.4 us ; P_flush = 76 ns ; P_sync = 17 ns
// These drive the discrete-event simulator for the scaling figures, and
// bench_models re-fits them from measurements of this implementation to
// compare shapes.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace fompi::perf {

/// One affine cost function: latency_us(s) = base_us + per_byte_ns * s / 1e3.
struct Affine {
  double base_us = 0;
  double per_byte_ns = 0;
  double us(std::size_t bytes) const noexcept {
    return base_us + per_byte_ns * static_cast<double>(bytes) / 1e3;
  }
  double ns(std::size_t bytes) const noexcept { return us(bytes) * 1e3; }
};

/// The paper's measured coefficients (Blue Waters, Cray XE6, Gemini).
struct PaperModel {
  Affine put{1.0, 0.16};
  Affine get{1.9, 0.17};
  Affine acc_sum{2.4, 28.0};
  Affine acc_min{7.3, 0.8};
  double cas_us = 2.4;
  double fence_per_log_us = 2.9;
  double post_per_neighbor_us = 0.35;
  double complete_per_neighbor_us = 0.35;
  double start_us = 0.7;
  double wait_us = 1.8;
  double lock_excl_us = 5.4;
  double lock_shrd_us = 2.7;
  double lock_all_us = 2.7;
  double unlock_us = 0.4;
  double flush_us = 0.076;
  double sync_us = 0.017;
  /// Message injection overheads (Sec 3.1.2).
  double inject_inter_us = 0.416;
  double inject_intra_us = 0.080;

  double fence_us(int nprocs) const noexcept {
    return nprocs <= 1 ? 0.0
                       : fence_per_log_us * std::log2(static_cast<double>(nprocs));
  }
  double pscw_round_us(int k) const noexcept {
    return post_per_neighbor_us * k + complete_per_neighbor_us * k +
           start_us + wait_us;
  }
  /// The paper's fence-vs-PSCW decision rule (Sec 6): PSCW wins while
  /// P_fence > P_post + P_complete + P_start + P_wait.
  bool pscw_beats_fence(int nprocs, int k) const noexcept {
    return fence_us(nprocs) > pscw_round_us(k);
  }
};

/// Per-call strategy chooser for the non-contiguous datatype path (Sec 2.4).
///
/// When the remote side of a transfer is one contiguous block, the origin
/// layout can either be shipped as a vectored NIC op (chained descriptors
/// behind one doorbell, `chain_ns` per extra fragment) or staged through a
/// pack/unpack buffer (one contiguous transfer plus a local copy of every
/// payload byte). Packing wins when fragments are small and numerous; the
/// vector wins when fragments are few or large. The constants mirror
/// rdma::NetworkModel::vec_chain_ns plus a memcpy-rate estimate, so the
/// choice tracks the modeled hardware rather than a fixed fragment-count
/// threshold.
struct DatatypePathModel {
  enum class Strategy : std::uint8_t { vectored, pack };

  double chain_ns = 45.0;        ///< per chained fragment beyond the first
  double pack_byte_ns = 0.25;    ///< local gather/scatter cost per byte
  double pack_setup_ns = 120.0;  ///< staging-buffer bookkeeping per call
  /// A packed get cannot unpack until the data lands, so it completes the
  /// transfer eagerly and forfeits communication overlap; require this
  /// margin before preferring it over a vectored get.
  double get_pack_bias = 4.0;

  double vectored_ns(std::size_t nfrags) const noexcept {
    return nfrags > 1 ? chain_ns * static_cast<double>(nfrags - 1) : 0.0;
  }
  double pack_ns(std::size_t payload_bytes) const noexcept {
    return pack_setup_ns + pack_byte_ns * static_cast<double>(payload_bytes);
  }

  /// Put with a contiguous target: gather-and-send vs chained fragments.
  Strategy choose_put(std::size_t nfrags,
                      std::size_t payload_bytes) const noexcept {
    return pack_ns(payload_bytes) < vectored_ns(nfrags) ? Strategy::pack
                                                        : Strategy::vectored;
  }
  /// Get with a contiguous target: fetch-and-unpack vs chained fragments.
  Strategy choose_get(std::size_t nfrags,
                      std::size_t payload_bytes) const noexcept {
    return pack_ns(payload_bytes) * get_pack_bias < vectored_ns(nfrags)
               ? Strategy::pack
               : Strategy::vectored;
  }
};

/// Baseline model knobs for the comparison curves (UPC/CAF/MPI-1-like),
/// expressed as deltas on top of the foMPI costs. The values reproduce the
/// relative positions measured in Figs 4-6: PGAS compilers add a constant
/// per-op overhead (shared-pointer translation), MPI-1 adds matching and
/// an eager copy, Cray's MPI-2.2 one sided adds a large per-op software
/// layer.
struct BaselineModel {
  double upc_extra_us = 1.2;       ///< Cray UPC put ~2.2us vs foMPI ~1.0us
  double caf_extra_us = 1.5;       ///< Fortran coarrays slightly above UPC
  double mpi1_match_us = 0.6;      ///< matching + synchronization overhead
  double mpi1_copy_ns_per_byte = 0.08;  ///< eager copy cost
  double mpi22_extra_us = 9.0;     ///< untuned one-sided software stack
  double upc_barrier_per_log_us = 2.0;
  double caf_sync_all_per_log_us = 8.0;
  double mpi22_fence_per_log_us = 6.0;
  double mpi22_pscw_base_us = 30.0;     ///< grows with p (Fig 6c)
  double mpi22_pscw_per_proc_ns = 80.0;
};

}  // namespace fompi::perf

#include "baselines/pgas.hpp"

#include <cmath>

#include "common/timing.hpp"
#include "perfmodel/cost_functions.hpp"

namespace fompi::baselines {

PgasConfig make_upc_like() {
  const perf::BaselineModel m;
  PgasConfig cfg;
  cfg.per_op_extra_us = m.upc_extra_us;
  cfg.barrier_round_factor = m.upc_barrier_per_log_us / 2.9;
  return cfg;
}

PgasConfig make_caf_like() {
  const perf::BaselineModel m;
  PgasConfig cfg;
  cfg.per_op_extra_us = m.caf_extra_us;
  cfg.barrier_round_factor = m.caf_sync_all_per_log_us / 2.9;
  return cfg;
}

SharedArray::SharedArray(fabric::RankCtx& ctx, std::size_t bytes_per_rank,
                         PgasConfig cfg)
    : fabric_(&ctx.fabric()),
      rank_(ctx.rank()),
      bytes_(bytes_per_rank),
      cfg_(cfg) {
  auto& coll = fabric_->coll();
  // Leader builds the block table; everyone registers its own block.
  struct Boot {
    std::shared_ptr<std::vector<AlignedBuffer>> blocks;
    std::shared_ptr<std::vector<rdma::RegionDesc>> descs;
  };
  Boot boot;
  if (rank_ == 0) {
    boot.blocks = std::make_shared<std::vector<AlignedBuffer>>();
    boot.descs = std::make_shared<std::vector<rdma::RegionDesc>>(
        static_cast<std::size_t>(ctx.nranks()));
    for (int r = 0; r < ctx.nranks(); ++r) {
      boot.blocks->emplace_back(bytes_per_rank);
    }
    coll.publish(0, &boot);
  }
  coll.barrier(rank_);
  if (rank_ != 0) {
    boot = *static_cast<const Boot*>(coll.peer_ptr(0));
  }
  coll.barrier(rank_);
  blocks_ = boot.blocks;
  descs_ = boot.descs;
  (*descs_)[static_cast<std::size_t>(rank_)] =
      fabric_->domain().registry().register_region(
          rank_, (*blocks_)[static_cast<std::size_t>(rank_)].data(), bytes_);
  coll.barrier(rank_);
}

void SharedArray::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  fabric_->domain().registry().deregister(
      (*descs_)[static_cast<std::size_t>(rank_)].rkey);
  ctx.barrier();
  blocks_.reset();
  descs_.reset();
}

void* SharedArray::local() noexcept {
  return (*blocks_)[static_cast<std::size_t>(rank_)].data();
}

void SharedArray::charge_overhead() const {
  const auto& cfg = fabric_->domain().config();
  if (cfg.inject == rdma::Injection::model && cfg_.per_op_extra_us > 0) {
    spin_for_ns(static_cast<std::uint64_t>(cfg_.per_op_extra_us * 1e3 *
                                           cfg.time_scale));
  }
}

void SharedArray::memput(int target, std::size_t off, const void* src,
                         std::size_t len) {
  charge_overhead();
  fabric_->domain().nic(rank_).put_nbi(
      target, (*descs_)[static_cast<std::size_t>(target)], off, src, len);
}

void SharedArray::memget(int target, std::size_t off, void* dst,
                         std::size_t len) {
  charge_overhead();
  fabric_->domain().nic(rank_).get_nbi(
      target, (*descs_)[static_cast<std::size_t>(target)], off, dst, len);
}

void SharedArray::fence() { fabric_->domain().nic(rank_).gsync(); }

void SharedArray::barrier() {
  fence();
  // Extra runtime rounds relative to the foMPI barrier are charged as
  // overhead before entering the same dissemination barrier.
  const auto& cfg = fabric_->domain().config();
  if (cfg.inject == rdma::Injection::model && cfg_.barrier_round_factor > 1) {
    const double extra_rounds =
        (cfg_.barrier_round_factor - 1.0) *
        std::log2(std::max(2, fabric_->nranks()));
    spin_for_ns(static_cast<std::uint64_t>(extra_rounds * 2.9e3 *
                                           cfg.time_scale));
  }
  fabric_->coll().barrier(rank_);
}

std::uint64_t SharedArray::amo_aadd(int target, std::size_t off,
                                    std::uint64_t v) {
  charge_overhead();
  return fabric_->domain().nic(rank_).amo(
      target, (*descs_)[static_cast<std::size_t>(target)], off,
      rdma::AmoOp::fetch_add, v);
}

std::uint64_t SharedArray::amo_acswap(int target, std::size_t off,
                                      std::uint64_t compare,
                                      std::uint64_t value) {
  charge_overhead();
  return fabric_->domain().nic(rank_).amo(
      target, (*descs_)[static_cast<std::size_t>(target)], off,
      rdma::AmoOp::cas, value, compare);
}

}  // namespace fompi::baselines

// "Cray MPI-2.2 one sided" comparator.
//
// The paper's figures show Cray's (at the time untuned) MPI-2.2 RMA with
// roughly 10x the small-message latency of foMPI, a fence that scales worse
// than a good dissemination barrier, and PSCW costs that grow with the
// process count. That implementation also ran over the Gemini hardware —
// its gap was software: a thick portability layer, per-op bookkeeping,
// lock-based progress. This comparator reproduces that behaviour by
// wrapping the foMPI-R window and charging the measured software overheads
// (perf::BaselineModel) on every operation; functional results are
// identical, timing matches the paper's curves in shape.
#pragma once

#include "core/window.hpp"
#include "perfmodel/cost_functions.hpp"

namespace fompi::baselines {

class Mpi22Win {
 public:
  /// Collective, like MPI_Win_create over existing memory.
  static Mpi22Win allocate(fabric::RankCtx& ctx, std::size_t bytes);
  void free();

  void* base() { return win_.base(); }
  int rank() const { return win_.rank(); }

  void put(const void* src, std::size_t len, int target, std::size_t tdisp);
  void get(void* dst, std::size_t len, int target, std::size_t tdisp);
  void accumulate(const void* origin, std::size_t count, Elem e, RedOp op,
                  int target, std::size_t tdisp);

  void fence();
  void post(const fabric::Group& g);
  void start(const fabric::Group& g);
  void complete();
  void wait();
  void lock(core::LockType t, int target);
  void unlock(int target);
  void flush(int target);

 private:
  explicit Mpi22Win(core::Win win, fabric::Fabric* fabric)
      : win_(std::move(win)), fabric_(fabric) {}
  void charge_us(double us) const;

  core::Win win_;
  fabric::Fabric* fabric_ = nullptr;
  perf::BaselineModel model_{};
};

}  // namespace fompi::baselines

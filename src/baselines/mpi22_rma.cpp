#include "baselines/mpi22_rma.hpp"

#include <cmath>

#include "common/timing.hpp"

namespace fompi::baselines {

Mpi22Win Mpi22Win::allocate(fabric::RankCtx& ctx, std::size_t bytes) {
  return Mpi22Win(core::Win::allocate(ctx, bytes), &ctx.fabric());
}

void Mpi22Win::free() { win_.free(); }

void Mpi22Win::charge_us(double us) const {
  const auto& cfg = fabric_->domain().config();
  if (cfg.inject == rdma::Injection::model && us > 0) {
    spin_for_ns(static_cast<std::uint64_t>(us * 1e3 * cfg.time_scale));
  }
}

void Mpi22Win::put(const void* src, std::size_t len, int target,
                   std::size_t tdisp) {
  charge_us(model_.mpi22_extra_us);
  win_.put(src, len, target, tdisp);
}

void Mpi22Win::get(void* dst, std::size_t len, int target,
                   std::size_t tdisp) {
  charge_us(model_.mpi22_extra_us);
  win_.get(dst, len, target, tdisp);
}

void Mpi22Win::accumulate(const void* origin, std::size_t count, Elem e,
                          RedOp op, int target, std::size_t tdisp) {
  charge_us(model_.mpi22_extra_us);
  win_.accumulate(origin, count, e, op, target, tdisp);
}

void Mpi22Win::fence() {
  // Worse-scaling barrier: extra per-round software cost.
  const int p = std::max(2, win_.nranks());
  charge_us((model_.mpi22_fence_per_log_us - 2.9) * std::log2(p));
  win_.fence();
}

void Mpi22Win::post(const fabric::Group& g) {
  charge_us(model_.mpi22_pscw_base_us / 2 +
            model_.mpi22_pscw_per_proc_ns * 1e-3 * win_.nranks() / 2);
  win_.post(g);
}

void Mpi22Win::start(const fabric::Group& g) {
  charge_us(model_.mpi22_pscw_base_us / 2 +
            model_.mpi22_pscw_per_proc_ns * 1e-3 * win_.nranks() / 2);
  win_.start(g);
}

void Mpi22Win::complete() {
  charge_us(model_.mpi22_extra_us);
  win_.complete();
}

void Mpi22Win::wait() {
  charge_us(model_.mpi22_extra_us);
  win_.wait();
}

void Mpi22Win::lock(core::LockType t, int target) {
  charge_us(model_.mpi22_extra_us);
  win_.lock(t, target);
}

void Mpi22Win::unlock(int target) {
  charge_us(model_.mpi22_extra_us);
  win_.unlock(target);
}

void Mpi22Win::flush(int target) {
  charge_us(model_.mpi22_extra_us);
  win_.flush(target);
}

}  // namespace fompi::baselines

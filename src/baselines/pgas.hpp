// PGAS comparator layer ("Cray UPC" / "Fortran coarrays" stand-ins).
//
// Cray's UPC and CAF runtimes are closed source; what the paper measures is
// their *behaviour*: direct DMAPP access like foMPI, plus a constant per-op
// software overhead (shared-pointer translation, runtime dispatch) that
// makes them ~2x slower than foMPI for small transfers while matching its
// asymptotic bandwidth (Fig 4). This layer reproduces exactly that: the
// same simulated NIC underneath, plus a configurable per-op overhead charged
// when latency injection is on. API mirrors the UPC constructs the paper's
// listings use: upc_all_alloc, upc_memput/upc_memget, upc_fence,
// upc_barrier, and Cray's atomic extensions (amo_aadd / amo_acswap).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/buffer.hpp"
#include "fabric/fabric.hpp"

namespace fompi::baselines {

struct PgasConfig {
  /// Extra software overhead per remote operation, charged on top of the
  /// NIC model (0 disables). Paper-calibrated defaults: see make_upc_like /
  /// make_caf_like.
  double per_op_extra_us = 0.0;
  /// Extra barrier cost factor per log2(p) round, relative to the foMPI
  /// dissemination barrier (1.0 = same).
  double barrier_round_factor = 1.0;
};

/// Returns the Cray-UPC-like configuration (Fig 4: ~1.2us extra per op).
PgasConfig make_upc_like();
/// Returns the Fortran-coarrays-like configuration (slightly slower put,
/// notably slower sync_all; Figs 4 and 6b).
PgasConfig make_caf_like();

/// A "shared [bytes_per_rank] char" array: every rank owns one block of a
/// globally addressable array, like upc_all_alloc(p, bytes_per_rank).
class SharedArray {
 public:
  /// Collective.
  SharedArray(fabric::RankCtx& ctx, std::size_t bytes_per_rank,
              PgasConfig cfg = {});
  /// Collective.
  void destroy(fabric::RankCtx& ctx);

  int rank() const noexcept { return rank_; }
  std::size_t block_bytes() const noexcept { return bytes_; }
  /// Local pointer to this rank's block (UPC cast-to-local idiom).
  void* local() noexcept;

  /// upc_memput with the Cray defer_sync semantics: nonblocking, completed
  /// by fence().
  void memput(int target, std::size_t off, const void* src, std::size_t len);
  /// upc_memget (deferred as well).
  void memget(int target, std::size_t off, void* dst, std::size_t len);
  /// upc_fence: completes all outstanding operations of this thread.
  void fence();
  /// upc_barrier (includes a fence, as in UPC semantics).
  void barrier();

  /// Cray UPC atomic extensions on 8-byte words.
  std::uint64_t amo_aadd(int target, std::size_t off, std::uint64_t v);
  std::uint64_t amo_acswap(int target, std::size_t off, std::uint64_t compare,
                           std::uint64_t value);

 private:
  void charge_overhead() const;

  fabric::Fabric* fabric_ = nullptr;
  int rank_ = -1;
  std::size_t bytes_ = 0;
  PgasConfig cfg_{};
  std::shared_ptr<std::vector<AlignedBuffer>> blocks_;
  std::shared_ptr<std::vector<rdma::RegionDesc>> descs_;
};

}  // namespace fompi::baselines

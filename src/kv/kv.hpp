// Sharded RDMA key-value service on MPI-3 one-sided (DESIGN.md §12, §13).
//
// The fig7a hashtable grown into a service: 64-bit keys hash to shards,
// shards map to owner ranks through a registered routing table fetched
// with one-sided gets (the ROLEX MR-fetch idiom, made reconfiguration-safe
// by a generation word — see below) — no two-sided traffic exists on any
// data path. Each shard region reuses the CAS-bucket scheme (kv/bucket.hpp)
// with widened cells {key, version, value(, next)}:
//
//   * get  — a one-sided versioned read: the 8-byte version word is a
//     seqlock over RMA (odd = write in progress). The reader atomically
//     reads version / value / version and retries on mismatch; version 0
//     means the insert has not linearized yet and reads as a miss.
//   * put / erase — remote-CAS chains: claim the key word (CAS), lock the
//     cell (CAS version even -> odd), write the value (accumulate-replace,
//     atomic), release (version + 2), then bump the shard's version-epoch
//     word with a single AMO. New keys on the overflow path reuse the
//     hashtable's fetch_add + link-at-head protocol; erase tombstones the
//     key word so the slot can be reclaimed.
//   * client cache — per-shard epoch-stamped: all cached entries of a
//     shard are valid exactly while the shard's epoch word is unchanged,
//     so a cache hit costs ONE remote AMO (the epoch check) instead of the
//     uncached read's six.
//   * replication / failover — writes fan out to a replica region on rank
//     (owner+1)%p; a client observing the owner dead (fail-stop liveness
//     or a typed peer_dead status) marks the shard degraded and routes to
//     the replica. Degraded reads bypass the cache (primary-stamped
//     epochs cannot be validated against the replica), which is the
//     modeled SLO degradation bench_kv measures.
//   * self-healing recovery (DESIGN.md §13) — heal() turns the degraded
//     state back into a healthy one: the lowest alive rank is elected
//     coordinator, CAS-claims the routing generation word (even = stable,
//     odd = reconfiguring), promotes each dead owner's replica to primary,
//     drains the dead rank's FROZEN shard image with one-sided gets into a
//     spare region on a surviving rank (fail-stop memory stays readable —
//     the paper's decoupling claim doing fault-tolerance work), reconciles
//     the pair with a version-winner scrub, publishes the new entries and
//     releases the generation. Clients validate the generation with one
//     AMO overlapped with their epoch check (only once a death has been
//     observed — zero healthy-path cost) and retire racing ops with typed
//     retry_routing; a shard whose owner AND replica died retires
//     data_loss, never a stale frozen value.
//
// The closed-loop fleet (run_fleet) drives this with Zipfian keys from
// fibers on the PR 8 progress engine — each client rank keeps `fibers`
// ops in flight, hot-path reads/writes fully pipelined (awaits), rare slow
// paths (chain walks, new-cell links, failover) taken blocking — and
// records per-op-class latencies into trace LatencyHistos.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/window.hpp"
#include "kv/bucket.hpp"
#include "trace/trace.hpp"

namespace fompi::kv {

/// Key reserved as the erase tombstone; user keys must be nonzero and
/// different from it.
inline constexpr std::uint64_t kTombstone = ~std::uint64_t{0};

struct KvConfig {
  int shards = 8;                ///< total shards, round-robin over ranks
  std::size_t table_slots = 64;  ///< top cells per shard
  std::size_t heap_slots = 256;  ///< overflow cells per shard
  bool replicate = true;         ///< write-through replica at (owner+1)%p
  bool client_cache = true;      ///< epoch-stamped read cache
  /// Rank hosting the routing table + generation word. A dead routing home
  /// makes further reconfiguration impossible (documented limitation);
  /// tests place it on a high rank to exercise coordinator takeover.
  int routing_rank = 0;
  /// heal() raises ErrClass::data_loss (fleet abort + post-mortem trace
  /// dump) when a shard lost both copies; false returns it typed instead.
  bool abort_on_data_loss = false;
  std::size_t drain_chunk = 2048;  ///< re-replication drain chunk bytes
  int scrub_fibers = 4;            ///< concurrent scrub fibers per shard
  /// Spare-bank slots per rank = spare_factor * shards_per_rank. One slot
  /// per hosted shard survives a single failure; sequential failures park
  /// promoted spares in the bank permanently, so capacity for the tests'
  /// kill-heal-kill chains needs headroom.
  int spare_factor = 2;
};

/// Per-client (per-rank) operation statistics; mirrored into the global
/// Op counters (kv_cache_hit / kv_cache_miss / kv_read_retry / kv_failover).
struct KvStats {
  std::uint64_t gets = 0, puts = 0, erases = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::uint64_t read_retries = 0;   ///< seqlock validate/locked rereads
  std::uint64_t failovers = 0;      ///< shard reroutes to the replica
  std::uint64_t peer_dead_ops = 0;  ///< typed peer_dead statuses absorbed
  std::uint64_t retry_routing = 0;  ///< ops retired typed retry_routing
  std::uint64_t data_loss_ops = 0;  ///< ops retired typed data_loss
};

/// One physical copy of a shard: which rank hosts it, in which region bank
/// (0 = primary, 1 = replica, 2 = spare — spares hold re-replicated copies
/// after recovery), at which local slot. Packed into the routing table as
/// rank (bits 0-15) | bank (16-19) | slot (20-31); a 64-bit entry is
/// pack(owner) | pack(replica) << 32.
struct Copy {
  int rank = -1;
  int bank = 0;
  int slot = 0;
};

inline std::uint32_t pack_copy(const Copy& c) {
  return (static_cast<std::uint32_t>(c.rank) & 0xffffu) |
         ((static_cast<std::uint32_t>(c.bank) & 0xfu) << 16) |
         ((static_cast<std::uint32_t>(c.slot) & 0xfffu) << 20);
}
inline Copy unpack_copy(std::uint32_t w) {
  return Copy{static_cast<int>(w & 0xffffu),
              static_cast<int>((w >> 16) & 0xfu),
              static_cast<int>((w >> 20) & 0xfffu)};
}

/// Outcome of one heal() pass (see DESIGN.md §13).
struct RecoveryReport {
  rdma::OpStatus status = rdma::OpStatus::ok;  ///< ok | data_loss |
                                               ///< peer_dead (routing home)
  int coordinator = -1;   ///< elected rank (lowest alive at completion)
  bool acted = false;     ///< this rank performed the reconfiguration
  std::uint64_t generation = 0;  ///< routing generation after recovery
  int promoted = 0;       ///< shards whose replica became primary
  int rereplicated = 0;   ///< shards granted a fresh spare-bank copy
  int lost = 0;           ///< shards with owner AND replica dead
  std::uint64_t drained_bytes = 0;  ///< frozen-image bytes re-replicated
  std::uint64_t scrub_cells = 0, scrub_repairs = 0;
};

/// Outcome of one anti-entropy scrub pass over a shard's copy pair.
struct ScrubResult {
  rdma::OpStatus status = rdma::OpStatus::ok;
  std::uint64_t cells = 0;    ///< cell pairs examined
  std::uint64_t repairs = 0;  ///< diverged cells repaired (version winner)
  std::uint64_t skipped = 0;  ///< cells skipped (write in progress /
                              ///< structural chain divergence)
};

class KvStore {
 public:
  /// Collective: allocates the sharded window, rank 0 publishes the
  /// routing table, every rank fetches it one-sided.
  KvStore(fabric::RankCtx& ctx, KvConfig cfg = {});
  /// Collective; do NOT call after a rank kill (survivors cannot meet the
  /// barrier) — mirror the fault tests and let the window unwind.
  void destroy(fabric::RankCtx& ctx);

  // --- blocking one-sided client ops --------------------------------------
  /// Typed statuses: ok, or the first failure observed (peer_dead when
  /// both the owner and — if enabled — the replica are unreachable).
  rdma::OpStatus put(std::uint64_t key, std::uint64_t value);
  rdma::OpStatus erase(std::uint64_t key);
  /// Versioned one-sided read; `*found` false on miss. Serves from the
  /// epoch-validated cache when possible.
  rdma::OpStatus get(std::uint64_t key, std::uint64_t* value, bool* found);

  // --- routing / introspection ---------------------------------------------
  int shard_of(std::uint64_t key) const;
  int owner_of(int shard) const;    ///< from the fetched routing table
  int replica_of(int shard) const;
  bool degraded(int shard) const {
    return degraded_[static_cast<std::size_t>(shard)];
  }
  /// Fail-stop liveness view of a rank (forwarded from the window).
  bool peer_alive(int rank) const { return win_.peer_alive(rank); }
  /// Typed one-sided probe of a shard primary's epoch word: ok while the
  /// owner serves, peer_dead once it was killed (confinement assertions).
  rdma::OpStatus probe_owner(int shard);
  const KvStats& stats() const noexcept { return stats_; }
  const KvConfig& config() const noexcept { return cfg_; }
  /// One-sided read of a shard's version-epoch word (owner or replica copy).
  std::uint64_t shard_epoch(int shard, bool replica = false);
  /// Keys currently cached for `shard` on this client.
  std::size_t cached_entries(int shard) const;

  // --- recovery (DESIGN.md §13) --------------------------------------------
  /// Self-healing pass; any surviving rank may call it (not collective).
  /// The lowest alive rank coordinates: replica promotion, one-sided drain
  /// of the dead rank's frozen image into a spare region, version-winner
  /// scrub, generation bump. Other callers wait (fiber/backoff through
  /// yield_check) for the generation to stabilize, then refresh. Returns a
  /// typed report; with cfg.abort_on_data_loss an unrecoverable shard
  /// raises ErrClass::data_loss (fleet abort + post-mortem trace dump).
  RecoveryReport heal();
  /// Anti-entropy pass over one shard's {primary, replica} cell pairs:
  /// seqlock snapshots of both sides, higher-version winner copied over the
  /// loser (ties and top-slot key conflicts go to the primary). Runs as
  /// fibers on the progress engine. Safe against concurrent writers.
  ScrubResult scrub(int shard);
  /// One-sided read of the current routing generation (even = stable).
  std::uint64_t generation();
  /// Re-fetches a consistent {generation, table} pair (retries while a
  /// reconfiguration is in flight) and re-derives degraded()/cache state.
  rdma::OpStatus refresh_routing();
  /// Physical copy of `shard` currently serving as primary/replica.
  Copy copy_of(int shard, bool replica) const;
  /// Test / anti-entropy-drill seam: writes ONE copy of the key's shard,
  /// deliberately diverging the pair so a scrub has something to repair.
  rdma::OpStatus debug_write_copy(std::uint64_t key, bool replica,
                                  std::uint64_t value);

  // --- closed-loop DES client fleet ---------------------------------------
  struct FleetConfig {
    int ops_per_rank = 1024;
    int fibers = 8;            ///< concurrent client fibers per rank
    double read_ratio = 0.95;  ///< fraction of ops that are gets
    std::uint64_t keyspace = 256;  ///< keys drawn from [1, keyspace]
    double zipf_s = 0.9;       ///< key popularity skew
    std::uint64_t seed = 1;
  };
  struct FleetResult {
    trace::LatencyHisto read_hist;   ///< ns per completed get
    trace::LatencyHisto write_hist;  ///< ns per completed put
    std::uint64_t reads = 0, writes = 0;
    std::uint64_t cache_hits = 0;
    // Retirement identity: every issued op retires exactly once, so
    // issued == ok_ops + peer_dead + retry_routing + data_loss +
    // failed_other (the chaos tests assert this).
    std::uint64_t issued = 0;
    std::uint64_t ok_ops = 0;
    std::uint64_t peer_dead = 0;      ///< typed peer_dead retirements
    std::uint64_t retry_routing = 0;  ///< ops that raced a reconfiguration
    std::uint64_t data_loss = 0;      ///< ops whose shard lost every copy
    std::uint64_t failed_other = 0;   ///< transient-fault budget exhaustion
  };
  /// Runs this rank's share of the fleet: `fibers` client fibers pull a
  /// deterministic (seed- and rank-stamped) Zipfian op stream off a shared
  /// cursor and pipeline gets/puts on the progress engine. Latencies are
  /// recorded per op class and, when a TraceSession is active, emitted as
  /// EvClass::kv events. Not collective; callers barrier around it.
  FleetResult run_fleet(fabric::RankCtx& ctx, const FleetConfig& fc);

 private:
  struct ClientFiber;
  friend struct ClientFiber;
  struct DrainFiber;
  friend struct DrainFiber;
  struct ScrubFiber;
  friend struct ScrubFiber;

  // Window layout: [generation | pad | routing table][bank 0: primary
  // regions][bank 1: replica regions][bank 2: spare regions]. Every rank
  // reserves the routing prefix so region offsets stay symmetric; only the
  // routing home's copy is authoritative.
  std::size_t routing_bytes() const;
  std::size_t shard_region_bytes() const;
  /// Spare-bank (bank 2) slots hosted per rank.
  int spare_slots() const { return cfg_.spare_factor * shards_per_rank_; }
  /// Byte offset of a physical copy's region in its host rank's window.
  std::size_t copy_base(const Copy& c) const;
  std::size_t epoch_off_of(const Copy& c) const { return copy_base(c); }
  BucketLayout layout_of(const Copy& c) const;
  /// Compatibility wrappers routing through the fetched table.
  std::size_t region_base(int shard, bool replica) const {
    return copy_base(copy_of(shard, replica));
  }
  std::size_t epoch_off(int shard, bool replica) const {
    return region_base(shard, replica);
  }
  BucketLayout layout_for(int shard, bool replica) const {
    return layout_of(copy_of(shard, replica));
  }
  std::size_t slot_of(std::uint64_t key) const;

  // --- versioned routing ----------------------------------------------------
  /// Routing validation is armed only once a death has been observed
  /// (reconfigurations happen only after deaths), so the healthy fast path
  /// pays one load + branch — the PR 5 fault-gate discipline.
  bool routing_suspect() const;
  /// One AMO generation check (only when suspect). On mismatch the table
  /// is re-fetched and the op retires typed retry_routing.
  rdma::OpStatus check_generation();
  /// Classifies a generation word that differs from gen_seen_: refreshes
  /// on a stable (even) generation, and always retires retry_routing.
  rdma::OpStatus handle_gen_mismatch(std::uint64_t gen);
  /// Consistent {generation, table} fetch: generation re-read after the
  /// table get, retried until the pair matches and is stable (even).
  rdma::OpStatus fetch_routing();
  /// Installs a freshly fetched table: recomputes degraded() from
  /// liveness and drops caches of shards whose entries moved.
  void apply_routing(const std::vector<std::uint64_t>& old);
  /// Raw one-sided table get, parity-blind (coordinator-internal).
  rdma::OpStatus raw_fetch_table(std::vector<std::uint64_t>* table);

  // --- recovery internals (kv/recovery.cpp) ---------------------------------
  /// Coordinator body: claim/adopt the generation, plan promotions and
  /// re-replications, drain frozen images (fibers), publish entries, scrub
  /// affected pairs, release the generation.
  rdma::OpStatus coordinate(std::uint64_t gen, RecoveryReport* rep);
  /// Picks a spare-bank slot on the first alive rank after `owner_rank`
  /// (never owner_rank itself); occupancy derived from the routing table.
  Copy pick_spare(int owner_rank, const std::vector<std::uint64_t>& table,
                  std::vector<std::uint8_t>* spare_used) const;
  /// Blocking version-winner repair of one diverged cell (see scrub()).
  rdma::OpStatus repair_cell(const Copy& loser, std::size_t cell_off,
                             std::uint64_t locked_ver, std::uint64_t key,
                             std::uint64_t value, std::uint64_t winner_ver);

  // Typed-status AMO helpers (request-based, so faults never raise).
  rdma::OpStatus wait_req(core::RmaRequest& req);
  rdma::OpStatus amo_read(int t, std::size_t off, std::uint64_t* v);
  /// Two AMO reads issued back to back, awaited together: the generation
  /// check overlaps the epoch check, costing no extra round trip.
  rdma::OpStatus amo_read2(int t1, std::size_t off1, std::uint64_t* v1,
                           int t2, std::size_t off2, std::uint64_t* v2);
  rdma::OpStatus amo_cas(int t, std::size_t off, std::uint64_t expect,
                         std::uint64_t desired, std::uint64_t* prev);
  rdma::OpStatus amo_add(int t, std::size_t off, std::uint64_t add);
  rdma::OpStatus amo_write(int t, std::size_t off, std::uint64_t v);

  /// Locates key's cell in the region: *cell_off = byte offset of its
  /// {key, version, value} words, 0 if absent. `claim` makes it claim a
  /// cell for the key (top slot, tombstone reclaim, or fresh overflow
  /// cell); *fresh_insert reports that the cell was newly linked with the
  /// value already published (no seqlock update needed).
  rdma::OpStatus locate(int t, const BucketLayout& l, std::uint64_t key,
                        bool claim, std::uint64_t value,
                        std::size_t* cell_off, bool* fresh_insert);
  /// Seqlock write of `value` into the located cell + epoch bump.
  rdma::OpStatus seq_write(int t, int shard, bool replica,
                           std::size_t cell_off, std::uint64_t value);
  /// Seqlock read: *found/*value; retries odd/changed versions.
  rdma::OpStatus seq_read(int t, std::size_t cell_off, std::uint64_t key,
                          std::uint64_t* value, bool* found);
  /// Full uncached read from one region (locate + seq_read).
  rdma::OpStatus read_region(int t, const BucketLayout& l, std::uint64_t key,
                             std::uint64_t* value, bool* found);
  /// put/erase applied to one region (primary or replica copy).
  rdma::OpStatus write_region(int t, int shard, bool replica,
                              std::uint64_t key, std::uint64_t value,
                              bool is_erase);
  /// Marks `shard` degraded (first peer_dead / liveness miss on its owner).
  void fail_over(int shard);
  /// Retires an op addressed at a shard whose owner AND replica are dead.
  rdma::OpStatus data_loss_on(int shard);
  /// Dead-writer seqlock recovery: force-release a version word left odd
  /// by a killed rank (only attempted once a death was observed).
  rdma::OpStatus maybe_revoke(int t, std::size_t cell_off,
                              std::uint64_t stuck_ver);
  bool any_peer_dead() const;

  KvConfig cfg_;
  int nranks_ = 0;
  int rank_ = -1;
  int shards_per_rank_ = 0;
  core::Win win_;
  fabric::Fabric* fabric_ = nullptr;
  std::vector<std::uint64_t> routing_;  ///< pack(owner) | pack(replica)<<32
  std::uint64_t gen_seen_ = 0;          ///< generation the table was read at
  std::vector<bool> degraded_;          ///< per shard, client-local view

  // Epoch-stamped cache: entries of shard s are valid iff the shard's
  // current epoch equals epoch_seen_[s].
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> cache_;
  std::vector<std::uint64_t> epoch_seen_;
  KvStats stats_;
};

}  // namespace fompi::kv

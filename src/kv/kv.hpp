// Sharded RDMA key-value service on MPI-3 one-sided (DESIGN.md §12).
//
// The fig7a hashtable grown into a service: 64-bit keys hash to shards,
// shards map to owner ranks through a registered routing table that every
// client fetches ONCE with a one-sided get at attach time (the ROLEX
// MR-fetch idiom) — after that no two-sided traffic exists on any data
// path. Each shard region reuses the CAS-bucket scheme (kv/bucket.hpp)
// with widened cells {key, version, value(, next)}:
//
//   * get  — a one-sided versioned read: the 8-byte version word is a
//     seqlock over RMA (odd = write in progress). The reader atomically
//     reads version / value / version and retries on mismatch; version 0
//     means the insert has not linearized yet and reads as a miss.
//   * put / erase — remote-CAS chains: claim the key word (CAS), lock the
//     cell (CAS version even -> odd), write the value (accumulate-replace,
//     atomic), release (version + 2), then bump the shard's version-epoch
//     word with a single AMO. New keys on the overflow path reuse the
//     hashtable's fetch_add + link-at-head protocol; erase tombstones the
//     key word so the slot can be reclaimed.
//   * client cache — per-shard epoch-stamped: all cached entries of a
//     shard are valid exactly while the shard's epoch word is unchanged,
//     so a cache hit costs ONE remote AMO (the epoch check) instead of the
//     uncached read's six.
//   * replication / failover — writes fan out to a replica region on rank
//     (owner+1)%p; a client observing the owner dead (fail-stop liveness
//     or a typed peer_dead status) marks the shard degraded and routes to
//     the replica. Degraded reads bypass the cache (primary-stamped
//     epochs cannot be validated against the replica), which is the
//     modeled SLO degradation bench_kv measures.
//
// The closed-loop fleet (run_fleet) drives this with Zipfian keys from
// fibers on the PR 8 progress engine — each client rank keeps `fibers`
// ops in flight, hot-path reads/writes fully pipelined (awaits), rare slow
// paths (chain walks, new-cell links, failover) taken blocking — and
// records per-op-class latencies into trace LatencyHistos.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/window.hpp"
#include "kv/bucket.hpp"
#include "trace/trace.hpp"

namespace fompi::kv {

/// Key reserved as the erase tombstone; user keys must be nonzero and
/// different from it.
inline constexpr std::uint64_t kTombstone = ~std::uint64_t{0};

struct KvConfig {
  int shards = 8;                ///< total shards, round-robin over ranks
  std::size_t table_slots = 64;  ///< top cells per shard
  std::size_t heap_slots = 256;  ///< overflow cells per shard
  bool replicate = true;         ///< write-through replica at (owner+1)%p
  bool client_cache = true;      ///< epoch-stamped read cache
};

/// Per-client (per-rank) operation statistics; mirrored into the global
/// Op counters (kv_cache_hit / kv_cache_miss / kv_read_retry / kv_failover).
struct KvStats {
  std::uint64_t gets = 0, puts = 0, erases = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::uint64_t read_retries = 0;   ///< seqlock validate/locked rereads
  std::uint64_t failovers = 0;      ///< shard reroutes to the replica
  std::uint64_t peer_dead_ops = 0;  ///< typed peer_dead statuses absorbed
};

class KvStore {
 public:
  /// Collective: allocates the sharded window, rank 0 publishes the
  /// routing table, every rank fetches it one-sided.
  KvStore(fabric::RankCtx& ctx, KvConfig cfg = {});
  /// Collective; do NOT call after a rank kill (survivors cannot meet the
  /// barrier) — mirror the fault tests and let the window unwind.
  void destroy(fabric::RankCtx& ctx);

  // --- blocking one-sided client ops --------------------------------------
  /// Typed statuses: ok, or the first failure observed (peer_dead when
  /// both the owner and — if enabled — the replica are unreachable).
  rdma::OpStatus put(std::uint64_t key, std::uint64_t value);
  rdma::OpStatus erase(std::uint64_t key);
  /// Versioned one-sided read; `*found` false on miss. Serves from the
  /// epoch-validated cache when possible.
  rdma::OpStatus get(std::uint64_t key, std::uint64_t* value, bool* found);

  // --- routing / introspection ---------------------------------------------
  int shard_of(std::uint64_t key) const;
  int owner_of(int shard) const;    ///< from the fetched routing table
  int replica_of(int shard) const;
  bool degraded(int shard) const {
    return degraded_[static_cast<std::size_t>(shard)];
  }
  /// Fail-stop liveness view of a rank (forwarded from the window).
  bool peer_alive(int rank) const { return win_.peer_alive(rank); }
  /// Typed one-sided probe of a shard primary's epoch word: ok while the
  /// owner serves, peer_dead once it was killed (confinement assertions).
  rdma::OpStatus probe_owner(int shard);
  const KvStats& stats() const noexcept { return stats_; }
  const KvConfig& config() const noexcept { return cfg_; }
  /// One-sided read of a shard's version-epoch word (owner or replica copy).
  std::uint64_t shard_epoch(int shard, bool replica = false);
  /// Keys currently cached for `shard` on this client.
  std::size_t cached_entries(int shard) const;

  // --- closed-loop DES client fleet ---------------------------------------
  struct FleetConfig {
    int ops_per_rank = 1024;
    int fibers = 8;            ///< concurrent client fibers per rank
    double read_ratio = 0.95;  ///< fraction of ops that are gets
    std::uint64_t keyspace = 256;  ///< keys drawn from [1, keyspace]
    double zipf_s = 0.9;       ///< key popularity skew
    std::uint64_t seed = 1;
  };
  struct FleetResult {
    trace::LatencyHisto read_hist;   ///< ns per completed get
    trace::LatencyHisto write_hist;  ///< ns per completed put
    std::uint64_t reads = 0, writes = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t peer_dead = 0;  ///< typed statuses absorbed by failover
  };
  /// Runs this rank's share of the fleet: `fibers` client fibers pull a
  /// deterministic (seed- and rank-stamped) Zipfian op stream off a shared
  /// cursor and pipeline gets/puts on the progress engine. Latencies are
  /// recorded per op class and, when a TraceSession is active, emitted as
  /// EvClass::kv events. Not collective; callers barrier around it.
  FleetResult run_fleet(fabric::RankCtx& ctx, const FleetConfig& fc);

 private:
  struct ClientFiber;
  friend struct ClientFiber;

  // Window layout: [routing table][primary shard regions][replica regions].
  std::size_t routing_bytes() const;
  std::size_t shard_region_bytes() const;
  /// Region base of `shard`'s primary (replica=false) or replica copy.
  std::size_t region_base(int shard, bool replica) const;
  std::size_t epoch_off(int shard, bool replica) const {
    return region_base(shard, replica);
  }
  BucketLayout layout_for(int shard, bool replica) const;
  std::size_t slot_of(std::uint64_t key) const;

  // Typed-status AMO helpers (request-based, so faults never raise).
  rdma::OpStatus wait_req(core::RmaRequest& req);
  rdma::OpStatus amo_read(int t, std::size_t off, std::uint64_t* v);
  rdma::OpStatus amo_cas(int t, std::size_t off, std::uint64_t expect,
                         std::uint64_t desired, std::uint64_t* prev);
  rdma::OpStatus amo_add(int t, std::size_t off, std::uint64_t add);
  rdma::OpStatus amo_write(int t, std::size_t off, std::uint64_t v);

  /// Locates key's cell in the region: *cell_off = byte offset of its
  /// {key, version, value} words, 0 if absent. `claim` makes it claim a
  /// cell for the key (top slot, tombstone reclaim, or fresh overflow
  /// cell); *fresh_insert reports that the cell was newly linked with the
  /// value already published (no seqlock update needed).
  rdma::OpStatus locate(int t, const BucketLayout& l, std::uint64_t key,
                        bool claim, std::uint64_t value,
                        std::size_t* cell_off, bool* fresh_insert);
  /// Seqlock write of `value` into the located cell + epoch bump.
  rdma::OpStatus seq_write(int t, int shard, bool replica,
                           std::size_t cell_off, std::uint64_t value);
  /// Seqlock read: *found/*value; retries odd/changed versions.
  rdma::OpStatus seq_read(int t, std::size_t cell_off, std::uint64_t key,
                          std::uint64_t* value, bool* found);
  /// Full uncached read from one region (locate + seq_read).
  rdma::OpStatus read_region(int t, const BucketLayout& l, std::uint64_t key,
                             std::uint64_t* value, bool* found);
  /// put/erase applied to one region (primary or replica copy).
  rdma::OpStatus write_region(int t, int shard, bool replica,
                              std::uint64_t key, std::uint64_t value,
                              bool is_erase);
  /// Marks `shard` degraded (first peer_dead / liveness miss on its owner).
  void fail_over(int shard);
  /// Dead-writer seqlock recovery: force-release a version word left odd
  /// by a killed rank (only attempted once a death was observed).
  void maybe_revoke(int t, std::size_t cell_off, std::uint64_t stuck_ver);
  bool any_peer_dead() const;

  KvConfig cfg_;
  int nranks_ = 0;
  int rank_ = -1;
  int shards_per_rank_ = 0;
  core::Win win_;
  fabric::Fabric* fabric_ = nullptr;
  std::vector<std::uint64_t> routing_;  ///< fetched once: owner | replica<<32
  std::vector<bool> degraded_;          ///< per shard, client-local view

  // Epoch-stamped cache: entries of shard s are valid iff the shard's
  // current epoch equals epoch_seen_[s].
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> cache_;
  std::vector<std::uint64_t> epoch_seen_;
  KvStats stats_;
};

}  // namespace fompi::kv

// Deterministic Zipfian key sampler (YCSB-style inverse transform).
//
// The closed-loop KV client fleet draws keys from a Zipf(s) distribution
// over [0, n): rank 0 is the hottest key, frequencies fall off as 1/r^s.
// Built on the repo's xoshiro256** Rng, so the stream is an exact function
// of (n, s, seed) — the chaos-determinism gates depend on that. The zeta
// normalizer is computed once at construction (O(n), n is the keyspace of
// a simulated client, not the cluster's).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fompi::kv {

class Zipf {
 public:
  Zipf(std::uint64_t n, double s, std::uint64_t seed)
      : n_(n), s_(s), rng_(seed) {
    FOMPI_REQUIRE(n >= 1, ErrClass::arg, "zipf needs a nonempty keyspace");
    // YCSB's inverse-transform fit needs s in [0, 1); 0.99 is the YCSB
    // default and the skew used by the SLO harness.
    FOMPI_REQUIRE(s >= 0.0 && s < 1.0, ErrClass::arg,
                  "zipf exponent must be in [0, 1)");
    for (std::uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), s_);
    }
    theta_ = s_;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2() / zetan_);
  }

  /// Next sample in [0, n): 0 is the hottest rank.
  std::uint64_t next() {
    if (s_ == 0.0) return rng_.below(n_);  // uniform degenerate case
    const double u = rng_.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= n_ ? n_ - 1 : r;
  }

  std::uint64_t keyspace() const noexcept { return n_; }

  /// Probability mass of rank `r` under the fitted distribution (used by
  /// the closed-form shard-throughput model, not the sampler).
  double mass(std::uint64_t r) const {
    return 1.0 / std::pow(static_cast<double>(r + 1), s_) / zetan_;
  }

 private:
  double zeta2() const { return 1.0 + std::pow(0.5, s_); }

  std::uint64_t n_;
  double s_;
  double zetan_ = 0.0;
  double theta_ = 0.0, alpha_ = 0.0, eta_ = 0.0;
  Rng rng_;
};

}  // namespace fompi::kv

#include "kv/kv.hpp"

#include <algorithm>

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "fabric/progress/progress.hpp"
#include "kv/zipf.hpp"

namespace fompi::kv {

namespace {

// A KV cell is {key, version, value(, next)}: key at +0, seqlock version
// word at +8, value at +16 — identical for top cells (stride 24) and
// overflow cells (stride 32, next link last).
constexpr std::size_t kVerOff = 8;
constexpr std::size_t kValOff = 16;
constexpr std::size_t kTopStride = 24;
constexpr std::size_t kCellStride = 32;

// Seqlock spins stuck this long on an odd version check for a dead writer
// before attempting revocation (mirrors the window's dead-lock-holder path).
constexpr int kRevokeSpins = 256;

}  // namespace

KvStore::KvStore(fabric::RankCtx& ctx, KvConfig cfg)
    : cfg_(cfg),
      nranks_(ctx.nranks()),
      rank_(ctx.rank()),
      fabric_(&ctx.fabric()) {
  FOMPI_REQUIRE(cfg_.shards >= 1, ErrClass::arg, "kv needs >= 1 shard");
  FOMPI_REQUIRE(cfg_.table_slots > 0 && cfg_.heap_slots > 0, ErrClass::arg,
                "kv needs nonzero shard capacities");
  FOMPI_REQUIRE(cfg_.routing_rank >= 0 && cfg_.routing_rank < nranks_,
                ErrClass::arg, "kv routing rank out of range");
  FOMPI_REQUIRE(cfg_.drain_chunk >= 8, ErrClass::arg,
                "kv drain chunk too small");
  FOMPI_REQUIRE(cfg_.spare_factor >= 1, ErrClass::arg,
                "kv needs a nonzero spare bank");
  shards_per_rank_ = (cfg_.shards + nranks_ - 1) / nranks_;

  core::WinConfig wc;
  wc.err_mode = core::ErrMode::errors_return;  // service degrades, not dies
  const std::size_t bytes =
      routing_bytes() +
      (2 * static_cast<std::size_t>(shards_per_rank_) +
       static_cast<std::size_t>(spare_slots())) *
          shard_region_bytes();
  win_ = core::Win::allocate(ctx, bytes, wc);

  // The routing home publishes the generation word (offset 0; even =
  // stable, odd = reconfiguration in flight) and the authoritative table
  // into its own region before the barrier; clients fetch the consistent
  // {generation, table} pair one-sided afterwards (MR-fetch idiom: one
  // rget at attach time, no metadata traffic per op).
  if (rank_ == cfg_.routing_rank) {
    auto* words = static_cast<std::uint64_t*>(win_.base());
    words[0] = 0;  // generation
    words[1] = 0;  // pad: keeps the table 16-byte aligned
    for (int s = 0; s < cfg_.shards; ++s) {
      const int owner = s % nranks_;
      const int repl = (owner + 1) % nranks_;
      const int slot = s / nranks_;
      words[2 + s] =
          static_cast<std::uint64_t>(pack_copy(Copy{owner, 0, slot})) |
          (static_cast<std::uint64_t>(pack_copy(Copy{repl, 1, slot})) << 32);
    }
  }
  win_.lock_all();  // passive epoch held for the service's lifetime
  ctx.barrier();

  routing_.assign(static_cast<std::size_t>(cfg_.shards), 0);
  degraded_.assign(static_cast<std::size_t>(cfg_.shards), false);
  cache_.assign(static_cast<std::size_t>(cfg_.shards), {});
  epoch_seen_.assign(static_cast<std::size_t>(cfg_.shards), 0);
  const auto st = fetch_routing();
  FOMPI_REQUIRE(st == rdma::OpStatus::ok, ErrClass::internal,
                "kv routing-table fetch failed");
  ctx.barrier();  // no traffic before every client holds the table
}

void KvStore::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  win_.unlock_all();
  win_.free();
}

// --- layout -----------------------------------------------------------------

std::size_t KvStore::routing_bytes() const {
  // [generation | pad][8-byte packed entry per shard].
  return 16 + 8 * static_cast<std::size_t>(cfg_.shards);
}

std::size_t KvStore::shard_region_bytes() const {
  BucketLayout l;
  l.table_slots = cfg_.table_slots;
  l.heap_slots = cfg_.heap_slots;
  l.table_stride = kTopStride;
  l.cell_stride = kCellStride;
  return 16 + l.region_bytes();  // [epoch][pad] + buckets
}

std::size_t KvStore::copy_base(const Copy& c) const {
  // Banks 0 (primary) and 1 (replica) hold shards_per_rank regions each;
  // bank 2 (spares) is spare_factor times wider.
  const std::size_t spr = static_cast<std::size_t>(shards_per_rank_);
  const std::size_t regions =
      c.bank < 2 ? static_cast<std::size_t>(c.bank) * spr +
                       static_cast<std::size_t>(c.slot)
                 : 2 * spr + static_cast<std::size_t>(c.slot);
  return routing_bytes() + regions * shard_region_bytes();
}

BucketLayout KvStore::layout_of(const Copy& c) const {
  BucketLayout l;
  l.base = copy_base(c) + 16;
  l.table_slots = cfg_.table_slots;
  l.heap_slots = cfg_.heap_slots;
  l.table_stride = kTopStride;
  l.cell_stride = kCellStride;
  return l;
}

int KvStore::shard_of(std::uint64_t key) const {
  return static_cast<int>(mix64(key) %
                          static_cast<std::uint64_t>(cfg_.shards));
}

std::size_t KvStore::slot_of(std::uint64_t key) const {
  return static_cast<std::size_t>(mix64(key) >> 32) % cfg_.table_slots;
}

Copy KvStore::copy_of(int shard, bool replica) const {
  const std::uint64_t w = routing_[static_cast<std::size_t>(shard)];
  return unpack_copy(static_cast<std::uint32_t>(replica ? (w >> 32) : w));
}

int KvStore::owner_of(int shard) const { return copy_of(shard, false).rank; }

int KvStore::replica_of(int shard) const { return copy_of(shard, true).rank; }

std::uint64_t KvStore::shard_epoch(int shard, bool replica) {
  std::uint64_t ep = 0;
  amo_read(replica ? replica_of(shard) : owner_of(shard),
           epoch_off(shard, replica), &ep);
  return ep;
}

std::size_t KvStore::cached_entries(int shard) const {
  return cache_[static_cast<std::size_t>(shard)].size();
}

rdma::OpStatus KvStore::probe_owner(int shard) {
  // Identity accumulate (+0): pure reads are served from a dead rank's
  // frozen memory image under the fail-stop model, so only a mutating AMO
  // yields the typed peer_dead. Adding zero leaves the epoch untouched.
  return amo_add(owner_of(shard), epoch_off(shard, false), 0);
}

// --- typed-status AMO helpers ------------------------------------------------
//
// Every remote word access goes through the request-based ops: faults
// retire as typed statuses instead of raising (or, under errors_return,
// silently recording), so the client can degrade per shard. An awaited
// rput/raccumulate is remotely complete at retire, which the seqlock's
// publish ordering relies on.

rdma::OpStatus KvStore::wait_req(core::RmaRequest& req) {
  rdma::OpStatus st = rdma::OpStatus::ok;
  if (req.handles().empty()) {
    // Eager retirement: under errors_return a dead-peer issue records into
    // the window instead of producing a handle. Consume the sticky status.
    st = win_.last_error();
    if (st != rdma::OpStatus::ok) win_.clear_last_error();
  }
  for (const auto h : req.handles()) {
    const auto s = req.nic()->wait_status(h);
    if (s != rdma::OpStatus::ok && st == rdma::OpStatus::ok) st = s;
  }
  req.dismiss();
  return st;
}

rdma::OpStatus KvStore::amo_read(int t, std::size_t off, std::uint64_t* v) {
  auto req = win_.rfetch_and_op(nullptr, v, Elem::u64, RedOp::no_op, t, off);
  return wait_req(req);
}

rdma::OpStatus KvStore::amo_cas(int t, std::size_t off, std::uint64_t expect,
                                std::uint64_t desired, std::uint64_t* prev) {
  auto req =
      win_.rcompare_and_swap(&desired, &expect, prev, Elem::u64, t, off);
  return wait_req(req);
}

rdma::OpStatus KvStore::amo_add(int t, std::size_t off, std::uint64_t add) {
  auto req = win_.raccumulate(&add, 1, Elem::u64, RedOp::sum, t, off);
  return wait_req(req);
}

rdma::OpStatus KvStore::amo_write(int t, std::size_t off, std::uint64_t v) {
  auto req = win_.raccumulate(&v, 1, Elem::u64, RedOp::replace, t, off);
  return wait_req(req);
}

rdma::OpStatus KvStore::amo_read2(int t1, std::size_t off1, std::uint64_t* v1,
                                  int t2, std::size_t off2,
                                  std::uint64_t* v2) {
  // Both reads are in flight before either is awaited, so they overlap on
  // the wire: a generation check piggybacked this way adds ~no round trip
  // to the epoch check it rides with (the sim_kv AMO budgets rely on it).
  auto r1 =
      win_.rfetch_and_op(nullptr, v1, Elem::u64, RedOp::no_op, t1, off1);
  auto r2 =
      win_.rfetch_and_op(nullptr, v2, Elem::u64, RedOp::no_op, t2, off2);
  const auto s1 = wait_req(r1);
  const auto s2 = wait_req(r2);
  return s1 != rdma::OpStatus::ok ? s1 : s2;
}

// --- versioned routing -------------------------------------------------------
//
// The routing table carries a generation word: even = stable, odd = a
// reconfiguration is in flight. Clients that have observed a death validate
// their cached generation with one AMO per op (piggybacked on the epoch
// check where one exists); a mismatch retires the op as typed
// retry_routing and — once the generation is stable again — re-fetches a
// consistent {generation, table} pair. Before any death the generation
// cannot have moved, so the healthy fast path skips all of this for the
// cost of one atomic load and a branch.

bool KvStore::routing_suspect() const {
  return fabric_->domain().death_epoch() != 0;
}

std::uint64_t KvStore::generation() {
  std::uint64_t g = 0;
  amo_read(cfg_.routing_rank, 0, &g);
  return g;
}

rdma::OpStatus KvStore::handle_gen_mismatch(std::uint64_t gen) {
  ++stats_.retry_routing;
  count(Op::kv_retry_routing);
  // Odd generation: the coordinator is mid-reconfiguration. Retire the op
  // typed instead of blocking the client under the coordinator's drain;
  // the caller reissues and refreshes once the generation stabilizes.
  if ((gen & 1) == 0) {
    const auto st = fetch_routing();
    if (st != rdma::OpStatus::ok) return st;
  }
  return rdma::OpStatus::retry_routing;
}

rdma::OpStatus KvStore::check_generation() {
  if (!routing_suspect()) return rdma::OpStatus::ok;
  std::uint64_t g = 0;
  const auto st = amo_read(cfg_.routing_rank, 0, &g);
  if (st != rdma::OpStatus::ok) return st;
  if (g == gen_seen_) return rdma::OpStatus::ok;
  return handle_gen_mismatch(g);
}

rdma::OpStatus KvStore::raw_fetch_table(std::vector<std::uint64_t>* table) {
  // The coordinator republishes routing entries with AMO writes while the
  // generation is odd, so a refetch can race those writes: the table is an
  // AMO-raced region and must be read word-wise through fetch-AMOs (the
  // same rule every other raced word in the store follows), not one rget.
  // All fetches go in flight before any is awaited, so the word-wise read
  // still overlaps into ~one round trip.
  const auto n = static_cast<std::size_t>(cfg_.shards);
  table->assign(n, 0);
  std::vector<core::RmaRequest> reqs(n);
  for (std::size_t s = 0; s < n; ++s) {
    reqs[s] = win_.rfetch_and_op(nullptr, &(*table)[s], Elem::u64,
                                 RedOp::no_op, cfg_.routing_rank, 16 + 8 * s);
  }
  rdma::OpStatus st = rdma::OpStatus::ok;
  for (auto& req : reqs) {
    const auto s = wait_req(req);
    if (s != rdma::OpStatus::ok && st == rdma::OpStatus::ok) st = s;
  }
  return st;
}

rdma::OpStatus KvStore::fetch_routing() {
  // Consistent-pair protocol: generation, table, generation again — accept
  // only a stable (even) generation that did not move across the table
  // get. This is what makes a LATE first fetch safe: a client attaching
  // while a recovery is republishing entries can never install a half-new
  // table under an old generation stamp.
  const std::vector<std::uint64_t> old = routing_;
  std::vector<std::uint64_t> table;
  Backoff bo;
  while (true) {
    std::uint64_t g1 = 0;
    auto st = amo_read(cfg_.routing_rank, 0, &g1);
    if (st != rdma::OpStatus::ok) return st;
    if ((g1 & 1) == 0) {
      st = raw_fetch_table(&table);
      if (st != rdma::OpStatus::ok) return st;
      std::uint64_t g2 = 0;
      st = amo_read(cfg_.routing_rank, 0, &g2);
      if (st != rdma::OpStatus::ok) return st;
      if (g1 == g2) {
        routing_ = table;
        gen_seen_ = g1;
        apply_routing(old);
        return rdma::OpStatus::ok;
      }
    }
    bo.pause();  // reconfiguration in flight: poll politely, never raw-spin
    fabric_->yield_check();
  }
}

void KvStore::apply_routing(const std::vector<std::uint64_t>& old) {
  for (int s = 0; s < cfg_.shards; ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (old.size() == routing_.size() && old[i] != routing_[i]) {
      // The shard's copies moved: epoch stamps taken against the old
      // primary region are meaningless against the new one.
      cache_[i].clear();
      epoch_seen_[i] = 0;
    }
    degraded_[i] = !win_.peer_alive(copy_of(s, false).rank);
  }
}

rdma::OpStatus KvStore::refresh_routing() { return fetch_routing(); }

rdma::OpStatus KvStore::debug_write_copy(std::uint64_t key, bool replica,
                                         std::uint64_t value) {
  const int shard = shard_of(key);
  const Copy c = copy_of(shard, replica);
  return write_region(c.rank, shard, replica, key, value, false);
}

// --- failover ----------------------------------------------------------------

bool KvStore::any_peer_dead() const {
  for (int r = 0; r < nranks_; ++r) {
    if (!win_.peer_alive(r)) return true;
  }
  return false;
}

void KvStore::fail_over(int shard) {
  if (degraded_[static_cast<std::size_t>(shard)]) return;
  degraded_[static_cast<std::size_t>(shard)] = true;
  // Primary-stamped epochs can no longer be validated: drop the cache.
  cache_[static_cast<std::size_t>(shard)].clear();
  ++stats_.failovers;
  count(Op::kv_failover);
}

rdma::OpStatus KvStore::maybe_revoke(int t, std::size_t ver_off,
                                     std::uint64_t stuck_ver) {
  // A writer that died between lock (v -> odd) and release leaves the
  // seqlock wedged. Only ever force-release when a death has actually been
  // observed; the CAS makes revocation race-safe against a live writer's
  // own release. The cell's last in-flight write may or may not have
  // landed — fail-stop semantics, either value is a legal outcome.
  //
  // The status matters to the caller: when the cell's HOST is dead, the
  // version is frozen odd forever and the revocation CAS (a mutating AMO)
  // retires peer_dead without touching the image — the spin can never be
  // released and the caller must retire typed instead of waiting.
  if (!any_peer_dead()) return rdma::OpStatus::ok;
  std::uint64_t prev = 0;
  return amo_cas(t, ver_off, stuck_ver, stuck_ver + 1, &prev);
}

// --- seqlock cell protocol ----------------------------------------------------

rdma::OpStatus KvStore::seq_read(int t, std::size_t cell_off,
                                 std::uint64_t key, std::uint64_t* value,
                                 bool* found) {
  Backoff bo;
  int stuck = 0;
  while (true) {
    std::uint64_t v1 = 0;
    auto st = amo_read(t, cell_off + kVerOff, &v1);
    if (st != rdma::OpStatus::ok) return st;
    if (v1 == 0) {  // insert claimed but not linearized yet: a legal miss
      *found = false;
      return rdma::OpStatus::ok;
    }
    if ((v1 & 1) != 0) {  // write in progress
      ++stats_.read_retries;
      count(Op::kv_read_retry);
      if (++stuck > kRevokeSpins) {
        // Host died with the cell locked: the frozen image stays odd
        // forever and revocation cannot land. Retire typed so the caller
        // fails over to the other copy instead of spinning on the corpse.
        if (maybe_revoke(t, cell_off + kVerOff, v1) ==
            rdma::OpStatus::peer_dead) {
          return rdma::OpStatus::peer_dead;
        }
        stuck = 0;
      }
      bo.pause();
      fabric_->yield_check();
      continue;
    }
    // Key re-read inside the version snapshot: the cell may have been
    // tombstoned and reclaimed by a different key since we located it.
    std::uint64_t k = 0;
    st = amo_read(t, cell_off, &k);
    if (st != rdma::OpStatus::ok) return st;
    std::uint64_t val = 0;
    st = amo_read(t, cell_off + kValOff, &val);
    if (st != rdma::OpStatus::ok) return st;
    std::uint64_t v2 = 0;
    st = amo_read(t, cell_off + kVerOff, &v2);
    if (st != rdma::OpStatus::ok) return st;
    if (v1 == v2) {
      *found = (k == key);
      *value = *found ? val : 0;
      return rdma::OpStatus::ok;
    }
    ++stats_.read_retries;  // version moved underneath us: reread
    count(Op::kv_read_retry);
    bo.pause();
    fabric_->yield_check();
  }
}

rdma::OpStatus KvStore::seq_write(int t, int shard, bool replica,
                                  std::size_t cell_off, std::uint64_t value) {
  // value == kTombstone means erase: the KEY word is overwritten (readers
  // then miss), the value word is left alone.
  Backoff bo;
  int stuck = 0;
  std::uint64_t v = 0;
  while (true) {  // lock: CAS version even -> odd
    auto st = amo_read(t, cell_off + kVerOff, &v);
    if (st != rdma::OpStatus::ok) return st;
    if ((v & 1) == 0) {
      std::uint64_t prev = 0;
      st = amo_cas(t, cell_off + kVerOff, v, v + 1, &prev);
      if (st != rdma::OpStatus::ok) return st;
      if (prev == v) break;
    } else if (++stuck > kRevokeSpins) {
      if (maybe_revoke(t, cell_off + kVerOff, v) ==
          rdma::OpStatus::peer_dead) {
        return rdma::OpStatus::peer_dead;  // host dead, lock frozen odd
      }
      stuck = 0;
    }
    bo.pause();
    fabric_->yield_check();
  }
  auto st = value == kTombstone ? amo_write(t, cell_off, kTombstone)
                                : amo_write(t, cell_off + kValOff, value);
  // Release even on failure so a typed fault does not wedge the cell.
  const auto rel = amo_write(t, cell_off + kVerOff, v + 2);
  if (st == rdma::OpStatus::ok) st = rel;
  if (st != rdma::OpStatus::ok) return st;
  // Invalidate every client's cached view of the shard: one AMO.
  return amo_add(t, epoch_off(shard, replica), 1);
}

// --- cell location ------------------------------------------------------------

rdma::OpStatus KvStore::locate(int t, const BucketLayout& l,
                               std::uint64_t key, bool claim,
                               std::uint64_t value, std::size_t* cell_off,
                               bool* fresh_insert) {
  const std::size_t slot = slot_of(key);
  *cell_off = 0;
  *fresh_insert = false;
  Backoff bo;
  while (true) {  // restarted only by tombstone-reclaim races
    if (claim) {
      std::uint64_t prev = 0;
      auto st = amo_cas(t, l.off_table(slot), 0, key, &prev);
      if (st != rdma::OpStatus::ok) return st;
      if (prev == 0 || prev == key) {  // claimed fresh or already ours
        *cell_off = l.off_table(slot);
        return rdma::OpStatus::ok;
      }
      if (prev == kTombstone) {  // reclaim the erased top cell
        std::uint64_t p2 = 0;
        st = amo_cas(t, l.off_table(slot), kTombstone, key, &p2);
        if (st != rdma::OpStatus::ok) return st;
        if (p2 == kTombstone) {
          *cell_off = l.off_table(slot);
          return rdma::OpStatus::ok;
        }
        bo.pause();  // lost the reclaim race: re-examine the slot
        fabric_->yield_check();
        continue;
      }
    } else {
      std::uint64_t top = 0;
      const auto st = amo_read(t, l.off_table(slot), &top);
      if (st != rdma::OpStatus::ok) return st;
      if (top == key) {
        *cell_off = l.off_table(slot);
        return rdma::OpStatus::ok;
      }
      if (top == 0) return rdma::OpStatus::ok;  // slot never claimed: miss
    }

    // Walk the overflow chain (atomic one-sided reads, as fig7a).
    std::uint64_t head = 0;
    auto st = amo_read(t, l.off_chain(slot), &head);
    if (st != rdma::OpStatus::ok) return st;
    while (head != 0) {
      const auto idx = static_cast<std::size_t>(head - 1);
      std::uint64_t k = 0;
      st = amo_read(t, l.off_heap(idx), &k);
      if (st != rdma::OpStatus::ok) return st;
      if (k == key) {
        *cell_off = l.off_heap(idx);
        return rdma::OpStatus::ok;
      }
      if (claim && k == kTombstone) {  // reclaim an erased chain cell
        std::uint64_t p2 = 0;
        st = amo_cas(t, l.off_heap(idx), kTombstone, key, &p2);
        if (st != rdma::OpStatus::ok) return st;
        if (p2 == kTombstone || p2 == key) {
          *cell_off = l.off_heap(idx);
          return rdma::OpStatus::ok;
        }
      }
      st = amo_read(t, l.off_cell_next(idx), &head);
      if (st != rdma::OpStatus::ok) return st;
    }
    if (!claim) return rdma::OpStatus::ok;  // exhausted: miss

    // Fresh overflow insert: acquire a cell, publish it fully formed
    // (version already even and nonzero, value in place), then link it at
    // the chain head — reachable implies readable, no seqlock pass needed.
    const std::uint64_t one = 1;
    std::uint64_t idx = 0;
    auto freq = win_.rfetch_and_op(&one, &idx, Elem::u64, RedOp::sum, t,
                                   l.off_next_free());
    st = wait_req(freq);
    if (st != rdma::OpStatus::ok) return st;
    FOMPI_REQUIRE(idx < l.heap_slots, ErrClass::no_mem,
                  "kv shard overflow heap exhausted");
    const std::uint64_t cell[3] = {key, 2, value};
    auto preq =
        win_.rput(cell, 24, t, l.off_heap(static_cast<std::size_t>(idx)));
    st = wait_req(preq);  // cell words complete before the link lands
    if (st != rdma::OpStatus::ok) return st;
    while (true) {
      std::uint64_t chead = 0;
      st = amo_read(t, l.off_chain(slot), &chead);
      if (st != rdma::OpStatus::ok) return st;
      auto nreq = win_.rput(&chead, 8, t,
                            l.off_cell_next(static_cast<std::size_t>(idx)));
      st = wait_req(nreq);
      if (st != rdma::OpStatus::ok) return st;
      std::uint64_t prev = 0;
      st = amo_cas(t, l.off_chain(slot), chead, idx + 1, &prev);
      if (st != rdma::OpStatus::ok) return st;
      if (prev == chead) break;
      bo.pause();
      fabric_->yield_check();
    }
    *cell_off = l.off_heap(static_cast<std::size_t>(idx));
    *fresh_insert = true;
    return rdma::OpStatus::ok;
  }
}

// --- region-level ops --------------------------------------------------------

rdma::OpStatus KvStore::read_region(int t, const BucketLayout& l,
                                    std::uint64_t key, std::uint64_t* value,
                                    bool* found) {
  *found = false;
  *value = 0;
  std::size_t cell = 0;
  bool fresh = false;
  const auto st = locate(t, l, key, /*claim=*/false, 0, &cell, &fresh);
  if (st != rdma::OpStatus::ok || cell == 0) return st;
  return seq_read(t, cell, key, value, found);
}

rdma::OpStatus KvStore::write_region(int t, int shard, bool replica,
                                     std::uint64_t key, std::uint64_t value,
                                     bool is_erase) {
  std::size_t cell = 0;
  bool fresh = false;
  const auto st =
      locate(t, layout_for(shard, replica), key, /*claim=*/!is_erase, value,
             &cell, &fresh);
  if (st != rdma::OpStatus::ok) return st;
  if (cell == 0) return rdma::OpStatus::ok;  // erase of an absent key
  if (fresh) {  // already published whole; just invalidate caches
    return amo_add(t, epoch_off(shard, replica), 1);
  }
  return seq_write(t, shard, replica, cell, is_erase ? kTombstone : value);
}

// --- client ops --------------------------------------------------------------

namespace {
void require_user_key(std::uint64_t key) {
  FOMPI_REQUIRE(key != 0 && key != kTombstone, ErrClass::arg,
                "kv keys must be nonzero and not the tombstone");
}
}  // namespace

rdma::OpStatus KvStore::data_loss_on(int /*shard*/) {
  // The addressed shard's owner AND replica are dead: under fail-stop the
  // frozen images stay readable, but serving them would hand out values
  // that can never be repaired or invalidated — retire typed instead.
  ++stats_.data_loss_ops;
  return rdma::OpStatus::data_loss;
}

rdma::OpStatus KvStore::put(std::uint64_t key, std::uint64_t value) {
  require_user_key(key);
  ++stats_.puts;
  const auto gst = check_generation();
  if (gst != rdma::OpStatus::ok) return gst;
  const int shard = shard_of(key);
  if (!degraded_[static_cast<std::size_t>(shard)] &&
      !win_.peer_alive(owner_of(shard))) {
    fail_over(shard);
  }
  if (degraded_[static_cast<std::size_t>(shard)]) {
    const int rep = replica_of(shard);
    if (!win_.peer_alive(rep)) return data_loss_on(shard);
    return write_region(rep, shard, /*replica=*/true, key, value, false);
  }
  auto st = write_region(owner_of(shard), shard, false, key, value, false);
  if (st == rdma::OpStatus::peer_dead) {
    ++stats_.peer_dead_ops;
    fail_over(shard);
    const int rep = replica_of(shard);
    if (!win_.peer_alive(rep)) return data_loss_on(shard);
    return write_region(rep, shard, true, key, value, false);
  }
  if (st != rdma::OpStatus::ok || !cfg_.replicate) return st;
  const auto rst =
      write_region(replica_of(shard), shard, true, key, value, false);
  if (rst == rdma::OpStatus::peer_dead) {
    ++stats_.peer_dead_ops;  // primary holds the write: absorbed
    return rdma::OpStatus::ok;
  }
  return rst;
}

rdma::OpStatus KvStore::erase(std::uint64_t key) {
  require_user_key(key);
  ++stats_.erases;
  const auto gst = check_generation();
  if (gst != rdma::OpStatus::ok) return gst;
  const int shard = shard_of(key);
  if (!degraded_[static_cast<std::size_t>(shard)] &&
      !win_.peer_alive(owner_of(shard))) {
    fail_over(shard);
  }
  if (degraded_[static_cast<std::size_t>(shard)]) {
    const int rep = replica_of(shard);
    if (!win_.peer_alive(rep)) return data_loss_on(shard);
    return write_region(rep, shard, true, key, 0, /*is_erase=*/true);
  }
  auto st = write_region(owner_of(shard), shard, false, key, 0, true);
  if (st == rdma::OpStatus::peer_dead) {
    ++stats_.peer_dead_ops;
    fail_over(shard);
    const int rep = replica_of(shard);
    if (!win_.peer_alive(rep)) return data_loss_on(shard);
    return write_region(rep, shard, true, key, 0, true);
  }
  if (st != rdma::OpStatus::ok || !cfg_.replicate) return st;
  const auto rst = write_region(replica_of(shard), shard, true, key, 0, true);
  if (rst == rdma::OpStatus::peer_dead) {
    ++stats_.peer_dead_ops;
    return rdma::OpStatus::ok;
  }
  return rst;
}

rdma::OpStatus KvStore::get(std::uint64_t key, std::uint64_t* value,
                            bool* found) {
  require_user_key(key);
  ++stats_.gets;
  *found = false;
  *value = 0;
  const int shard = shard_of(key);
  const bool suspect = routing_suspect();
  if (!degraded_[static_cast<std::size_t>(shard)] &&
      !win_.peer_alive(owner_of(shard))) {
    fail_over(shard);
  }
  const bool deg = degraded_[static_cast<std::size_t>(shard)];
  const int t = deg ? replica_of(shard) : owner_of(shard);
  if (deg && !win_.peer_alive(t)) return data_loss_on(shard);

  bool gen_checked = !suspect;
  if (cfg_.client_cache && !deg) {
    std::uint64_t ep = 0;
    rdma::OpStatus est;
    if (suspect) {
      // The generation check rides alongside the epoch check: both AMOs
      // in flight together, so validation costs one overlapped round
      // trip, not two serialized ones (the 1.5x post-recovery p99 budget
      // depends on this).
      std::uint64_t g = 0;
      est = amo_read2(cfg_.routing_rank, 0, &g, t, epoch_off(shard, false),
                      &ep);
      if (est == rdma::OpStatus::ok) {
        gen_checked = true;
        if (g != gen_seen_) return handle_gen_mismatch(g);
      }
    } else {
      est = amo_read(t, epoch_off(shard, false), &ep);
    }
    if (est == rdma::OpStatus::ok) {
      auto& entries = cache_[static_cast<std::size_t>(shard)];
      if (ep == epoch_seen_[static_cast<std::size_t>(shard)]) {
        const auto it = entries.find(key);
        if (it != entries.end()) {
          *value = it->second;
          *found = true;
          ++stats_.cache_hits;
          count(Op::kv_cache_hit);
          return rdma::OpStatus::ok;
        }
      } else {  // a writer bumped the epoch: drop the whole shard's view
        entries.clear();
        epoch_seen_[static_cast<std::size_t>(shard)] = ep;
      }
    }
    ++stats_.cache_misses;
    count(Op::kv_cache_miss);
  }
  if (!gen_checked) {
    const auto gst = check_generation();
    if (gst != rdma::OpStatus::ok) return gst;
  }

  auto st = read_region(t, layout_for(shard, deg), key, value, found);
  if (st == rdma::OpStatus::peer_dead && !deg) {
    ++stats_.peer_dead_ops;
    fail_over(shard);
    const int rep = replica_of(shard);
    if (!win_.peer_alive(rep)) return data_loss_on(shard);
    st = read_region(rep, layout_for(shard, true), key, value, found);
  }
  if (st == rdma::OpStatus::ok && *found && cfg_.client_cache && !deg &&
      !degraded_[static_cast<std::size_t>(shard)]) {
    cache_[static_cast<std::size_t>(shard)][key] = *value;
  }
  return st;
}

// --- closed-loop client fleet -------------------------------------------------
//
// Each fiber pulls ops off a shared per-rank cursor. The dominant path — a
// cache-validating get that hits, or a top-cell versioned read — runs as an
// explicit-handle AMO pipeline (the fiber parks on each in-flight word),
// so one rank keeps `fibers` ops in flight. Rare paths (chain walks,
// seqlock retries, writes, degraded routing) fall back to the blocking
// client ops: correct, just momentarily unoverlapped.

struct KvStore::ClientFiber final : fabric::progress::Fiber {
  struct FleetOp {
    std::uint64_t key;
    bool is_read;
  };

  ClientFiber(KvStore& kv, const std::vector<FleetOp>& ops,
              std::size_t* cursor, FleetResult* res)
      : kv(kv), ops(ops), cursor(cursor), res(res) {}

  void record(bool is_read, std::uint64_t t0,
              rdma::OpStatus st = rdma::OpStatus::ok) {
    // Retirement identity: every pulled op lands in exactly one bucket, so
    // issued == ok + peer_dead + retry_routing + data_loss + failed_other
    // (the chaos tests assert this).
    switch (st) {
      case rdma::OpStatus::ok: ++res->ok_ops; break;
      case rdma::OpStatus::peer_dead: ++res->peer_dead; break;
      case rdma::OpStatus::retry_routing: ++res->retry_routing; break;
      case rdma::OpStatus::data_loss: ++res->data_loss; break;
      default: ++res->failed_other; break;
    }
    const std::uint64_t dur = now_ns() - t0;
    if (is_read) {
      ++res->reads;
      res->read_hist.add(dur);
    } else {
      ++res->writes;
      res->write_hist.add(dur);
    }
    trace::emit(trace::EvClass::kv, trace::EvPhase::issue, target,
                ops[at].key, dur);
  }

  void blocking_op(std::uint64_t t0) {
    std::uint64_t v = 0;
    bool found = false;
    const auto st = ops[at].is_read
                        ? kv.get(ops[at].key, &v, &found)
                        : kv.put(ops[at].key, ops[at].key * 31 + 7);
    record(ops[at].is_read, t0, st);
  }

  void step(fabric::progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    while (*cursor < ops.size()) {
      at = (*cursor)++;
      ++res->issued;
      t0 = now_ns();
      shard = kv.shard_of(ops[at].key);
      target = kv.owner_of(shard);  // trace label even on the slow path
      if (!ops[at].is_read || kv.routing_suspect() ||
          kv.degraded_[static_cast<std::size_t>(shard)] ||
          !kv.win_.peer_alive(target)) {
        // Writes, degraded routing, and any post-death op (which must
        // validate the routing generation) take the blocking path.
        blocking_op(t0);
        continue;
      }
      l = kv.layout_for(shard, false);
      ++kv.stats_.gets;
      if (kv.cfg_.client_cache) {
        // Pipelined cache validation: one awaited epoch AMO.
        req = kv.win_.rfetch_and_op(nullptr, &ep, Elem::u64, RedOp::no_op,
                                    target, kv.epoch_off(shard, false));
        FOMPI_FIBER_AWAIT(s, req.handles()[0]);
        req.dismiss();
        if (wake_status() != rdma::OpStatus::ok) {
          --kv.stats_.gets;  // hand the whole op to the blocking path
          blocking_op(t0);
          continue;
        }
        if (ep == kv.epoch_seen_[static_cast<std::size_t>(shard)]) {
          if (cache_lookup()) {
            record(true, t0);
            continue;
          }
        } else {
          kv.cache_[static_cast<std::size_t>(shard)].clear();
          kv.epoch_seen_[static_cast<std::size_t>(shard)] = ep;
        }
        ++kv.stats_.cache_misses;
        count(Op::kv_cache_miss);
      }
      // Pipelined top-cell versioned read.
      req = kv.win_.rfetch_and_op(nullptr, &top, Elem::u64, RedOp::no_op,
                                  target, l.off_table(kv.slot_of(ops[at].key)));
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      if (wake_status() != rdma::OpStatus::ok) {
        fallback_whole_read(t0);
        continue;
      }
      if (top == 0) {  // empty slot: a miss, complete
        record(true, t0);
        continue;
      }
      if (top != ops[at].key) {  // collision chain: rare, blocking walk
        fallback_located_read(t0);
        continue;
      }
      cell = l.off_table(kv.slot_of(ops[at].key));
      req = kv.win_.rfetch_and_op(nullptr, &v1, Elem::u64, RedOp::no_op,
                                  target, cell + kVerOff);
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      if (wake_status() != rdma::OpStatus::ok || (v1 & 1) != 0) {
        fallback_located_read(t0);
        continue;
      }
      if (v1 == 0) {  // claimed, not linearized: a legal miss
        record(true, t0);
        continue;
      }
      req = kv.win_.rfetch_and_op(nullptr, &kw, Elem::u64, RedOp::no_op,
                                  target, cell);
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      req = kv.win_.rfetch_and_op(nullptr, &val, Elem::u64, RedOp::no_op,
                                  target, cell + kValOff);
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      req = kv.win_.rfetch_and_op(nullptr, &v2, Elem::u64, RedOp::no_op,
                                  target, cell + kVerOff);
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      if (wake_status() != rdma::OpStatus::ok || v1 != v2) {
        ++kv.stats_.read_retries;  // torn snapshot: resolve blocking
        count(Op::kv_read_retry);
        fallback_located_read(t0);
        continue;
      }
      if (kw == ops[at].key && kv.cfg_.client_cache &&
          !kv.degraded_[static_cast<std::size_t>(shard)]) {
        kv.cache_[static_cast<std::size_t>(shard)][ops[at].key] = val;
      }
      record(true, t0);
    }
    FOMPI_FIBER_END();
  }

  bool cache_lookup() {
    auto& entries = kv.cache_[static_cast<std::size_t>(shard)];
    const auto it = entries.find(ops[at].key);
    if (it == entries.end()) return false;
    ++kv.stats_.cache_hits;
    ++res->cache_hits;
    count(Op::kv_cache_hit);
    return true;
  }

  void fallback_whole_read(std::uint64_t t0_) {
    --kv.stats_.gets;
    --kv.stats_.cache_misses;  // get() re-counts the full op
    blocking_op(t0_);
  }

  void fallback_located_read(std::uint64_t t0_) {
    std::uint64_t v = 0;
    bool found = false;
    const auto st = kv.read_region(target, l, ops[at].key, &v, &found);
    if (st == rdma::OpStatus::peer_dead) {
      kv.fail_over(shard);
    } else if (st == rdma::OpStatus::ok && found && kv.cfg_.client_cache &&
               !kv.degraded_[static_cast<std::size_t>(shard)]) {
      kv.cache_[static_cast<std::size_t>(shard)][ops[at].key] = v;
    }
    record(true, t0_, st);
  }

  KvStore& kv;
  const std::vector<FleetOp>& ops;
  std::size_t* cursor;
  FleetResult* res;
  std::size_t at = 0, cell = 0;
  std::uint64_t t0 = 0, ep = 0, top = 0, v1 = 0, v2 = 0, kw = 0, val = 0;
  int shard = 0, target = 0;
  BucketLayout l;
  core::RmaRequest req;
};

KvStore::FleetResult KvStore::run_fleet(fabric::RankCtx& ctx,
                                        const FleetConfig& fc) {
  FOMPI_REQUIRE(fc.ops_per_rank >= 0 && fc.fibers >= 1 && fc.keyspace >= 1,
                ErrClass::arg, "bad fleet config");
  // The op stream is an exact function of (seed, rank): the chaos gates
  // compare fleet counter totals across runs.
  Zipf zipf(fc.keyspace, fc.zipf_s,
            fc.seed * 0x9e3779b9u + static_cast<std::uint64_t>(ctx.rank()));
  Rng coin(fc.seed ^ (0xc0ffee + static_cast<std::uint64_t>(ctx.rank())));
  std::vector<ClientFiber::FleetOp> ops(
      static_cast<std::size_t>(fc.ops_per_rank));
  for (auto& op : ops) {
    op.key = zipf.next() + 1;  // keys are 1-based (0 is reserved-empty)
    op.is_read = coin.uniform() < fc.read_ratio;
  }
  FleetResult res;
  fabric::progress::Scheduler sched(*fabric_, rank_);
  std::size_t cursor = 0;
  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(fc.fibers),
      std::max<std::size_t>(1, ops.size()));
  for (std::size_t i = 0; i < pool; ++i) {
    sched.spawn<ClientFiber>(*this, ops, &cursor, &res);
  }
  sched.run();
  return res;
}

}  // namespace fompi::kv

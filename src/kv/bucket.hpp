// Shared CAS-bucket protocol: the one-sided hash-bucket scheme of the
// paper's Fig 7a hashtable, extracted so the fig7a kernel (src/apps) and
// the KV service (src/kv) run ONE implementation instead of a fork.
//
// A bucket region inside a window is laid out as
//
//   [next_free][count][table: table_slots cells][chain: table_slots heads]
//   [heap: heap_slots cells]
//
// where every cell starts with an 8-byte key word and overflow cells end
// with an 8-byte next link (head value = cell index + 1, 0 = empty). The
// strides are parameters: the fig7a table stores bare keys (table_stride 8,
// cell_stride 16 = {key, next}), the KV store adds a seqlock version word
// and a value per cell (table_stride 24, cell_stride 32). With the fig7a
// strides the offsets are bit-identical to the original hashtable layout,
// so its figure numbers do not move.
//
// The protocol (paper Sec 4.1): claim the top slot with one remote CAS on
// the key word; on collision acquire an overflow cell with a fetch-add on
// next_free, fill it, then link it at the chain head with a read-put-flush-
// CAS loop (the cell is completely written before it becomes reachable).
// Lookups are one-sided atomic reads walking the chain.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "core/window.hpp"

namespace fompi::kv {

/// splitmix64-style avalanche; the fig7a key hash (kept bit-identical).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Byte layout of one bucket region, parameterized over cell strides and a
/// base offset so several regions (KV shards) can share one window.
struct BucketLayout {
  std::size_t base = 0;          ///< byte offset of the region in the window
  std::size_t table_slots = 0;
  std::size_t heap_slots = 0;
  std::size_t table_stride = 8;  ///< bytes per top cell (key word first)
  std::size_t cell_stride = 16;  ///< bytes per overflow cell (key first,
                                 ///< next link in the last 8 bytes)

  std::size_t off_next_free() const { return base; }
  std::size_t off_count() const { return base + 8; }
  std::size_t off_table(std::size_t slot) const {
    return base + 16 + table_stride * slot;
  }
  std::size_t off_chain(std::size_t slot) const {
    return base + 16 + table_stride * table_slots + 8 * slot;
  }
  std::size_t off_heap(std::size_t idx) const {
    return base + 16 + table_stride * table_slots + 8 * table_slots +
           cell_stride * idx;
  }
  /// Next-link word of overflow cell `idx` (its last 8 bytes).
  std::size_t off_cell_next(std::size_t idx) const {
    return off_heap(idx) + cell_stride - 8;
  }
  std::size_t region_bytes() const { return off_heap(heap_slots) - base; }
};

/// One-sided atomic read of an 8-byte word (get_accumulate with no_op).
inline std::uint64_t read_word(core::Win& win, int owner, std::size_t off) {
  std::uint64_t v = 0;
  win.get_accumulate(nullptr, &v, 1, Elem::u64, RedOp::no_op, owner, off);
  return v;
}

/// CAS-claims the top cell of `slot` with `key` (expected empty). Returns
/// the previous key word: 0 = claimed, `key` = duplicate, anything else =
/// collision (the caller takes the overflow path).
inline std::uint64_t claim_slot(core::Win& win, int owner,
                                const BucketLayout& l, std::size_t slot,
                                std::uint64_t key) {
  const std::uint64_t zero = 0;
  std::uint64_t old = 0;
  win.compare_and_swap(&key, &zero, &old, Elem::u64, owner, l.off_table(slot));
  return old;
}

/// Acquires a fresh overflow cell index with one fetch-add on the region's
/// next-free word. Raises no_mem when the heap is exhausted.
inline std::uint64_t acquire_cell(core::Win& win, int owner,
                                  const BucketLayout& l) {
  const std::uint64_t one = 1;
  std::uint64_t idx = 0;
  win.fetch_and_op(&one, &idx, Elem::u64, RedOp::sum, owner,
                   l.off_next_free());
  FOMPI_REQUIRE(idx < l.heap_slots, ErrClass::no_mem,
                "bucket overflow heap exhausted");
  return idx;
}

/// Links the (already filled) overflow cell `idx` at the head of `slot`'s
/// chain: read head, store it into the cell's next link, flush so the cell
/// is complete before it becomes reachable, then CAS the head to idx + 1.
inline void link_cell(core::Win& win, int owner, const BucketLayout& l,
                      std::size_t slot, std::uint64_t idx) {
  while (true) {
    std::uint64_t head = read_word(win, owner, l.off_chain(slot));
    win.put(&head, 8, owner, l.off_cell_next(static_cast<std::size_t>(idx)));
    win.flush(owner);
    const std::uint64_t linked = idx + 1;
    std::uint64_t prev = 0;
    win.compare_and_swap(&linked, &head, &prev, Elem::u64, owner,
                         l.off_chain(slot));
    if (prev == head) return;
  }
}

/// Walks `slot`'s overflow chain with one-sided atomic reads. Returns the
/// head-style link (cell index + 1) of the cell whose key word equals
/// `key`, or 0 when the chain has no such cell.
inline std::uint64_t find_in_chain(core::Win& win, int owner,
                                   const BucketLayout& l, std::size_t slot,
                                   std::uint64_t key) {
  std::uint64_t head = read_word(win, owner, l.off_chain(slot));
  while (head != 0) {
    const std::size_t idx = static_cast<std::size_t>(head - 1);
    if (read_word(win, owner, l.off_heap(idx)) == key) return head;
    head = read_word(win, owner, l.off_cell_next(idx));
  }
  return 0;
}

}  // namespace fompi::kv

// Self-healing recovery for the KV service (DESIGN.md §13).
//
// Fail-stop decoupling is the enabling property: a dead rank's registered
// memory stays READABLE (one-sided gets and fetch-AMOs succeed against the
// frozen image; only mutating ops retire peer_dead). Recovery exploits it
// three ways:
//
//   * election  — the coordinator is the lowest alive rank (monotone over
//     the fail-stop liveness table, so takeover after a coordinator death
//     is race-free: an odd generation the new leader did not set can only
//     have been set by a now-dead lower rank, and redoing its work is
//     idempotent — partially-published entries are valid reconfigurations
//     and drains fully overwrite their spare regions).
//   * drain     — each dead copy's frozen shard image is pulled with
//     chunked one-sided gets and pushed into a spare-bank region on a
//     surviving rank, restoring 2x redundancy without any cooperation
//     from the dead rank.
//   * scrub     — an anti-entropy pass reconciles the surviving copy with
//     the drained frozen image by seqlock snapshots + version-winner
//     repair, which is exactly what recovers writes that were acked on
//     the dead primary but never reached the replica.
//
// All waiting is fiber- or backoff-based through Fabric::yield_check —
// recovery never raw-spins, and costs nothing until a death is observed.
#include <algorithm>
#include <vector>

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "fabric/progress/progress.hpp"
#include "kv/kv.hpp"
#include "trace/trace.hpp"

namespace fompi::kv {

namespace {

// Cell word offsets, mirrored from kv.cpp (one seqlock protocol, two TUs).
constexpr std::size_t kVerOff = 8;
constexpr std::size_t kValOff = 16;

/// One planned re-replication: copy `src`'s (usually frozen) region into
/// the spare-bank region `dst`, then publish `word` as the shard's routing
/// entry. `status` is filled by the drain fiber.
struct DrainPlan {
  int shard = -1;
  Copy src;
  Copy dst;
  std::uint64_t word = 0;
  bool promoted = false;  ///< the dead copy was the primary
  rdma::OpStatus status = rdma::OpStatus::ok;
};

}  // namespace

// --- drain fiber -------------------------------------------------------------

struct KvStore::DrainFiber final : fabric::progress::Fiber {
  DrainFiber(KvStore& kv, DrainPlan* plan, std::uint64_t* drained)
      : kv(kv), plan(plan), drained(drained) {}

  void step(fabric::progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    total = kv.shard_region_bytes();
    buf.resize(kv.cfg_.drain_chunk);
    for (off = 0; off < total; off += kv.cfg_.drain_chunk) {
      n = std::min(kv.cfg_.drain_chunk, total - off);
      // Frozen-image read: succeeds even when src's host rank is dead.
      req = kv.win_.rget(buf.data(), n, plan->src.rank,
                         kv.copy_base(plan->src) + off);
      for (hi = 0; hi < req.handles().size(); ++hi) {
        FOMPI_FIBER_AWAIT(s, req.handles()[hi]);
        if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      }
      req.dismiss();
      if (plan->status != rdma::OpStatus::ok) return finish();
      // The spare target is alive (or was when planned): a mutating put,
      // so a mid-drain death surfaces here as a typed failure.
      req = kv.win_.rput(buf.data(), n, plan->dst.rank,
                         kv.copy_base(plan->dst) + off);
      if (req.handles().empty()) {
        const auto le = kv.win_.last_error();
        kv.win_.clear_last_error();
        fail(le != rdma::OpStatus::ok ? le : rdma::OpStatus::peer_dead);
      }
      for (hi = 0; hi < req.handles().size(); ++hi) {
        FOMPI_FIBER_AWAIT(s, req.handles()[hi]);
        if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      }
      req.dismiss();
      if (plan->status != rdma::OpStatus::ok) return finish();
      *drained += n;
      count(Op::kv_drain_chunk);
      trace::emit(trace::EvClass::recovery, trace::EvPhase::doorbell,
                  plan->src.rank, static_cast<std::uint64_t>(plan->shard),
                  n);
    }
    FOMPI_FIBER_END();
  }

  void fail(rdma::OpStatus st) {
    if (plan->status == rdma::OpStatus::ok) plan->status = st;
  }

  KvStore& kv;
  DrainPlan* plan;
  std::uint64_t* drained;
  std::vector<std::uint8_t> buf;
  std::size_t total = 0, off = 0, n = 0, hi = 0;
  core::RmaRequest req;
};

// --- scrub fiber -------------------------------------------------------------

struct KvStore::ScrubFiber final : fabric::progress::Fiber {
  ScrubFiber(KvStore& kv, Copy prim, Copy repl, std::size_t* cursor,
             ScrubResult* res)
      : kv(kv),
        prim(prim),
        repl(repl),
        pl(kv.layout_of(prim)),
        rl(kv.layout_of(repl)),
        cursor(cursor),
        res(res) {}

  void step(fabric::progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    cells = kv.cfg_.table_slots + kv.cfg_.heap_slots;
    while (*cursor < cells) {
      i = (*cursor)++;
      heap_cell = i >= kv.cfg_.table_slots;
      poff = heap_cell ? pl.off_heap(i - kv.cfg_.table_slots)
                       : pl.off_table(i);
      roff = heap_cell ? rl.off_heap(i - kv.cfg_.table_slots)
                       : rl.off_table(i);
      ++res->cells;
      count(Op::kv_scrub_cell);
      // Seqlock snapshot of BOTH sides, pipelined pairwise: versions,
      // then key+value words, then versions again. All reads, so they
      // succeed against frozen images too.
      qa = kv.win_.rfetch_and_op(nullptr, &pv1, Elem::u64, RedOp::no_op,
                                 prim.rank, poff + kVerOff);
      qb = kv.win_.rfetch_and_op(nullptr, &rv1, Elem::u64, RedOp::no_op,
                                 repl.rank, roff + kVerOff);
      FOMPI_FIBER_AWAIT(s, qa.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      FOMPI_FIBER_AWAIT(s, qb.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      qa.dismiss();
      qb.dismiss();
      if (res->status != rdma::OpStatus::ok) return finish();
      if ((pv1 & 1) != 0 || (rv1 & 1) != 0) {
        ++res->skipped;  // write in progress: the writer will converge it
        continue;
      }
      qa = kv.win_.rfetch_and_op(nullptr, &pk, Elem::u64, RedOp::no_op,
                                 prim.rank, poff);
      qb = kv.win_.rfetch_and_op(nullptr, &pval, Elem::u64, RedOp::no_op,
                                 prim.rank, poff + kValOff);
      qc = kv.win_.rfetch_and_op(nullptr, &rk, Elem::u64, RedOp::no_op,
                                 repl.rank, roff);
      qd = kv.win_.rfetch_and_op(nullptr, &rval, Elem::u64, RedOp::no_op,
                                 repl.rank, roff + kValOff);
      FOMPI_FIBER_AWAIT(s, qa.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      FOMPI_FIBER_AWAIT(s, qb.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      FOMPI_FIBER_AWAIT(s, qc.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      FOMPI_FIBER_AWAIT(s, qd.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      qa.dismiss();
      qb.dismiss();
      qc.dismiss();
      qd.dismiss();
      if (res->status != rdma::OpStatus::ok) return finish();
      qa = kv.win_.rfetch_and_op(nullptr, &pv2, Elem::u64, RedOp::no_op,
                                 prim.rank, poff + kVerOff);
      qb = kv.win_.rfetch_and_op(nullptr, &rv2, Elem::u64, RedOp::no_op,
                                 repl.rank, roff + kVerOff);
      FOMPI_FIBER_AWAIT(s, qa.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      FOMPI_FIBER_AWAIT(s, qb.handles()[0]);
      if (wake_status() != rdma::OpStatus::ok) fail(wake_status());
      qa.dismiss();
      qb.dismiss();
      if (res->status != rdma::OpStatus::ok) return finish();
      if (pv1 != pv2 || rv1 != rv2) {
        ++res->skipped;  // torn snapshot: racing writer owns the cell
        continue;
      }
      if (pk == rk && pval == rval) continue;  // converged
      if (pk != rk && heap_cell) {
        // Heap cells with different keys are STRUCTURAL chain divergence
        // (the two regions allocated overflow cells in different orders);
        // copying one over the other would orphan a key under the wrong
        // slot chain. Count and leave them — per-key correctness is
        // carried by whichever region's chain holds the key.
        ++res->skipped;
        continue;
      }
      // Version winner; key conflicts on a top slot go to the primary
      // (the authoritative region for reads).
      to_repl = (pk != rk) ? true : (rv1 > pv1 ? false : true);
      {
        const auto st =
            to_repl ? kv.repair_cell(repl, roff, rv1, pk, pval, pv1)
                    : kv.repair_cell(prim, poff, pv1, rk, rval, rv1);
        if (st == rdma::OpStatus::ok) {
          ++res->repairs;
          count(Op::kv_scrub_repair);
          trace::emit(trace::EvClass::recovery, trace::EvPhase::retry,
                      to_repl ? repl.rank : prim.rank, to_repl ? roff : poff,
                      0);
        } else if (st == rdma::OpStatus::retired) {
          ++res->skipped;  // lost the lock race to a live writer: converges
        } else {
          fail(st);
          return finish();
        }
      }
    }
    FOMPI_FIBER_END();
  }

  void fail(rdma::OpStatus st) {
    if (res->status == rdma::OpStatus::ok) res->status = st;
  }

  KvStore& kv;
  Copy prim, repl;
  BucketLayout pl, rl;
  std::size_t* cursor;
  ScrubResult* res;
  std::size_t cells = 0, i = 0, poff = 0, roff = 0;
  bool heap_cell = false, to_repl = false;
  std::uint64_t pv1 = 0, pv2 = 0, rv1 = 0, rv2 = 0;
  std::uint64_t pk = 0, rk = 0, pval = 0, rval = 0;
  core::RmaRequest qa, qb, qc, qd;
};

// --- cell repair -------------------------------------------------------------

rdma::OpStatus KvStore::repair_cell(const Copy& loser, std::size_t cell_off,
                                    std::uint64_t locked_ver,
                                    std::uint64_t key, std::uint64_t value,
                                    std::uint64_t winner_ver) {
  // Lock the loser cell through its own seqlock: CAS the even version we
  // snapshotted to odd. Losing the CAS means a live writer moved the cell
  // first — report `retired` so the caller skips (the writer's update is
  // newer than our snapshot anyway).
  std::uint64_t prev = 0;
  auto st = amo_cas(loser.rank, cell_off + kVerOff, locked_ver,
                    locked_ver + 1, &prev);
  if (st != rdma::OpStatus::ok) return st;
  if (prev != locked_ver) return rdma::OpStatus::retired;
  st = amo_write(loser.rank, cell_off, key);
  if (st == rdma::OpStatus::ok) {
    st = amo_write(loser.rank, cell_off + kValOff, value);
  }
  // Release at (at least) the winner's version so the pair compares equal
  // on the next scrub pass; never release below our own lock.
  std::uint64_t rel = locked_ver + 2;
  if ((winner_ver & 1) == 0 && winner_ver > rel) rel = winner_ver;
  const auto relst = amo_write(loser.rank, cell_off + kVerOff, rel);
  if (st == rdma::OpStatus::ok) st = relst;
  if (st != rdma::OpStatus::ok) return st;
  // Invalidate cached views of the repaired region.
  return amo_add(loser.rank, epoch_off_of(loser), 1);
}

// --- scrub -------------------------------------------------------------------

ScrubResult KvStore::scrub(int shard) {
  ScrubResult res;
  const Copy prim = copy_of(shard, false);
  const Copy repl = copy_of(shard, true);
  // Repairs mutate the loser: both sides must be writable. (Snapshots of a
  // frozen image would work, but a repair against a dead rank cannot.)
  if (!win_.peer_alive(prim.rank) || !win_.peer_alive(repl.rank)) {
    res.status = rdma::OpStatus::peer_dead;
    return res;
  }
  fabric::progress::Scheduler sched(*fabric_, rank_);
  std::size_t cursor = 0;
  const int pool = std::max(1, std::min(cfg_.scrub_fibers,
                                        static_cast<int>(cfg_.table_slots)));
  for (int i = 0; i < pool; ++i) {
    sched.spawn<ScrubFiber>(*this, prim, repl, &cursor, &res);
  }
  sched.run();
  return res;
}

// --- spare placement ---------------------------------------------------------

Copy KvStore::pick_spare(int owner_rank,
                         const std::vector<std::uint64_t>& table,
                         std::vector<std::uint8_t>* spare_used) const {
  (void)table;  // occupancy is pre-scanned into spare_used by coordinate()
  // First alive rank after the surviving copy's host (never the host
  // itself: co-locating both copies would void the redundancy), first free
  // spare-bank slot on it.
  for (int d = 1; d < nranks_; ++d) {
    const int r = (owner_rank + d) % nranks_;
    if (r == owner_rank || !win_.peer_alive(r)) continue;
    for (int sl = 0; sl < spare_slots(); ++sl) {
      auto& used =
          (*spare_used)[static_cast<std::size_t>(r * spare_slots() + sl)];
      if (used == 0) {
        used = 1;
        return Copy{r, 2, sl};
      }
    }
  }
  return Copy{};  // rank -1: no spare capacity among survivors
}

// --- coordinator body --------------------------------------------------------

rdma::OpStatus KvStore::coordinate(std::uint64_t gen, RecoveryReport* rep) {
  count(Op::kv_recovery);
  trace::emit(trace::EvClass::recovery, trace::EvPhase::begin, rank_, 0, gen);
  std::vector<std::uint64_t> table;
  auto st = raw_fetch_table(&table);
  if (st != rdma::OpStatus::ok) return st;

  // Spare-bank occupancy from the table itself: the generation CAS
  // serializes coordinators, so a single scan is authoritative.
  std::vector<std::uint8_t> spare_used(
      static_cast<std::size_t>(nranks_ * spare_slots()), 0);
  for (const auto w : table) {
    const Copy a = unpack_copy(static_cast<std::uint32_t>(w));
    const Copy b = unpack_copy(static_cast<std::uint32_t>(w >> 32));
    if (a.bank == 2 && a.rank >= 0) {
      spare_used[static_cast<std::size_t>(a.rank * spare_slots() + a.slot)] =
          1;
    }
    if (b.bank == 2 && b.rank >= 0) {
      spare_used[static_cast<std::size_t>(b.rank * spare_slots() + b.slot)] =
          1;
    }
  }

  std::vector<int> touched;
  Backoff bo;
  while (true) {
    // Plan: one drain per shard with exactly one dead copy. Re-planned
    // after every pass so a rank that dies mid-drain or mid-scrub gets
    // folded in instead of wedging recovery.
    fabric_->yield_check();
    std::vector<DrainPlan> plans;
    rep->lost = 0;
    for (int s = 0; s < cfg_.shards; ++s) {
      const std::uint64_t w = table[static_cast<std::size_t>(s)];
      const Copy prim = unpack_copy(static_cast<std::uint32_t>(w));
      const Copy repl = unpack_copy(static_cast<std::uint32_t>(w >> 32));
      const bool pa = win_.peer_alive(prim.rank);
      const bool ra = win_.peer_alive(repl.rank);
      if (pa && ra) continue;
      if (!pa && !ra) {
        ++rep->lost;  // unrecoverable: clients retire data_loss
        continue;
      }
      DrainPlan p;
      p.shard = s;
      p.promoted = !pa;              // the primary died: replica promotes
      const Copy keep = pa ? prim : repl;
      p.src = pa ? repl : prim;      // drain the dead copy's frozen image
      p.dst = pick_spare(keep.rank, table, &spare_used);
      FOMPI_REQUIRE(p.dst.rank >= 0, ErrClass::no_mem,
                    "kv recovery: spare bank exhausted among survivors");
      p.word = static_cast<std::uint64_t>(pack_copy(keep)) |
               (static_cast<std::uint64_t>(pack_copy(p.dst)) << 32);
      plans.push_back(p);
    }
    if (plans.empty()) break;

    // Drain all frozen images concurrently on the progress engine.
    {
      fabric::progress::Scheduler sched(*fabric_, rank_);
      for (auto& p : plans) {
        sched.spawn<DrainFiber>(*this, &p, &rep->drained_bytes);
      }
      sched.run();
    }

    // Publish the entries whose drains landed; a failed drain (spare died
    // mid-copy) leaves its shard for the next planning pass.
    bool all_ok = true;
    for (auto& p : plans) {
      const Copy keep =
          unpack_copy(static_cast<std::uint32_t>(p.word));
      if (p.status != rdma::OpStatus::ok || !win_.peer_alive(p.dst.rank) ||
          !win_.peer_alive(keep.rank)) {
        all_ok = false;
        continue;
      }
      st = amo_write(cfg_.routing_rank,
                     16 + 8 * static_cast<std::size_t>(p.shard), p.word);
      if (st != rdma::OpStatus::ok) return st;
      table[static_cast<std::size_t>(p.shard)] = p.word;
      if (p.promoted) ++rep->promoted;
      ++rep->rereplicated;
      touched.push_back(p.shard);
      trace::emit(trace::EvClass::recovery, trace::EvPhase::issue,
                  keep.rank, static_cast<std::uint64_t>(p.shard), 0);
    }
    if (all_ok) {
      // Adopt the published table locally (the coordinator is also a
      // client) and reconcile every touched pair: the drained frozen image
      // carries writes the promoted replica may have never seen, and the
      // promoted copy carries writes newer than the frozen image.
      const std::vector<std::uint64_t> old = routing_;
      routing_ = table;
      apply_routing(old);
      bool rescan = false;
      for (const int s : touched) {
        const ScrubResult sr = scrub(s);
        rep->scrub_cells += sr.cells;
        rep->scrub_repairs += sr.repairs;
        if (sr.status != rdma::OpStatus::ok) rescan = true;  // death mid-scrub
      }
      touched.clear();
      if (!rescan) break;
    }
    bo.pause();
  }

  // Release the generation: even again, one CAS-visible word. gen_seen_
  // follows so the coordinator's own ops validate clean.
  st = amo_write(cfg_.routing_rank, 0, gen + 1);
  if (st != rdma::OpStatus::ok) return st;
  gen_seen_ = gen + 1;
  rep->generation = gen + 1;
  trace::emit(trace::EvClass::recovery, trace::EvPhase::complete, rank_, 0,
              gen + 1);
  if (rep->lost > 0) {
    if (cfg_.abort_on_data_loss) {
      raise(ErrClass::data_loss,
            "kv recovery: shard lost owner and replica (unrecoverable)");
    }
    return rdma::OpStatus::data_loss;
  }
  return rdma::OpStatus::ok;
}

// --- heal --------------------------------------------------------------------

RecoveryReport KvStore::heal() {
  RecoveryReport rep;
  rep.generation = gen_seen_;
  if (!any_peer_dead()) return rep;  // nothing armed: zero-cost no-op
  if (!win_.peer_alive(cfg_.routing_rank)) {
    // The routing home is dead: the generation word and table are frozen
    // (still readable, never again writable) — no reconfiguration can be
    // published. Documented limitation; survivors stay on degraded
    // fail-over routing.
    rep.status = rdma::OpStatus::peer_dead;
    rep.coordinator = fabric_->lowest_alive();
    return rep;
  }
  Backoff bo;
  std::uint64_t first_even = ~std::uint64_t{0};
  while (true) {
    // Election re-evaluated every pass: if the current coordinator dies
    // mid-recovery, the next lowest alive rank observes itself elected,
    // adopts the odd generation, and redoes the work idempotently.
    const int leader = fabric_->lowest_alive();
    rep.coordinator = leader;
    if (leader == rank_) {
      std::uint64_t g = 0;
      auto st = amo_read(cfg_.routing_rank, 0, &g);
      if (st != rdma::OpStatus::ok) {
        rep.status = st;
        return rep;
      }
      if ((g & 1) == 0) {
        std::uint64_t prev = 0;
        st = amo_cas(cfg_.routing_rank, 0, g, g + 1, &prev);
        if (st != rdma::OpStatus::ok) {
          rep.status = st;
          return rep;
        }
        if (prev != g) {  // raced another claimant: observe and retry
          bo.pause();
          fabric_->yield_check();
          continue;
        }
        g = g + 1;
      }
      rep.acted = true;
      rep.status = coordinate(g, &rep);
      rep.generation = gen_seen_;
      return rep;
    }
    // Follower: wait for the coordinator to finish (generation even AND
    // every shard either fully healthy or terminally lost), then install
    // the new table. Politely — backoff + yield_check, never a raw spin.
    // A recovery that completed since we started waiting (generation moved
    // to a NEW even value) also releases the wait: a death that arrived
    // after the coordinator returned belongs to the caller's next heal()
    // pass, not this one.
    std::uint64_t g = 0;
    auto st = amo_read(cfg_.routing_rank, 0, &g);
    if (st != rdma::OpStatus::ok) {
      rep.status = st;
      return rep;
    }
    if (first_even == ~std::uint64_t{0} && (g & 1) == 0) first_even = g;
    if ((g & 1) == 0) {
      std::vector<std::uint64_t> table;
      st = raw_fetch_table(&table);
      if (st != rdma::OpStatus::ok) {
        rep.status = st;
        return rep;
      }
      bool settled = true;
      int lost = 0;
      for (const auto w : table) {
        const bool pa = win_.peer_alive(
            unpack_copy(static_cast<std::uint32_t>(w)).rank);
        const bool ra = win_.peer_alive(
            unpack_copy(static_cast<std::uint32_t>(w >> 32)).rank);
        if (!pa && !ra) {
          ++lost;
          continue;
        }
        if (!pa || !ra) {
          settled = false;
          break;
        }
      }
      if (settled || g != first_even) {
        st = fetch_routing();
        if (st != rdma::OpStatus::ok) {
          rep.status = st;
          return rep;
        }
        rep.generation = gen_seen_;
        rep.lost = lost;
        if (lost > 0) {
          if (cfg_.abort_on_data_loss) {
            raise(ErrClass::data_loss,
                  "kv recovery: shard lost owner and replica "
                  "(unrecoverable)");
          }
          rep.status = rdma::OpStatus::data_loss;
        }
        return rep;
      }
    }
    bo.pause();
    fabric_->yield_check();
  }
}

}  // namespace fompi::kv

#include "apps/fft.hpp"

#include <bit>
#include <cstring>
#include <numbers>

namespace fompi::apps {

void fft1d(cplx* a, std::size_t n, bool inverse) {
  FOMPI_REQUIRE(std::has_single_bit(n), ErrClass::arg,
                "fft1d: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = a[i + j];
        const cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (std::size_t i = 0; i < n; ++i) a[i] /= static_cast<double>(n);
  }
}

void dft_reference(const std::vector<cplx>& in, std::vector<cplx>& out,
                   bool inverse) {
  const std::size_t n = in.size();
  out.assign(n, cplx{});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      out[k] += in[j] * cplx(std::cos(ang), std::sin(ang));
    }
  }
  if (inverse) {
    for (auto& v : out) v /= static_cast<double>(n);
  }
}

Fft3d::Fft3d(fabric::RankCtx& ctx, int nx, int ny, int nz,
             FftBackend backend)
    : nx_(nx), ny_(ny), nz_(nz), p_(ctx.nranks()), rank_(ctx.rank()),
      backend_(backend) {
  FOMPI_REQUIRE(nz_ % p_ == 0 && nx_ % p_ == 0, ErrClass::arg,
                "fft: nx and nz must be divisible by the rank count");
  lz_ = nz_ / p_;
  lx_ = nx_ / p_;
  // Both transpose directions move blocks of the same size lz*ny*lx, one
  // per (src, dst) pair.
  const std::size_t section =
      static_cast<std::size_t>(lz_) * static_cast<std::size_t>(ny_) *
      static_cast<std::size_t>(lx_);
  if (backend_ == FftBackend::alltoallv) {
    // Uniform persistent plan: count/displacement exchange and landing
    // registration happen here, once; every transpose is then a single
    // run_alltoallv.
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p_), section);
    std::vector<std::uint64_t> displs(static_cast<std::size_t>(p_));
    for (int j = 0; j < p_; ++j) {
      displs[static_cast<std::size_t>(j)] =
          static_cast<std::uint64_t>(j) * section;
    }
    plan_ = ctx.fabric().coll().plan_alltoallv(rank_, counts.data(),
                                               displs.data(), sizeof(cplx));
    abuf_.resize(static_cast<std::size_t>(p_) * section);
    rbuf_.resize(static_cast<std::size_t>(p_) * section);
    return;
  }
  // p2p / rma_overlap: transpose landing area, one section per source rank.
  win_ = core::Win::allocate(
      ctx, static_cast<std::size_t>(p_) * section * sizeof(cplx));
}

void Fft3d::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  if (backend_ == FftBackend::alltoallv) {
    plan_.reset();  // after the barrier: nobody is still inside a run
    return;
  }
  win_.free();
}

std::size_t Fft3d::local_in_elems() const {
  return static_cast<std::size_t>(lz_) * ny_ * nx_;
}

std::size_t Fft3d::local_out_elems() const {
  return static_cast<std::size_t>(lx_) * nz_ * ny_;
}

void Fft3d::transform_slab_xy(const cplx* in, cplx* work,
                              bool inverse) const {
  const std::size_t plane = static_cast<std::size_t>(ny_) * nx_;
  std::vector<cplx> line(static_cast<std::size_t>(std::max(nx_, ny_)));
  for (int z = 0; z < lz_; ++z) {
    cplx* zp = work + static_cast<std::size_t>(z) * plane;
    std::memcpy(zp, in + static_cast<std::size_t>(z) * plane,
                plane * sizeof(cplx));
    // x lines are contiguous.
    for (int y = 0; y < ny_; ++y) {
      fft1d(zp + static_cast<std::size_t>(y) * nx_,
            static_cast<std::size_t>(nx_), inverse);
    }
    // y lines are strided by nx.
    for (int x = 0; x < nx_; ++x) {
      for (int y = 0; y < ny_; ++y) {
        line[static_cast<std::size_t>(y)] =
            zp[static_cast<std::size_t>(y) * nx_ + x];
      }
      fft1d(line.data(), static_cast<std::size_t>(ny_), inverse);
      for (int y = 0; y < ny_; ++y) {
        zp[static_cast<std::size_t>(y) * nx_ + x] =
            line[static_cast<std::size_t>(y)];
      }
    }
  }
}

void Fft3d::transpose_forward(fabric::RankCtx& ctx, cplx* work, cplx* out) {
  const std::size_t section = static_cast<std::size_t>(lz_) * ny_ * lx_;
  const std::size_t plane_block = static_cast<std::size_t>(ny_) * lx_;
  auto& p2p = ctx.fabric().p2p();

  if (backend_ == FftBackend::rma_overlap) {
    // The UPC-slab schedule: plane z is shipped as soon as it is ready.
    win_.fence();
    std::vector<cplx> pack(plane_block);
    for (int z = 0; z < lz_; ++z) {
      for (int dest = 0; dest < p_; ++dest) {
        for (int y = 0; y < ny_; ++y) {
          for (int xl = 0; xl < lx_; ++xl) {
            pack[static_cast<std::size_t>(y) * lx_ + xl] =
                work[static_cast<std::size_t>(z) * ny_ * nx_ +
                     static_cast<std::size_t>(y) * nx_ + dest * lx_ + xl];
          }
        }
        const std::size_t disp =
            (static_cast<std::size_t>(rank_) * section +
             static_cast<std::size_t>(z) * plane_block) *
            sizeof(cplx);
        win_.put(pack.data(), plane_block * sizeof(cplx), dest, disp);
      }
      // The puts for plane z overlap with transforming plane z+1 in the
      // caller; here back-to-back planes already pipeline inside the NIC.
    }
    win_.fence();
    const auto* landing = static_cast<const cplx*>(win_.base());
    for (int src = 0; src < p_; ++src) {
      for (int zl = 0; zl < lz_; ++zl) {
        for (int y = 0; y < ny_; ++y) {
          for (int xl = 0; xl < lx_; ++xl) {
            out[static_cast<std::size_t>(xl) * nz_ * ny_ +
                static_cast<std::size_t>(src * lz_ + zl) * ny_ + y] =
                landing[static_cast<std::size_t>(src) * section +
                        static_cast<std::size_t>(zl) * plane_block +
                        static_cast<std::size_t>(y) * lx_ + xl];
          }
        }
      }
    }
    win_.fence();
    return;
  }

  if (backend_ == FftBackend::alltoallv) {
    // Persistent collective: pack destination-major, one run, unpack.
    // The run's leading barrier orders this transpose against the
    // previous collective, so abuf_/rbuf_ reuse is safe with no trailing
    // barrier here.
    for (int dest = 0; dest < p_; ++dest) {
      cplx* buf = abuf_.data() + static_cast<std::size_t>(dest) * section;
      for (int z = 0; z < lz_; ++z) {
        for (int y = 0; y < ny_; ++y) {
          for (int xl = 0; xl < lx_; ++xl) {
            buf[static_cast<std::size_t>(z) * plane_block +
                static_cast<std::size_t>(y) * lx_ + xl] =
                work[static_cast<std::size_t>(z) * ny_ * nx_ +
                     static_cast<std::size_t>(y) * nx_ + dest * lx_ + xl];
          }
        }
      }
    }
    ctx.fabric().coll().run_alltoallv(rank_, *plan_, abuf_.data(),
                                      rbuf_.data());
    for (int src = 0; src < p_; ++src) {
      const cplx* buf = rbuf_.data() + static_cast<std::size_t>(src) * section;
      for (int zl = 0; zl < lz_; ++zl) {
        for (int y = 0; y < ny_; ++y) {
          for (int xl = 0; xl < lx_; ++xl) {
            out[static_cast<std::size_t>(xl) * nz_ * ny_ +
                static_cast<std::size_t>(src * lz_ + zl) * ny_ + y] =
                buf[static_cast<std::size_t>(zl) * plane_block +
                    static_cast<std::size_t>(y) * lx_ + xl];
          }
        }
      }
    }
    return;
  }

  // p2p transpose: pack all, exchange, unpack.
  std::vector<std::vector<cplx>> sendbuf(static_cast<std::size_t>(p_));
  for (int dest = 0; dest < p_; ++dest) {
    auto& buf = sendbuf[static_cast<std::size_t>(dest)];
    buf.resize(section);
    for (int z = 0; z < lz_; ++z) {
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          buf[static_cast<std::size_t>(z) * plane_block +
              static_cast<std::size_t>(y) * lx_ + xl] =
              work[static_cast<std::size_t>(z) * ny_ * nx_ +
                   static_cast<std::size_t>(y) * nx_ + dest * lx_ + xl];
        }
      }
    }
  }
  std::vector<std::vector<cplx>> recvbuf(static_cast<std::size_t>(p_));
  std::vector<fabric::P2PRequest> reqs;
  for (int src = 0; src < p_; ++src) {
    recvbuf[static_cast<std::size_t>(src)].resize(section);
    reqs.push_back(p2p.irecv(rank_, src, 400,
                             recvbuf[static_cast<std::size_t>(src)].data(),
                             section * sizeof(cplx)));
  }
  for (int dest = 0; dest < p_; ++dest) {
    reqs.push_back(p2p.isend(rank_, dest, 400,
                             sendbuf[static_cast<std::size_t>(dest)].data(),
                             section * sizeof(cplx)));
  }
  p2p.waitall(reqs);
  for (int src = 0; src < p_; ++src) {
    const auto& buf = recvbuf[static_cast<std::size_t>(src)];
    for (int zl = 0; zl < lz_; ++zl) {
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          out[static_cast<std::size_t>(xl) * nz_ * ny_ +
              static_cast<std::size_t>(src * lz_ + zl) * ny_ + y] =
              buf[static_cast<std::size_t>(zl) * plane_block +
                  static_cast<std::size_t>(y) * lx_ + xl];
        }
      }
    }
  }
  ctx.barrier();
}

void Fft3d::transpose_backward(fabric::RankCtx& ctx, cplx* work, cplx* out) {
  const std::size_t section = static_cast<std::size_t>(lz_) * ny_ * lx_;
  const std::size_t plane_block = static_cast<std::size_t>(ny_) * lx_;
  auto& p2p = ctx.fabric().p2p();

  // Pack for each destination (which owns a z range): from x-slab layout.
  auto pack_for = [&](int dest, cplx* buf) {
    for (int zl = 0; zl < lz_; ++zl) {
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          buf[static_cast<std::size_t>(zl) * plane_block +
              static_cast<std::size_t>(y) * lx_ + xl] =
              work[static_cast<std::size_t>(xl) * nz_ * ny_ +
                   static_cast<std::size_t>(dest * lz_ + zl) * ny_ + y];
        }
      }
    }
  };
  auto unpack_from = [&](int src, const cplx* buf) {
    for (int z = 0; z < lz_; ++z) {
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          out[static_cast<std::size_t>(z) * ny_ * nx_ +
              static_cast<std::size_t>(y) * nx_ + src * lx_ + xl] =
              buf[static_cast<std::size_t>(z) * plane_block +
                  static_cast<std::size_t>(y) * lx_ + xl];
        }
      }
    }
  };

  if (backend_ == FftBackend::alltoallv) {
    for (int dest = 0; dest < p_; ++dest) {
      pack_for(dest, abuf_.data() + static_cast<std::size_t>(dest) * section);
    }
    ctx.fabric().coll().run_alltoallv(rank_, *plan_, abuf_.data(),
                                      rbuf_.data());
    for (int src = 0; src < p_; ++src) {
      unpack_from(src, rbuf_.data() + static_cast<std::size_t>(src) * section);
    }
    return;
  }

  if (backend_ == FftBackend::rma_overlap) {
    win_.fence();
    std::vector<cplx> pack(section);
    for (int dest = 0; dest < p_; ++dest) {
      pack_for(dest, pack.data());
      win_.put(pack.data(), section * sizeof(cplx), dest,
               static_cast<std::size_t>(rank_) * section * sizeof(cplx));
    }
    win_.fence();
    const auto* landing = static_cast<const cplx*>(win_.base());
    for (int src = 0; src < p_; ++src) {
      unpack_from(src, landing + static_cast<std::size_t>(src) * section);
    }
    win_.fence();
    return;
  }

  std::vector<std::vector<cplx>> sendbuf(static_cast<std::size_t>(p_));
  std::vector<std::vector<cplx>> recvbuf(static_cast<std::size_t>(p_));
  std::vector<fabric::P2PRequest> reqs;
  for (int src = 0; src < p_; ++src) {
    recvbuf[static_cast<std::size_t>(src)].resize(section);
    reqs.push_back(p2p.irecv(rank_, src, 401,
                             recvbuf[static_cast<std::size_t>(src)].data(),
                             section * sizeof(cplx)));
  }
  for (int dest = 0; dest < p_; ++dest) {
    auto& buf = sendbuf[static_cast<std::size_t>(dest)];
    buf.resize(section);
    pack_for(dest, buf.data());
    reqs.push_back(p2p.isend(rank_, dest, 401, buf.data(),
                             section * sizeof(cplx)));
  }
  p2p.waitall(reqs);
  for (int src = 0; src < p_; ++src) {
    unpack_from(src, recvbuf[static_cast<std::size_t>(src)].data());
  }
  ctx.barrier();
}

void Fft3d::fft_z_lines(cplx* xs, bool inverse) const {
  std::vector<cplx> line(static_cast<std::size_t>(nz_));
  for (int xl = 0; xl < lx_; ++xl) {
    for (int y = 0; y < ny_; ++y) {
      for (int z = 0; z < nz_; ++z) {
        line[static_cast<std::size_t>(z)] =
            xs[static_cast<std::size_t>(xl) * nz_ * ny_ +
               static_cast<std::size_t>(z) * ny_ + y];
      }
      fft1d(line.data(), static_cast<std::size_t>(nz_), inverse);
      for (int z = 0; z < nz_; ++z) {
        xs[static_cast<std::size_t>(xl) * nz_ * ny_ +
           static_cast<std::size_t>(z) * ny_ + y] =
            line[static_cast<std::size_t>(z)];
      }
    }
  }
}

void Fft3d::forward(fabric::RankCtx& ctx, const cplx* in, cplx* out) {
  if (backend_ == FftBackend::rma_overlap) {
    forward_overlapped(ctx, in, out);
    return;
  }
  std::vector<cplx> work(local_in_elems());
  transform_slab_xy(in, work.data(), /*inverse=*/false);
  transpose_forward(ctx, work.data(), out);
  fft_z_lines(out, /*inverse=*/false);
}

void Fft3d::forward_overlapped(fabric::RankCtx& ctx, const cplx* in,
                               cplx* out) {
  // The UPC-slab schedule (Sec 4.3): transform one z-plane, immediately
  // ship its fragments with nonblocking puts, and transform the next plane
  // while they are in flight; one fence completes the whole transpose.
  const std::size_t plane = static_cast<std::size_t>(ny_) * nx_;
  const std::size_t section = static_cast<std::size_t>(lz_) * ny_ * lx_;
  const std::size_t plane_block = static_cast<std::size_t>(ny_) * lx_;
  std::vector<cplx> work(local_in_elems());
  std::vector<cplx> line(static_cast<std::size_t>(std::max(nx_, ny_)));
  // Per-plane pack buffers must stay alive until the fence; one buffer per
  // (plane, dest) keeps puts zero-copy-safe without staging.
  std::vector<cplx> pack(static_cast<std::size_t>(lz_) *
                         static_cast<std::size_t>(p_) * plane_block);
  win_.fence();
  for (int z = 0; z < lz_; ++z) {
    // Local transforms of plane z (x lines, then y lines).
    cplx* zp = work.data() + static_cast<std::size_t>(z) * plane;
    std::memcpy(zp, in + static_cast<std::size_t>(z) * plane,
                plane * sizeof(cplx));
    for (int y = 0; y < ny_; ++y) {
      fft1d(zp + static_cast<std::size_t>(y) * nx_,
            static_cast<std::size_t>(nx_), false);
    }
    for (int x = 0; x < nx_; ++x) {
      for (int y = 0; y < ny_; ++y) {
        line[static_cast<std::size_t>(y)] =
            zp[static_cast<std::size_t>(y) * nx_ + x];
      }
      fft1d(line.data(), static_cast<std::size_t>(ny_), false);
      for (int y = 0; y < ny_; ++y) {
        zp[static_cast<std::size_t>(y) * nx_ + x] =
            line[static_cast<std::size_t>(y)];
      }
    }
    // Ship plane z: its fragments overlap with plane z+1's compute.
    for (int dest = 0; dest < p_; ++dest) {
      cplx* pbuf = pack.data() +
                   (static_cast<std::size_t>(z) * p_ +
                    static_cast<std::size_t>(dest)) *
                       plane_block;
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          pbuf[static_cast<std::size_t>(y) * lx_ + xl] =
              zp[static_cast<std::size_t>(y) * nx_ + dest * lx_ + xl];
        }
      }
      const std::size_t disp = (static_cast<std::size_t>(rank_) * section +
                                static_cast<std::size_t>(z) * plane_block) *
                               sizeof(cplx);
      win_.put(pbuf, plane_block * sizeof(cplx), dest, disp);
    }
  }
  win_.fence();
  const auto* landing = static_cast<const cplx*>(win_.base());
  for (int src = 0; src < p_; ++src) {
    for (int zl = 0; zl < lz_; ++zl) {
      for (int y = 0; y < ny_; ++y) {
        for (int xl = 0; xl < lx_; ++xl) {
          out[static_cast<std::size_t>(xl) * nz_ * ny_ +
              static_cast<std::size_t>(src * lz_ + zl) * ny_ + y] =
              landing[static_cast<std::size_t>(src) * section +
                      static_cast<std::size_t>(zl) * plane_block +
                      static_cast<std::size_t>(y) * lx_ + xl];
        }
      }
    }
  }
  win_.fence();
  fft_z_lines(out, /*inverse=*/false);
}

void Fft3d::inverse(fabric::RankCtx& ctx, const cplx* in, cplx* out) {
  std::vector<cplx> work(local_out_elems());
  std::memcpy(work.data(), in, local_out_elems() * sizeof(cplx));
  fft_z_lines(work.data(), /*inverse=*/true);
  std::vector<cplx> zslab(local_in_elems());
  transpose_backward(ctx, work.data(), zslab.data());
  transform_slab_xy(zslab.data(), out, /*inverse=*/true);
}

}  // namespace fompi::apps

// Dynamic sparse data exchange (Sec 4.2, Fig 7b).
//
// Every process holds data for a few arbitrary targets; nobody knows who
// will send to them. The four protocols of Hoefler et al. [15], all
// implemented for real over the fabric:
//   * alltoall       — dense count exchange + payload movement, both as
//                      one RMA-native alltoallv (put/notify trees);
//   * alltoall_p2p   — the classic form: dense count exchange, then
//                      two-sided point-to-point messages (kept as the
//                      old-vs-new comparison baseline in Fig 7b);
//   * reduce_scatter — each rank learns only its incoming count, then
//                      wildcard-receives that many messages;
//   * nbx            — speculative synchronous sends + nonblocking barrier
//                      (proved optimal in [15]; the "LibNBC" curve);
//   * nbx_fiber      — the same NBX protocol restructured as a fiber
//                      pipeline on the progress engine: a sender fiber
//                      drives the synchronous sends, a receiver fiber
//                      parks on probe/ibarrier readiness, and the
//                      scheduler's single idle loop replaces the
//                      hand-rolled spin (the old nbx is kept as the
//                      old-vs-new baseline);
//   * rma            — remote accumulates into per-source slots inside a
//                      fence epoch (the foMPI protocol of Fig 7b).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/window.hpp"

namespace fompi::apps {

enum class DsdeProto {
  alltoall,
  alltoall_p2p,
  reduce_scatter,
  nbx,
  nbx_fiber,
  rma,
};

const char* to_string(DsdeProto p) noexcept;

struct DsdeMsg {
  int peer;                ///< target on send, source on receive
  std::uint64_t payload;
  friend bool operator==(const DsdeMsg&, const DsdeMsg&) = default;
};

/// Collective: delivers every (target, payload) pair in `sends`; returns
/// the messages received by this rank (in unspecified order).
std::vector<DsdeMsg> dsde_exchange(fabric::RankCtx& ctx, DsdeProto proto,
                                   const std::vector<DsdeMsg>& sends);

/// Reusable RMA exchanger: allocates the landing window once and runs any
/// number of fence/accumulate exchanges over it (how an application would
/// use the protocol; window creation is not part of the exchange cost).
class DsdeRmaExchanger {
 public:
  /// Collective. `max_incoming` bounds the messages a rank can receive in
  /// one exchange.
  DsdeRmaExchanger(fabric::RankCtx& ctx, std::size_t max_incoming);
  /// Collective.
  void destroy(fabric::RankCtx& ctx);
  /// Collective: one complete exchange.
  std::vector<DsdeMsg> exchange(fabric::RankCtx& ctx,
                                const std::vector<DsdeMsg>& sends);

 private:
  std::size_t max_incoming_;
  core::Win win_;
};

/// Generates the paper's benchmark workload: k random targets per rank
/// (excluding self), 8-byte payloads, deterministic per (seed, rank).
std::vector<DsdeMsg> dsde_random_workload(int rank, int nranks, int k,
                                          std::uint64_t seed);

}  // namespace fompi::apps

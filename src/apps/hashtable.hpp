// Distributed hashtable (Sec 4.1, Fig 7a).
//
// Each rank owns a local volume: a table of 8-byte elements plus an
// overflow heap; a next-free pointer and per-slot chain heads live in the
// same window. Three backends, exactly the paper's comparison set:
//   * rma  — MPI-3.0 one sided: insert is one remote CAS on the slot; on
//     collision, a fetch_add acquires an overflow cell and a second CAS
//     links it into the slot's chain (all under one lock_all epoch with
//     flushes, as in the paper's listing);
//   * pgas — the same algorithm through the UPC-like layer (Cray atomic
//     extensions amo_acswap / amo_aadd);
//   * p2p  — MPI-1 active messages: the element travels in a message, the
//     owner's handler performs the local insert, and batch completion uses
//     the paper's termination protocol (each process notifies all others).
//   * rma_fiber — the rma backend's algorithm re-expressed as explicit-
//     handle AMO pipelines on the progress engine: a small pool of fibers
//     pulls keys off a shared cursor and each parks on its in-flight CAS /
//     fetch-add instead of spinning, so one rank keeps several inserts in
//     flight (the rma backend stays as the old-vs-new baseline in Fig 7a).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/pgas.hpp"
#include "core/window.hpp"
#include "kv/bucket.hpp"

namespace fompi::apps {

enum class HtBackend { rma, pgas, p2p, rma_fiber };

class DistHashtable {
 public:
  /// Collective. `table_slots` and `heap_slots` are per rank.
  DistHashtable(fabric::RankCtx& ctx, HtBackend backend,
                std::size_t table_slots, std::size_t heap_slots);
  /// Collective.
  void destroy(fabric::RankCtx& ctx);

  /// Collective: every rank inserts its batch of keys (keys must be
  /// nonzero); returns once the exchange is globally complete.
  void batch_insert(fabric::RankCtx& ctx,
                    const std::vector<std::uint64_t>& keys);

  /// One-sided lookup (rma/rma_fiber/pgas backends; collective-free). For
  /// the p2p backend only local volumes can be queried.
  bool contains(std::uint64_t key);

  /// Collective-free batched lookup; result[i] answers keys[i]. On the
  /// rma_fiber backend the lookups run as a fiber pipeline (a pool pulls
  /// keys off a shared cursor, each parking on its in-flight atomic read);
  /// the other backends answer with sequential contains() calls.
  std::vector<bool> batch_contains(const std::vector<std::uint64_t>& keys);

  /// Collective: total elements stored across all ranks.
  std::uint64_t global_count(fabric::RankCtx& ctx);

  /// Elements stored in this rank's volume.
  std::uint64_t local_count() const;

  int owner_of(std::uint64_t key) const;

 private:
  // Window layout (bytes): the shared CAS-bucket scheme at fig7a strides
  // (bare {key} top cells, {key, next} overflow cells) — kv/bucket.hpp
  // keeps these offsets bit-identical to the pre-extraction layout.
  std::size_t off_next_free() const { return layout_.off_next_free(); }
  std::size_t off_count() const { return layout_.off_count(); }
  std::size_t off_table(std::size_t slot) const {
    return layout_.off_table(slot);
  }
  std::size_t off_chain(std::size_t slot) const {
    return layout_.off_chain(slot);
  }
  std::size_t off_heap(std::size_t idx) const { return layout_.off_heap(idx); }
  std::size_t volume_bytes() const { return layout_.region_bytes(); }

  std::size_t slot_of(std::uint64_t key) const;
  void insert_rma(std::uint64_t key);
  void batch_insert_rma_fiber(const std::vector<std::uint64_t>& keys);
  struct InsertFiber;  // rma_fiber pipelines (defined in hashtable.cpp)
  struct LookupFiber;
  void insert_pgas(std::uint64_t key);
  void insert_local(std::uint64_t key);  // owner-side (p2p handler)
  bool chain_contains(int owner, std::size_t slot, std::uint64_t key);
  bool chain_contains_local(std::size_t slot, std::uint64_t key) const;

  HtBackend backend_;
  int nranks_ = 0;
  int rank_ = -1;
  std::size_t table_slots_ = 0;
  std::size_t heap_slots_ = 0;
  kv::BucketLayout layout_;
  core::Win win_;                                // rma backend
  std::optional<baselines::SharedArray> shared_; // pgas backend
  fabric::Fabric* fabric_ = nullptr;
};

}  // namespace fompi::apps

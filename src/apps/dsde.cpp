#include "apps/dsde.hpp"

#include <algorithm>
#include <cstring>

#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "fabric/progress/progress.hpp"

namespace fompi::apps {

namespace {
constexpr int kTagData = 301;
}

const char* to_string(DsdeProto p) noexcept {
  switch (p) {
    case DsdeProto::alltoall:       return "alltoall";
    case DsdeProto::alltoall_p2p:   return "alltoall_p2p";
    case DsdeProto::reduce_scatter: return "reduce_scatter";
    case DsdeProto::nbx:            return "nbx";
    case DsdeProto::nbx_fiber:      return "nbx_fiber";
    case DsdeProto::rma:            return "rma";
  }
  return "unknown";
}

std::vector<DsdeMsg> dsde_random_workload(int rank, int nranks, int k,
                                          std::uint64_t seed) {
  Rng rng(seed * 1315423911u + static_cast<std::uint64_t>(rank));
  std::vector<DsdeMsg> sends;
  sends.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    int target = rank;
    if (nranks > 1) {
      while (target == rank) {
        target = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
      }
    }
    sends.push_back(DsdeMsg{target, rng.next() | 1});
  }
  return sends;
}

namespace {

std::vector<DsdeMsg> exchange_alltoall(fabric::RankCtx& ctx,
                                       const std::vector<DsdeMsg>& sends) {
  // Counts and payloads both travel through the RMA-native alltoallv:
  // the count exchange rides the put/notify trees and the payload phase
  // is one put per nonzero destination plus the arrival counter — no
  // two-sided matching anywhere.
  const int p = ctx.nranks();
  auto& coll = ctx.fabric().coll();
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 0);
  for (const auto& m : sends) ++counts[static_cast<std::size_t>(m.peer)];
  std::vector<std::uint64_t> sdispls(static_cast<std::size_t>(p), 0);
  for (int j = 1; j < p; ++j) {
    sdispls[static_cast<std::size_t>(j)] =
        sdispls[static_cast<std::size_t>(j - 1)] +
        counts[static_cast<std::size_t>(j - 1)];
  }
  // Pack payloads grouped by destination.
  std::vector<std::uint64_t> packed(sends.size());
  {
    std::vector<std::uint64_t> fill = sdispls;
    for (const auto& m : sends) {
      packed[static_cast<std::size_t>(fill[static_cast<std::size_t>(m.peer)]++)] =
          m.payload;
    }
  }
  std::vector<std::uint64_t> dst, recvcounts, rdispls;
  coll.alltoallv(ctx.rank(), packed.data(), counts.data(), sdispls.data(), dst,
                 recvcounts, rdispls);
  std::vector<DsdeMsg> received;
  received.reserve(dst.size());
  for (int src = 0; src < p; ++src) {
    for (std::uint64_t i = 0; i < recvcounts[static_cast<std::size_t>(src)];
         ++i) {
      received.push_back(DsdeMsg{
          src, dst[static_cast<std::size_t>(
                   rdispls[static_cast<std::size_t>(src)] + i)]});
    }
  }
  return received;
}

std::vector<DsdeMsg> exchange_alltoall_p2p(fabric::RankCtx& ctx,
                                           const std::vector<DsdeMsg>& sends) {
  const int p = ctx.nranks();
  auto& p2p = ctx.fabric().p2p();
  // Dense count matrix: column exchange via alltoall.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 0);
  for (const auto& m : sends) ++counts[static_cast<std::size_t>(m.peer)];
  std::vector<std::uint64_t> incoming(static_cast<std::size_t>(p), 0);
  ctx.fabric().coll().alltoall(ctx.rank(), counts.data(), std::size_t{1},
                               incoming.data());
  // Data movement with known counts.
  std::vector<fabric::P2PRequest> reqs;
  for (const auto& m : sends) {
    reqs.push_back(
        p2p.isend(ctx.rank(), m.peer, kTagData, &m.payload, 8));
  }
  std::vector<DsdeMsg> received;
  for (int src = 0; src < p; ++src) {
    for (std::uint64_t i = 0; i < incoming[static_cast<std::size_t>(src)];
         ++i) {
      std::uint64_t v = 0;
      p2p.recv(ctx.rank(), src, kTagData, &v, 8);
      received.push_back(DsdeMsg{src, v});
    }
  }
  p2p.waitall(reqs);
  ctx.barrier();
  return received;
}

std::vector<DsdeMsg> exchange_reduce_scatter(
    fabric::RankCtx& ctx, const std::vector<DsdeMsg>& sends) {
  const int p = ctx.nranks();
  auto& p2p = ctx.fabric().p2p();
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 0);
  for (const auto& m : sends) ++counts[static_cast<std::size_t>(m.peer)];
  std::uint64_t my_incoming = 0;
  ctx.fabric().coll().reduce_scatter_block(
      ctx.rank(), counts.data(), &my_incoming, 1,
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::vector<fabric::P2PRequest> reqs;
  for (const auto& m : sends) {
    reqs.push_back(p2p.isend(ctx.rank(), m.peer, kTagData, &m.payload, 8));
  }
  std::vector<DsdeMsg> received;
  for (std::uint64_t i = 0; i < my_incoming; ++i) {
    std::uint64_t v = 0;
    fabric::Status st;
    p2p.recv(ctx.rank(), fabric::kAnySource, kTagData, &v, 8, &st);
    received.push_back(DsdeMsg{st.source, v});
  }
  p2p.waitall(reqs);
  ctx.barrier();
  return received;
}

std::vector<DsdeMsg> exchange_nbx(fabric::RankCtx& ctx,
                                  const std::vector<DsdeMsg>& sends) {
  auto& p2p = ctx.fabric().p2p();
  auto& coll = ctx.fabric().coll();
  std::vector<fabric::P2PRequest> reqs;
  for (const auto& m : sends) {
    reqs.push_back(p2p.issend(ctx.rank(), m.peer, kTagData, &m.payload, 8));
  }
  std::vector<DsdeMsg> received;
  bool barrier_started = false;
  bool done = false;
  Backoff backoff;  // reset on progress: back off only while truly idle
  while (!done) {
    bool progressed = false;
    fabric::Status st;
    if (p2p.iprobe(ctx.rank(), fabric::kAnySource, kTagData, &st)) {
      std::uint64_t v = 0;
      p2p.recv(ctx.rank(), st.source, kTagData, &v, 8);
      received.push_back(DsdeMsg{st.source, v});
      progressed = true;
    }
    if (!barrier_started) {
      bool all_sent = true;
      for (auto& r : reqs) {
        if (r.valid() && !p2p.test(r)) {
          all_sent = false;
          break;
        }
      }
      if (all_sent) {
        coll.ibarrier_begin(ctx.rank());
        barrier_started = true;
        progressed = true;
      }
    } else if (coll.ibarrier_test(ctx.rank())) {
      done = true;
    }
    ctx.yield_check();
    if (done || progressed) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  return received;
}

// NBX on the progress engine: the protocol above, as two fibers. The sender
// fiber drives the synchronous sends to completion; the receiver fiber
// drains probe-able messages, starts the nonblocking barrier once the local
// sends finished, and parks on poll_ready() in between — the scheduler's
// idle loop (yield_check + reset-on-progress backoff) replaces the
// hand-rolled spin of exchange_nbx.
namespace progress = fabric::progress;

class NbxSenderFiber final : public progress::Fiber {
 public:
  NbxSenderFiber(fabric::RankCtx& ctx, const std::vector<DsdeMsg>& sends,
                 bool* all_sent)
      : ctx_(ctx), sends_(sends), all_sent_(all_sent) {}

 protected:
  void step(progress::Scheduler& s) override {
    auto& p2p = ctx_.fabric().p2p();
    FOMPI_FIBER_BEGIN();
    for (const auto& m : sends_) {
      reqs_.push_back(p2p.issend(ctx_.rank(), m.peer, kTagData, &m.payload, 8));
    }
    for (i_ = 0; i_ < reqs_.size(); ++i_) {
      while (reqs_[i_].valid() && !p2p.test(reqs_[i_])) {
        FOMPI_FIBER_AWAIT_READY(s);
      }
    }
    *all_sent_ = true;
    FOMPI_FIBER_END();
  }

 private:
  fabric::RankCtx& ctx_;
  const std::vector<DsdeMsg>& sends_;
  bool* all_sent_;
  std::vector<fabric::P2PRequest> reqs_;
  std::size_t i_ = 0;
};

class NbxReceiverFiber final : public progress::Fiber {
 public:
  NbxReceiverFiber(fabric::RankCtx& ctx, const bool* all_sent,
                   std::vector<DsdeMsg>* out)
      : ctx_(ctx), all_sent_(all_sent), out_(out) {}

 protected:
  void step(progress::Scheduler& s) override {
    auto& p2p = ctx_.fabric().p2p();
    auto& coll = ctx_.fabric().coll();
    FOMPI_FIBER_BEGIN();
    while (true) {
      while (p2p.iprobe(ctx_.rank(), fabric::kAnySource, kTagData, &st_)) {
        v_ = 0;
        p2p.recv(ctx_.rank(), st_.source, kTagData, &v_, 8);
        out_->push_back(DsdeMsg{st_.source, v_});
      }
      if (!barrier_started_ && *all_sent_) {
        coll.ibarrier_begin(ctx_.rank());
        barrier_started_ = true;
      }
      if (barrier_done_) break;
      FOMPI_FIBER_AWAIT_READY(s);
    }
    FOMPI_FIBER_END();
  }

  bool poll_ready() override {
    // ibarrier_test raises once the barrier already completed, so the
    // result is latched here and step() consumes the flag.
    if (barrier_started_ && !barrier_done_ &&
        ctx_.fabric().coll().ibarrier_test(ctx_.rank())) {
      barrier_done_ = true;
    }
    if (barrier_done_) return true;
    fabric::Status st;
    if (ctx_.fabric().p2p().iprobe(ctx_.rank(), fabric::kAnySource, kTagData,
                                   &st)) {
      return true;
    }
    // Until our sends finished we must keep running to observe all_sent
    // flipping (the sender fiber cannot wake us).
    return !barrier_started_;
  }

 private:
  fabric::RankCtx& ctx_;
  const bool* all_sent_;
  std::vector<DsdeMsg>* out_;
  fabric::Status st_{};
  std::uint64_t v_ = 0;
  bool barrier_started_ = false;
  bool barrier_done_ = false;
};

std::vector<DsdeMsg> exchange_nbx_fiber(fabric::RankCtx& ctx,
                                        const std::vector<DsdeMsg>& sends) {
  std::vector<DsdeMsg> received;
  bool all_sent = false;
  progress::Scheduler sched(ctx.fabric(), ctx.rank());
  sched.spawn<NbxSenderFiber>(ctx, sends, &all_sent);
  sched.spawn<NbxReceiverFiber>(ctx, &all_sent, &received);
  sched.run();
  return received;
}

}  // namespace

DsdeRmaExchanger::DsdeRmaExchanger(fabric::RankCtx& ctx,
                                   std::size_t max_incoming)
    : max_incoming_(max_incoming),
      win_(core::Win::allocate(ctx, 8 + max_incoming * 16)) {}

void DsdeRmaExchanger::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  win_.free();
}

std::vector<DsdeMsg> DsdeRmaExchanger::exchange(
    fabric::RankCtx& ctx, const std::vector<DsdeMsg>& sends) {
  struct Slot {
    std::uint64_t source_plus_1;
    std::uint64_t payload;
  };
  // Reset the fill counter from the previous round, then exchange inside
  // one pair of fences: fetch_add reserves a slot at the target, a put
  // fills it (the accumulate protocol of Fig 7b).
  auto* base = static_cast<std::byte*>(win_.base());
  std::memset(base, 0, 8);
  win_.fence();
  const std::uint64_t one = 1;
  for (const auto& m : sends) {
    FOMPI_REQUIRE(m.peer >= 0 && m.peer < ctx.nranks(), ErrClass::rank,
                  "dsde: target out of range");
    std::uint64_t idx = 0;
    win_.fetch_and_op(&one, &idx, Elem::u64, RedOp::sum, m.peer, 0);
    FOMPI_REQUIRE(idx < max_incoming_, ErrClass::no_mem,
                  "dsde rma slot array exhausted");
    const Slot s{static_cast<std::uint64_t>(ctx.rank()) + 1, m.payload};
    win_.put(&s, sizeof(Slot), m.peer,
             8 + static_cast<std::size_t>(idx) * sizeof(Slot));
  }
  win_.fence();
  std::vector<DsdeMsg> received;
  std::uint64_t n = 0;
  std::memcpy(&n, base, 8);
  for (std::uint64_t i = 0; i < n; ++i) {
    Slot s;
    std::memcpy(&s, base + 8 + i * sizeof(Slot), sizeof(Slot));
    received.push_back(
        DsdeMsg{static_cast<int>(s.source_plus_1 - 1), s.payload});
  }
  win_.fence();  // nobody reuses the window before all reads finished
  return received;
}

std::vector<DsdeMsg> dsde_exchange(fabric::RankCtx& ctx, DsdeProto proto,
                                   const std::vector<DsdeMsg>& sends) {
  for (const auto& m : sends) {
    FOMPI_REQUIRE(m.peer >= 0 && m.peer < ctx.nranks(), ErrClass::rank,
                  "dsde: target out of range");
  }
  switch (proto) {
    case DsdeProto::alltoall:       return exchange_alltoall(ctx, sends);
    case DsdeProto::alltoall_p2p:   return exchange_alltoall_p2p(ctx, sends);
    case DsdeProto::reduce_scatter: return exchange_reduce_scatter(ctx, sends);
    case DsdeProto::nbx:            return exchange_nbx(ctx, sends);
    case DsdeProto::nbx_fiber:      return exchange_nbx_fiber(ctx, sends);
    case DsdeProto::rma: {
      DsdeRmaExchanger ex(ctx,
                          static_cast<std::size_t>(ctx.nranks()) * 8 + 64);
      auto out = ex.exchange(ctx, sends);
      ex.destroy(ctx);
      return out;
    }
  }
  raise(ErrClass::arg, "bad dsde protocol");
}

}  // namespace fompi::apps

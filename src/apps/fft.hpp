// Parallel 3D FFT (Sec 4.3, Fig 7c) — the NAS-FT communication pattern.
//
// 1D slab decomposition: the forward transform FFTs x and y lines inside
// each local z-slab, transposes to an x-slab layout, then FFTs the z
// lines. Two transpose engines, the paper's comparison pair:
//   * p2p         — "nonblocking MPI": pack per-destination blocks,
//                   isend/irecv, waitall, unpack (no overlap);
//   * rma_overlap — the "UPC slab" schedule over MPI-3.0 RMA: as soon as a
//                   z-plane finished its local transforms, its fragments
//                   are put into the destination windows (implicit
//                   nonblocking), overlapping with the next plane's
//                   compute; a single fence completes the transpose.
//   * alltoallv   — the transpose as one persistent RMA-native collective
//                   (fabric plan_alltoallv, planned once in the
//                   constructor): pack, run, unpack — counts/offsets and
//                   landing registration are amortized across transforms.
// The local 1D kernel is an iterative radix-2 Cooley-Tukey transform.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "core/window.hpp"
#include "fabric/collectives.hpp"

namespace fompi::apps {

using cplx = std::complex<double>;

/// In-place radix-2 FFT; n must be a power of two. inverse includes 1/n.
void fft1d(cplx* a, std::size_t n, bool inverse);

enum class FftBackend { p2p, rma_overlap, alltoallv };

class Fft3d {
 public:
  /// Collective. nx, ny, nz powers of two; nz and nx divisible by nranks.
  Fft3d(fabric::RankCtx& ctx, int nx, int ny, int nz, FftBackend backend);
  void destroy(fabric::RankCtx& ctx);

  int lz() const noexcept { return lz_; }  ///< local z planes (input slab)
  int lx() const noexcept { return lx_; }  ///< local x planes (output slab)
  /// Elements in the input (z-slab) layout: lz*ny*nx, index (z,y,x).
  std::size_t local_in_elems() const;
  /// Elements in the output (x-slab) layout: lx*nz*ny, index (x,z,y).
  std::size_t local_out_elems() const;

  /// Forward transform: z-slab input -> x-slab output (transposed).
  void forward(fabric::RankCtx& ctx, const cplx* in, cplx* out);
  /// Inverse transform: x-slab input -> z-slab output.
  void inverse(fabric::RankCtx& ctx, const cplx* in, cplx* out);

 private:
  void transform_slab_xy(const cplx* in, cplx* work, bool inverse) const;
  /// Fused forward path for rma_overlap: per-plane transform + put.
  void forward_overlapped(fabric::RankCtx& ctx, const cplx* in, cplx* out);
  /// Transpose work (z-slab, post-xy-FFT) into out (x-slab layout).
  void transpose_forward(fabric::RankCtx& ctx, cplx* work, cplx* out);
  /// Transpose work (x-slab) back into out (z-slab layout).
  void transpose_backward(fabric::RankCtx& ctx, cplx* work, cplx* out);
  void fft_z_lines(cplx* xs, bool inverse) const;

  int nx_ = 0, ny_ = 0, nz_ = 0;
  int p_ = 0, rank_ = -1;
  int lz_ = 0, lx_ = 0;
  FftBackend backend_;
  core::Win win_;  // p2p/rma_overlap transpose landing area
  /// alltoallv backend: the persistent plan plus reusable pack/unpack
  /// staging (sized once, so repeated transforms stay allocation-light).
  std::shared_ptr<fabric::AlltoallvPlan> plan_;
  std::vector<cplx> abuf_, rbuf_;
};

/// Convenience: naive O(n^2) DFT along one axis for validation.
void dft_reference(const std::vector<cplx>& in, std::vector<cplx>& out,
                   bool inverse);

}  // namespace fompi::apps

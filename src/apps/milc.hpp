// MILC-like 4D lattice solver (Sec 4.4, Fig 8).
//
// A proxy for the su3_rmd conjugate-gradient phase: a scalar field on a
// 4D rectangular lattice, 4D domain decomposition, halo exchange in all
// eight directions each iteration, and regular allreductions for solver
// convergence — the exact communication pattern the paper optimizes.
//
// Two communication backends matching the paper's comparison:
//   * p2p — MPI-1: nonblocking sendrecv halo exchange;
//   * rma — the UPC/foMPI scheme from Sec 4.4: communication buffers live
//     in a window under one long-lived lock_all epoch; a producer packs
//     its boundary, flushes, then notifies each neighbor with an atomic
//     fetch-and-add; consumers wait for the flag and *get* the halo data
//     from the producer's window.
//
// The operator is A = I + kappa * L (L the 8-point 4D Laplacian), SPD for
// small kappa, solved with plain CG. Tests verify that both backends
// produce identical iterates and that CG converges to the true solution.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/notify.hpp"
#include "core/window.hpp"
#include "fabric/collectives.hpp"

namespace fompi::apps {

enum class MilcBackend {
  p2p,           ///< MPI-1 nonblocking sendrecv halos
  rma,           ///< the paper's pack/flush/flag/get scheme
  rma_notified,  ///< notified access extension: put_notify carries the
                 ///< halo and its flag in one call (half the critical path)
  rma_notify_queue,  ///< first-class put-with-notification: the halo rides
                     ///< Win::put_notify into the generalized notification
                     ///< ring and the consumer tag-matches one record per
                     ///< direction (no per-direction flag words at all)
};

struct MilcConfig {
  std::array<int, 4> local{4, 4, 4, 8};  ///< local lattice (paper: 4^3 x 8)
  std::array<int, 4> grid{1, 1, 1, 1};   ///< process grid, prod = nranks
  double kappa = 0.1;
  MilcBackend backend = MilcBackend::rma;
};

class MilcSolver {
 public:
  /// Collective.
  MilcSolver(fabric::RankCtx& ctx, const MilcConfig& cfg);
  void destroy(fabric::RankCtx& ctx);

  std::size_t local_sites() const noexcept { return volume_; }

  /// Applies A = I + kappa*L to `in`, writing `out` (both interior-sized,
  /// indexed by local site). Performs one halo exchange.
  void apply_operator(fabric::RankCtx& ctx, const std::vector<double>& in,
                      std::vector<double>& out);

  /// Solves A x = b by CG; returns the iteration count. `x` is the
  /// initial guess on input and the solution on output.
  int solve_cg(fabric::RankCtx& ctx, const std::vector<double>& b,
               std::vector<double>& x, double tol, int max_iters,
               std::vector<double>* residual_history = nullptr);

  /// Global dot product (allreduce) — exposed for tests.
  double dot(fabric::RankCtx& ctx, const std::vector<double>& a,
             const std::vector<double>& b) const;

  int neighbor(int dim, int dir) const;  ///< rank of the ±1 neighbor

 private:
  // Halo-extended field helpers.
  std::size_t hidx(int x, int y, int z, int t) const;  // halo coordinates
  void pack_face(const std::vector<double>& field, int dim, int dir,
                 double* buf) const;
  void unpack_face(std::vector<double>& halo_field, int dim, int dir,
                   const double* buf) const;
  void exchange_halos(fabric::RankCtx& ctx, std::vector<double>& halo_field);

  MilcConfig cfg_;
  int rank_ = -1, nranks_ = 0;
  std::array<int, 4> coords_{};
  std::array<int, 4> ext_{};  // local + 2 halo
  std::size_t volume_ = 0;
  std::size_t halo_volume_ = 0;
  std::array<std::size_t, 4> face_elems_{};

  // RMA backend state: window = [flags (8 slots) | send buffers per dir].
  core::Win win_;
  std::array<std::size_t, 8> buf_off_{};
  std::uint64_t epoch_ = 0;  // expected flag value, grows per exchange

  // Notified-access backend state: receive buffers per direction, halo
  // arrives together with its notification.
  std::optional<core::NotifyWin> nwin_;
  std::array<std::size_t, 8> recv_off_{};

  // Persistent allreduce for the CG dot products: geometry planned once
  // at construction, every dot() re-drives it allocation-free.
  std::shared_ptr<fabric::AllreducePlan> dot_plan_;
};

/// Builds a process grid for `p` ranks: factors p into 4 near-equal
/// power-of-two-ish factors.
std::array<int, 4> milc_default_grid(int p);

}  // namespace fompi::apps

#include "apps/milc.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#include "common/backoff.hpp"
#include "fabric/progress/progress.hpp"

namespace fompi::apps {

namespace {
constexpr int kTagHalo = 501;

int flag_index(int dim, int dir) { return 2 * dim + (dir > 0 ? 1 : 0); }
}  // namespace

std::array<int, 4> milc_default_grid(int p) {
  std::array<int, 4> grid{1, 1, 1, 1};
  int f = p;
  int d = 3;  // grow t, then z, y, x — the longest local dim first
  while (f % 2 == 0) {
    grid[static_cast<std::size_t>(d)] *= 2;
    f /= 2;
    d = (d + 3) % 4;
  }
  grid[3] *= f;  // odd remainder
  return grid;
}

MilcSolver::MilcSolver(fabric::RankCtx& ctx, const MilcConfig& cfg)
    : cfg_(cfg), rank_(ctx.rank()), nranks_(ctx.nranks()) {
  const auto& g = cfg_.grid;
  FOMPI_REQUIRE(g[0] * g[1] * g[2] * g[3] == nranks_, ErrClass::arg,
                "milc: process grid does not match the rank count");
  int rem = rank_;
  coords_[3] = rem % g[3];
  rem /= g[3];
  coords_[2] = rem % g[2];
  rem /= g[2];
  coords_[1] = rem % g[1];
  rem /= g[1];
  coords_[0] = rem;
  volume_ = 1;
  halo_volume_ = 1;
  for (int d = 0; d < 4; ++d) {
    FOMPI_REQUIRE(cfg_.local[static_cast<std::size_t>(d)] >= 1,
                  ErrClass::arg, "milc: local extent must be >= 1");
    ext_[static_cast<std::size_t>(d)] =
        cfg_.local[static_cast<std::size_t>(d)] + 2;
    volume_ *= static_cast<std::size_t>(cfg_.local[static_cast<std::size_t>(d)]);
    halo_volume_ *= static_cast<std::size_t>(ext_[static_cast<std::size_t>(d)]);
  }
  for (int d = 0; d < 4; ++d) {
    face_elems_[static_cast<std::size_t>(d)] =
        volume_ / static_cast<std::size_t>(cfg_.local[static_cast<std::size_t>(d)]);
  }

  if (cfg_.backend == MilcBackend::rma) {
    // Window: 8 flag words, then one send buffer per direction.
    std::size_t bytes = 8 * 8;
    for (int d = 0; d < 4; ++d) {
      for (int dir = 0; dir < 2; ++dir) {
        buf_off_[static_cast<std::size_t>(flag_index(d, dir == 1 ? 1 : -1))] =
            bytes;
        bytes += face_elems_[static_cast<std::size_t>(d)] * sizeof(double);
      }
    }
    win_ = core::Win::allocate(ctx, bytes);
    win_.lock_all();
  } else if (cfg_.backend == MilcBackend::rma_notified) {
    // One receive buffer per direction; put_notify delivers data + flag.
    std::size_t bytes = 0;
    for (int d = 0; d < 4; ++d) {
      for (int dir = 0; dir < 2; ++dir) {
        recv_off_[static_cast<std::size_t>(flag_index(d, dir == 1 ? 1 : -1))] =
            bytes;
        bytes += face_elems_[static_cast<std::size_t>(d)] * sizeof(double);
      }
    }
    nwin_.emplace(ctx, bytes, /*num_ids=*/8);
  } else if (cfg_.backend == MilcBackend::rma_notify_queue) {
    // One receive buffer per direction; the notification travels through
    // the window's ring, so the window holds no flag words.
    std::size_t bytes = 0;
    for (int d = 0; d < 4; ++d) {
      for (int dir = 0; dir < 2; ++dir) {
        recv_off_[static_cast<std::size_t>(flag_index(d, dir == 1 ? 1 : -1))] =
            bytes;
        bytes += face_elems_[static_cast<std::size_t>(d)] * sizeof(double);
      }
    }
    win_ = core::Win::allocate(ctx, bytes);
    win_.lock_all();
    win_.notify_enable(ctx, /*capacity=*/64);
  }
  // All backends share the persistent dot-product allreduce (1 double).
  dot_plan_ = ctx.fabric().coll().plan_allreduce(rank_, 1, sizeof(double));
  ctx.barrier();
}

void MilcSolver::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  dot_plan_.reset();  // after the barrier: no rank is still inside a dot()
  if (cfg_.backend == MilcBackend::rma ||
      cfg_.backend == MilcBackend::rma_notify_queue) {
    win_.unlock_all();
    win_.free();
  } else if (cfg_.backend == MilcBackend::rma_notified) {
    nwin_->destroy(ctx);
    nwin_.reset();
  }
}

int MilcSolver::neighbor(int dim, int dir) const {
  auto c = coords_;
  const int g = cfg_.grid[static_cast<std::size_t>(dim)];
  c[static_cast<std::size_t>(dim)] =
      (c[static_cast<std::size_t>(dim)] + dir + g) % g;
  return ((c[0] * cfg_.grid[1] + c[1]) * cfg_.grid[2] + c[2]) * cfg_.grid[3] +
         c[3];
}

std::size_t MilcSolver::hidx(int x, int y, int z, int t) const {
  return ((static_cast<std::size_t>(x) * ext_[1] + static_cast<std::size_t>(y)) *
              ext_[2] +
          static_cast<std::size_t>(z)) *
             ext_[3] +
         static_cast<std::size_t>(t);
}

void MilcSolver::pack_face(const std::vector<double>& halo_field, int dim,
                           int dir, double* buf) const {
  // Packs the interior layer adjacent to the (dim, dir) boundary.
  const auto& l = cfg_.local;
  std::size_t n = 0;
  const int fixed = dir > 0 ? l[static_cast<std::size_t>(dim)] : 1;
  std::array<int, 4> c{};
  auto loop = [&](auto&& self, int d) -> void {
    if (d == 4) {
      buf[n++] = halo_field[hidx(c[0], c[1], c[2], c[3])];
      return;
    }
    if (d == dim) {
      c[static_cast<std::size_t>(d)] = fixed;
      self(self, d + 1);
      return;
    }
    for (int i = 1; i <= l[static_cast<std::size_t>(d)]; ++i) {
      c[static_cast<std::size_t>(d)] = i;
      self(self, d + 1);
    }
  };
  loop(loop, 0);
}

void MilcSolver::unpack_face(std::vector<double>& halo_field, int dim,
                             int dir, const double* buf) const {
  // Writes the halo layer on the (dim, dir) side.
  const auto& l = cfg_.local;
  std::size_t n = 0;
  const int fixed = dir > 0 ? l[static_cast<std::size_t>(dim)] + 1 : 0;
  std::array<int, 4> c{};
  auto loop = [&](auto&& self, int d) -> void {
    if (d == 4) {
      halo_field[hidx(c[0], c[1], c[2], c[3])] = buf[n++];
      return;
    }
    if (d == dim) {
      c[static_cast<std::size_t>(d)] = fixed;
      self(self, d + 1);
      return;
    }
    for (int i = 1; i <= l[static_cast<std::size_t>(d)]; ++i) {
      c[static_cast<std::size_t>(d)] = i;
      self(self, d + 1);
    }
  };
  loop(loop, 0);
}

void MilcSolver::exchange_halos(fabric::RankCtx& ctx,
                                std::vector<double>& halo_field) {
  if (cfg_.backend == MilcBackend::p2p) {
    auto& p2p = ctx.fabric().p2p();
    std::array<std::vector<double>, 8> sendbuf, recvbuf;
    std::vector<fabric::P2PRequest> reqs;
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        const std::size_t n = face_elems_[static_cast<std::size_t>(d)];
        recvbuf[static_cast<std::size_t>(i)].resize(n);
        // Data for my (d,dir) halo comes from the (d,dir) neighbor, who
        // tags it with the index of the face it sent (its opposite side).
        reqs.push_back(p2p.irecv(rank_, neighbor(d, dir),
                                 kTagHalo + flag_index(d, -dir),
                                 recvbuf[static_cast<std::size_t>(i)].data(),
                                 n * sizeof(double)));
      }
    }
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        const std::size_t n = face_elems_[static_cast<std::size_t>(d)];
        sendbuf[static_cast<std::size_t>(i)].resize(n);
        pack_face(halo_field, d, dir,
                  sendbuf[static_cast<std::size_t>(i)].data());
        reqs.push_back(p2p.isend(rank_, neighbor(d, dir), kTagHalo + i,
                                 sendbuf[static_cast<std::size_t>(i)].data(),
                                 n * sizeof(double)));
      }
    }
    p2p.waitall(reqs);
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        unpack_face(halo_field, d, dir,
                    recvbuf[static_cast<std::size_t>(i)].data());
      }
    }
    ctx.barrier();
    return;
  }

  if (cfg_.backend == MilcBackend::rma_notified) {
    // Notified access: pack a face, put_notify it straight into the
    // neighbor's receive buffer — data and flag travel together.
    std::vector<double> pack;
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const std::size_t n = face_elems_[static_cast<std::size_t>(d)];
        pack.resize(n);
        pack_face(halo_field, d, dir, pack.data());
        // The receiver indexes its buffer/flag by the side the data fills.
        // NOTE: the pack buffer is consumed at issue by the simulated NIC,
        // so reuse across directions is safe.
        const int recv_i = flag_index(d, -dir);
        nwin_->put_notify_async(pack.data(), n * sizeof(double),
                                neighbor(d, dir),
                                recv_off_[static_cast<std::size_t>(recv_i)],
                                recv_i);
      }
    }
    nwin_->commit_notifications();
    const auto* rbase = static_cast<const std::byte*>(nwin_->base());
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        nwin_->wait_notify(i);
        unpack_face(halo_field, d, dir,
                    reinterpret_cast<const double*>(
                        rbase + recv_off_[static_cast<std::size_t>(i)]));
      }
    }
    ctx.barrier();  // buffer reuse across epochs
    return;
  }

  if (cfg_.backend == MilcBackend::rma_notify_queue) {
    // First-class put-with-notification: each face is one put_notify whose
    // record (tagged with the receiving side) lands in the neighbor's
    // notification ring; the consumer tag-matches one record per direction
    // in halo order. No flag words, no counter AMOs.
    std::vector<double> pack;
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const std::size_t n = face_elems_[static_cast<std::size_t>(d)];
        pack.resize(n);
        pack_face(halo_field, d, dir, pack.data());
        const int recv_i = flag_index(d, -dir);
        const rdma::OpStatus st = win_.put_notify(
            pack.data(), n * sizeof(double), neighbor(d, dir),
            recv_off_[static_cast<std::size_t>(recv_i)],
            static_cast<std::uint64_t>(recv_i));
        FOMPI_REQUIRE(st == rdma::OpStatus::ok, ErrClass::peer_dead,
                      "milc: halo put_notify failed");
      }
    }
    const auto* rbase = static_cast<const std::byte*>(win_.base());
    fabric::progress::NotifyRecord rec;
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        win_.notify_waitsome(static_cast<std::uint64_t>(i), &rec, 1);
        unpack_face(halo_field, d, dir,
                    reinterpret_cast<const double*>(
                        rbase + recv_off_[static_cast<std::size_t>(i)]));
      }
    }
    ctx.barrier();  // buffer reuse across epochs
    return;
  }

  // RMA backend: the paper's produce/notify/get scheme. Notifications are
  // pipelined nonblocking AMOs completed by one flush; gets are issued as
  // flags arrive (any order) and completed by one flush.
  ++epoch_;
  auto* wbase = static_cast<std::byte*>(win_.base());
  // Publish all faces, then notify each neighbor with an atomic add.
  for (int d = 0; d < 4; ++d) {
    for (int dir : {-1, +1}) {
      const int i = flag_index(d, dir);
      auto* buf = reinterpret_cast<double*>(
          wbase + buf_off_[static_cast<std::size_t>(i)]);
      pack_face(halo_field, d, dir, buf);
    }
  }
  win_.sync();  // stores visible before the flags
  const std::uint64_t one = 1;
  for (int d = 0; d < 4; ++d) {
    for (int dir : {-1, +1}) {
      // The neighbor waits on its flag for the face pointing back at me.
      win_.accumulate(&one, 1, Elem::u64, RedOp::sum, neighbor(d, dir),
                      8 * static_cast<std::size_t>(flag_index(d, -dir)));
    }
  }
  win_.flush_all();  // notifications committed
  // Consume: as flags arrive (any order), pull the matching face.
  std::array<std::vector<double>, 8> tmp;
  std::array<bool, 8> fetched{};
  int pending = 8;
  Backoff backoff;  // reset on progress: back off only while truly idle
  while (pending > 0) {
    const int before_pending = pending;
    for (int d = 0; d < 4; ++d) {
      for (int dir : {-1, +1}) {
        const int i = flag_index(d, dir);
        if (fetched[static_cast<std::size_t>(i)]) continue;
        auto flag = std::atomic_ref<std::uint64_t>(
            *reinterpret_cast<std::uint64_t*>(
                wbase + 8 * static_cast<std::size_t>(i)));
        if (flag.load(std::memory_order_acquire) < epoch_) continue;
        const std::size_t n = face_elems_[static_cast<std::size_t>(d)];
        tmp[static_cast<std::size_t>(i)].resize(n);
        win_.get(tmp[static_cast<std::size_t>(i)].data(), n * sizeof(double),
                 neighbor(d, dir),
                 buf_off_[static_cast<std::size_t>(flag_index(d, -dir))]);
        fetched[static_cast<std::size_t>(i)] = true;
        --pending;
      }
    }
    if (pending > 0) {
      ctx.yield_check();
      if (pending == before_pending) {
        backoff.pause();
      } else {
        backoff.reset();
      }
    }
  }
  win_.flush_all();  // all gets landed
  for (int d = 0; d < 4; ++d) {
    for (int dir : {-1, +1}) {
      unpack_face(halo_field, d, dir,
                  tmp[static_cast<std::size_t>(flag_index(d, dir))].data());
    }
  }
  // Keep producers from overwriting buffers of the next epoch while a slow
  // neighbor still reads this one.
  ctx.barrier();
}

void MilcSolver::apply_operator(fabric::RankCtx& ctx,
                                const std::vector<double>& in,
                                std::vector<double>& out) {
  FOMPI_REQUIRE(in.size() == volume_, ErrClass::arg,
                "apply_operator: field has wrong size");
  const auto& l = cfg_.local;
  std::vector<double> halo(halo_volume_, 0.0);
  std::size_t n = 0;
  for (int x = 1; x <= l[0]; ++x) {
    for (int y = 1; y <= l[1]; ++y) {
      for (int z = 1; z <= l[2]; ++z) {
        for (int t = 1; t <= l[3]; ++t) halo[hidx(x, y, z, t)] = in[n++];
      }
    }
  }
  exchange_halos(ctx, halo);
  out.resize(volume_);
  n = 0;
  for (int x = 1; x <= l[0]; ++x) {
    for (int y = 1; y <= l[1]; ++y) {
      for (int z = 1; z <= l[2]; ++z) {
        for (int t = 1; t <= l[3]; ++t) {
          const double center = halo[hidx(x, y, z, t)];
          const double nb = halo[hidx(x - 1, y, z, t)] +
                            halo[hidx(x + 1, y, z, t)] +
                            halo[hidx(x, y - 1, z, t)] +
                            halo[hidx(x, y + 1, z, t)] +
                            halo[hidx(x, y, z - 1, t)] +
                            halo[hidx(x, y, z + 1, t)] +
                            halo[hidx(x, y, z, t - 1)] +
                            halo[hidx(x, y, z, t + 1)];
          out[n++] = center + cfg_.kappa * (8.0 * center - nb);
        }
      }
    }
  }
}

double MilcSolver::dot(fabric::RankCtx& ctx, const std::vector<double>& a,
                       const std::vector<double>& b) const {
  double local = 0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  double global = 0;
  ctx.fabric().coll().run_allreduce(
      rank_, *dot_plan_, &local, &global,
      [](double x, double y) { return x + y; });
  return global;
}

int MilcSolver::solve_cg(fabric::RankCtx& ctx, const std::vector<double>& b,
                         std::vector<double>& x, double tol, int max_iters,
                         std::vector<double>* residual_history) {
  FOMPI_REQUIRE(b.size() == volume_, ErrClass::arg, "solve_cg: bad rhs size");
  x.resize(volume_, 0.0);
  std::vector<double> r(volume_), p(volume_), ap(volume_);
  apply_operator(ctx, x, ap);
  for (std::size_t i = 0; i < volume_; ++i) r[i] = b[i] - ap[i];
  p = r;
  double rr = dot(ctx, r, r);
  const double b2 = std::max(dot(ctx, b, b), 1e-300);
  int iter = 0;
  while (iter < max_iters && rr / b2 > tol * tol) {
    apply_operator(ctx, p, ap);
    const double alpha = rr / dot(ctx, p, ap);
    for (std::size_t i = 0; i < volume_; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(ctx, r, r);
    if (residual_history != nullptr) {
      residual_history->push_back(std::sqrt(rr_new / b2));
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < volume_; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    ++iter;
  }
  return iter;
}

}  // namespace fompi::apps

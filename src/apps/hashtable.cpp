#include "apps/hashtable.hpp"

#include <algorithm>
#include <atomic>

#include "common/buffer.hpp"
#include "fabric/progress/progress.hpp"

namespace fompi::apps {

namespace {

constexpr int kTagElem = 101;
constexpr int kTagDone = 102;

}  // namespace

DistHashtable::DistHashtable(fabric::RankCtx& ctx, HtBackend backend,
                             std::size_t table_slots, std::size_t heap_slots)
    : backend_(backend),
      nranks_(ctx.nranks()),
      rank_(ctx.rank()),
      table_slots_(table_slots),
      heap_slots_(heap_slots),
      layout_{/*base=*/0, table_slots, heap_slots},  // fig7a strides
      fabric_(&ctx.fabric()) {
  FOMPI_REQUIRE(table_slots_ > 0 && heap_slots_ > 0, ErrClass::arg,
                "hashtable needs nonzero capacities");
  switch (backend_) {
    case HtBackend::rma:
    case HtBackend::rma_fiber:
      win_ = core::Win::allocate(ctx, volume_bytes());
      win_.lock_all();  // passive epoch held for the table's lifetime
      break;
    case HtBackend::pgas:
      shared_.emplace(ctx, volume_bytes(), baselines::make_upc_like());
      break;
    case HtBackend::p2p: {
      // Local volume only; remote access travels in messages. A plain
      // window is still used as storage so that the layout helpers match.
      win_ = core::Win::allocate(ctx, volume_bytes());
      break;
    }
  }
  ctx.barrier();
}

void DistHashtable::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  switch (backend_) {
    case HtBackend::rma:
    case HtBackend::rma_fiber:
      win_.unlock_all();
      win_.free();
      break;
    case HtBackend::pgas:
      shared_->destroy(ctx);
      shared_.reset();
      break;
    case HtBackend::p2p:
      win_.free();
      break;
  }
}

std::size_t DistHashtable::slot_of(std::uint64_t key) const {
  return static_cast<std::size_t>(kv::mix64(key) >> 32) % table_slots_;
}

int DistHashtable::owner_of(std::uint64_t key) const {
  return static_cast<int>(kv::mix64(key) %
                          static_cast<std::uint64_t>(nranks_));
}

// --- RMA backend -----------------------------------------------------------

void DistHashtable::insert_rma(std::uint64_t key) {
  const int owner = owner_of(key);
  const std::size_t slot = slot_of(key);
  const std::uint64_t one = 1;
  const std::uint64_t old = kv::claim_slot(win_, owner, layout_, slot, key);
  if (old == key) return;  // duplicate
  if (old != 0) {
    // Collision: acquire an overflow cell, fill it, link it at the head.
    const std::uint64_t idx = kv::acquire_cell(win_, owner, layout_);
    win_.put(&key, 8, owner, off_heap(static_cast<std::size_t>(idx)));
    kv::link_cell(win_, owner, layout_, slot, idx);
  }
  win_.accumulate(&one, 1, Elem::u64, RedOp::sum, owner, off_count());
}

// --- RMA fiber backend -------------------------------------------------------
//
// insert_rma as a continuation-frame pipeline: every remote AMO issues as
// an explicit-handle request and the fiber parks on it (FOMPI_FIBER_AWAIT)
// instead of blocking, so a pool of these fibers keeps several inserts in
// flight per rank. Keys come off a shared cursor — fibers of one rank run
// on the same thread, so plain loads/stores suffice.

struct DistHashtable::InsertFiber final : fabric::progress::Fiber {
  InsertFiber(DistHashtable& ht, const std::vector<std::uint64_t>& keys,
              std::size_t* cursor)
      : ht(ht), keys(keys), cursor(cursor) {}

  void step(fabric::progress::Scheduler& s) override {
    static constexpr std::uint64_t kZero = 0, kOne = 1;
    FOMPI_FIBER_BEGIN();
    while (*cursor < keys.size()) {
      key = keys[(*cursor)++];
      owner = ht.owner_of(key);
      slot = ht.slot_of(key);
      // Claim the top slot.
      req = ht.win_.rcompare_and_swap(&key, &kZero, &old_val, Elem::u64,
                                      owner, ht.off_table(slot));
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      if (old_val == key) continue;  // duplicate
      if (old_val != 0) {
        // Collision: acquire an overflow cell, fill it, link it at the head.
        req = ht.win_.rfetch_and_op(&kOne, &idx, Elem::u64, RedOp::sum,
                                    owner, ht.off_next_free());
        FOMPI_FIBER_AWAIT(s, req.handles()[0]);
        req.dismiss();
        FOMPI_REQUIRE(idx < ht.heap_slots_, ErrClass::no_mem,
                      "hashtable overflow heap exhausted");
        req = ht.win_.rput(&key, 8, owner,
                           ht.off_heap(static_cast<std::size_t>(idx)));
        FOMPI_FIBER_AWAIT(s, req.handles()[0]);
        req.dismiss();
        while (true) {
          req = ht.win_.rfetch_and_op(nullptr, &head, Elem::u64, RedOp::no_op,
                                      owner, ht.off_chain(slot));
          FOMPI_FIBER_AWAIT(s, req.handles()[0]);
          req.dismiss();
          // Cell completely written before it becomes reachable: the
          // awaited rput is remotely complete at retire.
          req = ht.win_.rput(&head, 8, owner,
                             ht.off_heap(static_cast<std::size_t>(idx)) + 8);
          FOMPI_FIBER_AWAIT(s, req.handles()[0]);
          req.dismiss();
          linked = idx + 1;
          req = ht.win_.rcompare_and_swap(&linked, &head, &prev, Elem::u64,
                                          owner, ht.off_chain(slot));
          FOMPI_FIBER_AWAIT(s, req.handles()[0]);
          req.dismiss();
          if (prev == head) break;
        }
      }
      ht.win_.accumulate(&kOne, 1, Elem::u64, RedOp::sum, owner,
                         ht.off_count());
    }
    FOMPI_FIBER_END();
  }

  DistHashtable& ht;
  const std::vector<std::uint64_t>& keys;
  std::size_t* cursor;
  std::uint64_t key = 0, old_val = 0, idx = 0, head = 0, linked = 0, prev = 0;
  int owner = 0;
  std::size_t slot = 0;
  core::RmaRequest req;
};

void DistHashtable::batch_insert_rma_fiber(
    const std::vector<std::uint64_t>& keys) {
  fabric::progress::Scheduler sched(*fabric_, rank_);
  std::size_t cursor = 0;
  const std::size_t pool = std::min<std::size_t>(8, std::max<std::size_t>(
                                                        1, keys.size()));
  for (std::size_t i = 0; i < pool; ++i) {
    sched.spawn<InsertFiber>(*this, keys, &cursor);
  }
  sched.run();
}

// --- PGAS backend --------------------------------------------------------------

void DistHashtable::insert_pgas(std::uint64_t key) {
  const int owner = owner_of(key);
  const std::size_t slot = slot_of(key);
  const std::uint64_t old =
      shared_->amo_acswap(owner, off_table(slot), 0, key);
  if (old == key) return;
  if (old != 0) {
    const std::uint64_t idx = shared_->amo_aadd(owner, off_next_free(), 1);
    FOMPI_REQUIRE(idx < heap_slots_, ErrClass::no_mem,
                  "hashtable overflow heap exhausted");
    shared_->memput(owner, off_heap(static_cast<std::size_t>(idx)), &key, 8);
    while (true) {
      // UPC has no remote atomic read; an acswap with an impossible pair
      // acts as one (the paper's UPC code uses CAS loops the same way).
      const std::uint64_t head =
          shared_->amo_acswap(owner, off_chain(slot), ~0ull, ~0ull);
      shared_->memput(owner, off_heap(static_cast<std::size_t>(idx)) + 8,
                      &head, 8);
      shared_->fence();
      if (shared_->amo_acswap(owner, off_chain(slot), head, idx + 1) ==
          head) {
        break;
      }
    }
  }
  shared_->amo_aadd(owner, off_count(), 1);
}

// --- owner-local insert (p2p handler and local fast path) ---------------------

void DistHashtable::insert_local(std::uint64_t key) {
  auto* base = static_cast<std::byte*>(win_.base());
  auto word = [&](std::size_t off) {
    return std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(base + off));
  };
  const std::size_t slot = slot_of(key);
  std::uint64_t expected = 0;
  if (word(off_table(slot)).compare_exchange_strong(expected, key)) {
    word(off_count()).fetch_add(1);
    return;
  }
  if (expected == key) return;
  const std::uint64_t idx = word(off_next_free()).fetch_add(1);
  FOMPI_REQUIRE(idx < heap_slots_, ErrClass::no_mem,
                "hashtable overflow heap exhausted");
  word(off_heap(static_cast<std::size_t>(idx))).store(key);
  while (true) {
    const std::uint64_t head = word(off_chain(slot)).load();
    word(off_heap(static_cast<std::size_t>(idx)) + 8).store(head);
    std::uint64_t h = head;
    if (word(off_chain(slot)).compare_exchange_strong(h, idx + 1)) break;
  }
  word(off_count()).fetch_add(1);
}

// --- batch driver -----------------------------------------------------------------

void DistHashtable::batch_insert(fabric::RankCtx& ctx,
                                 const std::vector<std::uint64_t>& keys) {
  for (const std::uint64_t k : keys) {
    FOMPI_REQUIRE(k != 0, ErrClass::arg, "hashtable keys must be nonzero");
  }
  switch (backend_) {
    case HtBackend::rma:
      for (const std::uint64_t k : keys) insert_rma(k);
      win_.flush_all();
      ctx.barrier();
      return;
    case HtBackend::rma_fiber:
      batch_insert_rma_fiber(keys);
      win_.flush_all();  // trailing nbi count accumulates
      ctx.barrier();
      return;
    case HtBackend::pgas:
      for (const std::uint64_t k : keys) insert_pgas(k);
      shared_->fence();
      shared_->barrier();
      return;
    case HtBackend::p2p: {
      auto& p2p = fabric_->p2p();
      const std::uint64_t done_token = 0;
      // Interleave sending our batch with serving incoming elements.
      auto poll = [&] {
        fabric::Status st;
        while (p2p.iprobe(rank_, fabric::kAnySource, kTagElem, &st)) {
          std::uint64_t k = 0;
          p2p.recv(rank_, st.source, kTagElem, &k, 8);
          insert_local(k);
        }
      };
      for (const std::uint64_t k : keys) {
        const int owner = owner_of(k);
        if (owner == rank_) {
          insert_local(k);
        } else {
          p2p.send(rank_, owner, kTagElem, &k, 8);
        }
        poll();
      }
      // Termination detection: notify all other processes, then drain
      // until everyone's notification arrived (pairwise ordering makes
      // the DONE message a barrier for that sender's elements).
      for (int r = 0; r < nranks_; ++r) {
        if (r != rank_) p2p.send(rank_, r, kTagDone, &done_token, 8);
      }
      int dones = 0;
      while (dones < nranks_ - 1) {
        fabric::Status st;
        std::uint64_t payload = 0;
        p2p.recv(rank_, fabric::kAnySource, fabric::kAnyTag, &payload, 8,
                 &st);
        if (st.tag == kTagElem) {
          insert_local(payload);
        } else {
          ++dones;
        }
      }
      ctx.barrier();
      return;
    }
  }
}

// --- queries ------------------------------------------------------------------------

bool DistHashtable::chain_contains(int owner, std::size_t slot,
                                   std::uint64_t key) {
  if (backend_ == HtBackend::rma || backend_ == HtBackend::rma_fiber) {
    return kv::find_in_chain(win_, owner, layout_, slot, key) != 0;
  }
  auto read_remote = [&](std::size_t off) {
    std::uint64_t v = 0;
    shared_->memget(owner, off, &v, 8);
    shared_->fence();
    return v;
  };
  std::uint64_t head = read_remote(off_chain(slot));
  while (head != 0) {
    const std::size_t idx = static_cast<std::size_t>(head - 1);
    if (read_remote(off_heap(idx)) == key) return true;
    head = read_remote(off_heap(idx) + 8);
  }
  return false;
}

bool DistHashtable::chain_contains_local(std::size_t slot,
                                         std::uint64_t key) const {
  const auto* base =
      static_cast<const std::byte*>(const_cast<core::Win&>(win_).base());
  auto word = [&](std::size_t off) {
    return std::atomic_ref<const std::uint64_t>(
               *reinterpret_cast<const std::uint64_t*>(base + off))
        .load();
  };
  std::uint64_t head = word(off_chain(slot));
  while (head != 0) {
    const std::size_t idx = static_cast<std::size_t>(head - 1);
    if (word(off_heap(idx)) == key) return true;
    head = word(off_heap(idx) + 8);
  }
  return false;
}

bool DistHashtable::contains(std::uint64_t key) {
  const int owner = owner_of(key);
  const std::size_t slot = slot_of(key);
  if (backend_ == HtBackend::p2p) {
    FOMPI_REQUIRE(owner == rank_, ErrClass::arg,
                  "p2p backend supports local lookups only");
    auto* base = static_cast<std::byte*>(win_.base());
    const std::uint64_t top = std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(base + off_table(slot)))
                                  .load();
    if (top == key) return true;
    return chain_contains_local(slot, key);
  }
  std::uint64_t top = 0;
  if (backend_ == HtBackend::rma || backend_ == HtBackend::rma_fiber) {
    top = kv::read_word(win_, owner, off_table(slot));
  } else {
    shared_->memget(owner, off_table(slot), &top, 8);
    shared_->fence();
  }
  if (top == key) return true;
  return chain_contains(owner, slot, key);
}

// One-sided lookups as a continuation-frame pipeline, mirroring
// InsertFiber: each probe (top cell, chain head, chain walk) issues as an
// explicit-handle atomic read and the fiber parks on it, so a pool keeps
// several lookups in flight per rank.
struct DistHashtable::LookupFiber final : fabric::progress::Fiber {
  LookupFiber(DistHashtable& ht, const std::vector<std::uint64_t>& keys,
              std::size_t* cursor, std::vector<bool>* out)
      : ht(ht), keys(keys), cursor(cursor), out(out) {}

  void step(fabric::progress::Scheduler& s) override {
    FOMPI_FIBER_BEGIN();
    while (*cursor < keys.size()) {
      at = (*cursor)++;
      key = keys[at];
      owner = ht.owner_of(key);
      slot = ht.slot_of(key);
      req = ht.win_.rfetch_and_op(nullptr, &word, Elem::u64, RedOp::no_op,
                                  owner, ht.off_table(slot));
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      if (word == key) {
        (*out)[at] = true;
        continue;
      }
      req = ht.win_.rfetch_and_op(nullptr, &head, Elem::u64, RedOp::no_op,
                                  owner, ht.off_chain(slot));
      FOMPI_FIBER_AWAIT(s, req.handles()[0]);
      req.dismiss();
      while (head != 0) {
        idx = head - 1;
        req = ht.win_.rfetch_and_op(nullptr, &word, Elem::u64, RedOp::no_op,
                                    owner,
                                    ht.off_heap(static_cast<std::size_t>(idx)));
        FOMPI_FIBER_AWAIT(s, req.handles()[0]);
        req.dismiss();
        if (word == key) {
          (*out)[at] = true;
          break;
        }
        req = ht.win_.rfetch_and_op(
            nullptr, &head, Elem::u64, RedOp::no_op, owner,
            ht.off_heap(static_cast<std::size_t>(idx)) + 8);
        FOMPI_FIBER_AWAIT(s, req.handles()[0]);
        req.dismiss();
      }
    }
    FOMPI_FIBER_END();
  }

  DistHashtable& ht;
  const std::vector<std::uint64_t>& keys;
  std::size_t* cursor;
  std::vector<bool>* out;
  std::uint64_t key = 0, word = 0, head = 0, idx = 0;
  int owner = 0;
  std::size_t slot = 0, at = 0;
  core::RmaRequest req;
};

std::vector<bool> DistHashtable::batch_contains(
    const std::vector<std::uint64_t>& keys) {
  std::vector<bool> out(keys.size(), false);
  if (backend_ != HtBackend::rma_fiber) {
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = contains(keys[i]);
    return out;
  }
  fabric::progress::Scheduler sched(*fabric_, rank_);
  std::size_t cursor = 0;
  const std::size_t pool =
      std::min<std::size_t>(8, std::max<std::size_t>(1, keys.size()));
  for (std::size_t i = 0; i < pool; ++i) {
    sched.spawn<LookupFiber>(*this, keys, &cursor, &out);
  }
  sched.run();
  return out;
}

std::uint64_t DistHashtable::local_count() const {
  const auto* base = static_cast<const std::byte*>(
      backend_ == HtBackend::pgas
          ? const_cast<DistHashtable*>(this)->shared_->local()
          : const_cast<DistHashtable*>(this)->win_.base());
  return std::atomic_ref<const std::uint64_t>(
             *reinterpret_cast<const std::uint64_t*>(base + off_count()))
      .load();
}

std::uint64_t DistHashtable::global_count(fabric::RankCtx& ctx) {
  const std::uint64_t mine = local_count();
  std::uint64_t total = 0;
  ctx.allreduce(&mine, &total, 1,
                [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return total;
}

}  // namespace fompi::apps

#include "trace/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/error.hpp"

namespace fompi::trace {

const char* to_string(EvClass cls) noexcept {
  switch (cls) {
    case EvClass::put:           return "put";
    case EvClass::get:           return "get";
    case EvClass::amo:           return "amo";
    case EvClass::vectored:      return "vectored";
    case EvClass::bulk_sync:     return "bulk_sync";
    case EvClass::fence:         return "fence";
    case EvClass::pscw_post:     return "pscw_post";
    case EvClass::pscw_start:    return "pscw_start";
    case EvClass::pscw_complete: return "pscw_complete";
    case EvClass::pscw_wait:     return "pscw_wait";
    case EvClass::lock:          return "lock";
    case EvClass::unlock:        return "unlock";
    case EvClass::flush:         return "flush";
    case EvClass::win_sync:      return "win_sync";
    case EvClass::notify_wait:   return "notify_wait";
    case EvClass::barrier:       return "barrier";
    case EvClass::fault:         return "fault";
    case EvClass::batch:         return "batch";
    case EvClass::channel:       return "channel";
    case EvClass::adapt:         return "adapt";
    case EvClass::fiber:         return "fiber";
    case EvClass::notify_post:   return "notify_post";
    case EvClass::kv:            return "kv";
    case EvClass::recovery:      return "recovery";
    case EvClass::kCount:        break;
  }
  return "unknown";
}

const char* to_string(EvPhase ph) noexcept {
  switch (ph) {
    case EvPhase::issue:    return "issue";
    case EvPhase::doorbell: return "doorbell";
    case EvPhase::complete: return "complete";
    case EvPhase::begin:    return "begin";
    case EvPhase::end:      return "end";
    case EvPhase::retry:    return "retry";
    case EvPhase::kCount:   break;
  }
  return "unknown";
}

namespace detail {
thread_local Stage tl_stage;

void flush_stage() noexcept {
  Stage& st = tl_stage;
  if (st.ring != nullptr && st.n != 0) st.ring->push_batch(st.buf.data(), st.n);
  st.n = 0;
}
}  // namespace detail

void bind_thread(Ring* ring) noexcept {
  detail::flush_stage();
  detail::tl_stage.ring = ring;
}

Ring* bound_ring() noexcept { return detail::tl_stage.ring; }

void flush_thread() noexcept { detail::flush_stage(); }

// ---------------------------------------------------------------------------
// LatencyHisto
// ---------------------------------------------------------------------------

// Values below 2^(kSubBits+1) map exactly (one bucket per nanosecond);
// every higher octave [2^(w-1), 2^w) splits into 2^kSubBits sub-buckets.
namespace {
constexpr std::uint64_t kExactLimit = 1u << (LatencyHisto::kSubBits + 1);
}  // namespace

std::size_t LatencyHisto::bucket_of(std::uint64_t ns) noexcept {
  if (ns < kExactLimit) return static_cast<std::size_t>(ns);
  const int w = std::bit_width(ns);  // >= kSubBits + 2
  const int shift = w - kSubBits - 1;
  const std::size_t sub =
      static_cast<std::size_t>((ns >> shift) & ((1u << kSubBits) - 1));
  return static_cast<std::size_t>(kExactLimit) +
         (static_cast<std::size_t>(w - kSubBits - 2) << kSubBits) + sub;
}

std::uint64_t LatencyHisto::bucket_floor(std::size_t bucket) noexcept {
  if (bucket < kExactLimit) return bucket;
  const std::size_t b = bucket - static_cast<std::size_t>(kExactLimit);
  const int w = static_cast<int>(b >> kSubBits) + kSubBits + 2;
  const std::uint64_t sub = b & ((1u << kSubBits) - 1);
  const int shift = w - kSubBits - 1;
  return (std::uint64_t{1} << (w - 1)) + (sub << shift);
}

void LatencyHisto::add(std::uint64_t ns) noexcept {
  ++buckets_[bucket_of(ns)];
  ++count_;
  if (ns > max_) max_ = ns;
}

void LatencyHisto::merge(const LatencyHisto& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t LatencyHisto::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based; walk the cumulative counts.
  const std::uint64_t want =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= want) return bucket_floor(i);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

namespace {
std::atomic<TraceSession*> g_active{nullptr};
}  // namespace

TraceSession::TraceSession(int nranks) : TraceSession(nranks, Config{}) {}

TraceSession::TraceSession(int nranks, Config cfg)
    : cfg_(std::move(cfg)), start_wall_ns_(now_ns()) {
  FOMPI_REQUIRE(nranks >= 1, ErrClass::arg, "TraceSession needs >= 1 rank");
  FOMPI_REQUIRE(cfg_.ring_capacity >= 1, ErrClass::arg,
                "TraceSession needs a nonzero ring capacity");
  rings_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    rings_.push_back(std::make_unique<Ring>(cfg_.ring_capacity));
  }
  TraceSession* expected = nullptr;
  FOMPI_REQUIRE(
      g_active.compare_exchange_strong(expected, this,
                                       std::memory_order_acq_rel),
      ErrClass::arg, "only one TraceSession may be active at a time");
}

TraceSession::~TraceSession() {
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

TraceSession* TraceSession::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

std::uint64_t TraceSession::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->size();
  return n;
}

std::uint64_t TraceSession::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped();
  return n;
}

LatencyHisto TraceSession::histogram(EvClass cls) const {
  LatencyHisto h;
  std::vector<std::uint64_t> begin_stack;
  for (const auto& rp : rings_) {
    const Ring& ring = *rp;
    begin_stack.clear();
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = ring[i];
      if (e.cls != cls) continue;
      switch (e.phase) {
        case EvPhase::begin:
          begin_stack.push_back(e.wall_ns);
          break;
        case EvPhase::end:
          // Unmatched ends (ring filled up mid-span) are skipped rather
          // than fabricating a duration.
          if (!begin_stack.empty()) {
            h.add(e.wall_ns - begin_stack.back());
            begin_stack.pop_back();
          }
          break;
        case EvPhase::issue:
        case EvPhase::doorbell:
          if (e.dur_ns != 0) h.add(e.dur_ns);
          break;
        case EvPhase::complete:
        case EvPhase::retry:
        case EvPhase::kCount:
          break;
      }
    }
  }
  return h;
}

HistoSummary TraceSession::summary(EvClass cls) const {
  const LatencyHisto h = histogram(cls);
  HistoSummary s;
  s.count = h.count();
  s.p50_ns = h.quantile(0.50);
  s.p99_ns = h.quantile(0.99);
  s.max_ns = h.max();
  return s;
}

bool TraceSession::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && wrote == json.size();
  return ok;
}

std::string TraceSession::write_postmortem() const {
  if (cfg_.postmortem_path.empty()) return {};
  if (!write_chrome_json(cfg_.postmortem_path)) return {};
  return cfg_.postmortem_path;
}

}  // namespace fompi::trace

// Flight-recorder tracing: per-rank lock-free event rings, sync-epoch
// spans, and modeled-time op lifecycle stamps.
//
// The paper argues foMPI's value with per-operation cost breakdowns and
// epoch timelines (Figs 4-6); OpCounters alone cannot show *when* an op was
// issued or how an epoch overlapped communication. This subsystem records
// both, cheaply enough to leave on:
//
//   * One Ring per rank, single-producer (the rank thread owns it, mirroring
//     the Nic ownership rule) / single-consumer (a dump after the fact).
//     Fixed capacity, zero allocation and no locks on the record path; on
//     overflow new events are DROPPED and counted, so a full ring degrades
//     to a truthful partial trace instead of blocking the traced code.
//     Bound threads stage events in a small thread-local buffer and publish
//     them in batches with one release store (push_batch), so the common
//     record cost is a couple of thread-local stores; unbinding flushes.
//   * The off path is a single thread-local load + branch: a rank thread
//     records only while bound to a ring (run_ranks binds automatically
//     when a TraceSession is active). Compile out entirely with
//     -DFOMPI_TRACE=OFF (CMake option).
//   * Events carry a wall-clock stamp (now_ns, the shared steady clock) and,
//     for NIC ops under Injection::model, the modeled network_model stamps:
//     dur_ns = injected completion latency, sim_ns = the absolute modeled
//     completion time. Outside injection mode both are 0.
//
// Consumers (see TraceSession): a Chrome/Perfetto trace-event JSON exporter
// (one track per rank; spans for epochs, instants for ops) and log-bucketed
// latency histograms per event class with p50/p99/max queries.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/timing.hpp"

#ifndef FOMPI_TRACE
#define FOMPI_TRACE 1
#endif

namespace fompi::trace {

inline constexpr bool kEnabled = FOMPI_TRACE != 0;

/// What happened. Op classes (put..bulk_sync) come from the NIC; the rest
/// are the window-layer sync epochs and fabric collectives.
enum class EvClass : std::uint8_t {
  put,            ///< contiguous put handed to the NIC
  get,            ///< contiguous get handed to the NIC
  amo,            ///< remote atomic handed to the NIC
  vectored,       ///< multi-fragment (chained-FMA) op, one doorbell
  bulk_sync,      ///< NIC gsync: bulk completion of implicit ops
  fence,          ///< MPI_Win_fence epoch separator
  pscw_post,      ///< MPI_Win_post (matching-list insertion)
  pscw_start,     ///< MPI_Win_start (spin on local matching list)
  pscw_complete,  ///< MPI_Win_complete (commit + counter bumps)
  pscw_wait,      ///< MPI_Win_wait (spin on completion counter)
  lock,           ///< MPI_Win_lock / lock_all acquisition
  unlock,         ///< MPI_Win_unlock / unlock_all release
  flush,          ///< flush family (remote/local bulk completion)
  win_sync,       ///< MPI_Win_sync memory barrier
  notify_wait,    ///< notified-access wait_notify spin
  barrier,        ///< fabric dissemination barrier
  fault,          ///< FaultPlan event (injection / retry / permanent failure)
  batch,          ///< coalesced doorbell rung (arg = chained descriptors)
  channel,        ///< BTE transfer striped across channels (arg = channels)
  adapt,          ///< adaptive tuner moved a threshold (arg = new value)
  fiber,          ///< fiber resumed (begin) / finished (complete); arg = id
  notify_post,    ///< put-with-notification record posted (arg = tag/seq)
  kv,             ///< KV service client op (arg = key, dur = op latency)
  recovery,       ///< KV recovery: heal span (begin/end), promotion (issue,
                  ///< arg = shard), drain chunk (doorbell, arg = bytes),
                  ///< generation release (complete, arg = generation),
                  ///< scrub repair (retry, arg = cell offset)
  kCount,
};

/// Lifecycle phase of the event.
enum class EvPhase : std::uint8_t {
  issue,     ///< op entered the NIC and its data moved at issue
  doorbell,  ///< op handed to the wire; data committed at sim_ns, not yet
  complete,  ///< explicit-handle retirement (test/wait observed completion)
  begin,     ///< sync-epoch span opened
  end,       ///< sync-epoch span closed
  retry,     ///< op re-issued after a transient injected fault
  kCount,
};

const char* to_string(EvClass cls) noexcept;
const char* to_string(EvPhase ph) noexcept;

/// One fixed-size trace record (rank is implicit: one ring per rank).
struct Event {
  std::uint64_t wall_ns = 0;  ///< steady-clock stamp at record time
  std::uint64_t sim_ns = 0;   ///< modeled absolute completion time (0 = n/a)
  std::uint64_t dur_ns = 0;   ///< modeled op latency (0 = n/a)
  std::uint64_t arg = 0;      ///< payload bytes / class-specific argument
  std::int32_t target = -1;   ///< peer rank (-1 = none)
  EvClass cls = EvClass::put;
  EvPhase phase = EvPhase::issue;
  std::uint16_t pad_ = 0;
};
static_assert(sizeof(Event) == 40);

/// Fixed-capacity single-producer event buffer. The producer appends with
/// one relaxed load + store and a release publish; it never blocks and
/// never allocates. When full, push() drops the event and bumps the drop
/// counter (relaxed atomic). A concurrent reader sees a consistent prefix:
/// size() is an acquire load, and slots below it are never rewritten.
class Ring {
 public:
  explicit Ring(std::size_t capacity) : slots_(capacity) {}
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Record-path append (single producer). Lock-free, allocation-free.
  void push(const Event& ev) noexcept {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[n] = ev;
    count_.store(n + 1, std::memory_order_release);
  }

  /// Batched append (single producer): copies what fits and publishes it
  /// with ONE release store; the overflow remainder is dropped and counted,
  /// preserving push()'s oldest-events-kept semantics. This is the staging
  /// buffer's publish path — the per-event record cost is a plain store
  /// into thread-local memory, not a shared-counter update.
  void push_batch(const Event* evs, std::size_t n) noexcept {
    const std::uint64_t c = count_.load(std::memory_order_relaxed);
    const std::size_t cap = slots_.size();
    std::size_t take = 0;
    if (c < cap) take = std::min<std::size_t>(n, cap - c);
    for (std::size_t i = 0; i < take; ++i) slots_[c + i] = evs[i];
    if (take != 0) count_.store(c + take, std::memory_order_release);
    if (take != n) dropped_.fetch_add(n - take, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Events recorded so far (readable prefix; safe from any thread).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(count_.load(std::memory_order_acquire));
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Valid for i < size() observed by this thread.
  const Event& operator[](std::size_t i) const noexcept { return slots_[i]; }

 private:
  std::vector<Event> slots_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

namespace detail {
/// Per-thread staging buffer: emit() appends into this plain thread-local
/// array and publishes to the bound ring in batches with ONE release store
/// (Ring::push_batch), so the per-event record cost is a thread-local store,
/// not a shared-counter publish. Flushed on batch fill, on rebind/unbind,
/// and explicitly via flush_thread(). An unbound thread (ring == nullptr)
/// stages nothing — the drop-with-counter and records-nothing guarantees of
/// the unstaged design are preserved.
struct Stage {
  static constexpr std::size_t kStageEvents = 16;
  Ring* ring = nullptr;   ///< bound ring (null = tracing off for this thread)
  std::uint32_t n = 0;    ///< staged events not yet published
  std::array<Event, kStageEvents> buf{};
};
extern thread_local Stage tl_stage;
/// Publishes staged events to the bound ring (one release store) and empties
/// the stage. Safe to call unbound or empty (no-op).
void flush_stage() noexcept;
}  // namespace detail

/// Binds the calling thread to `ring` (null unbinds). Any events still
/// staged for the previously bound ring are flushed to it first, so an
/// unbind never loses the tail of a trace. The record path of an unbound
/// thread is one thread-local load and one branch.
void bind_thread(Ring* ring) noexcept;
/// The ring the calling thread records into (null if unbound).
Ring* bound_ring() noexcept;
/// Publishes the calling thread's staged events to its bound ring. Readers
/// observing ring.size() from the producer thread (tests, in-run dumps)
/// call this first; unbinding flushes implicitly.
void flush_thread() noexcept;

/// Records one event on the calling thread's ring, if bound. This is THE
/// record path: a branch when unbound; a clock read plus one store into the
/// thread-local staging buffer when bound (the ring publish is amortized
/// over Stage::kStageEvents events). Never locks, never allocates.
inline void emit(EvClass cls, EvPhase phase, std::int32_t target = -1,
                 std::uint64_t arg = 0, std::uint64_t dur_ns = 0,
                 std::uint64_t sim_ns = 0) noexcept {
#if FOMPI_TRACE
  detail::Stage& st = detail::tl_stage;
  if (st.ring == nullptr) return;
  Event& ev = st.buf[st.n];
  ev.wall_ns = now_ns();
  ev.sim_ns = sim_ns;
  ev.dur_ns = dur_ns;
  ev.arg = arg;
  ev.target = target;
  ev.cls = cls;
  ev.phase = phase;
  if (++st.n == detail::Stage::kStageEvents) detail::flush_stage();
#else
  (void)cls; (void)phase; (void)target; (void)arg; (void)dur_ns; (void)sim_ns;
#endif
}

/// RAII sync-epoch span: begin at construction, end at destruction. Arms
/// only if the thread was bound at construction, so a span never emits an
/// unmatched end.
class Span {
 public:
  explicit Span(EvClass cls, std::int32_t target = -1,
                std::uint64_t arg = 0) noexcept
#if FOMPI_TRACE
      : cls_(cls), target_(target), armed_(detail::tl_stage.ring != nullptr) {
    if (armed_) emit(cls_, EvPhase::begin, target_, arg);
  }
  ~Span() {
    if (armed_) emit(cls_, EvPhase::end, target_);
  }
#else
  {
    (void)cls; (void)target; (void)arg;
  }
  ~Span() = default;
#endif
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if FOMPI_TRACE
  EvClass cls_;
  std::int32_t target_;
  bool armed_;
#endif
};

/// Log-bucketed (HDR-style) latency histogram: 8 sub-buckets per octave,
/// so any quantile is exact to within ~12.5% of the true value while the
/// whole 64-bit nanosecond range fits in a fixed 496-entry array.
class LatencyHisto {
 public:
  static constexpr int kSubBits = 3;  // sub-buckets per octave = 2^kSubBits
  static constexpr std::size_t kBuckets =
      ((64 - kSubBits) << kSubBits) + (1u << kSubBits);

  void add(std::uint64_t ns) noexcept;
  void merge(const LatencyHisto& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max() const noexcept { return max_; }
  /// Value at quantile q in [0,1] (lower bound of the containing bucket;
  /// 0 when empty). quantile(0.5) is p50, quantile(0.99) is p99.
  std::uint64_t quantile(double q) const noexcept;

  static std::size_t bucket_of(std::uint64_t ns) noexcept;
  /// Lower bound of the value range mapped to `bucket`.
  static std::uint64_t bucket_floor(std::size_t bucket) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

/// p50/p99/max summary of one event class (see TraceSession::summary).
struct HistoSummary {
  std::uint64_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// One tracing run: per-rank rings plus the consumers. Constructing a
/// session installs it as the process-global active session (at most one at
/// a time); run_ranks binds each rank thread to ring(rank) while a session
/// is active, and dumps a post-mortem trace on fleet abort. Threads driving
/// a raw Nic (no fabric) bind manually with bind_thread().
class TraceSession {
 public:
  struct Config {
    std::size_t ring_capacity = std::size_t{1} << 16;  ///< events per rank
    /// Where run_ranks writes the trace when a fleet abort kills the run
    /// (empty = no post-mortem dump).
    std::string postmortem_path = "fompi_postmortem.trace.json";
  };

  explicit TraceSession(int nranks);  // default Config
  TraceSession(int nranks, Config cfg);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session (null if none).
  static TraceSession* active() noexcept;

  int nranks() const noexcept { return static_cast<int>(rings_.size()); }
  Ring& ring(int rank) { return *rings_[static_cast<std::size_t>(rank)]; }
  const Ring& ring(int rank) const {
    return *rings_[static_cast<std::size_t>(rank)];
  }
  /// Wall-clock origin: event timestamps in exports are relative to this.
  std::uint64_t start_wall_ns() const noexcept { return start_wall_ns_; }
  const Config& config() const noexcept { return cfg_; }

  std::uint64_t total_events() const noexcept;
  std::uint64_t total_dropped() const noexcept;

  /// Latency histogram of one event class across all ranks: modeled op
  /// latencies (dur_ns of issue/doorbell events) plus wall-clock span
  /// durations (begin/end pairs).
  LatencyHisto histogram(EvClass cls) const;
  HistoSummary summary(EvClass cls) const;

  /// Chrome trace-event JSON ("Perfetto JSON"): load in ui.perfetto.dev or
  /// chrome://tracing. One thread track per rank; epochs are B/E spans, ops
  /// are instants carrying bytes/dur_ns/sim_ns args.
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;
  /// Post-mortem dump to config().postmortem_path (no-op if empty); used by
  /// run_ranks when a fleet abort kills the run. Returns the path written,
  /// or empty on failure/no-op.
  std::string write_postmortem() const;

 private:
  Config cfg_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::uint64_t start_wall_ns_ = 0;
};

}  // namespace fompi::trace

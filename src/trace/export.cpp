// Chrome trace-event ("Perfetto JSON") exporter.
//
// Emits the classic trace-event JSON object format, loadable in
// ui.perfetto.dev or chrome://tracing: one process (pid 0, the fabric),
// one thread track per rank. Sync epochs become B/E duration events;
// op lifecycle records become thread-scoped instants carrying bytes,
// modeled latency (dur_ns) and the modeled completion stamp (sim_ns) as
// args. Timestamps are microseconds relative to the session start, on the
// shared steady clock — so tracks of different ranks line up exactly.
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "trace/trace.hpp"

namespace fompi::trace {

namespace {

void append_f(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Microseconds (Chrome's "ts" unit) relative to the session origin.
double rel_us(std::uint64_t wall_ns, std::uint64_t origin_ns) {
  return static_cast<double>(wall_ns - origin_ns) / 1e3;
}

}  // namespace

std::string TraceSession::chrome_json() const {
  const std::uint64_t origin = start_wall_ns_;
  std::string out;
  out.reserve(1 << 16);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  for (int rank = 0; rank < nranks(); ++rank) {
    if (!first) out += ",\n";
    first = false;
    append_f(out,
             "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
             "\"tid\": %d, \"args\": {\"name\": \"rank %d\"}}",
             rank, rank);
    const Ring& r = ring(rank);
    const std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = r[i];
      out += ",\n";
      switch (e.phase) {
        case EvPhase::begin:
          append_f(out,
                   "{\"name\": \"%s\", \"cat\": \"epoch\", \"ph\": \"B\", "
                   "\"pid\": 0, \"tid\": %d, \"ts\": %.3f, "
                   "\"args\": {\"target\": %d, \"arg\": %" PRIu64 "}}",
                   to_string(e.cls), rank, rel_us(e.wall_ns, origin),
                   e.target, e.arg);
          break;
        case EvPhase::end:
          append_f(out,
                   "{\"name\": \"%s\", \"cat\": \"epoch\", \"ph\": \"E\", "
                   "\"pid\": 0, \"tid\": %d, \"ts\": %.3f}",
                   to_string(e.cls), rank, rel_us(e.wall_ns, origin));
          break;
        case EvPhase::issue:
        case EvPhase::doorbell:
        case EvPhase::complete:
        case EvPhase::retry:
        case EvPhase::kCount:
          append_f(out,
                   "{\"name\": \"%s:%s\", \"cat\": \"op\", \"ph\": \"i\", "
                   "\"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, "
                   "\"args\": {\"target\": %d, \"bytes\": %" PRIu64
                   ", \"dur_ns\": %" PRIu64 ", \"sim_ns\": %" PRIu64 "}}",
                   to_string(e.cls), to_string(e.phase), rank,
                   rel_us(e.wall_ns, origin), e.target, e.arg, e.dur_ns,
                   e.sim_ns);
          break;
      }
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ns\",\n";
  append_f(out,
           "\"otherData\": {\"ranks\": %d, \"events\": %" PRIu64
           ", \"dropped\": %" PRIu64 "}\n}\n",
           nranks(), total_events(), total_dropped());
  return out;
}

}  // namespace fompi::trace

#include "simtime/sim_dsde.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "simtime/des.hpp"
#include "simtime/sim_sync.hpp"

namespace fompi::sim {

namespace {

/// NBX, event-driven: every rank issues k synchronous sends to random
/// targets; once all acks are in, it joins a nonblocking dissemination
/// barrier. The exchange is complete when the last rank leaves the barrier.
double simulate_nbx(int p, const DsdeParams& params) {
  if (p <= 1) return 0.0;
  const int rounds = std::bit_width(static_cast<unsigned>(p - 1));
  Sim sim;
  struct RankState {
    int acks_pending;
    int round = -1;  // -1: not yet in the barrier
    std::vector<bool> received;
    bool sent_current = false;
    double exit_time = -1;
  };
  std::vector<RankState> ranks(static_cast<std::size_t>(p));
  for (auto& r : ranks) {
    r.acks_pending = params.k;
    r.received.assign(static_cast<std::size_t>(rounds), false);
  }

  std::function<void(int)> advance = [&](int rank) {
    auto& st = ranks[static_cast<std::size_t>(rank)];
    while (true) {
      if (st.round == rounds) {
        st.exit_time = sim.now();
        return;
      }
      const int r = st.round;
      if (!st.sent_current) {
        st.sent_current = true;
        const int partner = static_cast<int>(
            (static_cast<std::uint64_t>(rank) + (1ull << r)) %
            static_cast<std::uint64_t>(p));
        sim.after(params.overhead_us + params.msg_latency_us +
                      params.p2p_msg_extra_us,
                  [&, partner, r] {
          auto& pst = ranks[static_cast<std::size_t>(partner)];
          pst.received[static_cast<std::size_t>(r)] = true;
          if (pst.round == r && pst.sent_current) advance(partner);
        });
      }
      if (!st.received[static_cast<std::size_t>(r)]) return;
      ++st.round;
      st.sent_current = false;
    }
  };

  auto join_barrier = [&](int rank) {
    ranks[static_cast<std::size_t>(rank)].round = 0;
    advance(rank);
  };

  for (int rank = 0; rank < p; ++rank) {
    sim.at(0.0, [&, rank] {
      auto& st = ranks[static_cast<std::size_t>(rank)];
      if (params.k == 0) {
        join_barrier(rank);
        return;
      }
      for (int i = 0; i < params.k; ++i) {
        // Synchronous send: completes after the round trip (RTS + ack)
        // through the two-sided matching path.
        const double issue = (i + 1) * params.overhead_us;
        const double rtt =
            2 * (params.msg_latency_us + params.p2p_msg_extra_us);
        sim.after(issue + rtt, [&, rank] {
          auto& s = ranks[static_cast<std::size_t>(rank)];
          if (--s.acks_pending == 0) join_barrier(rank);
        });
      }
      (void)st;
    });
  }
  sim.run();
  double max_exit = 0;
  for (const auto& st : ranks) max_exit = std::max(max_exit, st.exit_time);
  return max_exit;
}

}  // namespace

DsdeSeries simulate_dsde(int p, const DsdeParams& params) {
  DsdeSeries out{};
  SyncParams sp;
  sp.per_msg_overhead_us = params.overhead_us;
  sp.msg_latency_us = params.msg_latency_us;
  sp.seed = params.seed;

  // foMPI RMA: fence, k remote accumulates (pipelined: k injection
  // overheads, one latency), fence.
  const double fence = simulate_dissemination_barrier(p, sp);
  out.fompi_rma_us =
      2 * fence + params.k * params.overhead_us + params.amo_latency_us;

  // The same protocol over Cray's MPI-2.2 one sided: per-op software cost
  // and a slower fence (perf::BaselineModel).
  const perf::BaselineModel bm;
  SyncParams sp22 = sp;
  sp22.msg_latency_us =
      sp.msg_latency_us * bm.mpi22_fence_per_log_us / 2.9;
  const double fence22 = simulate_dissemination_barrier(p, sp22);
  out.mpi22_rma_us = 2 * fence22 +
                     params.k * (params.overhead_us + bm.mpi22_extra_us) +
                     params.amo_latency_us;

  // NBX (LibNBC-style), event-driven.
  out.nbx_us = simulate_nbx(p, params);

  // Reduce_scatter protocol: counts via a vector reduce_scatter (the
  // vector is p entries long — linear work), then k direct messages.
  out.reduce_scatter_us = 20.0 + 0.1 * p +
                          params.k * (params.overhead_us +
                                      params.msg_latency_us);

  // Alltoall protocol: dense personalized exchange, pairwise algorithm —
  // p-1 rounds regardless of the sparse payload.
  out.alltoall_us =
      (p - 1) * (params.overhead_us + 0.2) + params.msg_latency_us;

  return out;
}

}  // namespace fompi::sim

#include "simtime/sim_overlap.hpp"

#include "rdma/network_model.hpp"

namespace fompi::sim {

namespace {

// The scheduler's share of the issue path: one fiber switch plus the
// completion-heap push/pop around each suspended op. Calibrated against
// bench_overlap's software-only (Injection::none) rows, which measure
// exactly this cost plus the NIC bookkeeping.
constexpr double kSoftwareNs = 60.0;

OverlapModel make(double latency_ns) {
  const rdma::NetworkModel net;
  OverlapModel m;
  m.overhead_ns = net.inter_overhead_ns;
  m.software_ns = kSoftwareNs;
  m.latency_ns = latency_ns;
  return m;
}

}  // namespace

OverlapModel overlap_model_put8() {
  return make(rdma::NetworkModel{}.put_latency_ns(8));
}

OverlapModel overlap_model_get8() {
  return make(rdma::NetworkModel{}.get_latency_ns(8));
}

OverlapModel overlap_model_amo8() {
  return make(rdma::NetworkModel{}.amo_latency_ns());
}

}  // namespace fompi::sim

// Closed-form latency models for the RMA-native collectives
// (src/fabric/collectives) at the paper's scales (up to 512k+ processes).
//
// The thread-rank runtime measures the real put/notify trees at up to a few
// dozen ranks; these forms extend the curves using the same Gemini per-op
// constants the runtime charges (network_model.hpp), so the claims they
// support are about round-count *shape* — O(log p) for the tree
// collectives, O(log nodes) for the hierarchical ones — not absolute
// numbers.
#pragma once

#include <cstddef>

namespace fompi::sim {

enum class CollOp {
  barrier,    ///< dissemination: ceil(log2 p) 8-byte notify rounds
  bcast,      ///< binomial tree (hierarchical when ranks_per_node > 1)
  allreduce,  ///< recursive doubling (hierarchical when ranks_per_node > 1)
  allgather,  ///< Bruck: log rounds, total bytes still (p-1) * nbytes
  alltoallv,  ///< persistent-plan run path: barrier + k sparse puts + AMOs
};

struct CollParams {
  /// One-way latency of a small (FMA-sized) inter-node put.
  double put_base_us = 1.0;
  /// Software/injection cost at the origin per issued op (matches the
  /// Gemini inter_overhead_ns the runtime charges).
  double overhead_us = 0.416;
  /// Inter-node serialization per payload byte.
  double put_byte_ns = 0.16;
  /// Inter-node AMO latency (the alltoallv arrival counter).
  double amo_us = 2.4;
  /// Intra-node copy/put costs (the hierarchy's gather/release tier and
  /// the flat fallback's modeled copy).
  double intra_base_us = 0.35;
  double intra_overhead_us = 0.08;
  double intra_byte_ns = 0.08;
  /// Ranks per node: 1 = flat trees over all p ranks; > 1 enables the
  /// two-tier hierarchy (intra-node gather, inter-node tree over p /
  /// ranks_per_node leaders).
  int ranks_per_node = 1;
  /// Nonzero destinations per rank in the (sparse) persistent alltoallv.
  int neighbors = 8;
  /// Per-destination payload (bcast/allreduce: full vector; allgather:
  /// contribution block; alltoallv: bytes per neighbor).
  std::size_t nbytes = 8;
};

/// Latency in microseconds of one collective over p processes. The
/// alltoallv form models the *persistent* run path (plan_alltoallv +
/// run_alltoallv): the dense O(p) count exchange is paid once at plan time
/// and amortized away, which is exactly what makes the steady-state cost
/// O(log p) + O(neighbors).
double simulate_coll_us(CollOp op, int p, const CollParams& params = {});

}  // namespace fompi::sim

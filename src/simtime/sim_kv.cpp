#include "simtime/sim_kv.hpp"

#include <algorithm>
#include <cmath>

namespace fompi::sim {

double kv_read_us(const KvParams& p, bool degraded) {
  const double cached = p.cached_amos * p.amo_us;
  const double uncached = p.uncached_amos * p.amo_us;
  const double h = degraded ? 0.0 : p.hit_rate;  // degraded bypasses cache
  return h * cached + (1.0 - h) * uncached;
}

double kv_read_p99_us(const KvParams& p, bool degraded) {
  const double miss_mass = degraded ? 1.0 : 1.0 - p.hit_rate;
  if (miss_mass >= 0.01) return p.uncached_amos * p.amo_us;
  return p.cached_amos * p.amo_us;
}

double kv_put_us(const KvParams& p, bool degraded) {
  const int regions = (p.replicate && !degraded) ? 2 : 1;
  return regions * p.put_amos * p.amo_us;
}

double kv_hot_shard_mass(const KvParams& p) {
  // Rank-1 mass of a Zipf(s) over the shards: 1 / H(shards, s). s = 0
  // degenerates to the uniform 1/shards.
  double h = 0.0;
  for (int r = 1; r <= p.shards; ++r) {
    h += 1.0 / std::pow(static_cast<double>(r), p.zipf_s);
  }
  return 1.0 / h;
}

double simulate_kv_throughput_mops(int clients, const KvParams& p) {
  const double mean_op_us = p.read_ratio * kv_read_us(p) +
                            (1.0 - p.read_ratio) * kv_put_us(p);
  const double offered = clients * p.fibers / mean_op_us;  // Mops/s

  // The hottest shard's NIC serves its share of every op's AMOs; hot-key
  // replica reads split the read load across two regions.
  double phi = kv_hot_shard_mass(p);
  if (p.replicate) phi *= 1.0 - p.read_ratio / 2.0;
  const double amos_per_op =
      p.read_ratio * ((1.0 - p.hit_rate) * p.uncached_amos +
                      p.hit_rate * p.cached_amos) +
      (1.0 - p.read_ratio) * p.put_amos;
  const double serve_mops = 1.0 / (p.amo_service_us * amos_per_op);
  const double hot_cap = serve_mops / phi;

  return std::min(offered, hot_cap);
}

double kv_recovery_us(const KvParams& p, std::uint64_t shard_bytes,
                      std::uint64_t cells, std::uint64_t chunk) {
  if (chunk == 0) chunk = 1;
  const double chunks =
      static_cast<double>((shard_bytes + chunk - 1) / chunk);
  const double drain_us = chunks * p.bte_setup_us +
                          static_cast<double>(shard_bytes) * p.bte_byte_ns /
                              1e3;
  const double scrub_us =
      static_cast<double>(cells) * p.scrub_amos * p.amo_us;
  const double gen_us = 2.0 * p.amo_us;  // claim CAS + release write
  return drain_us + scrub_us + gen_us;
}

double kv_post_recovery_p99_us(const KvParams& p) {
  // The generation check rides the epoch check (overlapped AMOs), so the
  // healed read path's tail equals the healthy tail.
  return kv_read_p99_us(p, /*degraded=*/false);
}

}  // namespace fompi::sim

// Discrete-event simulation engine.
//
// The thread-per-rank runtime validates the protocols at up to dozens of
// ranks; the scaling figures of the paper (fence to 8k processes, PSCW to
// 128k, MILC to 512k) need orders of magnitude more. This engine runs the
// same protocols as event-driven state machines in virtual time, using the
// paper's measured cost functions — exactly the methodology of simulator-
// backed systems papers: the protocol structure is real, the per-message
// costs are the calibrated model.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fompi::sim {

class Sim {
 public:
  using Handler = std::function<void()>;

  double now() const noexcept { return now_us_; }

  /// Schedules `h` at absolute virtual time `t_us` (>= now).
  void at(double t_us, Handler h) {
    FOMPI_REQUIRE(t_us >= now_us_, ErrClass::arg,
                  "cannot schedule into the past");
    queue_.push(Event{t_us, seq_++, std::move(h)});
  }
  /// Schedules `h` `delay_us` after the current time.
  void after(double delay_us, Handler h) {
    at(now_us_ + delay_us, std::move(h));
  }

  /// Runs to quiescence; returns the time of the last event.
  double run() {
    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      now_us_ = e.time_us;
      ++processed_;
      e.fn();
    }
    return now_us_;
  }

  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double time_us;
    std::uint64_t seq;  // FIFO tie-break for determinism
    Handler fn;
    bool operator>(const Event& o) const noexcept {
      return time_us != o.time_us ? time_us > o.time_us : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_us_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

/// OS/system noise injection (the paper observes noise on PSCW runs with
/// more than 1000 processes; refs [14,30]). Each sampled delay adds an
/// exponentially distributed detour with probability `rate`.
struct Noise {
  double rate = 0.0;      ///< probability a message hits a detour
  double mean_us = 0.0;   ///< mean detour length
  double sample(Rng& rng) const {
    if (rate <= 0 || mean_us <= 0) return 0.0;
    if (rng.uniform() >= rate) return 0.0;
    return -mean_us * std::log(1.0 - rng.uniform());
  }
};

}  // namespace fompi::sim

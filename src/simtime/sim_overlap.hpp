// Closed-form model for suspend-on-wait overlap (the fiber progress
// engine, src/fabric/progress).
//
// One fiber issuing blocking ops pays overhead + software + latency per
// op. F fibers pipelining the same op keep F requests in flight: the
// origin still serializes the issue path (overhead + software per op),
// but the network latency of up to F ops overlaps. Steady-state cost per
// op is therefore
//
//   ns_per_op(F) = max(o + s, (o + s + L) / F)
//
// — latency-bound below the saturation point F* = (o+s+L)/(o+s),
// issue-bound above it. bench_overlap measures the real scheduler against
// this form; tests/test_simtime.cpp asserts its shape (monotone rate,
// saturation, and the amo >= 4x headline the bench gates on).
#pragma once

namespace fompi::sim {

struct OverlapModel {
  /// Origin injection overhead per op (Gemini inter_overhead_ns).
  double overhead_ns = 416.0;
  /// Issue-path software cost per op (scheduler switch + bookkeeping).
  double software_ns = 60.0;
  /// Network completion latency of the pipelined op.
  double latency_ns = 2400.0;

  /// Steady-state cost per op with `fibers` suspend-on-wait pipelines.
  double ns_per_op(int fibers) const noexcept {
    const double issue = overhead_ns + software_ns;
    const double f = fibers < 1 ? 1.0 : static_cast<double>(fibers);
    const double pipelined = (issue + latency_ns) / f;
    return issue > pipelined ? issue : pipelined;
  }

  /// Modeled message rate in Mops/s at `fibers` pipelines.
  double rate_mops(int fibers) const noexcept {
    return 1e3 / ns_per_op(fibers);
  }

  /// Speedup of `fibers` pipelines over one blocking fiber.
  double speedup(int fibers) const noexcept {
    return ns_per_op(1) / ns_per_op(fibers);
  }

  /// Fiber count beyond which the issue path, not latency, is the
  /// bottleneck (fractional; ceil for the first saturated integer count).
  double saturation_fibers() const noexcept {
    const double issue = overhead_ns + software_ns;
    return (issue + latency_ns) / issue;
  }
};

/// Factories charged with the Gemini model constants the runtime injects
/// (rdma::NetworkModel defaults) for the three ops bench_overlap pipelines.
OverlapModel overlap_model_put8();
OverlapModel overlap_model_get8();
OverlapModel overlap_model_amo8();

}  // namespace fompi::sim

#include "simtime/sim_sync.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

namespace fompi::sim {

double simulate_dissemination_barrier(int p, const SyncParams& params) {
  if (p <= 1) return 0.0;
  const int rounds = std::bit_width(static_cast<unsigned>(p - 1));
  Sim sim;
  Rng rng(params.seed);

  struct RankState {
    int round = 0;                 // next round to complete
    std::vector<bool> received;    // flag per round
    bool sent_current = false;
    double exit_time = -1;
  };
  std::vector<RankState> ranks(static_cast<std::size_t>(p));
  for (auto& r : ranks) r.received.assign(static_cast<std::size_t>(rounds), false);

  // advance(r): while the current round's flag has arrived, move on.
  // Sending happens when a rank *enters* a round.
  std::function<void(int)> enter_round = [&](int rank) {
    auto& st = ranks[static_cast<std::size_t>(rank)];
    while (true) {
      if (st.round == rounds) {
        st.exit_time = sim.now();
        return;
      }
      const int r = st.round;
      if (!st.sent_current) {
        st.sent_current = true;
        const int partner = static_cast<int>(
            (static_cast<std::uint64_t>(rank) + (1ull << r)) %
            static_cast<std::uint64_t>(p));
        const double delay = params.per_msg_overhead_us +
                             params.msg_latency_us + params.noise.sample(rng);
        sim.after(delay, [&, partner, r] {
          auto& pst = ranks[static_cast<std::size_t>(partner)];
          pst.received[static_cast<std::size_t>(r)] = true;
          // Wake the partner if it is blocked in this round.
          if (pst.round == r && pst.sent_current) enter_round(partner);
        });
      }
      if (!st.received[static_cast<std::size_t>(r)]) return;  // block
      ++st.round;
      st.sent_current = false;
    }
  };

  for (int rank = 0; rank < p; ++rank) {
    sim.at(0.0, [&, rank] { enter_round(rank); });
  }
  sim.run();
  double max_exit = 0;
  for (const auto& st : ranks) max_exit = std::max(max_exit, st.exit_time);
  return max_exit;
}

double simulate_pscw_ring(int p, const SyncParams& params,
                          const PscwCosts& costs) {
  if (p <= 1) return 0.0;
  Sim sim;
  Rng rng(params.seed ^ 0xabcd);

  struct RankState {
    int posts_received = 0;      // matching-list announcements
    int completions = 0;         // completion-counter increments
    bool started = false;
    double exit_time = -1;
  };
  std::vector<RankState> ranks(static_cast<std::size_t>(p));

  // Phase handlers. Every rank: post -> start(blocks) -> complete -> wait.
  std::function<void(int)> try_wait = [&](int rank) {
    auto& st = ranks[static_cast<std::size_t>(rank)];
    if (st.started && st.completions >= 2 && st.exit_time < 0) {
      st.exit_time = sim.now() + costs.wait_us;
    }
  };
  std::function<void(int)> try_start = [&](int rank) {
    auto& st = ranks[static_cast<std::size_t>(rank)];
    if (st.started || st.posts_received < 2) return;
    st.started = true;
    // start() returns; complete() commits and notifies both neighbors.
    sim.after(costs.start_us + 2 * costs.complete_per_neighbor_us, [&, rank] {
      for (int d : {-1, +1}) {
        const int nb = (rank + d + p) % p;
        const double delay =
            params.msg_latency_us + params.noise.sample(rng);
        sim.after(delay, [&, nb] {
          ++ranks[static_cast<std::size_t>(nb)].completions;
          try_wait(nb);
        });
      }
      try_wait(rank);
    });
  };

  for (int rank = 0; rank < p; ++rank) {
    sim.at(0.0, [&, rank, p] {
      // post: one matching-list insertion per neighbor.
      for (int d : {-1, +1}) {
        const int nb = (rank + d + p) % p;
        const double delay = costs.post_per_neighbor_us +
                             params.msg_latency_us + params.noise.sample(rng);
        sim.after(delay, [&, nb] {
          ++ranks[static_cast<std::size_t>(nb)].posts_received;
          try_start(nb);
        });
      }
    });
  }
  sim.run();
  double max_exit = 0;
  for (const auto& st : ranks) max_exit = std::max(max_exit, st.exit_time);
  return max_exit;
}

FenceSeries simulate_fence_all(int p, std::uint64_t seed) {
  const perf::PaperModel pm;
  const perf::BaselineModel bm;
  // Per-round message latencies calibrated so that the analytic per-log2(p)
  // constants of Sec 3.2 are met (round cost = overhead + latency).
  auto run = [&](double round_us, Noise noise) {
    SyncParams sp;
    sp.per_msg_overhead_us = pm.inject_inter_us;
    sp.msg_latency_us = std::max(0.1, round_us - sp.per_msg_overhead_us);
    sp.noise = noise;
    sp.seed = seed;
    return simulate_dissemination_barrier(p, sp);
  };
  // Noise calibrated to the paper's observation: visible jitter beyond
  // ~1k processes without changing the O(log p) shape (refs [14,30]).
  const Noise noise{p > 1024 ? 0.002 : 0.0, 5.0};
  FenceSeries out;
  out.fompi_us = run(pm.fence_per_log_us, noise);
  out.upc_us = run(bm.upc_barrier_per_log_us, noise);
  out.caf_us = run(bm.caf_sync_all_per_log_us, noise);
  out.craympi_us = run(bm.mpi22_fence_per_log_us, noise);
  return out;
}

PscwSeries simulate_pscw_all(int p, std::uint64_t seed) {
  const perf::PaperModel pm;
  const perf::BaselineModel bm;
  SyncParams sp;
  sp.per_msg_overhead_us = pm.inject_inter_us;
  sp.msg_latency_us = 1.0;
  sp.noise = Noise{p > 1024 ? 0.002 : 0.0, 5.0};
  sp.seed = seed;
  PscwCosts costs;
  costs.post_per_neighbor_us = pm.post_per_neighbor_us;
  costs.complete_per_neighbor_us = pm.complete_per_neighbor_us;
  costs.start_us = pm.start_us;
  costs.wait_us = pm.wait_us;
  PscwSeries out;
  out.fompi_us = simulate_pscw_ring(p, sp, costs);
  // Cray MPI's PSCW carries a per-process software cost (Fig 6c: the
  // latency grows systematically with p).
  out.craympi_us = simulate_pscw_ring(p, sp, costs) + bm.mpi22_pscw_base_us +
                   bm.mpi22_pscw_per_proc_ns * 1e-3 * p;
  return out;
}

}  // namespace fompi::sim

// Event-driven simulations of the synchronization protocols at scale:
// the dissemination barrier / fence (Fig 6b) and the PSCW ring (Fig 6c).
#pragma once

#include "perfmodel/cost_functions.hpp"
#include "simtime/des.hpp"

namespace fompi::sim {

struct SyncParams {
  /// One-way latency of an 8-byte notification message.
  double msg_latency_us = 1.0;
  /// Software cost at the origin per issued notification.
  double per_msg_overhead_us = 0.416;
  Noise noise{};
  std::uint64_t seed = 42;
};

/// Runs a dissemination barrier over p simulated processes; returns the
/// time until the last process exits. This is the foMPI fence body
/// (gsync is free with no outstanding operations).
double simulate_dissemination_barrier(int p, const SyncParams& params);

/// Runs one PSCW epoch on a ring (k = 2 neighbors, the Fig 6c benchmark):
/// every process posts to its neighbors, starts, completes, waits. Returns
/// the time until the last process finished wait().
struct PscwCosts {
  double post_per_neighbor_us = 0.35;
  double complete_per_neighbor_us = 0.35;
  double start_us = 0.7;
  double wait_us = 1.8;
};
double simulate_pscw_ring(int p, const SyncParams& params,
                          const PscwCosts& costs = {});

/// Fence latency series for all transports of Fig 6b at one process count,
/// using the calibrated per-round costs (foMPI 2.9us, UPC 2.0us, CAF 8us,
/// Cray MPI 6us per log2 p round).
struct FenceSeries {
  double fompi_us;
  double upc_us;
  double caf_us;
  double craympi_us;
};
FenceSeries simulate_fence_all(int p, std::uint64_t seed);

/// PSCW latency for foMPI and the Cray MPI comparator (Fig 6c).
struct PscwSeries {
  double fompi_us;
  double craympi_us;
};
PscwSeries simulate_pscw_all(int p, std::uint64_t seed);

}  // namespace fompi::sim

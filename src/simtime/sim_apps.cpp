#include "simtime/sim_apps.hpp"

#include <algorithm>
#include <cmath>

namespace fompi::sim {

namespace {
double log2d(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

HashtableSeries simulate_hashtable(int p, const HashtableParams& prm) {
  HashtableSeries out{};
  // Fraction of inserts that stay on-node under uniform random keys.
  const double intra_frac =
      p <= prm.ranks_per_node
          ? 1.0
          : static_cast<double>(prm.ranks_per_node) / static_cast<double>(p);
  const double ops_per_insert = 1.0 + 2.0 * prm.collision_rate;

  // RMA transports: pipelined AMOs, injection limited.
  auto rma_rate = [&](double extra_us) {
    const double op_us =
        (intra_frac * prm.intra_op_us + (1 - intra_frac) * prm.inter_op_us +
         extra_us) *
        ops_per_insert;
    return static_cast<double>(p) / op_us * 1e6 / 1e9;  // G inserts/s
  };
  out.fompi_ginserts = rma_rate(0.0);
  out.upc_ginserts = rma_rate(prm.upc_extra_us);

  // MPI-1 active messages: every insert consumes handler service time at
  // the owner (the owner core alternates inserting and serving), degraded
  // by matching-queue congestion as the sender count grows, and every
  // batch ends with an O(p) termination-detection notification per rank.
  const double congestion =
      1.0 + prm.mpi1_congestion_c * log2d(p) * log2d(p);
  const double insert_cost_us =
      intra_frac * (prm.intra_op_us + prm.mpi1_service_us * 0.4) +
      (1 - intra_frac) *
          (prm.inter_op_us + prm.mpi1_service_us * congestion);
  const double batch_us = prm.inserts_per_rank * insert_cost_us +
                          static_cast<double>(p) * prm.mpi1_notify_us;
  out.mpi1_ginserts = static_cast<double>(p) * prm.inserts_per_rank /
                      batch_us * 1e6 / 1e9;
  return out;
}

FftSeries simulate_fft(int p, const FftParams& prm) {
  const double n3 = prm.nx * prm.ny * prm.nz;
  const double flops = 5.0 * n3 * std::log2(n3);
  const double comp_s = flops / (static_cast<double>(p) *
                                 prm.flops_per_core_gfs * 1e9);
  // Two transposes; every process exchanges its full slab. The effective
  // bandwidth degrades with the process count (torus bisection).
  const double bytes_per_rank = 2.0 * n3 * 16.0 / static_cast<double>(p);
  const double comm_s = bytes_per_rank / (prm.bw_per_rank_gbs * 1e9) *
                        std::pow(static_cast<double>(p) / 1024.0,
                                 prm.congestion_exp);

  auto gflops = [&](double overlap) {
    const double t =
        std::max(comp_s, comm_s) + (1.0 - overlap) * std::min(comp_s, comm_s);
    return flops / t / 1e9;
  };
  FftSeries out{};
  out.mpi1_gflops = gflops(prm.mpi1_overlap);
  out.upc_gflops = gflops(prm.upc_overlap);
  out.fompi_gflops = gflops(prm.fompi_overlap);
  return out;
}

double simulate_msgrate_mops(const MsgRateParams& prm) {
  const double b = std::max(1, prm.batch);
  const double ch = std::max(1, prm.channels);
  const double chains = std::ceil((b - 1.0) / ch);
  const double batch_ns =
      prm.doorbell_overhead_ns + prm.sw_issue_ns * b + prm.chain_ns * chains;
  return b / batch_ns * 1e3;  // ns per batch -> Mops/s
}

MilcSeries simulate_milc(int p, const MilcParams& prm) {
  const double comp_us = prm.local_sites * prm.flops_per_site /
                         (prm.flops_per_core_gfs * 1e9) * 1e6;
  // Halo exchange: 8 directions, message size fixed under weak scaling.
  const double halo_bw_us = prm.halo_bytes * 0.16e-3;  // 0.16 ns/B
  const double rma_halo_us =
      8.0 * (prm.overhead_us + halo_bw_us) + prm.msg_latency_us +
      2.4;  // flag AMO + flush
  const double mpi1_halo_us =
      8.0 * (prm.overhead_us + halo_bw_us + prm.mpi1_halo_extra_us) +
      2.0 * prm.msg_latency_us;
  const double allreduce_us = prm.allreduce_per_log_us * log2d(p);
  const double noise = 1.0 + prm.noise_factor_per_log * log2d(p) * log2d(p);

  auto total_s = [&](double halo_us) {
    return prm.iterations * (comp_us + halo_us + allreduce_us) * noise / 1e6;
  };
  MilcSeries out{};
  out.mpi1_s = total_s(mpi1_halo_us);
  out.fompi_s = total_s(rma_halo_us);
  out.upc_s = total_s(rma_halo_us * 1.02);  // UPC ~ foMPI (Fig 8)
  return out;
}

}  // namespace fompi::sim

// Dynamic sparse data exchange at scale (Fig 7b): the four protocols of
// Hoefler et al. [15] — personalized alltoall, reduce_scatter, NBX
// (nonblocking barrier + synchronous sends), and RMA accumulates in active
// target mode — with k random neighbors per process.
#pragma once

#include <cstdint>

namespace fompi::sim {

struct DsdeParams {
  int k = 6;                    ///< random neighbors per process
  std::uint64_t seed = 42;
  double msg_latency_us = 1.0;  ///< small-message one-way latency
  double overhead_us = 0.416;   ///< injection overhead
  double amo_latency_us = 2.4;  ///< remote accumulate latency
  /// Extra per-message software cost of the two-sided path (matching +
  /// synchronous-send handshake bookkeeping); the NBX rounds run over MPI
  /// point-to-point, not raw RDMA, which is why measured LibNBC sits above
  /// the foMPI RMA curve in Fig 7b.
  double p2p_msg_extra_us = 1.5;
};

struct DsdeSeries {
  double fompi_rma_us;      ///< accumulate + PSCW/fence (foMPI)
  double mpi22_rma_us;      ///< same protocol over Cray MPI-2.2 one sided
  double nbx_us;            ///< LibNBC-style nonblocking barrier protocol
  double reduce_scatter_us; ///< counts via reduce_scatter, then sends
  double alltoall_us;       ///< counts via alltoall, then sends
};

/// Simulates one complete exchange at `p` processes. NBX and the RMA
/// fences run event-driven; the dense collectives use the standard
/// algorithm cost models (pairwise exchange / recursive halving).
DsdeSeries simulate_dsde(int p, const DsdeParams& params = {});

}  // namespace fompi::sim

#include "simtime/sim_coll.hpp"

#include <algorithm>
#include <cmath>

namespace fompi::sim {

namespace {

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

/// One tree round on the critical path: issue the data put, issue the
/// notify flag (second doorbell group), wire latency for both.
double inter_round_us(std::size_t nbytes, const CollParams& c) {
  return 2.0 * c.overhead_us + c.put_base_us +
         static_cast<double>(nbytes) * c.put_byte_ns * 1e-3;
}

double intra_round_us(std::size_t nbytes, const CollParams& c) {
  return c.intra_overhead_us + c.intra_base_us +
         static_cast<double>(nbytes) * c.intra_byte_ns * 1e-3;
}

double barrier_us(int p, const CollParams& c) {
  return ceil_log2(p) * (c.overhead_us + c.put_base_us);
}

}  // namespace

double simulate_coll_us(CollOp op, int p, const CollParams& c) {
  if (p <= 1) return 0.0;
  const int rpn = std::max(1, c.ranks_per_node);
  const bool hier = rpn > 1 && p > rpn;
  const int nnodes = hier ? (p + rpn - 1) / rpn : p;
  // Every data collective opens with the leading barrier (landing reuse
  // protocol); the hierarchy adds one intra gather and one intra release
  // on the critical path.
  const double lead = barrier_us(p, c);
  const double intra =
      hier ? intra_round_us(c.nbytes, c) + (rpn - 1) * c.intra_overhead_us
           : 0.0;

  switch (op) {
    case CollOp::barrier:
      return barrier_us(p, c);
    case CollOp::bcast:
      // Binomial depth over nodes; members get the release as one more
      // intra hop.
      return lead + ceil_log2(nnodes) * inter_round_us(c.nbytes, c) +
             (hier ? 2.0 * intra : 0.0);
    case CollOp::allreduce:
      // Recursive doubling: every round exchanges the full vector; the
      // non-power-of-two fold adds at most two extra rounds (bounded,
      // ignored here — shape, not absolutes).
      return lead + ceil_log2(nnodes) * inter_round_us(c.nbytes, c) +
             (hier ? 2.0 * intra : 0.0);
    case CollOp::allgather: {
      // Bruck: log rounds of doorbells, but the wire still carries
      // (p - 1) * nbytes in total — rounds dominate for small blocks,
      // bytes for large ones.
      const double rounds = ceil_log2(nnodes) * inter_round_us(0, c);
      const double bytes = static_cast<double>(nnodes - 1) *
                           static_cast<double>(c.nbytes) * rpn *
                           c.put_byte_ns * 1e-3;
      return lead + rounds + bytes + (hier ? 2.0 * intra : 0.0);
    }
    case CollOp::alltoallv: {
      // Persistent run path: leading barrier, then one doorbell-batched
      // group of k sparse payload puts (overhead once, chained
      // descriptors), one batched group of k counter AMOs, and the
      // arrival wait. The dense count exchange happened at plan time.
      const int k = std::min(c.neighbors, p - 1);
      const double chain_us = 0.045;  // batch_chain_ns under the model
      const double puts = c.overhead_us + k * chain_us + c.put_base_us +
                          static_cast<double>(k) *
                              static_cast<double>(c.nbytes) * c.put_byte_ns *
                              1e-3;
      const double amos = c.overhead_us + k * chain_us + c.amo_us;
      return lead + puts + amos;
    }
  }
  return 0.0;
}

}  // namespace fompi::sim

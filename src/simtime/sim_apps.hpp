// Application-scale models (Figs 7a, 7c, 8).
//
// The thread-rank runtime runs the real applications at up to dozens of
// ranks (src/apps); these models extend the curves to the paper's scales
// (32k / 64k / 512k processes) using calibrated per-operation costs and
// flow arguments. Calibration constants are documented inline; the claims
// these models support are about curve *shape* (who wins, where the
// crossovers are), not absolute numbers.
#pragma once

#include <cstdint>

namespace fompi::sim {

// --- Fig 7a: distributed hashtable ------------------------------------------------

struct HashtableParams {
  int inserts_per_rank = 16384;
  int ranks_per_node = 32;       ///< Blue Waters XE6: 32 cores/node
  double intra_op_us = 0.080;    ///< pipelined intra-node AMO issue
  double inter_op_us = 0.416;    ///< pipelined inter-node AMO issue
  double upc_extra_us = 0.020;   ///< UPC runtime per-op cost on top
  double mpi1_service_us = 2.5;  ///< active-message handler + matching
  double mpi1_notify_us = 8.0;   ///< one termination-detection message
                                 ///< (matched against a flooded queue)
  /// Matching/flow-control degradation of the active-message path: the
  /// receiver scans ever-longer queues as the number of concurrent senders
  /// grows, and bounded unexpected-queue flow control stalls the senders.
  /// Effective service time multiplies by (1 + c * log2(p)^2); calibrated
  /// so that MPI-1 at 32k cores stays below the single-node RMA insert
  /// rate, the paper's headline observation for Fig 7a.
  double mpi1_congestion_c = 0.08;
  double collision_rate = 0.15;  ///< fraction of inserts taking the
                                 ///< overflow path (2 extra AMOs)
};

struct HashtableSeries {
  double fompi_ginserts;  ///< billion inserts per second
  double upc_ginserts;
  double mpi1_ginserts;
};

/// Throughput model: RMA inserts are pipelined and injection-limited; the
/// MPI-1 active-message scheme pays the handler service time plus an O(p)
/// termination-detection phase per batch (each process notifies all
/// others), which caps its scaling exactly as the paper describes.
HashtableSeries simulate_hashtable(int p, const HashtableParams& params = {});

// --- Fig 7c: 3D FFT ------------------------------------------------------------------

struct FftParams {
  // NAS class D: 2048 x 1024 x 1024 complex points.
  double nx = 2048, ny = 1024, nz = 1024;
  double flops_per_core_gfs = 1.1;  ///< sustained per-core FFT rate
  /// Effective per-rank transpose bandwidth at the 1024-process baseline.
  double bw_per_rank_gbs = 1.08;
  /// Alltoall congestion: the 3D-torus bisection grows only as p^(2/3),
  /// so the per-rank transpose time shrinks slower than 1/p; the exponent
  /// is calibrated against the Fig 7c gains (comm/comp crossover between
  /// 1k and 64k processes).
  double congestion_exp = 0.375;
  double mpi1_overlap = 0.10;   ///< overlap efficiency, nonblocking MPI
  double upc_overlap = 0.90;    ///< UPC slab pipeline
  double fompi_overlap = 0.95;  ///< foMPI slab (lower static overhead,
                                ///< cf. Fig 5a)
};

struct FftSeries {
  double mpi1_gflops;
  double upc_gflops;
  double fompi_gflops;
};

/// Strong-scaling model: per-process compute F/p plus two transposes of
/// N^3*16/p bytes, with transport-specific comm/comp overlap.
FftSeries simulate_fft(int p, const FftParams& params = {});

// --- Fig 5b companion: small-op message rate under throughput mode ----------------

struct MsgRateParams {
  /// Software issue cost per descriptor (fast-path instruction veneer).
  double sw_issue_ns = 20.0;
  /// Per-doorbell processor->NIC handoff (the Gemini inter_overhead_ns).
  double doorbell_overhead_ns = 416.0;
  /// Incremental NIC cost of walking one extra chained descriptor; matches
  /// NetworkModel::batch_chain_ns.
  double chain_ns = 45.0;
  int batch = 64;     ///< descriptors coalesced behind one doorbell
  int channels = 1;   ///< NIC channels walking the chain in parallel
};

/// Closed-form small-op injection rate in Mops/s:
///
///   rate = batch / (overhead + sw*batch + chain * ceil((batch-1)/channels))
///
/// batch=1 reduces to the classic per-op rate 1/(overhead + sw) ~ 2.3 Mops/s,
/// matching the Fig 5b put message-rate plateau (~2.4 Mmsgs/s for 8-byte
/// puts); doorbell coalescing amortizes the overhead across the batch and
/// extra channels hide the chain-walk, the throughput-mode claim the DES
/// benches exercise operationally.
double simulate_msgrate_mops(const MsgRateParams& params = {});

// --- Fig 8: MILC weak scaling ------------------------------------------------------

struct MilcParams {
  // Local lattice 4^3 x 8 per process (the Blue Waters benchmark).
  int local_sites = 4 * 4 * 4 * 8;
  double flops_per_site = 1500.0;   ///< su3 CG arithmetic per site per iter
  double flops_per_core_gfs = 1.0;
  int iterations = 4000;
  double halo_bytes = 4.0 * 4 * 8 * 2 * 72;  ///< 8-dir surface payload
  double msg_latency_us = 1.0;
  double overhead_us = 0.416;
  /// Extra per-direction cost of the MPI-1 halo exchange: matching, the
  /// rendezvous handshake of medium messages, and the serialization of
  /// eight sendrecv pairs — the overhead the UPC/foMPI scheme removes
  /// (the paper reports CG phases up to 45% faster).
  double mpi1_halo_extra_us = 12.0;
  double allreduce_per_log_us = 3.0;
  double noise_factor_per_log = 0.004;  ///< large-scale noise dilation
};

struct MilcSeries {
  double mpi1_s;
  double upc_s;
  double fompi_s;
};

/// Weak-scaling completion-time model: per-iteration compute + 8-direction
/// halo exchange (transport-dependent) + convergence allreduce (log p).
MilcSeries simulate_milc(int p, const MilcParams& params = {});

}  // namespace fompi::sim

// KV-service SLO models (DESIGN.md §12).
//
// The thread-rank runtime drives the real KV store (src/kv) at up to a
// few dozen client ranks; these closed forms extend the serving-workload
// curves to cluster scale. As with the figure models, the supported claims
// are about curve *shape* — cache leverage, tail behavior under failover,
// where a skewed workload saturates on the hottest shard — not absolute
// numbers. Calibration constants are documented inline.
#pragma once

#include <cstdint>

namespace fompi::sim {

struct KvParams {
  /// One inter-node AMO round trip (Gemini FADD/CSWAP latency; matches the
  /// inter_op latency the figure benches charge).
  double amo_us = 2.4;
  /// Remote words touched by a cache-validated hit: the shard epoch check.
  int cached_amos = 1;
  /// Remote words of the full versioned read: epoch + top key + seqlock
  /// {v1, key, value, v2} snapshot.
  int uncached_amos = 6;
  /// Remote ops of a put against one region: top CAS + lock CAS + value
  /// write + release + epoch bump (+ the located read).
  int put_amos = 6;
  bool replicate = true;     ///< puts fan out to the replica region (x2)
  double hit_rate = 0.80;    ///< healthy-mode cache hit fraction
  double read_ratio = 0.95;  ///< fraction of client ops that are gets
  int fibers = 8;            ///< in-flight ops per closed-loop client rank
  int shards = 8;
  double zipf_s = 0.9;       ///< key->shard popularity skew
  /// NIC-side occupancy per served AMO (the Gemini per-op overhead): one
  /// shard owner sustains 1/0.416 ~ 2.4 M served AMOs/s.
  double amo_service_us = 0.416;

  // --- recovery constants (DESIGN.md §13) -----------------------------------
  /// BTE bulk-channel setup per drain chunk and per-byte streaming cost
  /// (the src/simtime Gemini model's bte_setup_ns = 1100, bte_byte_ns =
  /// 0.145 expressed in the units used here).
  double bte_setup_us = 1.1;
  double bte_byte_ns = 0.145;
  /// Remote words per scrubbed cell pair: {v1, key, value, v2} seqlock
  /// snapshots of BOTH copies (repairs are rare enough not to move the
  /// mean).
  int scrub_amos = 8;
};

/// Mean modeled get latency (us). Degraded mode (owner dead, replica
/// serving) bypasses the client cache, so every read pays the full
/// versioned-read cost — the SLO degradation bench_kv measures.
double kv_read_us(const KvParams& p, bool degraded = false);

/// Modeled p99 get latency (us): the uncached versioned read whenever the
/// miss mass reaches the tail (1 - hit_rate >= 1%), i.e. always, except
/// for a pathologically perfect cache; degraded mode pins the whole
/// distribution at the uncached cost.
double kv_read_p99_us(const KvParams& p, bool degraded = false);

/// Mean modeled put latency (us): per-region CAS-chain cost, doubled by
/// write-through replication while the shard is healthy (degraded mode
/// writes the surviving replica only).
double kv_put_us(const KvParams& p, bool degraded = false);

/// Probability mass of the hottest shard under the Zipf(s) key popularity
/// folded onto `shards` (rank-1 mass of a Zipf over the shards).
double kv_hot_shard_mass(const KvParams& p);

/// Closed-loop fleet throughput (M ops/s) at `clients` ranks:
///
///   offered = clients * fibers / mean_op_us        (pipelined clients)
///   hot cap = serve_rate / phi                      (hottest shard NIC)
///   T(p)    = min(offered, hot cap)
///
/// with phi the hottest shard's mass — halved for reads when replication
/// is on (hot-key replica reads split the load). Monotone nondecreasing
/// and saturating in `clients`; replication raises the plateau.
double simulate_kv_throughput_mops(int clients, const KvParams& p = {});

/// Modeled time (us) to heal ONE shard whose owner died: drain the frozen
/// image (ceil(bytes/chunk) BTE channel setups + the byte stream), scrub
/// every cell pair (scrub_amos remote words each), plus the generation
/// claim + release CAS pair. Linear in bytes at fixed chunking, linear in
/// cells — and drain-dominated for realistic shard sizes, which is the
/// shape test_simtime pins.
double kv_recovery_us(const KvParams& p, std::uint64_t shard_bytes,
                      std::uint64_t cells, std::uint64_t chunk = 2048);

/// Modeled post-recovery p99 get latency (us): recovery restores the
/// healthy read path exactly (the generation check OVERLAPS the epoch
/// check — two AMOs in flight together — so it adds no serialized round
/// trip and the healthy cached/uncached AMO budgets are unchanged).
double kv_post_recovery_p99_us(const KvParams& p);

}  // namespace fompi::sim

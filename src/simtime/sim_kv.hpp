// KV-service SLO models (DESIGN.md §12).
//
// The thread-rank runtime drives the real KV store (src/kv) at up to a
// few dozen client ranks; these closed forms extend the serving-workload
// curves to cluster scale. As with the figure models, the supported claims
// are about curve *shape* — cache leverage, tail behavior under failover,
// where a skewed workload saturates on the hottest shard — not absolute
// numbers. Calibration constants are documented inline.
#pragma once

#include <cstdint>

namespace fompi::sim {

struct KvParams {
  /// One inter-node AMO round trip (Gemini FADD/CSWAP latency; matches the
  /// inter_op latency the figure benches charge).
  double amo_us = 2.4;
  /// Remote words touched by a cache-validated hit: the shard epoch check.
  int cached_amos = 1;
  /// Remote words of the full versioned read: epoch + top key + seqlock
  /// {v1, key, value, v2} snapshot.
  int uncached_amos = 6;
  /// Remote ops of a put against one region: top CAS + lock CAS + value
  /// write + release + epoch bump (+ the located read).
  int put_amos = 6;
  bool replicate = true;     ///< puts fan out to the replica region (x2)
  double hit_rate = 0.80;    ///< healthy-mode cache hit fraction
  double read_ratio = 0.95;  ///< fraction of client ops that are gets
  int fibers = 8;            ///< in-flight ops per closed-loop client rank
  int shards = 8;
  double zipf_s = 0.9;       ///< key->shard popularity skew
  /// NIC-side occupancy per served AMO (the Gemini per-op overhead): one
  /// shard owner sustains 1/0.416 ~ 2.4 M served AMOs/s.
  double amo_service_us = 0.416;
};

/// Mean modeled get latency (us). Degraded mode (owner dead, replica
/// serving) bypasses the client cache, so every read pays the full
/// versioned-read cost — the SLO degradation bench_kv measures.
double kv_read_us(const KvParams& p, bool degraded = false);

/// Modeled p99 get latency (us): the uncached versioned read whenever the
/// miss mass reaches the tail (1 - hit_rate >= 1%), i.e. always, except
/// for a pathologically perfect cache; degraded mode pins the whole
/// distribution at the uncached cost.
double kv_read_p99_us(const KvParams& p, bool degraded = false);

/// Mean modeled put latency (us): per-region CAS-chain cost, doubled by
/// write-through replication while the shard is healthy (degraded mode
/// writes the surviving replica only).
double kv_put_us(const KvParams& p, bool degraded = false);

/// Probability mass of the hottest shard under the Zipf(s) key popularity
/// folded onto `shards` (rank-1 mass of a Zipf over the shards).
double kv_hot_shard_mass(const KvParams& p);

/// Closed-loop fleet throughput (M ops/s) at `clients` ranks:
///
///   offered = clients * fibers / mean_op_us        (pipelined clients)
///   hot cap = serve_rate / phi                      (hottest shard NIC)
///   T(p)    = min(offered, hot cap)
///
/// with phi the hottest shard's mass — halved for reads when replication
/// is on (hot-key replica reads split the load). Monotone nondecreasing
/// and saturating in `clients`; replication raises the plateau.
double simulate_kv_throughput_mops(int clients, const KvParams& p = {});

}  // namespace fompi::sim

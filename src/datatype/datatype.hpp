// MPI-style derived datatypes.
//
// foMPI supports arbitrary MPI datatypes via the MPITypes library: each
// communication call splits the origin and target datatypes into the
// smallest number of contiguous blocks and issues one RDMA operation (or
// one memory copy) per block. This module provides the same capability:
// a datatype is an immutable tree (basic, contiguous, vector, indexed,
// struct, resized); flatten() lowers `count` elements to a minimal list of
// (offset, length) blocks; pair_blocks() walks an origin and a target block
// list in lockstep, yielding the per-transfer fragments.
//
// Like MPITypes' precomputed representations, the one-element block list is
// computed once at type construction and cached on the immutable node;
// flatten() and the allocation-free pair_layouts() walk replicate the cached
// blocks per element instead of re-walking the tree. Every use of the cache
// counts Op::flatten_cache_hit (builds count Op::flatten_cache_build), so
// benches can assert a 100% steady-state hit rate.
//
// The contiguous fast path the paper emphasizes (intrinsic types like
// MPI_DOUBLE add only ~173 instructions) corresponds to is_contiguous():
// callers skip flattening entirely and issue a single transfer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace fompi::dt {

/// One contiguous piece of a flattened datatype.
struct Block {
  std::size_t offset;  ///< byte offset from the layout base
  std::size_t len;     ///< length in bytes
  friend bool operator==(const Block&, const Block&) = default;
};

/// Non-owning callback reference (a `function_ref`): the zero-allocation
/// replacement for `std::function` on the fragment lowering path. Binds any
/// callable invocable as fn(origin_off, target_off, len); the referee must
/// outlive the call (always true for the issue-loop lambdas it carries).
class FragmentRef {
 public:
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>,
                                                     FragmentRef>>>
  FragmentRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, std::size_t o, std::size_t t, std::size_t l) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(o, t, l);
        }) {}

  void operator()(std::size_t origin_off, std::size_t target_off,
                  std::size_t len) const {
    call_(obj_, origin_off, target_off, len);
  }

 private:
  void* obj_;
  void (*call_)(void*, std::size_t, std::size_t, std::size_t);
};

class Datatype {
 public:
  /// Uninitialized datatype; using it raises FOMPI_ERR_TYPE.
  Datatype() = default;

  // --- factories -----------------------------------------------------------
  /// Basic type of `n` bytes (e.g. 8 for MPI_DOUBLE / MPI_INT64_T).
  static Datatype basic(std::size_t n, std::string name = "bytes");
  static Datatype u8() { return basic(1, "u8"); }
  static Datatype i32() { return basic(4, "i32"); }
  static Datatype i64() { return basic(8, "i64"); }
  static Datatype u64() { return basic(8, "u64"); }
  static Datatype f32() { return basic(4, "f32"); }
  static Datatype f64() { return basic(8, "f64"); }

  /// `count` consecutive elements of `element`.
  static Datatype contiguous(int count, const Datatype& element);
  /// `count` blocks of `blocklen` elements, block starts `stride` elements
  /// apart (MPI_Type_vector).
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& element);
  /// Like vector but the stride is given in bytes (MPI_Type_create_hvector).
  static Datatype hvector(int count, int blocklen, std::ptrdiff_t stride_bytes,
                          const Datatype& element);
  /// Blocks of blocklens[i] elements at element displacements displs[i]
  /// (MPI_Type_indexed).
  static Datatype indexed(const std::vector<int>& blocklens,
                          const std::vector<int>& displs,
                          const Datatype& element);
  /// Byte displacements (MPI_Type_create_hindexed).
  static Datatype hindexed(const std::vector<int>& blocklens,
                           const std::vector<std::ptrdiff_t>& displs_bytes,
                           const Datatype& element);
  /// Heterogeneous struct (MPI_Type_create_struct).
  static Datatype struct_type(const std::vector<int>& blocklens,
                              const std::vector<std::ptrdiff_t>& displs_bytes,
                              const std::vector<Datatype>& types);
  /// Overrides lower bound / extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& base, std::ptrdiff_t lb,
                          std::size_t extent);
  /// N-dimensional sub-block of a row-major (C order) array
  /// (MPI_Type_create_subarray with MPI_ORDER_C): selects the
  /// [starts, starts+subsizes) block of an array with extents `sizes`.
  /// The resulting extent spans the whole array, so consecutive elements
  /// address consecutive arrays — the zero-copy halo/transpose idiom the
  /// paper cites for MILC and FFT ([13]).
  static Datatype subarray(const std::vector<int>& sizes,
                           const std::vector<int>& subsizes,
                           const std::vector<int>& starts,
                           const Datatype& element);

  // --- queries ---------------------------------------------------------------
  bool valid() const noexcept { return node_ != nullptr; }
  /// Payload bytes per element (MPI_Type_size).
  std::size_t size() const;
  /// Memory span per element (MPI_Type_get_extent).
  std::size_t extent() const;
  /// Lower bound offset of the element layout.
  std::ptrdiff_t lb() const;
  /// True if `count` elements occupy one gap-free block from offset 0 —
  /// the fast-path condition.
  bool is_contiguous() const;
  /// Number of contiguous blocks one element flattens to (cached).
  std::size_t block_count() const;
  /// Highest byte touched by one element based at offset 0: max over the
  /// cached blocks of offset + len. For `count` elements the touched span
  /// ends at (count - 1) * extent() + span_end() — the single bounds check
  /// that replaces per-fragment range validation.
  std::size_t span_end() const;
  std::string describe() const;

  // --- lowering ----------------------------------------------------------------
  /// Appends the minimal contiguous block list for `count` elements based
  /// at byte offset `base` to `out` (adjacent blocks are merged). Served
  /// from the node's cached one-element list; the tree is walked only once,
  /// at construction.
  void flatten(std::size_t base, int count, std::vector<Block>& out) const;

  /// Packs `count` elements laid out at `src` into contiguous `dst`.
  /// Returns the packed size.
  std::size_t pack(const void* src, int count, void* dst) const;
  /// Unpacks contiguous `src` into `count` elements laid out at `dst`.
  std::size_t unpack(const void* src, int count, void* dst) const;

  /// Implementation node; defined in datatype.cpp only.
  struct Node;

 private:
  friend void pair_layouts(const Datatype&, int, const Datatype&, int,
                           std::size_t, FragmentRef);
  explicit Datatype(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  const Node& node() const;

  std::shared_ptr<const Node> node_;
};

/// Walks two equal-payload block lists in lockstep and invokes
/// fn(origin_offset, target_offset, fragment_len) for every fragment that is
/// contiguous on both sides. Raises FOMPI_ERR_TYPE on payload mismatch.
void pair_blocks(const std::vector<Block>& origin,
                 const std::vector<Block>& target, FragmentRef fn);

/// Allocation-free lockstep lowering: yields exactly the fragments that
/// flatten(0, ocount) / flatten(tdisp, tcount) + pair_blocks() would, but
/// walks the cached one-element block lists directly — no block vectors are
/// materialized and nothing is heap-allocated. This is the hot entry point
/// of the communication layer's datatype path.
void pair_layouts(const Datatype& otype, int ocount, const Datatype& ttype,
                  int tcount, std::size_t tdisp, FragmentRef fn);

}  // namespace fompi::dt

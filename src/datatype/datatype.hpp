// MPI-style derived datatypes.
//
// foMPI supports arbitrary MPI datatypes via the MPITypes library: each
// communication call splits the origin and target datatypes into the
// smallest number of contiguous blocks and issues one RDMA operation (or
// one memory copy) per block. This module provides the same capability:
// a datatype is an immutable tree (basic, contiguous, vector, indexed,
// struct, resized); flatten() lowers `count` elements to a minimal list of
// (offset, length) blocks; pair_blocks() walks an origin and a target block
// list in lockstep, yielding the per-transfer fragments.
//
// The contiguous fast path the paper emphasizes (intrinsic types like
// MPI_DOUBLE add only ~173 instructions) corresponds to is_contiguous():
// callers skip flattening entirely and issue a single transfer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace fompi::dt {

/// One contiguous piece of a flattened datatype.
struct Block {
  std::size_t offset;  ///< byte offset from the layout base
  std::size_t len;     ///< length in bytes
  friend bool operator==(const Block&, const Block&) = default;
};

class Datatype {
 public:
  /// Uninitialized datatype; using it raises FOMPI_ERR_TYPE.
  Datatype() = default;

  // --- factories -----------------------------------------------------------
  /// Basic type of `n` bytes (e.g. 8 for MPI_DOUBLE / MPI_INT64_T).
  static Datatype basic(std::size_t n, std::string name = "bytes");
  static Datatype u8() { return basic(1, "u8"); }
  static Datatype i32() { return basic(4, "i32"); }
  static Datatype i64() { return basic(8, "i64"); }
  static Datatype u64() { return basic(8, "u64"); }
  static Datatype f32() { return basic(4, "f32"); }
  static Datatype f64() { return basic(8, "f64"); }

  /// `count` consecutive elements of `element`.
  static Datatype contiguous(int count, const Datatype& element);
  /// `count` blocks of `blocklen` elements, block starts `stride` elements
  /// apart (MPI_Type_vector).
  static Datatype vector(int count, int blocklen, int stride,
                         const Datatype& element);
  /// Like vector but the stride is given in bytes (MPI_Type_create_hvector).
  static Datatype hvector(int count, int blocklen, std::ptrdiff_t stride_bytes,
                          const Datatype& element);
  /// Blocks of blocklens[i] elements at element displacements displs[i]
  /// (MPI_Type_indexed).
  static Datatype indexed(const std::vector<int>& blocklens,
                          const std::vector<int>& displs,
                          const Datatype& element);
  /// Byte displacements (MPI_Type_create_hindexed).
  static Datatype hindexed(const std::vector<int>& blocklens,
                           const std::vector<std::ptrdiff_t>& displs_bytes,
                           const Datatype& element);
  /// Heterogeneous struct (MPI_Type_create_struct).
  static Datatype struct_type(const std::vector<int>& blocklens,
                              const std::vector<std::ptrdiff_t>& displs_bytes,
                              const std::vector<Datatype>& types);
  /// Overrides lower bound / extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& base, std::ptrdiff_t lb,
                          std::size_t extent);
  /// N-dimensional sub-block of a row-major (C order) array
  /// (MPI_Type_create_subarray with MPI_ORDER_C): selects the
  /// [starts, starts+subsizes) block of an array with extents `sizes`.
  /// The resulting extent spans the whole array, so consecutive elements
  /// address consecutive arrays — the zero-copy halo/transpose idiom the
  /// paper cites for MILC and FFT ([13]).
  static Datatype subarray(const std::vector<int>& sizes,
                           const std::vector<int>& subsizes,
                           const std::vector<int>& starts,
                           const Datatype& element);

  // --- queries ---------------------------------------------------------------
  bool valid() const noexcept { return node_ != nullptr; }
  /// Payload bytes per element (MPI_Type_size).
  std::size_t size() const;
  /// Memory span per element (MPI_Type_get_extent).
  std::size_t extent() const;
  /// Lower bound offset of the element layout.
  std::ptrdiff_t lb() const;
  /// True if `count` elements occupy one gap-free block from offset 0 —
  /// the fast-path condition.
  bool is_contiguous() const;
  std::string describe() const;

  // --- lowering ----------------------------------------------------------------
  /// Appends the minimal contiguous block list for `count` elements based
  /// at byte offset `base` to `out` (adjacent blocks are merged).
  void flatten(std::size_t base, int count, std::vector<Block>& out) const;

  /// Packs `count` elements laid out at `src` into contiguous `dst`.
  /// Returns the packed size.
  std::size_t pack(const void* src, int count, void* dst) const;
  /// Unpacks contiguous `src` into `count` elements laid out at `dst`.
  std::size_t unpack(const void* src, int count, void* dst) const;

  /// Implementation node; defined in datatype.cpp only.
  struct Node;

 private:
  explicit Datatype(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  const Node& node() const;

  std::shared_ptr<const Node> node_;
};

/// Walks two equal-payload block lists in lockstep and invokes
/// fn(origin_offset, target_offset, fragment_len) for every fragment that is
/// contiguous on both sides. Raises FOMPI_ERR_TYPE on payload mismatch.
void pair_blocks(const std::vector<Block>& origin,
                 const std::vector<Block>& target,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn);

}  // namespace fompi::dt
